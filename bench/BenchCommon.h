//===- BenchCommon.h - Shared bench-binary scaffolding ----------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every Figure 6 bench binary prints its paper table (series x thread
/// counts, simulated speedups) and registers one google-benchmark entry per
/// headline scheme so the harness also reports real compile+simulate cost.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_BENCH_BENCHCOMMON_H
#define COMMSET_BENCH_BENCHCOMMON_H

#include "commset/Workloads/BenchHarness.h"

#include <benchmark/benchmark.h>

namespace commset {
namespace bench {

inline const std::vector<unsigned> PaperThreads = {1, 2, 3, 4, 5, 6, 7, 8};
inline const std::vector<unsigned> QuickThreads = {2, 4, 6, 8};

/// Registers a benchmark that compiles and simulates one scheme end to end
/// (reports the simulated speedup as a counter).
inline void registerSchemeBenchmark(const std::string &Workload,
                                    const Series &S, unsigned Threads) {
  std::string BenchName =
      Workload + "/" + S.Label + "/threads:" + std::to_string(Threads);
  for (char &C : BenchName)
    if (C == ' ')
      C = '_';
  ::benchmark::RegisterBenchmark(
      BenchName.c_str(),
      [Workload, S, Threads](::benchmark::State &State) {
        double Speedup = 0;
        for (auto _ : State) {
          FigureRunner Runner(Workload);
          Measurement M = Runner.measure(S, Threads);
          Speedup = M.Speedup;
          ::benchmark::DoNotOptimize(M.VirtualNs);
        }
        State.counters["sim_speedup"] = Speedup;
      })
      ->Iterations(1)
      ->Unit(::benchmark::kMillisecond);
}

/// Standard main body: print the figure, register headline benchmarks, run
/// the google-benchmark harness.
inline int figureMain(int argc, char **argv, const std::string &Workload,
                      const std::vector<Series> &SeriesList) {
  printFigure(Workload, SeriesList, PaperThreads);
  for (const Series &S : SeriesList)
    registerSchemeBenchmark(Workload, S, 8);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

} // namespace bench
} // namespace commset

#endif // COMMSET_BENCH_BENCHCOMMON_H
