//===- BenchCommon.h - Shared bench-binary scaffolding ----------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every Figure 6 bench binary prints its paper table (series x thread
/// counts, simulated speedups) and registers one google-benchmark entry per
/// headline scheme so the harness also reports real compile+simulate cost.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_BENCH_BENCHCOMMON_H
#define COMMSET_BENCH_BENCHCOMMON_H

#include "commset/Workloads/BenchHarness.h"

#include <benchmark/benchmark.h>

namespace commset {
namespace bench {

inline const std::vector<unsigned> PaperThreads = {1, 2, 3, 4, 5, 6, 7, 8};
inline const std::vector<unsigned> QuickThreads = {2, 4, 6, 8};

/// Strips a `--json=FILE` flag from argv and returns the path ("" when
/// absent). Must run before benchmark::Initialize, which rejects flags it
/// does not know.
inline std::string extractJsonPath(int &argc, char **argv) {
  std::string Path;
  int Out = 1;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--json=", 0) == 0)
      Path = Arg.substr(7);
    else
      argv[Out++] = argv[I];
  }
  argc = Out;
  return Path;
}

/// Writes \p Records to \p JsonPath if set; prints the failure and returns
/// false on I/O error. No-op (true) when JsonPath is empty.
inline bool maybeWriteJson(const std::string &JsonPath,
                           const std::vector<BenchRecord> &Records) {
  if (JsonPath.empty())
    return true;
  std::string Err;
  if (!writeBenchJson(JsonPath, Records, &Err)) {
    fprintf(stderr, "bench: %s\n", Err.c_str());
    return false;
  }
  printf("bench: wrote %zu records to %s\n", Records.size(),
         JsonPath.c_str());
  return true;
}

/// Registers a benchmark that compiles and simulates one scheme end to end
/// (reports the simulated speedup as a counter).
inline void registerSchemeBenchmark(const std::string &Workload,
                                    const Series &S, unsigned Threads) {
  std::string BenchName =
      Workload + "/" + S.Label + "/threads:" + std::to_string(Threads);
  for (char &C : BenchName)
    if (C == ' ')
      C = '_';
  ::benchmark::RegisterBenchmark(
      BenchName.c_str(),
      [Workload, S, Threads](::benchmark::State &State) {
        double Speedup = 0;
        for (auto _ : State) {
          FigureRunner Runner(Workload);
          Measurement M = Runner.measure(S, Threads);
          Speedup = M.Speedup;
          ::benchmark::DoNotOptimize(M.VirtualNs);
        }
        State.counters["sim_speedup"] = Speedup;
      })
      ->Iterations(1)
      ->Unit(::benchmark::kMillisecond);
}

/// Standard main body: print the figure, register headline benchmarks, run
/// the google-benchmark harness.
inline int figureMain(int argc, char **argv, const std::string &Workload,
                      const std::vector<Series> &SeriesList) {
  std::string JsonPath = extractJsonPath(argc, argv);
  std::vector<BenchRecord> Records;
  printFigure(Workload, SeriesList, PaperThreads, /*Scale=*/0,
              JsonPath.empty() ? nullptr : &Records);
  if (!maybeWriteJson(JsonPath, Records))
    return 1;
  for (const Series &S : SeriesList)
    registerSchemeBenchmark(Workload, S, 8);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

} // namespace bench
} // namespace commset

#endif // COMMSET_BENCH_BENCHCOMMON_H
