//===- bench_ablation_annotations.cpp - Annotation ablation ---------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// DESIGN.md ablation mirroring the paper's §2 timeline (Figure 3): the
// semantics the programmer chooses determine the freedom the compiler has.
// md5sum with full annotations runs DOALL; dropping one SELF (deterministic
// digests) forces the pipeline; stripping all annotations leaves the best
// non-COMMSET schedule.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace commset;
using namespace commset::bench;

int main(int argc, char **argv) {
  printf("=== md5sum annotation ablation (paper Figure 3 timeline) ===\n");
  std::vector<Series> SeriesList = {
      {"full annotations: DOALL", "", Strategy::Doall, SyncMode::None},
      {"full annotations: PS-DSWP", "", Strategy::PsDswp, SyncMode::None},
      {"minus one SELF: DOALL", "noself", Strategy::Doall, SyncMode::None},
      {"minus one SELF: PS-DSWP", "noself", Strategy::PsDswp,
       SyncMode::None},
      {"no annotations: DOALL", "plain", Strategy::Doall, SyncMode::None},
      {"no annotations: PS-DSWP", "plain", Strategy::PsDswp,
       SyncMode::None},
  };
  printFigure("md5sum", SeriesList, PaperThreads);

  printf("\n(One fewer annotation trades the out-of-order DOALL schedule "
         "for a deterministic pipeline, exactly the paper's Figure 3 "
         "story.)\n");

  for (const Series &S : SeriesList)
    registerSchemeBenchmark("md5sum", S, 8);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
