//===- bench_ablation_sync.cpp - Synchronization-mode ablation ------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// DESIGN.md ablation: the same DOALL schedule under every synchronization
// mode the engine supports (paper §4.6). Reproduces the paper's
// observations that spin locks win under high contention (456.hmmer) and
// that lock-based modes beat TM when transactions conflict persistently
// (kmeans).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "commset/Driver/Runner.h"
#include "commset/Trace/Trace.h"
#include "commset/Workloads/Workload.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>

using namespace commset;
using namespace commset::bench;

namespace {

/// Resilience ablation: the supervised engine (heartbeat checkpoints,
/// watchdog, cancellation checks) must cost nothing measurable when no
/// faults are injected, or production runs would pay for robustness they
/// never use. Compares min-of-N wall times of the same threaded DOALL run
/// with supervision on (default) vs off and enforces the <2% bound.
int runFallbackOverheadGuard() {
  const char *Src = "extern int work(int x);\n"
                    "#pragma commset member(SELF)\n"
                    "extern void record(int i, int v);\n"
                    "#pragma commset effects(work, pure)\n"
                    "#pragma commset effects(record, reads(out), writes(out))\n"
                    "void run(int n) {\n"
                    "  for (int i = 0; i < n; i++) {\n"
                    "    record(i, work(i));\n"
                    "  }\n"
                    "}\n";
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(Src, Diags);
  if (!C) {
    std::fprintf(stderr, "overhead guard: compile failed:\n%s",
                 Diags.str().c_str());
    return 1;
  }
  auto T = C->analyzeLoop("run", Diags);
  if (!T) {
    std::fprintf(stderr, "overhead guard: analyzeLoop failed:\n%s",
                 Diags.str().c_str());
    return 1;
  }
  PlanOptions PO;
  PO.NumThreads = 2;
  PO.Sync = SyncMode::Mutex;
  PO.NativeCostHints = {{"work", 20000.0}, {"record", 400.0}};
  auto Schemes = buildAllSchemes(*C, *T, PO);
  const SchemeReport *Doall = nullptr;
  for (const SchemeReport &S : Schemes)
    if (S.Kind == Strategy::Doall)
      Doall = &S;
  if (!Doall || !Doall->Applicable || !Doall->Plan) {
    std::fprintf(stderr, "overhead guard: DOALL not applicable\n");
    return 1;
  }

  std::atomic<uint64_t> Sink{0};
  NativeRegistry Natives;
  Natives.add("work", [](const RtValue *Args, unsigned) {
    return RtValue::ofInt(Args[0].I * Args[0].I + 1);
  });
  Natives.add("record", [&Sink](const RtValue *Args, unsigned) {
    Sink.fetch_add(static_cast<uint64_t>(Args[1].I),
                   std::memory_order_relaxed);
    return RtValue();
  });

  constexpr int64_t N = 20000;
  ResilienceConfig Bare;
  Bare.Supervise = false; // pre-resilience fork/join, no checkpoints

  auto once = [&](const ResilienceConfig *RC) -> uint64_t {
    RunConfig Config;
    Config.Plan = &*Doall->Plan;
    Config.Simulate = false;
    Config.Resilience = RC;
    RunOutcome Out =
        runScheme(*C, T->F, {RtValue::ofInt(N)}, Natives, Config);
    if (Out.Status != RunStatus::Ok) {
      std::fprintf(stderr, "overhead guard: unexpected status %s: %s\n",
                   runStatusName(Out.Status), Out.Diagnostic.c_str());
      return 0;
    }
    return Out.WallNs;
  };

  // Interleave repetitions so machine drift hits both flavors equally;
  // min-of-N discards scheduler noise.
  constexpr int Reps = 9;
  uint64_t Supervised = UINT64_MAX, Unsupervised = UINT64_MAX;
  for (int R = 0; R < Reps; ++R) {
    uint64_t U = once(&Bare);
    uint64_t S = once(nullptr); // default resilience: supervised
    if (!U || !S)
      return 1;
    Unsupervised = std::min(Unsupervised, U);
    Supervised = std::min(Supervised, S);
  }

  double Ratio =
      static_cast<double>(Supervised) / static_cast<double>(Unsupervised);
  std::printf("\nResilience overhead guard (DOALL x%d, n=%lld, min of %d)\n"
              "  unsupervised: %8.3f ms\n"
              "  supervised:   %8.3f ms   ratio %.4f (bound < 1.02)\n\n",
              PO.NumThreads, static_cast<long long>(N), Reps,
              Unsupervised / 1e6, Supervised / 1e6, Ratio);
  if (Ratio >= 1.02) {
    std::fprintf(stderr,
                 "overhead guard FAILED: supervision costs %.2f%% with no "
                 "faults injected (bound: 2%%)\n",
                 (Ratio - 1.0) * 100.0);
    return 1;
  }
  return 0;
}

/// CommTrace overhead guard (DESIGN.md §Observability budget): on the real
/// md5sum DOALL loop, compiled-in-but-disabled tracing must cost < 1% (one
/// relaxed load + branch per site) and enabled tracing < 5%. The disabled
/// bound is checked analytically — per-emit disabled cost measured by a
/// micro-loop, multiplied by the event count a traced run actually records,
/// relative to the untraced wall time — because a compiled-out binary is
/// not available for comparison inside one process.
int runTraceOverheadGuard() {
  if (!trace::compiledIn()) {
    std::printf("\nCommTrace overhead guard: tracing compiled out, "
                "skipping\n\n");
    return 0;
  }

  auto W = makeWorkload("md5sum");
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(W->source(""), Diags);
  std::unique_ptr<Compilation::LoopTarget> T;
  if (C)
    T = C->analyzeLoop(W->entry(), Diags);
  if (!C || !T) {
    std::fprintf(stderr, "trace guard: md5sum failed to compile:\n%s",
                 Diags.str().c_str());
    return 1;
  }
  PlanOptions PO;
  PO.NumThreads = 4;
  PO.Sync = SyncMode::Mutex;
  for (auto &[K, Cost] : W->costHints())
    PO.NativeCostHints[K] = Cost;
  auto Schemes = buildAllSchemes(*C, *T, PO);
  const SchemeReport *Doall = nullptr;
  for (const SchemeReport &S : Schemes)
    if (S.Kind == Strategy::Doall)
      Doall = &S;
  if (!Doall || !Doall->Applicable || !Doall->Plan) {
    std::fprintf(stderr, "trace guard: md5sum DOALL not applicable\n");
    return 1;
  }

  uint64_t TracedEvents = 0;
  auto once = [&](bool Traced) -> uint64_t {
    NativeRegistry Natives;
    W->reset();
    W->registerNatives(Natives);
    RunConfig Config;
    Config.Plan = &*Doall->Plan;
    Config.Simulate = false;
    Config.Trace = Traced;
    RunOutcome Out = runScheme(*C, T->F, W->args(W->defaultScale()),
                               Natives, Config);
    if (Out.Status != RunStatus::Ok) {
      std::fprintf(stderr, "trace guard: unexpected status %s: %s\n",
                   runStatusName(Out.Status), Out.Diagnostic.c_str());
      return 0;
    }
    if (Traced)
      TracedEvents = std::max(TracedEvents, Out.TraceEvents);
    return Out.WallNs;
  };

  constexpr int Reps = 9;
  uint64_t Disabled = UINT64_MAX, Enabled = UINT64_MAX;
  for (int R = 0; R < Reps; ++R) {
    uint64_t D = once(false);
    uint64_t E = once(true);
    if (!D || !E)
      return 1;
    Disabled = std::min(Disabled, D);
    Enabled = std::min(Enabled, E);
  }

  // Disabled-path micro-cost: emit() with the session off is the exact
  // instruction sequence every instrumented site pays when not tracing.
  constexpr uint64_t Calls = uint64_t(1) << 22;
  auto M0 = std::chrono::steady_clock::now();
  for (uint64_t I = 0; I < Calls; ++I)
    trace::emit(trace::EventKind::MemberEnter, 0, I, I);
  auto M1 = std::chrono::steady_clock::now();
  double DisabledEmitNs =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(M1 - M0)
              .count()) /
      static_cast<double>(Calls);

  double EnabledRatio =
      static_cast<double>(Enabled) / static_cast<double>(Disabled);
  double DisabledFraction = TracedEvents * DisabledEmitNs /
                            static_cast<double>(Disabled);
  std::printf(
      "\nCommTrace overhead guard (md5sum DOALL x%u, min of %d)\n"
      "  untraced:       %8.3f ms\n"
      "  traced:         %8.3f ms   ratio %.4f (bound < 1.05)\n"
      "  disabled emit:  %8.3f ns/site x %llu events -> %.4f%% of untraced "
      "run (bound < 1%%)\n\n",
      PO.NumThreads, Reps, Disabled / 1e6, Enabled / 1e6, EnabledRatio,
      DisabledEmitNs, static_cast<unsigned long long>(TracedEvents),
      DisabledFraction * 100.0);
  if (EnabledRatio >= 1.05) {
    std::fprintf(stderr,
                 "trace guard FAILED: enabled tracing costs %.2f%% "
                 "(bound: 5%%)\n",
                 (EnabledRatio - 1.0) * 100.0);
    return 1;
  }
  if (DisabledFraction >= 0.01) {
    std::fprintf(stderr,
                 "trace guard FAILED: disabled instrumentation costs "
                 "%.2f%% (bound: 1%%)\n",
                 DisabledFraction * 100.0);
    return 1;
  }
  return 0;
}

/// Privatization speedup guard: on a contended histogram — every iteration
/// enters the same SELF-set member to add into two shared counters — the
/// mutex plan pays a lock handoff per call while the priv plan touches
/// worker-local replicas and merges once at region exit. Under the
/// simulator's cost model the priv plan must be at least 1.5x faster at 8
/// threads, or the replica fast path has regressed into the lock path.
int runPrivSpeedupGuard() {
  const char *Src = "int hsum = 0;\n"
                    "int hcount = 0;\n"
                    "extern int key(int x);\n"
                    "#pragma commset effects(key, pure)\n"
                    "#pragma commset member(SELF)\n"
                    "void bump(int v) {\n"
                    "  hsum = hsum + v;\n"
                    "  hcount = hcount + 1;\n"
                    "}\n"
                    "int run(int n) {\n"
                    "  for (int i = 0; i < n; i++) {\n"
                    "    bump(key(i));\n"
                    "  }\n"
                    "  return hsum + hcount;\n"
                    "}\n";
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(Src, Diags);
  std::unique_ptr<Compilation::LoopTarget> T;
  if (C)
    T = C->analyzeLoop("run", Diags);
  if (!C || !T) {
    std::fprintf(stderr, "priv guard: compile failed:\n%s",
                 Diags.str().c_str());
    return 1;
  }

  auto planFor = [&](SyncMode Sync) -> std::optional<ParallelPlan> {
    PlanOptions PO;
    PO.NumThreads = 8;
    PO.Sync = Sync;
    PO.NativeCostHints = {{"key", 60.0}};
    for (const SchemeReport &S : buildAllSchemes(*C, *T, PO))
      if (S.Kind == Strategy::Doall && S.Applicable && S.Plan)
        return S.Plan;
    return std::nullopt;
  };
  auto Mutex = planFor(SyncMode::Mutex);
  auto Priv = planFor(SyncMode::Priv);
  if (!Mutex || !Priv) {
    std::fprintf(stderr, "priv guard: DOALL not applicable\n");
    return 1;
  }
  if (Priv->PrivGlobals.size() != 2) {
    std::fprintf(stderr,
                 "priv guard: planner failed to privatize the histogram "
                 "(%zu slots)\n",
                 Priv->PrivGlobals.size());
    return 1;
  }

  NativeRegistry Natives;
  Natives.add(
      "key", [](const RtValue *Args, unsigned) { return Args[0]; },
      /*FixedCostNs=*/60);

  constexpr int64_t N = 4000;
  auto virtualNs = [&](const ParallelPlan &Plan) -> uint64_t {
    RunConfig Config;
    Config.Plan = &Plan;
    Config.Simulate = true; // virtual time: deterministic cost model
    RunOutcome Out =
        runScheme(*C, T->F, {RtValue::ofInt(N)}, Natives, Config);
    if (Out.Status != RunStatus::Ok) {
      std::fprintf(stderr, "priv guard: unexpected status %s: %s\n",
                   runStatusName(Out.Status), Out.Diagnostic.c_str());
      return 0;
    }
    if (Out.Result.I != N * (N - 1) / 2 + N) {
      std::fprintf(stderr, "priv guard: wrong result %lld\n",
                   static_cast<long long>(Out.Result.I));
      return 0;
    }
    return Out.VirtualNs;
  };

  uint64_t MutexNs = virtualNs(*Mutex);
  uint64_t PrivNs = virtualNs(*Priv);
  if (!MutexNs || !PrivNs)
    return 1;
  double Ratio = static_cast<double>(MutexNs) / static_cast<double>(PrivNs);
  std::printf("\nPrivatization speedup guard (contended histogram, DOALL "
              "x8, n=%lld, simulated)\n"
              "  mutex: %10.3f ms\n"
              "  priv:  %10.3f ms   speedup %.2fx (bound >= 1.5x)\n\n",
              static_cast<long long>(N), MutexNs / 1e6, PrivNs / 1e6, Ratio);
  if (Ratio < 1.5) {
    std::fprintf(stderr,
                 "priv guard FAILED: priv is only %.2fx over mutex at 8 "
                 "threads (bound: 1.5x)\n",
                 Ratio);
    return 1;
  }
  return 0;
}

void runAblation(const char *Workload, std::vector<BenchRecord> *Records) {
  std::vector<Series> SeriesList = {
      {"DOALL + Mutex", "", Strategy::Doall, SyncMode::Mutex},
      {"DOALL + Spin", "", Strategy::Doall, SyncMode::Spin},
      {"DOALL + TM", "", Strategy::Doall, SyncMode::Tm},
      {"DOALL + Priv", "", Strategy::Doall, SyncMode::Priv},
      {"DOALL + Lib (nosync)", "", Strategy::Doall, SyncMode::None},
  };
  printFigure(Workload, SeriesList, QuickThreads, /*Scale=*/0, Records);
}

} // namespace

int main(int argc, char **argv) {
  // `--priv-guard` runs only the privatization speedup guard: the quick,
  // deterministic flavor the priv-smoke ctest tier executes.
  for (int I = 1; I < argc; ++I)
    if (std::string(argv[I]) == "--priv-guard")
      return runPrivSpeedupGuard();

  std::string JsonPath = extractJsonPath(argc, argv);
  if (int Rc = runFallbackOverheadGuard())
    return Rc;
  if (int Rc = runTraceOverheadGuard())
    return Rc;
  if (int Rc = runPrivSpeedupGuard())
    return Rc;
  std::vector<BenchRecord> Records;
  std::vector<BenchRecord> *RecPtr = JsonPath.empty() ? nullptr : &Records;
  runAblation("hmmer", RecPtr);
  runAblation("kmeans", RecPtr);
  runAblation("eclat", RecPtr);
  if (!maybeWriteJson(JsonPath, Records))
    return 1;

  for (const char *Name : {"hmmer", "kmeans", "eclat"}) {
    for (SyncMode Sync : {SyncMode::Mutex, SyncMode::Spin, SyncMode::Tm,
                          SyncMode::Priv}) {
      Series S{std::string("DOALL+") + syncModeName(Sync), "",
               Strategy::Doall, Sync};
      registerSchemeBenchmark(Name, S, 8);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
