//===- bench_ablation_sync.cpp - Synchronization-mode ablation ------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// DESIGN.md ablation: the same DOALL schedule under every synchronization
// mode the engine supports (paper §4.6). Reproduces the paper's
// observations that spin locks win under high contention (456.hmmer) and
// that lock-based modes beat TM when transactions conflict persistently
// (kmeans).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "commset/Driver/Runner.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>

using namespace commset;
using namespace commset::bench;

namespace {

/// Resilience ablation: the supervised engine (heartbeat checkpoints,
/// watchdog, cancellation checks) must cost nothing measurable when no
/// faults are injected, or production runs would pay for robustness they
/// never use. Compares min-of-N wall times of the same threaded DOALL run
/// with supervision on (default) vs off and enforces the <2% bound.
int runFallbackOverheadGuard() {
  const char *Src = "extern int work(int x);\n"
                    "#pragma commset member(SELF)\n"
                    "extern void record(int i, int v);\n"
                    "#pragma commset effects(work, pure)\n"
                    "#pragma commset effects(record, reads(out), writes(out))\n"
                    "void run(int n) {\n"
                    "  for (int i = 0; i < n; i++) {\n"
                    "    record(i, work(i));\n"
                    "  }\n"
                    "}\n";
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(Src, Diags);
  if (!C) {
    std::fprintf(stderr, "overhead guard: compile failed:\n%s",
                 Diags.str().c_str());
    return 1;
  }
  auto T = C->analyzeLoop("run", Diags);
  if (!T) {
    std::fprintf(stderr, "overhead guard: analyzeLoop failed:\n%s",
                 Diags.str().c_str());
    return 1;
  }
  PlanOptions PO;
  PO.NumThreads = 2;
  PO.Sync = SyncMode::Mutex;
  PO.NativeCostHints = {{"work", 20000.0}, {"record", 400.0}};
  auto Schemes = buildAllSchemes(*C, *T, PO);
  const SchemeReport *Doall = nullptr;
  for (const SchemeReport &S : Schemes)
    if (S.Kind == Strategy::Doall)
      Doall = &S;
  if (!Doall || !Doall->Applicable || !Doall->Plan) {
    std::fprintf(stderr, "overhead guard: DOALL not applicable\n");
    return 1;
  }

  std::atomic<uint64_t> Sink{0};
  NativeRegistry Natives;
  Natives.add("work", [](const RtValue *Args, unsigned) {
    return RtValue::ofInt(Args[0].I * Args[0].I + 1);
  });
  Natives.add("record", [&Sink](const RtValue *Args, unsigned) {
    Sink.fetch_add(static_cast<uint64_t>(Args[1].I),
                   std::memory_order_relaxed);
    return RtValue();
  });

  constexpr int64_t N = 20000;
  ResilienceConfig Bare;
  Bare.Supervise = false; // pre-resilience fork/join, no checkpoints

  auto once = [&](const ResilienceConfig *RC) -> uint64_t {
    RunConfig Config;
    Config.Plan = &*Doall->Plan;
    Config.Simulate = false;
    Config.Resilience = RC;
    RunOutcome Out =
        runScheme(*C, T->F, {RtValue::ofInt(N)}, Natives, Config);
    if (Out.Status != RunStatus::Ok) {
      std::fprintf(stderr, "overhead guard: unexpected status %s: %s\n",
                   runStatusName(Out.Status), Out.Diagnostic.c_str());
      return 0;
    }
    return Out.WallNs;
  };

  // Interleave repetitions so machine drift hits both flavors equally;
  // min-of-N discards scheduler noise.
  constexpr int Reps = 9;
  uint64_t Supervised = UINT64_MAX, Unsupervised = UINT64_MAX;
  for (int R = 0; R < Reps; ++R) {
    uint64_t U = once(&Bare);
    uint64_t S = once(nullptr); // default resilience: supervised
    if (!U || !S)
      return 1;
    Unsupervised = std::min(Unsupervised, U);
    Supervised = std::min(Supervised, S);
  }

  double Ratio =
      static_cast<double>(Supervised) / static_cast<double>(Unsupervised);
  std::printf("\nResilience overhead guard (DOALL x%d, n=%lld, min of %d)\n"
              "  unsupervised: %8.3f ms\n"
              "  supervised:   %8.3f ms   ratio %.4f (bound < 1.02)\n\n",
              PO.NumThreads, static_cast<long long>(N), Reps,
              Unsupervised / 1e6, Supervised / 1e6, Ratio);
  if (Ratio >= 1.02) {
    std::fprintf(stderr,
                 "overhead guard FAILED: supervision costs %.2f%% with no "
                 "faults injected (bound: 2%%)\n",
                 (Ratio - 1.0) * 100.0);
    return 1;
  }
  return 0;
}

void runAblation(const char *Workload) {
  std::vector<Series> SeriesList = {
      {"DOALL + Mutex", "", Strategy::Doall, SyncMode::Mutex},
      {"DOALL + Spin", "", Strategy::Doall, SyncMode::Spin},
      {"DOALL + TM", "", Strategy::Doall, SyncMode::Tm},
      {"DOALL + Lib (nosync)", "", Strategy::Doall, SyncMode::None},
  };
  printFigure(Workload, SeriesList, QuickThreads);
}

} // namespace

int main(int argc, char **argv) {
  if (int Rc = runFallbackOverheadGuard())
    return Rc;
  runAblation("hmmer");
  runAblation("kmeans");
  runAblation("eclat");

  for (const char *Name : {"hmmer", "kmeans", "eclat"}) {
    for (SyncMode Sync : {SyncMode::Mutex, SyncMode::Spin, SyncMode::Tm}) {
      Series S{std::string("DOALL+") + syncModeName(Sync), "",
               Strategy::Doall, Sync};
      registerSchemeBenchmark(Name, S, 8);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
