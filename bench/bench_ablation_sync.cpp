//===- bench_ablation_sync.cpp - Synchronization-mode ablation ------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// DESIGN.md ablation: the same DOALL schedule under every synchronization
// mode the engine supports (paper §4.6). Reproduces the paper's
// observations that spin locks win under high contention (456.hmmer) and
// that lock-based modes beat TM when transactions conflict persistently
// (kmeans).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace commset;
using namespace commset::bench;

namespace {

void runAblation(const char *Workload) {
  std::vector<Series> SeriesList = {
      {"DOALL + Mutex", "", Strategy::Doall, SyncMode::Mutex},
      {"DOALL + Spin", "", Strategy::Doall, SyncMode::Spin},
      {"DOALL + TM", "", Strategy::Doall, SyncMode::Tm},
      {"DOALL + Lib (nosync)", "", Strategy::Doall, SyncMode::None},
  };
  printFigure(Workload, SeriesList, QuickThreads);
}

} // namespace

int main(int argc, char **argv) {
  runAblation("hmmer");
  runAblation("kmeans");
  runAblation("eclat");

  for (const char *Name : {"hmmer", "kmeans", "eclat"}) {
    for (SyncMode Sync : {SyncMode::Mutex, SyncMode::Spin, SyncMode::Tm}) {
      Series S{std::string("DOALL+") + syncModeName(Sync), "",
               Strategy::Doall, Sync};
      registerSchemeBenchmark(Name, S, 8);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
