//===- bench_fig6_eclat.cpp - Figure 6d -----------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// Paper (Figure 6d, §5.3): ECLAT, DOALL + Mutex best at 7.5x (critical
// sections are a small fraction of the heavy intersection work); without
// the COMMSET on the database read the DAG-SCC collapses and DSWP yields
// little.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace commset;
using namespace commset::bench;

int main(int argc, char **argv) {
  std::vector<Series> SeriesList = {
      {"Comm-DOALL + Mutex", "", Strategy::Doall, SyncMode::Mutex},
      {"Comm-DOALL + Spin", "", Strategy::Doall, SyncMode::Spin},
      {"Comm-PS-DSWP + Mutex", "", Strategy::PsDswp, SyncMode::Mutex},
      {"Non-COMMSET DSWP", "plain", Strategy::Dswp, SyncMode::Mutex},
      {"Non-COMMSET PS-DSWP", "plain", Strategy::PsDswp, SyncMode::Mutex},
  };
  return figureMain(argc, argv, "eclat", SeriesList);
}
