//===- bench_fig6_em3d.cpp - Figure 6e ------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// Paper (Figure 6e, §5.4): em3d, PS-DSWP + Lib best at 5.8-5.9x; DOALL is
// inapplicable (pointer-chasing outer loop); without RNG commutativity the
// two-stage DSWP reaches only 1.2x.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace commset;
using namespace commset::bench;

int main(int argc, char **argv) {
  std::vector<Series> SeriesList = {
      {"Comm-PS-DSWP + Lib", "", Strategy::PsDswp, SyncMode::None},
      {"Comm-PS-DSWP + Mutex", "", Strategy::PsDswp, SyncMode::Mutex},
      {"Comm-DOALL (inapplicable)", "", Strategy::Doall, SyncMode::None},
      {"Non-COMMSET DSWP", "plain", Strategy::Dswp, SyncMode::Mutex},
  };
  return figureMain(argc, argv, "em3d", SeriesList);
}
