//===- bench_fig6_geomean.cpp - Figure 6i ---------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// Paper (Figure 6i, §5.8): geomean speedup over the eight programs — 5.7x
// on 8 threads for COMMSET parallelizations versus 1.49x for the best
// non-COMMSET parallelization (four programs do not parallelize at all
// without the annotations).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>
#include <cstdio>

using namespace commset;
using namespace commset::bench;

namespace {

struct ProgramChoice {
  const char *Name;
  Series Best; // Paper-reported best COMMSET scheme.
};

const ProgramChoice Programs[] = {
    {"md5sum", {"DOALL + Lib", "", Strategy::Doall, SyncMode::None}},
    {"hmmer", {"DOALL + Spin", "", Strategy::Doall, SyncMode::Spin}},
    {"geti",
     {"PS-DSWP + Lib (det.)", "noself", Strategy::PsDswp, SyncMode::None}},
    {"eclat", {"DOALL + Mutex", "", Strategy::Doall, SyncMode::Mutex}},
    {"em3d", {"PS-DSWP + Lib", "", Strategy::PsDswp, SyncMode::None}},
    {"potrace", {"DOALL + Lib", "", Strategy::Doall, SyncMode::None}},
    {"kmeans", {"PS-DSWP + Mutex", "", Strategy::PsDswp, SyncMode::Mutex}},
    {"url", {"DOALL + Spin", "", Strategy::Doall, SyncMode::Spin}},
};

void runGeomean(unsigned Threads, double &CommGeo, double &PlainGeo) {
  double CommLog = 0, PlainLog = 0;
  printf("\n=== Figure 6i at %u threads ===\n", Threads);
  printf("%-10s %-26s %10s %10s\n", "program", "COMMSET scheme", "COMMSET",
         "non-COMMSET");
  for (const ProgramChoice &P : Programs) {
    FigureRunner Runner(P.Name);
    Measurement Comm = Runner.measure(P.Best, Threads);
    double CommSpeedup = Comm.Applicable ? Comm.Speedup : 1.0;
    std::string PlainScheme;
    Measurement Plain =
        Runner.measureBest("plain", SyncMode::Mutex, Threads, &PlainScheme);
    printf("%-10s %-26s %10.2f %10.2f (%s)\n", P.Name, P.Best.Label.c_str(),
           CommSpeedup, Plain.Speedup, PlainScheme.c_str());
    CommLog += std::log(CommSpeedup);
    PlainLog += std::log(Plain.Speedup);
  }
  CommGeo = std::exp(CommLog / std::size(Programs));
  PlainGeo = std::exp(PlainLog / std::size(Programs));
  printf("%-10s %-26s %10.2f %10.2f\n", "GEOMEAN", "", CommGeo, PlainGeo);
  printf("(paper: 5.7x COMMSET vs 1.49x best non-COMMSET)\n");
  fflush(stdout);
}

} // namespace

int main(int argc, char **argv) {
  double CommGeo = 0, PlainGeo = 0;
  runGeomean(8, CommGeo, PlainGeo);

  ::benchmark::RegisterBenchmark(
      "geomean/8threads",
      [](::benchmark::State &State) {
        double Comm = 0, Plain = 0;
        for (auto _ : State)
          runGeomean(8, Comm, Plain);
        State.counters["commset_geomean"] = Comm;
        State.counters["noncommset_geomean"] = Plain;
      })
      ->Iterations(1)
      ->Unit(::benchmark::kMillisecond);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
