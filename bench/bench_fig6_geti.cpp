//===- bench_fig6_geti.cpp - Figure 6c ------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// Paper (Figure 6c, §5.2): GETI, PS-DSWP + Lib best at 3.6x on 8 threads
// with deterministic output; DOALL leads at low thread counts but loses to
// the pipeline as output-lock traffic grows.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace commset;
using namespace commset::bench;

int main(int argc, char **argv) {
  std::vector<Series> SeriesList = {
      {"Comm-PS-DSWP + Lib (det.)", "noself", Strategy::PsDswp,
       SyncMode::None},
      {"Comm-DOALL + Lib", "", Strategy::Doall, SyncMode::None},
      {"Comm-DOALL + Mutex", "", Strategy::Doall, SyncMode::Mutex},
      {"Non-COMMSET best", "plain", Strategy::PsDswp, SyncMode::Mutex},
  };
  return figureMain(argc, argv, "geti", SeriesList);
}
