//===- bench_fig6_hmmer.cpp - Figure 6b -----------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// Paper (Figure 6b, §5.1): 456.hmmer, DOALL + Spin best at 5.82x; spin
// beats mutex (no sleep/wakeup in the contended RNG sections) beats TM;
// the three-stage PS-DSWP reaches 5.3x by moving the RNG off the critical
// path.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace commset;
using namespace commset::bench;

int main(int argc, char **argv) {
  std::vector<Series> SeriesList = {
      {"Comm-DOALL + Spin", "", Strategy::Doall, SyncMode::Spin},
      {"Comm-DOALL + Mutex", "", Strategy::Doall, SyncMode::Mutex},
      {"Comm-DOALL + TM", "", Strategy::Doall, SyncMode::Tm},
      {"Comm-PS-DSWP + Spin", "", Strategy::PsDswp, SyncMode::Spin},
      {"Non-COMMSET best", "plain", Strategy::PsDswp, SyncMode::Mutex},
  };
  return figureMain(argc, argv, "hmmer", SeriesList);
}
