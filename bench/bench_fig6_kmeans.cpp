//===- bench_fig6_kmeans.cpp - Figure 6g ----------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// Paper (Figure 6g, §5.6): kmeans, DOALL promising to ~4x at five threads
// then degrading on center-lock contention; the three-stage PS-DSWP keeps
// scaling to 5.2x by running the contended update in a sequential stage;
// TM trails (2.7x on 8 threads).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace commset;
using namespace commset::bench;

int main(int argc, char **argv) {
  std::vector<Series> SeriesList = {
      {"Comm-PS-DSWP + Mutex", "", Strategy::PsDswp, SyncMode::Mutex},
      {"Comm-DOALL + Mutex", "", Strategy::Doall, SyncMode::Mutex},
      {"Comm-DOALL + Spin", "", Strategy::Doall, SyncMode::Spin},
      {"Comm-DOALL + TM", "", Strategy::Doall, SyncMode::Tm},
      {"Non-COMMSET best", "plain", Strategy::PsDswp, SyncMode::Mutex},
  };
  return figureMain(argc, argv, "kmeans", SeriesList);
}
