//===- bench_fig6_md5sum.cpp - Figure 6a ----------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// Paper (Figure 6a, Table 2): md5sum, best scheme DOALL + Lib at 7.6x on 8
// threads; the deterministic-output variant runs PS-DSWP at 5.8x; without
// COMMSET the loop does not parallelize (DOALL inapplicable, only a thin
// pipeline remains).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace commset;
using namespace commset::bench;

int main(int argc, char **argv) {
  std::vector<Series> SeriesList = {
      {"Comm-DOALL + Lib", "", Strategy::Doall, SyncMode::None},
      {"Comm-DOALL + Mutex", "", Strategy::Doall, SyncMode::Mutex},
      {"Comm-PS-DSWP + Lib (det.)", "noself", Strategy::PsDswp,
       SyncMode::None},
      {"Non-COMMSET DOALL", "plain", Strategy::Doall, SyncMode::None},
      {"Non-COMMSET PS-DSWP", "plain", Strategy::PsDswp, SyncMode::None},
  };
  return figureMain(argc, argv, "md5sum", SeriesList);
}
