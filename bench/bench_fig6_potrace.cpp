//===- bench_fig6_potrace.cpp - Figure 6f ---------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// Paper (Figure 6f, §5.5): potrace, DOALL 5.5x peaking near 7 threads
// (output I/O costs bound further scaling); the single-output-file variant
// keeps writes sequential and is limited to 2.2x under PS-DSWP.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace commset;
using namespace commset::bench;

int main(int argc, char **argv) {
  std::vector<Series> SeriesList = {
      {"Comm-DOALL + Lib", "", Strategy::Doall, SyncMode::None},
      {"Comm-PS-DSWP + Lib", "", Strategy::PsDswp, SyncMode::None},
      {"Comm-PS-DSWP single-file", "noself", Strategy::PsDswp,
       SyncMode::None},
      {"Non-COMMSET best", "plain", Strategy::PsDswp, SyncMode::None},
  };
  return figureMain(argc, argv, "potrace", SeriesList);
}
