//===- bench_fig6_url.cpp - Figure 6h -------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// Paper (Figure 6h, §5.7): url switching, DOALL + Spin best at 7.7x (low
// dequeue contention, matching fully overlapped); the two-stage PS-DSWP
// reaches 3.7x. COMMSETNOSYNC keeps the logger lock-free.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace commset;
using namespace commset::bench;

int main(int argc, char **argv) {
  std::vector<Series> SeriesList = {
      {"Comm-DOALL + Spin", "", Strategy::Doall, SyncMode::Spin},
      {"Comm-DOALL + Mutex", "", Strategy::Doall, SyncMode::Mutex},
      {"Comm-PS-DSWP + Spin", "", Strategy::PsDswp, SyncMode::Spin},
      {"Non-COMMSET best", "plain", Strategy::PsDswp, SyncMode::Spin},
  };
  return figureMain(argc, argv, "url", SeriesList);
}
