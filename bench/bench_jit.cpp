//===- bench_jit.cpp - Native-backend speedup guard -----------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// DESIGN.md §8 speedup guard: the baseline x86-64 backend exists to take
// interpreter dispatch off the hot path, so it must actually do that. An
// arithmetic-dense loop (the backend's best case: every opcode has a
// stencil, nothing escapes to the runtime) is run sequentially under both
// backends on real threads; the guard requires the native run to be at
// least MinSpeedup x faster (best-of-Reps wall time, which filters
// scheduler noise on loaded CI hosts).
//
// The same loop is also run once with edge operands flowing through
// Div/Rem (INT64_MIN / -1 among them) and the results compared across
// backends, so the guard doubles as an end-to-end divergence check.
//
// Exits non-zero on a violated bound or a divergence, like the other
// ablation guards. On hosts without the JIT (non-x86-64 or
// -DCOMMSET_JIT=OFF) it prints a notice and exits 0 — the ctest
// registration is arch-gated, but the binary itself builds everywhere.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "commset/Driver/Compilation.h"
#include "commset/Exec/Interpreter.h"
#include "commset/Exec/JitBackend.h"
#include "commset/Exec/LoopExecutors.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

using namespace commset;
using namespace commset::bench;

namespace {

constexpr int64_t N = 400000; // Outer trip count of the kernel loop.
constexpr int Reps = 3;       // Best-of wall-time repetitions.
constexpr double MinSpeedup = 3.0;

// Arithmetic-dense kernel: integer mul/add/sub chains, a float pipeline,
// compares, and a sprinkle of div/rem, all loop-local — no native calls,
// no globals, so the whole body compiles to stencils and the measurement
// isolates dispatch cost. Cheap ops dominate on purpose: idiv costs the
// same tens of cycles under either backend, so a division-heavy loop
// would dilute the dispatch win the guard is meant to measure.
const char *Src =
    "int kernel(int n) {\n"
    "  int acc = 0;\n"
    "  double facc = 0.0;\n"
    "  for (int i = 1; i <= n; i = i + 1) {\n"
    "    int a = i * 2654435761 + acc;\n"
    "    int b = a * 31 + i * 7 - (a + i);\n"
    "    int c = b * 131 + a * 3 - b;\n"
    "    int d = c + a * 5 - i * 11;\n"
    "    int e = d * 2 + c - a + b * 9;\n"
    "    int q = e / (i % 7 + 1);\n"
    "    int r = q * 3 - e + d - c;\n"
    "    double f = q * 0.5 + i * 0.25;\n"
    "    double g = f * 1.5 - i * 0.125 + f * 0.0625;\n"
    "    facc = facc * 0.5 + g * 0.015625;\n"
    "    if (r > acc) { acc = acc + r - d + c - b; }\n"
    "    else { acc = acc - r + d - c + b - a; }\n"
    "  }\n"
    "  return acc + facc;\n"
    "}\n"
    "int edges(int n) {\n"
    "  int acc = 0;\n"
    "  for (int i = 0; i < n; i = i + 1) {\n"
    "    int e = (-9223372036854775807 - 1) / (i % 3 - 1);\n"
    "    int w = 9223372036854775807 + i;\n"
    "    acc = acc + e % 97 + w % 89;\n"
    "  }\n"
    "  return acc;\n"
    "}\n";

/// Best-of-Reps wall ns of one sequential run of \p Fn; the result is
/// written to \p ResultOut (asserted identical across reps).
uint64_t timeRun(Compilation &C, const char *Fn, int64_t Trip,
                 const ExecBackend *Backend, int64_t &ResultOut) {
  const NativeRegistry Natives;
  uint64_t Best = ~0ull;
  for (int R = 0; R < Reps; ++R) {
    auto Globals = makeGlobalImage(C.module());
    Interpreter Interp(C.module(), Natives, Globals.data(), {}, nullptr, 0,
                       Backend);
    const Function *F = C.module().findFunction(Fn);
    auto T0 = std::chrono::steady_clock::now();
    RtValue Out = Interp.call(F, {RtValue::ofInt(Trip)});
    auto T1 = std::chrono::steady_clock::now();
    uint64_t Ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
            .count());
    if (Ns < Best)
      Best = Ns;
    ResultOut = Out.I;
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = extractJsonPath(argc, argv);

  if (!JitBackend::supported()) {
    std::printf("jit guard: backend not supported on this host/build; "
                "skipping\n");
    return 0;
  }

  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(Src, Diags);
  if (!C) {
    std::fprintf(stderr, "jit guard: compile failed:\n%s",
                 Diags.str().c_str());
    return 1;
  }
  auto Jit = JitBackend::create(C->module());
  if (!Jit) {
    std::fprintf(stderr, "jit guard: JitBackend::create failed\n");
    return 1;
  }
  if (Jit->fallbackCount() != 0) {
    std::fprintf(stderr,
                 "jit guard: %u function(s) fell back to the interpreter "
                 "in an all-stencil kernel\n",
                 Jit->fallbackCount());
    return 1;
  }

  int64_t InterpResult = 0, JitResult = 0;
  uint64_t InterpNs = timeRun(*C, "kernel", N, nullptr, InterpResult);
  uint64_t JitNs = timeRun(*C, "kernel", N, Jit.get(), JitResult);
  double Speedup = JitNs ? static_cast<double>(InterpNs) / JitNs : 0.0;

  int64_t InterpEdges = 0, JitEdges = 0;
  timeRun(*C, "edges", 10000, nullptr, InterpEdges);
  timeRun(*C, "edges", 10000, Jit.get(), JitEdges);

  std::printf("Native-backend guard (sequential, n=%lld, best of %d)\n",
              static_cast<long long>(N), Reps);
  std::printf("  %-8s  %12s\n", "backend", "wall ms");
  std::printf("  %-8s  %12.3f\n", "interp", InterpNs / 1e6);
  std::printf("  %-8s  %12.3f\n", "jit", JitNs / 1e6);
  std::printf("  speedup: %.2fx (bound >= %.2fx), %u fns native, "
              "%zu code bytes\n\n",
              Speedup, MinSpeedup, Jit->compiledCount(), Jit->codeBytes());

  std::vector<BenchRecord> Records;
  for (bool Native : {false, true}) {
    BenchRecord R;
    R.Workload = "jit_kernel";
    R.Label = Native ? "jit" : "interp";
    R.Scheme = "Sequential";
    R.Sync = "None";
    R.Threads = 1;
    R.Applicable = true;
    R.VirtualNs = Native ? JitNs : InterpNs;
    R.SeqVirtualNs = InterpNs;
    R.Speedup = Native ? Speedup : 1.0;
    Records.push_back(R);
  }
  if (!maybeWriteJson(JsonPath, Records))
    return 1;

  int Rc = 0;
  if (InterpResult != JitResult) {
    std::fprintf(stderr,
                 "jit guard FAILED: kernel result diverged "
                 "(interp %lld, jit %lld)\n",
                 static_cast<long long>(InterpResult),
                 static_cast<long long>(JitResult));
    Rc = 1;
  }
  if (InterpEdges != JitEdges) {
    std::fprintf(stderr,
                 "jit guard FAILED: edge-operand result diverged "
                 "(interp %lld, jit %lld)\n",
                 static_cast<long long>(InterpEdges),
                 static_cast<long long>(JitEdges));
    Rc = 1;
  }
  if (Speedup < MinSpeedup) {
    std::fprintf(stderr,
                 "jit guard FAILED: speedup %.2fx below required %.2fx\n",
                 Speedup, MinSpeedup);
    Rc = 1;
  }
  return Rc;
}
