//===- bench_sched_skew.cpp - Iteration-scheduling policy guard -----------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// DESIGN.md scheduling ablation: the same DOALL loop under the three
// iteration-scheduling policies (static | dynamic | guided), on two cost
// distributions, in simulated virtual time (deterministic, so single runs
// are exact):
//
//  - skewed: every 8th iteration costs 8x. Static round-robin assignment
//    at 8 threads lands every heavy iteration on thread 0, so the region
//    ends when thread 0 does; dynamic and guided rebalance via the shared
//    chunk counter. Guard: dynamic and guided >= 1.3x faster than static.
//
//  - uniform: all iterations cost the same. Static is optimal here (no
//    scheduling traffic at all), so the guard bounds what the chunk-claim
//    charges may cost: dynamic and guided within 2% of static.
//
// Exits non-zero when either bound is violated, like the sync/resilience
// overhead guards in bench_ablation_sync.cpp. --json=FILE dumps the six
// measurements as BenchRecords.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "commset/Driver/Runner.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

using namespace commset;
using namespace commset::bench;

namespace {

constexpr unsigned Threads = 8;
constexpr int64_t N = 4096;         // Iterations; multiple of the skew stride.
constexpr uint64_t WorkNs = 20000;  // Virtual cost of one work() call.
constexpr uint64_t RecordNs = 400;  // Virtual cost of one record() call.
constexpr int64_t SkewStride = 8;   // Every 8th iteration is heavy...
constexpr uint64_t SkewFactor = 8;  // ...at 8x the base cost.

const char *Src = "extern int work(int x);\n"
                  "#pragma commset member(SELF)\n"
                  "extern void record(int i, int v);\n"
                  "#pragma commset effects(work, pure)\n"
                  "#pragma commset effects(record, reads(out), writes(out))\n"
                  "void run(int n) {\n"
                  "  for (int i = 0; i < n; i++) {\n"
                  "    record(i, work(i));\n"
                  "  }\n"
                  "}\n";

/// Simulated virtual ns of one DOALL run of the loop under \p Sched, with
/// the per-iteration cost model selected by \p Skew. 0 on failure.
uint64_t runOne(SchedPolicy Sched, bool Skew) {
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(Src, Diags);
  std::unique_ptr<Compilation::LoopTarget> T;
  if (C)
    T = C->analyzeLoop("run", Diags);
  if (!C || !T) {
    std::fprintf(stderr, "sched guard: compile/analyze failed:\n%s",
                 Diags.str().c_str());
    return 0;
  }

  PlanOptions PO;
  PO.NumThreads = Threads;
  PO.Sync = SyncMode::Mutex;
  PO.Sched = Sched;
  PO.NativeCostHints = {{"work", double(WorkNs)}, {"record", double(RecordNs)}};
  auto Schemes = buildAllSchemes(*C, *T, PO);
  const SchemeReport *Doall = nullptr;
  for (const SchemeReport &S : Schemes)
    if (S.Kind == Strategy::Doall)
      Doall = &S;
  if (!Doall || !Doall->Applicable || !Doall->Plan) {
    std::fprintf(stderr, "sched guard: DOALL not applicable: %s\n",
                 Doall ? Doall->WhyNot.c_str() : "no scheme");
    return 0;
  }

  NativeRegistry Natives;
  Natives.add(
      "work",
      [](const RtValue *Args, unsigned) {
        return RtValue::ofInt(Args[0].I * Args[0].I + 1);
      },
      [Skew](const RtValue *Args, unsigned) {
        if (Skew && Args[0].I % SkewStride == 0)
          return WorkNs * SkewFactor;
        return WorkNs;
      });
  Natives.add("record", [](const RtValue *, unsigned) { return RtValue(); },
              RecordNs);

  RunConfig Config;
  Config.Plan = &*Doall->Plan;
  Config.Simulate = true;
  RunOutcome Out = runScheme(*C, T->F, {RtValue::ofInt(N)}, Natives, Config);
  if (Out.Status != RunStatus::Ok) {
    std::fprintf(stderr, "sched guard: unexpected status %s: %s\n",
                 runStatusName(Out.Status), Out.Diagnostic.c_str());
    return 0;
  }
  return Out.VirtualNs;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = extractJsonPath(argc, argv);

  const SchedPolicy Policies[] = {SchedPolicy::Static, SchedPolicy::Dynamic,
                                  SchedPolicy::Guided};
  uint64_t Skewed[3] = {}, Uniform[3] = {};
  std::vector<BenchRecord> Records;
  for (int I = 0; I < 3; ++I) {
    Skewed[I] = runOne(Policies[I], /*Skew=*/true);
    Uniform[I] = runOne(Policies[I], /*Skew=*/false);
    if (!Skewed[I] || !Uniform[I])
      return 1;
    for (bool Skew : {true, false}) {
      BenchRecord R;
      R.Workload = Skew ? "sched_skew" : "sched_uniform";
      R.Label = std::string("DOALL sched=") + schedPolicyName(Policies[I]);
      R.Scheme = "DOALL";
      R.Sync = "Mutex";
      R.Threads = Threads;
      R.Applicable = true;
      R.VirtualNs = Skew ? Skewed[I] : Uniform[I];
      R.SeqVirtualNs = Skew ? Skewed[0] : Uniform[0]; // static baseline
      R.Speedup = static_cast<double>(R.SeqVirtualNs) / R.VirtualNs;
      Records.push_back(R);
    }
  }

  std::printf("Scheduling-policy guard (DOALL x%u, n=%lld, every %lldth "
              "iteration %llux, simulated)\n",
              Threads, static_cast<long long>(N),
              static_cast<long long>(SkewStride),
              static_cast<unsigned long long>(SkewFactor));
  std::printf("  %-8s  %12s  %12s\n", "policy", "skewed ms", "uniform ms");
  for (int I = 0; I < 3; ++I)
    std::printf("  %-8s  %12.3f  %12.3f\n", schedPolicyName(Policies[I]),
                Skewed[I] / 1e6, Uniform[I] / 1e6);

  double DynGain = static_cast<double>(Skewed[0]) / Skewed[1];
  double GuidedGain = static_cast<double>(Skewed[0]) / Skewed[2];
  double DynOverhead = static_cast<double>(Uniform[1]) / Uniform[0];
  double GuidedOverhead = static_cast<double>(Uniform[2]) / Uniform[0];
  std::printf("  skewed: dynamic %.2fx, guided %.2fx over static "
              "(bound >= 1.30)\n"
              "  uniform: dynamic %.4f, guided %.4f of static "
              "(bound within 2%%)\n\n",
              DynGain, GuidedGain, DynOverhead, GuidedOverhead);

  if (!maybeWriteJson(JsonPath, Records))
    return 1;

  int Rc = 0;
  if (DynGain < 1.30 || GuidedGain < 1.30) {
    std::fprintf(stderr,
                 "sched guard FAILED: skewed-loop gain below 1.30x "
                 "(dynamic %.2fx, guided %.2fx)\n",
                 DynGain, GuidedGain);
    Rc = 1;
  }
  if (std::fabs(DynOverhead - 1.0) > 0.02 ||
      std::fabs(GuidedOverhead - 1.0) > 0.02) {
    std::fprintf(stderr,
                 "sched guard FAILED: uniform-loop overhead above 2%% "
                 "(dynamic %.4f, guided %.4f)\n",
                 DynOverhead, GuidedOverhead);
    Rc = 1;
  }
  return Rc;
}
