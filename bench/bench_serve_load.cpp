//===- bench_serve_load.cpp - commsetd overload behavior guard ------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// Closed-loop load generator against an in-process commsetd. Two phases,
// each against a fresh server:
//
//  - uncontended: one client, no admission limits. Establishes the
//    baseline throughput (capacity of the single executor) and the
//    uncontended latency percentiles.
//
//  - overload: admission rate pinned to the measured capacity, queue
//    depth capped, then ~2x that load offered from many concurrent
//    closed-loop clients. A robust server sheds the excess explicitly
//    (REJECTED_OVERLOAD) and keeps the latency of the jobs it does accept
//    bounded: the guard requires sheds > 0 and accepted p99 within 5x of
//    the uncontended p99 (goodput protected, no collapse).
//
// The request mix is Zipf-flavored over the eight fig6 workloads (hot
// md5sum/kmeans head, long tail), so the plan cache sees both hits and
// evictions. --json=FILE emits one BenchRecord per phase with throughput,
// accept/shed counts and p50/p95/p99 as Extra columns; --guard exits
// non-zero on violation (wired into ctest's serve-smoke tier).
//
//===----------------------------------------------------------------------===//

#include "commset/Serve/Server.h"
#include "commset/Workloads/BenchHarness.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

using namespace commset;
using namespace commset::serve;
using commset::bench::BenchRecord;

namespace {

const struct {
  const char *Name;
  int Scale;
  unsigned Weight;
} Mix[] = {
    {"md5sum", 48, 8}, {"kmeans", 96, 4},  {"eclat", 32, 2},
    {"url", 64, 2},    {"em3d", 48, 1},    {"geti", 48, 1},
    {"hmmer", 32, 1},  {"potrace", 32, 1},
};

struct PhaseResult {
  uint64_t Sent = 0;
  uint64_t Completed = 0; ///< OK or DEGRADED.
  uint64_t Shed = 0;
  uint64_t Deadline = 0;
  uint64_t Errors = 0; ///< Transport/protocol/internal failures.
  double Rps = 0.0;    ///< Completed jobs per second.
  double P50Ms = 0.0, P95Ms = 0.0, P99Ms = 0.0; ///< Accepted, server-side.
};

/// Drives \p Clients closed-loop client threads for \p DurationMs against
/// \p S; latency percentiles come from the server's admitted-request
/// histogram afterwards.
PhaseResult drive(Server &S, unsigned Clients, uint64_t DurationMs,
                  uint64_t Seed) {
  unsigned TotalWeight = 0;
  for (const auto &M : Mix)
    TotalWeight += M.Weight;

  std::atomic<uint64_t> Sent{0}, Completed{0}, Shed{0}, Deadline{0},
      Errors{0};
  const uint64_t EndNs = steadyNowNs() + DurationMs * 1000000ull;

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < Clients; ++T) {
    Threads.emplace_back([&, T] {
      std::mt19937_64 Rng(faultMix(Seed ^ (uint64_t(T) << 32)));
      SyncClient Client;
      while (steadyNowNs() < EndNs) {
        if (!Client.connected() && !Client.connect(S.port())) {
          Errors.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        unsigned Pick = static_cast<unsigned>(Rng() % TotalWeight);
        unsigned Idx = 0;
        for (; Idx + 1 < std::size(Mix) && Pick >= Mix[Idx].Weight; ++Idx)
          Pick -= Mix[Idx].Weight;
        RunRequest Req;
        Req.WorkloadName = Mix[Idx].Name;
        Req.Scale = Mix[Idx].Scale;
        Req.Threads = 4;
        Req.DeadlineMs = 8000;
        RespStatus St;
        std::string Body;
        Sent.fetch_add(1, std::memory_order_relaxed);
        if (!Client.request(MsgType::Run, formatRunRequest(Req), St, Body,
                            nullptr, /*TimeoutMs=*/30000)) {
          Errors.fetch_add(1, std::memory_order_relaxed);
          Client.close();
          continue;
        }
        switch (St) {
        case RespStatus::Ok:
        case RespStatus::Degraded:
          Completed.fetch_add(1, std::memory_order_relaxed);
          break;
        case RespStatus::RejectedOverload:
          Shed.fetch_add(1, std::memory_order_relaxed);
          break;
        case RespStatus::DeadlineExceeded:
          Deadline.fetch_add(1, std::memory_order_relaxed);
          break;
        default:
          Errors.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
    });
  }
  for (auto &T : Threads)
    T.join();

  PhaseResult R;
  R.Sent = Sent.load();
  R.Completed = Completed.load();
  R.Shed = Shed.load();
  R.Deadline = Deadline.load();
  R.Errors = Errors.load();
  R.Rps = static_cast<double>(R.Completed) * 1000.0 /
          static_cast<double>(DurationMs);
  ServerStats Stats = S.stats();
  R.P50Ms = static_cast<double>(Stats.LatencyP50Ns) / 1e6;
  R.P95Ms = static_cast<double>(Stats.LatencyP95Ns) / 1e6;
  R.P99Ms = static_cast<double>(Stats.LatencyP99Ns) / 1e6;
  return R;
}

BenchRecord toRecord(const char *Label, unsigned Clients,
                     const PhaseResult &R) {
  BenchRecord Rec;
  Rec.Workload = "serve-mix";
  Rec.Label = Label;
  Rec.Scheme = "best";
  Rec.Sync = "Mutex";
  Rec.Threads = Clients;
  Rec.Applicable = true;
  Rec.Extra = {
      {"rps", R.Rps},
      {"sent", static_cast<double>(R.Sent)},
      {"completed", static_cast<double>(R.Completed)},
      {"shed", static_cast<double>(R.Shed)},
      {"deadline_exceeded", static_cast<double>(R.Deadline)},
      {"errors", static_cast<double>(R.Errors)},
      {"p50_ms", R.P50Ms},
      {"p95_ms", R.P95Ms},
      {"p99_ms", R.P99Ms},
  };
  return Rec;
}

void printPhase(const char *Label, const PhaseResult &R) {
  std::printf("%-14s sent=%-6llu completed=%-6llu shed=%-5llu "
              "deadline=%-4llu errors=%-3llu rps=%-8.1f "
              "p50=%.2fms p95=%.2fms p99=%.2fms\n",
              Label, (unsigned long long)R.Sent,
              (unsigned long long)R.Completed, (unsigned long long)R.Shed,
              (unsigned long long)R.Deadline, (unsigned long long)R.Errors,
              R.Rps, R.P50Ms, R.P95Ms, R.P99Ms);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  bool Guard = false;
  uint64_t DurationMs = 3000;
  unsigned Clients = 8;
  uint64_t Seed = 1;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--json=", 0) == 0)
      JsonPath = Arg.substr(7);
    else if (Arg == "--guard")
      Guard = true;
    else if (Arg.rfind("--duration-ms=", 0) == 0)
      DurationMs = std::strtoull(Arg.c_str() + 14, nullptr, 10);
    else if (Arg.rfind("--clients=", 0) == 0)
      Clients = static_cast<unsigned>(std::strtoul(Arg.c_str() + 10,
                                                   nullptr, 10));
    else if (Arg.rfind("--seed=", 0) == 0)
      Seed = std::strtoull(Arg.c_str() + 7, nullptr, 10);
    else {
      std::fprintf(stderr,
                   "usage: bench_serve_load [--duration-ms=N] "
                   "[--clients=N] [--seed=N] [--json=FILE] [--guard]\n");
      return 64;
    }
  }

  // Phase 1: uncontended baseline — one client, no admission limits.
  PhaseResult Base;
  {
    ServerConfig Config;
    Config.CacheCapacity = 16;
    Config.Admission.MaxQueueDepth = 1u << 20; // Effectively unlimited.
    Config.DefaultDeadlineMs = 8000;
    Config.MaxDeadlineMs = 10000;
    Server S(Config);
    std::string Err;
    if (!S.start(&Err)) {
      std::fprintf(stderr, "bench_serve_load: %s\n", Err.c_str());
      return 1;
    }
    Base = drive(S, 1, DurationMs, Seed);
    S.stop();
  }
  printPhase("uncontended", Base);
  if (!Base.Completed || Base.Errors) {
    std::fprintf(stderr,
                 "bench_serve_load: baseline phase unhealthy (completed="
                 "%llu errors=%llu)\n",
                 (unsigned long long)Base.Completed,
                 (unsigned long long)Base.Errors);
    return 1;
  }

  // Phase 2: overload — admission pinned to measured capacity, ~2x that
  // offered from closed-loop concurrent clients.
  PhaseResult Over;
  {
    ServerConfig Config;
    Config.CacheCapacity = 16;
    Config.Admission.RatePerSec = Base.Rps; // Capacity from phase 1.
    Config.Admission.Burst = 8;
    Config.Admission.MaxQueueDepth = 8;
    Config.DefaultDeadlineMs = 8000;
    Config.MaxDeadlineMs = 10000;
    Server S(Config);
    std::string Err;
    if (!S.start(&Err)) {
      std::fprintf(stderr, "bench_serve_load: %s\n", Err.c_str());
      return 1;
    }
    Over = drive(S, Clients, DurationMs, Seed + 1);
    S.stop();
  }
  printPhase("overload", Over);

  std::vector<BenchRecord> Records = {toRecord("serve-uncontended", 1, Base),
                                      toRecord("serve-overload", Clients,
                                               Over)};
  if (!JsonPath.empty()) {
    std::string Err;
    if (!commset::bench::writeBenchJson(JsonPath, Records, &Err)) {
      std::fprintf(stderr, "bench_serve_load: %s\n", Err.c_str());
      return 1;
    }
    std::printf("wrote %s\n", JsonPath.c_str());
  }

  if (Guard) {
    bool Ok = true;
    if (Over.Shed == 0) {
      std::fprintf(stderr, "GUARD: overload phase shed nothing — "
                           "admission control is not engaging\n");
      Ok = false;
    }
    if (Over.Completed == 0) {
      std::fprintf(stderr, "GUARD: overload phase completed nothing — "
                           "goodput collapsed\n");
      Ok = false;
    }
    if (Base.P99Ms > 0 && Over.P99Ms > 5.0 * Base.P99Ms) {
      std::fprintf(stderr,
                   "GUARD: accepted p99 under overload %.2fms exceeds "
                   "5x uncontended p99 %.2fms\n",
                   Over.P99Ms, Base.P99Ms);
      Ok = false;
    }
    if (Over.Errors) {
      std::fprintf(stderr, "GUARD: %llu transport/internal errors under "
                           "overload\n",
                   (unsigned long long)Over.Errors);
      Ok = false;
    }
    if (!Ok)
      return 1;
    std::printf("GUARD: ok (shed=%llu, p99 %.2fms <= 5x %.2fms)\n",
                (unsigned long long)Over.Shed, Over.P99Ms, Base.P99Ms);
  }
  return 0;
}
