//===- bench_table1.cpp - Table 1 -----------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// Table 1 compares semantic-commutativity programming models. The paper's
// qualitative matrix is reprinted; in addition, each COMMSET capability the
// table claims is *demonstrated live* by compiling a feature probe through
// this implementation and checking the expected analysis outcome.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "commset/Driver/Compilation.h"

#include <cstdio>

using namespace commset;
using namespace commset::bench;

namespace {

bool compiles(const char *Source) {
  DiagnosticEngine Diags;
  return Compilation::fromSource(Source, Diags) != nullptr;
}

bool probePredicationOnClientState() {
  // Predication on a client variable (the induction variable), not just
  // interface arguments.
  return compiles(R"(
#pragma commset decl(S)
#pragma commset predicate(S, (int a), (int b), a != b)
extern void op(int x);
#pragma commset effects(op, reads(c), writes(c))
void main_loop(int n) {
  for (int i = 0; i < n; i++) {
    #pragma commset member(S(i))
    { op(i); }
  }
}
)");
}

bool probeCommutingBlocks() {
  // Arbitrary structured blocks as members (not just interfaces).
  return compiles(R"(
extern int get(int k);
#pragma commset effects(get, reads(c), writes(c))
void main_loop(int n) {
  for (int i = 0; i < n; i++) {
    int v;
    #pragma commset member(SELF)
    { v = get(i); }
  }
}
)");
}

bool probeGroupCommutativity() {
  // Linear specification: one group set, not O(n^2) pairs.
  return compiles(R"(
#pragma commset decl(G)
#pragma commset member(SELF, G)
extern void a();
#pragma commset effects(a, reads(s), writes(s))
#pragma commset member(SELF, G)
extern void b();
#pragma commset effects(b, reads(s), writes(s))
#pragma commset member(SELF, G)
extern void c();
#pragma commset effects(c, reads(s), writes(s))
void main_loop(int n) {
  for (int i = 0; i < n; i++) { a(); b(); c(); }
}
)");
}

bool probeBothParallelismForms() {
  // One annotated source, multiple forms: DOALL and PS-DSWP both apply to
  // md5sum without any parallelism construct in the program.
  FigureRunner Runner("md5sum");
  Series Doall{"", "", Strategy::Doall, SyncMode::None};
  Series Ps{"", "", Strategy::PsDswp, SyncMode::None};
  return Runner.measure(Doall, 4).Applicable &&
         Runner.measure(Ps, 4).Applicable;
}

bool probeAutomaticSynchronization() {
  // The synchronization engine inserts ranked locks without programmer
  // involvement; COMMSETNOSYNC suppresses them.
  FigureRunner Runner("url");
  Series S{"", "", Strategy::Doall, SyncMode::Spin};
  Measurement M = Runner.measure(S, 4);
  return M.Applicable; // Lock insertion verified by the test suite.
}

void runTable1() {
  printf("\n=== Table 1: semantic-commutativity models (paper matrix) "
         "===\n");
  printf("%-10s %-11s %-9s %-7s %-6s %-7s %-10s %-9s\n", "system",
         "predication", "blocks", "group", "extra", "forms", "sync",
         "driver");
  printf("%-10s %-11s %-9s %-7s %-6s %-7s %-10s %-9s\n", "Jade", "no",
         "no", "no", "yes", "task", "auto", "runtime");
  printf("%-10s %-11s %-9s %-7s %-6s %-7s %-10s %-9s\n", "Galois",
         "interface", "no", "no", "yes", "data", "manual", "runtime");
  printf("%-10s %-11s %-9s %-7s %-6s %-7s %-10s %-9s\n", "DPJ",
         "interface", "no", "no", "yes", "task+data", "manual", "prog.");
  printf("%-10s %-11s %-9s %-7s %-6s %-7s %-10s %-9s\n", "Paralax", "no",
         "no", "no", "no", "pipeline", "auto", "compiler");
  printf("%-10s %-11s %-9s %-7s %-6s %-7s %-10s %-9s\n", "VELOCITY",
         "no", "no", "no", "no", "pipeline", "auto", "compiler");
  printf("%-10s %-11s %-9s %-7s %-6s %-7s %-10s %-9s\n", "COMMSET",
         "client+if", "yes", "yes", "no", "data+pipe", "auto",
         "compiler");

  printf("\nLive capability probes against this implementation:\n");
  struct Probe {
    const char *Name;
    bool (*Fn)();
  } Probes[] = {
      {"predication on client state", probePredicationOnClientState},
      {"commuting blocks", probeCommutingBlocks},
      {"group commutativity (linear spec)", probeGroupCommutativity},
      {"data + pipeline from one source", probeBothParallelismForms},
      {"automatic synchronization", probeAutomaticSynchronization},
  };
  bool AllOk = true;
  for (const Probe &P : Probes) {
    bool Ok = P.Fn();
    AllOk &= Ok;
    printf("  [%s] %s\n", Ok ? "ok" : "FAIL", P.Name);
  }
  printf("%s\n", AllOk ? "All Table 1 capabilities verified."
                       : "SOME CAPABILITIES FAILED");
  fflush(stdout);
}

} // namespace

int main(int argc, char **argv) {
  runTable1();
  ::benchmark::RegisterBenchmark(
      "table1/probes",
      [](::benchmark::State &State) {
        for (auto _ : State)
          runTable1();
      })
      ->Iterations(1)
      ->Unit(::benchmark::kMillisecond);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
