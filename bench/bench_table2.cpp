//===- bench_table2.cpp - Table 2 -----------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// Regenerates Table 2: per program, the number of COMMSET annotations, the
// source size, which parallelizing transforms apply, and the best scheme /
// synchronization at 8 threads with its simulated speedup.
//
// Paper rows (for comparison):
//   md5sum  10 ann.  DOALL,PS-DSWP   7.6x DOALL+Lib
//   hmmer    9 ann.  DOALL,PS-DSWP   5.8x DOALL+Spin
//   geti    11 ann.  DOALL,PS-DSWP   3.6x PS-DSWP+Lib
//   eclat   11 ann.  DOALL,DSWP      7.5x DOALL+Mutex
//   em3d     8 ann.  DSWP,PS-DSWP    5.8x PS-DSWP+Lib
//   potrace 10 ann.  DOALL,PS-DSWP   5.5x DOALL+Lib
//   kmeans   1 ann.  DOALL,PS-DSWP   5.2x PS-DSWP
//   url      2 ann.  DOALL,PS-DSWP   7.7x DOALL+Spin
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace commset;
using namespace commset::bench;

namespace {

void runTable2() {
  printf("\n=== Table 2: programs, annotations, transforms, best scheme "
         "(8 threads, simulated) ===\n");
  printf("%-10s %6s %6s  %-22s %8s  %s\n", "program", "#ann", "SLOC",
         "transforms", "speedup", "best scheme");

  for (const std::string &Name : workloadNames()) {
    FigureRunner Runner(Name);

    // Which transforms apply (full annotations, lock mode irrelevant).
    std::string Transforms;
    for (Strategy Kind :
         {Strategy::Doall, Strategy::Dswp, Strategy::PsDswp}) {
      Series Probe{"", "", Kind, SyncMode::Mutex};
      if (Runner.measure(Probe, 8).Applicable) {
        if (!Transforms.empty())
          Transforms += ",";
        Transforms += strategyName(Kind);
      }
    }

    // Best scheme x sync at 8 threads. geti's paper-best uses the
    // deterministic variant; include it in the search.
    double Best = 0;
    std::string BestLabel = "Sequential";
    for (const char *Variant : {"", "noself"}) {
      for (Strategy Kind :
           {Strategy::Doall, Strategy::Dswp, Strategy::PsDswp}) {
        for (SyncMode Sync :
             {SyncMode::Mutex, SyncMode::Spin, SyncMode::None,
              SyncMode::Tm}) {
          Series S{"", Variant, Kind, Sync};
          Measurement M = Runner.measure(S, 8);
          if (M.Applicable && M.Speedup > Best) {
            Best = M.Speedup;
            BestLabel = std::string(strategyName(Kind)) + " + " +
                        syncModeName(Sync);
            if (Variant[0])
              BestLabel += " (det.)";
          }
        }
      }
    }

    printf("%-10s %6u %6u  %-22s %8.2f  %s\n", Name.c_str(),
           Runner.annotationCount(), Runner.sourceLines(),
           Transforms.c_str(), Best, BestLabel.c_str());
    fflush(stdout);
  }
}

} // namespace

int main(int argc, char **argv) {
  runTable2();
  ::benchmark::RegisterBenchmark(
      "table2/regenerate",
      [](::benchmark::State &State) {
        for (auto _ : State)
          runTable2();
      })
      ->Iterations(1)
      ->Unit(::benchmark::kMillisecond);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
