//===- bench_table2.cpp - Table 2 -----------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// Regenerates Table 2: per program, the number of COMMSET annotations, the
// source size, which parallelizing transforms apply, and the best scheme /
// synchronization at 8 threads with its simulated speedup.
//
// Paper rows (for comparison):
//   md5sum  10 ann.  DOALL,PS-DSWP   7.6x DOALL+Lib
//   hmmer    9 ann.  DOALL,PS-DSWP   5.8x DOALL+Spin
//   geti    11 ann.  DOALL,PS-DSWP   3.6x PS-DSWP+Lib
//   eclat   11 ann.  DOALL,DSWP      7.5x DOALL+Mutex
//   em3d     8 ann.  DSWP,PS-DSWP    5.8x PS-DSWP+Lib
//   potrace 10 ann.  DOALL,PS-DSWP   5.5x DOALL+Lib
//   kmeans   1 ann.  DOALL,PS-DSWP   5.2x PS-DSWP
//   url      2 ann.  DOALL,PS-DSWP   7.7x DOALL+Spin
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cstdio>

using namespace commset;
using namespace commset::bench;

namespace {

void runTable2(std::vector<BenchRecord> *Records = nullptr) {
  printf("\n=== Table 2: programs, annotations, transforms, best scheme "
         "(8 threads, simulated) ===\n");
  printf("%-10s %6s %6s  %-22s %8s  %s\n", "program", "#ann", "SLOC",
         "transforms", "speedup", "best scheme");

  for (const std::string &Name : workloadNames()) {
    FigureRunner Runner(Name);

    // Which transforms apply (full annotations, lock mode irrelevant).
    std::string Transforms;
    for (Strategy Kind :
         {Strategy::Doall, Strategy::Dswp, Strategy::PsDswp}) {
      Series Probe{"", "", Kind, SyncMode::Mutex};
      if (Runner.measure(Probe, 8).Applicable) {
        if (!Transforms.empty())
          Transforms += ",";
        Transforms += strategyName(Kind);
      }
    }

    // Best scheme x sync at 8 threads. geti's paper-best uses the
    // deterministic variant; include it in the search.
    double Best = 0;
    std::string BestLabel = "Sequential";
    BenchRecord BestRec;
    BestRec.Workload = Name;
    BestRec.Label = "best";
    BestRec.Scheme = "Sequential";
    BestRec.Threads = 8;
    BestRec.Speedup = 1.0;
    for (const char *Variant : {"", "noself"}) {
      for (Strategy Kind :
           {Strategy::Doall, Strategy::Dswp, Strategy::PsDswp}) {
        for (SyncMode Sync :
             {SyncMode::Mutex, SyncMode::Spin, SyncMode::None,
              SyncMode::Tm}) {
          Series S{"", Variant, Kind, Sync};
          Measurement M = Runner.measure(S, 8);
          if (M.Applicable && M.Speedup > Best) {
            Best = M.Speedup;
            BestLabel = std::string(strategyName(Kind)) + " + " +
                        syncModeName(Sync);
            if (Variant[0])
              BestLabel += " (det.)";
            BestRec.Variant = Variant;
            BestRec.Scheme = strategyName(Kind);
            BestRec.Sync = syncModeName(Sync);
            BestRec.Applicable = true;
            BestRec.Speedup = M.Speedup;
            BestRec.VirtualNs = M.VirtualNs;
            BestRec.SeqVirtualNs = M.SeqVirtualNs;
          }
        }
      }
    }
    if (Records)
      Records->push_back(BestRec);

    printf("%-10s %6u %6u  %-22s %8.2f  %s\n", Name.c_str(),
           Runner.annotationCount(), Runner.sourceLines(),
           Transforms.c_str(), Best, BestLabel.c_str());
    fflush(stdout);
  }
}

/// Drift guard: every Figure-6 scheme DESIGN.md §4 names for a workload
/// must still be planned for it. A transform silently becoming inapplicable
/// (a planner or annotation regression) fails the run with a non-zero exit.
bool verifyFigure6Schemes() {
  struct Expectation {
    const char *Workload;
    std::vector<Strategy> Required;
    std::vector<Strategy> Forbidden;
  };
  const std::vector<Expectation> Expected = {
      {"md5sum", {Strategy::Doall, Strategy::PsDswp}, {}},
      {"hmmer", {Strategy::Doall, Strategy::PsDswp}, {}},
      {"geti", {Strategy::Doall, Strategy::PsDswp}, {}},
      {"eclat", {Strategy::Doall, Strategy::Dswp}, {}},
      // em3d's loop is pointer-chasing: pipelines apply, DOALL must not.
      {"em3d", {Strategy::Dswp, Strategy::PsDswp}, {Strategy::Doall}},
      {"potrace", {Strategy::Doall, Strategy::PsDswp}, {}},
      {"kmeans", {Strategy::Doall, Strategy::PsDswp}, {}},
      {"url", {Strategy::Doall, Strategy::PsDswp}, {}},
  };

  bool Ok = true;
  for (const Expectation &E : Expected) {
    FigureRunner Runner(E.Workload);
    for (Strategy Kind : E.Required) {
      Series Probe{"", "", Kind, SyncMode::Mutex};
      Measurement M = Runner.measure(Probe, 8);
      if (!M.Applicable) {
        fprintf(stderr,
                "table2 drift guard: %s no longer planned for %s "
                "(DESIGN.md section 4 expects it): %s\n",
                strategyName(Kind), E.Workload, M.WhyNot.c_str());
        Ok = false;
      }
    }
    for (Strategy Kind : E.Forbidden) {
      Series Probe{"", "", Kind, SyncMode::Mutex};
      if (Runner.measure(Probe, 8).Applicable) {
        fprintf(stderr,
                "table2 drift guard: %s unexpectedly applies to %s "
                "(DESIGN.md section 4 says it must not)\n",
                strategyName(Kind), E.Workload);
        Ok = false;
      }
    }
  }
  return Ok;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = extractJsonPath(argc, argv);
  if (!verifyFigure6Schemes()) {
    fprintf(stderr, "table2 drift guard failed; not regenerating table\n");
    return 1;
  }
  std::vector<BenchRecord> Records;
  runTable2(JsonPath.empty() ? nullptr : &Records);
  if (!maybeWriteJson(JsonPath, Records))
    return 1;
  ::benchmark::RegisterBenchmark(
      "table2/regenerate",
      [](::benchmark::State &State) {
        for (auto _ : State)
          runTable2();
      })
      ->Iterations(1)
      ->Unit(::benchmark::kMillisecond);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
