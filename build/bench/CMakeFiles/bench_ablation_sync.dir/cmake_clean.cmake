file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sync.dir/bench_ablation_sync.cpp.o"
  "CMakeFiles/bench_ablation_sync.dir/bench_ablation_sync.cpp.o.d"
  "bench_ablation_sync"
  "bench_ablation_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
