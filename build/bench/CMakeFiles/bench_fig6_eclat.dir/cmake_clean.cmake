file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_eclat.dir/bench_fig6_eclat.cpp.o"
  "CMakeFiles/bench_fig6_eclat.dir/bench_fig6_eclat.cpp.o.d"
  "bench_fig6_eclat"
  "bench_fig6_eclat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_eclat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
