# Empty dependencies file for bench_fig6_em3d.
# This may be replaced when dependencies are built.
