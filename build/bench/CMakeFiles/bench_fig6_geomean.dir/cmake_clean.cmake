file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_geomean.dir/bench_fig6_geomean.cpp.o"
  "CMakeFiles/bench_fig6_geomean.dir/bench_fig6_geomean.cpp.o.d"
  "bench_fig6_geomean"
  "bench_fig6_geomean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_geomean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
