file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_geti.dir/bench_fig6_geti.cpp.o"
  "CMakeFiles/bench_fig6_geti.dir/bench_fig6_geti.cpp.o.d"
  "bench_fig6_geti"
  "bench_fig6_geti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_geti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
