# Empty dependencies file for bench_fig6_geti.
# This may be replaced when dependencies are built.
