file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_hmmer.dir/bench_fig6_hmmer.cpp.o"
  "CMakeFiles/bench_fig6_hmmer.dir/bench_fig6_hmmer.cpp.o.d"
  "bench_fig6_hmmer"
  "bench_fig6_hmmer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_hmmer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
