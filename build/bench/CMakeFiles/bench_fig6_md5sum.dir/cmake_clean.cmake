file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_md5sum.dir/bench_fig6_md5sum.cpp.o"
  "CMakeFiles/bench_fig6_md5sum.dir/bench_fig6_md5sum.cpp.o.d"
  "bench_fig6_md5sum"
  "bench_fig6_md5sum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_md5sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
