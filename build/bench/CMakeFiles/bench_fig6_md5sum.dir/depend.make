# Empty dependencies file for bench_fig6_md5sum.
# This may be replaced when dependencies are built.
