file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_potrace.dir/bench_fig6_potrace.cpp.o"
  "CMakeFiles/bench_fig6_potrace.dir/bench_fig6_potrace.cpp.o.d"
  "bench_fig6_potrace"
  "bench_fig6_potrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_potrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
