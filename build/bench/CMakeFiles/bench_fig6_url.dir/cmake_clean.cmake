file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_url.dir/bench_fig6_url.cpp.o"
  "CMakeFiles/bench_fig6_url.dir/bench_fig6_url.cpp.o.d"
  "bench_fig6_url"
  "bench_fig6_url.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_url.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
