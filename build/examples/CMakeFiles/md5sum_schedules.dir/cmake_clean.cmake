file(REMOVE_RECURSE
  "CMakeFiles/md5sum_schedules.dir/md5sum_schedules.cpp.o"
  "CMakeFiles/md5sum_schedules.dir/md5sum_schedules.cpp.o.d"
  "md5sum_schedules"
  "md5sum_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md5sum_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
