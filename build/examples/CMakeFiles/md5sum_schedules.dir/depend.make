# Empty dependencies file for md5sum_schedules.
# This may be replaced when dependencies are built.
