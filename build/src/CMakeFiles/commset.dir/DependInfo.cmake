
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/CallGraph.cpp" "src/CMakeFiles/commset.dir/analysis/CallGraph.cpp.o" "gcc" "src/CMakeFiles/commset.dir/analysis/CallGraph.cpp.o.d"
  "/root/repo/src/analysis/Dominators.cpp" "src/CMakeFiles/commset.dir/analysis/Dominators.cpp.o" "gcc" "src/CMakeFiles/commset.dir/analysis/Dominators.cpp.o.d"
  "/root/repo/src/analysis/Effects.cpp" "src/CMakeFiles/commset.dir/analysis/Effects.cpp.o" "gcc" "src/CMakeFiles/commset.dir/analysis/Effects.cpp.o.d"
  "/root/repo/src/analysis/LoopInfo.cpp" "src/CMakeFiles/commset.dir/analysis/LoopInfo.cpp.o" "gcc" "src/CMakeFiles/commset.dir/analysis/LoopInfo.cpp.o.d"
  "/root/repo/src/analysis/PDG.cpp" "src/CMakeFiles/commset.dir/analysis/PDG.cpp.o" "gcc" "src/CMakeFiles/commset.dir/analysis/PDG.cpp.o.d"
  "/root/repo/src/analysis/SCC.cpp" "src/CMakeFiles/commset.dir/analysis/SCC.cpp.o" "gcc" "src/CMakeFiles/commset.dir/analysis/SCC.cpp.o.d"
  "/root/repo/src/core/CommSetRegistry.cpp" "src/CMakeFiles/commset.dir/core/CommSetRegistry.cpp.o" "gcc" "src/CMakeFiles/commset.dir/core/CommSetRegistry.cpp.o.d"
  "/root/repo/src/core/DepAnalysis.cpp" "src/CMakeFiles/commset.dir/core/DepAnalysis.cpp.o" "gcc" "src/CMakeFiles/commset.dir/core/DepAnalysis.cpp.o.d"
  "/root/repo/src/core/PredicateInterp.cpp" "src/CMakeFiles/commset.dir/core/PredicateInterp.cpp.o" "gcc" "src/CMakeFiles/commset.dir/core/PredicateInterp.cpp.o.d"
  "/root/repo/src/core/WellFormed.cpp" "src/CMakeFiles/commset.dir/core/WellFormed.cpp.o" "gcc" "src/CMakeFiles/commset.dir/core/WellFormed.cpp.o.d"
  "/root/repo/src/driver/Compilation.cpp" "src/CMakeFiles/commset.dir/driver/Compilation.cpp.o" "gcc" "src/CMakeFiles/commset.dir/driver/Compilation.cpp.o.d"
  "/root/repo/src/driver/Runner.cpp" "src/CMakeFiles/commset.dir/driver/Runner.cpp.o" "gcc" "src/CMakeFiles/commset.dir/driver/Runner.cpp.o.d"
  "/root/repo/src/exec/Interpreter.cpp" "src/CMakeFiles/commset.dir/exec/Interpreter.cpp.o" "gcc" "src/CMakeFiles/commset.dir/exec/Interpreter.cpp.o.d"
  "/root/repo/src/exec/LoopExecutors.cpp" "src/CMakeFiles/commset.dir/exec/LoopExecutors.cpp.o" "gcc" "src/CMakeFiles/commset.dir/exec/LoopExecutors.cpp.o.d"
  "/root/repo/src/exec/ThreadedPlatform.cpp" "src/CMakeFiles/commset.dir/exec/ThreadedPlatform.cpp.o" "gcc" "src/CMakeFiles/commset.dir/exec/ThreadedPlatform.cpp.o.d"
  "/root/repo/src/ir/IR.cpp" "src/CMakeFiles/commset.dir/ir/IR.cpp.o" "gcc" "src/CMakeFiles/commset.dir/ir/IR.cpp.o.d"
  "/root/repo/src/ir/IRBuilder.cpp" "src/CMakeFiles/commset.dir/ir/IRBuilder.cpp.o" "gcc" "src/CMakeFiles/commset.dir/ir/IRBuilder.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/CMakeFiles/commset.dir/ir/Printer.cpp.o" "gcc" "src/CMakeFiles/commset.dir/ir/Printer.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/CMakeFiles/commset.dir/ir/Verifier.cpp.o" "gcc" "src/CMakeFiles/commset.dir/ir/Verifier.cpp.o.d"
  "/root/repo/src/lang/AST.cpp" "src/CMakeFiles/commset.dir/lang/AST.cpp.o" "gcc" "src/CMakeFiles/commset.dir/lang/AST.cpp.o.d"
  "/root/repo/src/lang/ASTClone.cpp" "src/CMakeFiles/commset.dir/lang/ASTClone.cpp.o" "gcc" "src/CMakeFiles/commset.dir/lang/ASTClone.cpp.o.d"
  "/root/repo/src/lang/Lexer.cpp" "src/CMakeFiles/commset.dir/lang/Lexer.cpp.o" "gcc" "src/CMakeFiles/commset.dir/lang/Lexer.cpp.o.d"
  "/root/repo/src/lang/Parser.cpp" "src/CMakeFiles/commset.dir/lang/Parser.cpp.o" "gcc" "src/CMakeFiles/commset.dir/lang/Parser.cpp.o.d"
  "/root/repo/src/lang/Sema.cpp" "src/CMakeFiles/commset.dir/lang/Sema.cpp.o" "gcc" "src/CMakeFiles/commset.dir/lang/Sema.cpp.o.d"
  "/root/repo/src/lower/Lower.cpp" "src/CMakeFiles/commset.dir/lower/Lower.cpp.o" "gcc" "src/CMakeFiles/commset.dir/lower/Lower.cpp.o.d"
  "/root/repo/src/lower/Specialize.cpp" "src/CMakeFiles/commset.dir/lower/Specialize.cpp.o" "gcc" "src/CMakeFiles/commset.dir/lower/Specialize.cpp.o.d"
  "/root/repo/src/runtime/Stm.cpp" "src/CMakeFiles/commset.dir/runtime/Stm.cpp.o" "gcc" "src/CMakeFiles/commset.dir/runtime/Stm.cpp.o.d"
  "/root/repo/src/sim/SimPlatform.cpp" "src/CMakeFiles/commset.dir/sim/SimPlatform.cpp.o" "gcc" "src/CMakeFiles/commset.dir/sim/SimPlatform.cpp.o.d"
  "/root/repo/src/support/Diagnostics.cpp" "src/CMakeFiles/commset.dir/support/Diagnostics.cpp.o" "gcc" "src/CMakeFiles/commset.dir/support/Diagnostics.cpp.o.d"
  "/root/repo/src/support/SourceLoc.cpp" "src/CMakeFiles/commset.dir/support/SourceLoc.cpp.o" "gcc" "src/CMakeFiles/commset.dir/support/SourceLoc.cpp.o.d"
  "/root/repo/src/support/StringUtils.cpp" "src/CMakeFiles/commset.dir/support/StringUtils.cpp.o" "gcc" "src/CMakeFiles/commset.dir/support/StringUtils.cpp.o.d"
  "/root/repo/src/transform/ParallelPlan.cpp" "src/CMakeFiles/commset.dir/transform/ParallelPlan.cpp.o" "gcc" "src/CMakeFiles/commset.dir/transform/ParallelPlan.cpp.o.d"
  "/root/repo/src/transform/Planner.cpp" "src/CMakeFiles/commset.dir/transform/Planner.cpp.o" "gcc" "src/CMakeFiles/commset.dir/transform/Planner.cpp.o.d"
  "/root/repo/src/workloads/BenchHarness.cpp" "src/CMakeFiles/commset.dir/workloads/BenchHarness.cpp.o" "gcc" "src/CMakeFiles/commset.dir/workloads/BenchHarness.cpp.o.d"
  "/root/repo/src/workloads/EclatWorkload.cpp" "src/CMakeFiles/commset.dir/workloads/EclatWorkload.cpp.o" "gcc" "src/CMakeFiles/commset.dir/workloads/EclatWorkload.cpp.o.d"
  "/root/repo/src/workloads/Em3dWorkload.cpp" "src/CMakeFiles/commset.dir/workloads/Em3dWorkload.cpp.o" "gcc" "src/CMakeFiles/commset.dir/workloads/Em3dWorkload.cpp.o.d"
  "/root/repo/src/workloads/GetiWorkload.cpp" "src/CMakeFiles/commset.dir/workloads/GetiWorkload.cpp.o" "gcc" "src/CMakeFiles/commset.dir/workloads/GetiWorkload.cpp.o.d"
  "/root/repo/src/workloads/HmmerWorkload.cpp" "src/CMakeFiles/commset.dir/workloads/HmmerWorkload.cpp.o" "gcc" "src/CMakeFiles/commset.dir/workloads/HmmerWorkload.cpp.o.d"
  "/root/repo/src/workloads/KmeansWorkload.cpp" "src/CMakeFiles/commset.dir/workloads/KmeansWorkload.cpp.o" "gcc" "src/CMakeFiles/commset.dir/workloads/KmeansWorkload.cpp.o.d"
  "/root/repo/src/workloads/Md5.cpp" "src/CMakeFiles/commset.dir/workloads/Md5.cpp.o" "gcc" "src/CMakeFiles/commset.dir/workloads/Md5.cpp.o.d"
  "/root/repo/src/workloads/Md5sumWorkload.cpp" "src/CMakeFiles/commset.dir/workloads/Md5sumWorkload.cpp.o" "gcc" "src/CMakeFiles/commset.dir/workloads/Md5sumWorkload.cpp.o.d"
  "/root/repo/src/workloads/PotraceWorkload.cpp" "src/CMakeFiles/commset.dir/workloads/PotraceWorkload.cpp.o" "gcc" "src/CMakeFiles/commset.dir/workloads/PotraceWorkload.cpp.o.d"
  "/root/repo/src/workloads/UrlWorkload.cpp" "src/CMakeFiles/commset.dir/workloads/UrlWorkload.cpp.o" "gcc" "src/CMakeFiles/commset.dir/workloads/UrlWorkload.cpp.o.d"
  "/root/repo/src/workloads/VirtualFs.cpp" "src/CMakeFiles/commset.dir/workloads/VirtualFs.cpp.o" "gcc" "src/CMakeFiles/commset.dir/workloads/VirtualFs.cpp.o.d"
  "/root/repo/src/workloads/Workload.cpp" "src/CMakeFiles/commset.dir/workloads/Workload.cpp.o" "gcc" "src/CMakeFiles/commset.dir/workloads/Workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
