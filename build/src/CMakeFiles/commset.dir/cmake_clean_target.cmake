file(REMOVE_RECURSE
  "libcommset.a"
)
