# Empty dependencies file for commset.
# This may be replaced when dependencies are built.
