
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AnalysisTest.cpp" "tests/CMakeFiles/commset_tests.dir/AnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/commset_tests.dir/AnalysisTest.cpp.o.d"
  "/root/repo/tests/CoreTest.cpp" "tests/CMakeFiles/commset_tests.dir/CoreTest.cpp.o" "gcc" "tests/CMakeFiles/commset_tests.dir/CoreTest.cpp.o.d"
  "/root/repo/tests/ExecTest.cpp" "tests/CMakeFiles/commset_tests.dir/ExecTest.cpp.o" "gcc" "tests/CMakeFiles/commset_tests.dir/ExecTest.cpp.o.d"
  "/root/repo/tests/FrontendTest.cpp" "tests/CMakeFiles/commset_tests.dir/FrontendTest.cpp.o" "gcc" "tests/CMakeFiles/commset_tests.dir/FrontendTest.cpp.o.d"
  "/root/repo/tests/LowerTest.cpp" "tests/CMakeFiles/commset_tests.dir/LowerTest.cpp.o" "gcc" "tests/CMakeFiles/commset_tests.dir/LowerTest.cpp.o.d"
  "/root/repo/tests/RuntimeTest.cpp" "tests/CMakeFiles/commset_tests.dir/RuntimeTest.cpp.o" "gcc" "tests/CMakeFiles/commset_tests.dir/RuntimeTest.cpp.o.d"
  "/root/repo/tests/SimTest.cpp" "tests/CMakeFiles/commset_tests.dir/SimTest.cpp.o" "gcc" "tests/CMakeFiles/commset_tests.dir/SimTest.cpp.o.d"
  "/root/repo/tests/WorkloadTest.cpp" "tests/CMakeFiles/commset_tests.dir/WorkloadTest.cpp.o" "gcc" "tests/CMakeFiles/commset_tests.dir/WorkloadTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/commset.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
