file(REMOVE_RECURSE
  "CMakeFiles/commset_tests.dir/AnalysisTest.cpp.o"
  "CMakeFiles/commset_tests.dir/AnalysisTest.cpp.o.d"
  "CMakeFiles/commset_tests.dir/CoreTest.cpp.o"
  "CMakeFiles/commset_tests.dir/CoreTest.cpp.o.d"
  "CMakeFiles/commset_tests.dir/ExecTest.cpp.o"
  "CMakeFiles/commset_tests.dir/ExecTest.cpp.o.d"
  "CMakeFiles/commset_tests.dir/FrontendTest.cpp.o"
  "CMakeFiles/commset_tests.dir/FrontendTest.cpp.o.d"
  "CMakeFiles/commset_tests.dir/LowerTest.cpp.o"
  "CMakeFiles/commset_tests.dir/LowerTest.cpp.o.d"
  "CMakeFiles/commset_tests.dir/RuntimeTest.cpp.o"
  "CMakeFiles/commset_tests.dir/RuntimeTest.cpp.o.d"
  "CMakeFiles/commset_tests.dir/SimTest.cpp.o"
  "CMakeFiles/commset_tests.dir/SimTest.cpp.o.d"
  "CMakeFiles/commset_tests.dir/WorkloadTest.cpp.o"
  "CMakeFiles/commset_tests.dir/WorkloadTest.cpp.o.d"
  "commset_tests"
  "commset_tests.pdb"
  "commset_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commset_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
