# Empty dependencies file for commset_tests.
# This may be replaced when dependencies are built.
