//===- custom_workload.cpp - Bringing your own program --------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// Shows the full public API surface on a program the library has never
// seen: a tiny log-compaction service. Demonstrates:
//
//   * group COMMSETs with predicates over client state (shard ids),
//   * named optional blocks enabled per call site (COMMSETNAMEDARGADD),
//   * COMMSETNOSYNC for an internally-synchronized kernel,
//   * inspection of the annotated PDG and the scheme reports,
//   * a synchronization-mode sweep on the chosen schedule.
//
// Build & run:  ./build/examples/custom_workload
//
//===----------------------------------------------------------------------===//

#include "commset/Driver/Compilation.h"
#include "commset/Driver/Runner.h"

#include <atomic>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>
#include <mutex>

using namespace commset;

// Each iteration compacts one log segment: read it from shard storage,
// merge duplicate keys (heavy, private), then publish the compacted
// segment and bump per-shard statistics. Segments of *different shards*
// commute; the stats counter is internally synchronized (NOSYNC).
static const char *ProgramSource = R"(
#pragma commset decl(SHARD)
#pragma commset predicate(SHARD, (int a), (int b), a != b)
#pragma commset decl(STATS, self)
#pragma commset nosync(STATS)

extern ptr seg_read(int shard, int seg);
#pragma commset effects(seg_read, malloc, reads(store), writes(store))
extern int seg_merge(ptr seg);
#pragma commset effects(seg_merge, argmem)
extern void seg_publish(int shard, int keys);
#pragma commset effects(seg_publish, reads(store), writes(store))
#pragma commset member(STATS)
extern void stats_bump(int keys);
#pragma commset effects(stats_bump, reads(stats), writes(stats))

#pragma commset namedarg(READSEG)
void compact(int shard, int seg) {
  ptr s;
  #pragma commset namedblock(READSEG)
  {
    s = seg_read(shard, seg);
  }
  int keys = seg_merge(s);
  #pragma commset member(SELF, SHARD(seg))
  {
    seg_publish(shard, keys);
  }
  stats_bump(keys);
}

void main_loop(int nsegs) {
  for (int i = 0; i < nsegs; i = i + 1) {
    int shard = i % 4;
    #pragma commset enable(READSEG: SHARD(i))
    compact(shard, i);
  }
}
)";

int main() {
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(ProgramSource, Diags);
  if (!C) {
    printf("compilation failed:\n%s", Diags.str().c_str());
    return 1;
  }
  auto T = C->analyzeLoop("main_loop", Diags);
  if (!T) {
    printf("analysis failed:\n%s", Diags.str().c_str());
    return 1;
  }

  printf("COMMSET sets in the program:\n");
  for (const auto &S : C->registry().sets())
    printf("  rank %u: %-16s %s%s%s\n", S.Rank, S.Name.c_str(),
           S.Kind == CommSetKind::Self ? "self" : "group",
           S.Pred ? ", predicated" : "", S.NoSync ? ", nosync" : "");

  printf("\nAlgorithm 1 examined %u call-pair edges, relaxed %u as uco and "
         "%u as ico\n",
         T->Stats.Examined, T->Stats.UcoEdges, T->Stats.IcoEdges);

  // Kernels over a synthetic shard store.
  std::mutex StoreM;
  std::map<int64_t, std::vector<int64_t>> Published;
  std::atomic<int64_t> TotalKeys{0};
  std::vector<std::unique_ptr<std::vector<int64_t>>> Segments;

  NativeRegistry Natives;
  Natives.add(
      "seg_read",
      [&](const RtValue *Args, unsigned) {
        auto Seg = std::make_unique<std::vector<int64_t>>();
        for (int64_t K = 0; K < 64; ++K)
          Seg->push_back((Args[1].I * 37 + K * K) % 97);
        std::lock_guard<std::mutex> Guard(StoreM);
        Segments.push_back(std::move(Seg));
        return RtValue::ofPtr(Segments.back().get());
      },
      1200, "store");
  Natives.add(
      "seg_merge",
      [](const RtValue *Args, unsigned) {
        auto *Seg = static_cast<std::vector<int64_t> *>(Args[0].P);
        // Deduplicate keys (the compaction payload).
        std::vector<char> Seen(128, 0);
        int64_t Unique = 0;
        for (int Round = 0; Round < 32; ++Round)
          for (int64_t K : *Seg)
            Unique += !std::exchange(Seen[static_cast<size_t>(K % 128)],
                                     char(Round & 1));
        return RtValue::ofInt(Unique & 0xFF);
      },
      22000);
  Natives.add(
      "seg_publish",
      [&](const RtValue *Args, unsigned) {
        std::lock_guard<std::mutex> Guard(StoreM);
        Published[Args[0].I].push_back(Args[1].I);
        return RtValue();
      },
      1500, "store");
  Natives.add(
      "stats_bump",
      [&](const RtValue *Args, unsigned) {
        TotalKeys.fetch_add(Args[0].I, std::memory_order_relaxed);
        return RtValue();
      },
      200);

  PlanOptions Opts;
  Opts.NumThreads = 8;
  Opts.NativeCostHints = {{"seg_read", 1200},
                          {"seg_merge", 22000},
                          {"seg_publish", 1500},
                          {"stats_bump", 200}};

  printf("\nsync-mode sweep of the best schedule (8 virtual cores, 256 "
         "segments):\n");
  for (SyncMode Sync :
       {SyncMode::Mutex, SyncMode::Spin, SyncMode::None}) {
    Opts.Sync = Sync;
    auto Schemes = buildAllSchemes(*C, *T, Opts);
    const SchemeReport *Best = bestScheme(Schemes);
    if (!Best) {
      printf("  %-6s no applicable scheme\n", syncModeName(Sync));
      continue;
    }

    Published.clear();
    Segments.clear();
    TotalKeys = 0;
    RunConfig Seq;
    Seq.Simulate = true;
    RunOutcome SeqOut =
        runScheme(*C, T->F, {RtValue::ofInt(256)}, Natives, Seq);
    int64_t SeqKeys = TotalKeys.load();

    Published.clear();
    Segments.clear();
    TotalKeys = 0;
    RunConfig Par;
    Par.Plan = &*Best->Plan;
    Par.Simulate = true;
    RunOutcome ParOut =
        runScheme(*C, T->F, {RtValue::ofInt(256)}, Natives, Par);

    printf("  %-6s %-24s %5.2fx   (keys %lld vs sequential %lld)\n",
           syncModeName(Sync), Best->Plan->describe().c_str(),
           static_cast<double>(SeqOut.VirtualNs) / ParOut.VirtualNs,
           (long long)TotalKeys.load(), (long long)SeqKeys);
  }
  return 0;
}
