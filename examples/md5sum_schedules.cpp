//===- md5sum_schedules.cpp - The paper's running example -----------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// Reproduces the §2 walkthrough on the real md5sum workload: the same
// sequential program, under three annotation choices, yields three
// schedules with different semantics and performance (paper Figure 3):
//
//   1. no annotations        -> in-order execution (no DOALL applies);
//   2. full COMMSET          -> DOALL, out-of-order digests, fastest;
//   3. one less SELF         -> PS-DSWP, deterministic output, slightly
//                               slower.
//
// Digests are computed with a real MD5 over an in-memory file system and
// cross-checked between schedules.
//
// Build & run:  ./build/examples/md5sum_schedules
//
//===----------------------------------------------------------------------===//

#include "commset/Driver/Compilation.h"
#include "commset/Driver/Runner.h"
#include "commset/Workloads/Workload.h"

#include <cstdio>

using namespace commset;

namespace {

struct ScheduleResult {
  bool Ran = false;
  double Speedup = 1.0;
  uint64_t Checksum = 0;
  bool InOrder = true;
  std::string Description = "sequential (in-order)";
};

ScheduleResult runVariant(Workload &W, const std::string &Variant,
                          Strategy Kind) {
  ScheduleResult R;
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(W.source(Variant), Diags);
  if (!C)
    return R;
  auto T = C->analyzeLoop(W.entry(), Diags);
  if (!T)
    return R;

  PlanOptions Opts;
  Opts.NumThreads = 8;
  Opts.Sync = SyncMode::None; // md5sum's libraries are thread safe ("Lib").
  for (auto &[K, V] : W.costHints())
    Opts.NativeCostHints[K] = V;
  auto Schemes = buildAllSchemes(*C, *T, Opts);
  const SchemeReport *Chosen = nullptr;
  for (const SchemeReport &S : Schemes)
    if (S.Kind == Kind && S.Applicable)
      Chosen = &S;
  if (!Chosen)
    return R;

  NativeRegistry Natives;
  W.reset();
  W.registerNatives(Natives);

  RunConfig Seq;
  Seq.Simulate = true;
  RunOutcome SeqOut = runScheme(*C, T->F, W.args(128), Natives, Seq);

  W.reset();
  RunConfig Par;
  Par.Plan = &*Chosen->Plan;
  Par.Simulate = true;
  RunOutcome ParOut = runScheme(*C, T->F, W.args(128), Natives, Par);

  R.Ran = true;
  R.Speedup = static_cast<double>(SeqOut.VirtualNs) / ParOut.VirtualNs;
  R.Checksum = W.checksum();
  R.Description = Chosen->Plan->describe();
  auto Order = W.orderedOutput();
  for (size_t I = 0; I < Order.size(); ++I)
    R.InOrder &= Order[I] == static_cast<int64_t>(I);
  return R;
}

} // namespace

int main() {
  auto W = makeWorkload("md5sum");

  // Baseline: sequential run for the reference digests.
  {
    DiagnosticEngine Diags;
    auto C = Compilation::fromSource(W->source(""), Diags);
    auto T = C->analyzeLoop(W->entry(), Diags);
    NativeRegistry Natives;
    W->registerNatives(Natives);
    RunConfig Seq;
    Seq.Simulate = false;
    runScheme(*C, T->F, W->args(128), Natives, Seq);
  }
  uint64_t Reference = W->checksum();
  printf("sequential reference checksum: %016llx\n",
         (unsigned long long)Reference);

  struct Row {
    const char *Title;
    const char *Variant;
    Strategy Kind;
  } Rows[] = {
      {"no COMMSET annotations, DOALL", "plain", Strategy::Doall},
      {"full COMMSET, DOALL", "", Strategy::Doall},
      {"one less SELF, PS-DSWP", "noself", Strategy::PsDswp},
  };

  printf("\n%-34s %-22s %8s %8s %6s\n", "semantics", "schedule", "speedup",
         "digests", "order");
  for (const Row &Entry : Rows) {
    ScheduleResult R = runVariant(*W, Entry.Variant, Entry.Kind);
    if (!R.Ran) {
      printf("%-34s %-22s %8s %8s %6s\n", Entry.Title, "not applicable",
             "-", "-", "-");
      continue;
    }
    printf("%-34s %-22s %7.2fx %8s %6s\n", Entry.Title,
           R.Description.c_str(), R.Speedup,
           R.Checksum == Reference ? "match" : "DIFFER",
           R.InOrder ? "kept" : "free");
  }

  printf("\nThe paper's Figure 3: the DOALL schedule is fastest but prints "
         "digests out of order; dropping one SELF annotation buys "
         "deterministic output at a small cost.\n");
  return 0;
}
