//===- quickstart.cpp - COMMSET in five minutes ---------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
// The smallest end-to-end use of the library: write an annotated CSet-C
// program, register native kernels, let the compiler analyze the hot loop,
// pick a parallelization, and run it — first sequentially, then on real
// threads, then under the multicore simulator for a speedup estimate.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "commset/Driver/Compilation.h"
#include "commset/Driver/Runner.h"

#include <cstdio>
#include <mutex>
#include <vector>

using namespace commset;

// An annotated sequential program. The loop scores each item (pure) and
// records the result. Recording touches a shared output stream, which would
// serialize the loop — unless the programmer states that records commute
// (SELF: any order of record() calls is acceptable semantics here).
static const char *ProgramSource = R"(
extern int score(int item);
#pragma commset effects(score, pure)
#pragma commset member(SELF)
extern void record(int item, int value);
#pragma commset effects(record, reads(out), writes(out))
void main_loop(int n) {
  for (int i = 0; i < n; i++) {
    record(i, score(i));
  }
}
)";

int main() {
  // 1. Compile: parse, check, extract commutative members, verify.
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(ProgramSource, Diags);
  if (!C) {
    printf("compilation failed:\n%s", Diags.str().c_str());
    return 1;
  }

  // 2. Analyze the hot loop: PDG + Algorithm 1 + DAG-SCC.
  auto T = C->analyzeLoop("main_loop", Diags);
  if (!T) {
    printf("analysis failed:\n%s", Diags.str().c_str());
    return 1;
  }
  printf("loop analyzed: %zu PDG nodes, %u commutative edges relaxed\n",
         T->G.Nodes.size(), T->Stats.UcoEdges + T->Stats.IcoEdges);

  // 3. Build every applicable scheme and pick the best estimate.
  PlanOptions Opts;
  Opts.NumThreads = 8;
  Opts.Sync = SyncMode::Mutex;
  Opts.NativeCostHints = {{"score", 15000.0}, {"record", 300.0}};
  auto Schemes = buildAllSchemes(*C, *T, Opts);
  for (const SchemeReport &S : Schemes) {
    if (S.Applicable)
      printf("  %-10s applicable: %-24s (estimated %.1fx)\n",
             strategyName(S.Kind), S.Plan->describe().c_str(),
             S.Plan->EstimatedSpeedup);
    else
      printf("  %-10s not applicable: %s\n", strategyName(S.Kind),
             S.WhyNot.c_str());
  }
  const SchemeReport *Best = bestScheme(Schemes);

  // 4. Native kernels. Virtual costs (ns) feed the simulator.
  std::mutex OutM;
  std::vector<std::pair<int64_t, int64_t>> Out;
  NativeRegistry Natives;
  Natives.add(
      "score",
      [](const RtValue *Args, unsigned) {
        int64_t X = Args[0].I;
        return RtValue::ofInt(X * X % 9973);
      },
      /*FixedCostNs=*/15000);
  Natives.add(
      "record",
      [&](const RtValue *Args, unsigned) {
        std::lock_guard<std::mutex> Guard(OutM);
        Out.push_back({Args[0].I, Args[1].I});
        return RtValue();
      },
      300);

  constexpr int64_t N = 500;

  // 5. Run on real threads (functional check).
  RunConfig Threaded;
  Threaded.Plan = &*Best->Plan;
  Threaded.Simulate = false;
  runScheme(*C, T->F, {RtValue::ofInt(N)}, Natives, Threaded);
  printf("threaded %s run recorded %zu items\n", strategyName(Best->Kind),
         Out.size());
  Out.clear();

  // 6. Simulate sequential vs parallel for the speedup estimate.
  RunConfig Seq;
  Seq.Simulate = true;
  RunOutcome SeqOut = runScheme(*C, T->F, {RtValue::ofInt(N)}, Natives, Seq);
  Out.clear();
  RunConfig Par;
  Par.Plan = &*Best->Plan;
  Par.Simulate = true;
  RunOutcome ParOut = runScheme(*C, T->F, {RtValue::ofInt(N)}, Natives, Par);

  printf("simulated: sequential %.2f ms, %s %.2f ms -> %.2fx on 8 virtual "
         "cores\n",
         SeqOut.VirtualNs / 1e6, strategyName(Best->Kind),
         ParOut.VirtualNs / 1e6,
         static_cast<double>(SeqOut.VirtualNs) / ParOut.VirtualNs);
  return 0;
}
