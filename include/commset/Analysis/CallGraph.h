//===- CallGraph.h - Module call graph ---------------------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Call graph over user functions, with transitive reachability. The paper
/// uses it twice: checking that no COMMSET member transitively calls
/// another member of the same set (well-definedness), and detecting cycles
/// in the COMMSET graph (well-formedness, §3.1).
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_ANALYSIS_CALLGRAPH_H
#define COMMSET_ANALYSIS_CALLGRAPH_H

#include "commset/IR/IR.h"

#include <map>
#include <set>
#include <vector>

namespace commset {

class CallGraph {
public:
  static CallGraph compute(const Module &M);

  /// Direct callees of \p F.
  const std::set<Function *> &callees(const Function *F) const;

  /// \returns true if \p From can transitively call \p To (irreflexive
  /// unless there is an actual cycle through From).
  bool reaches(const Function *From, const Function *To) const;

  /// All functions transitively reachable from \p From (excluding From
  /// itself unless recursive).
  std::set<Function *> reachableFrom(const Function *From) const;

private:
  std::map<const Function *, std::set<Function *>> Edges;
  static const std::set<Function *> Empty;
};

} // namespace commset

#endif // COMMSET_ANALYSIS_CALLGRAPH_H
