//===- CommProve.h - Symbolic commutativity prover --------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CommProve: a bounded symbolic executor that decides, for pairs of COMMSET
/// member bodies, whether the two operation orders leave any observable
/// difference in global state or return values (the reachability-style
/// reduction of Koskinen & Bansal applied to the closed CSet-C fragment).
///
/// For each annotated pair (self pairs F/F, group pairs F/G) both orders
/// execute from one common symbolic initial state: every global starts as an
/// opaque typed atom, every argument of either call is an opaque atom.
/// Branch conditions that do not fold split the state (path merge via ITE);
/// a step/node budget bounds loops and expression growth. Final stores and
/// return values are diffed after normalization under the *defined*
/// arithmetic of DESIGN.md §8 — two's-complement wrap for I64 add/sub/mul
/// (so add-chains and sum polynomials commute structurally), pinned /0 %0
/// semantics, Min/Max recognition from compare-select branches. Floats are
/// never reassociated (IEEE addition is not associative); float-order pairs
/// therefore prove only when syntactically symmetric.
///
/// Verdicts per pair:
///  * Proven  - normalized outcomes are structurally identical for both
///              orders on every path. Sound modulo the declared purity of
///              Pure natives (uninterpreted functions) — the same trust the
///              effect auditor extends. Emitted as CL061; downgrades the
///              pair's CL020/CL021 effect-summary findings and is recorded
///              on relaxed PDG edges as a proof token (ProvenCommutative).
///  * Refuted - a concrete witness (initial global assignment + argument
///              values for the two calls) was found on which the REAL
///              interpreter, run sequentially in both orders, produces
///              different global stores or return values. Never emitted
///              from symbolic disagreement alone: every CL060 carries a
///              witness that replayed in-process before being reported,
///              and the artifact reproduces the divergence under the
///              controlled-schedule explorer (Check/ProveReplay.h).
///  * Unknown - budget exhausted, unmodeled constructs (pointers, effectful
///              natives, deep recursion), or a predicated set (conditional
///              commutativity claims are never refuted from an
///              unconditional witness). Emitted as CL062; the PR-5 effect
///              summaries remain authoritative — never a silent pass.
///
/// Unannotated call pairs on loop-carried Memory PDG edges get the same
/// treatment; pairs that prove commutative become CL063 suggestions carrying
/// the COMMSET pragma to add.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_ANALYSIS_COMMPROVE_H
#define COMMSET_ANALYSIS_COMMPROVE_H

#include "commset/Analysis/Lint.h"
#include "commset/Driver/Compilation.h"

#include <optional>
#include <string>
#include <vector>

namespace commset {

struct ProveOptions {
  /// Symbolic instruction-step budget per executed order (both calls
  /// together). Loops with symbolic trip counts split per iteration, so
  /// this also bounds unrolling. commlint --prove-budget=N scales this.
  unsigned StepBudget = 4096;
  /// Expression-node budget across one pair proof.
  unsigned NodeBudget = 200000;
  /// Max user-call inline depth inside a member body.
  unsigned InlineDepth = 8;
  /// Concrete candidate assignments tried per refutation attempt.
  unsigned WitnessTries = 160;
  /// Also prove unannotated carried call pairs and emit CL063 suggestions.
  bool Suggest = true;
};

/// A typed concrete scalar for witness rendering/replay.
struct ProveValue {
  IRType Ty = IRType::I64;
  int64_t I = 0;
  double D = 0.0;

  static ProveValue ofInt(int64_t V) { return {IRType::I64, V, 0.0}; }
  static ProveValue ofDouble(double V) { return {IRType::F64, 0, V}; }
  std::string str() const;
};

/// A replayable counterexample: initial values for the globals the diff
/// depends on (unlisted globals keep their module initializers) plus the
/// concrete arguments of the two calls, in program order First;Second.
struct ProveWitness {
  /// (global slot, initial value) pairs.
  std::vector<std::pair<unsigned, ProveValue>> Globals;
  std::vector<ProveValue> FirstArgs;
  std::vector<ProveValue> SecondArgs;
  /// Human-readable divergence: which observable differed and both values.
  std::string Divergence;
};

enum class ProveVerdict { Proven, Refuted, Unknown };

const char *proveVerdictName(ProveVerdict V);

/// Proof attempt for one ordered-insensitive pair of callees.
struct PairProof {
  std::string First;  ///< Callee name (First == Second for self pairs).
  std::string Second;
  /// Justifying COMMSET id; ~0u for unannotated CL063 candidates.
  unsigned SetId = ~0u;
  ProveVerdict Verdict = ProveVerdict::Unknown;
  /// Why (Unknown: budget/unmodeled detail; Refuted: symbolic diff).
  std::string Detail;
  /// Present exactly when Verdict == Refuted; validated by the concrete
  /// interpreter before the proof is returned.
  std::optional<ProveWitness> Witness;
  /// Anchor for diagnostics (First's definition).
  SourceLoc Loc;
};

struct ProveResult {
  std::vector<PairProof> Pairs;
  unsigned Proven = 0;
  unsigned Refuted = 0;
  unsigned Unknown = 0;
  unsigned Suggested = 0; ///< CL063 candidates proven commutative.
};

/// Proves one explicit pair of user functions (exposed for tests; ignores
/// annotations — never returns a CL-coded diagnostic, just the verdict).
PairProof proveFunctionPair(const Compilation &C, const Function &First,
                            const Function &Second,
                            const ProveOptions &Opts = {});

/// Runs the prover over every annotated member pair of the registry whose
/// members are user functions, plus (when Opts.Suggest and T is non-null)
/// unannotated carried call pairs from T's PDG. Updates summary counters.
ProveResult runCommProve(const Compilation &C,
                         const Compilation::LoopTarget *T,
                         const ProveOptions &Opts = {});

/// Renders CL060/CL061/CL062/CL063 diagnostics for \p PR.
std::vector<LintDiagnostic> proveDiagnostics(const Compilation &C,
                                             const ProveResult &PR);

/// Downgrades CL020/CL021 effect-summary findings in \p Diags to Note when
/// the pair they describe is Proven in \p PR. Returns how many were
/// downgraded.
unsigned applyProveDowngrades(const ProveResult &PR,
                              std::vector<LintDiagnostic> &Diags);

/// Marks relaxed (uco/ico) PDG edges whose call pair is Proven with the
/// ProvenCommutative proof token the planner/auto-tuner may rely on.
/// Returns the number of edges annotated.
unsigned annotateProofTokens(PDG &G, const ProveResult &PR);

/// One-line rendering of \p P's witness ("g=3; first bump(1); second
/// put(2)"); empty when P carries none.
std::string proveWitnessStr(const Module &M, const PairProof &P);

} // namespace commset

#endif // COMMSET_ANALYSIS_COMMPROVE_H
