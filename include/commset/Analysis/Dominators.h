//===- Dominators.h - Dominator and post-dominator trees --------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative dominator / post-dominator computation (Cooper-Harvey-Kennedy
/// style dataflow). Post-dominance uses a virtual exit joining all Ret
/// blocks. Algorithm 1 in the paper uses instruction dominance (Dom(n2,n1))
/// to distinguish uco from ico on loop-carried commutative edges; control
/// dependence (Ferrante-Ottenstein-Warren) uses the post-dominator tree.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_ANALYSIS_DOMINATORS_H
#define COMMSET_ANALYSIS_DOMINATORS_H

#include "commset/IR/IR.h"

#include <vector>

namespace commset {

/// Dominator tree over a function's blocks, indexed by block id. Block ids
/// must be current (Function::numberInstructions()).
class DomTree {
public:
  /// IDom[b] = immediate dominator block id; -1 for the entry and
  /// unreachable blocks.
  std::vector<int> IDom;

  /// \returns true if block \p A dominates block \p B (reflexive).
  bool dominates(unsigned A, unsigned B) const;

  /// \returns true if instruction \p A dominates instruction \p B: its block
  /// strictly dominates B's block, or both share a block and A comes first.
  bool dominates(const Instruction *A, const Instruction *B) const;
};

/// Post-dominator tree with a virtual exit node (id = number of blocks).
class PostDomTree {
public:
  std::vector<int> IPDom;
  unsigned VirtualExit = 0;

  bool postDominates(unsigned A, unsigned B) const;
};

DomTree computeDominators(const Function &F);
PostDomTree computePostDominators(const Function &F);

/// Control-dependence relation computed from the post-dominator tree:
/// Deps[b] lists the ids of blocks whose terminator controls block b.
std::vector<std::vector<unsigned>> computeControlDeps(const Function &F,
                                                      const PostDomTree &PDT);

} // namespace commset

#endif // COMMSET_ANALYSIS_DOMINATORS_H
