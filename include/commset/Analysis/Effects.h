//===- Effects.h - Memory effect summaries & pointer origins ----*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bottom-up memory-effect summaries for user functions (from declared
/// native effects, global accesses, and callees) and a flow-insensitive
/// pointer-origin analysis that classifies ptr values by their allocation
/// roots. Together they are this repo's stand-in for LLVM's alias and
/// mod/ref analyses: the PDG builder uses them to decide which call pairs
/// conflict and whether a conflict persists across loop iterations.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_ANALYSIS_EFFECTS_H
#define COMMSET_ANALYSIS_EFFECTS_H

#include "commset/IR/IR.h"

#include <map>
#include <set>

namespace commset {

/// Effect summary of a function or call site over abstract locations:
/// named effect classes, module globals, and argument-reachable memory.
struct EffectSummary {
  bool World = false;
  /// Returns a pointer to a fresh object (allocator-like).
  bool Malloc = false;
  bool ArgMemRead = false;
  bool ArgMemWrite = false;
  std::set<unsigned> ReadClasses;
  std::set<unsigned> WriteClasses;
  std::set<unsigned> ReadGlobals;
  std::set<unsigned> WriteGlobals;

  /// Merges \p Other into this summary (argmem flags transfer only when the
  /// caller actually passes pointers; the caller handles that).
  void mergeClasses(const EffectSummary &Other);

  bool touchesMemory() const {
    return World || ArgMemRead || ArgMemWrite || !ReadClasses.empty() ||
           !WriteClasses.empty() || !ReadGlobals.empty() ||
           !WriteGlobals.empty();
  }
};

/// Whole-module effect analysis: fixpoint over the call graph.
class EffectAnalysis {
public:
  static EffectAnalysis compute(const Module &M);

  const EffectSummary &summaryFor(const Function *F) const;
  static EffectSummary summaryFor(const NativeDecl *N);

  /// Effect summary of one instruction (calls and global accesses; empty
  /// for everything else).
  EffectSummary instructionEffects(const Instruction *Instr) const;

private:
  std::map<const Function *, EffectSummary> Summaries;
  static const EffectSummary EmptySummary;
};

/// Flow-insensitive pointer-origin analysis for one function.
///
/// Every ptr value is classified by the set of allocation roots (results of
/// malloc-like calls) it may carry, or Unknown when it may come from
/// parameters or non-allocating calls. Two classes may alias when their
/// root sets intersect or when either is Unknown (against a non-empty or
/// Unknown class).
class PtrOrigins {
public:
  struct AliasClass {
    bool Unknown = false;
    std::set<const Instruction *> Roots;

    bool empty() const { return !Unknown && Roots.empty(); }
  };

  static PtrOrigins compute(const Function &F, const EffectAnalysis &EA);

  /// Alias class of a ptr-typed operand (constants yield the empty class).
  AliasClass classOf(const Operand &Op) const;

  static bool mayAlias(const AliasClass &A, const AliasClass &B);

private:
  AliasClass classOfLocal(unsigned Local) const;

  // Union-find over locals.
  unsigned find(unsigned Local) const;
  void unite(unsigned A, unsigned B);

  mutable std::vector<unsigned> UnionParent;
  std::vector<char> UnknownFlag;                       // per representative
  std::vector<std::set<const Instruction *>> RootSets; // per representative
};

} // namespace commset

#endif // COMMSET_ANALYSIS_EFFECTS_H
