//===- Effects.h - Memory effect summaries & pointer origins ----*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bottom-up memory-effect summaries for user functions (from declared
/// native effects, global accesses, and callees) and a flow-insensitive
/// pointer-origin analysis that classifies ptr values by their allocation
/// roots. Together they are this repo's stand-in for LLVM's alias and
/// mod/ref analyses: the PDG builder uses them to decide which call pairs
/// conflict and whether a conflict persists across loop iterations.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_ANALYSIS_EFFECTS_H
#define COMMSET_ANALYSIS_EFFECTS_H

#include "commset/IR/IR.h"

#include <map>
#include <set>

namespace commset {

/// Provable write discipline of a function on one module global, used by
/// the CommLint annotation auditor: add-reductions commute with themselves,
/// anything else is order-sensitive.
enum class GlobalWriteKind {
  /// Every store to the global is `g = g + E` where E is independent of g
  /// (sums through any chain of integer additions).
  AddReduction,
  /// At least one store whose result depends on execution order (overwrite,
  /// scaled update, read-modify-write through an unknown path).
  Ordered,
};

/// Effect summary of a function or call site over abstract locations:
/// named effect classes, module globals, and argument-reachable memory.
struct EffectSummary {
  bool World = false;
  /// Returns a pointer to a fresh object (allocator-like).
  bool Malloc = false;
  bool ArgMemRead = false;
  bool ArgMemWrite = false;
  std::set<unsigned> ReadClasses;
  std::set<unsigned> WriteClasses;
  std::set<unsigned> ReadGlobals;
  std::set<unsigned> WriteGlobals;
  /// Per written global (keys are a subset of WriteGlobals): the strongest
  /// write discipline provable for every store, merged pessimistically
  /// (Ordered wins) across paths and callees.
  std::map<unsigned, GlobalWriteKind> GlobalWriteKinds;
  /// Globals read outside a same-global add-reduction pattern. A bare read
  /// observes intermediate reduction state, so it is order-sensitive even
  /// when every write to the global is an AddReduction.
  std::set<unsigned> BareReadGlobals;
  /// Argument memory at parameter granularity: indices of this callee's
  /// parameters whose pointees may be read/written (directly or through
  /// callees). The blanket ArgMemRead/ArgMemWrite flags remain the
  /// conservative union the PDG builder consumes; these sets refine them
  /// for region-sensitive clients (CommLint, tests).
  std::set<unsigned> ArgReadParams;
  std::set<unsigned> ArgWriteParams;

  /// Merges \p Other into this summary (argmem flags transfer only when the
  /// caller actually passes pointers; the caller handles that).
  void mergeClasses(const EffectSummary &Other);

  /// Records a write to global \p Slot with kind \p Kind (Ordered wins over
  /// an existing AddReduction entry).
  void noteGlobalWrite(unsigned Slot, GlobalWriteKind Kind);

  bool touchesMemory() const {
    return World || ArgMemRead || ArgMemWrite || !ReadClasses.empty() ||
           !WriteClasses.empty() || !ReadGlobals.empty() ||
           !WriteGlobals.empty();
  }
};

/// The privatization proof obligation (SyncMode::Priv): a member may run
/// against per-worker shadow replicas only when its entire transitive
/// effect is add-reductions over module globals — every written global
/// provably AddReduction, no bare reads (they would observe partial sums),
/// and no other memory effects whose ordering a replica could not restore.
inline bool privEligibleSummary(const EffectSummary &S) {
  if (S.World || S.ArgMemRead || S.ArgMemWrite)
    return false;
  if (!S.ReadClasses.empty() || !S.WriteClasses.empty())
    return false;
  if (S.WriteGlobals.empty() || !S.BareReadGlobals.empty())
    return false;
  for (unsigned Slot : S.WriteGlobals) {
    auto It = S.GlobalWriteKinds.find(Slot);
    if (It == S.GlobalWriteKinds.end() ||
        It->second != GlobalWriteKind::AddReduction)
      return false;
  }
  return true;
}

/// Classifies one StoreGlobal instruction: AddReduction when the stored
/// value is a sum with exactly one `load <same global>` leaf (the canonical
/// `g = g + E` reduction). On success \p ReductionLoad (when non-null)
/// receives the consumed load so callers can exclude it from bare reads.
GlobalWriteKind classifyGlobalStore(const Instruction &Store,
                                    const Instruction **ReductionLoad =
                                        nullptr);

/// Whole-module effect analysis: fixpoint over the call graph.
class EffectAnalysis {
public:
  static EffectAnalysis compute(const Module &M);

  const EffectSummary &summaryFor(const Function *F) const;
  static EffectSummary summaryFor(const NativeDecl *N);

  /// Effect summary of one instruction (calls and global accesses; empty
  /// for everything else).
  EffectSummary instructionEffects(const Instruction *Instr) const;

private:
  std::map<const Function *, EffectSummary> Summaries;
  static const EffectSummary EmptySummary;
};

/// Flow-insensitive pointer-origin analysis for one function.
///
/// Every ptr value is classified by the set of allocation roots (results of
/// malloc-like calls) it may carry, or Unknown when it may come from
/// parameters or non-allocating calls. Two classes may alias when their
/// root sets intersect or when either is Unknown (against a non-empty or
/// Unknown class).
class PtrOrigins {
public:
  struct AliasClass {
    bool Unknown = false;
    std::set<const Instruction *> Roots;

    bool empty() const { return !Unknown && Roots.empty(); }
  };

  static PtrOrigins compute(const Function &F, const EffectAnalysis &EA);

  /// Alias class of a ptr-typed operand (constants yield the empty class).
  AliasClass classOf(const Operand &Op) const;

  static bool mayAlias(const AliasClass &A, const AliasClass &B);

private:
  AliasClass classOfLocal(unsigned Local) const;

  // Union-find over locals.
  unsigned find(unsigned Local) const;
  void unite(unsigned A, unsigned B);

  mutable std::vector<unsigned> UnionParent;
  std::vector<char> UnknownFlag;                       // per representative
  std::vector<std::set<const Instruction *>> RootSets; // per representative
};

} // namespace commset

#endif // COMMSET_ANALYSIS_EFFECTS_H
