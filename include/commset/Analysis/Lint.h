//===- Lint.h - CommLint static race & soundness analyzer -------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CommLint: a static analysis pass that audits one lowered parallel plan
/// (ParallelPlan + its synchronization decisions) after planning. Three
/// checkers run over the annotated PDG and the effect summaries:
///
///  * Lockset race detector (LintRace.cpp). Every Memory dependence that
///    Algorithm 1 relaxed (uco/ico) stands for an ordering the original
///    program had and the plan may now violate. For each such edge whose
///    endpoints can run concurrently under the plan's strategy/stages, the
///    checker requires a protection witness: a common rank-ordered lock, STM
///    coverage of both endpoints, or pipeline-stage ordering. Unprotected
///    conflicting pairs are diagnosed with both access paths.
///
///  * Annotation-soundness auditor (LintAnnot.cpp). Flags Self/Group
///    members whose transitive effect summaries provably do not commute
///    (order-sensitive writes to a shared global; bare reads observing
///    intermediate reduction state), and conversely suggests annotation
///    sites where a loop-carried dependence blocks parallelization but the
///    effects form a commutative reduction.
///
///  * Plan/sync consistency checker (Lint.cpp). Every uco/ico edge must be
///    justified by an in-scope COMMSET declaration covering both endpoint
///    callees, and each member's lock-acquisition sequence must follow the
///    global rank order strictly ascending (deadlock freedom, paper §4.6).
///
/// Diagnostics carry machine-readable CL0xx codes; commlint maps them to
/// exit codes 0/1/2 (clean/warnings/errors). CommCheck cross-validates the
/// static verdicts against its differential sweep (`commcheck --lint`).
///
/// Soundness caveats (see DESIGN.md §6): the race detector trusts declared
/// native effect classes (a lying `#pragma commset effects` hides a race at
/// Warning severity, not Error), and argument-memory conflicts are resolved
/// at alias-class granularity.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_ANALYSIS_LINT_H
#define COMMSET_ANALYSIS_LINT_H

#include "commset/Driver/Compilation.h"
#include "commset/Transform/ParallelPlan.h"

#include <string>
#include <vector>

namespace commset {

enum class LintSeverity { Note, Warning, Error };

const char *lintSeverityName(LintSeverity S);

/// One CommLint finding: machine-readable code, severity, anchor location,
/// rendered message (which embeds both access paths for race reports).
struct LintDiagnostic {
  std::string Code; // "CL001", ...
  LintSeverity Severity = LintSeverity::Warning;
  SourceLoc Loc;
  std::string Message;
  /// Structured subjects: the callee name(s) a pair-shaped finding is about
  /// (CL020: the member; CL021/CL023: both members). Empty for findings
  /// without a callee subject. CommProve keys its CL061 downgrades off
  /// these instead of re-parsing messages.
  std::string Subject;
  std::string Subject2;

  /// Renders as "error: [CL001] line:col: message".
  std::string str() const;
};

/// Result of linting one (loop, plan) pair.
struct LintResult {
  std::vector<LintDiagnostic> Diags;

  unsigned errors() const;
  unsigned warnings() const;
  /// The static verdict CommCheck validates: no Error-severity findings.
  bool raceFree() const { return errors() == 0; }
  bool hasCode(const std::string &Code) const;

  /// commlint exit-code convention: 0 clean, 1 warnings only, 2 errors.
  int exitCode() const;

  /// All diagnostics, one per line, sorted most severe first.
  std::string str() const;
};

/// One-line description of a CL0xx diagnostic code (empty for unknown).
/// Codes CL01x are emitted by Sema (annotation well-formedness at source
/// level); CL00x/CL02x-CL04x by the plan-level checkers here.
const char *lintCodeDescription(const std::string &Code);

/// Runs all three checkers over \p Plan for the analyzed loop \p T.
/// Diagnostics whose codes the program suppressed via
/// `#pragma commset lint_suppress(CLxxx)` are dropped.
LintResult runLint(const Compilation &C, const Compilation::LoopTarget &T,
                   const ParallelPlan &Plan);

namespace lint {
/// Cross-plan deduplication key for a diagnostic. Includes every field that
/// distinguishes two findings at the same site — severity (a CommProve
/// downgrade must not be collapsed into the original warning), message and
/// structured subjects — not just (code, location), so same-site findings
/// that name different plans/schemes/members all survive dedup.
std::string dedupKey(const LintDiagnostic &D);

// Individual checkers (exposed for focused tests; runLint calls all three).
void checkRaces(const Compilation &C, const Compilation::LoopTarget &T,
                const ParallelPlan &Plan, LintResult &R);
void checkAnnotations(const Compilation &C, const Compilation::LoopTarget &T,
                      const ParallelPlan &Plan, LintResult &R);
void checkPlanConsistency(const Compilation &C,
                          const Compilation::LoopTarget &T,
                          const ParallelPlan &Plan, LintResult &R);
} // namespace lint

} // namespace commset

#endif // COMMSET_ANALYSIS_LINT_H
