//===- LoopInfo.h - Natural loop detection -----------------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection from dominator-identified back edges, loop
/// nesting, and canonical induction-variable recognition. The parallelizing
/// transforms target one loop; its induction SCC is replicated into every
/// DOALL thread / pipeline stage, so the loop must expose:
///
///  * a single canonical induction local `i = i + step` (constant step),
///  * a single exit, from the header, comparing i against a loop-invariant
///    bound (for DOALL's static iteration partitioning).
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_ANALYSIS_LOOPINFO_H
#define COMMSET_ANALYSIS_LOOPINFO_H

#include "commset/Analysis/Dominators.h"
#include "commset/IR/IR.h"

#include <memory>
#include <set>
#include <vector>

namespace commset {

/// Canonical induction variable of a loop.
struct InductionVar {
  /// Local slot holding the induction value.
  unsigned Local = ~0u;
  /// Constant per-iteration step.
  int64_t Step = 0;
  /// The unique StoreLocal performing the update.
  Instruction *Update = nullptr;
  /// The header compare feeding the exit branch (null when the exit is not
  /// a simple compare against an invariant bound).
  Instruction *ExitCompare = nullptr;
};

struct Loop {
  BasicBlock *Header = nullptr;
  std::vector<BasicBlock *> Latches;
  std::set<unsigned> BlockIds;
  Loop *Parent = nullptr;
  std::vector<Loop *> SubLoops;
  unsigned Depth = 1;

  /// Filled by analyzeInduction(); Local == ~0u when not canonical.
  InductionVar Induction;
  /// True when the only loop exit is the header's conditional branch.
  bool SingleHeaderExit = false;

  bool contains(const BasicBlock *BB) const {
    return BlockIds.count(BB->Id) != 0;
  }
  bool contains(const Instruction *Instr) const {
    return contains(Instr->Parent);
  }
  /// True for edges from a block inside the loop to the header (the edges
  /// cut when computing intra-iteration reachability).
  bool isBackEdge(const BasicBlock *From, const BasicBlock *To) const {
    return To == Header && contains(From);
  }
};

class LoopInfo {
public:
  /// Detects all natural loops of \p F (block ids must be current).
  static LoopInfo compute(const Function &F, const DomTree &DT);

  const std::vector<std::unique_ptr<Loop>> &loops() const { return Loops; }
  const std::vector<Loop *> &topLevel() const { return TopLevel; }

  /// Innermost loop containing \p BB (null if none).
  Loop *loopFor(const BasicBlock *BB) const;

private:
  std::vector<std::unique_ptr<Loop>> Loops;
  std::vector<Loop *> TopLevel;
};

/// Recognizes the canonical induction variable and the exit shape of
/// \p L, filling L.Induction and L.SingleHeaderExit. \returns true when a
/// canonical induction variable was found.
bool analyzeInduction(const Function &F, Loop &L);

/// \returns true if local \p Local is stored anywhere inside \p L.
bool localStoredInLoop(const Loop &L, unsigned Local);

} // namespace commset

#endif // COMMSET_ANALYSIS_LOOPINFO_H
