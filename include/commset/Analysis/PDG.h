//===- PDG.h - Program Dependence Graph --------------------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Program Dependence Graph for one target loop (paper §4.3, Ferrante et
/// al.). Nodes are the loop's instructions. Edge kinds:
///
///  * Register   - def/use of an in-block virtual register;
///  * LocalFlow  - reaching definition of a mutable local into a load,
///                 flagged loop-carried when the def reaches the use around
///                 the loop's back edge;
///  * Memory     - conflict between two memory accesses (calls via their
///                 effect summaries and argument-memory alias classes,
///                 global loads/stores); carried when the conflicting state
///                 persists across iterations (argmem conflicts rooted at
///                 allocations inside the loop body do not);
///  * Control    - Ferrante-Ottenstein-Warren control dependence.
///
/// The COMMSET Dependence Analyzer (Algorithm 1) later annotates Memory
/// edges as uco (unconditionally commutative: ignored by transforms) or ico
/// (inter-iteration commutative: treated as intra-iteration).
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_ANALYSIS_PDG_H
#define COMMSET_ANALYSIS_PDG_H

#include "commset/Analysis/Effects.h"
#include "commset/Analysis/LoopInfo.h"
#include "commset/IR/IR.h"

#include <string>
#include <vector>

namespace commset {

enum class DepKind { Register, LocalFlow, Memory, Control };

/// Commutativity annotation from Algorithm 1.
enum class CommAnnotation { None, Uco, Ico };

struct PDGEdge {
  unsigned Src = 0; // Node indices.
  unsigned Dst = 0;
  DepKind Kind = DepKind::Register;
  bool LoopCarried = false;
  CommAnnotation Comm = CommAnnotation::None;
  /// Local slot for LocalFlow edges.
  unsigned LocalId = ~0u;
  /// For uco/ico edges: id of the COMMSET declaration Algorithm 1 used to
  /// justify relaxing this dependence (~0u when unannotated). CommLint's
  /// plan-consistency checker audits that every relaxed edge carries one.
  unsigned JustifyingSet = ~0u;
  /// Proof token from CommProve (Analysis/CommProve.h): the endpoint call
  /// pair was symbolically proven commutative, so the annotation this edge
  /// relies on is verified, not merely asserted. The planner/auto-tuner may
  /// prefer plans built on proven edges.
  bool ProvenCommutative = false;
};

class PDG {
public:
  Function *F = nullptr;
  const Loop *L = nullptr;
  /// Loop instructions in program order; the node index is the position.
  std::vector<Instruction *> Nodes;
  std::vector<PDGEdge> Edges;
  /// Instruction id -> node index (-1 when outside the loop).
  std::vector<int> NodeIndex;

  /// Builds the PDG for \p L inside \p F.
  static PDG build(Function &F, const Loop &L, const Module &M,
                   const EffectAnalysis &EA, const PtrOrigins &PO);

  int indexOf(const Instruction *Instr) const {
    return NodeIndex[Instr->Id];
  }

  /// True when the edge still orders execution after commutativity
  /// relaxation (uco edges are treated as non-existent, paper §4.5).
  bool edgeActive(const PDGEdge &E) const {
    return E.Comm != CommAnnotation::Uco;
  }

  /// True when the edge still carries an inter-iteration constraint after
  /// relaxation (ico edges demote to intra-iteration).
  bool edgeCarried(const PDGEdge &E) const {
    return E.LoopCarried && E.Comm == CommAnnotation::None;
  }

  /// Active-edge adjacency (successors) as node-index lists.
  std::vector<std::vector<unsigned>> activeAdjacency() const;

  /// Debug rendering: one line per edge with node descriptions.
  std::string dump() const;
};

} // namespace commset

#endif // COMMSET_ANALYSIS_PDG_H
