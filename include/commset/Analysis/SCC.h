//===- SCC.h - Strongly connected components over the PDG -------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tarjan SCC over the commutativity-relaxed PDG and the DAG-SCC used by
/// the DSWP family of transforms (paper §4.4/§4.5): uco edges are treated
/// as non-existent, ico edges as intra-iteration. An SCC with no remaining
/// internal loop-carried edge can be replicated into a parallel stage
/// (PS-DSWP) or, if no carried edge remains anywhere, run DOALL.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_ANALYSIS_SCC_H
#define COMMSET_ANALYSIS_SCC_H

#include "commset/Analysis/PDG.h"

#include <set>
#include <vector>

namespace commset {

struct SCCResult {
  /// Node index -> SCC id.
  std::vector<unsigned> ComponentOf;
  /// SCC id -> member node indices (program order).
  std::vector<std::vector<unsigned>> Components;
  /// DAG edges between SCCs over active edges.
  std::vector<std::set<unsigned>> DagSuccs;
  /// SCC ids in topological order (sources first).
  std::vector<unsigned> TopoOrder;
  /// SCC has an internal carried (non-relaxed) dependence: it must run
  /// sequentially, one iteration after another.
  std::vector<char> HasCarried;

  unsigned numComponents() const {
    return static_cast<unsigned>(Components.size());
  }
};

/// Computes SCCs of \p G over active edges (uco dropped; ico kept as intra).
SCCResult computeSCCs(const PDG &G);

} // namespace commset

#endif // COMMSET_ANALYSIS_SCC_H
