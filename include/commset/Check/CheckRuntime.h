//===- CheckRuntime.h - Harness natives and state snapshots -----*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native kernels generated programs call (ProgramGen.h), the harness
/// state they mutate, and the snapshot/comparison machinery the
/// differential oracle uses. Every kernel is internally synchronized (the
/// paper's "Lib" discipline) and every mutation is exactly commutative, so
/// two runs of the same program must agree on the final snapshot up to the
/// program's declared output equivalence.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_CHECK_CHECKRUNTIME_H
#define COMMSET_CHECK_CHECKRUNTIME_H

#include "commset/Check/ProgramGen.h"
#include "commset/Exec/NativeRegistry.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace commset {
namespace check {

/// Shared state behind the harness natives. One instance per run.
struct CheckState {
  static constexpr size_t NumCells = 16;

  std::mutex M;
  std::vector<int64_t> Cells = std::vector<int64_t>(NumCells, 0);
  int64_t StatCount = 0;
  int64_t StatSum = 0;
  int64_t StatMin = INT64_MAX;
  int64_t StatMax = INT64_MIN;
  int64_t SourceCursor = 0;
  std::vector<std::pair<int64_t, int64_t>> Output; // (key, value) in order.

  /// Reverts to the pristine pre-run state; the fault sweep's ResetState
  /// hook for sequential fallback re-execution.
  void reset() {
    Cells.assign(NumCells, 0);
    StatCount = 0;
    StatSum = 0;
    StatMin = INT64_MAX;
    StatMax = INT64_MIN;
    SourceCursor = 0;
    Output.clear();
  }
};

/// Registers work/mix2/cell_add/cell_get/stat_note/emit/source_next over
/// \p State, with serial-resource names and fixed costs.
void registerCheckNatives(NativeRegistry &Natives, CheckState &State);

/// Planner cost hints matching registerCheckNatives.
std::map<std::string, double> checkCostHints();

/// Final program state captured after a run.
struct Snapshot {
  std::vector<int64_t> GlobalInts; // Interpreter globals, in slot order.
  std::vector<int64_t> Cells;
  int64_t StatCount = 0, StatSum = 0, StatMin = 0, StatMax = 0;
  int64_t SourceCursor = 0;
  std::vector<std::pair<int64_t, int64_t>> Output;
  int64_t Result = 0;
  uint64_t Iterations = 0;
};

/// Captures \p State plus the interpreter global image and run result.
Snapshot takeSnapshot(const CheckState &State,
                      const std::vector<int64_t> &GlobalInts, int64_t Result,
                      uint64_t Iterations);

/// Compares a parallel run against the sequential reference under the
/// program's output equivalence. Returns a human-readable divergence
/// description, or std::nullopt when equivalent.
std::optional<std::string> compareSnapshots(const Snapshot &Ref,
                                            const Snapshot &Got,
                                            OutputOrder Order);

} // namespace check
} // namespace commset

#endif // COMMSET_CHECK_CHECKRUNTIME_H
