//===- CommCheck.h - Fuzzing harness entry point ----------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CommCheck's top-level loop: for iteration k, generate the program for
/// seed Seed + k, run the differential oracle and schedule explorer on it,
/// and on failure write a self-contained artifact (seed, repro command,
/// generated source, shape, report) so
///
///   commcheck --seed <iteration seed> --iters 1
///
/// replays the exact failing trial.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_CHECK_COMMCHECK_H
#define COMMSET_CHECK_COMMCHECK_H

#include "commset/Check/Oracle.h"
#include "commset/Check/ProgramGen.h"

#include <cstdint>
#include <string>
#include <vector>

namespace commset {
namespace check {

struct CommCheckOptions {
  uint64_t Seed = 1;
  unsigned Iterations = 25;
  GenOptions Gen;
  OracleOptions Oracle;
  /// Directory for failure artifacts; empty disables dumping.
  std::string DumpDir = ".";
  /// Print a line per iteration to stdout.
  bool Verbose = false;
  /// CommLint cross-validation (`commcheck --lint`): in addition to the
  /// oracle-side checks (Oracle.Lint is forced on), every iteration also
  /// generates a seeded-UNSOUND twin program (GenOptions::SeedUnsound) and
  /// asserts CommLint flags it with the expected CL0xx code on at least one
  /// applicable parallel plan. A miss is a trial failure.
  bool Lint = false;
  /// CommProve cross-validation (`commcheck --prove`): every iteration also
  /// (a) positive control — runs the prover over the sound program's
  /// annotated pairs and fails the trial if any is REFUTED (a witness
  /// against a correct program is a prover bug), and (b) negative control —
  /// generates a seeded NON-commutative twin (GenOptions::SeedNoncommutative)
  /// and fails the trial unless the prover refutes at least one pair with a
  /// witness that replays to a real divergence under the controlled
  /// scheduler.
  bool Prove = false;
  /// Symbolic step budget per proved order (scales the node budget along).
  unsigned ProveBudget = 4096;
};

struct CommCheckSummary {
  unsigned Iterations = 0;
  unsigned Failures = 0;
  unsigned PlansRun = 0;
  unsigned SchedulesRun = 0;
  unsigned RacesReported = 0;
  unsigned FaultRuns = 0;
  unsigned DegradedRuns = 0;
  uint64_t FaultsInjected = 0;
  unsigned LintedPlans = 0;   ///< Plans audited by CommLint across trials.
  unsigned PrivPlansRun = 0;    ///< Sweep plans run under SyncMode::Priv.
  unsigned PrivatizedPlans = 0; ///< ... of which privatized >= 1 global.
  unsigned UnsoundSeeded = 0; ///< Seeded-unsound twin programs generated.
  unsigned UnsoundFlagged = 0; ///< ... of which CommLint flagged correctly.
  unsigned ProvenPairs = 0;   ///< Pairs proven commutative across trials.
  unsigned RefutedPairs = 0;  ///< Pairs refuted (with replayed witnesses).
  unsigned UnknownPairs = 0;  ///< Pairs undecided (budget/unmodeled).
  unsigned NoncommSeeded = 0; ///< Seeded non-commutative twins generated.
  unsigned NoncommRefuted = 0; ///< ... refuted with a replaying witness.
  std::vector<std::string> ArtifactPaths;
  /// First failing trial's full report (also in its artifact).
  std::string FirstFailure;
};

/// Runs the harness. Deterministic in \p Opts.
CommCheckSummary runCommCheck(const CommCheckOptions &Opts);

/// Renders the artifact text for one failing trial (exposed for tests).
std::string renderArtifact(const GeneratedProgram &P,
                           const TrialResult &Trial);

} // namespace check
} // namespace commset

#endif // COMMSET_CHECK_COMMCHECK_H
