//===- CommCheck.h - Fuzzing harness entry point ----------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CommCheck's top-level loop: for iteration k, generate the program for
/// seed Seed + k, run the differential oracle and schedule explorer on it,
/// and on failure write a self-contained artifact (seed, repro command,
/// generated source, shape, report) so
///
///   commcheck --seed <iteration seed> --iters 1
///
/// replays the exact failing trial.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_CHECK_COMMCHECK_H
#define COMMSET_CHECK_COMMCHECK_H

#include "commset/Check/Oracle.h"
#include "commset/Check/ProgramGen.h"

#include <cstdint>
#include <string>
#include <vector>

namespace commset {
namespace check {

struct CommCheckOptions {
  uint64_t Seed = 1;
  unsigned Iterations = 25;
  GenOptions Gen;
  OracleOptions Oracle;
  /// Directory for failure artifacts; empty disables dumping.
  std::string DumpDir = ".";
  /// Print a line per iteration to stdout.
  bool Verbose = false;
};

struct CommCheckSummary {
  unsigned Iterations = 0;
  unsigned Failures = 0;
  unsigned PlansRun = 0;
  unsigned SchedulesRun = 0;
  unsigned RacesReported = 0;
  unsigned FaultRuns = 0;
  unsigned DegradedRuns = 0;
  uint64_t FaultsInjected = 0;
  std::vector<std::string> ArtifactPaths;
  /// First failing trial's full report (also in its artifact).
  std::string FirstFailure;
};

/// Runs the harness. Deterministic in \p Opts.
CommCheckSummary runCommCheck(const CommCheckOptions &Opts);

/// Renders the artifact text for one failing trial (exposed for tests).
std::string renderArtifact(const GeneratedProgram &P,
                           const TrialResult &Trial);

} // namespace check
} // namespace commset

#endif // COMMSET_CHECK_COMMCHECK_H
