//===- HappensBefore.h - Vector-clock race detection ------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector-clock happens-before checker fed by the interpreter's
/// instrumentation hooks (ExecPlatform). Happens-before edges come from
/// every ordering mechanism the executors use:
///
///   * queue send -> recv (per ordered thread pair, FIFO),
///   * ranked-lock release -> next acquire, per rank,
///   * serialized-resource release -> next acquire, per resource,
///   * transaction commits (serialized through a TM clock),
///   * parallel-region fork (master -> workers) and join (workers -> master).
///
/// A pair of conflicting global accesses unordered by happens-before is a
/// race — unless both accesses run inside members the COMMSET contract
/// declares thread safe (NOSYNC / Lib mode) or inside transactions, i.e.
/// unless a COMMSET covers them. Races the sync engine should have
/// synchronized are exactly what survives this filter.
///
/// Events must arrive serialized (SchedulePlatform runs one thread at a
/// time); the checker itself takes no locks.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_CHECK_HAPPENSBEFORE_H
#define COMMSET_CHECK_HAPPENSBEFORE_H

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

namespace commset {

class Module;

namespace check {

struct RaceReport {
  unsigned Slot = 0;
  std::string Global;
  unsigned ThreadA = 0, ThreadB = 0;
  bool WriteA = false, WriteB = false;
  std::string describe() const;
};

class HbChecker {
public:
  HbChecker(unsigned NumThreads, const Module &M);

  // Access events.
  void onLoad(unsigned T, unsigned Slot) { access(T, Slot, false); }
  void onStore(unsigned T, unsigned Slot) { access(T, Slot, true); }

  // Ordering events.
  void onSend(unsigned From, unsigned To);
  void onRecv(unsigned From, unsigned To);
  void onLockAcquire(unsigned T, const std::vector<unsigned> &Ranks);
  void onLockRelease(unsigned T, const std::vector<unsigned> &Ranks);
  void onResourceAcquire(unsigned T, const std::string &Name);
  void onResourceRelease(unsigned T, const std::string &Name);
  void onTxBegin(unsigned T);
  void onTxCommit(unsigned T);
  void onMemberEnter(unsigned T, bool DeclaredSafe);
  void onMemberExit(unsigned T);
  void onRegionBegin(unsigned Master);
  void onRegionEnd(unsigned Master);

  const std::vector<RaceReport> &races() const { return Races; }

private:
  using VC = std::vector<uint64_t>;

  void access(unsigned T, unsigned Slot, bool IsWrite);
  bool protectedAccess(unsigned T) const {
    return InTx[T] || SafeDepth[T] > 0;
  }
  void join(VC &Into, const VC &From) {
    for (size_t I = 0; I < Into.size(); ++I)
      Into[I] = Into[I] > From[I] ? Into[I] : From[I];
  }
  void report(unsigned Slot, unsigned TA, bool WA, unsigned TB, bool WB);

  unsigned N;
  std::vector<std::string> GlobalNames;
  std::vector<VC> Clocks; // Per thread.

  // Per-slot, per-thread last access epochs and protection flags.
  struct SlotState {
    VC LastWrite, LastRead;
    std::vector<uint8_t> WriteProt, ReadProt;
  };
  std::vector<SlotState> Slots;

  std::map<std::pair<unsigned, unsigned>, std::deque<VC>> ChannelClocks;
  std::map<unsigned, VC> RankClocks;
  std::map<std::string, VC> ResourceClocks;
  VC TmClock;
  std::vector<uint8_t> InTx;
  std::vector<unsigned> SafeDepth;
  std::vector<std::vector<uint8_t>> MemberStack; // DeclaredSafe flags.

  std::set<std::tuple<unsigned, bool, bool>> Seen; // Dedup per slot+kinds.
  std::vector<RaceReport> Races;
};

} // namespace check
} // namespace commset

#endif // COMMSET_CHECK_HAPPENSBEFORE_H
