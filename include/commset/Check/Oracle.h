//===- Oracle.h - Differential oracle for generated programs ----*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CommCheck's differential oracle. A generated program (ProgramGen.h) is
/// compiled once, run sequentially for a reference snapshot, and then run
/// under every applicable scheme x sync-mode x thread-count plan on the
/// threaded executors. Final states must match the reference up to the
/// program's declared output equivalence (CheckRuntime.h).
///
/// On top of the free-running sweep, a schedule-exploration pass re-runs a
/// subset of plans under the controlled scheduler (SchedulePlatform.h) with
/// seeded random and round-robin policies, feeding the happens-before
/// checker: a divergent snapshot or a reported race on a sync-enabled plan
/// fails the trial with enough context to replay it.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_CHECK_ORACLE_H
#define COMMSET_CHECK_ORACLE_H

#include "commset/Check/ProgramGen.h"
#include "commset/Exec/ExecPlatform.h"
#include "commset/Runtime/Sched.h"
#include "commset/Transform/ParallelPlan.h"

#include <cstdint>
#include <string>
#include <vector>

namespace commset {
namespace check {

struct OracleOptions {
  /// Thread counts to sweep in the free-running differential pass.
  std::vector<unsigned> Threads = {2, 4, 8};
  /// Iteration-scheduling policies rotated through the sweeps. The oracle
  /// does not cross-product these with every plan (the sweep is already
  /// cubic); instead each sweep axis rotates through the list so a default
  /// run covers all three policies against the sequential reference.
  std::vector<SchedPolicy> SchedPolicies = {
      SchedPolicy::Static, SchedPolicy::Dynamic, SchedPolicy::Guided};
  /// Include SyncMode::Tm plans in the sweep.
  bool IncludeTm = true;
  /// Include SyncMode::Priv plans in the sweep (and a privatized pass in
  /// schedule exploration). Plans whose members fail the add-reduction
  /// proof silently fall back to ranked mutexes — the sweep still runs
  /// them; TrialResult::PrivatizedPlans counts how many actually
  /// privatized at least one global.
  bool IncludePriv = true;
  /// When non-empty, replaces the sync-mode rotation of the free-running
  /// and fault sweeps with exactly this list (commcheck --sync=MODE).
  std::vector<SyncMode> SyncModes;
  /// Run the controlled-scheduler + happens-before pass.
  bool ExploreSchedules = true;
  /// Number of random schedule policies per explored plan.
  unsigned RandomSchedules = 2;
  /// Round-robin switch intervals to sweep per explored plan.
  std::vector<unsigned> RoundRobinIntervals = {1, 5};
  /// Cap on plans taken into schedule exploration (it is slow).
  unsigned MaxPlansToExplore = 2;
  /// Fault sweep: re-run plans under seeded fault injection with tight
  /// retry/timeout bounds and assert the resilient engine still reproduces
  /// the sequential reference (retry or logged fallback — never a wrong
  /// answer).
  bool FaultSweep = false;
  /// Fault policies applied per plan in the sweep.
  unsigned FaultPoliciesPerPlan = 2;
  /// Cap on parallel plans swept per sync mode.
  unsigned MaxFaultPlansPerSync = 2;
  /// CommTrace: run every free-running sweep plan traced and report
  /// per-plan abort / contention / lock-wait stats (TrialResult::PlanStats).
  /// No-op when tracing is compiled out.
  bool PlanStats = false;
  /// CommTrace: when a free-running plan diverges from the sequential
  /// reference, re-run it traced and dump a Chrome trace_event JSON into
  /// this directory ("" disables).
  std::string TraceOnDivergenceDir;
  /// CommLint cross-validation: statically lint every swept parallel plan
  /// before executing it. An Error-severity finding on a generator-sound
  /// program fails the trial (lint false positive); a divergence on a plan
  /// lint called race-free fails with an unsound-verdict report.
  bool Lint = false;
  /// Execution backend for the free-running and fault sweeps (commcheck
  /// --backend). Jit additionally runs a native-sequential differential
  /// against the interpreted reference, so the code generator itself is
  /// under test, not just the parallel schedules. Schedule exploration
  /// always interprets (the controlled scheduler needs per-instruction
  /// yield points that native code does not have).
  ExecBackendKind Backend = ExecBackendKind::Interp;
};

struct TrialResult {
  bool Ok = true;
  unsigned PlansRun = 0;
  unsigned SchedulesRun = 0;
  unsigned RacesReported = 0;
  unsigned FaultRuns = 0;    ///< Fault-injected executions performed.
  unsigned DegradedRuns = 0; ///< ... of which fell back to sequential.
  uint64_t FaultsInjected = 0;
  unsigned LintedPlans = 0;  ///< Plans audited by CommLint (--lint).
  unsigned PrivPlansRun = 0;    ///< Free-sweep plans run under Priv.
  unsigned PrivatizedPlans = 0; ///< ... of which privatized >= 1 global.
  /// The iteration-scheduling policies the sweep rotated through, copied
  /// from OracleOptions so failure artifacts can record (and the replay
  /// command can pin) the active --sched configuration.
  std::vector<SchedPolicy> SchedPolicies;
  /// Failure description (divergence diff, races, plan, policy); empty on
  /// success.
  std::string Report;
  /// Per-plan stats lines (one per swept plan) when OracleOptions::PlanStats
  /// is set; empty otherwise.
  std::string PlanStats;
  /// Chrome trace JSON files dumped for diverging plans
  /// (OracleOptions::TraceOnDivergenceDir).
  std::vector<std::string> TracePaths;
};

/// Runs the full oracle over \p P. \p ScheduleSeed seeds the random
/// schedule policies, independently of the program seed.
TrialResult runTrials(const GeneratedProgram &P, const OracleOptions &Opts,
                      uint64_t ScheduleSeed);

} // namespace check
} // namespace commset

#endif // COMMSET_CHECK_ORACLE_H
