//===- ProgramGen.h - Seeded CSet-C program generator -----------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CommCheck's program generator: emits random-but-well-formed CSet-C
/// programs over a fixed menu of harness natives (CheckRuntime.h). Programs
/// are biased toward the constructs the front end and region extractor
/// accept — Self and Group sets, predicated commutativity, commutative
/// blocks, named optional blocks enabled per call site, NOSYNC members —
/// and every shared effect is exactly commutative (integer sums, min/max,
/// keyed appends), so the differential oracle can compare final states
/// under the set's equivalence without false mismatches.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_CHECK_PROGRAMGEN_H
#define COMMSET_CHECK_PROGRAMGEN_H

#include <cstdint>
#include <string>

namespace commset {
namespace check {

/// splitmix64: tiny, seedable, and stable across platforms — the whole
/// CommCheck pipeline (generation, schedule decisions) keys off it so a
/// seed fully determines programs, plans, and verdicts.
class CheckRng {
public:
  explicit CheckRng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, N).
  uint64_t range(uint64_t N) { return N ? next() % N : 0; }

  /// True with probability Percent/100.
  bool chance(unsigned Percent) { return range(100) < Percent; }

private:
  uint64_t State;
};

/// How the committed output stream (emit calls) may legally differ from
/// the sequential run's stream.
enum class OutputOrder {
  Exact,         ///< emit not in any set: byte-for-byte identical order.
  PerKeyOrdered, ///< emit in a predicated set keyed by the induction
                 ///< variable: entries with equal keys keep their order.
  Multiset,      ///< emit in a SELF set: any permutation is legal.
};

struct GeneratedProgram {
  uint64_t Seed = 0;
  std::string Source;
  OutputOrder Output = OutputOrder::Exact;
  /// True when no user-defined member touches interpreter globals, so the
  /// program is correct even with compiler synchronization disabled
  /// (SyncMode::None / the paper's Lib mode): every shared effect lives in
  /// an internally-synchronized native.
  bool LibSafe = true;
  /// Loop trip count the oracle should run with.
  int TripCount = 12;
  /// One-line summary of the structure choices (for failure artifacts).
  std::string Shape;
  /// Non-empty when GenOptions::SeedUnsound planted a wrong annotation:
  /// the CL0xx code CommLint must report for this program.
  std::string ExpectedLintCode;
  /// One-line description of the planted unsoundness ("" for sound
  /// programs).
  std::string UnsoundKind;
};

struct GenOptions {
  int MinTrip = 8;
  int MaxTrip = 24;
  bool AllowNamedBlocks = true;
  bool AllowNosync = true;
  bool AllowSequentialSource = true; ///< source_next() biases pipelines.
  /// Generate a program with a deliberately WRONG annotation (rotating
  /// through ordered self writes, NOSYNC shared state, and order-sensitive
  /// group pairs). Used by `commcheck --lint` to validate that CommLint
  /// flags every planted unsoundness with the expected code.
  bool SeedUnsound = false;
  /// Generate a program whose annotated member pair is genuinely
  /// NON-commutative at the value level (multiply-then-add, overwrite,
  /// read-modify-write of a co-written global). Used by
  /// `commcheck --lint --prove` to validate that CommProve refutes every
  /// planted pair with a concrete witness that replays (CL060). Members are
  /// kept native-free and integer-only so refutation is always reachable.
  bool SeedNoncommutative = false;
  /// Bias programs toward privatizable shapes: at least one add-reduction
  /// member (bump) always exists and is always called, and the direct
  /// un-annotated global accumulation (which disqualifies its slot from
  /// privatization) is suppressed. Used by `commcheck --reduction-heavy`
  /// so a priv sweep actually exercises replica merges.
  bool ReductionHeavy = false;
  /// Bias arithmetic toward overflow/edge operands: every program gets 1-3
  /// statements computing with INT64_MIN / INT64_MAX / -1 / 0 (INT64_MIN
  /// division and remainder, wrapping add/sub/mul, 0 - INT64_MIN), whose
  /// tamed remainders then feed the effect operand pool. On by default so
  /// every soak exercises the defined-overflow semantics (DESIGN.md §8) on
  /// both backends; `commcheck --no-edge-ops` turns it off. The edge draws
  /// happen last and unconditionally, so the same seed generates the same
  /// program minus the edge statements when disabled.
  bool EdgeOps = true;
};

/// Generates the program for \p Seed. Pure function of its arguments.
GeneratedProgram generateProgram(uint64_t Seed, const GenOptions &Opts = {});

} // namespace check
} // namespace commset

#endif // COMMSET_CHECK_PROGRAMGEN_H
