//===- ProveReplay.h - Replay CommProve witnesses under control -*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bridges the static prover (Analysis/CommProve.h) to the dynamic
/// controlled-schedule explorer: a CL060 witness — initial global values
/// plus the two calls' arguments — is replayed as a real two-thread region
/// under SchedulePlatform, with both member bodies serialized by one
/// cooperative resource (commutativity is about operation *order*, not
/// interleaving races). Sweeping schedule policies and both thread
/// assignments realizes both serialized orders; the witness is confirmed
/// when two schedules finish with different global state or return values.
///
/// This closes the loop the issue demands: every proven-non-commutative
/// verdict is backed by a divergence an actual scheduler can drive, not
/// just a symbolic disagreement.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_CHECK_PROVEREPLAY_H
#define COMMSET_CHECK_PROVEREPLAY_H

#include "commset/Analysis/CommProve.h"

#include <string>

namespace commset {
namespace check {

struct ProveReplayResult {
  /// True when at least two controlled schedules disagreed on the final
  /// observable state — the witness reproduces under a real scheduler.
  bool Diverged = false;
  unsigned SchedulesRun = 0;
  /// Per-schedule outcomes plus a one-line verdict (artifact-ready).
  std::string Report;
};

/// Replays \p P's witness (requires P.Verdict == Refuted with a witness;
/// returns a non-diverged result with an explanatory report otherwise).
/// Member bodies must be native-free — guaranteed by the prover, which only
/// refutes pairs it could evaluate concretely.
ProveReplayResult replayProveWitness(const Compilation &C,
                                     const PairProof &P);

/// Renders the commcheck-style artifact section for a refuted pair:
/// verdict, witness assignment, divergence, and the replay transcript.
std::string renderProveArtifact(const Compilation &C, const PairProof &P,
                                const ProveReplayResult &R);

} // namespace check
} // namespace commset

#endif // COMMSET_CHECK_PROVEREPLAY_H
