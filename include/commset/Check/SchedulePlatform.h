//===- SchedulePlatform.h - Controlled-interleaving executor ----*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An ExecPlatform that runs the parallel executors under a *controlled*
/// scheduler: real worker threads exist, but exactly one holds the run
/// token at any instant, and the token moves only at platform events
/// (charge, queue, lock, resource, TM). A seeded policy — uniformly random
/// switches or a bounded round-robin sweep — decides each handoff, so an
/// interleaving is completely determined by (program, plan, policy): the
/// seed in a failure artifact replays the exact schedule.
///
/// Because blocking operations (recv on an empty queue, contended member
/// locks, busy resources) are gated cooperatively *before* any real
/// mutex/queue is touched, serialization can never deadlock against the
/// runtime's own primitives; a state where no thread can run is reported
/// as a genuine executor/planner deadlock with full thread status.
///
/// When constructed with a Module, every run also feeds a vector-clock
/// happens-before checker (HappensBefore.h) through the interpreter's
/// instrumentation hooks.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_CHECK_SCHEDULEPLATFORM_H
#define COMMSET_CHECK_SCHEDULEPLATFORM_H

#include "commset/Check/HappensBefore.h"
#include "commset/Check/ProgramGen.h"
#include "commset/Exec/ExecPlatform.h"

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace commset {
namespace check {

struct SchedulePolicy {
  enum class Kind { Random, RoundRobin };
  Kind K = Kind::Random;
  /// Random: RNG seed for switch decisions.
  uint64_t Seed = 1;
  /// RoundRobin: hand the token to the next runnable thread every
  /// Interval schedule points.
  unsigned Interval = 1;

  static SchedulePolicy random(uint64_t Seed) {
    SchedulePolicy P;
    P.K = Kind::Random;
    P.Seed = Seed;
    return P;
  }
  static SchedulePolicy roundRobin(unsigned Interval) {
    SchedulePolicy P;
    P.K = Kind::RoundRobin;
    P.Interval = Interval ? Interval : 1;
    return P;
  }
  std::string describe() const;
};

class SchedulePlatform : public ExecPlatform {
public:
  /// \p M non-null enables happens-before checking.
  SchedulePlatform(unsigned NumThreads, const SchedulePolicy &Policy,
                   const Module *M = nullptr);
  ~SchedulePlatform() override;

  void send(unsigned From, unsigned To, RtValue Value) override;
  RtValue recv(unsigned From, unsigned To) override;
  void charge(unsigned Thread, uint64_t Ns) override;
  void lockEnter(unsigned Thread,
                 const std::vector<unsigned> &Ranks) override;
  void lockExit(unsigned Thread,
                const std::vector<unsigned> &Ranks) override;
  void txBegin(unsigned Thread) override;
  bool txCommit(unsigned Thread, const std::vector<unsigned> &Ranks,
                uint64_t MemberCostNs) override;
  void resourceEnter(unsigned Thread, const std::string &Name) override;
  void resourceExit(unsigned Thread, const std::string &Name) override;
  void threadDone(unsigned Thread) override;
  void regionBegin(unsigned MasterThread) override;
  void regionEnd(unsigned MasterThread) override;
  uint64_t elapsedNs() const override { return 0; }

  void onGlobalLoad(unsigned Thread, unsigned Slot) override;
  void onGlobalStore(unsigned Thread, unsigned Slot) override;
  void memberEnter(unsigned Thread, const std::string &Name,
                   bool DeclaredSafe) override;
  void memberExit(unsigned Thread) override;

  /// Null unless a Module was supplied.
  const HbChecker *checker() const { return Hb.get(); }
  /// Token handoffs actually taken (bounded), for failure artifacts.
  const std::vector<unsigned> &decisionLog() const { return Log; }
  uint64_t schedulePoints() const { return Points; }

private:
  enum class Block { None, Recv, Lock, Resource };
  struct ThreadState {
    Block B = Block::None;
    unsigned RecvFrom = 0;
    std::vector<unsigned> WantRanks;
    std::string WantResource;
  };

  using Guard = std::unique_lock<std::mutex>;

  void waitTurn(Guard &Lk, unsigned T);
  bool canRun(unsigned T) const;
  bool blockSatisfied(unsigned T) const;
  /// One policy decision; may hand the token off and wait to get it back.
  void schedulePoint(Guard &Lk, unsigned T);
  /// Hands the token to some other runnable thread (deadlock-checked);
  /// \p Wait keeps the caller parked until the token returns.
  void switchAway(Guard &Lk, unsigned T, bool Wait);
  unsigned pickNext(unsigned T, bool AllowSelf);
  void handoff(Guard &Lk, unsigned T, unsigned Next, bool Wait);
  [[noreturn]] void reportDeadlock(unsigned T);

  std::mutex Mu;
  std::condition_variable Cv;
  unsigned N;
  SchedulePolicy Policy;
  CheckRng Rng;
  unsigned Cur = 0;
  bool InRegion = false;
  std::vector<uint8_t> Done;
  std::vector<ThreadState> TS;
  std::map<std::pair<unsigned, unsigned>, std::deque<RtValue>> Queues;
  std::map<unsigned, unsigned> RankOwner;
  std::map<std::string, unsigned> ResourceOwner;
  unsigned PointsSinceSwitch = 0;
  uint64_t Points = 0;
  std::vector<unsigned> Log;
  std::unique_ptr<HbChecker> Hb;
};

} // namespace check
} // namespace commset

#endif // COMMSET_CHECK_SCHEDULEPLATFORM_H
