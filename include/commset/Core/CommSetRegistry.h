//===- CommSetRegistry.h - COMMSET metadata manager --------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The COMMSET Metadata Manager (paper §4.2): collects declared sets,
/// predicates and nosync attributes from the program, expands implicit SELF
/// memberships into per-member singleton self sets, and answers the queries
/// later passes pose — most importantly, in which sets a given *pair* of
/// callees commutes:
///
///  * Group set: two distinct members commute; a member does not commute
///    with itself.
///  * Self set: a member commutes with dynamic instances of itself; two
///    distinct members of the same self set do not commute through it.
///
/// Each set receives a unique rank (declaration order) which the
/// synchronization engine uses as the global lock-acquisition order
/// guaranteeing deadlock freedom (paper §4.6).
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_CORE_COMMSETREGISTRY_H
#define COMMSET_CORE_COMMSETREGISTRY_H

#include "commset/IR/IR.h"
#include "commset/Lang/AST.h"
#include "commset/Support/Diagnostics.h"

#include <map>
#include <string>
#include <vector>

namespace commset {

class CommSetRegistry {
public:
  struct SetInfo {
    unsigned Id = 0;
    std::string Name;
    CommSetKind Kind = CommSetKind::Group;
    /// Predicate declaration (owned by the Program); null if unpredicated.
    const PredicateDecl *Pred = nullptr;
    bool NoSync = false;
    /// `#pragma commset sync(S, priv)`: the user demands privatized
    /// replicas for this set's members. The driver verifies the
    /// add-reduction proof after effect analysis and rejects the program
    /// (CL050) when it fails.
    bool ForcePriv = false;
    /// Global lock-acquisition rank.
    unsigned Rank = 0;
  };

  /// One membership of a callee: the set and which of the callee's
  /// parameters bind the predicate arguments.
  struct Membership {
    unsigned SetId = 0;
    std::vector<unsigned> ArgParams;
  };

  /// Builds the registry from program declarations and module member
  /// metadata. \p P must outlive the registry (predicate ASTs are shared).
  static CommSetRegistry build(const Program &P, const Module &M,
                               DiagnosticEngine &Diags);

  const std::vector<SetInfo> &sets() const { return Sets; }
  const SetInfo &set(unsigned Id) const { return Sets[Id]; }
  int findSet(const std::string &Name) const;

  /// Memberships of the callee named \p Callee (function or native).
  const std::vector<Membership> &membershipsOf(const std::string &Callee)
      const;

  /// Set ids through which calls to \p F and \p G may commute as a pair
  /// (F == G uses self semantics, otherwise group semantics).
  std::vector<unsigned> commutingSets(const std::string &F,
                                      const std::string &G) const;

  /// All callee names having at least one membership.
  std::vector<std::string> memberCallees() const;

private:
  unsigned getOrCreateSet(const std::string &Name, CommSetKind Kind);

  std::vector<SetInfo> Sets;
  std::map<std::string, unsigned> SetIdByName;
  std::map<std::string, std::vector<Membership>> Memberships;
  static const std::vector<Membership> NoMemberships;
};

} // namespace commset

#endif // COMMSET_CORE_COMMSETREGISTRY_H
