//===- DepAnalysis.h - CommSetDepAnalysis (Algorithm 1) ----------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The COMMSET Dependence Analyzer (paper §4.4, Algorithm 1). For every
/// memory dependence edge between two call nodes whose callees share a
/// COMMSET:
///
///  * unpredicated set               -> annotate uco;
///  * predicated set: bind the call actuals to the COMMSETPREDICATE
///    formals, symbolically interpret the predicate under the
///    induction-variable facts (i1 != i2 for loop-carried edges), and if
///    provably true annotate:
///      - loop-carried edge, destination dominates source -> uco,
///      - loop-carried edge otherwise                      -> ico,
///      - intra-iteration edge                             -> uco.
///
/// uco edges are ignored by the transforms; ico edges demote to
/// intra-iteration (paper §4.5).
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_CORE_DEPANALYSIS_H
#define COMMSET_CORE_DEPANALYSIS_H

#include "commset/Analysis/Dominators.h"
#include "commset/Analysis/PDG.h"
#include "commset/Core/CommSetRegistry.h"

namespace commset {

struct DepAnalysisStats {
  unsigned Examined = 0;
  unsigned UcoEdges = 0;
  unsigned IcoEdges = 0;
};

/// Annotates the Memory edges of \p G in place. \p DT must be the dominator
/// tree of G's function.
DepAnalysisStats annotateCommutativity(PDG &G, const DomTree &DT,
                                       const CommSetRegistry &Registry);

} // namespace commset

#endif // COMMSET_CORE_DEPANALYSIS_H
