//===- PredicateInterp.h - Symbolic predicate interpretation ----*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic interpreter for COMMSETPREDICATE expressions (paper §4.4,
/// SymInterpret in Algorithm 1). The dependence analyzer binds the
/// predicate's formal parameters to symbolic values of the actual arguments
/// in two execution contexts and asks whether the predicate is *provably*
/// true given the induction-variable facts:
///
///  * across two different iterations: IndVar@1 != IndVar@2;
///  * within one iteration: IndVar@1 == IndVar@2.
///
/// Values are affine offsets of symbolic variables, exact constants, or
/// opaque terms; evaluation is three-valued (True / False / Unknown).
/// Only a True result relaxes a dependence.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_CORE_PREDICATEINTERP_H
#define COMMSET_CORE_PREDICATEINTERP_H

#include "commset/Lang/AST.h"

#include <map>
#include <string>

namespace commset {

enum class TriBool { False, True, Unknown };

/// A symbolic scalar value.
struct SymValue {
  enum class Kind {
    /// Var(VarId) + Offset. VarId identifies a symbolic variable *instance*
    /// (e.g. "induction local in context 1").
    Affine,
    ConstInt,
    ConstFloat,
    /// A value about which nothing is known.
    Opaque,
  };
  Kind K = Kind::Opaque;
  unsigned VarId = 0;
  int64_t Offset = 0; // Affine offset or integer constant value.
  double FloatVal = 0.0;

  static SymValue affine(unsigned VarId, int64_t Offset = 0) {
    SymValue V;
    V.K = Kind::Affine;
    V.VarId = VarId;
    V.Offset = Offset;
    return V;
  }
  static SymValue constInt(int64_t Value) {
    SymValue V;
    V.K = Kind::ConstInt;
    V.Offset = Value;
    return V;
  }
  static SymValue constFloat(double Value) {
    SymValue V;
    V.K = Kind::ConstFloat;
    V.FloatVal = Value;
    return V;
  }
  static SymValue opaque() { return SymValue(); }
};

/// Facts about symbolic variables available during evaluation.
struct SymFacts {
  /// Pairs of variable ids known to hold different values (the Algorithm 1
  /// assertion "i1 != i2" for induction variables on separate iterations).
  std::vector<std::pair<unsigned, unsigned>> Distinct;

  bool knownDistinct(unsigned A, unsigned B) const {
    for (auto [X, Y] : Distinct)
      if ((X == A && Y == B) || (X == B && Y == A))
        return true;
    return false;
  }
};

/// Evaluates \p Pred under \p Env (formal name -> symbolic value) and
/// \p Facts with three-valued logic.
TriBool evalPredicate(const Expr *Pred,
                      const std::map<std::string, SymValue> &Env,
                      const SymFacts &Facts);

} // namespace commset

#endif // COMMSET_CORE_PREDICATEINTERP_H
