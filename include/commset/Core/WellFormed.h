//===- WellFormed.h - COMMSET well-formedness checks -------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-module COMMSET well-formedness (paper §3.1):
///
///  * Well-defined members: no transitive call from one member of a set to
///    another member of the same set (removes caller/callee commutativity
///    ambiguity and simplifies deadlock-freedom reasoning).
///  * Well-formed set collection: the COMMSET graph (edge S1 -> S2 when a
///    member of S1 transitively calls a member of S2) is acyclic.
///
/// The structured-control-flow member condition is enforced earlier by
/// Sema. With these checks passing, rank-ordered lock acquisition in the
/// synchronization engine guarantees deadlock freedom (paper §4.6).
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_CORE_WELLFORMED_H
#define COMMSET_CORE_WELLFORMED_H

#include "commset/Analysis/CallGraph.h"
#include "commset/Core/CommSetRegistry.h"
#include "commset/Support/Diagnostics.h"

namespace commset {

/// Runs both checks; reports problems to \p Diags. \returns true if the
/// module's COMMSETs are well formed.
bool checkWellFormed(const Module &M, const CommSetRegistry &Registry,
                     const CallGraph &CG, DiagnosticEngine &Diags);

/// Builds the COMMSET graph: adjacency over set ids.
std::vector<std::set<unsigned>>
buildCommSetGraph(const Module &M, const CommSetRegistry &Registry,
                  const CallGraph &CG);

} // namespace commset

#endif // COMMSET_CORE_WELLFORMED_H
