//===- Compilation.h - End-to-end compiler pipeline -------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compilation facade mirroring the paper's workflow (Figure 5):
/// parse -> sema -> named-block specialization -> lowering (with region
/// extraction) -> COMMSET registry + well-formedness -> per-loop analysis
/// (PDG, Algorithm 1 annotation, DAG-SCC). Parallelizing transforms and the
/// executors consume the LoopTarget this class produces.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_DRIVER_COMPILATION_H
#define COMMSET_DRIVER_COMPILATION_H

#include "commset/Analysis/CallGraph.h"
#include "commset/Analysis/Dominators.h"
#include "commset/Analysis/Effects.h"
#include "commset/Analysis/LoopInfo.h"
#include "commset/Analysis/PDG.h"
#include "commset/Analysis/SCC.h"
#include "commset/Core/CommSetRegistry.h"
#include "commset/Core/DepAnalysis.h"
#include "commset/IR/IR.h"
#include "commset/Lang/AST.h"
#include "commset/Support/Diagnostics.h"

#include <memory>
#include <string>

namespace commset {

class Compilation {
public:
  /// Runs the frontend pipeline on \p Source. Returns null after reporting
  /// errors to \p Diags (including COMMSET well-formedness violations).
  static std::unique_ptr<Compilation> fromSource(const std::string &Source,
                                                 DiagnosticEngine &Diags);

  Module &module() { return *Mod; }
  const Module &module() const { return *Mod; }
  const Program &program() const { return *Prog; }
  const CommSetRegistry &registry() const { return Registry; }
  const EffectAnalysis &effects() const { return Effects; }
  const CallGraph &callgraph() const { return CG; }

  /// Analysis bundle for one target loop (the paper profiles for the
  /// hottest loop; callers name the function, and the first top-level loop
  /// in it is targeted).
  struct LoopTarget {
    Function *F = nullptr;
    Loop *L = nullptr;
    DomTree DT;
    LoopInfo LI;
    PtrOrigins PO;
    PDG G;
    DepAnalysisStats Stats;
    SCCResult Sccs;
  };

  /// Analyzes the first top-level loop of \p FuncName: builds the PDG, runs
  /// Algorithm 1, and computes the relaxed DAG-SCC. Returns null (with a
  /// diagnostic) when the function or loop is missing.
  std::unique_ptr<LoopTarget> analyzeLoop(const std::string &FuncName,
                                          DiagnosticEngine &Diags);

private:
  Compilation() = default;

  std::unique_ptr<Program> Prog;
  std::unique_ptr<Module> Mod;
  CommSetRegistry Registry;
  EffectAnalysis Effects;
  CallGraph CG;
};

} // namespace commset

#endif // COMMSET_DRIVER_COMPILATION_H
