//===- Runner.h - Scheme selection and program execution --------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bench- and tool-facing driver: builds every applicable parallelization
/// scheme for a target loop (the paper's compiler emits one of each of
/// DOALL / DSWP / PS-DSWP with a performance estimate), runs a chosen
/// scheme on the threaded platform (correctness) or the multicore
/// simulator (performance), and reports virtual/wall time.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_DRIVER_RUNNER_H
#define COMMSET_DRIVER_RUNNER_H

#include "commset/Driver/Compilation.h"
#include "commset/Exec/LoopExecutors.h"
#include "commset/Exec/NativeRegistry.h"
#include "commset/Sim/SimPlatform.h"
#include "commset/Transform/Planner.h"

#include <optional>
#include <string>
#include <vector>

namespace commset {

/// One transform's outcome on a loop.
struct SchemeReport {
  Strategy Kind = Strategy::Sequential;
  bool Applicable = false;
  std::string WhyNot;
  std::optional<ParallelPlan> Plan;
};

/// Runs DOALL, DSWP and PS-DSWP on the analyzed loop; always also returns
/// the (trivially applicable) sequential scheme first.
std::vector<SchemeReport> buildAllSchemes(Compilation &C,
                                          Compilation::LoopTarget &T,
                                          const PlanOptions &Opts);

/// Picks the applicable scheme with the best estimated speedup.
const SchemeReport *bestScheme(const std::vector<SchemeReport> &Schemes);

/// What a run ultimately did, from the caller's point of view. Distinct
/// process exit codes (exitCodeFor) let scripts tell these apart.
enum class RunStatus : int {
  Ok = 0,                 ///< Plan ran to completion as planned.
  DegradedSequential = 1, ///< Parallel plan failed; sequential fallback
                          ///< produced the (correct) result.
  InternalError = 2,      ///< Unrecoverable failure; no trustworthy result.
  DeadlineExceeded = 3,   ///< Wall-clock budget ran out; the region was
                          ///< cancelled and NOT re-executed (no result).
};

const char *runStatusName(RunStatus Status);

/// Process exit code for each status: 0 (ok), 10 (degraded), 70 (internal
/// error, mirroring BSD EX_SOFTWARE), 75 (deadline exceeded, mirroring
/// BSD EX_TEMPFAIL: retry with a bigger budget).
int exitCodeFor(RunStatus Status);

struct RunConfig {
  /// Null plan = sequential execution.
  const ParallelPlan *Plan = nullptr;
  /// True: run under the multicore simulator and report virtual time.
  /// False: run on real threads and report wall time.
  bool Simulate = true;
  SimParams Sim;
  /// Retry/timeout bounds + fault injection; null = process defaults.
  const ResilienceConfig *Resilience = nullptr;
  /// Wall-clock budget for the whole run, enforced at region checkpoints
  /// (commset-run --deadline-ms, commsetd per-request deadlines). 0 = no
  /// deadline. Layered on top of Resilience: runScheme copies the config
  /// and stamps Resilience.DeadlineAtMonoNs = now + DeadlineMs.
  uint64_t DeadlineMs = 0;
  /// Reverts caller-side native state (e.g. a recorder) before a
  /// sequential fallback re-execution.
  std::function<void()> ResetState;

  /// Native-code backend for this run (DESIGN.md §8); non-owning, null =
  /// interpret. Only valid on real threads: runScheme reports
  /// InternalError for Backend + Simulate, because native code has no
  /// virtual-time charge points.
  const ExecBackend *Backend = nullptr;

  /// CommTrace: arm the tracer for this run (implied by TraceOutPath /
  /// TraceProfileStderr). No-op when tracing is compiled out.
  bool Trace = false;
  /// Write the run's Chrome trace_event JSON here ("" = don't export).
  std::string TraceOutPath;
  /// Print the plain-text profile report to stderr after the run.
  bool TraceProfileStderr = false;
  /// Ring capacity per worker when tracing (events kept per thread).
  size_t TraceCapacity = size_t(1) << 15;
};

struct RunOutcome {
  RtValue Result;
  uint64_t VirtualNs = 0;
  uint64_t WallNs = 0;
  uint64_t Iterations = 0;
  uint64_t TmAborts = 0;
  uint64_t LockContentions = 0;
  /// Structured diagnostics: did the plan run, degrade, or die — and why.
  RunStatus Status = RunStatus::Ok;
  FaultKind DegradedWhy = FaultKind::None;
  std::string Diagnostic;
  /// CommTrace results (zero / empty when the run was not traced).
  uint64_t TraceEvents = 0;
  uint64_t TraceDropped = 0;
  std::string TraceError; ///< Trace export failure, if any.
};

/// Executes \p F (the analyzed loop's function) with \p Args over a fresh
/// global image.
RunOutcome runScheme(Compilation &C, const Function *F,
                     const std::vector<RtValue> &Args,
                     const NativeRegistry &Natives, const RunConfig &Config);

} // namespace commset

#endif // COMMSET_DRIVER_RUNNER_H
