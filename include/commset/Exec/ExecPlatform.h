//===- ExecPlatform.h - Platform abstraction for parallel runs --*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel executors (DOALL and pipeline workers) are written once
/// against this interface and driven by two platforms:
///
///  * ThreadedPlatform (Exec) — real std::thread workers, lock-free SPSC
///    queues, real locks/STM; charge() is a no-op. Used for functional
///    correctness on real hardware.
///  * SimPlatform (Sim) — a conservative discrete-event multicore
///    simulator: every thread carries a virtual clock; queue, lock and TM
///    interactions are ordered by virtual time. Used to regenerate the
///    paper's speedup figures on hosts without 8 cores.
///
/// Exactly one queue exists per ordered thread pair; both endpoints
/// process their pair's traffic in the same deterministic order, so value
/// identity is positional.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_EXEC_EXECPLATFORM_H
#define COMMSET_EXEC_EXECPLATFORM_H

#include "commset/Exec/RtValue.h"
#include "commset/Runtime/Sched.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace commset {

class Function;
class Interpreter;
struct Frame;

/// Which execution backend runs function bodies. The interpreter is always
/// present; Jit layers native code generation on top of it (unsupported
/// constructs fall back per function).
enum class ExecBackendKind { Interp, Jit };

const char *execBackendName(ExecBackendKind K);
bool execBackendFromString(const char *S, ExecBackendKind &Out);

/// Call context a backend-native entry point receives. Plain pointers only
/// (the JIT bakes the field offsets into generated code); Exc points to a
/// std::exception_ptr owned by the caller, filled by the escape helpers
/// when an interpreted instruction throws so the exception can be rethrown
/// once native code has unwound its own frame.
struct ExecBackendCtx {
  Interpreter *Interp;
  Frame *Fr;
  RtValue *Regs;   // == Fr->Regs.data(), indexed by instruction id
  RtValue *Locals; // == Fr->Locals.data(), indexed by slot id
  void *Exc;       // std::exception_ptr *
};

/// Backend boundary: the interpreter, the JIT and the simulator are peers
/// behind this interface. A backend maps functions to native entry points;
/// entryFor returning null means "interpret this one" (the universal
/// fallback). Implementations are immutable after construction so one
/// instance can be shared by every worker of a region without locking.
class ExecBackend {
public:
  using NativeEntry = uint64_t (*)(ExecBackendCtx *);

  virtual ~ExecBackend() = default;

  virtual const char *name() const = 0;

  /// Native entry for \p F, or null to run it through the interpreter.
  virtual NativeEntry entryFor(const Function *F) const = 0;

  /// Bytes of executable code owned by this backend (0 for pure fallback).
  virtual size_t codeBytes() const { return 0; }
};

class ExecPlatform {
public:
  virtual ~ExecPlatform() = default;

  /// Sends a value from thread \p From to thread \p To (FIFO per pair).
  virtual void send(unsigned From, unsigned To, RtValue Value) = 0;

  /// Receives the next value on the (From, To) channel; blocks until
  /// available.
  virtual RtValue recv(unsigned From, unsigned To) = 0;

  /// Charges \p Ns of virtual compute time to \p Thread (no-op on the
  /// threaded platform).
  virtual void charge(unsigned Thread, uint64_t Ns) = 0;

  /// COMMSET member entry/exit: acquires/releases the ranked lock set
  /// (already sorted ascending).
  virtual void lockEnter(unsigned Thread,
                         const std::vector<unsigned> &Ranks) = 0;
  virtual void lockExit(unsigned Thread,
                        const std::vector<unsigned> &Ranks) = 0;

  /// Optimistic member execution (TM mode): called instead of
  /// lockEnter/lockExit. txBegin returns the attempt number; txCommit
  /// returns false when the attempt must retry. The simulated platform
  /// models conflicts internally; the threaded platform performs real STM
  /// through the interpreter's transactional global accesses.
  virtual void txBegin(unsigned Thread) = 0;
  virtual bool txCommit(unsigned Thread,
                        const std::vector<unsigned> &Ranks,
                        uint64_t MemberCostNs) = 0;

  /// Serialized native resource (thread-safe library internals, e.g. the
  /// file system or the console). Calls touching the same resource
  /// serialize against each other.
  virtual void resourceEnter(unsigned Thread, const std::string &Name) = 0;
  virtual void resourceExit(unsigned Thread, const std::string &Name) = 0;

  /// Marks a worker finished (lets the simulator exclude it from the
  /// minimum-time gate).
  virtual void threadDone(unsigned Thread) = 0;

  /// Dynamic self-scheduling: claims the next chunk of loop iterations for
  /// \p Thread from the region's shared counter. \returns the first claimed
  /// iteration index and sets \p Count to the chunk size —
  /// schedChunkSize(P, Begin, Threads), so chunk boundaries tile the
  /// iteration space identically regardless of claim interleaving. The
  /// counter is unbounded; the executor discovers loop exit through the
  /// header, so claims past the trip count are benign. The simulator
  /// overrides this to grant claims in virtual-time order and charge the
  /// claim's cost.
  virtual uint64_t claimIterations(unsigned Thread, SchedPolicy P,
                                   unsigned Threads, uint64_t &Count) {
    uint64_t Cur = NextIter.load(std::memory_order_relaxed);
    for (;;) {
      uint64_t C = schedChunkSize(P, Cur, Threads);
      if (NextIter.compare_exchange_weak(Cur, Cur + C,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
        Count = C;
        return Cur;
      }
    }
  }

  /// Resets the claim counter; called by the loop executor before the
  /// region's tasks start (a platform may outlive one region).
  void resetClaims() { NextIter.store(0, std::memory_order_relaxed); }

  /// True when idle workers may steal split-off sub-chunks from other
  /// workers' deques. Only the threaded platform opts in: steal victims are
  /// picked by real-time races, which would leak the host schedule into the
  /// simulator's virtual clocks and into replayed schedule exploration.
  virtual bool supportsWorkStealing() const { return false; }

  /// Parallel-region brackets: workers fork from / join into
  /// \p MasterThread. The simulator aligns the workers' virtual clocks with
  /// the master at fork and advances the master to the slowest worker at
  /// join.
  virtual void regionBegin(unsigned MasterThread) {}
  virtual void regionEnd(unsigned MasterThread) {}

  /// Elapsed virtual nanoseconds (simulator) — the maximum over thread
  /// clocks; the threaded platform returns 0 (callers measure wall time).
  virtual uint64_t elapsedNs() const = 0;

  /// Cancels the region: wakes every worker blocked inside the platform
  /// (e.g. on a queue) so it can unwind. Idempotent; safe to call from any
  /// thread. Default no-op for platforms whose operations never block.
  virtual void cancel() {}

  /// Instrumentation hooks (default no-ops). The interpreter reports every
  /// shared-global access and COMMSET member bracket through these so a
  /// checking platform (Check/SchedulePlatform) can run a vector-clock
  /// happens-before analysis without slowing the production platforms.
  ///
  /// onGlobalLoad/onGlobalStore fire for direct accesses to the shared
  /// global image; transactional accesses are bracketed by txBegin/txCommit
  /// and also reported here. memberEnter carries \p DeclaredSafe = true when
  /// the member runs without compiler synchronization because it was
  /// declared thread-safe (NOSYNC / Lib mode), which tells the race checker
  /// the access is covered by a COMMSET contract rather than unsynchronized
  /// by accident.
  virtual void onGlobalLoad(unsigned Thread, unsigned Slot) {}
  virtual void onGlobalStore(unsigned Thread, unsigned Slot) {}
  virtual void memberEnter(unsigned Thread, const std::string &Name,
                           bool DeclaredSafe) {}
  virtual void memberExit(unsigned Thread) {}

  /// Privatized-access hooks (SyncMode::Priv), fired *instead of*
  /// onGlobalLoad/onGlobalStore when an access is served by the worker's
  /// replica: the shared global is untouched, so the happens-before
  /// checker must not see (and falsely race on) it. The simulator charges
  /// the replica touch (a private cache line, far below a lock acquire)
  /// and bills the merge to the master at region exit.
  virtual void onPrivLoad(unsigned Thread, unsigned Slot) {}
  virtual void onPrivStore(unsigned Thread, unsigned Slot) {}
  virtual void onPrivMerge(unsigned MasterThread, uint64_t Slots,
                           uint64_t Workers) {}

protected:
  /// Shared iteration counter behind claimIterations/resetClaims.
  std::atomic<uint64_t> NextIter{0};
};

} // namespace commset

#endif // COMMSET_EXEC_EXECPLATFORM_H
