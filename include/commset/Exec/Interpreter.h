//===- Interpreter.h - IR interpreter ----------------------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block-walking interpreter for the IR. One instance runs per worker
/// thread; the module's global slots are shared across instances. The
/// interpreter implements the synchronization the paper's engine inserts:
/// calls to COMMSET member functions acquire the member's rank-ordered
/// lock set (pessimistic modes) or run as transactions over interpreted
/// global state (TM mode), and everything charges virtual time through the
/// platform when one is attached.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_EXEC_INTERPRETER_H
#define COMMSET_EXEC_INTERPRETER_H

#include "commset/Exec/ExecPlatform.h"
#include "commset/Exec/NativeRegistry.h"
#include "commset/Exec/RtValue.h"
#include "commset/IR/IR.h"
#include "commset/Runtime/Stm.h"
#include "commset/Transform/ParallelPlan.h"

#include <map>
#include <string>
#include <vector>

namespace commset {

class PrivatizationManager;

/// Execution frame of one function activation.
struct Frame {
  std::vector<RtValue> Locals;
  std::vector<RtValue> Regs; // Indexed by instruction id.
};

/// Per-thread synchronization context shared by the interpreters of one
/// parallel region.
struct SyncContext {
  SyncMode Mode = SyncMode::None;
  /// Member name -> lock ranks / TM eligibility (from the plan). Null when
  /// running sequentially.
  const std::map<std::string, MemberSyncInfo> *Members = nullptr;
  CommSetLockManager *Locks = nullptr;
  StmSpace *StmState = nullptr;
  /// Retry/timeout bounds and fault injection for this region; null means
  /// process defaults (defaultResilience()).
  const ResilienceConfig *Resilience = nullptr;
  /// Replica manager for privatized globals (SyncMode::Priv). Non-null only
  /// inside a parallel region whose plan privatized at least one slot;
  /// global accesses to privatized slots are served by this thread's
  /// replica instead of the shared image.
  PrivatizationManager *Priv = nullptr;
};

class Interpreter {
public:
  Interpreter(const Module &M, const NativeRegistry &Natives,
              RtValue *Globals, SyncContext Sync = {},
              ExecPlatform *Platform = nullptr, unsigned ThreadId = 0,
              const ExecBackend *Backend = nullptr)
      : M(M), Natives(Natives), Globals(Globals), Sync(Sync),
        Platform(Platform), ThreadId(ThreadId), Backend(Backend) {}

  /// Calls \p F with \p Args; runs to completion.
  RtValue call(const Function *F, const std::vector<RtValue> &Args);

  /// Builds a frame for \p F with arguments bound (used by loop executors
  /// that drive control themselves).
  Frame makeFrame(const Function *F, const std::vector<RtValue> &Args) const;

  /// Evaluates an operand against \p Fr.
  RtValue evalOperand(const Frame &Fr, const Operand &Op) const;

  /// Executes one non-terminator instruction (full effects: member
  /// synchronization around calls, platform charging). Loop executors call
  /// this for instructions they own.
  void execInstr(Frame &Fr, const Instruction *Instr);

  /// Fixed virtual cost (ns) of a non-call instruction.
  static uint64_t opCost(const Instruction *Instr);

  unsigned threadId() const { return ThreadId; }
  ExecPlatform *platform() const { return Platform; }
  const NativeRegistry &natives() const { return Natives; }
  const ExecBackend *backend() const { return Backend; }

private:
  /// Runs \p F's body: dispatches to the attached backend's native entry
  /// when one exists and no transaction is active (native code has no STM
  /// redirection or abort checks), otherwise interprets.
  RtValue runBody(const Function *F, Frame &Fr);
  RtValue runNative(ExecBackend::NativeEntry Entry, Frame &Fr);
  RtValue execBody(const Function *F, Frame &Fr);
  RtValue execCall(Frame &Fr, const Instruction *Instr);
  RtValue execCallNative(Frame &Fr, const Instruction *Instr);
  RtValue invokeMember(const Instruction *Instr,
                       const std::vector<RtValue> &Args,
                       const MemberSyncInfo &Info);
  RtValue invokeDirect(const Instruction *Instr,
                       const std::vector<RtValue> &Args);

  /// CommTrace: interned id of a member's name, cached per MemberSyncInfo
  /// so the hot path interns each member once per interpreter (= per
  /// worker), not once per call.
  uint64_t traceMemberId(const MemberSyncInfo &Info,
                         const std::string &Name);

  const Module &M;
  const NativeRegistry &Natives;
  RtValue *Globals;
  SyncContext Sync;
  ExecPlatform *Platform;
  unsigned ThreadId;
  const ExecBackend *Backend;

  /// Active transaction (TM mode member execution); global accesses are
  /// redirected through it.
  Stm *CurrentTx = nullptr;

  /// traceMemberId cache; keyed by the plan's MemberSyncInfo address,
  /// which is stable for the life of the region.
  std::map<const MemberSyncInfo *, uint64_t> TraceMemberIds;
};

} // namespace commset

#endif // COMMSET_EXEC_INTERPRETER_H
