//===- JitBackend.h - Baseline x86-64 template JIT ---------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Baseline template JIT for the typed register IR (DESIGN.md §8). Every
/// function of a module is compiled eagerly to x86-64 at backend creation:
/// one stencil per opcode, operands and frame offsets patched in, register
/// file and locals addressed directly off the interpreter Frame
/// (Regs[id] at byte offset 8*id). Opcodes with runtime-visible side
/// effects beyond the frame — Call, CallNative, LoadGlobal, StoreGlobal —
/// escape through a trampoline back into Interpreter::execInstr, which
/// preserves member synchronization (mutex/spin/tm/lib/priv), platform
/// hooks, tracing, fault injection and deadline cancellation unchanged.
///
/// The backend is immutable after create() and holds a single W^X code
/// region (mapped RW, filled, then flipped to RX), so one instance is
/// shared by all workers of a region. Functions the compiler declines
/// (deny-listed, oversized, malformed) simply have no entry: the
/// interpreter is the universal fallback, per function, with no mode
/// switches mid-body.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_EXEC_JITBACKEND_H
#define COMMSET_EXEC_JITBACKEND_H

#include "commset/Exec/ExecPlatform.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace commset {

class Module;

namespace jit {
class ExecMem;
}

struct JitOptions {
  /// Functions never compiled (forced interpreter fallback); exercised by
  /// the boundary tests.
  std::vector<std::string> DenyFunctions;
  /// Per-function machine-code cap; a body blowing past it falls back.
  size_t MaxFunctionBytes = 1u << 20;
};

class JitBackend : public ExecBackend {
public:
  /// True when this build can emit native code (x86-64 and COMMSET_JIT not
  /// compiled out). When false, create() returns null.
  static bool supported();

  /// Compiles every function of \p M. Returns null when unsupported, when
  /// the executable mapping is refused, or when no function compiled at
  /// all (callers then run fully interpreted instead of holding an empty
  /// backend). \p M must outlive the backend (entries read its instruction
  /// objects and string table).
  static std::unique_ptr<JitBackend> create(const Module &M,
                                            const JitOptions &Opts = {});

  ~JitBackend() override;

  const char *name() const override { return "jit"; }
  NativeEntry entryFor(const Function *F) const override;
  size_t codeBytes() const override;

  /// Compilation census for tests and diagnostics.
  unsigned compiledCount() const { return Compiled; }
  unsigned fallbackCount() const { return Fallbacks; }

private:
  JitBackend();

  std::unique_ptr<jit::ExecMem> Mem;
  /// Immutable after create(); read concurrently by every worker.
  std::unordered_map<const Function *, NativeEntry> Entries;
  unsigned Compiled = 0;
  unsigned Fallbacks = 0;
};

} // namespace commset

#endif // COMMSET_EXEC_JITBACKEND_H
