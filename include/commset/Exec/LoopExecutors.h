//===- LoopExecutors.h - DOALL and pipeline execution -----------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a function whose target loop runs under a ParallelPlan:
///
///  * DOALL — workers run whole iterations round-robin with a privatized
///    induction variable (start offset + step scaled by the thread count).
///  * DSWP / PS-DSWP — every stage thread traces the loop's control flow;
///    owned instructions execute in their stage, cross-stage values flow
///    through per-thread-pair FIFOs, control (terminators, induction SCC,
///    header closure) is replicated, and per-iteration tokens between
///    adjacent stages order cross-stage memory effects. A PS-DSWP parallel
///    stage is replicated; replicas fully trace only their assigned
///    iterations and fast-forward the rest.
///
/// The same worker code runs on the real-thread platform (correctness) and
/// under the discrete-event simulator (performance), selected by the
/// ExecPlatform instance.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_EXEC_LOOPEXECUTORS_H
#define COMMSET_EXEC_LOOPEXECUTORS_H

#include "commset/Exec/ExecPlatform.h"
#include "commset/Exec/Interpreter.h"
#include "commset/Runtime/FaultInjector.h"
#include "commset/Transform/ParallelPlan.h"

#include <cstdint>
#include <functional>
#include <memory>

namespace commset {

struct LoopRunStats {
  uint64_t Iterations = 0;
};

/// Runs \p F (the plan's function) with \p Args: sequential interpretation
/// outside the target loop, plan-directed execution inside it. \p Globals
/// must hold Module.Globals.size() slots. For Strategy::Sequential the
/// whole function is interpreted on thread 0 of \p Platform.
///
/// \p Resilience selects the region's retry/timeout bounds, supervision
/// and fault injection (null = process defaults). When a parallel region
/// fails — exhausted STM, timed-out lock, watchdog trip, injected task
/// failure — this throws RegionFault after cancelling the region and
/// joining its workers; partial effects on \p Globals and native state are
/// unspecified, which is why callers wanting the sequential-fallback
/// guarantee go through runFunctionResilient instead.
///
/// \p Backend optionally attaches a native-code backend (DESIGN.md §8):
/// every worker's interpreter dispatches function bodies through it, so
/// COMMSET members called from the loop run native inside the worker pool,
/// and a Sequential plan runs the whole function native. Must be null when
/// \p Platform is a simulator or controlled-schedule platform — native code
/// has no charge/preemption points.
RtValue runFunctionWithPlan(const Module &M, const NativeRegistry &Natives,
                            RtValue *Globals, const ParallelPlan &Plan,
                            const Function *F,
                            const std::vector<RtValue> &Args,
                            ExecPlatform &Platform,
                            LoopRunStats *Stats = nullptr,
                            const ResilienceConfig *Resilience = nullptr,
                            const ExecBackend *Backend = nullptr);

/// Initializes a fresh global image from the module's initializers.
std::vector<RtValue> makeGlobalImage(const Module &M);

/// Result of a resilient run: the answer is always the correct sequential
/// answer; Degraded records whether the parallel plan had to be abandoned.
struct ResilientOutcome {
  RtValue Result;
  LoopRunStats Stats;
  bool Degraded = false;
  FaultKind Why = FaultKind::None;
  unsigned FaultThread = 0;
  std::string Diagnostic;
};

/// Builds the execution platform for one run attempt. Called once for the
/// parallel attempt (Plan.NumThreads) and, after a fault, once more for
/// the sequential re-execution (1 thread) — the faulted platform's queues
/// are poisoned and must not be reused.
using PlatformFactory =
    std::function<std::unique_ptr<ExecPlatform>(unsigned NumThreads)>;

/// Graceful degradation wrapper: runs \p Plan, and if the parallel region
/// fails mid-run, discards all partial parallel state — \p Globals is
/// reassigned a fresh image, \p ResetState reverts caller-side native
/// state to its pre-run snapshot — and re-executes the whole function
/// sequentially, which by construction reproduces the sequential
/// reference. \p OnRunDone fires after the successful attempt (parallel
/// or fallback) so callers can harvest platform statistics.
ResilientOutcome runFunctionResilient(
    const Module &M, const NativeRegistry &Natives,
    std::vector<RtValue> &Globals, const ParallelPlan &Plan,
    const Function *F, const std::vector<RtValue> &Args,
    const PlatformFactory &MakePlatform,
    const ResilienceConfig *Resilience = nullptr,
    const std::function<void()> &ResetState = {},
    const std::function<void(ExecPlatform &, bool Degraded)> &OnRunDone = {},
    const ExecBackend *Backend = nullptr);

} // namespace commset

#endif // COMMSET_EXEC_LOOPEXECUTORS_H
