//===- LoopExecutors.h - DOALL and pipeline execution -----------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a function whose target loop runs under a ParallelPlan:
///
///  * DOALL — workers run whole iterations round-robin with a privatized
///    induction variable (start offset + step scaled by the thread count).
///  * DSWP / PS-DSWP — every stage thread traces the loop's control flow;
///    owned instructions execute in their stage, cross-stage values flow
///    through per-thread-pair FIFOs, control (terminators, induction SCC,
///    header closure) is replicated, and per-iteration tokens between
///    adjacent stages order cross-stage memory effects. A PS-DSWP parallel
///    stage is replicated; replicas fully trace only their assigned
///    iterations and fast-forward the rest.
///
/// The same worker code runs on the real-thread platform (correctness) and
/// under the discrete-event simulator (performance), selected by the
/// ExecPlatform instance.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_EXEC_LOOPEXECUTORS_H
#define COMMSET_EXEC_LOOPEXECUTORS_H

#include "commset/Exec/ExecPlatform.h"
#include "commset/Exec/Interpreter.h"
#include "commset/Transform/ParallelPlan.h"

#include <cstdint>

namespace commset {

struct LoopRunStats {
  uint64_t Iterations = 0;
};

/// Runs \p F (the plan's function) with \p Args: sequential interpretation
/// outside the target loop, plan-directed execution inside it. \p Globals
/// must hold Module.Globals.size() slots. For Strategy::Sequential the
/// whole function is interpreted on thread 0 of \p Platform.
RtValue runFunctionWithPlan(const Module &M, const NativeRegistry &Natives,
                            RtValue *Globals, const ParallelPlan &Plan,
                            const Function *F,
                            const std::vector<RtValue> &Args,
                            ExecPlatform &Platform,
                            LoopRunStats *Stats = nullptr);

/// Initializes a fresh global image from the module's initializers.
std::vector<RtValue> makeGlobalImage(const Module &M);

} // namespace commset

#endif // COMMSET_EXEC_LOOPEXECUTORS_H
