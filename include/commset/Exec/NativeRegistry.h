//===- NativeRegistry.h - Host-registered native kernels ---------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Host applications implement a program's extern functions as native C++
/// kernels and register them here. Each kernel optionally declares a
/// virtual-time cost model (nanoseconds as a function of its arguments),
/// which the discrete-event multicore simulator charges instead of wall
/// time; see src/sim. Kernels invoked from parallel schedules must be
/// thread safe for exactly the concurrency the program's COMMSET
/// annotations permit — the synchronization engine inserts member-level
/// locking, everything else runs concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_EXEC_NATIVEREGISTRY_H
#define COMMSET_EXEC_NATIVEREGISTRY_H

#include "commset/Exec/RtValue.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace commset {

/// Native kernel: receives evaluated arguments, returns the result (zeroed
/// for void kernels).
using NativeFn = std::function<RtValue(const RtValue *Args, unsigned N)>;

/// Virtual-time cost (ns) of one invocation, given the same arguments. May
/// be called before or after the kernel itself; must be pure.
using NativeCostFn = std::function<uint64_t(const RtValue *Args, unsigned N)>;

class NativeRegistry {
public:
  void add(const std::string &Name, NativeFn Fn, uint64_t FixedCostNs = 100,
           std::string SerialResource = {}) {
    Impls[Name] = {std::move(Fn),
                   [FixedCostNs](const RtValue *, unsigned) {
                     return FixedCostNs;
                   },
                   std::move(SerialResource)};
  }

  void add(const std::string &Name, NativeFn Fn, NativeCostFn Cost,
           std::string SerialResource = {}) {
    Impls[Name] = {std::move(Fn), std::move(Cost),
                   std::move(SerialResource)};
  }

  /// Name of the serialized hardware/library resource this kernel uses
  /// (e.g. "fs", "console"); empty when fully concurrent. Calls touching
  /// the same resource serialize, modelling the internal locking of the
  /// paper's thread-safe libraries ("Lib" mode).
  const std::string &serialResourceOf(const std::string &Name) const {
    auto It = Impls.find(Name);
    return It->second.SerialResource;
  }

  bool has(const std::string &Name) const { return Impls.count(Name) != 0; }

  RtValue invoke(const std::string &Name, const RtValue *Args,
                 unsigned N) const {
    auto It = Impls.find(Name);
    return It->second.Fn(Args, N);
  }

  uint64_t costOf(const std::string &Name, const RtValue *Args,
                  unsigned N) const {
    auto It = Impls.find(Name);
    return It->second.Cost(Args, N);
  }

  /// Names with no registered implementation among \p Required.
  std::vector<std::string>
  missing(const std::vector<std::string> &Required) const {
    std::vector<std::string> Result;
    for (const std::string &Name : Required)
      if (!has(Name))
        Result.push_back(Name);
    return Result;
  }

private:
  struct Impl {
    NativeFn Fn;
    NativeCostFn Cost;
    std::string SerialResource;
  };
  std::map<std::string, Impl> Impls;
};

} // namespace commset

#endif // COMMSET_EXEC_NATIVEREGISTRY_H
