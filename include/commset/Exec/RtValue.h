//===- RtValue.h - Runtime scalar values --------------------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime representation of IR scalars. The IR is statically typed, so an
/// untagged union suffices; interpreters index frames by local slot and
/// instruction id.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_EXEC_RTVALUE_H
#define COMMSET_EXEC_RTVALUE_H

#include <cstdint>

namespace commset {

struct RtValue {
  union {
    int64_t I;
    double D;
    void *P;
    uint64_t Bits;
  };

  RtValue() : I(0) {}
  static RtValue ofInt(int64_t V) {
    RtValue R;
    R.I = V;
    return R;
  }
  static RtValue ofDouble(double V) {
    RtValue R;
    R.D = V;
    return R;
  }
  static RtValue ofPtr(void *V) {
    RtValue R;
    R.P = V;
    return R;
  }
};

} // namespace commset

#endif // COMMSET_EXEC_RTVALUE_H
