//===- ThreadedPlatform.h - Real-thread execution platform ------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ExecPlatform backed by real concurrency: SPSC queues between worker
/// threads, real serialized-resource mutexes, no time accounting. COMMSET
/// member locks are taken by the interpreter's CommSetLockManager, so the
/// lockEnter/lockExit notifications are no-ops here.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_EXEC_THREADEDPLATFORM_H
#define COMMSET_EXEC_THREADEDPLATFORM_H

#include "commset/Exec/ExecPlatform.h"
#include "commset/Runtime/FaultInjector.h"
#include "commset/Runtime/SpscQueue.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace commset {

class ThreadedPlatform : public ExecPlatform {
public:
  /// \p Faults, when non-null, injects slow-consumer stalls ahead of
  /// queue receives (FaultKind::QueueStall).
  explicit ThreadedPlatform(unsigned NumThreads,
                            FaultInjector *Faults = nullptr);

  void send(unsigned From, unsigned To, RtValue Value) override;
  RtValue recv(unsigned From, unsigned To) override;
  void charge(unsigned Thread, uint64_t Ns) override {}
  void lockEnter(unsigned Thread,
                 const std::vector<unsigned> &Ranks) override {}
  void lockExit(unsigned Thread,
                const std::vector<unsigned> &Ranks) override {}
  void txBegin(unsigned Thread) override {}
  bool txCommit(unsigned Thread, const std::vector<unsigned> &Ranks,
                uint64_t MemberCostNs) override {
    return true; // Real STM conflicts are detected by Runtime/Stm itself.
  }
  void resourceEnter(unsigned Thread, const std::string &Name) override;
  void resourceExit(unsigned Thread, const std::string &Name) override;
  void threadDone(unsigned Thread) override {}
  uint64_t elapsedNs() const override { return 0; }

  /// Real threads, real races: steal-deque victim selection cannot leak
  /// anything the platform needs to keep deterministic.
  bool supportsWorkStealing() const override { return true; }

  /// Poisons every inter-thread queue: blocked senders/receivers return
  /// and throw RegionFault(Cancelled) so the region unwinds.
  void cancel() override;

private:
  unsigned NumThreads;
  FaultInjector *Faults;
  std::vector<std::unique_ptr<SpscQueue<RtValue>>> Queues; // From*N + To.
  std::mutex ResourceMapLock;
  std::map<std::string, std::unique_ptr<std::mutex>> Resources;
};

} // namespace commset

#endif // COMMSET_EXEC_THREADEDPLATFORM_H
