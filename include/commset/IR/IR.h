//===- IR.h - COMMSET compiler intermediate representation ------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler IR the COMMSET passes run over. It is a small, typed,
/// non-SSA register machine:
///
///  * Instruction results are virtual registers usable only later in the
///    same basic block; values that cross blocks (and iterations) live in
///    named mutable *locals* accessed via LoadLocal/StoreLocal. This makes
///    loop-carried scalar dependences explicit def/use facts on locals.
///  * Module-level scalar state lives in globals (LoadGlobal/StoreGlobal).
///  * Heavy computation happens in native kernels (CallNative) registered by
///    the host application; each native declaration carries a MemoryEffects
///    summary standing in for what LLVM knows about library calls.
///  * After lowering, every COMMSET member is a function (paper §4.2); a
///    function's MemberInstances record which sets it belongs to and which
///    of its parameters bind the set's predicate arguments.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_IR_IR_H
#define COMMSET_IR_IR_H

#include "commset/Support/SourceLoc.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace commset {

class BasicBlock;
class Function;
class Module;
struct NativeDecl;

/// IR value types. Str literals lower to Ptr constants into the module
/// string table.
enum class IRType : uint8_t { Void, I64, F64, Ptr };

const char *irTypeName(IRType Type);

enum class Opcode : uint8_t {
  // Binary arithmetic; the instruction Type selects I64 vs F64 semantics.
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  // Comparisons produce I64 0/1; operand type inferred from operands.
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  // Unary.
  Neg,
  Not,
  IntToFp,
  FpToInt,
  // Storage.
  LoadLocal,
  StoreLocal,
  LoadGlobal,
  StoreGlobal,
  // Calls.
  Call,
  CallNative,
  // Terminators.
  Br,
  CondBr,
  Ret,
};

const char *opcodeName(Opcode Op);
bool isTerminator(Opcode Op);
bool isCall(Opcode Op);

class Instruction;

/// An instruction operand: a register (result of an earlier instruction in
/// the same block) or an immediate constant.
struct Operand {
  enum class Kind : uint8_t {
    None,
    Instr,
    ConstInt,
    ConstFloat,
    ConstStr,
    ConstNull
  };
  Kind K = Kind::None;
  Instruction *Def = nullptr;
  int64_t IntVal = 0;
  double FloatVal = 0.0;
  unsigned StrId = 0;

  static Operand instr(Instruction *Def) {
    Operand Op;
    Op.K = Kind::Instr;
    Op.Def = Def;
    return Op;
  }
  static Operand constInt(int64_t Value) {
    Operand Op;
    Op.K = Kind::ConstInt;
    Op.IntVal = Value;
    return Op;
  }
  static Operand constFloat(double Value) {
    Operand Op;
    Op.K = Kind::ConstFloat;
    Op.FloatVal = Value;
    return Op;
  }
  static Operand constStr(unsigned StrId) {
    Operand Op;
    Op.K = Kind::ConstStr;
    Op.StrId = StrId;
    return Op;
  }
  static Operand constNull() {
    Operand Op;
    Op.K = Kind::ConstNull;
    return Op;
  }

  bool isInstr() const { return K == Kind::Instr; }
  bool isConst() const { return K != Kind::Instr && K != Kind::None; }
};

/// One IR instruction. A single concrete class discriminated by opcode; the
/// per-opcode payload fields (SlotId, Callee, Native, successors) are only
/// meaningful for the corresponding opcodes.
class Instruction {
public:
  Instruction(Opcode Op, IRType Type) : Op(Op), Type(Type) {}

  Opcode op() const { return Op; }
  IRType type() const { return Type; }

  /// Dense per-function id assigned by Function::numberInstructions(); used
  /// as the PDG node index.
  unsigned Id = ~0u;

  BasicBlock *Parent = nullptr;
  std::vector<Operand> Operands;
  SourceLoc Loc;

  /// LoadLocal/StoreLocal: local index. LoadGlobal/StoreGlobal: global index.
  unsigned SlotId = ~0u;
  /// Call: resolved callee.
  Function *Callee = nullptr;
  /// CallNative: resolved native declaration.
  NativeDecl *Native = nullptr;
  /// Br: Succ0. CondBr: Succ0 = true edge, Succ1 = false edge.
  BasicBlock *Succ0 = nullptr;
  BasicBlock *Succ1 = nullptr;

  bool isTerminator() const { return commset::isTerminator(Op); }
  bool isCall() const { return commset::isCall(Op); }

  /// \returns true if this instruction produces a register value.
  bool producesValue() const { return Type != IRType::Void; }

private:
  Opcode Op;
  IRType Type;
};

class BasicBlock {
public:
  BasicBlock(Function *Parent, std::string Name)
      : Parent(Parent), Name(std::move(Name)) {}

  Function *Parent;
  std::string Name;
  unsigned Id = ~0u;
  std::vector<std::unique_ptr<Instruction>> Instrs;

  Instruction *terminator() const {
    if (Instrs.empty() || !Instrs.back()->isTerminator())
      return nullptr;
    return Instrs.back().get();
  }

  /// Successors derived from the terminator (empty for Ret or unterminated).
  std::vector<BasicBlock *> successors() const;

  Instruction *append(std::unique_ptr<Instruction> Instr) {
    Instr->Parent = this;
    Instrs.push_back(std::move(Instr));
    return Instrs.back().get();
  }
};

struct LocalVar {
  std::string Name;
  IRType Type;
};

/// COMMSET membership of a function (paper: after extraction all members are
/// functions). ArgParams gives, for a predicated set, the parameter indices
/// of this function that bind the COMMSETPREDICATE parameters in order.
struct MemberInstance {
  std::string SetName;
  std::vector<unsigned> ArgParams;
  SourceLoc Loc;
};

class Function {
public:
  Function(std::string Name, IRType ReturnType)
      : Name(std::move(Name)), ReturnType(ReturnType) {}

  std::string Name;
  IRType ReturnType;
  /// Parameters are the first NumParams locals.
  unsigned NumParams = 0;
  std::vector<LocalVar> Locals;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  std::vector<MemberInstance> Members;
  /// True for functions synthesized by commutative-region extraction.
  bool IsRegion = false;
  SourceLoc Loc;

  BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }

  BasicBlock *makeBlock(std::string BlockName);

  unsigned addLocal(std::string LocalName, IRType Type) {
    Locals.push_back({std::move(LocalName), Type});
    return static_cast<unsigned>(Locals.size() - 1);
  }

  /// Cached instruction count from the last numberInstructions() run
  /// (frames are sized from it; executors must not renumber concurrently).
  unsigned NumInstrs = 0;

  /// Assigns dense ids to blocks and instructions; returns the instruction
  /// count. Must be re-run after structural changes before analyses.
  unsigned numberInstructions();

  /// All instructions in block order. Valid after numberInstructions().
  std::vector<Instruction *> instructions() const;

  /// Predecessor lists indexed by block id. Valid after
  /// numberInstructions().
  std::vector<std::vector<BasicBlock *>> predecessors() const;
};

/// Memory-effect summary for a native kernel: our stand-in for what LLVM
/// knows about library calls. Named classes are interned in the module
/// (e.g. "fs", "console", "rng"); the workload author declares them with
/// `#pragma commset effects(fn, ...)`.
struct MemoryEffects {
  bool Pure = false;
  /// Returns a fresh, non-aliased memory object (allocator-like).
  bool Malloc = false;
  /// May read/write memory reachable from its ptr arguments.
  bool ArgMemRead = false;
  bool ArgMemWrite = false;
  std::set<unsigned> ReadClasses;
  std::set<unsigned> WriteClasses;
  /// Set when no effects were declared: conservatively reads and writes the
  /// whole world (every class and all argument memory).
  bool World = true;

  bool readsAnything() const {
    return World || ArgMemRead || !ReadClasses.empty();
  }
  bool writesAnything() const {
    return World || ArgMemWrite || !WriteClasses.empty();
  }
};

struct NativeDecl {
  std::string Name;
  IRType ReturnType;
  std::vector<IRType> ParamTypes;
  MemoryEffects Effects;
  /// Interface commutativity on library calls (e.g. the paper's GETI
  /// SetBit/GetBit predicated on the key).
  std::vector<MemberInstance> Members;
  SourceLoc Loc;
};

struct GlobalVar {
  std::string Name;
  IRType Type;
  int64_t IntInit = 0;
  double FloatInit = 0.0;
};

class Module {
public:
  std::vector<GlobalVar> Globals;
  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<std::unique_ptr<NativeDecl>> Natives;
  std::vector<std::string> StringTable;
  /// Names of declared memory-effect classes, indexed by class id.
  std::vector<std::string> EffectClasses;

  Function *findFunction(const std::string &Name) const;
  NativeDecl *findNative(const std::string &Name) const;
  int findGlobal(const std::string &Name) const;

  unsigned internString(const std::string &Text);
  unsigned internEffectClass(const std::string &Name);

  Function *makeFunction(std::string Name, IRType ReturnType);
  NativeDecl *makeNative(std::string Name, IRType ReturnType,
                         std::vector<IRType> ParamTypes);
};

} // namespace commset

#endif // COMMSET_IR_IR_H
