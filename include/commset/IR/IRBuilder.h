//===- IRBuilder.h - Convenience IR construction -----------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builder that appends instructions to a current insertion block. Used by
/// AST lowering and by tests that construct IR directly.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_IR_IRBUILDER_H
#define COMMSET_IR_IRBUILDER_H

#include "commset/IR/IR.h"

namespace commset {

class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}

  void setInsertBlock(BasicBlock *BB) { Block = BB; }
  BasicBlock *insertBlock() const { return Block; }
  Module &module() const { return M; }

  /// \returns true if the current block already ends in a terminator (the
  /// lowering of `return` inside an if, for example).
  bool blockTerminated() const {
    return Block && Block->terminator() != nullptr;
  }

  Instruction *createBinary(Opcode Op, IRType Type, Operand LHS, Operand RHS,
                            SourceLoc Loc = {});
  Instruction *createCompare(Opcode Op, Operand LHS, Operand RHS,
                             SourceLoc Loc = {});
  Instruction *createNeg(IRType Type, Operand Value, SourceLoc Loc = {});
  Instruction *createNot(Operand Value, SourceLoc Loc = {});
  Instruction *createIntToFp(Operand Value, SourceLoc Loc = {});
  Instruction *createFpToInt(Operand Value, SourceLoc Loc = {});

  Instruction *createLoadLocal(unsigned LocalId, IRType Type,
                               SourceLoc Loc = {});
  Instruction *createStoreLocal(unsigned LocalId, Operand Value,
                                SourceLoc Loc = {});
  Instruction *createLoadGlobal(unsigned GlobalId, IRType Type,
                                SourceLoc Loc = {});
  Instruction *createStoreGlobal(unsigned GlobalId, Operand Value,
                                 SourceLoc Loc = {});

  Instruction *createCall(Function *Callee, std::vector<Operand> Args,
                          SourceLoc Loc = {});
  Instruction *createCallNative(NativeDecl *Native, std::vector<Operand> Args,
                                SourceLoc Loc = {});

  Instruction *createBr(BasicBlock *Target, SourceLoc Loc = {});
  Instruction *createCondBr(Operand Cond, BasicBlock *TrueBB,
                            BasicBlock *FalseBB, SourceLoc Loc = {});
  Instruction *createRet(Operand Value, SourceLoc Loc = {});
  Instruction *createRetVoid(SourceLoc Loc = {});

private:
  Instruction *insert(std::unique_ptr<Instruction> Instr, SourceLoc Loc);

  Module &M;
  BasicBlock *Block = nullptr;
};

} // namespace commset

#endif // COMMSET_IR_IRBUILDER_H
