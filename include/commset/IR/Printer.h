//===- Printer.h - Textual IR dump -------------------------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the IR as text for tests, debugging, and the PDG feedback loop
/// the paper describes (showing inhibiting dependences to the programmer).
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_IR_PRINTER_H
#define COMMSET_IR_PRINTER_H

#include "commset/IR/IR.h"

#include <string>

namespace commset {

/// Renders one instruction, e.g. "%5 = add i64 %3, 4".
std::string printInstruction(const Instruction &Instr);

/// Renders a function with block labels and member metadata.
std::string printFunction(const Function &F);

/// Renders the whole module.
std::string printModule(const Module &M);

} // namespace commset

#endif // COMMSET_IR_PRINTER_H
