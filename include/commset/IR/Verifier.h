//===- Verifier.h - IR well-formedness checks --------------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verifier run after lowering and after transforms: every block
/// ends in exactly one terminator, register operands are defined earlier in
/// the same block, slot/callee references are in range, and branch targets
/// belong to the same function.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_IR_VERIFIER_H
#define COMMSET_IR_VERIFIER_H

#include "commset/IR/IR.h"
#include "commset/Support/Diagnostics.h"

namespace commset {

/// Verifies \p F; reports problems to \p Diags. \returns true if clean.
bool verifyFunction(const Function &F, DiagnosticEngine &Diags);

/// Verifies every function in \p M. \returns true if clean.
bool verifyModule(const Module &M, DiagnosticEngine &Diags);

} // namespace commset

#endif // COMMSET_IR_VERIFIER_H
