//===- Verifier.h - IR well-formedness checks --------------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verifier run after lowering and after transforms: every block
/// ends in exactly one terminator, register operands are defined earlier in
/// the same block, slot/callee references are in range, and branch targets
/// belong to the same function. When the caller supplies the program's
/// declared COMMSET names, every member instance (on functions — including
/// extracted commutative regions — and on natives) must reference one of
/// them; an annotation naming a ghost set would otherwise silently drop
/// dependences with no synchronization behind it.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_IR_VERIFIER_H
#define COMMSET_IR_VERIFIER_H

#include "commset/IR/IR.h"
#include "commset/Support/Diagnostics.h"

#include <set>
#include <string>

namespace commset {

/// Verifies \p F; reports problems to \p Diags. \returns true if clean.
/// \p DeclaredSets, when non-null, is the set of COMMSET names declared by
/// the program ("SELF" is implicitly allowed); member instances naming
/// anything else are rejected.
bool verifyFunction(const Function &F, DiagnosticEngine &Diags,
                    const std::set<std::string> *DeclaredSets = nullptr);

/// Verifies every function in \p M (and, with \p DeclaredSets, the member
/// instances on native declarations). \returns true if clean.
bool verifyModule(const Module &M, DiagnosticEngine &Diags,
                  const std::set<std::string> *DeclaredSets = nullptr);

/// Deep typed verification of one function against \p M: all structural
/// checks of verifyFunction plus operand/result type consistency —
/// arithmetic operand types match the instruction type, comparison operands
/// agree, conversions have the right source/destination types, local and
/// global accesses match the slot's declared type (global slot ids are
/// range-checked against \p M, which the structural verifier cannot do),
/// call arguments and results match the callee/native signature, branch
/// conditions are I64 and returned values match the return type.
///
/// This is the gate run before JIT compilation and on every generated
/// program under commcheck: the interpreter reads the register file
/// type-obliviously, so a type mismatch silently reinterprets bits there
/// but produces different (or crashing) native code once compiled.
///
/// \returns true if clean; on failure, when \p Err is non-null, it receives
/// the first problem as a one-line message.
bool verifyFunctionIR(const Function &F, const Module &M, std::string *Err);

/// verifyFunctionIR over every function in \p M.
bool verifyModuleIR(const Module &M, std::string *Err);

} // namespace commset

#endif // COMMSET_IR_VERIFIER_H
