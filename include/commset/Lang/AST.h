//===- AST.h - CSet-C abstract syntax tree -----------------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for CSet-C, the annotated C subset the COMMSET frontend consumes.
/// The tree is deliberately simple: scalar types (int/double), opaque
/// pointers produced by native kernels, expressions, structured statements,
/// and COMMSET attributes attached to blocks, functions, and call statements.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_LANG_AST_H
#define COMMSET_LANG_AST_H

#include "commset/Lang/CommSetAttrs.h"
#include "commset/Support/SourceLoc.h"

#include <memory>
#include <string>
#include <vector>

namespace commset {

/// Scalar value categories of CSet-C. `Ptr` is an opaque handle produced and
/// consumed by native kernels (file handles, matrices, bitmaps...). `Str`
/// only occurs as the type of string literals passed to calls.
enum class TypeKind { Void, Int, Double, Ptr, Str };

const char *typeKindName(TypeKind Kind);

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind {
  IntLit,
  FloatLit,
  StrLit,
  VarRef,
  Unary,
  Binary,
  Call,
};

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  LAnd,
  LOr,
};

enum class UnaryOp { Neg, LNot };

const char *binaryOpName(BinaryOp Op);

class Expr {
public:
  virtual ~Expr();

  ExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

  /// Filled in by Sema during type checking.
  TypeKind Type = TypeKind::Void;

protected:
  Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  ExprKind Kind;
  SourceLoc Loc;
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLitExpr : public Expr {
public:
  IntLitExpr(long long Value, SourceLoc Loc)
      : Expr(ExprKind::IntLit, Loc), Value(Value) {}
  long long Value;

  static bool classof(const Expr *E) { return E->kind() == ExprKind::IntLit; }
};

class FloatLitExpr : public Expr {
public:
  FloatLitExpr(double Value, SourceLoc Loc)
      : Expr(ExprKind::FloatLit, Loc), Value(Value) {}
  double Value;

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::FloatLit;
  }
};

class StrLitExpr : public Expr {
public:
  StrLitExpr(std::string Value, SourceLoc Loc)
      : Expr(ExprKind::StrLit, Loc), Value(std::move(Value)) {}
  std::string Value;

  static bool classof(const Expr *E) { return E->kind() == ExprKind::StrLit; }
};

class VarRefExpr : public Expr {
public:
  VarRefExpr(std::string Name, SourceLoc Loc)
      : Expr(ExprKind::VarRef, Loc), Name(std::move(Name)) {}
  std::string Name;
  /// Set by Sema: true when the reference resolves to a module global.
  bool IsGlobal = false;

  static bool classof(const Expr *E) { return E->kind() == ExprKind::VarRef; }
};

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Sub, SourceLoc Loc)
      : Expr(ExprKind::Unary, Loc), Op(Op), Sub(std::move(Sub)) {}
  UnaryOp Op;
  ExprPtr Sub;

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Unary; }
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr LHS, ExprPtr RHS, SourceLoc Loc)
      : Expr(ExprKind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}
  BinaryOp Op;
  ExprPtr LHS;
  ExprPtr RHS;

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }
};

class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Expr(ExprKind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  std::string Callee;
  std::vector<ExprPtr> Args;
  /// Set by Sema: true when the callee is a native (extern) kernel.
  bool IsNative = false;

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Call; }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind {
  Block,
  Decl,
  Assign,
  ExprStmt,
  If,
  While,
  For,
  Return,
  Break,
  Continue,
};

class Stmt {
public:
  virtual ~Stmt();

  StmtKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

protected:
  Stmt(StmtKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  StmtKind Kind;
  SourceLoc Loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

/// Compound statement. Carries the COMMSET block attributes: instance
/// membership (making this block a commutative region, paper §3.1
/// "Commutative Blocks") and/or a COMMSETNAMEDBLOCK name exported by the
/// enclosing function.
class BlockStmt : public Stmt {
public:
  BlockStmt(std::vector<StmtPtr> Body, SourceLoc Loc)
      : Stmt(StmtKind::Block, Loc), Body(std::move(Body)) {}
  std::vector<StmtPtr> Body;

  /// COMMSET instance declaration attached to this block.
  std::vector<MemberSpec> Members;
  /// Non-empty when this is a COMMSETNAMEDBLOCK.
  std::string NamedBlock;

  bool isCommutative() const { return !Members.empty(); }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Block; }
};

class DeclStmt : public Stmt {
public:
  DeclStmt(TypeKind Type, std::string Name, ExprPtr Init, SourceLoc Loc)
      : Stmt(StmtKind::Decl, Loc), Type(Type), Name(std::move(Name)),
        Init(std::move(Init)) {}
  TypeKind Type;
  std::string Name;
  ExprPtr Init; // May be null.

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Decl; }
};

class AssignStmt : public Stmt {
public:
  AssignStmt(std::string Name, ExprPtr Value, SourceLoc Loc)
      : Stmt(StmtKind::Assign, Loc), Name(std::move(Name)),
        Value(std::move(Value)) {}
  std::string Name;
  ExprPtr Value;
  /// Set by Sema: the assigned variable resolves to a module global.
  bool IsGlobal = false;

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Assign; }
};

/// Expression statement (almost always a call). Carries COMMSETNAMEDARGADD
/// enables for the callee's optional named blocks.
class ExprStmt : public Stmt {
public:
  ExprStmt(ExprPtr E, SourceLoc Loc)
      : Stmt(StmtKind::ExprStmt, Loc), E(std::move(E)) {}
  ExprPtr E;
  std::vector<EnableSpec> Enables;

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::ExprStmt;
  }
};

class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, SourceLoc Loc)
      : Stmt(StmtKind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; // May be null.

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }
};

class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body, SourceLoc Loc)
      : Stmt(StmtKind::While, Loc), Cond(std::move(Cond)),
        Body(std::move(Body)) {}
  ExprPtr Cond;
  StmtPtr Body;

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::While; }
};

class ForStmt : public Stmt {
public:
  ForStmt(StmtPtr Init, ExprPtr Cond, StmtPtr Step, StmtPtr Body,
          SourceLoc Loc)
      : Stmt(StmtKind::For, Loc), Init(std::move(Init)), Cond(std::move(Cond)),
        Step(std::move(Step)), Body(std::move(Body)) {}
  StmtPtr Init; // Decl or Assign; may be null.
  ExprPtr Cond; // May be null (infinite loop).
  StmtPtr Step; // Assign; may be null.
  StmtPtr Body;

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::For; }
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(ExprPtr Value, SourceLoc Loc)
      : Stmt(StmtKind::Return, Loc), Value(std::move(Value)) {}
  ExprPtr Value; // May be null.

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Return; }
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(StmtKind::Break, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Break; }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(StmtKind::Continue, Loc) {}
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Continue;
  }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct ParamDecl {
  TypeKind Type;
  std::string Name;
  SourceLoc Loc;
};

/// A function definition or extern (native kernel) declaration.
struct FunctionDecl {
  TypeKind ReturnType = TypeKind::Void;
  std::string Name;
  std::vector<ParamDecl> Params;
  std::unique_ptr<BlockStmt> Body; // Null for extern declarations.
  bool IsExtern = false;
  SourceLoc Loc;

  /// COMMSET instance declaration at the interface (paper: "Interface
  /// Commutativity"); predicate arguments name parameters.
  std::vector<MemberSpec> Members;
  /// COMMSETNAMEDARG exports: names of optional blocks in the body that
  /// clients may enable at call sites.
  std::vector<std::string> NamedArgs;
};

struct GlobalVarDecl {
  TypeKind Type;
  std::string Name;
  ExprPtr Init; // Constant expression; may be null (zero-initialized).
  SourceLoc Loc;
};

/// COMMSETDECL: declares a named set at global scope with an explicit kind.
struct SetDecl {
  std::string Name;
  CommSetKind Kind = CommSetKind::Group;
  SourceLoc Loc;
};

/// COMMSETPREDICATE: a pure C expression over two parameter lists deciding
/// whether two members commute (paper §3.2).
struct PredicateDecl {
  std::string SetName;
  std::vector<ParamDecl> Params1;
  std::vector<ParamDecl> Params2;
  ExprPtr Predicate;
  SourceLoc Loc;
};

/// COMMSETNOSYNC: members of the set are already thread safe; the compiler
/// must not insert synchronization.
struct NoSyncDecl {
  std::string SetName;
  SourceLoc Loc;
};

/// Memory-effect declaration for a native kernel. This is the repo's
/// stand-in for the knowledge LLVM has about library calls: without it a
/// native call conservatively reads and writes the world. Items:
/// pure / malloc / argmem / reads(class...) / writes(class...).
struct EffectDecl {
  std::string FunctionName;
  bool Pure = false;
  bool Malloc = false;
  bool ArgMem = false;
  std::vector<std::string> Reads;
  std::vector<std::string> Writes;
  SourceLoc Loc;
};

/// `#pragma commset sync(SET, mutex|spin|tm)`: requests a synchronization
/// flavor for a set's members. Sema rejects a request on a NOSYNC set
/// (CL012): the two pragmas make contradictory thread-safety claims.
struct SyncReqDecl {
  std::string SetName;
  std::string Mode;
  SourceLoc Loc;
};

/// A parsed CSet-C translation unit.
struct Program {
  std::vector<GlobalVarDecl> Globals;
  std::vector<std::unique_ptr<FunctionDecl>> Functions;
  std::vector<SetDecl> SetDecls;
  std::vector<PredicateDecl> Predicates;
  std::vector<NoSyncDecl> NoSyncs;
  std::vector<EffectDecl> Effects;
  std::vector<SyncReqDecl> SyncReqs;
  /// CL0xx codes silenced via `#pragma commset lint_suppress(CLxxx)`.
  std::vector<std::string> LintSuppressions;

  FunctionDecl *findFunction(const std::string &Name) const;
};

} // namespace commset

#endif // COMMSET_LANG_AST_H
