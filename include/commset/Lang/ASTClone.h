//===- ASTClone.h - Deep cloning of CSet-C ASTs ------------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-clone utilities for expressions and statements, used by the
/// named-block specializer (call-path cloning, paper §4.2) and by the
/// COMMSET registry to take ownership of predicate expressions.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_LANG_ASTCLONE_H
#define COMMSET_LANG_ASTCLONE_H

#include "commset/Lang/AST.h"

namespace commset {

ExprPtr cloneExpr(const Expr *E);
StmtPtr cloneStmt(const Stmt *S);

/// Clones a full function declaration (body, attributes, params).
std::unique_ptr<FunctionDecl> cloneFunction(const FunctionDecl &F);

} // namespace commset

#endif // COMMSET_LANG_ASTCLONE_H
