//===- CommSetAttrs.h - Parsed COMMSET directive payloads -------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain-data representations of the COMMSET directives (paper §3.2,
/// Figure 4) as attached to AST nodes by the parser:
///
///   COMMSETDECL          -> SetDecl
///   COMMSETPREDICATE     -> PredicateDecl (expression kept as AST)
///   COMMSETNOSYNC        -> NoSyncDecl
///   COMMSET (instance)   -> MemberSpec list on a function or block
///   COMMSETNAMEDBLOCK    -> NamedBlock string on a block
///   COMMSETNAMEDARG      -> exported names on a function interface
///   COMMSETNAMEDARGADD   -> EnableSpec list on a call statement
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_LANG_COMMSETATTRS_H
#define COMMSET_LANG_COMMSETATTRS_H

#include "commset/Support/SourceLoc.h"

#include <string>
#include <vector>

namespace commset {

/// Name of the implicit Self COMMSET keyword.
inline constexpr const char *SelfSetKeyword = "SELF";

/// Kind of a declared COMMSET (paper §3.1). In a Group set distinct members
/// commute pairwise but a member does not commute with itself; in a Self set
/// every member commutes with dynamic instances of itself.
enum class CommSetKind { Group, Self };

/// One membership entry in a COMMSET instance declaration:
/// `SETNAME` or `SETNAME(arg0, arg1, ...)` where the arguments name variables
/// (function parameters at interfaces, live client variables at blocks) bound
/// to the set's COMMSETPREDICATE parameters.
struct MemberSpec {
  std::string SetName;
  std::vector<std::string> Args;
  SourceLoc Loc;
};

/// COMMSETNAMEDARGADD at a call site: enable the callee's named optional
/// block \p BlockName and add it to each listed set.
struct EnableSpec {
  std::string BlockName;
  std::vector<MemberSpec> Sets;
  SourceLoc Loc;
};

} // namespace commset

#endif // COMMSET_LANG_COMMSETATTRS_H
