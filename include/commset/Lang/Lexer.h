//===- Lexer.h - CSet-C lexer ------------------------------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for CSet-C. `#pragma commset` lines are bracketed by
/// PragmaCommset/PragmaEnd tokens so the parser can treat directive bodies
/// with the ordinary expression machinery (the COMMSETPREDICATE argument is a
/// full C expression).
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_LANG_LEXER_H
#define COMMSET_LANG_LEXER_H

#include "commset/Lang/Token.h"
#include "commset/Support/Diagnostics.h"

#include <string>
#include <vector>

namespace commset {

class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Lexes the entire buffer. The result always ends with an Eof token.
  std::vector<Token> lexAll();

private:
  Token next();
  Token makeToken(TokKind Kind, SourceLoc Loc, std::string Text = {});
  Token lexNumber(SourceLoc Loc);
  Token lexIdentifier(SourceLoc Loc);
  Token lexString(SourceLoc Loc);
  /// Consumes "#pragma commset" after the '#'; reports an error for any other
  /// preprocessor directive.
  Token lexPragma(SourceLoc Loc);

  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  bool atEnd() const { return Pos >= Source.size(); }
  void skipTrivia();
  SourceLoc loc() const { return SourceLoc(Line, Col); }

  std::string Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
  /// True while lexing the body of a #pragma line; a newline then produces
  /// PragmaEnd instead of being skipped as trivia.
  bool InPragma = false;
};

} // namespace commset

#endif // COMMSET_LANG_LEXER_H
