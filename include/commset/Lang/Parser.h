//===- Parser.h - CSet-C recursive descent parser ----------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for CSet-C plus the COMMSET pragma directives
/// (paper §3.2, Figure 4). Pragma payloads parse with the normal expression
/// machinery, so COMMSETPREDICATE expressions are full C expressions.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_LANG_PARSER_H
#define COMMSET_LANG_PARSER_H

#include "commset/Lang/AST.h"
#include "commset/Lang/Lexer.h"
#include "commset/Support/Diagnostics.h"

#include <memory>
#include <optional>

namespace commset {

class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags);

  /// Parses a full translation unit. Returns a program even on error (for
  /// best-effort diagnostics); callers must check Diags.hasErrors().
  std::unique_ptr<Program> parseProgram();

  /// Parses source text end-to-end (lex + parse). Convenience for tests and
  /// tools.
  static std::unique_ptr<Program> parse(const std::string &Source,
                                        DiagnosticEngine &Diags);

private:
  // Pragma attributes seen but not yet attached to a declaration/statement.
  struct PendingAttrs {
    std::vector<MemberSpec> Members;
    std::vector<std::string> NamedArgs;
    std::string NamedBlock;
    std::vector<EnableSpec> Enables;
    SourceLoc Loc;

    bool anyDeclAttrs() const {
      return !Members.empty() || !NamedArgs.empty() || !NamedBlock.empty() ||
             !Enables.empty();
    }
    void clear() {
      Members.clear();
      NamedArgs.clear();
      NamedBlock.clear();
      Enables.clear();
    }
  };

  // Token stream helpers.
  const Token &peek(unsigned Ahead = 0) const;
  const Token &current() const { return peek(); }
  Token consume();
  bool check(TokKind Kind) const { return current().is(Kind); }
  bool accept(TokKind Kind);
  bool expect(TokKind Kind, const char *Context);
  void synchronizeTopLevel();
  void synchronizeStmt();

  // Top-level parsing.
  void parseTopLevel(Program &P);
  void parsePragma(Program &P);
  void parseFunctionOrGlobal(Program &P, bool IsExtern);
  std::vector<ParamDecl> parseParamList();
  std::optional<TypeKind> parseType();

  // Pragma payloads.
  void parseSetDecl(Program &P);
  void parsePredicateDecl(Program &P);
  void parseNoSyncDecl(Program &P);
  void parseSyncDecl(Program &P);
  void parseLintSuppress(Program &P);
  void parseEffectsDecl(Program &P);
  void parseMemberPragma();
  void parseNamedArgPragma();
  void parseNamedBlockPragma();
  void parseEnablePragma();
  MemberSpec parseMemberSpec();
  bool finishPragmaLine();

  // Statements.
  StmtPtr parseStmt();
  StmtPtr parseBlock();
  StmtPtr parseDeclStmt(TypeKind Type);
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseFor();
  StmtPtr parseReturn();
  /// Parses `x = e`, `x += e`, `x -= e`, `x++`, `x--` without the trailing
  /// semicolon (shared by statements and for-steps); null if not an
  /// assignment.
  StmtPtr parseSimpleAssign();
  StmtPtr parseExprOrAssignStmt();

  // Expressions (precedence climbing).
  ExprPtr parseExpr();
  ExprPtr parseBinaryRHS(int MinPrec, ExprPtr LHS);
  ExprPtr parseUnary();
  ExprPtr parsePrimary();

  std::vector<Token> Tokens;
  size_t Index = 0;
  DiagnosticEngine &Diags;
  PendingAttrs Pending;
};

} // namespace commset

#endif // COMMSET_LANG_PARSER_H
