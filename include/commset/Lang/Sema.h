//===- Sema.h - CSet-C semantic analysis -------------------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for CSet-C + COMMSET (paper §4.1 "Frontend"):
///
///  * name resolution and type checking for the C subset;
///  * COMMSET set-reference and predicate checking: declared sets, matching
///    parameter lists, argument binding/type agreement, predicate purity;
///  * well-definedness of commutative blocks (paper §3.1): no non-local
///    control flow escapes a commutative block (return, or break/continue
///    whose parent loop is outside the block);
///  * named-block exports: COMMSETNAMEDBLOCK names must be exported through
///    COMMSETNAMEDARG, and COMMSETNAMEDARGADD enables must reference them.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_LANG_SEMA_H
#define COMMSET_LANG_SEMA_H

#include "commset/Lang/AST.h"
#include "commset/Support/Diagnostics.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace commset {

class Sema {
public:
  Sema(Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  /// Runs all checks. \returns true when no errors were reported.
  bool run();

private:
  struct VarInfo {
    TypeKind Type;
    bool IsGlobal;
  };

  // Declaration collection.
  void collectGlobals();
  void checkSetDecls();
  void checkPredicates();
  void checkNoSyncs();
  void checkSetOverlap();

  // Function checking.
  void checkFunction(FunctionDecl &F);
  void checkStmt(Stmt *S);
  void checkBlock(BlockStmt *B);
  TypeKind checkExpr(Expr *E);
  TypeKind checkCall(CallExpr *Call);

  // COMMSET specifics.
  void checkMemberSpecs(std::vector<MemberSpec> &Members, bool AtInterface,
                        const FunctionDecl *F);
  void checkEnables(ExprStmt *S);
  /// Purity inspection of a COMMSETPREDICATE expression (paper §4.2 "tested
  /// for purity by inspection of its body"): no calls, no global reads.
  void checkPredicatePurity(const Expr *E, SourceLoc Loc);

  // Scope management.
  void pushScope();
  void popScope();
  bool declare(const std::string &Name, TypeKind Type, SourceLoc Loc);
  const VarInfo *lookup(const std::string &Name) const;

  /// Reports an error unless \p From converts implicitly to \p To.
  void requireConvertible(TypeKind From, TypeKind To, SourceLoc Loc,
                          const char *Context);

  Program &P;
  DiagnosticEngine &Diags;

  std::map<std::string, VarInfo> GlobalVars;
  std::vector<std::map<std::string, VarInfo>> Scopes;
  std::map<std::string, const SetDecl *> Sets;
  std::map<std::string, const PredicateDecl *> SetPredicates;

  FunctionDecl *CurrentFunction = nullptr;
  /// Named blocks found while checking the current function body, matched
  /// against the function's COMMSETNAMEDARG exports.
  std::set<std::string> FoundNamedBlocks;
  /// Loop nesting depth inside the innermost commutative/named block (or
  /// function if none). break/continue need depth > 0; return needs no
  /// enclosing commutative block.
  int LoopDepth = 0;
  int CommBlockDepth = 0;
};

} // namespace commset

#endif // COMMSET_LANG_SEMA_H
