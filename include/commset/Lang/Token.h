//===- Token.h - CSet-C token definitions ------------------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds produced by the CSet-C lexer. CSet-C is the C subset used to
/// write the paper's annotated sequential programs; COMMSET directives appear
/// as `#pragma commset ...` lines and lex into ordinary tokens bracketed by
/// PragmaCommset / PragmaEnd.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_LANG_TOKEN_H
#define COMMSET_LANG_TOKEN_H

#include "commset/Support/SourceLoc.h"

#include <string>

namespace commset {

enum class TokKind {
  Eof,
  Identifier,
  IntLiteral,
  FloatLiteral,
  StringLiteral,

  // Keywords.
  KwInt,
  KwDouble,
  KwVoid,
  KwReturn,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwBreak,
  KwContinue,
  KwExtern,

  // Pragma brackets. PragmaCommset covers the "#pragma commset" prefix; the
  // directive body lexes as normal tokens until PragmaEnd (end of line).
  PragmaCommset,
  PragmaEnd,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  Comma,
  Semi,
  Colon,
  Assign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  AmpAmp,
  PipePipe,
  Not,
  PlusPlus,
  MinusMinus,
  PlusAssign,
  MinusAssign,
};

/// Human readable name of a token kind for diagnostics.
const char *tokKindName(TokKind Kind);

/// One lexed token. Text holds the identifier spelling or literal body.
struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  std::string Text;
  long long IntValue = 0;
  double FloatValue = 0.0;

  bool is(TokKind K) const { return Kind == K; }
};

} // namespace commset

#endif // COMMSET_LANG_TOKEN_H
