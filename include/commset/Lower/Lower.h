//===- Lower.h - AST to IR lowering ------------------------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a Sema-checked (and specialized) CSet-C program to the IR.
///
/// Commutative compound statements are extracted into synthesized region
/// functions here (the paper's Metadata Manager does this on the CFG; doing
/// it during lowering yields the same post-condition: every COMMSET member
/// is a function whose parameters carry the predicate arguments). A region
/// may have at most one live-out scalar, which becomes its return value.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_LOWER_LOWER_H
#define COMMSET_LOWER_LOWER_H

#include "commset/IR/IR.h"
#include "commset/Lang/AST.h"
#include "commset/Support/Diagnostics.h"

#include <memory>

namespace commset {

/// Lowers \p P to a fresh module. Requires Sema to have run successfully
/// (expression types filled in) and specializeNamedBlocks() to have
/// rewritten enabled calls. Returns null after reporting errors.
std::unique_ptr<Module> lowerProgram(const Program &P,
                                     DiagnosticEngine &Diags);

/// Maps a frontend scalar type to its IR type.
IRType irTypeOf(TypeKind Kind);

} // namespace commset

#endif // COMMSET_LOWER_LOWER_H
