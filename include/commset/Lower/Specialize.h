//===- Specialize.h - Named-block enable specialization ---------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements COMMSETNAMEDARGADD (paper §4.2): like the paper's prototype,
/// a call site that enables an optionally-commuting named block is
/// *inlined*, cloning the call path from the enabling call to the
/// COMMSETNAMEDBLOCK declaration. The named block becomes a commutative
/// block directly in the client, bound to the client's predicate
/// arguments, so the client loop's PDG sees the callee's operations (and
/// the now-commutative block) directly. Callee locals are renamed with a
/// unique $inlN suffix; functions exporting named blocks must not contain
/// return statements (checked here).
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_LOWER_SPECIALIZE_H
#define COMMSET_LOWER_SPECIALIZE_H

#include "commset/Lang/AST.h"
#include "commset/Support/Diagnostics.h"

namespace commset {

/// Rewrites every enabled call in \p P, appending specialized function
/// clones. Must run after Sema and before lowering. \returns false if any
/// error was reported.
bool specializeNamedBlocks(Program &P, DiagnosticEngine &Diags);

} // namespace commset

#endif // COMMSET_LOWER_SPECIALIZE_H
