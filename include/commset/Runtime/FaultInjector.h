//===- FaultInjector.h - Seeded fault injection and resilience --*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Failure as a first-class, injectable, recoverable event. The resilient
/// execution engine treats every platform-level failure — a stalled worker,
/// an STM abort storm, a lock that never arrives, a queue whose consumer
/// went quiet — as a FaultKind that either resolves through bounded retry
/// or escalates to a RegionFault, at which point the engine discards the
/// region's partial parallel state and re-executes it sequentially. The
/// FaultInjector makes those failures reproducible: decisions are a pure
/// function of (seed, fault kind, thread, per-site call index), so a fault
/// campaign replays exactly like a CommCheck schedule does.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_RUNTIME_FAULTINJECTOR_H
#define COMMSET_RUNTIME_FAULTINJECTOR_H

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace commset {

/// Fault taxonomy. The first group (WorkerDelay..CompileFail) is
/// injectable by the FaultInjector; the second group (StmExhausted..
/// Internal) names escalation reasons carried by RegionFault.
enum class FaultKind : unsigned {
  None = 0,
  WorkerDelay,  ///< Short injected delay at an iteration boundary.
  WorkerStall,  ///< Long injected stall (watchdog fodder).
  StmAbort,     ///< Forced transaction abort at commit time.
  LockDelay,    ///< Injected delay before a ranked-lock acquisition.
  QueueStall,   ///< Slow-consumer stall before an SPSC pop.
  TaskFailure,  ///< Spurious worker task failure.
  SlowClient,   ///< commsetd: stall while servicing a connection (a client
                ///< that trickles its request bytes / drains its reply
                ///< slowly). Fired on the serving path, never in regions.
  ClientDisconnect, ///< commsetd: the connection drops mid-request.
  CompileFail,  ///< commsetd: a job's compile is forced to fail (the reply
                ///< path must report COMPILE_ERROR without caching it).
  StmExhausted, ///< Bounded STM retries ran out.
  LockTimeout,  ///< Ranked-lock acquisition timed out.
  WatchdogStall,///< Watchdog declared the region stalled.
  DeadlineExceeded, ///< The region outlived its wall-clock deadline budget.
  Cancelled,    ///< Worker unwound because the region was cancelled.
  Internal,     ///< Unexpected error escaped a worker.
};

/// Number of FaultKind values the injector can fire (WorkerDelay..
/// CompileFail).
constexpr unsigned NumInjectableFaultKinds = 9;

const char *faultKindName(FaultKind Kind);

/// Per-mille firing rates and delay magnitudes for each injectable fault.
/// Deterministic per Seed.
struct FaultPolicy {
  uint64_t Seed = 0;
  std::string Name = "none";

  unsigned WorkerDelayPerMille = 0;
  uint64_t WorkerDelayUs = 200;
  unsigned WorkerStallPerMille = 0;
  uint64_t WorkerStallUs = 20000;
  unsigned StmAbortPerMille = 0;
  unsigned LockDelayPerMille = 0;
  uint64_t LockDelayUs = 500;
  unsigned QueueStallPerMille = 0;
  uint64_t QueueStallUs = 200;
  unsigned TaskFailurePerMille = 0;
  // Serving-path kinds (commsetd); inert for in-region execution.
  unsigned SlowClientPerMille = 0;
  uint64_t SlowClientUs = 2000;
  unsigned ClientDisconnectPerMille = 0;
  unsigned CompileFailPerMille = 0;

  /// One-line description naming the policy and its nonzero rates.
  std::string describe() const;

  /// Canned sweep policies (abort-storm, stall, task-failure, mixed),
  /// cycled by \p Index and seeded deterministically.
  static FaultPolicy preset(unsigned Index, uint64_t Seed);

  /// Canned serving-path sweep policies for commsetd --faults
  /// (slow-client, disconnect, compile-fail, server-mixed — the mixed one
  /// also fires in-region worker faults so degradation shows up under
  /// load). Cycled by \p Index and seeded deterministically like preset().
  static FaultPolicy servePreset(unsigned Index, uint64_t Seed);
};

/// SplitMix64 finalizer used for all deterministic fault/jitter decisions.
uint64_t faultMix(uint64_t X);

/// Monotonic now in nanoseconds (std::chrono::steady_clock), the unit of
/// ResilienceConfig::DeadlineAtMonoNs and the serve-path deadline budgets.
uint64_t steadyNowNs();

/// Seeded, policy-driven fault shim. Thread safe; decisions for a given
/// (kind, thread) stream depend only on the policy seed and the call
/// index within that stream, so they replay identically regardless of how
/// other threads interleave.
class FaultInjector {
public:
  explicit FaultInjector(const FaultPolicy &Policy) : P(Policy) {}

  /// True when the next event in the (Kind, Thread) stream is a fault.
  bool fires(FaultKind Kind, unsigned Thread);

  /// fires() plus the policy's sleep for delay-style kinds. \returns true
  /// when a delay was injected.
  bool maybeDelay(FaultKind Kind, unsigned Thread);

  uint64_t injected(FaultKind Kind) const;
  uint64_t totalInjected() const;
  const FaultPolicy &policy() const { return P; }

private:
  static constexpr unsigned MaxThreads = 64;
  unsigned rateOf(FaultKind Kind) const;
  uint64_t delayUsOf(FaultKind Kind) const;

  FaultPolicy P;
  std::atomic<uint64_t> Calls[NumInjectableFaultKinds][MaxThreads] = {};
  std::atomic<uint64_t> Injected[NumInjectableFaultKinds] = {};
};

/// Thrown when a parallel region cannot continue: an exhausted STM member,
/// a timed-out lock, a watchdog trip, or an injected task failure. The
/// resilient engine catches it at the region boundary, discards partial
/// state, and re-executes sequentially.
class RegionFault : public std::runtime_error {
public:
  RegionFault(FaultKind Kind, unsigned Thread, const std::string &Detail);

  FaultKind Kind;
  unsigned Thread;
  std::string Detail;
};

/// Knobs for the resilient execution engine. All defaults are generous
/// enough that fault-free production runs never hit them; fault sweeps and
/// tests tighten them.
struct ResilienceConfig {
  /// When false, parallel regions run exactly like the pre-resilience
  /// engine: plain fork/join, no watchdog, no cancellation checkpoints.
  /// Exists for the bench guard that pins fallback overhead at zero.
  bool Supervise = true;

  /// Bounded STM retry: attempts per member invocation before the region
  /// fails with StmExhausted, and the exponential-backoff envelope
  /// (jittered, deterministic) between attempts.
  unsigned StmMaxAttempts = 64;
  uint64_t StmBackoffBaseUs = 1;
  uint64_t StmBackoffCapUs = 128;

  /// Ranked-lock acquisition timeout; 0 blocks forever (legacy).
  uint64_t LockTimeoutMs = 10000;

  /// Watchdog: when no worker makes progress (heartbeat or completion)
  /// for this long, the region is declared stalled and cancelled.
  uint64_t WatchdogStallMs = 30000;

  /// Extra time after cancellation for workers to unwind and join before
  /// they are abandoned (reported, not hung on).
  uint64_t JoinGraceMs = 5000;

  /// Wall-clock deadline budget for the region, as an absolute
  /// steady-clock instant (steadyNowNs() units); 0 = no deadline. Workers
  /// observe it at their iteration checkpoints: the first one past the
  /// instant raises RegionFault(DeadlineExceeded), which cancels the
  /// region through the same path as a watchdog trip. Unlike every other
  /// fault, runFunctionResilient does NOT re-execute sequentially after a
  /// deadline fault — the budget is already spent, so it discards the
  /// partial state and reports DeadlineExceeded instead.
  uint64_t DeadlineAtMonoNs = 0;

  /// Optional fault injection shim; null in production.
  FaultInjector *Faults = nullptr;
};

/// Process-wide default configuration (supervision on, no injection).
const ResilienceConfig &defaultResilience();

} // namespace commset

#endif // COMMSET_RUNTIME_FAULTINJECTOR_H
