//===- Locks.h - Spin lock and ranked COMMSET lock manager ------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synchronization primitives for COMMSET member atomicity (paper §4.6).
/// Each COMMSET gets one lock; members of multiple sets acquire their locks
/// in ascending global rank order and release in reverse, which together
/// with the acyclic queue topology guarantees deadlock freedom.
///
/// Resilience: acquireOrTimeout bounds every acquisition. A lock that does
/// not arrive within the deadline throws RegionFault(LockTimeout) carrying
/// a deadlock-suspicion diagnostic that walks the holder/waiter graph and
/// names the suspected rank cycle, instead of blocking the engine forever.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_RUNTIME_LOCKS_H
#define COMMSET_RUNTIME_LOCKS_H

#include "commset/Runtime/FaultInjector.h"
#include "commset/Trace/Trace.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

namespace commset {

/// Test-and-test-and-set spin lock. The paper's evaluation finds spin
/// locks beating mutexes under high contention (456.hmmer, url) because
/// they avoid sleep/wakeup overhead.
class SpinLock {
public:
  void lock() {
    while (true) {
      if (!Flag.exchange(true, std::memory_order_acquire))
        return;
      unsigned Spins = 0;
      while (Flag.load(std::memory_order_relaxed)) {
        if (++Spins >= 1024) {
          std::this_thread::yield();
          Spins = 0;
        }
      }
    }
  }

  bool try_lock() { return !Flag.exchange(true, std::memory_order_acquire); }

  /// Bounded acquisition; \returns false when the lock did not arrive
  /// within \p TimeoutMs.
  bool try_lock_for_ms(uint64_t TimeoutMs) {
    auto Deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(TimeoutMs);
    unsigned Spins = 0;
    while (!try_lock()) {
      if (std::chrono::steady_clock::now() >= Deadline)
        return false;
      if (++Spins >= 512) {
        std::this_thread::yield();
        Spins = 0;
      }
    }
    return true;
  }

  void unlock() { Flag.store(false, std::memory_order_release); }

private:
  std::atomic<bool> Flag{false};
};

/// Lock flavor used for a COMMSET (paper §4.6 synchronization modes; TM is
/// provided by Runtime/Stm.h, and Lib means no compiler-inserted locking).
enum class LockMode { Mutex, Spin, None };

/// One lock per COMMSET, acquired in ascending rank order.
class CommSetLockManager {
public:
  explicit CommSetLockManager(unsigned NumSets, LockMode Mode)
      : Mode(Mode), Mutexes(NumSets), Spins(NumSets), Holder(NumSets) {
    for (auto &H : Holder)
      H.store(NoThread, std::memory_order_relaxed);
    for (auto &W : Waiting)
      W.store(NoRank, std::memory_order_relaxed);
  }

  /// Acquires the locks for the given set ranks. \p Ranks must be sorted
  /// ascending (the synchronization engine emits them that way). Blocks
  /// without bound; the resilient engine uses acquireOrTimeout instead.
  /// Tracks holders/waiters the same way the timeout path does, so
  /// release() attributes LockRelease to the real owner and
  /// timeoutDiagnostic never reports <none> for a lock taken here.
  void acquire(const std::vector<unsigned> &Ranks, unsigned ThreadId = 0) {
    assert(std::is_sorted(Ranks.begin(), Ranks.end()) &&
           "lock ranks must be acquired in ascending order");
    for (unsigned Rank : Ranks) {
      setWaiting(ThreadId, static_cast<int>(Rank));
      lockOne(Rank);
      setWaiting(ThreadId, NoRank);
      Holder[Rank].store(static_cast<int>(ThreadId),
                         std::memory_order_relaxed);
    }
  }

  /// Timeout-bounded acquisition with holder/waiter tracking and optional
  /// fault injection. \p TimeoutMs == 0 blocks forever (legacy behavior).
  /// On timeout, releases any ranks already taken by this call and throws
  /// RegionFault(LockTimeout) whose Detail names the suspected rank cycle.
  void acquireOrTimeout(const std::vector<unsigned> &Ranks, unsigned ThreadId,
                        uint64_t TimeoutMs, FaultInjector *Faults = nullptr) {
    assert(std::is_sorted(Ranks.begin(), Ranks.end()) &&
           "lock ranks must be acquired in ascending order");
    size_t Taken = 0;
    for (unsigned Rank : Ranks) {
      if (Faults)
        Faults->maybeDelay(FaultKind::LockDelay, ThreadId);
      setWaiting(ThreadId, static_cast<int>(Rank));
      bool Ok;
      if (!trace::enabled()) {
        Ok = TimeoutMs == 0 ? (lockOne(Rank), true)
                            : lockOneFor(Rank, TimeoutMs);
      } else {
        // Traced flavor: a failed try_lock marks the acquisition contended
        // and times the wait. The untraced path above stays byte-identical.
        uint64_t T0 = trace::session().nowNs();
        bool Immediate = tryOne(Rank);
        if (!Immediate)
          trace::emit(trace::EventKind::LockContend, ThreadId, Rank);
        Ok = Immediate || (TimeoutMs == 0 ? (lockOne(Rank), true)
                                          : lockOneFor(Rank, TimeoutMs));
        if (Ok)
          trace::emit(trace::EventKind::LockAcquire, ThreadId, Rank,
                      Immediate ? 0 : trace::session().nowNs() - T0);
      }
      if (Ok) {
        setWaiting(ThreadId, NoRank);
        Holder[Rank].store(static_cast<int>(ThreadId),
                           std::memory_order_relaxed);
        ++Taken;
        continue;
      }
      std::string Diag = timeoutDiagnostic(ThreadId, Rank, TimeoutMs);
      setWaiting(ThreadId, NoRank);
      for (size_t I = Taken; I > 0; --I) {
        Holder[Ranks[I - 1]].store(NoThread, std::memory_order_relaxed);
        unlockOne(Ranks[I - 1]);
      }
      throw RegionFault(FaultKind::LockTimeout, ThreadId, Diag);
    }
  }

  /// Releases in reverse order.
  void release(const std::vector<unsigned> &Ranks) {
    for (auto It = Ranks.rbegin(); It != Ranks.rend(); ++It) {
      if (trace::enabled()) {
        int H = Holder[*It].load(std::memory_order_relaxed);
        trace::emit(trace::EventKind::LockRelease,
                    H >= 0 ? static_cast<uint32_t>(H) : 0, *It);
      }
      Holder[*It].store(NoThread, std::memory_order_relaxed);
      unlockOne(*It);
    }
  }

  LockMode mode() const { return Mode; }

private:
  static constexpr int NoThread = -1;
  static constexpr int NoRank = -1;
  static constexpr unsigned MaxTrackedThreads = 64;

  void setWaiting(unsigned ThreadId, int Rank) {
    if (ThreadId < MaxTrackedThreads)
      Waiting[ThreadId].store(Rank, std::memory_order_relaxed);
  }

  /// Walks holder -> waited-rank edges starting at the timed-out rank and
  /// renders the suspected cycle. Best effort over racy atomics: the
  /// output is a diagnosis aid, not a proof.
  std::string timeoutDiagnostic(unsigned ThreadId, unsigned Rank,
                                uint64_t TimeoutMs) const {
    std::ostringstream Os;
    Os << "lock timeout: thread " << ThreadId << " waited " << TimeoutMs
       << "ms for rank " << Rank << "; suspected rank cycle: ";
    unsigned Cur = Rank;
    for (size_t Step = 0; Step <= Holder.size(); ++Step) {
      int H = Holder[Cur].load(std::memory_order_relaxed);
      Os << "rank " << Cur << " held by ";
      if (H == NoThread) {
        Os << "<none>";
        break;
      }
      Os << "thread " << H;
      int Next = H >= 0 && static_cast<unsigned>(H) < MaxTrackedThreads
                     ? Waiting[H].load(std::memory_order_relaxed)
                     : NoRank;
      if (Next == NoRank)
        break;
      Os << " -> ";
      if (static_cast<unsigned>(Next) == Rank) {
        Os << "rank " << Next << " (cycle closes)";
        break;
      }
      Cur = static_cast<unsigned>(Next);
    }
    return Os.str();
  }

  /// Non-blocking probe used by the traced acquisition path to classify an
  /// acquisition as contended before falling back to the blocking flavor.
  bool tryOne(unsigned Rank) {
    switch (Mode) {
    case LockMode::Mutex:
      return Mutexes[Rank].try_lock();
    case LockMode::Spin:
      return Spins[Rank].try_lock();
    case LockMode::None:
      return true;
    }
    return true;
  }

  void lockOne(unsigned Rank) {
    switch (Mode) {
    case LockMode::Mutex:
      Mutexes[Rank].lock();
      return;
    case LockMode::Spin:
      Spins[Rank].lock();
      return;
    case LockMode::None:
      return;
    }
  }

  /// Deadline-bounded mutex acquisition by try_lock polling. Deliberately
  /// NOT std::timed_mutex: libstdc++ implements try_lock_for via
  /// pthread_mutex_clocklock, which ThreadSanitizer does not intercept —
  /// the acquisition becomes invisible to it, producing bogus
  /// unlock-of-unlocked reports and, worse, dropping the happens-before
  /// edge the lock provides.
  bool timedMutexLock(unsigned Rank, uint64_t TimeoutMs) {
    if (Mutexes[Rank].try_lock())
      return true;
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(TimeoutMs);
    unsigned Spins = 0;
    while (!Mutexes[Rank].try_lock()) {
      if (++Spins < 64) {
        std::this_thread::yield();
      } else {
        // Past the short-hold window; sleep-poll and check the deadline.
        if (std::chrono::steady_clock::now() >= Deadline)
          return false;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
    return true;
  }

  bool lockOneFor(unsigned Rank, uint64_t TimeoutMs) {
    switch (Mode) {
    case LockMode::Mutex:
      return timedMutexLock(Rank, TimeoutMs);
    case LockMode::Spin:
      return Spins[Rank].try_lock_for_ms(TimeoutMs);
    case LockMode::None:
      return true;
    }
    return true;
  }

  void unlockOne(unsigned Rank) {
    switch (Mode) {
    case LockMode::Mutex:
      Mutexes[Rank].unlock();
      return;
    case LockMode::Spin:
      Spins[Rank].unlock();
      return;
    case LockMode::None:
      return;
    }
  }

  LockMode Mode;
  std::vector<std::mutex> Mutexes;
  std::vector<SpinLock> Spins;
  /// Rank -> holding thread (NoThread when free). Maintained by both
  /// acquisition paths (acquire and acquireOrTimeout) and cleared by
  /// release().
  std::vector<std::atomic<int>> Holder;
  /// Thread -> rank it is currently blocked on (NoRank when not waiting).
  std::atomic<int> Waiting[MaxTrackedThreads];
};

} // namespace commset

#endif // COMMSET_RUNTIME_LOCKS_H
