//===- Locks.h - Spin lock and ranked COMMSET lock manager ------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synchronization primitives for COMMSET member atomicity (paper §4.6).
/// Each COMMSET gets one lock; members of multiple sets acquire their locks
/// in ascending global rank order and release in reverse, which together
/// with the acyclic queue topology guarantees deadlock freedom.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_RUNTIME_LOCKS_H
#define COMMSET_RUNTIME_LOCKS_H

#include <algorithm>
#include <atomic>
#include <cassert>
#include <mutex>
#include <thread>
#include <vector>

namespace commset {

/// Test-and-test-and-set spin lock. The paper's evaluation finds spin
/// locks beating mutexes under high contention (456.hmmer, url) because
/// they avoid sleep/wakeup overhead.
class SpinLock {
public:
  void lock() {
    while (true) {
      if (!Flag.exchange(true, std::memory_order_acquire))
        return;
      unsigned Spins = 0;
      while (Flag.load(std::memory_order_relaxed)) {
        if (++Spins >= 1024) {
          std::this_thread::yield();
          Spins = 0;
        }
      }
    }
  }

  bool try_lock() { return !Flag.exchange(true, std::memory_order_acquire); }

  void unlock() { Flag.store(false, std::memory_order_release); }

private:
  std::atomic<bool> Flag{false};
};

/// Lock flavor used for a COMMSET (paper §4.6 synchronization modes; TM is
/// provided by Runtime/Stm.h, and Lib means no compiler-inserted locking).
enum class LockMode { Mutex, Spin, None };

/// One lock per COMMSET, acquired in ascending rank order.
class CommSetLockManager {
public:
  explicit CommSetLockManager(unsigned NumSets, LockMode Mode)
      : Mode(Mode), Mutexes(NumSets), Spins(NumSets) {}

  /// Acquires the locks for the given set ranks. \p Ranks must be sorted
  /// ascending (the synchronization engine emits them that way).
  void acquire(const std::vector<unsigned> &Ranks) {
    assert(std::is_sorted(Ranks.begin(), Ranks.end()) &&
           "lock ranks must be acquired in ascending order");
    for (unsigned Rank : Ranks)
      lockOne(Rank);
  }

  /// Releases in reverse order.
  void release(const std::vector<unsigned> &Ranks) {
    for (auto It = Ranks.rbegin(); It != Ranks.rend(); ++It)
      unlockOne(*It);
  }

  LockMode mode() const { return Mode; }

private:
  void lockOne(unsigned Rank) {
    switch (Mode) {
    case LockMode::Mutex:
      Mutexes[Rank].lock();
      return;
    case LockMode::Spin:
      Spins[Rank].lock();
      return;
    case LockMode::None:
      return;
    }
  }
  void unlockOne(unsigned Rank) {
    switch (Mode) {
    case LockMode::Mutex:
      Mutexes[Rank].unlock();
      return;
    case LockMode::Spin:
      Spins[Rank].unlock();
      return;
    case LockMode::None:
      return;
    }
  }

  LockMode Mode;
  std::vector<std::mutex> Mutexes;
  std::vector<SpinLock> Spins;
};

} // namespace commset

#endif // COMMSET_RUNTIME_LOCKS_H
