//===- Privatization.h - Per-worker shadow replicas for Priv sync -*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime half of the `priv` sync mode: each worker of a parallel region
/// owns a shadow replica of every privatized global (a slot the planner
/// proved is written only as an add-reduction inside the region). Member
/// calls update the local replica lock free; at region exit the master
/// merges the replicas into the shared globals in ascending worker order,
/// so the merged value — and for floats even the rounding — is a
/// deterministic function of the iteration→worker assignment.
///
/// Replica storage is leased from the persistent WorkerPool (one
/// cache-line-padded row per logical worker, reused across regions) and
/// reset to the additive identity when a manager is constructed, which is
/// exactly once per region attempt. A region that faults simply never
/// calls merge(): the partial sums die with the manager and the
/// degraded-sequential re-execution starts from a fresh global image.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_RUNTIME_PRIVATIZATION_H
#define COMMSET_RUNTIME_PRIVATIZATION_H

#include "commset/Exec/RtValue.h"
#include "commset/Runtime/ThreadPool.h"

#include <cstdint>
#include <set>
#include <vector>

namespace commset {

class PrivatizationManager {
public:
  /// \p PrivSlots are the privatized global slot ids; \p FloatSlot (indexed
  /// by global slot, may be shorter than the module's slot count) marks
  /// float-typed globals so the merge adds in the right domain. Rows for
  /// workers [0, NumWorkers) are leased from \p Pool and zeroed here.
  PrivatizationManager(const std::set<unsigned> &PrivSlots,
                       unsigned NumWorkers,
                       const std::vector<bool> &FloatSlot,
                       WorkerPool &Pool = WorkerPool::global());

  bool isPrivatized(unsigned Slot) const {
    return Slot < DenseIdx.size() && DenseIdx[Slot] >= 0;
  }

  /// Worker-local replica cell; the hot path of privatized global access.
  /// Only worker \p Worker may touch its row while the region runs.
  RtValue &replica(unsigned Worker, unsigned Slot) {
    return Rows[Worker][DenseIdx[Slot]];
  }

  /// Adds every replica into \p Globals in ascending worker order (worker
  /// 0 first), ascending slot order within a worker. Emits one PrivMerge
  /// trace event per (worker, slot) pair actually merged, attributed to
  /// \p MasterTid. Call exactly once, after the region joined; a faulted
  /// region skips it and the partial sums are discarded by construction.
  void merge(RtValue *Globals, unsigned MasterTid);

  unsigned numWorkers() const { return static_cast<unsigned>(Rows.size()); }
  size_t slotCount() const { return SlotList.size(); }
  const std::vector<unsigned> &slots() const { return SlotList; }

  /// True once merge() ran; pinned by tests to catch double merges.
  bool merged() const { return Merged; }

private:
  std::vector<int> DenseIdx;       ///< Global slot -> dense index, -1 = no.
  std::vector<unsigned> SlotList;  ///< Dense index -> global slot.
  std::vector<bool> FloatSlots;    ///< Per dense index.
  std::vector<RtValue *> Rows;     ///< Per worker, leased from the pool.
  bool Merged = false;
};

} // namespace commset

#endif // COMMSET_RUNTIME_PRIVATIZATION_H
