//===- Sched.h - Loop scheduling policies -----------------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iteration-scheduling policies for the parallel loop executors. The
/// paper's executors assign iterations round-robin (static); skewed
/// per-iteration costs then leave all but the unlucky thread idle. The
/// dynamic policies let workers claim chunks from a shared counter at run
/// time instead:
///
///  * Static  — iteration i runs on thread i % T. Zero scheduling
///    overhead, no balancing.
///  * Dynamic — chunks of 1 iteration claimed from a shared counter.
///    Best balancing, one claim per iteration.
///  * Guided  — decaying chunk sizes: the first T chunks hold 8
///    iterations, the next T hold 4, then 2, then 1 from there on.
///    Balancing close to Dynamic at a fraction of the claims.
///
/// Chunk boundaries must be a pure function of the claimed position: every
/// claimer advances the counter with a compare-exchange from position P to
/// P + schedChunkSize(P), so the tiling of the iteration space is identical
/// no matter which worker claims which chunk or in what order. That keeps
/// the simulator deterministic (claims are granted in virtual-time order)
/// and makes traces comparable across runs.
///
/// The pipeline executor cannot claim dynamically — every PS-DSWP stage
/// thread must compute the same iteration->replica mapping locally, or
/// cross-stage queue traffic would be misrouted. schedReplicaOf is the
/// deterministic analogue: a pure function applying the same chunking shape
/// (static round-robin, dynamic block-cyclic, guided decaying rounds) to
/// replica assignment.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_RUNTIME_SCHED_H
#define COMMSET_RUNTIME_SCHED_H

#include <cstdint>

namespace commset {

/// Iteration-scheduling policy for DOALL loops and PS-DSWP parallel stages.
enum class SchedPolicy { Static, Dynamic, Guided };

const char *schedPolicyName(SchedPolicy P);

/// Parses "static" / "dynamic" / "guided"; \returns false on anything else.
bool schedPolicyFromString(const char *Name, SchedPolicy &Out);

/// Initial guided chunk size (halves every round of \p Threads chunks).
constexpr uint64_t GuidedInitialChunk = 8;

/// Chunk size for the chunk beginning at iteration \p Begin under policy
/// \p P with \p Threads workers. Pure function of Begin: all claimers
/// advance the shared counter Begin -> Begin + schedChunkSize(P, Begin,
/// Threads), so chunk boundaries form one deterministic tiling of the
/// iteration space regardless of claim order.
inline uint64_t schedChunkSize(SchedPolicy P, uint64_t Begin,
                               unsigned Threads) {
  switch (P) {
  case SchedPolicy::Static:
  case SchedPolicy::Dynamic:
    return 1;
  case SchedPolicy::Guided: {
    uint64_t Off = 0;
    for (uint64_t C = GuidedInitialChunk; C > 1; C >>= 1) {
      uint64_t RoundLen = static_cast<uint64_t>(Threads) * C;
      if (Begin < Off + RoundLen)
        return C - (Begin - Off) % C; // Realign a mid-chunk Begin.
      Off += RoundLen;
    }
    return 1;
  }
  }
  return 1;
}

/// Deterministic replica assignment for a PS-DSWP parallel stage with
/// \p Replicas replicas: which replica runs iteration \p Iter. A pure
/// function every stage thread computes identically (queue routing depends
/// on it), mirroring the claiming shape of each policy:
///
///  * Static  — round-robin, Iter % R.
///  * Dynamic — block-cyclic pairs, (Iter / 2) % R: consecutive iterations
///    share a replica the way a claimed chunk does.
///  * Guided  — decaying rounds: R blocks of 8 iterations, then R of 4,
///    2, and 1 from there on, matching schedChunkSize's tiling.
inline unsigned schedReplicaOf(SchedPolicy P, uint64_t Iter,
                               unsigned Replicas) {
  switch (P) {
  case SchedPolicy::Static:
    return static_cast<unsigned>(Iter % Replicas);
  case SchedPolicy::Dynamic:
    return static_cast<unsigned>((Iter / 2) % Replicas);
  case SchedPolicy::Guided: {
    uint64_t Off = 0;
    for (uint64_t C = GuidedInitialChunk; C > 1; C >>= 1) {
      uint64_t RoundLen = static_cast<uint64_t>(Replicas) * C;
      if (Iter < Off + RoundLen)
        return static_cast<unsigned>((Iter - Off) / C);
      Off += RoundLen;
    }
    return static_cast<unsigned>((Iter - Off) % Replicas);
  }
  }
  return 0;
}

} // namespace commset

#endif // COMMSET_RUNTIME_SCHED_H
