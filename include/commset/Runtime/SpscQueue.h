//===- SpscQueue.h - Lock-free single-producer single-consumer -*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded lock-free SPSC ring buffer. The DSWP family communicates
/// cross-stage values and iteration tokens through these queues (paper
/// §4.5: "dependences between stages are communicated via lock-free queues
/// in software"); their acquire/release pairs also provide the memory
/// ordering that makes forwarded stores visible downstream.
///
/// Cancellation: poison() marks the queue closed in both directions. A
/// blocked pushWait() fails immediately; a blocked popWait() drains the
/// entries already in flight and then fails, so producer and consumer
/// both unwind cleanly when a parallel region is cancelled.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_RUNTIME_SPSCQUEUE_H
#define COMMSET_RUNTIME_SPSCQUEUE_H

#include "commset/Trace/Trace.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <thread>
#include <vector>

namespace commset {

template <typename T> class SpscQueue {
public:
  /// \p CapacityPow2 must be a power of two.
  explicit SpscQueue(size_t CapacityPow2 = 1024)
      : Buffer(CapacityPow2), Mask(CapacityPow2 - 1) {
    assert((CapacityPow2 & Mask) == 0 && "capacity must be a power of two");
  }

  SpscQueue(const SpscQueue &) = delete;
  SpscQueue &operator=(const SpscQueue &) = delete;

  /// CommTrace identity: queue id plus the logical thread ids of the two
  /// endpoints, so push/pop/block/poison events attribute to concrete
  /// workers. Set once by the owning platform before the region starts;
  /// queues without ids trace as queue 0 on thread 0.
  void setTraceIds(uint32_t QueueId, uint32_t Producer, uint32_t Consumer) {
    TraceQueueId = QueueId;
    TraceProducer = Producer;
    TraceConsumer = Consumer;
  }

  /// Non-blocking push. \returns false when full.
  bool tryPush(const T &Value) {
    size_t Tail = TailPos.load(std::memory_order_relaxed);
    size_t Head = HeadPos.load(std::memory_order_acquire);
    if (Tail - Head > Mask)
      return false;
    Buffer[Tail & Mask] = Value;
    TailPos.store(Tail + 1, std::memory_order_release);
    // Occupancy is computed from a head index re-read after the publish:
    // the pre-check Head may be arbitrarily stale by now and would
    // over-report the depth whenever the consumer drained concurrently.
    if (trace::enabled())
      trace::emit(trace::EventKind::QueuePush, TraceProducer, TraceQueueId,
                  Tail + 1 - HeadPos.load(std::memory_order_acquire));
    return true;
  }

  /// Non-blocking pop. \returns false when empty.
  bool tryPop(T &Value) {
    size_t Head = HeadPos.load(std::memory_order_relaxed);
    size_t Tail = TailPos.load(std::memory_order_acquire);
    if (Head == Tail)
      return false;
    Value = Buffer[Head & Mask];
    HeadPos.store(Head + 1, std::memory_order_release);
    // Same staleness hazard as tryPush: re-read the tail after consuming
    // so concurrent producer progress cannot under-report the depth.
    if (trace::enabled())
      trace::emit(trace::EventKind::QueuePop, TraceConsumer, TraceQueueId,
                  TailPos.load(std::memory_order_acquire) - (Head + 1));
    return true;
  }

  /// Blocking push (spins, yielding periodically). Must not be used on a
  /// queue that may be poisoned; cancellation-aware callers use pushWait.
  void push(const T &Value) {
    bool Ok = pushWait(Value);
    assert(Ok && "push on a poisoned queue");
    (void)Ok;
  }

  /// Blocking pop. Must not be used on a queue that may be poisoned;
  /// cancellation-aware callers use popWait.
  T pop() {
    T Value;
    bool Ok = popWait(Value);
    assert(Ok && "pop on a poisoned queue");
    (void)Ok;
    return Value;
  }

  /// Blocking push that observes cancellation. \returns false (value not
  /// enqueued) once the queue is poisoned — even when space is available,
  /// so a cancelled producer stops generating work immediately.
  bool pushWait(const T &Value) {
    unsigned Spins = 0;
    uint64_t BlockedT0 = 0;
    while (true) {
      if (Poison.load(std::memory_order_acquire)) {
        emitBlocked(TraceProducer, BlockedT0);
        return false;
      }
      if (tryPush(Value)) {
        emitBlocked(TraceProducer, BlockedT0);
        return true;
      }
      if (BlockedT0 == 0)
        BlockedT0 = trace::nowIfEnabled();
      backoff(Spins);
    }
  }

  /// Blocking pop that observes cancellation. Entries already enqueued are
  /// still delivered; \returns false once the queue is empty and poisoned.
  bool popWait(T &Value) {
    unsigned Spins = 0;
    uint64_t BlockedT0 = 0;
    while (!tryPop(Value)) {
      if (Poison.load(std::memory_order_acquire)) {
        emitBlocked(TraceConsumer, BlockedT0);
        return false;
      }
      if (BlockedT0 == 0)
        BlockedT0 = trace::nowIfEnabled();
      backoff(Spins);
    }
    emitBlocked(TraceConsumer, BlockedT0);
    return true;
  }

  /// CommTrace tid recorded for a poison() with no known endpoint (a
  /// supervisor or platform cancelling from outside the worker set). The
  /// session files events from out-of-range tids into its spare ring, so a
  /// divergence trace shows "external" instead of blaming the consumer.
  static constexpr uint32_t PoisonExternalTid = ~uint32_t(0);

  /// Marks the queue cancelled: both endpoints unwind instead of blocking.
  /// Safe to call from any thread; idempotent. \p ByTid is the logical
  /// thread performing the cancellation; callers outside the region's
  /// worker set use the PoisonExternalTid default rather than mislabeling
  /// the event as consumer-initiated.
  void poison(uint32_t ByTid = PoisonExternalTid) {
    bool Was = Poison.exchange(true, std::memory_order_acq_rel);
    if (!Was)
      trace::emit(trace::EventKind::QueuePoison, ByTid, TraceQueueId);
  }

  bool poisoned() const { return Poison.load(std::memory_order_acquire); }

  bool empty() const {
    return HeadPos.load(std::memory_order_acquire) ==
           TailPos.load(std::memory_order_acquire);
  }

  size_t size() const {
    return TailPos.load(std::memory_order_acquire) -
           HeadPos.load(std::memory_order_acquire);
  }

  size_t capacity() const { return Mask + 1; }

private:
  /// Closes an open blocked-window (pushWait/popWait stalled at least one
  /// backoff round while tracing was live).
  void emitBlocked(uint32_t Tid, uint64_t BlockedT0) {
    if (BlockedT0 != 0 && trace::enabled())
      trace::emit(trace::EventKind::QueueBlock, Tid, TraceQueueId,
                  trace::session().nowNs() - BlockedT0);
  }

  static void backoff(unsigned &Spins) {
    if (++Spins < 64)
      return;
    std::this_thread::yield();
    Spins = 0;
  }

  std::vector<T> Buffer;
  const size_t Mask;
  uint32_t TraceQueueId = 0;
  uint32_t TraceProducer = 0;
  uint32_t TraceConsumer = 0;
  alignas(64) std::atomic<size_t> HeadPos{0};
  alignas(64) std::atomic<size_t> TailPos{0};
  alignas(64) std::atomic<bool> Poison{false};
};

} // namespace commset

#endif // COMMSET_RUNTIME_SPSCQUEUE_H
