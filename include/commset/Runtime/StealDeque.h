//===- StealDeque.h - Bounded work-stealing deque ---------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chase-Lev-style work-stealing deque, specialized for the DOALL executor
/// on the threaded platform: the owner pushes/pops iteration ranges at the
/// bottom, idle workers steal the oldest (largest) ranges from the top.
/// A worker that claims a guided chunk splits it lazily — work the first
/// half, publish the second half here — so a thread whose own iterations
/// ran short can finish someone else's backlog instead of idling.
///
/// Deviations from the textbook algorithm, both deliberate:
///
///  * Fixed capacity, no growth. The deque holds at most one entry per
///    lazy split of one chunk (<= log2 of the largest chunk), so 64 slots
///    cannot fill; push still reports overflow and the owner simply runs
///    the range itself.
///  * Sequentially-consistent atomics instead of the classic
///    fence-calibrated relaxed/acquire mix. ThreadSanitizer does not model
///    standalone atomic_thread_fence, so the textbook version produces
///    false positives under COMMSET_SANITIZE=thread; deque traffic is a
///    few operations per *chunk*, far off the hot path, and seq_cst keeps
///    the proof and the tooling simple.
///
/// Entries are opaque uint64_t values (the executor packs an iteration
/// range as begin<<32|end). The zero-capable payload is fine: emptiness is
/// tracked by indices, not sentinels.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_RUNTIME_STEALDEQUE_H
#define COMMSET_RUNTIME_STEALDEQUE_H

#include <array>
#include <atomic>
#include <cstdint>

namespace commset {

class StealDeque {
public:
  static constexpr unsigned Capacity = 64;

  /// Owner-only: publishes \p V at the bottom. \returns false when full
  /// (caller keeps the work private).
  bool push(uint64_t V) {
    uint64_t B = Bottom.load();
    uint64_t T = Top.load();
    if (B - T >= Capacity)
      return false;
    Buf[B % Capacity].store(V);
    Bottom.store(B + 1);
    return true;
  }

  /// Owner-only: takes the most recently pushed entry. Races the last
  /// entry against thieves with a CAS on Top.
  bool pop(uint64_t &V) {
    uint64_t B = Bottom.load();
    uint64_t T = Top.load();
    if (T >= B)
      return false;
    B -= 1;
    Bottom.store(B);
    T = Top.load();
    if (T > B) { // A thief took the last entry while we were descending.
      Bottom.store(B + 1);
      return false;
    }
    V = Buf[B % Capacity].load();
    if (T == B) { // Last entry: settle ownership against concurrent steals.
      bool Won = Top.compare_exchange_strong(T, T + 1);
      Bottom.store(B + 1);
      return Won;
    }
    return true;
  }

  /// Thief-side: takes the oldest entry. \returns false when empty or
  /// when it lost the race for the entry.
  bool steal(uint64_t &V) {
    uint64_t T = Top.load();
    uint64_t B = Bottom.load();
    if (T >= B)
      return false;
    V = Buf[T % Capacity].load();
    return Top.compare_exchange_strong(T, T + 1);
  }

  /// Racy emptiness probe for victim selection; a false negative just
  /// costs the thief one wasted steal() attempt.
  bool emptyApprox() const {
    return Top.load(std::memory_order_relaxed) >=
           Bottom.load(std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Top{0};
  std::atomic<uint64_t> Bottom{0};
  std::array<std::atomic<uint64_t>, Capacity> Buf{};
};

} // namespace commset

#endif // COMMSET_RUNTIME_STEALDEQUE_H
