//===- Stm.h - TL2-style software transactional memory ----------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Word-based software transactional memory in the TL2 style: a global
/// version clock, a striped table of versioned write-locks, lazy write
/// buffering, and commit-time validation. This is the repo's stand-in for
/// the Intel STM runtime the paper uses for the optimistic synchronization
/// mode (§4.6). COMMSET members containing I/O-effect natives are
/// TM-ineligible, matching the paper's observation that transactions do
/// not apply to ECLAT/geti-style members.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_RUNTIME_STM_H
#define COMMSET_RUNTIME_STM_H

#include "commset/Runtime/FaultInjector.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

namespace commset {

/// Shared STM state: clock + lock table. One instance per parallel region.
class StmSpace {
public:
  static constexpr unsigned NumStripes = 1024;

  std::atomic<uint64_t> &stripeFor(const void *Addr) {
    auto Key = reinterpret_cast<uintptr_t>(Addr);
    return Stripes[(Key >> 3) % NumStripes];
  }

  /// Global version clock.
  std::atomic<uint64_t> Clock{2};

  /// Versioned write-locks: even = version, odd = locked.
  std::atomic<uint64_t> Stripes[NumStripes] = {};
};

/// One transaction (per attempt). Usage:
///   Stm Tx(Space);
///   do { Tx.begin(); v = Tx.read(&X); Tx.write(&Y, v + 1); }
///   while (!Tx.commit());
class Stm {
public:
  explicit Stm(StmSpace &Space, FaultInjector *Faults = nullptr,
               unsigned ThreadId = 0)
      : Space(Space), Faults(Faults), ThreadId(ThreadId) {}

  void begin();

  /// Transactional read of a 64-bit word. Sets the abort flag on conflict;
  /// callers must check aborted() (reads after an abort return 0).
  uint64_t read(const uint64_t *Addr);

  /// Transactional (buffered) write.
  void write(uint64_t *Addr, uint64_t Value);

  /// True when the current attempt has already observed a conflict; the
  /// caller should abandon the attempt and retry via begin().
  bool aborted() const { return Aborted; }

  /// Validates and publishes the write set. \returns false when the
  /// transaction must retry.
  bool commit();

  unsigned attempts() const { return Attempts; }

  /// CommTrace: interned name id of the COMMSET this transaction guards,
  /// so begin/commit/abort events aggregate into per-set abort rates.
  void setTraceSet(uint64_t NameId) { TraceSet = NameId; }

private:
  bool commitImpl();
  bool lockWriteSet(std::vector<std::atomic<uint64_t> *> &Locked);

  StmSpace &Space;
  FaultInjector *Faults;
  unsigned ThreadId;
  uint64_t TraceSet = 0;
  uint64_t ReadVersion = 0;
  bool Aborted = false;
  unsigned Attempts = 0;
  std::map<const uint64_t *, uint64_t> ReadSet; // addr -> observed version.
  std::map<uint64_t *, uint64_t> WriteSet;      // addr -> buffered value.
};

/// Outcome of one failed-commit decision by the retry governor.
enum class StmOutcome {
  Committed, ///< Not produced by onFailedAttempt; for caller bookkeeping.
  Retry,     ///< Backoff slept; attempt again.
  Exhausted, ///< Retry budget spent; escalate to RegionFault(StmExhausted).
};

/// Bounds the classic `do { ... } while (!Tx.commit())` livelock: each
/// failed attempt sleeps an exponentially growing, deterministically
/// jittered backoff, and after MaxAttempts failures the caller must stop
/// retrying and escalate. Jitter is a pure function of the seed and the
/// failure count, so fault campaigns replay bit-identically.
class StmRetryGovernor {
public:
  StmRetryGovernor(unsigned MaxAttempts, uint64_t BackoffBaseUs,
                   uint64_t BackoffCapUs, uint64_t JitterSeed)
      : MaxAttempts(MaxAttempts), BaseUs(BackoffBaseUs), CapUs(BackoffCapUs),
        JitterSeed(JitterSeed) {}

  /// Records one failed commit; sleeps the backoff and returns Retry, or
  /// returns Exhausted once the attempt budget is spent.
  StmOutcome onFailedAttempt();

  unsigned failures() const { return Failures; }

private:
  unsigned MaxAttempts;
  uint64_t BaseUs;
  uint64_t CapUs;
  uint64_t JitterSeed;
  unsigned Failures = 0;
};

} // namespace commset

#endif // COMMSET_RUNTIME_STM_H
