//===- ThreadPool.h - Persistent worker pool with supervision ---*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Worker-pool fork-join for the parallel executors. Workers are spawned
/// once, park on a condition variable between parallel regions, and are
/// reused by every subsequent region, so short regions no longer pay
/// thread-creation cost (ROADMAP: "as fast as the hardware allows"). Two
/// entry points, both routed through the process-wide WorkerPool:
///
///  - runParallel: bare fork-join, used when supervision is disabled.
///    No watchdog, no cancellation — the pre-resilience hot path minus
///    the per-region spawns.
///
///  - runParallelSupervised: resilient fork-join. Workers report progress
///    through RegionControl heartbeats; the supervisor (the calling
///    thread) watches for global stalls, cancels the region when a worker
///    faults or wedges, and abandons workers that ignore the join-grace
///    deadline. An abandoned worker permanently retires its pool slot:
///    the detached thread exits as soon as its job returns (if ever) and
///    the slot respawns a fresh thread on next use, so a wedged thread can
///    never be handed new work.
///
/// CommTrace: TaskDispatch/TaskComplete bracket a worker's *pool lifetime*
/// (one pair per spawned thread), not each region — a trace covering two
/// consecutive regions shows one dispatch per worker, which is exactly how
/// pool reuse is verified. Per-region work attribution comes from the
/// scheduler's ChunkClaim/Steal events instead.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_RUNTIME_THREADPOOL_H
#define COMMSET_RUNTIME_THREADPOOL_H

#include "commset/Exec/RtValue.h"
#include "commset/Runtime/FaultInjector.h"
#include "commset/Trace/Trace.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace commset {

/// Stable display name for a logical worker: "commset-w<N>". Used for OS
/// thread names, trace tracks and watchdog diagnostics, so every layer
/// attributes work to the same small integer id.
std::string workerName(unsigned Worker);

/// Names the calling OS thread workerName(Worker) where the platform
/// supports it (pthread_setname_np); no-op elsewhere.
void setCurrentWorkerThreadName(unsigned Worker);

/// Shared cancellation flag + per-worker heartbeat counters for one
/// supervised parallel region. Heartbeat slots are cache-line padded and
/// single-writer, so a checkpoint costs one relaxed load and one relaxed
/// store — cheap enough for every loop iteration.
class RegionControl {
public:
  static constexpr unsigned MaxWorkers = 64;

  /// Worker-side progress tick; call at iteration boundaries.
  void heartbeat(unsigned Worker) {
    auto &Slot = Slots[Worker % MaxWorkers].Beats;
    Slot.store(Slot.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  }

  /// Supervisor-side global progress counter (sum of all heartbeats).
  uint64_t beats() const {
    uint64_t Sum = 0;
    for (const auto &S : Slots)
      Sum += S.Beats.load(std::memory_order_relaxed);
    return Sum;
  }

  void cancel() { Cancel.store(true, std::memory_order_release); }
  bool cancelled() const { return Cancel.load(std::memory_order_acquire); }

private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> Beats{0};
  };
  Slot Slots[MaxWorkers];
  alignas(64) std::atomic<bool> Cancel{false};
};

/// What happened to a supervised region, reported to the degradation
/// machinery in the executors / Runner.
struct SupervisedReport {
  bool Faulted = false;              ///< Some worker raised a RegionFault.
  FaultKind Kind = FaultKind::None;  ///< Primary fault (non-Cancelled wins).
  unsigned FaultThread = 0;
  std::string Detail;
  bool WatchdogTripped = false;      ///< Supervisor saw a global stall.
  std::vector<unsigned> StalledWorkers; ///< Unfinished workers at the trip.
  bool AllJoined = true;             ///< False when a worker was abandoned.
};

/// Persistent pool of parked worker threads. Slot index == logical worker
/// id (tid in traces, sim/platform thread id, heartbeat slot), so worker N
/// of every region lands on the same OS thread "commset-wN".
///
/// One region runs at a time per pool (the pool mutex is held for the
/// region's duration; concurrent regions serialize). A region entered
/// *from* a pool worker — which would self-deadlock — falls back to
/// spawn-per-region threads transparently.
class WorkerPool {
public:
  WorkerPool() = default;
  ~WorkerPool();
  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  /// Bare fork-join: runs Tasks[i] on pool worker i; returns after all
  /// complete. No supervision, no cancellation.
  void run(const std::vector<std::function<void()>> &Tasks);

  /// Resilient fork-join. Runs every task on its pool worker while the
  /// calling thread supervises RegionControl for progress. On a worker
  /// fault or a stall of WatchdogStallMs with no heartbeat/completion
  /// anywhere, the region is cancelled (Control.cancel() plus the caller's
  /// CancelAll hook, which e.g. poisons platform queues). Workers then get
  /// JoinGraceMs of post-cancel quiet time to unwind; any that do not are
  /// abandoned (slot retired, AllJoined=false) rather than hung on.
  /// JoinGraceMs == 0 means "wait forever for the join", matching
  /// WatchdogStallMs == 0 ("never trip").
  SupervisedReport
  runSupervised(const std::vector<std::function<void()>> &Tasks,
                RegionControl &Control, uint64_t WatchdogStallMs,
                uint64_t JoinGraceMs, const std::function<void()> &CancelAll);

  /// Total OS threads ever spawned by this pool (respawns after an
  /// abandonment included). Two consecutive N-worker regions cost N, not
  /// 2N — the reuse property the sched tests pin.
  uint64_t spawnCount() const {
    return Spawns.load(std::memory_order_relaxed);
  }

  /// Wakes, joins and destroys every parked worker. Abandoned (detached)
  /// threads are not waited for. Called by the destructor.
  void shutdown();

  /// Leases worker \p Worker's replica row for a privatized region:
  /// \p NumSlots RtValue cells, grow-only and persistent alongside the
  /// worker's pool slot, so consecutive regions reuse the same storage
  /// without reallocating. Rows are separate cache-line-aligned
  /// allocations (capacity rounded to whole lines), so two workers'
  /// replicas never false-share. The caller (PrivatizationManager) owns
  /// resetting the cells — a leased row's previous contents are stale by
  /// contract.
  RtValue *leaseReplicaRow(unsigned Worker, size_t NumSlots);

  /// The process-wide pool used by runParallel/runParallelSupervised.
  static WorkerPool &global();

private:
  struct WorkerShared;
  struct Slot {
    std::shared_ptr<WorkerShared> Sh; ///< Null until first use / after retire.
    std::thread Th;
  };

  /// Ensures slot \p I has a live worker and hands it \p Job. PoolM held.
  void dispatch(unsigned I, std::function<void()> Job);

  std::mutex PoolM;        ///< Serializes regions and slot mutation.
  std::vector<Slot> Slots; ///< Guarded by PoolM.
  std::atomic<uint64_t> Spawns{0};

  /// One cache-line-aligned replica row per logical worker; grow-only.
  /// Storage is over-allocated by one line and Aligned rounds the base up,
  /// so rows never straddle into each other's lines regardless of what the
  /// allocator returns.
  struct ReplicaRow {
    size_t Capacity = 0;
    std::vector<RtValue> Storage;
    RtValue *Aligned = nullptr;
  };
  std::mutex ReplicaM; ///< Guards the arena (not the leased cells).
  std::vector<ReplicaRow> ReplicaRows;
};

/// Runs Tasks[i] on worker i of the global pool; returns after all
/// complete.
void runParallel(const std::vector<std::function<void()>> &Tasks);

/// Supervised fork-join on the global pool; see WorkerPool::runSupervised.
SupervisedReport
runParallelSupervised(const std::vector<std::function<void()>> &Tasks,
                      RegionControl &Control, uint64_t WatchdogStallMs,
                      uint64_t JoinGraceMs,
                      const std::function<void()> &CancelAll);

} // namespace commset

#endif // COMMSET_RUNTIME_THREADPOOL_H
