//===- ThreadPool.h - Fork-join worker pool with supervision -----*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fork-join helpers for the parallel executors, which spawn one worker
/// per DOALL thread / pipeline stage (the paper's static thread
/// assignment). Two flavors:
///
///  - runParallel: the original bare fork-join, used when supervision is
///    disabled. No watchdog, no cancellation — byte-for-byte the
///    pre-resilience hot path.
///
///  - runParallelSupervised: resilient fork-join. Workers report progress
///    through RegionControl heartbeats; a supervisor thread watches for
///    global stalls, cancels the region when a worker faults or wedges,
///    and joins with a grace deadline so a truly stuck worker is reported
///    (detached) instead of hanging the engine forever.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_RUNTIME_THREADPOOL_H
#define COMMSET_RUNTIME_THREADPOOL_H

#include "commset/Runtime/FaultInjector.h"
#include "commset/Trace/Trace.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace commset {

/// Stable display name for a logical worker: "commset-w<N>". Used for OS
/// thread names, trace tracks and watchdog diagnostics, so every layer
/// attributes work to the same small integer id.
std::string workerName(unsigned Worker);

/// Names the calling OS thread workerName(Worker) where the platform
/// supports it (pthread_setname_np); no-op elsewhere.
void setCurrentWorkerThreadName(unsigned Worker);

/// Runs Tasks[i] on its own thread; returns after all complete.
inline void runParallel(const std::vector<std::function<void()>> &Tasks) {
  if (Tasks.empty())
    return;
  std::vector<std::thread> Threads;
  Threads.reserve(Tasks.size() - 1);
  for (size_t I = 1; I < Tasks.size(); ++I)
    Threads.emplace_back([&Tasks, I] {
      setCurrentWorkerThreadName(static_cast<unsigned>(I));
      trace::emit(trace::EventKind::TaskDispatch, static_cast<uint32_t>(I));
      Tasks[I]();
      trace::emit(trace::EventKind::TaskComplete, static_cast<uint32_t>(I));
    });
  // Task 0 runs inline on the caller, which keeps its own thread name.
  trace::emit(trace::EventKind::TaskDispatch, 0);
  Tasks[0]();
  trace::emit(trace::EventKind::TaskComplete, 0);
  for (std::thread &T : Threads)
    T.join();
}

/// Shared cancellation flag + per-worker heartbeat counters for one
/// supervised parallel region. Heartbeat slots are cache-line padded and
/// single-writer, so a checkpoint costs one relaxed load and one relaxed
/// store — cheap enough for every loop iteration.
class RegionControl {
public:
  static constexpr unsigned MaxWorkers = 64;

  /// Worker-side progress tick; call at iteration boundaries.
  void heartbeat(unsigned Worker) {
    auto &Slot = Slots[Worker % MaxWorkers].Beats;
    Slot.store(Slot.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  }

  /// Supervisor-side global progress counter (sum of all heartbeats).
  uint64_t beats() const {
    uint64_t Sum = 0;
    for (const auto &S : Slots)
      Sum += S.Beats.load(std::memory_order_relaxed);
    return Sum;
  }

  void cancel() { Cancel.store(true, std::memory_order_release); }
  bool cancelled() const { return Cancel.load(std::memory_order_acquire); }

private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> Beats{0};
  };
  Slot Slots[MaxWorkers];
  alignas(64) std::atomic<bool> Cancel{false};
};

/// What happened to a supervised region, reported to the degradation
/// machinery in the executors / Runner.
struct SupervisedReport {
  bool Faulted = false;              ///< Some worker raised a RegionFault.
  FaultKind Kind = FaultKind::None;  ///< Primary fault (non-Cancelled wins).
  unsigned FaultThread = 0;
  std::string Detail;
  bool WatchdogTripped = false;      ///< Supervisor saw a global stall.
  std::vector<unsigned> StalledWorkers; ///< Unfinished workers at the trip.
  bool AllJoined = true;             ///< False when a worker was abandoned.
};

/// Resilient fork-join. Runs every task on its own thread while a
/// supervisor watches RegionControl for progress. On a worker fault or a
/// stall of WatchdogStallMs with no heartbeat/completion anywhere, the
/// region is cancelled (Control.cancel() plus the caller's CancelAll hook,
/// which e.g. poisons platform queues). Workers then get JoinGraceMs of
/// post-cancel quiet time to unwind; any that do not are detached and
/// reported via AllJoined=false rather than hung on.
SupervisedReport
runParallelSupervised(const std::vector<std::function<void()>> &Tasks,
                      RegionControl &Control, uint64_t WatchdogStallMs,
                      uint64_t JoinGraceMs,
                      const std::function<void()> &CancelAll);

} // namespace commset

#endif // COMMSET_RUNTIME_THREADPOOL_H
