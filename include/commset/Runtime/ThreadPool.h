//===- ThreadPool.h - Simple fork-join worker pool ---------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal fork-join helper: runs N tasks on N threads and joins. The
/// parallel executors spawn one worker per DOALL thread / pipeline stage,
/// matching the paper's static thread assignment.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_RUNTIME_THREADPOOL_H
#define COMMSET_RUNTIME_THREADPOOL_H

#include <functional>
#include <thread>
#include <vector>

namespace commset {

/// Runs Tasks[i] on its own thread; returns after all complete.
inline void runParallel(const std::vector<std::function<void()>> &Tasks) {
  if (Tasks.empty())
    return;
  std::vector<std::thread> Threads;
  Threads.reserve(Tasks.size() - 1);
  for (size_t I = 1; I < Tasks.size(); ++I)
    Threads.emplace_back(Tasks[I]);
  Tasks[0]();
  for (std::thread &T : Threads)
    T.join();
}

} // namespace commset

#endif // COMMSET_RUNTIME_THREADPOOL_H
