//===- Admission.h - commsetd overload admission control --------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Admission control for commsetd: a token bucket bounding sustained
/// request rate plus a queue-depth gate bounding in-flight work. Requests
/// past either limit are shed *explicitly* (REJECTED_OVERLOAD) at the edge
/// instead of queueing without bound — under overload the server's p99 for
/// accepted jobs stays near the uncontended p99 because the queue can
/// never grow past MaxQueueDepth (the robustness headline of DESIGN.md §7).
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_SERVE_ADMISSION_H
#define COMMSET_SERVE_ADMISSION_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace commset {
namespace serve {

struct AdmissionConfig {
  /// Sustained RUN-requests/second refill rate. 0 disables the bucket
  /// (queue depth still gates).
  double RatePerSec = 0.0;
  /// Bucket capacity: how far a burst may overshoot the sustained rate.
  double Burst = 16.0;
  /// Maximum jobs queued for execution; a request arriving at a full
  /// queue is shed regardless of tokens.
  size_t MaxQueueDepth = 32;
};

class AdmissionController {
public:
  explicit AdmissionController(const AdmissionConfig &Config);

  /// Decision for one RUN request given the execution queue's current
  /// depth. Thread-safe; counts every decision.
  bool admit(size_t QueueDepth);

  uint64_t admitted() const {
    return Admitted.load(std::memory_order_relaxed);
  }
  uint64_t shed() const { return Shed.load(std::memory_order_relaxed); }
  /// Sheds attributed to a full queue (the rest were an empty bucket).
  uint64_t shedQueueFull() const {
    return ShedQueue.load(std::memory_order_relaxed);
  }

  const AdmissionConfig &config() const { return Config; }

private:
  AdmissionConfig Config;
  std::mutex M;           ///< Guards the bucket state below.
  double Tokens;          ///< Current bucket level.
  uint64_t LastRefillNs;  ///< steadyNowNs() of the last refill.
  std::atomic<uint64_t> Admitted{0};
  std::atomic<uint64_t> Shed{0};
  std::atomic<uint64_t> ShedQueue{0};
};

} // namespace serve
} // namespace commset

#endif // COMMSET_SERVE_ADMISSION_H
