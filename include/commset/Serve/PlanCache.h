//===- PlanCache.h - Compiled-plan LRU with single-flight -------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// commsetd's compiled-plan cache. A job (source or workload + plan
/// options) is parsed, analyzed and planned once per unique cache key;
/// concurrent identical jobs collapse onto one compile (single-flight) and
/// the rest wait for its result. Ready entries live in a bounded LRU;
/// compile *failures* are never cached, so a transient failure (e.g. an
/// injected CompileFail) cannot poison future requests.
///
/// Each entry carries a CircuitBreaker: a plan that keeps faulting at run
/// time is quarantined (requests run the always-applicable sequential
/// scheme, reported DEGRADED) until a periodic probe succeeds. Breaker
/// decisions are count-based, not clock-based, so fault sweeps replay
/// deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_SERVE_PLANCACHE_H
#define COMMSET_SERVE_PLANCACHE_H

#include "commset/Driver/Runner.h"
#include "commset/Exec/JitBackend.h"
#include "commset/Serve/Protocol.h"

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace commset {
namespace serve {

/// Count-based circuit breaker over one compiled plan.
///
/// Closed: parallel runs allowed. After FailThreshold *consecutive*
/// parallel faults the breaker Opens: requests are served by the
/// sequential scheme without touching the faulting plan. Every
/// ProbeAfterSkips-th Open request is let through as a HalfOpen probe;
/// a successful probe Closes the breaker, a faulting one re-Opens it.
class CircuitBreaker {
public:
  enum class State { Closed, Open, HalfOpen };

  explicit CircuitBreaker(unsigned FailThreshold = 3,
                          unsigned ProbeAfterSkips = 4)
      : FailThreshold(FailThreshold ? FailThreshold : 1),
        ProbeAfterSkips(ProbeAfterSkips ? ProbeAfterSkips : 1) {}

  /// One request's routing decision: true = run the parallel plan (and
  /// report the outcome back), false = quarantined, run sequential.
  bool allowParallel();
  void onParallelSuccess();
  void onParallelFault();

  State state() const;
  uint64_t trips() const;    ///< Closed->Open transitions.
  uint64_t skips() const;    ///< Requests routed sequential while Open.

private:
  const unsigned FailThreshold;
  const unsigned ProbeAfterSkips;
  mutable std::mutex M;
  State St = State::Closed;
  unsigned ConsecutiveFaults = 0;
  unsigned SkipsSinceOpen = 0;
  uint64_t Trips = 0;
  uint64_t Skips = 0;
};

/// One compiled + planned job, shared by every request that hits its key.
/// Immutable after construction except for the breaker (its own lock).
struct CompiledJob {
  std::unique_ptr<Compilation> C;
  std::unique_ptr<Compilation::LoopTarget> T;
  std::vector<SchemeReport> Schemes;
  const SchemeReport *Chosen = nullptr;     ///< The requested scheme.
  const SchemeReport *Sequential = nullptr; ///< Always-applicable fallback.
  /// Native code for the job's module when the request asked for
  /// backend:jit (null otherwise). Owned here so the code pages live
  /// exactly as long as the cached plan that runs them.
  std::unique_ptr<JitBackend> Jit;
  CircuitBreaker Breaker;

  CompiledJob(unsigned BreakerFailThreshold, unsigned BreakerProbeAfterSkips)
      : Breaker(BreakerFailThreshold, BreakerProbeAfterSkips) {}
};

class PlanCache {
public:
  struct Result {
    std::shared_ptr<CompiledJob> Job; ///< Null on failure.
    bool CacheHit = false;            ///< True also for single-flight waiters.
    std::string Error;                ///< Compile/analyze/plan failure text.
  };

  struct Stats {
    uint64_t Hits = 0;     ///< Ready hits + single-flight waits.
    uint64_t Misses = 0;   ///< Lookups that started a compile.
    uint64_t Compiles = 0; ///< Compiles that ran (== Misses).
    uint64_t CompileFailures = 0;
    uint64_t Evictions = 0;
    uint64_t BreakerTrips = 0; ///< Summed over live entries.
    uint64_t BreakerSkips = 0; ///< Summed over live entries.
    size_t Size = 0;           ///< Ready entries currently cached.
  };

  /// \p Capacity bounds Ready entries (>= 1). Breaker thresholds seed
  /// every entry's CircuitBreaker.
  explicit PlanCache(size_t Capacity, unsigned BreakerFailThreshold = 3,
                     unsigned BreakerProbeAfterSkips = 4);

  /// Looks up \p R's cache key, compiling on miss (single-flight: one
  /// compile per key, concurrent requesters block until it resolves).
  /// \p Faults may inject FaultKind::CompileFail (transient; not cached).
  Result getOrCompile(const RunRequest &R, FaultInjector *Faults = nullptr);

  Stats stats() const;

private:
  struct Node {
    enum class St { Compiling, Ready, Failed };
    St State = St::Compiling;
    std::shared_ptr<CompiledJob> Job;
    std::string Error;
    std::condition_variable Cv; ///< Waited with the cache mutex.
    std::list<std::string>::iterator LruIt;
    bool InLru = false;
  };

  /// The actual compile (no cache lock held).
  static Result compileJob(const RunRequest &R, FaultInjector *Faults,
                           unsigned BreakerFailThreshold,
                           unsigned BreakerProbeAfterSkips);

  const size_t Capacity;
  const unsigned BreakerFailThreshold;
  const unsigned BreakerProbeAfterSkips;
  mutable std::mutex M;
  std::unordered_map<std::string, std::shared_ptr<Node>> Map;
  std::list<std::string> Lru; ///< Front = most recently used key.
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t CompileFailures = 0;
  uint64_t Evictions = 0;
};

} // namespace serve
} // namespace commset

#endif // COMMSET_SERVE_PLANCACHE_H
