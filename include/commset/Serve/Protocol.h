//===- Protocol.h - commsetd wire protocol (CSD1) ---------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The commsetd wire protocol. One frame per message, both directions:
///
///   CSD1 <KIND> <BODYLEN>\n
///   <BODYLEN body bytes>
///
/// Client->server KIND is a request type (RUN, STATS, PING); server->client
/// KIND is a response status (OK, DEGRADED, REJECTED_OVERLOAD,
/// DEADLINE_EXCEEDED, BAD_REQUEST, COMPILE_ERROR, INTERNAL_ERROR). Bodies
/// are "key:value" lines; a RUN body may end with a "source:" line after
/// which the remainder of the body is raw CSet-C text.
///
/// Everything in this header is socket-free and allocation-bounded so the
/// decoder can be driven byte-by-byte by tests and the commsetd --fuzz
/// harness: a hostile peer can produce a ParseError, never a crash or an
/// unbounded buffer (MaxBodyBytes caps every frame).
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_SERVE_PROTOCOL_H
#define COMMSET_SERVE_PROTOCOL_H

#include "commset/Exec/ExecPlatform.h"
#include "commset/Runtime/Sched.h"
#include "commset/Transform/Planner.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace commset {
namespace serve {

/// Hard cap on one frame's body; a header announcing more is a protocol
/// error (shed before buffering, so hostile lengths cannot balloon memory).
constexpr size_t MaxBodyBytes = size_t(1) << 20;
/// Hard cap on the header line (magic + kind + length + newline).
constexpr size_t MaxHeaderBytes = 96;

enum class MsgType { Run, Stats, Ping };

enum class RespStatus : unsigned {
  Ok = 0,            ///< Requested plan ran to completion.
  Degraded,          ///< Sequential fallback / open breaker; result valid.
  RejectedOverload,  ///< Shed by the admission controller; not executed.
  DeadlineExceeded,  ///< Budget ran out (queued or mid-region); no result.
  BadRequest,        ///< Malformed frame or RUN body.
  CompileError,      ///< Parse/sema/plan failure for the submitted job.
  InternalError,     ///< Server-side failure; no trustworthy result.
};
constexpr unsigned NumRespStatuses =
    static_cast<unsigned>(RespStatus::InternalError) + 1;

const char *msgTypeName(MsgType T);
bool msgTypeFromName(const std::string &Name, MsgType &Out);
const char *respStatusName(RespStatus S);
bool respStatusFromName(const std::string &Name, RespStatus &Out);

/// One decoded RUN body. Exactly one of WorkloadName / Source is set.
struct RunRequest {
  std::string WorkloadName; ///< One of the eight fig6 workloads.
  std::string Variant;      ///< Workload source variant ("", noself, plain).
  std::string Source;       ///< Inline CSet-C program (alternative to the
                            ///< workload form; executed with the standard
                            ///< serve natives work/record).
  std::string Entry = "run";    ///< Loop function for inline source.
  std::string Scheme = "best";  ///< best | doall | dswp | psdswp | seq.
  SyncMode Sync = SyncMode::Mutex;
  SchedPolicy Sched = SchedPolicy::Guided;
  unsigned Threads = 4;
  int Scale = 0;           ///< 0 = workload default.
  uint64_t DeadlineMs = 0; ///< 0 = server default budget.
  /// Execution backend ("backend:" key, interp | jit). Jit entries carry
  /// the compiled code in their CompiledJob, so the backend is part of the
  /// cache key.
  ExecBackendKind Backend = ExecBackendKind::Interp;

  /// Stable plan-cache key: everything compilation/planning depends on
  /// (job identity, scheme, sync, sched, threads, backend) and nothing
  /// execution-only (scale, deadline).
  std::string cacheKey() const;
};

/// 64-bit FNV-1a, the source-hash half of RunRequest::cacheKey().
uint64_t fnv1a64(const std::string &S);

/// One decoded frame. Kind is the raw token from the header ("RUN",
/// "OK", ...); callers map it with msgTypeFromName / respStatusFromName.
struct Frame {
  std::string Kind;
  std::string Body;
};

/// Incremental frame decoder. Feed arbitrary byte chunks; poll next().
/// After an Error the reader is poisoned (the stream has lost framing) and
/// every further next() reports the same error; the connection must close.
class FrameReader {
public:
  enum class Status { NeedMore, Ready, Error };

  void feed(const char *Data, size_t N) { Buf.append(Data, N); }

  /// Extracts the next complete frame into \p Out. On Error, \p ErrOut
  /// (optional) receives a one-line reason.
  Status next(Frame &Out, std::string *ErrOut = nullptr);

  size_t buffered() const { return Buf.size(); }

private:
  std::string Buf;
  bool Poisoned = false;
  std::string ErrText;
};

/// Parses one "CSD1 <KIND> <LEN>" header line (no trailing newline).
bool parseFrameHeader(const std::string &Line, std::string &KindOut,
                      size_t &LenOut, std::string *ErrOut = nullptr);

/// Parses a RUN body into \p Out. Unknown keys are errors (catching client
/// typos beats silently running the wrong job).
bool parseRunRequest(const std::string &Body, RunRequest &Out,
                     std::string *ErrOut = nullptr);

/// Serializes one frame: header line + body.
std::string formatFrame(const std::string &Kind, const std::string &Body);

/// Serializes a RUN request body (the inverse of parseRunRequest).
std::string formatRunRequest(const RunRequest &R);

/// Serializes a response frame whose body is "key:value" lines. Values are
/// newline-sanitized so one pair can never smuggle extra lines.
std::string
formatResponse(RespStatus S,
               const std::vector<std::pair<std::string, std::string>> &Kv);

/// Parses a "key:value"-lines body (responses, STATS) into pairs.
std::vector<std::pair<std::string, std::string>>
parseKvBody(const std::string &Body);

} // namespace serve
} // namespace commset

#endif // COMMSET_SERVE_PROTOCOL_H
