//===- Server.h - commsetd compile-and-execute service ----------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The commsetd server: a long-running plain-TCP (loopback) service that
/// accepts CSD1-framed CSet-C jobs from many concurrent clients, compiles
/// each unique job once through the PlanCache, and executes on the
/// process-wide persistent WorkerPool. Designed crash-only around hostile
/// input and overload:
///
///  - Admission first: every RUN passes the token-bucket + queue-depth
///    controller; overflow is shed with an explicit REJECTED_OVERLOAD
///    reply, never an unbounded queue.
///  - Deadlines: every admitted job carries a wall-clock budget. A job
///    still queued at its deadline is expired without executing; one
///    mid-region rides the resilience cancellation path (RunStatus::
///    DeadlineExceeded). Either way the client gets DEADLINE_EXCEEDED.
///  - Degradation: worker faults reuse runFunctionResilient's sequential
///    fallback (DEGRADED, result still correct); repeatedly-faulting
///    plans are quarantined by the per-plan circuit breaker.
///  - Crash-only connections: malformed or truncated frames, oversize
///    bodies, slow clients and mid-request disconnects are confined to
///    their connection handler; the listener and executor never die.
///
/// One executor thread drains the job queue: the WorkerPool serializes
/// parallel regions anyway, so more executors would only add queueing
/// ambiguity. Concurrency lives in the connection handlers (parsing,
/// cache waits, replies) and inside each region's workers.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_SERVE_SERVER_H
#define COMMSET_SERVE_SERVER_H

#include "commset/Serve/Admission.h"
#include "commset/Serve/PlanCache.h"
#include "commset/Serve/Protocol.h"
#include "commset/Trace/Metrics.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace commset {
namespace serve {

struct ServerConfig {
  uint16_t Port = 0;          ///< 0 = ephemeral (read back via port()).
  unsigned MaxConnections = 64;
  size_t CacheCapacity = 16;
  AdmissionConfig Admission;
  uint64_t DefaultDeadlineMs = 2000; ///< Budget when the request has none.
  uint64_t MaxDeadlineMs = 10000;    ///< Requested budgets are clamped.
  uint64_t RecvTimeoutMs = 2000;     ///< Idle-read cutoff per connection
                                     ///< (slow-client guard).
  unsigned BreakerFailThreshold = 3;
  unsigned BreakerProbeAfterSkips = 4;
  FaultInjector *Faults = nullptr;   ///< Server-path fault injection.
};

/// Monotonic counters + latency percentiles, snapshotted for /stats.
struct ServerStats {
  uint64_t Connections = 0;      ///< Accepted sockets.
  uint64_t ConnectionsShed = 0;  ///< Closed at accept (handler limit).
  uint64_t Requests = 0;         ///< Frames that parsed as a request.
  uint64_t BadFrames = 0;        ///< Protocol errors (connection closed).
  uint64_t Replies[NumRespStatuses] = {}; ///< By RespStatus.
  uint64_t ExpiredInQueue = 0;   ///< Deadline hit before execution began.
  uint64_t InjectedDisconnects = 0;
  uint64_t InjectedSlowClient = 0;
  PlanCache::Stats Cache;
  uint64_t Admitted = 0;
  uint64_t Shed = 0;
  uint64_t ShedQueueFull = 0;
  size_t QueueDepth = 0;     ///< At snapshot time.
  size_t MaxQueueDepth = 0;  ///< High-water mark.
  /// Admission-to-reply latency of admitted requests, ns.
  uint64_t LatencyCount = 0;
  uint64_t LatencyP50Ns = 0;
  uint64_t LatencyP95Ns = 0;
  uint64_t LatencyP99Ns = 0;
  uint64_t LatencyMaxNs = 0;
};

class Server {
public:
  explicit Server(const ServerConfig &Config);
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds 127.0.0.1:<Port>, spawns the listener and executor. False (and
  /// \p Err) on socket failure.
  bool start(std::string *Err = nullptr);

  /// Stops accepting, fails pending jobs, joins every thread. Idempotent.
  void stop();

  uint16_t port() const { return BoundPort; }
  bool running() const { return Running.load(std::memory_order_acquire); }

  ServerStats stats() const;
  /// The STATS response body: stats() as "key:value" lines.
  std::string statsText() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
  std::atomic<bool> Running{false};
  uint16_t BoundPort = 0;
};

/// Minimal blocking client for tools, benches and tests. Not thread-safe.
class SyncClient {
public:
  SyncClient() = default;
  ~SyncClient();
  SyncClient(const SyncClient &) = delete;
  SyncClient &operator=(const SyncClient &) = delete;

  bool connect(uint16_t Port, std::string *Err = nullptr);
  void close();
  bool connected() const { return Fd >= 0; }

  /// Sends one request frame and blocks for the response frame.
  bool request(MsgType Type, const std::string &Body, RespStatus &StatusOut,
               std::string &BodyOut, std::string *Err = nullptr,
               uint64_t TimeoutMs = 30000);

  /// Writes raw bytes (malformed-input tests). Returns false on error.
  bool sendRaw(const std::string &Bytes);

  /// Reads one response frame (after sendRaw of a valid request).
  bool recvResponse(RespStatus &StatusOut, std::string &BodyOut,
                    std::string *Err = nullptr, uint64_t TimeoutMs = 30000);

private:
  int Fd = -1;
  FrameReader Reader;
};

} // namespace serve
} // namespace commset

#endif // COMMSET_SERVE_SERVER_H
