//===- SimPlatform.h - Discrete-event multicore simulator -------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The performance substrate substituting for the paper's 8-core Xeon
/// (this host has a single core, so wall-clock speedups are unobtainable).
/// Worker threads execute functionally as usual but carry *virtual clocks*:
///
///  * every interpreted operation and native kernel charges its declared
///    virtual cost;
///  * queue sends stamp values with sender-time + communication latency;
///    receives advance the receiver past the stamp (pipeline stalls and
///    backpressure emerge naturally);
///  * COMMSET locks serialize in virtual time, with distinct hand-off
///    penalties for mutexes (sleep/wakeup) and spin locks - reproducing the
///    paper's spin-beats-mutex-under-contention observation;
///  * TM members detect conflicts via per-rank commit timestamps and pay
///    their wasted work again on abort;
///  * serialized native resources (file system, console) model the internal
///    locking of thread-safe libraries ("Lib" mode).
///
/// Speedup = sequential virtual time / max worker virtual time. Absolute
/// numbers are model outputs; the *shape* of the paper's figures (who wins,
/// where curves bend) comes from the same mechanisms the paper measures.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_SIM_SIMPLATFORM_H
#define COMMSET_SIM_SIMPLATFORM_H

#include "commset/Exec/ExecPlatform.h"
#include "commset/Transform/ParallelPlan.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace commset {

/// Calibration constants (nanoseconds) for the simulated multicore.
struct SimParams {
  uint64_t CommLatency = 120;   // Inter-core queue latency.
  uint64_t SendOverhead = 35;   // Producer-side queue cost.
  uint64_t RecvOverhead = 35;   // Consumer-side queue cost.
  uint64_t LockAcquire = 20;    // Uncontended acquire.
  uint64_t LockRelease = 12;
  uint64_t MutexHandoff = 1800; // Contended mutex sleep/wakeup penalty.
  uint64_t SpinHandoff = 120;   // Contended spin-lock hand-off.
  uint64_t TmBegin = 50;
  uint64_t TmCommit = 90;
  unsigned TmMaxRetries = 16;
  uint64_t ResourceHandoff = 250; // Thread-safe library internal lock.
  /// Entries per inter-stage queue (the paper's software queues hold
  /// thousands of entries). Backpressure matters for the model: a cheap
  /// upstream stage may only run this far ahead, keeping its virtual clock
  /// coupled to the pipeline's real rate — but the window must comfortably
  /// exceed the items one iteration produces, or stages lock-step.
  unsigned QueueCapacity = 1024;
  /// Cost of one dynamic-scheduling chunk claim (a fetch-add on a shared
  /// cache line plus the surrounding branchwork).
  uint64_t ChunkClaim = 40;
  /// Privatized (SyncMode::Priv) replica access: a read-modify-write of a
  /// worker-private cache line — no coherence traffic, no hand-off, far
  /// below even an uncontended LockAcquire.
  uint64_t PrivTouch = 4;
  /// Per (slot, worker) contribution of the region-exit merge, charged to
  /// the master: the replicas' lines migrate to the master's cache once.
  uint64_t PrivMergeSlot = 30;
};

class SimPlatform : public ExecPlatform {
public:
  SimPlatform(unsigned NumThreads, SyncMode Mode, SimParams Params = {});

  void send(unsigned From, unsigned To, RtValue Value) override;
  RtValue recv(unsigned From, unsigned To) override;
  void charge(unsigned Thread, uint64_t Ns) override;
  void lockEnter(unsigned Thread,
                 const std::vector<unsigned> &Ranks) override;
  void lockExit(unsigned Thread,
                const std::vector<unsigned> &Ranks) override;
  void txBegin(unsigned Thread) override;
  bool txCommit(unsigned Thread, const std::vector<unsigned> &Ranks,
                uint64_t MemberCostNs) override;
  void resourceEnter(unsigned Thread, const std::string &Name) override;
  void resourceExit(unsigned Thread, const std::string &Name) override;
  void threadDone(unsigned Thread) override;
  uint64_t claimIterations(unsigned Thread, SchedPolicy P, unsigned Threads,
                           uint64_t &Count) override;
  void regionBegin(unsigned MasterThread) override;
  void regionEnd(unsigned MasterThread) override;
  uint64_t elapsedNs() const override;

  // Privatized accesses never enter the lock/TM gate: a replica touch is
  // pure local compute, so charging it keeps the virtual clocks honest
  // without serializing anything — that absence of serialization *is* the
  // modeled win. The merge bills the whole fan-in to the master at exit.
  void onPrivLoad(unsigned Thread, unsigned Slot) override {
    charge(Thread, Params.PrivTouch);
  }
  void onPrivStore(unsigned Thread, unsigned Slot) override {
    charge(Thread, Params.PrivTouch);
  }
  void onPrivMerge(unsigned MasterThread, uint64_t Slots,
                   uint64_t Workers) override {
    charge(MasterThread, Params.PrivMergeSlot * Slots * Workers);
  }

  uint64_t threadTimeNs(unsigned Thread) const {
    return VTime[Thread].load(std::memory_order_relaxed);
  }
  uint64_t tmAborts() const { return TmAbortCount.load(); }
  uint64_t lockContentions() const { return ContentionCount.load(); }

private:
  struct LockState {
    bool Held = false;
    uint64_t FreeAt = 0;
    uint64_t LastCommit = 0; // For TM conflict windows.
    /// Largest request time processed so far: a smaller new request means
    /// an event from this thread's virtual future was already processed
    /// (possible when blocked threads are excluded from the gate); such
    /// requests are granted at their own time without contention charges.
    uint64_t LastRequest = 0;
    /// Pending requests ordered by (request virtual time, thread): grants
    /// follow virtual-time order, not host scheduling order.
    std::set<std::pair<uint64_t, unsigned>> Waiters;
  };

  /// Thread scheduling states for the conservative virtual-time gate.
  enum class TState : uint8_t { Inactive, Running, Blocked, Done };

  /// Blocks (under \p Guard) until \p Thread holds the minimal virtual
  /// clock among Running threads (ties broken by id): contention decisions
  /// (locks, TM commits, resources) must be processed in virtual-time
  /// order, or the single-core host's real schedule would leak into the
  /// model.
  void gate(unsigned Thread, std::unique_lock<std::mutex> &Guard);

  void acquireLockLike(unsigned Thread, LockState &L, uint64_t Handoff,
                       std::unique_lock<std::mutex> &Guard);

  unsigned NumThreads;
  SyncMode Mode;
  SimParams Params;

  std::vector<std::atomic<uint64_t>> VTime;
  std::atomic<uint64_t> TmAbortCount{0};
  std::atomic<uint64_t> ContentionCount{0};

  std::mutex M;
  std::condition_variable CV;
  /// Per ordered pair (From * NumThreads + To).
  struct Channel {
    std::deque<std::pair<uint64_t, RtValue>> Items; // (ready time, value).
    uint64_t Pushed = 0;
    uint64_t Popped = 0;
    /// Virtual pop times, indexed from PopBase, for backpressure waits.
    std::deque<uint64_t> PopTimes;
    uint64_t PopBase = 0;
  };
  std::vector<Channel> Chans;
  std::map<unsigned, LockState> Locks;
  std::map<std::string, LockState> Resources;
  std::vector<uint64_t> TxStart;
  std::vector<unsigned> TxRetries;
  std::vector<TState> State;
};

} // namespace commset

#endif // COMMSET_SIM_SIMPLATFORM_H
