//===- Casting.h - LLVM-style isa/cast/dyn_cast ------------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal reimplementation of LLVM's opt-in RTTI templates. Classes
/// participate by providing `static bool classof(const Base *)`.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_SUPPORT_CASTING_H
#define COMMSET_SUPPORT_CASTING_H

#include <cassert>

namespace commset {

template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace commset

#endif // COMMSET_SUPPORT_CASTING_H
