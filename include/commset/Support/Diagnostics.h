//===- Diagnostics.h - Error reporting for the COMMSET compiler -*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine. The frontend and the COMMSET passes report
/// errors and warnings here instead of aborting, so tools and tests can
/// inspect all problems found in one run.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_SUPPORT_DIAGNOSTICS_H
#define COMMSET_SUPPORT_DIAGNOSTICS_H

#include "commset/Support/SourceLoc.h"

#include <string>
#include <vector>

namespace commset {

/// Severity of a reported diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported problem: severity, location, and rendered message.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;

  /// Renders as "line:col: error: message".
  std::string str() const;
};

/// Collects diagnostics produced by a compilation.
///
/// The engine never terminates the program; callers check hasErrors() at
/// phase boundaries and stop compiling when it returns true.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Concatenates all diagnostics, one per line. Useful in tests and tool
  /// error output.
  std::string str() const;

  /// \returns true if any diagnostic message contains \p Needle. Intended
  /// for tests asserting that a specific error fired.
  bool contains(const std::string &Needle) const;

  void clear();

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace commset

#endif // COMMSET_SUPPORT_DIAGNOSTICS_H
