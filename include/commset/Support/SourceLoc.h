//===- SourceLoc.h - Source locations for diagnostics -----------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight line/column source locations used by the CSet-C frontend and
/// the diagnostic engine.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_SUPPORT_SOURCELOC_H
#define COMMSET_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace commset {

/// A position in a CSet-C source buffer. Lines and columns are 1-based; the
/// invalid location is (0, 0).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &RHS) const = default;

  /// Renders the location as "line:col" ("<unknown>" when invalid).
  std::string str() const;
};

} // namespace commset

#endif // COMMSET_SUPPORT_SOURCELOC_H
