//===- StringUtils.h - Small string helpers ----------------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared by the frontend, printers and the bench harness.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_SUPPORT_STRINGUTILS_H
#define COMMSET_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace commset {

/// Splits \p Text on \p Sep, keeping empty fields.
std::vector<std::string> splitString(std::string_view Text, char Sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trimString(std::string_view Text);

/// \returns true if \p Text starts with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace commset

#endif // COMMSET_SUPPORT_STRINGUTILS_H
