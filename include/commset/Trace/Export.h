//===- Export.h - CommTrace exporters and trace validation ------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trace exporters: Chrome trace_event JSON (loadable in chrome://tracing
/// or Perfetto) and a plain-text per-run profile report. Also an in-repo
/// validator for the Chrome format — well-formed JSON, monotone per-thread
/// timestamps, balanced B/E pairs — used by tests and by commcheck's
/// trace-smoke path so a malformed trace fails loudly instead of silently
/// producing an unloadable file.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_TRACE_EXPORT_H
#define COMMSET_TRACE_EXPORT_H

#include "commset/Trace/Metrics.h"
#include "commset/Trace/Trace.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace commset {
namespace trace {

/// Renders \p Events as a Chrome trace_event JSON object
/// ({"traceEvents": [...], ...}). Region/task/member events become B/E
/// duration spans (repaired to stay balanced per thread even when a fault
/// truncated the run); everything else becomes thread-scoped instants with
/// per-kind args. \p S resolves interned names for span labels.
std::string chromeTraceJson(const std::vector<TraceEvent> &Events,
                            const TraceSession &S);

/// Writes chromeTraceJson() to \p Path. \returns false and sets \p Error on
/// I/O failure.
bool writeChromeTraceFile(const std::vector<TraceEvent> &Events,
                          const TraceSession &S, const std::string &Path,
                          std::string *Error = nullptr);

/// Validates a Chrome trace: parses the JSON (full parse, not a regex),
/// checks a non-empty traceEvents array whose entries carry name/ph/ts/tid,
/// per-tid non-decreasing timestamps, and per-tid balanced B/E nesting.
/// \returns true when valid; otherwise fills \p Error.
bool validateChromeTrace(const std::string &Json, std::string *Error);

/// Human-readable profile report: events/drops, region time, per-worker
/// utilization, per-rank lock contention + wait histogram percentiles,
/// per-set STM abort rates, queue stalls, injected faults, degradations.
void writeProfileReport(const TraceMetrics &M, std::ostream &Os);

/// writeProfileReport into a string.
std::string profileReport(const TraceMetrics &M);

} // namespace trace
} // namespace commset

#endif // COMMSET_TRACE_EXPORT_H
