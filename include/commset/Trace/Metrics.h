//===- Metrics.h - CommTrace drain-time metrics aggregation -----*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drain-time aggregation of a collected trace into counters and
/// fixed-bucket histograms. Nothing here runs on the hot path: the tracer
/// records raw events and this module folds them into per-rank lock stats,
/// per-set STM abort rates, per-queue occupancy/stall stats, per-worker
/// busy/idle time and task latency after the run.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_TRACE_METRICS_H
#define COMMSET_TRACE_METRICS_H

#include "commset/Trace/Trace.h"

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace commset {
namespace trace {

/// Power-of-two bucketed histogram: bucket 0 counts values 0..1, bucket I
/// (I >= 1) counts values in [2^I, 2^(I+1)). Fixed 48 buckets cover the
/// full nanosecond range of interest (~3 days).
class LogHistogram {
public:
  static constexpr unsigned NumBuckets = 48;

  void add(uint64_t V) {
    unsigned B = bucketFor(V);
    ++Buckets[B];
    ++N;
    Total += V;
    if (V > MaxV)
      MaxV = V;
  }

  uint64_t count() const { return N; }
  uint64_t sum() const { return Total; }
  uint64_t max() const { return MaxV; }
  double mean() const { return N ? static_cast<double>(Total) / N : 0.0; }
  uint64_t bucket(unsigned I) const { return I < NumBuckets ? Buckets[I] : 0; }

  /// Inclusive upper bound of bucket \p I (2^(I+1) - 1, saturating).
  static uint64_t bucketUpperBound(unsigned I) {
    return I >= 63 ? UINT64_MAX : (uint64_t(1) << (I + 1)) - 1;
  }

  /// Upper bound of the bucket holding the \p P-th percentile (P in 0..100).
  uint64_t percentileUpperBound(double P) const {
    if (!N)
      return 0;
    uint64_t Need = static_cast<uint64_t>(std::ceil(P / 100.0 * N));
    if (Need == 0)
      Need = 1;
    if (Need > N)
      Need = N;
    uint64_t Seen = 0;
    for (unsigned I = 0; I < NumBuckets; ++I) {
      Seen += Buckets[I];
      if (Seen >= Need)
        return bucketUpperBound(I);
    }
    return MaxV;
  }

  static unsigned bucketFor(uint64_t V) {
    unsigned B = 0;
    while (V > 1 && B + 1 < NumBuckets) {
      V >>= 1;
      ++B;
    }
    return B;
  }

private:
  uint64_t Buckets[NumBuckets] = {};
  uint64_t N = 0;
  uint64_t Total = 0;
  uint64_t MaxV = 0;
};

struct LockRankStats {
  uint64_t Acquires = 0;
  uint64_t Contentions = 0;
  uint64_t WaitNs = 0;
  uint64_t MaxWaitNs = 0;
};

struct StmSetStats {
  std::string Name; ///< Interned member/set name ("" when unresolved).
  uint64_t Begins = 0;
  uint64_t Commits = 0;
  uint64_t Aborts = 0;
  uint64_t Retries = 0;
  uint64_t Exhausts = 0;
  double abortRate() const {
    uint64_t Attempts = Commits + Aborts;
    return Attempts ? static_cast<double>(Aborts) / Attempts : 0.0;
  }
};

struct QueueStats {
  uint64_t Pushes = 0;
  uint64_t Pops = 0;
  uint64_t Blocks = 0;
  uint64_t BlockNs = 0;
  uint64_t Poisons = 0;
  uint64_t MaxOccupancy = 0;
};

struct WorkerStats {
  uint64_t Tasks = 0;
  uint64_t BusyNs = 0; ///< Sum of dispatch->complete spans.
  uint64_t Faulted = 0;
  uint64_t Events = 0; ///< All events attributed to this tid.
  // Dynamic-scheduler activity (DOALL under dynamic/guided policies).
  uint64_t Claims = 0;       ///< ChunkClaim events.
  uint64_t ClaimedIters = 0; ///< Iterations claimed from the counter.
  uint64_t Steals = 0;       ///< Steal events (this tid was the thief).
  uint64_t StolenIters = 0;  ///< Iterations taken from other deques.
  // Privatized-region activity (SyncMode::Priv).
  uint64_t PrivTouches = 0;  ///< Replica accesses served on this worker.
};

/// Replica/merge activity of one privatized global across the run.
struct PrivSlotStats {
  uint64_t Touches = 0; ///< Replica loads + stores, all workers.
  uint64_t Stores = 0;  ///< Replica stores only.
  uint64_t Merges = 0;  ///< Per-worker merge contributions at region exit.
};

/// Everything the profile report prints, in one drain.
struct TraceMetrics {
  uint64_t Events = 0;
  uint64_t Dropped = 0;

  uint64_t Regions = 0;
  uint64_t RegionNs = 0; ///< Sum of region begin->end spans.

  std::map<unsigned, LockRankStats> Locks; ///< Keyed by rank.
  LogHistogram LockWaitNs;

  std::map<uint64_t, StmSetStats> StmSets; ///< Keyed by interned name id.
  uint64_t StmBegins = 0;
  uint64_t StmCommits = 0;
  uint64_t StmAborts = 0;
  uint64_t StmRetries = 0;
  uint64_t StmExhausts = 0;

  std::map<uint64_t, QueueStats> Queues; ///< Keyed by (from<<16|to) id.
  LogHistogram QueueOccupancy;
  uint64_t QueueBlockNs = 0;

  std::map<unsigned, WorkerStats> Workers; ///< Keyed by logical tid.
  LogHistogram TaskNs;

  uint64_t MemberCalls = 0;
  std::map<unsigned, uint64_t> FaultsInjected; ///< FaultKind -> count.
  std::vector<std::pair<unsigned, unsigned>> Degradations; ///< (kind, tid).

  // Privatization (SyncMode::Priv): replica traffic and the merge fan-in.
  uint64_t PrivTouches = 0;
  uint64_t PrivStores = 0;
  uint64_t PrivMerges = 0; ///< (worker, slot) merge contributions.
  std::map<unsigned, PrivSlotStats> PrivSlots; ///< Keyed by global slot.

  // commsetd serving activity (traces taken inside the server).
  uint64_t ServeAdmits = 0;  ///< Requests past the admission controller.
  uint64_t ServeSheds = 0;   ///< Requests shed with REJECTED_OVERLOAD.
  uint64_t ServeReplies = 0; ///< Replies written (all statuses).
  LogHistogram ServeLatencyNs; ///< Admission-to-reply latency.

  uint64_t totalLockContentions() const {
    uint64_t N = 0;
    for (const auto &KV : Locks)
      N += KV.second.Contentions;
    return N;
  }

  uint64_t totalClaims() const {
    uint64_t N = 0;
    for (const auto &KV : Workers)
      N += KV.second.Claims;
    return N;
  }

  uint64_t totalSteals() const {
    uint64_t N = 0;
    for (const auto &KV : Workers)
      N += KV.second.Steals;
    return N;
  }

  /// Load-balance figure for dynamically scheduled regions: max over mean
  /// of per-worker claimed+stolen iterations across workers that claimed
  /// at all. 1.0 is perfect balance; T means one worker claimed
  /// everything. 0 when the trace holds no claims (static policy).
  double claimImbalance() const {
    uint64_t Max = 0, Sum = 0;
    unsigned N = 0;
    for (const auto &KV : Workers) {
      if (!KV.second.Claims)
        continue;
      uint64_t Iters = KV.second.ClaimedIters + KV.second.StolenIters;
      Sum += Iters;
      if (Iters > Max)
        Max = Iters;
      ++N;
    }
    if (!N || !Sum)
      return 0.0;
    return static_cast<double>(Max) * N / static_cast<double>(Sum);
  }
};

/// Folds \p Events (as returned by TraceSession::collect()) into metrics.
/// \p S resolves interned names and supplies the drop count.
TraceMetrics aggregateMetrics(const std::vector<TraceEvent> &Events,
                              const TraceSession &S);

} // namespace trace
} // namespace commset

#endif // COMMSET_TRACE_METRICS_H
