//===- Trace.h - CommTrace low-overhead event tracer ------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CommTrace: per-thread ring-buffer event tracing for the COMMSET runtime
/// (DESIGN.md §"Observability"). The tracer answers *why* a scheme performs
/// the way it does — lock contention, STM abort storms, queue stalls, idle
/// workers — where Figure 6 / Table 2 only say *which* scheme wins.
///
/// Design constraints, in priority order:
///   1. Disabled cost ~ zero: every emit site is one relaxed atomic load
///      and a predictable branch. Compiling with -DCOMMSET_TRACE=0 removes
///      even that.
///   2. No allocation and no locks on the hot path: events go into
///      fixed-capacity per-thread rings sized at enable() time; when a ring
///      fills, new events are counted as dropped, never blocked on.
///   3. Honest accounting: drops are reported, and each ring tolerates the
///      rare foreign writer (e.g. the supervisor poisoning a worker's queue)
///      via a fetch_add slot claim plus a per-slot release/acquire publish
///      flag, so a torn event can never be observed.
///
/// Events are drained after a run with collect(), aggregated into metrics
/// (Trace/Metrics.h) and exported as Chrome trace_event JSON or a text
/// profile report (Trace/Export.h).
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_TRACE_TRACE_H
#define COMMSET_TRACE_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

/// Compile-time toggle: build with -DCOMMSET_TRACE=0 to compile all
/// instrumentation out entirely (the cmake option COMMSET_TRACE=OFF does
/// this). Default is compiled-in but runtime-disabled.
#ifndef COMMSET_TRACE
#define COMMSET_TRACE 1
#endif

namespace commset {
namespace trace {

/// Event taxonomy. The A/B payload meaning is per-kind (documented inline);
/// names are interned strings referenced by id (TraceSession::internName).
enum class EventKind : uint32_t {
  None = 0,
  RegionBegin,   ///< A = Strategy, B = task count. Span open (tid 0).
  RegionEnd,     ///< Span close.
  TaskDispatch,  ///< Worker task starts. Span open on the worker's track.
  TaskComplete,  ///< A = 1 when the task exited via an exception.
  MemberEnter,   ///< A = interned member-name id. Span open.
  MemberExit,    ///< A = interned member-name id. Span close.
  LockContend,   ///< A = rank. The lock was not immediately available.
  LockAcquire,   ///< A = rank, B = wait ns (0 on the untimed fast path).
  LockRelease,   ///< A = rank.
  StmBegin,      ///< A = interned set/member id, B = attempt number.
  StmCommit,     ///< A = interned set/member id, B = attempts used.
  StmAbort,      ///< A = interned set/member id, B = attempts so far.
  StmRetry,      ///< A = interned set/member id, B = failed attempts.
  StmExhaust,    ///< A = interned set/member id, B = attempts at giveup.
  QueuePush,     ///< A = queue id (from<<16|to), B = occupancy after push.
  QueuePop,      ///< A = queue id, B = occupancy after pop.
  QueueBlock,    ///< A = queue id, B = ns spent blocked before success/fail.
  QueuePoison,   ///< A = queue id. Tid = poisoning endpoint, or
                 ///< SpscQueue::PoisonExternalTid for an outside canceller.
  FaultInject,   ///< A = FaultKind that fired at this site.
  Degrade,       ///< A = FaultKind that forced sequential re-execution.
  ChunkClaim,    ///< A = first iteration claimed, B = iterations claimed
                 ///< (0 = the shared counter was already exhausted).
  Steal,         ///< A = victim worker tid, B = iterations stolen.
  PrivTouch,     ///< A = global slot id, B = 1 for a store, 0 for a load.
                 ///< A privatized access served by the worker's replica.
  PrivMerge,     ///< A = global slot id, B = worker whose replica merged.
                 ///< Emitted by the master at region exit, in merge order.
  ServeAdmit,    ///< commsetd admission decision. A = 1 admitted / 0 shed,
                 ///< B = execution queue depth at the decision.
  ServeReply,    ///< commsetd reply sent. A = serve::RespStatus code,
                 ///< B = request latency in ns (admission to reply).
};

constexpr unsigned NumEventKinds =
    static_cast<unsigned>(EventKind::ServeReply) + 1;

const char *eventKindName(EventKind K);

/// One trace record: 32 bytes, fixed layout, no pointers.
struct TraceEvent {
  uint64_t TsNs; ///< Nanoseconds since TraceSession::enable().
  uint32_t Kind; ///< EventKind.
  uint32_t Tid;  ///< Logical worker/thread id (0 = main / worker 0).
  uint64_t A;    ///< Per-kind payload (see EventKind).
  uint64_t B;    ///< Per-kind payload (see EventKind).
};

/// Owns the per-thread rings, the interned-name table and the trace epoch.
/// enable()/disable()/collect() are control-plane calls made outside
/// parallel regions; record() is the data-plane hot path.
class TraceSession {
public:
  static constexpr unsigned MaxRings = 64;

  /// Arms tracing: (re)allocates \p Rings rings of \p CapacityPerThread
  /// slots each and resets the epoch and drop counters. Must not be called
  /// while a traced parallel region is running. Events from logical thread
  /// ids >= Rings land in the last ring (their Tid field stays truthful).
  void enable(size_t CapacityPerThread = 1 << 13, unsigned Rings = 16);

  /// Stops recording. Rings are retained for collect().
  void disable();

  bool active() const;

  /// Drains every published event, sorted by (timestamp, tid). Safe after
  /// disable(); safe concurrently with writers too (a claimed-but-unpublished
  /// slot is simply not visible yet).
  std::vector<TraceEvent> collect() const;

  /// Events lost to full rings since enable().
  uint64_t dropped() const;

  /// Interns \p S and returns its stable id (>= 1). Takes a mutex: callers
  /// cache the id (see Interpreter::traceMemberId) so the hot path never
  /// re-interns.
  uint64_t internName(const std::string &S);

  /// Name for an interned id; "" when unknown.
  std::string nameOf(uint64_t Id) const;

  /// Nanoseconds since enable().
  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Epoch)
            .count());
  }

  /// Hot path: claims a slot in Tid's ring and publishes the event. Lock
  /// free; drops (and counts) the event when the ring is full.
  void record(EventKind K, uint32_t Tid, uint64_t A, uint64_t B);

private:
  struct Slot {
    std::atomic<uint32_t> Ready{0};
    TraceEvent Ev{};
  };
  /// One ring per logical thread. Next is a monotone claim counter, not a
  /// wrap index: claims past Slots.size() are drops. This keeps published
  /// events immutable (readable without racing) at the cost of capping the
  /// trace at ring capacity — profiling wants the *first* window anyway,
  /// and drop counts make the truncation explicit.
  struct Ring {
    std::atomic<uint64_t> Next{0};
    std::atomic<uint64_t> Dropped{0};
    std::vector<Slot> Slots;
  };

  std::vector<std::unique_ptr<Ring>> Rings;
  std::atomic<bool> Active{false};
  std::chrono::steady_clock::time_point Epoch{};

  mutable std::mutex NamesMutex;
  std::unordered_map<std::string, uint64_t> NameIds;
  std::vector<std::string> NamesById;
};

/// Global runtime-enable flag, split from the session object so the
/// disabled emit path is one relaxed load with no function call.
extern std::atomic<uint32_t> GEnabled;

#if COMMSET_TRACE
inline bool enabled() {
  return GEnabled.load(std::memory_order_relaxed) != 0;
}
constexpr bool compiledIn() { return true; }
#else
constexpr bool enabled() { return false; }
constexpr bool compiledIn() { return false; }
#endif

/// The process-wide session. Runner / commcheck / tests arm it around one
/// run at a time; concurrent enables are not supported (nor needed).
TraceSession &session();

/// Emit an event if tracing is compiled in and enabled. The disabled path
/// is a single relaxed load + branch; with COMMSET_TRACE=0 the call
/// disappears entirely.
inline void emit(EventKind K, uint32_t Tid, uint64_t A = 0, uint64_t B = 0) {
  if (enabled())
    session().record(K, Tid, A, B);
}

/// Timestamp helper for duration payloads (lock wait, queue block): returns
/// ns-since-epoch when tracing is live, 0 otherwise so disabled runs never
/// touch the clock.
inline uint64_t nowIfEnabled() {
  return enabled() ? session().nowNs() : 0;
}

} // namespace trace
} // namespace commset

#endif // COMMSET_TRACE_TRACE_H
