//===- ParallelPlan.h - Output of the parallelizing transforms --*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ParallelPlan is the partition the DOALL / DSWP / PS-DSWP transforms
/// produce over the annotated PDG (paper §4.5), consumed by the threaded
/// executor and the multicore simulator:
///
///  * DOALL: every thread runs whole iterations; the canonical induction
///    variable is privatized. Iteration assignment follows the plan's
///    SchedPolicy (Runtime/Sched.h): static round-robin, or dynamic/guided
///    chunks claimed from a shared counter at run time.
///  * DSWP / PS-DSWP: PDG nodes are partitioned into pipeline stages;
///    control (terminators, the induction SCC, the header-condition
///    closure) is replicated into every stage; cross-stage values flow
///    through SPSC queues; a PS-DSWP parallel stage is replicated with a
///    deterministic iteration->replica mapping shaped by the same policy
///    (schedReplicaOf).
///
/// The plan also carries the synchronization engine's decisions: the
/// rank-ordered lock set per COMMSET member and the lock mode (paper §4.6).
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_TRANSFORM_PARALLELPLAN_H
#define COMMSET_TRANSFORM_PARALLELPLAN_H

#include "commset/Analysis/PDG.h"
#include "commset/Analysis/SCC.h"
#include "commset/Runtime/Locks.h"
#include "commset/Runtime/Sched.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace commset {

enum class Strategy { Sequential, Doall, Dswp, PsDswp };

const char *strategyName(Strategy S);

/// Synchronization mode for COMMSET members (paper §4.6). Lib means the
/// members are already thread safe (COMMSETNOSYNC or thread-safe library)
/// so the compiler inserts nothing for them. Priv privatizes provably
/// add-reduction globals into per-worker replicas merged at region exit;
/// members the privatization proof cannot cover fall back to rank-ordered
/// mutexes.
enum class SyncMode { Mutex, Spin, Tm, None, Priv };

const char *syncModeName(SyncMode M);

/// Per-member synchronization decision.
struct MemberSyncInfo {
  /// Ascending COMMSET ranks whose locks guard calls to this member.
  std::vector<unsigned> LockRanks;
  /// Member may run as a transaction in TM mode (only touches interpreted
  /// global state).
  bool TmEligible = false;
  /// Member runs lock free against per-worker shadow replicas: every global
  /// it writes is in ParallelPlan::PrivGlobals (provably AddReduction, no
  /// bare reads, no other memory effects). LockRanks stay populated for
  /// calls outside privatized regions.
  bool Privatized = false;
};

struct StagePlan {
  bool Parallel = false;
  /// Replication factor (1 for sequential stages).
  unsigned Replicas = 1;
  /// PDG node indices owned by this stage (excluding replicated nodes).
  std::set<unsigned> OwnedNodes;
  /// Static cost estimate (ns per iteration) for balancing/estimation.
  double CostEstimate = 0.0;
};

struct ParallelPlan {
  Strategy Kind = Strategy::Sequential;
  Function *F = nullptr;
  const Loop *L = nullptr;
  unsigned NumThreads = 1;

  // DOALL specifics.
  unsigned InductionLocal = ~0u;
  int64_t InductionStep = 0;

  // Pipeline specifics.
  std::vector<StagePlan> Stages;
  /// Node indices executed by every stage thread.
  std::set<unsigned> ReplicatedNodes;
  /// True when the loop-continuation condition is computed by replicated
  /// instructions (canonical loops); otherwise the owning stage broadcasts
  /// it every iteration.
  bool ReplicatedControl = false;
  /// Per PDG node: bitmask of stages owning a memory-dependent successor.
  /// The owner sends a synchronization token at the node's trace position;
  /// the consuming stage pops it there, ordering cross-stage memory effects
  /// through the queue's release/acquire pair.
  std::vector<uint64_t> MemTokenStages;
  /// Per PDG node (StoreLocal): stages owning loads actually reached by the
  /// store (from the PDG's reaching-definition edges). Receivers shadow the
  /// store into their local copy at the store's trace position.
  std::vector<uint64_t> StoreReceiverStages;

  /// Iteration-scheduling policy for DOALL loops and PS-DSWP parallel
  /// stages (Runtime/Sched.h). Guided by default: near-dynamic balancing
  /// on skewed loops at a fraction of the claim traffic.
  SchedPolicy Sched = SchedPolicy::Guided;

  // Synchronization.
  SyncMode Sync = SyncMode::Mutex;
  std::map<std::string, MemberSyncInfo> MemberSync;
  /// Global slots privatized for this plan: the closed set of module
  /// globals written only by Privatized members inside the loop, each
  /// provably an add-reduction. Non-empty iff at least one member is
  /// Privatized (a forced `sync(S, priv)` set privatizes under any Sync).
  std::set<unsigned> PrivGlobals;

  /// Estimated speedup over sequential execution (used by the driver to
  /// pick a scheme; the simulator provides the real numbers).
  double EstimatedSpeedup = 1.0;

  /// Human-readable schedule summary (e.g. "PS-DSWP [S, DOALL(6), S]").
  std::string describe() const;
};

} // namespace commset

#endif // COMMSET_TRANSFORM_PARALLELPLAN_H
