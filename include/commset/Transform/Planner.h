//===- Planner.h - DOALL / DSWP / PS-DSWP transforms --------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallelizing transforms (paper §4.5) over the commutativity-relaxed
/// PDG, plus the synchronization engine (§4.6). Each transform either
/// produces a ParallelPlan or explains why it does not apply:
///
///  * DOALL requires a canonical, replicable induction/exit and no
///    remaining loop-carried dependence outside the induction;
///  * DSWP partitions the DAG-SCC into balanced sequential stages;
///  * PS-DSWP additionally replicates the heaviest carried-free stage.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_TRANSFORM_PLANNER_H
#define COMMSET_TRANSFORM_PLANNER_H

#include "commset/Analysis/Effects.h"
#include "commset/Analysis/SCC.h"
#include "commset/Core/CommSetRegistry.h"
#include "commset/Transform/ParallelPlan.h"

#include <map>
#include <optional>
#include <string>

namespace commset {

struct PlanOptions {
  unsigned NumThreads = 8;
  SyncMode Sync = SyncMode::Mutex;
  /// Iteration-scheduling policy for DOALL loops and PS-DSWP parallel
  /// stages (see Runtime/Sched.h).
  SchedPolicy Sched = SchedPolicy::Guided;
  /// Maximum pipeline depth (the paper's schedules use 2-3 stages).
  unsigned MaxStages = 3;
  /// Per-native-call cost hints (ns) used for stage balancing and speedup
  /// estimation; unlisted natives default to DefaultNativeCost.
  std::map<std::string, double> NativeCostHints;
  double DefaultNativeCost = 500.0;
};

/// Static cost model shared by the planner and the performance estimator.
class CostEstimator {
public:
  CostEstimator(const Module &M, const PlanOptions &Opts);

  /// Estimated cost (ns) of one execution of \p Instr, calls included
  /// (callee bodies estimated with a nesting factor for their loops).
  double nodeCost(const Instruction *Instr) const;

private:
  double functionCost(const Function *F, unsigned Depth) const;

  const PlanOptions &Opts;
  std::map<const Function *, double> FunctionCosts;
};

/// Nodes executed by every pipeline stage / DOALL thread (terminators, the
/// canonical induction SCC, and the header-condition closure when
/// replicable). Sets Plan.ReplicatedControl accordingly.
void computeReplicatedNodes(const PDG &G, ParallelPlan &Plan);

/// Synchronization engine: fills Plan.MemberSync with rank-ordered lock
/// sets and TM eligibility for every COMMSET member (paper §4.6).
void attachSynchronization(ParallelPlan &Plan, const Module &M,
                           const CommSetRegistry &Registry,
                           const EffectAnalysis &EA);

/// DOALL transform. On failure returns nullopt and stores the inhibiting
/// reason in \p WhyNot (when non-null).
std::optional<ParallelPlan>
buildDoallPlan(const PDG &G, const SCCResult &Sccs, const Module &M,
               const CommSetRegistry &Registry, const EffectAnalysis &EA,
               const PlanOptions &Opts, std::string *WhyNot = nullptr);

/// DSWP (AllowParallelStage = false) or PS-DSWP (true).
std::optional<ParallelPlan>
buildPipelinePlan(const PDG &G, const SCCResult &Sccs, const Module &M,
                  const CommSetRegistry &Registry, const EffectAnalysis &EA,
                  const PlanOptions &Opts, bool AllowParallelStage,
                  std::string *WhyNot = nullptr);

} // namespace commset

#endif // COMMSET_TRANSFORM_PLANNER_H
