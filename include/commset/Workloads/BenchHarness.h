//===- BenchHarness.h - Shared evaluation harness ----------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Harness behind the bench/ binaries: compiles a workload variant once,
/// builds the requested scheme, executes it under the multicore simulator,
/// and reports speedup over the simulated sequential baseline. One bench
/// binary per paper table/figure calls into this.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_WORKLOADS_BENCHHARNESS_H
#define COMMSET_WORKLOADS_BENCHHARNESS_H

#include "commset/Driver/Compilation.h"
#include "commset/Driver/Runner.h"
#include "commset/Workloads/Workload.h"

#include <map>
#include <memory>
#include <optional>
#include <string>

namespace commset {
namespace bench {

/// One plotted series of a Figure 6 graph.
struct Series {
  std::string Label;   // e.g. "Comm-DOALL + Lib".
  std::string Variant; // "", "noself", "plain".
  Strategy Kind = Strategy::Doall;
  SyncMode Sync = SyncMode::None;
};

struct Measurement {
  bool Applicable = false;
  std::string WhyNot;
  double Speedup = 0.0;
  uint64_t VirtualNs = 0;
  uint64_t SeqVirtualNs = 0;
  std::string Schedule;
};

/// Compiles and simulates one workload across variants/schemes, caching
/// compilations and sequential baselines.
class FigureRunner {
public:
  explicit FigureRunner(const std::string &WorkloadName, int Scale = 0);

  /// Simulated speedup of \p S at \p Threads over the sequential baseline
  /// of the same variant.
  Measurement measure(const Series &S, unsigned Threads);

  /// Best applicable scheme at \p Threads for a variant (used for the
  /// "best non-COMMSET parallelization" baseline and Table 2).
  Measurement measureBest(const std::string &Variant, SyncMode Sync,
                          unsigned Threads, std::string *SchemeName = nullptr);

  /// Number of COMMSET annotation lines in the default-variant source
  /// (effects() lines excluded: they stand in for library knowledge).
  unsigned annotationCount() const;
  /// Source lines of the default variant.
  unsigned sourceLines() const;

  const std::string &name() const { return Name; }

private:
  struct VariantState {
    std::unique_ptr<Compilation> C;
    std::unique_ptr<Compilation::LoopTarget> T;
    uint64_t SeqVirtualNs = 0;
  };
  VariantState *variant(const std::string &Variant);
  uint64_t seqBaseline(VariantState &V);

  std::string Name;
  int Scale;
  std::unique_ptr<Workload> W;
  std::map<std::string, std::unique_ptr<VariantState>> Variants;
};

/// Version of the bench JSON record layout. Bump when a key is renamed or
/// its meaning changes; adding Extra keys is not a schema change.
constexpr unsigned BenchJsonSchemaVersion = 2;

/// `git describe` of the tree this binary was built from ("unknown" when
/// built outside a checkout). Stamped into every bench record so a stray
/// JSON file is traceable to the code that produced it.
const char *benchGitDescribe();

/// One machine-readable measurement row; the bench binaries' --json=FILE
/// flag emits an array of these.
struct BenchRecord {
  std::string Workload;
  std::string Label;   ///< Series label (or "best" for Table 2 rows).
  std::string Variant; ///< "", "noself", "plain".
  std::string Scheme;  ///< Strategy name, e.g. "DOALL".
  std::string Sync;    ///< Sync mode name, e.g. "Mutex".
  unsigned Threads = 0;
  bool Applicable = false;
  double Speedup = 0.0;       ///< Over same-variant sequential baseline.
  uint64_t VirtualNs = 0;     ///< Simulated parallel time.
  uint64_t SeqVirtualNs = 0;  ///< Simulated sequential baseline.
  /// Bench-specific numeric columns (e.g. serve-load percentiles),
  /// appended to the record as additional "key": value pairs.
  std::vector<std::pair<std::string, double>> Extra;
};

/// Renders \p Records as a JSON array (stable key order, no trailing
/// whitespace) for downstream plotting / regression tooling.
std::string benchRecordsJson(const std::vector<BenchRecord> &Records);

/// Writes benchRecordsJson to \p Path. Returns false (and sets \p Error)
/// when the file cannot be written.
bool writeBenchJson(const std::string &Path,
                    const std::vector<BenchRecord> &Records,
                    std::string *Error = nullptr);

/// Prints a Figure-6-style table (rows = series, columns = thread counts)
/// to stdout and returns the best speedup observed at the maximum thread
/// count. When \p Records is non-null, also appends one BenchRecord per
/// (series, thread count) cell.
double printFigure(const std::string &WorkloadName,
                   const std::vector<Series> &SeriesList,
                   const std::vector<unsigned> &Threads, int Scale = 0,
                   std::vector<BenchRecord> *Records = nullptr);

} // namespace bench
} // namespace commset

#endif // COMMSET_WORKLOADS_BENCHHARNESS_H
