//===- Kernels.h - Shared native kernel building blocks ---------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Substrate kernels shared by the evaluation workloads:
///
///  * Md5 — a from-scratch RFC 1321 implementation (md5sum's payload);
///  * Lcg — the deterministic RNG behind every synthetic input generator;
///  * VirtualFs — an in-memory file system with per-handle positions,
///    standing in for the paper's on-disk inputs.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_WORKLOADS_KERNELS_H
#define COMMSET_WORKLOADS_KERNELS_H

#include <cstdint>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace commset {

/// RFC 1321 MD5. Usage: init(), update() over chunks, final128().
class Md5 {
public:
  Md5() { reset(); }
  void reset();
  void update(const uint8_t *Data, size_t Len);
  /// Finalizes and returns the 128-bit digest as 16 bytes.
  std::vector<uint8_t> final128();
  /// Convenience: first 8 digest bytes as a little-endian integer.
  uint64_t final64();

  static std::string hex(const std::vector<uint8_t> &Digest);

private:
  void processBlock(const uint8_t Block[64]);

  uint32_t State[4];
  uint64_t BitCount = 0;
  uint8_t Buffer[64];
  size_t BufferLen = 0;
};

/// Deterministic linear congruential generator (numerical recipes flavor).
class Lcg {
public:
  explicit Lcg(uint64_t Seed = 0x123456789abcdefULL) : State(Seed) {}
  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 17;
  }
  /// Uniform in [0, Bound).
  uint64_t next(uint64_t Bound) { return Bound ? next() % Bound : 0; }
  double nextDouble() {
    return static_cast<double>(next() & 0xFFFFFFFF) / 4294967296.0;
  }

private:
  uint64_t State;
};

/// In-memory file system: file id -> deterministic pseudo-random content.
/// Handles carry independent positions; the structure itself is guarded so
/// kernels are thread safe under any schedule COMMSET permits.
class VirtualFs {
public:
  /// Creates \p NumFiles files; file i has FileSize(i) bytes generated
  /// from a per-file LCG stream.
  VirtualFs(unsigned NumFiles, size_t BaseSize, size_t SizeJitter);

  struct Handle {
    unsigned FileId = 0;
    size_t Position = 0;
  };

  Handle *open(unsigned FileId);
  /// Reads up to \p Len bytes into \p Out; returns the count (0 at EOF).
  size_t read(Handle *H, uint8_t *Out, size_t Len);
  void close(Handle *H);

  size_t fileSize(unsigned FileId) const;
  const std::vector<uint8_t> &contents(unsigned FileId) const;
  unsigned numFiles() const { return static_cast<unsigned>(Files.size()); }
  unsigned openCount() const { return Opens; }

private:
  std::vector<std::vector<uint8_t>> Files;
  std::mutex M;
  std::vector<std::unique_ptr<Handle>> Handles;
  unsigned Opens = 0;
};

} // namespace commset

#endif // COMMSET_WORKLOADS_KERNELS_H
