//===- Workload.h - Evaluation program framework -----------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper evaluates COMMSET on eight sequential programs (Table 2).
/// Each is reproduced as a Workload: an annotated CSet-C source, native
/// kernels over deterministic synthetic inputs (the paper's datasets are
/// not redistributable), per-kernel virtual-cost models for the multicore
/// simulator, and an order-insensitive checksum plus an ordered output log
/// so both out-of-order (DOALL) and deterministic (pipeline) schedules can
/// be verified against sequential execution.
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_WORKLOADS_WORKLOAD_H
#define COMMSET_WORKLOADS_WORKLOAD_H

#include "commset/Exec/NativeRegistry.h"
#include "commset/Exec/RtValue.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace commset {

class Workload {
public:
  virtual ~Workload() = default;

  virtual const char *name() const = 0;

  /// Annotated CSet-C program. \p Variant selects alternative annotation
  /// sets: "" (full annotations), "noself" (deterministic-output variant,
  /// paper §2), "plain" (annotations stripped: the non-COMMSET baseline).
  virtual std::string source(const std::string &Variant = {}) const = 0;

  /// Entry function containing the target loop.
  virtual const char *entry() const { return "main_loop"; }

  /// Entry arguments for a problem of size \p Scale (iteration count).
  virtual std::vector<RtValue> args(int Scale) const {
    return {RtValue::ofInt(Scale)};
  }

  /// Default iteration count used by benches.
  virtual int defaultScale() const { return 200; }

  /// Registers this instance's kernels (bound to its private state).
  virtual void registerNatives(NativeRegistry &Natives) = 0;

  /// Per-native virtual-cost hints for the planner's balance decisions
  /// (mirrors what run-time profiling gives the paper's compiler).
  virtual std::map<std::string, double> costHints() const = 0;

  /// Order-insensitive digest of all observable output (for comparing
  /// parallel against sequential runs).
  virtual uint64_t checksum() const = 0;

  /// Observable output in emission order (for determinism checks).
  virtual std::vector<int64_t> orderedOutput() const { return {}; }

  /// Clears all run state (outputs and synthetic-input cursors).
  virtual void reset() = 0;
};

/// Factory over the eight evaluation programs: md5sum, hmmer, geti, eclat,
/// em3d, potrace, kmeans, url.
std::unique_ptr<Workload> makeWorkload(const std::string &Name);
std::vector<std::string> workloadNames();

/// Strips every COMMSET directive except effects() from a source, producing
/// the non-COMMSET baseline the paper compares against.
std::string stripCommsetAnnotations(const std::string &Source);

} // namespace commset

#endif // COMMSET_WORKLOADS_WORKLOAD_H
