//===- CallGraph.cpp ------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Analysis/CallGraph.h"

using namespace commset;

const std::set<Function *> CallGraph::Empty;

CallGraph CallGraph::compute(const Module &M) {
  CallGraph CG;
  for (const auto &F : M.Functions) {
    auto &Callees = CG.Edges[F.get()];
    for (const auto &BB : F->Blocks)
      for (const auto &Instr : BB->Instrs)
        if (Instr->op() == Opcode::Call)
          Callees.insert(Instr->Callee);
  }
  return CG;
}

const std::set<Function *> &CallGraph::callees(const Function *F) const {
  auto It = Edges.find(F);
  return It == Edges.end() ? Empty : It->second;
}

std::set<Function *> CallGraph::reachableFrom(const Function *From) const {
  std::set<Function *> Reached;
  std::vector<Function *> Worklist(callees(From).begin(),
                                   callees(From).end());
  while (!Worklist.empty()) {
    Function *F = Worklist.back();
    Worklist.pop_back();
    if (!Reached.insert(F).second)
      continue;
    for (Function *Callee : callees(F))
      Worklist.push_back(Callee);
  }
  return Reached;
}

bool CallGraph::reaches(const Function *From, const Function *To) const {
  auto Reached = reachableFrom(From);
  return Reached.count(const_cast<Function *>(To)) != 0;
}
