//===- CommProve.cpp - Symbolic commutativity prover ----------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
//
// Layout of this file:
//
//  1. SymExpr: hash-cons-free shared expression trees with canonicalizing
//     factories. Integer arithmetic normalizes to a polynomial form under
//     the *defined* wrap semantics (DESIGN.md §8): n-ary Add with a constant
//     bias and like-term combining, n-ary Mul with a wrapped constant
//     coefficient and full distribution over Add. Wrap makes reassociation,
//     commutation and distribution exact, so `g+a+b` and `g+b+a` — and
//     `(g*K+a)*K+b` vs `(g*K+b)*K+a` — reach structurally comparable forms.
//     Compare-select merges are recognized as n-ary Min/Max (flattened,
//     sorted, deduped), which is what makes `if (v < g) g = v;` provable.
//     Floats fold only when fully constant; FAdd/FMul sort their two
//     operands (IEEE addition/multiplication commute even though they do
//     not associate) and are never reassociated.
//
//  2. SymExec: a merging symbolic executor over the register IR. Globals
//     live in a slot->expr map whose misses mean "still the opaque initial
//     value"; a symbolic branch forks state+frame, runs both arms to the
//     function's return, and merges per-slot with ITE. Concrete branch
//     conditions fold, so counted loops simply unroll against the step
//     budget. Anything outside the closed fragment (pointers, effectful
//     natives, call depth) raises Unmodeled; budgets raise OutOfBudget;
//     both surface as the Unknown verdict — never a silent pass.
//
//  3. Pair proving: run order F;G and order G;F from one shared initial
//     state, diff final stores + per-call return values. Identical
//     normalized outcomes => Proven. A symbolic difference is only ever
//     reported as Refuted after a concrete witness is found by enumeration
//     over the diff's atoms AND the real interpreter, run sequentially in
//     both orders from that witness state, actually diverges bit-for-bit.
//
//  4. Lint surface: CL060-CL063 diagnostics, CL020/CL021/CL023 downgrades
//     keyed on the structured Subject fields, and PDG proof tokens.
//
//===----------------------------------------------------------------------===//

#include "commset/Analysis/CommProve.h"

#include "commset/Exec/Interpreter.h"
#include "commset/Exec/LoopExecutors.h"
#include "commset/Exec/NativeRegistry.h"
#include "commset/Support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <tuple>

using namespace commset;

namespace {

//===----------------------------------------------------------------------===//
// Symbolic expressions
//===----------------------------------------------------------------------===//

enum class SK : uint8_t {
  ConstI,
  ConstF,
  InitGlobal, // A = global slot.
  Arg,        // I = call instance (0 = first op, 1 = second), A = param.
  NativeApp,  // Pure native, uninterpreted: Name(Kids...).
  Add,        // I64 n-ary: I = wrapped bias, Kids = sorted terms.
  Mul,        // I64 n-ary: I = wrapped coefficient, Kids = sorted factors.
  Div,        // I64 pinned /: Kids = {a, b}.
  Rem,        // I64 pinned %: Kids = {a, b}.
  FAdd,
  FSub,
  FMul,
  FDiv,
  FRem,
  FNeg,
  Eq, // Comparisons; FloatCmp selects operand interpretation.
  Ne,
  Lt,
  Le,
  Not,
  IntToFp,
  FpToInt,
  Ite, // Kids = {cond, then, else}.
  Min, // I64 n-ary, sorted + deduped.
  Max,
};

struct SymExpr;
using Sym = std::shared_ptr<const SymExpr>;

struct SymExpr {
  SK K = SK::ConstI;
  IRType Ty = IRType::I64;
  int64_t I = 0;
  double D = 0.0;
  unsigned A = 0;
  bool FloatCmp = false;
  std::string Name;
  std::vector<Sym> Kids;
};

struct OutOfBudget {
  std::string What;
};
struct Unmodeled {
  std::string What;
};

uint64_t doubleBits(double D) {
  uint64_t B;
  std::memcpy(&B, &D, sizeof(B));
  return B;
}

/// Structural total order; 0 means structurally identical (the equality the
/// Proven verdict rests on).
int cmpSym(const Sym &A, const Sym &B) {
  if (A.get() == B.get())
    return 0;
  auto Ord = [](auto X, auto Y) { return X < Y ? -1 : (X > Y ? 1 : 0); };
  if (int C = Ord(static_cast<int>(A->K), static_cast<int>(B->K)))
    return C;
  if (int C = Ord(static_cast<int>(A->Ty), static_cast<int>(B->Ty)))
    return C;
  if (int C = Ord(A->I, B->I))
    return C;
  if (int C = Ord(doubleBits(A->D), doubleBits(B->D)))
    return C;
  if (int C = Ord(A->A, B->A))
    return C;
  if (int C = Ord(A->FloatCmp, B->FloatCmp))
    return C;
  if (int C = A->Name.compare(B->Name))
    return C < 0 ? -1 : 1;
  if (int C = Ord(A->Kids.size(), B->Kids.size()))
    return C;
  for (size_t I = 0; I < A->Kids.size(); ++I)
    if (int C = cmpSym(A->Kids[I], B->Kids[I]))
      return C;
  return 0;
}

bool eqSym(const Sym &A, const Sym &B) { return cmpSym(A, B) == 0; }
bool symLess(const Sym &A, const Sym &B) { return cmpSym(A, B) < 0; }

int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}

/// Pinned integer division/remainder (DESIGN.md §8, mirrors Interpreter).
int64_t pinnedDiv(int64_t L, int64_t R) {
  if (R == 0)
    return 0;
  if (L == INT64_MIN && R == -1)
    return INT64_MIN;
  return L / R;
}
int64_t pinnedRem(int64_t L, int64_t R) {
  if (R == 0 || (L == INT64_MIN && R == -1))
    return 0;
  return L % R;
}
/// Pinned F64->I64 (cvttsd2si integer-indefinite outside the window).
int64_t pinnedFpToInt(double D) {
  if (D >= -9223372036854775808.0 && D < 9223372036854775808.0)
    return static_cast<int64_t>(D);
  return INT64_MIN;
}

/// Canonicalizing factory. Every constructor routes through node() so one
/// counter bounds total expression growth for a pair proof.
class SymBuilder {
public:
  explicit SymBuilder(unsigned NodeBudget) : Budget(NodeBudget) {}

  Sym node(SymExpr E) {
    if (++Nodes > Budget)
      throw OutOfBudget{"expression nodes"};
    return std::make_shared<SymExpr>(std::move(E));
  }

  Sym constI(int64_t V) {
    SymExpr E;
    E.K = SK::ConstI;
    E.Ty = IRType::I64;
    E.I = V;
    return node(std::move(E));
  }
  Sym constF(double V) {
    SymExpr E;
    E.K = SK::ConstF;
    E.Ty = IRType::F64;
    E.D = V;
    return node(std::move(E));
  }
  Sym initGlobal(unsigned Slot, IRType Ty) {
    SymExpr E;
    E.K = SK::InitGlobal;
    E.Ty = Ty;
    E.A = Slot;
    return node(std::move(E));
  }
  Sym arg(unsigned CallIdx, unsigned Param, IRType Ty) {
    SymExpr E;
    E.K = SK::Arg;
    E.Ty = Ty;
    E.I = CallIdx;
    E.A = Param;
    return node(std::move(E));
  }
  Sym nativeApp(const std::string &Name, IRType Ty, std::vector<Sym> Args) {
    SymExpr E;
    E.K = SK::NativeApp;
    E.Ty = Ty;
    E.Name = Name;
    E.Kids = std::move(Args);
    return node(std::move(E));
  }

  //===--- I64 polynomial form ---------------------------------------------===//

  /// Splits a canonical term into coefficient and factor list.
  static void termParts(const Sym &T, int64_t &Coeff,
                        std::vector<Sym> &Factors) {
    if (T->K == SK::Mul) {
      Coeff = T->I;
      Factors = T->Kids;
    } else {
      Coeff = 1;
      Factors = {T};
    }
  }

  Sym rebuildTerm(int64_t Coeff, std::vector<Sym> Factors) {
    if (Coeff == 1 && Factors.size() == 1)
      return Factors[0];
    SymExpr E;
    E.K = SK::Mul;
    E.Ty = IRType::I64;
    E.I = Coeff;
    E.Kids = std::move(Factors);
    return node(std::move(E));
  }

  Sym mkAdd(std::vector<Sym> Parts, int64_t Bias = 0) {
    // Flatten + constant-fold.
    std::vector<Sym> Terms;
    for (Sym &P : Parts) {
      if (P->K == SK::ConstI) {
        Bias = wrapAdd(Bias, P->I);
      } else if (P->K == SK::Add) {
        Bias = wrapAdd(Bias, P->I);
        Terms.insert(Terms.end(), P->Kids.begin(), P->Kids.end());
      } else {
        Terms.push_back(std::move(P));
      }
    }
    // Combine like terms (equal factor lists) with wrapped coefficients.
    std::vector<std::pair<std::vector<Sym>, int64_t>> Combined;
    for (const Sym &T : Terms) {
      int64_t Coeff;
      std::vector<Sym> Factors;
      termParts(T, Coeff, Factors);
      bool Found = false;
      for (auto &[CF, CC] : Combined) {
        if (CF.size() != Factors.size())
          continue;
        bool Same = true;
        for (size_t I = 0; I < CF.size() && Same; ++I)
          Same = eqSym(CF[I], Factors[I]);
        if (Same) {
          CC = wrapAdd(CC, Coeff);
          Found = true;
          break;
        }
      }
      if (!Found)
        Combined.emplace_back(std::move(Factors), Coeff);
    }
    std::vector<Sym> Out;
    for (auto &[Factors, Coeff] : Combined) {
      if (Coeff == 0)
        continue;
      Out.push_back(rebuildTerm(Coeff, std::move(Factors)));
    }
    std::sort(Out.begin(), Out.end(), symLess);
    if (Out.empty())
      return constI(Bias);
    if (Out.size() == 1 && Bias == 0)
      return Out[0];
    SymExpr E;
    E.K = SK::Add;
    E.Ty = IRType::I64;
    E.I = Bias;
    E.Kids = std::move(Out);
    return node(std::move(E));
  }

  Sym mkMul(std::vector<Sym> Parts, int64_t Coeff = 1) {
    std::vector<Sym> Factors;
    for (Sym &P : Parts) {
      if (P->K == SK::ConstI) {
        Coeff = wrapMul(Coeff, P->I);
      } else if (P->K == SK::Mul) {
        Coeff = wrapMul(Coeff, P->I);
        Factors.insert(Factors.end(), P->Kids.begin(), P->Kids.end());
      } else {
        Factors.push_back(std::move(P));
      }
    }
    if (Coeff == 0)
      return constI(0);
    // Distribute over any Add factor: wrap makes this exact, and it is what
    // lines up `(g*K + a)*K + b` against `(g*K + b)*K + a` as polynomials.
    for (size_t I = 0; I < Factors.size(); ++I) {
      if (Factors[I]->K != SK::Add)
        continue;
      Sym Sum = Factors[I];
      std::vector<Sym> Rest;
      for (size_t J = 0; J < Factors.size(); ++J)
        if (J != I)
          Rest.push_back(Factors[J]);
      std::vector<Sym> Expanded;
      for (const Sym &Term : Sum->Kids) {
        std::vector<Sym> Prod = Rest;
        Prod.push_back(Term);
        Expanded.push_back(mkMul(std::move(Prod), Coeff));
      }
      if (Sum->I != 0)
        Expanded.push_back(mkMul(Rest, wrapMul(Coeff, Sum->I)));
      return mkAdd(std::move(Expanded));
    }
    std::sort(Factors.begin(), Factors.end(), symLess);
    if (Factors.empty())
      return constI(Coeff);
    return rebuildTerm(Coeff, std::move(Factors));
  }

  Sym mkNeg(Sym A) { return mkMul({std::move(A)}, -1); }
  Sym mkSub(Sym A, Sym B) {
    return mkAdd({std::move(A), mkNeg(std::move(B))});
  }

  Sym mkDiv(Sym A, Sym B) {
    if (A->K == SK::ConstI && B->K == SK::ConstI)
      return constI(pinnedDiv(A->I, B->I));
    if (B->K == SK::ConstI && B->I == 0)
      return constI(0); // x / 0 == 0 for every x.
    if (B->K == SK::ConstI && B->I == 1)
      return A;
    if (A->K == SK::ConstI && A->I == 0)
      return constI(0);
    SymExpr E;
    E.K = SK::Div;
    E.Ty = IRType::I64;
    E.Kids = {std::move(A), std::move(B)};
    return node(std::move(E));
  }

  Sym mkRem(Sym A, Sym B) {
    if (A->K == SK::ConstI && B->K == SK::ConstI)
      return constI(pinnedRem(A->I, B->I));
    if (B->K == SK::ConstI && (B->I == 0 || B->I == 1 || B->I == -1))
      return constI(0); // x%0 == 0 pinned; |x%±1| == 0 always.
    if (A->K == SK::ConstI && A->I == 0)
      return constI(0);
    SymExpr E;
    E.K = SK::Rem;
    E.Ty = IRType::I64;
    E.Kids = {std::move(A), std::move(B)};
    return node(std::move(E));
  }

  //===--- F64 (fold-only; no reassociation) -------------------------------===//

  Sym mkFBin(SK K, Sym A, Sym B) {
    if (A->K == SK::ConstF && B->K == SK::ConstF) {
      switch (K) {
      case SK::FAdd:
        return constF(A->D + B->D);
      case SK::FSub:
        return constF(A->D - B->D);
      case SK::FMul:
        return constF(A->D * B->D);
      case SK::FDiv:
        return constF(A->D / B->D);
      default:
        return constF(std::fmod(A->D, B->D));
      }
    }
    // IEEE add/mul commute (they just do not associate): sort the pair.
    if ((K == SK::FAdd || K == SK::FMul) && cmpSym(B, A) < 0)
      std::swap(A, B);
    SymExpr E;
    E.K = K;
    E.Ty = IRType::F64;
    E.Kids = {std::move(A), std::move(B)};
    return node(std::move(E));
  }

  Sym mkFNeg(Sym A) {
    if (A->K == SK::ConstF)
      return constF(-A->D);
    if (A->K == SK::FNeg)
      return A->Kids[0];
    SymExpr E;
    E.K = SK::FNeg;
    E.Ty = IRType::F64;
    E.Kids = {std::move(A)};
    return node(std::move(E));
  }

  //===--- Comparisons / logic ---------------------------------------------===//

  /// Canonical orientation: Gt/Ge lower to Lt/Le with swapped operands, so
  /// Min/Max recognition in mkIte only ever sees two shapes.
  Sym mkCmp(Opcode Op, Sym A, Sym B, bool FloatCmp) {
    if (Op == Opcode::Gt || Op == Opcode::Ge) {
      std::swap(A, B);
      Op = Op == Opcode::Gt ? Opcode::Lt : Opcode::Le;
    }
    if (!FloatCmp && A->K == SK::ConstI && B->K == SK::ConstI) {
      bool R;
      switch (Op) {
      case Opcode::Eq:
        R = A->I == B->I;
        break;
      case Opcode::Ne:
        R = A->I != B->I;
        break;
      case Opcode::Lt:
        R = A->I < B->I;
        break;
      default:
        R = A->I <= B->I;
        break;
      }
      return constI(R ? 1 : 0);
    }
    if (FloatCmp && A->K == SK::ConstF && B->K == SK::ConstF) {
      bool R;
      switch (Op) {
      case Opcode::Eq:
        R = A->D == B->D;
        break;
      case Opcode::Ne:
        R = A->D != B->D;
        break;
      case Opcode::Lt:
        R = A->D < B->D;
        break;
      default:
        R = A->D <= B->D;
        break;
      }
      return constI(R ? 1 : 0);
    }
    if (!FloatCmp && eqSym(A, B)) // Not sound for floats (NaN).
      return constI(Op == Opcode::Eq || Op == Opcode::Le ? 1 : 0);
    if ((Op == Opcode::Eq || Op == Opcode::Ne) && cmpSym(B, A) < 0)
      std::swap(A, B);
    SK K;
    switch (Op) {
    case Opcode::Eq:
      K = SK::Eq;
      break;
    case Opcode::Ne:
      K = SK::Ne;
      break;
    case Opcode::Lt:
      K = SK::Lt;
      break;
    default:
      K = SK::Le;
      break;
    }
    SymExpr E;
    E.K = K;
    E.Ty = IRType::I64;
    E.FloatCmp = FloatCmp;
    E.Kids = {std::move(A), std::move(B)};
    return node(std::move(E));
  }

  Sym mkNot(Sym A) {
    if (A->K == SK::ConstI)
      return constI(A->I == 0 ? 1 : 0);
    // Integer comparisons invert exactly; float ones do not (NaN makes
    // !(a<b) differ from a>=b), so those keep the Not node.
    if (!A->FloatCmp) {
      switch (A->K) {
      case SK::Eq:
        return mkCmp(Opcode::Ne, A->Kids[0], A->Kids[1], false);
      case SK::Ne:
        return mkCmp(Opcode::Eq, A->Kids[0], A->Kids[1], false);
      case SK::Lt: // !(a<b) == b<=a
        return mkCmp(Opcode::Le, A->Kids[1], A->Kids[0], false);
      case SK::Le: // !(a<=b) == b<a
        return mkCmp(Opcode::Lt, A->Kids[1], A->Kids[0], false);
      default:
        break;
      }
    }
    if (A->K == SK::Not) {
      const Sym &B = A->Kids[0];
      // Not(Not(x)) == x only when x is already 0/1-valued.
      if (B->K == SK::Not || B->K == SK::Eq || B->K == SK::Ne ||
          B->K == SK::Lt || B->K == SK::Le)
        return B;
    }
    SymExpr E;
    E.K = SK::Not;
    E.Ty = IRType::I64;
    E.Kids = {std::move(A)};
    return node(std::move(E));
  }

  Sym mkIntToFp(Sym A) {
    if (A->K == SK::ConstI)
      return constF(static_cast<double>(A->I));
    SymExpr E;
    E.K = SK::IntToFp;
    E.Ty = IRType::F64;
    E.Kids = {std::move(A)};
    return node(std::move(E));
  }

  Sym mkFpToInt(Sym A) {
    if (A->K == SK::ConstF)
      return constI(pinnedFpToInt(A->D));
    SymExpr E;
    E.K = SK::FpToInt;
    E.Ty = IRType::I64;
    E.Kids = {std::move(A)};
    return node(std::move(E));
  }

  Sym mkMinMax(SK K, std::vector<Sym> Parts) {
    std::vector<Sym> Kids;
    bool HaveConst = false;
    int64_t Const = 0;
    for (Sym &P : Parts) {
      if (P->K == K) {
        Kids.insert(Kids.end(), P->Kids.begin(), P->Kids.end());
      } else if (P->K == SK::ConstI) {
        Const = HaveConst ? (K == SK::Min ? std::min(Const, P->I)
                                          : std::max(Const, P->I))
                          : P->I;
        HaveConst = true;
      } else {
        Kids.push_back(std::move(P));
      }
    }
    if (HaveConst)
      Kids.push_back(constI(Const));
    std::sort(Kids.begin(), Kids.end(), symLess);
    Kids.erase(std::unique(Kids.begin(), Kids.end(), eqSym), Kids.end());
    if (Kids.size() == 1)
      return Kids[0];
    SymExpr E;
    E.K = K;
    E.Ty = IRType::I64;
    E.Kids = std::move(Kids);
    return node(std::move(E));
  }

  Sym mkIte(Sym C, Sym T, Sym E) {
    if (C->K == SK::ConstI)
      return C->I != 0 ? T : E;
    if (eqSym(T, E))
      return T;
    // Compare-select as Min/Max (integers only; float select under NaN is
    // not a lattice operation). Gt/Ge already lowered to Lt/Le.
    if (!C->FloatCmp && (C->K == SK::Lt || C->K == SK::Le) &&
        T->Ty == IRType::I64 && E->Ty == IRType::I64) {
      if (eqSym(C->Kids[0], T) && eqSym(C->Kids[1], E))
        return mkMinMax(SK::Min, {T, E});
      if (eqSym(C->Kids[0], E) && eqSym(C->Kids[1], T))
        return mkMinMax(SK::Max, {T, E});
    }
    SymExpr N;
    N.K = SK::Ite;
    N.Ty = T->Ty;
    N.Kids = {std::move(C), std::move(T), std::move(E)};
    return node(std::move(N));
  }

private:
  unsigned Budget;
  unsigned Nodes = 0;
};

//===----------------------------------------------------------------------===//
// Symbolic execution
//===----------------------------------------------------------------------===//

/// Written global slots; a missing slot still holds its opaque initial
/// value (the InitGlobal atom).
struct SymState {
  std::map<unsigned, Sym> Globals;
};

struct SymFrame {
  const Function *F = nullptr;
  std::vector<Sym> Locals; // Null entries = uninitialized Ptr locals.
  std::vector<Sym> Regs;
};

class SymExec {
public:
  SymExec(const Module &M, SymBuilder &B, const ProveOptions &Opts)
      : M(M), B(B), Opts(Opts), StepsLeft(Opts.StepBudget) {}

  /// True once any pure native was applied: proofs stay valid
  /// (uninterpreted functions), but witness enumeration cannot evaluate the
  /// term, so refutation is off for this pair.
  bool UsedNative = false;

  Sym runCall(SymState &St, const Function *F, const std::vector<Sym> &Args,
              unsigned Depth) {
    if (Depth > Opts.InlineDepth)
      throw Unmodeled{"call depth exceeds inline budget in '" + F->Name +
                      "'"};
    if (F->Blocks.empty())
      throw Unmodeled{"'" + F->Name + "' has no body"};
    SymFrame Fr;
    Fr.F = F;
    Fr.Locals.resize(F->Locals.size());
    for (unsigned I = 0; I < F->NumParams; ++I)
      Fr.Locals[I] = Args[I];
    for (unsigned I = F->NumParams; I < F->Locals.size(); ++I) {
      switch (F->Locals[I].Type) {
      case IRType::I64:
        Fr.Locals[I] = B.constI(0);
        break;
      case IRType::F64:
        Fr.Locals[I] = B.constF(0.0);
        break;
      default:
        break; // Ptr locals stay null; loading one raises Unmodeled.
      }
    }
    Fr.Regs.resize(F->NumInstrs);
    return runFrom(St, Fr, F->entry(), Depth);
  }

  Sym globalValue(SymState &St, unsigned Slot) {
    auto It = St.Globals.find(Slot);
    if (It != St.Globals.end())
      return It->second;
    IRType Ty = M.Globals[Slot].Type;
    if (Ty == IRType::Ptr)
      throw Unmodeled{"pointer-typed global '" + M.Globals[Slot].Name + "'"};
    auto &Cached = InitAtoms[Slot];
    if (!Cached)
      Cached = B.initGlobal(Slot, Ty);
    return Cached;
  }

private:
  void step() {
    if (StepsLeft == 0)
      throw OutOfBudget{"symbolic step budget"};
    --StepsLeft;
  }

  Sym evalOp(const SymFrame &Fr, const Operand &Op) {
    switch (Op.K) {
    case Operand::Kind::Instr: {
      const Sym &V = Fr.Regs[Op.Def->Id];
      if (!V)
        throw Unmodeled{"use of pointer-typed register"};
      return V;
    }
    case Operand::Kind::ConstInt:
      return B.constI(Op.IntVal);
    case Operand::Kind::ConstFloat:
      return B.constF(Op.FloatVal);
    default:
      throw Unmodeled{"pointer/string constant operand"};
    }
  }

  void mergeInto(const Sym &Cond, SymState &Then, SymState &Else) {
    std::set<unsigned> Slots;
    for (const auto &[Slot, V] : Then.Globals)
      Slots.insert(Slot);
    for (const auto &[Slot, V] : Else.Globals)
      Slots.insert(Slot);
    for (unsigned Slot : Slots) {
      Sym T = globalValue(Then, Slot);
      Sym E = globalValue(Else, Slot);
      if (!eqSym(T, E))
        Else.Globals[Slot] = B.mkIte(Cond, T, E);
      else
        Else.Globals[Slot] = T;
    }
  }

  Sym runFrom(SymState &St, SymFrame &Fr, const BasicBlock *BB,
              unsigned Depth) {
    while (true) {
      const Instruction *Term = nullptr;
      for (const auto &IP : BB->Instrs) {
        const Instruction *In = IP.get();
        if (In->isTerminator()) {
          Term = In;
          break;
        }
        step();
        execInstr(St, Fr, In, Depth);
      }
      if (!Term)
        throw Unmodeled{"unterminated block"};
      step();
      switch (Term->op()) {
      case Opcode::Br:
        BB = Term->Succ0;
        continue;
      case Opcode::CondBr: {
        Sym C = evalOp(Fr, Term->Operands[0]);
        if (C->K == SK::ConstI) {
          BB = C->I != 0 ? Term->Succ0 : Term->Succ1;
          continue;
        }
        SymState ThenSt = St;
        SymFrame ThenFr = Fr;
        Sym RetT = runFrom(ThenSt, ThenFr, Term->Succ0, Depth);
        Sym RetE = runFrom(St, Fr, Term->Succ1, Depth);
        mergeInto(C, ThenSt, St);
        if (RetT && RetE)
          return eqSym(RetT, RetE) ? RetT : B.mkIte(C, RetT, RetE);
        return nullptr;
      }
      case Opcode::Ret:
        if (!Term->Operands.empty())
          return evalOp(Fr, Term->Operands[0]);
        return nullptr;
      default:
        throw Unmodeled{"unexpected terminator"};
      }
    }
  }

  void execInstr(SymState &St, SymFrame &Fr, const Instruction *In,
                 unsigned Depth) {
    auto set = [&](Sym V) { Fr.Regs[In->Id] = std::move(V); };
    switch (In->op()) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem: {
      Sym L = evalOp(Fr, In->Operands[0]);
      Sym R = evalOp(Fr, In->Operands[1]);
      if (In->type() == IRType::F64) {
        SK K;
        switch (In->op()) {
        case Opcode::Add:
          K = SK::FAdd;
          break;
        case Opcode::Sub:
          K = SK::FSub;
          break;
        case Opcode::Mul:
          K = SK::FMul;
          break;
        case Opcode::Div:
          K = SK::FDiv;
          break;
        default:
          K = SK::FRem;
          break;
        }
        set(B.mkFBin(K, std::move(L), std::move(R)));
      } else {
        switch (In->op()) {
        case Opcode::Add:
          set(B.mkAdd({std::move(L), std::move(R)}));
          break;
        case Opcode::Sub:
          set(B.mkSub(std::move(L), std::move(R)));
          break;
        case Opcode::Mul:
          set(B.mkMul({std::move(L), std::move(R)}));
          break;
        case Opcode::Div:
          set(B.mkDiv(std::move(L), std::move(R)));
          break;
        default:
          set(B.mkRem(std::move(L), std::move(R)));
          break;
        }
      }
      return;
    }
    case Opcode::Eq:
    case Opcode::Ne:
    case Opcode::Lt:
    case Opcode::Le:
    case Opcode::Gt:
    case Opcode::Ge: {
      // Operand interpretation mirrors the interpreter: inferred from the
      // first operand's defining instruction or constant kind.
      const Operand &Op0 = In->Operands[0];
      bool IsFloat, IsPtr;
      if (Op0.isInstr()) {
        IsFloat = Op0.Def->type() == IRType::F64;
        IsPtr = Op0.Def->type() == IRType::Ptr;
      } else {
        IsFloat = Op0.K == Operand::Kind::ConstFloat;
        IsPtr = Op0.K == Operand::Kind::ConstNull ||
                Op0.K == Operand::Kind::ConstStr;
      }
      if (IsPtr)
        throw Unmodeled{"pointer comparison"};
      Sym L = evalOp(Fr, Op0);
      Sym R = evalOp(Fr, In->Operands[1]);
      set(B.mkCmp(In->op(), std::move(L), std::move(R), IsFloat));
      return;
    }
    case Opcode::Neg: {
      Sym V = evalOp(Fr, In->Operands[0]);
      set(In->type() == IRType::F64 ? B.mkFNeg(std::move(V))
                                    : B.mkNeg(std::move(V)));
      return;
    }
    case Opcode::Not:
      set(B.mkNot(evalOp(Fr, In->Operands[0])));
      return;
    case Opcode::IntToFp:
      set(B.mkIntToFp(evalOp(Fr, In->Operands[0])));
      return;
    case Opcode::FpToInt:
      set(B.mkFpToInt(evalOp(Fr, In->Operands[0])));
      return;
    case Opcode::LoadLocal: {
      const Sym &V = Fr.Locals[In->SlotId];
      if (!V)
        throw Unmodeled{"pointer-typed local"};
      set(V);
      return;
    }
    case Opcode::StoreLocal:
      Fr.Locals[In->SlotId] = evalOp(Fr, In->Operands[0]);
      return;
    case Opcode::LoadGlobal:
      set(globalValue(St, In->SlotId));
      return;
    case Opcode::StoreGlobal:
      St.Globals[In->SlotId] = evalOp(Fr, In->Operands[0]);
      return;
    case Opcode::Call: {
      std::vector<Sym> Args;
      for (const Operand &Op : In->Operands)
        Args.push_back(evalOp(Fr, Op));
      Sym R = runCall(St, In->Callee, Args, Depth + 1);
      if (In->producesValue()) {
        if (!R)
          throw Unmodeled{"void result used"};
        set(std::move(R));
      }
      return;
    }
    case Opcode::CallNative: {
      const NativeDecl *N = In->Native;
      if (!N->Effects.Pure)
        throw Unmodeled{"effectful native '" + N->Name + "'"};
      if (N->ReturnType == IRType::Ptr)
        throw Unmodeled{"pointer-returning native '" + N->Name + "'"};
      std::vector<Sym> Args;
      for (const Operand &Op : In->Operands)
        Args.push_back(evalOp(Fr, Op));
      UsedNative = true;
      if (In->producesValue())
        set(B.nativeApp(N->Name, N->ReturnType, std::move(Args)));
      return;
    }
    default:
      throw Unmodeled{std::string("unsupported opcode ") +
                      opcodeName(In->op())};
    }
  }

  const Module &M;
  SymBuilder &B;
  const ProveOptions &Opts;
  unsigned StepsLeft;
  std::map<unsigned, Sym> InitAtoms;
};

//===----------------------------------------------------------------------===//
// Concrete evaluation + witness search
//===----------------------------------------------------------------------===//

/// Atom identity for witness assignments.
struct AtomKey {
  bool IsArg = false;
  unsigned A = 0; // Global slot / call instance.
  unsigned B = 0; // Param index (args only).
  IRType Ty = IRType::I64;

  bool operator<(const AtomKey &O) const {
    return std::tie(IsArg, A, B) < std::tie(O.IsArg, O.A, O.B);
  }
};

void collectAtoms(const Sym &E, std::map<AtomKey, RtValue> &Out) {
  if (E->K == SK::InitGlobal)
    Out.emplace(AtomKey{false, E->A, 0, E->Ty}, RtValue());
  else if (E->K == SK::Arg)
    Out.emplace(AtomKey{true, static_cast<unsigned>(E->I), E->A, E->Ty},
                RtValue());
  for (const Sym &K : E->Kids)
    collectAtoms(K, Out);
}

/// Mirrors the interpreter's pinned semantics exactly; only called on trees
/// free of NativeApp (guarded by SymExec::UsedNative).
RtValue evalConcrete(const Module &M, const Sym &E,
                     const std::map<AtomKey, RtValue> &Atoms) {
  switch (E->K) {
  case SK::ConstI:
    return RtValue::ofInt(E->I);
  case SK::ConstF:
    return RtValue::ofDouble(E->D);
  case SK::InitGlobal: {
    auto It = Atoms.find(AtomKey{false, E->A, 0, E->Ty});
    if (It != Atoms.end())
      return It->second;
    const GlobalVar &G = M.Globals[E->A];
    return G.Type == IRType::F64 ? RtValue::ofDouble(G.FloatInit)
                                 : RtValue::ofInt(G.IntInit);
  }
  case SK::Arg: {
    auto It =
        Atoms.find(AtomKey{true, static_cast<unsigned>(E->I), E->A, E->Ty});
    if (It != Atoms.end())
      return It->second;
    return E->Ty == IRType::F64 ? RtValue::ofDouble(0.0) : RtValue::ofInt(0);
  }
  case SK::Add: {
    int64_t S = E->I;
    for (const Sym &K : E->Kids)
      S = wrapAdd(S, evalConcrete(M, K, Atoms).I);
    return RtValue::ofInt(S);
  }
  case SK::Mul: {
    int64_t P = E->I;
    for (const Sym &K : E->Kids)
      P = wrapMul(P, evalConcrete(M, K, Atoms).I);
    return RtValue::ofInt(P);
  }
  case SK::Div:
    return RtValue::ofInt(pinnedDiv(evalConcrete(M, E->Kids[0], Atoms).I,
                                    evalConcrete(M, E->Kids[1], Atoms).I));
  case SK::Rem:
    return RtValue::ofInt(pinnedRem(evalConcrete(M, E->Kids[0], Atoms).I,
                                    evalConcrete(M, E->Kids[1], Atoms).I));
  case SK::FAdd:
    return RtValue::ofDouble(evalConcrete(M, E->Kids[0], Atoms).D +
                             evalConcrete(M, E->Kids[1], Atoms).D);
  case SK::FSub:
    return RtValue::ofDouble(evalConcrete(M, E->Kids[0], Atoms).D -
                             evalConcrete(M, E->Kids[1], Atoms).D);
  case SK::FMul:
    return RtValue::ofDouble(evalConcrete(M, E->Kids[0], Atoms).D *
                             evalConcrete(M, E->Kids[1], Atoms).D);
  case SK::FDiv:
    return RtValue::ofDouble(evalConcrete(M, E->Kids[0], Atoms).D /
                             evalConcrete(M, E->Kids[1], Atoms).D);
  case SK::FRem:
    return RtValue::ofDouble(std::fmod(evalConcrete(M, E->Kids[0], Atoms).D,
                                       evalConcrete(M, E->Kids[1], Atoms).D));
  case SK::FNeg:
    return RtValue::ofDouble(-evalConcrete(M, E->Kids[0], Atoms).D);
  case SK::Eq:
  case SK::Ne:
  case SK::Lt:
  case SK::Le: {
    RtValue L = evalConcrete(M, E->Kids[0], Atoms);
    RtValue R = evalConcrete(M, E->Kids[1], Atoms);
    bool V;
    if (E->FloatCmp)
      V = E->K == SK::Eq   ? L.D == R.D
          : E->K == SK::Ne ? L.D != R.D
          : E->K == SK::Lt ? L.D < R.D
                           : L.D <= R.D;
    else
      V = E->K == SK::Eq   ? L.I == R.I
          : E->K == SK::Ne ? L.I != R.I
          : E->K == SK::Lt ? L.I < R.I
                           : L.I <= R.I;
    return RtValue::ofInt(V ? 1 : 0);
  }
  case SK::Not:
    return RtValue::ofInt(evalConcrete(M, E->Kids[0], Atoms).I == 0 ? 1 : 0);
  case SK::IntToFp:
    return RtValue::ofDouble(
        static_cast<double>(evalConcrete(M, E->Kids[0], Atoms).I));
  case SK::FpToInt:
    return RtValue::ofInt(
        pinnedFpToInt(evalConcrete(M, E->Kids[0], Atoms).D));
  case SK::Ite:
    return evalConcrete(M, E->Kids[0], Atoms).I != 0
               ? evalConcrete(M, E->Kids[1], Atoms)
               : evalConcrete(M, E->Kids[2], Atoms);
  case SK::Min:
  case SK::Max: {
    int64_t V = evalConcrete(M, E->Kids[0], Atoms).I;
    for (size_t I = 1; I < E->Kids.size(); ++I) {
      int64_t K = evalConcrete(M, E->Kids[I], Atoms).I;
      V = E->K == SK::Min ? std::min(V, K) : std::max(V, K);
    }
    return RtValue::ofInt(V);
  }
  case SK::NativeApp:
    break;
  }
  throw Unmodeled{"concrete evaluation of uninterpreted term"};
}

uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Deterministic candidate assignment for enumeration round \p Try.
void assignCandidate(std::map<AtomKey, RtValue> &Atoms, unsigned Try) {
  static const int64_t IntPool[] = {0,  1,  2,  -1, 3,         5,
                                    7,  -2, 13, 100, INT64_MAX, INT64_MIN};
  static const double FloatPool[] = {0.0, 1.0, 2.5, -1.0, 0.5, 3.0};
  unsigned J = 0;
  for (auto &[Key, Val] : Atoms) {
    if (Try == 0) {
      Val = Key.Ty == IRType::F64 ? RtValue::ofDouble(1.5 * (J + 1))
                                  : RtValue::ofInt(static_cast<int64_t>(J) + 1);
    } else if (Try == 1) {
      Val = Key.Ty == IRType::F64
                ? RtValue::ofDouble(-0.5 * (J + 1))
                : RtValue::ofInt(-(static_cast<int64_t>(J) + 2));
    } else {
      uint64_t H = mix64(Try * 0x51ed2701db1f7c25ULL + J * 0x2545f4914f6cdd1dULL);
      Val = Key.Ty == IRType::F64
                ? RtValue::ofDouble(FloatPool[H % 6])
                : RtValue::ofInt(IntPool[H % 12]);
    }
    ++J;
  }
}

std::string renderValue(IRType Ty, RtValue V) {
  if (Ty == IRType::F64) {
    std::ostringstream Os;
    Os << V.D;
    return Os.str();
  }
  return std::to_string(V.I);
}

//===----------------------------------------------------------------------===//
// Pair proving
//===----------------------------------------------------------------------===//

struct DiffItem {
  std::string What; // "global 'g'" / "return of 'f' (first call)".
  Sym A, B;
};

/// Validates a candidate on the real interpreter: runs First;Second and
/// Second;First sequentially from the witness state and diffs the final
/// global image plus both calls' return values bit-for-bit. This is the
/// gate every CL060 passes — a symbolic disagreement alone never refutes.
bool validateOnInterpreter(const Compilation &C, const Function *First,
                           const Function *Second,
                           const std::vector<std::pair<unsigned, RtValue>>
                               &InitGlobals,
                           const std::vector<RtValue> &FirstArgs,
                           const std::vector<RtValue> &SecondArgs,
                           std::string &DivergenceOut) {
  const Module &M = C.module();
  NativeRegistry NoNatives; // Refuted bodies are native-free by precondition.
  std::vector<RtValue> Base = makeGlobalImage(M);
  for (const auto &[Slot, V] : InitGlobals)
    Base[Slot] = V;

  struct Outcome {
    std::vector<RtValue> Globals;
    RtValue RetFirst, RetSecond;
  };
  auto runOrder = [&](bool FirstLeads) {
    Outcome O;
    O.Globals = Base;
    Interpreter I(M, NoNatives, O.Globals.data());
    if (FirstLeads) {
      O.RetFirst = I.call(First, FirstArgs);
      O.RetSecond = I.call(Second, SecondArgs);
    } else {
      O.RetSecond = I.call(Second, SecondArgs);
      O.RetFirst = I.call(First, FirstArgs);
    }
    return O;
  };
  Outcome AB = runOrder(true);
  Outcome BA = runOrder(false);

  for (unsigned Slot = 0; Slot < M.Globals.size(); ++Slot) {
    if (AB.Globals[Slot].Bits == BA.Globals[Slot].Bits)
      continue;
    IRType Ty = M.Globals[Slot].Type;
    DivergenceOut = formatString(
        "global '%s' ends %s when the first operation leads but %s when "
        "the second leads",
        M.Globals[Slot].Name.c_str(),
        renderValue(Ty, AB.Globals[Slot]).c_str(),
        renderValue(Ty, BA.Globals[Slot]).c_str());
    return true;
  }
  if (First->ReturnType != IRType::Void &&
      AB.RetFirst.Bits != BA.RetFirst.Bits) {
    DivergenceOut = formatString(
        "return of '%s' is %s when it runs first but %s when it runs second",
        First->Name.c_str(),
        renderValue(First->ReturnType, AB.RetFirst).c_str(),
        renderValue(First->ReturnType, BA.RetFirst).c_str());
    return true;
  }
  if (Second->ReturnType != IRType::Void &&
      AB.RetSecond.Bits != BA.RetSecond.Bits) {
    DivergenceOut = formatString(
        "return of '%s' is %s when it runs second but %s when it runs first",
        Second->Name.c_str(),
        renderValue(Second->ReturnType, AB.RetSecond).c_str(),
        renderValue(Second->ReturnType, BA.RetSecond).c_str());
    return true;
  }
  return false;
}

PairProof provePairImpl(const Compilation &C, const Function *First,
                        const Function *Second, bool AllowRefute,
                        const ProveOptions &Opts) {
  const Module &M = C.module();
  PairProof P;
  P.First = First->Name;
  P.Second = Second->Name;
  P.Loc = First->Loc;

  try {
    SymBuilder B(Opts.NodeBudget);

    // Shared atoms: each call instance keeps its own arguments across both
    // orders (commuting swaps execution order, not operands).
    std::vector<Sym> FirstArgs, SecondArgs;
    for (unsigned I = 0; I < First->NumParams; ++I) {
      if (First->Locals[I].Type == IRType::Ptr)
        throw Unmodeled{"pointer parameter of '" + First->Name + "'"};
      FirstArgs.push_back(B.arg(0, I, First->Locals[I].Type));
    }
    for (unsigned I = 0; I < Second->NumParams; ++I) {
      if (Second->Locals[I].Type == IRType::Ptr)
        throw Unmodeled{"pointer parameter of '" + Second->Name + "'"};
      SecondArgs.push_back(B.arg(1, I, Second->Locals[I].Type));
    }

    SymExec E1(M, B, Opts);
    SymState S1;
    Sym RetFirst1 = E1.runCall(S1, First, FirstArgs, 0);
    Sym RetSecond1 = E1.runCall(S1, Second, SecondArgs, 0);

    SymExec E2(M, B, Opts);
    SymState S2;
    Sym RetSecond2 = E2.runCall(S2, Second, SecondArgs, 0);
    Sym RetFirst2 = E2.runCall(S2, First, FirstArgs, 0);

    bool UsedNative = E1.UsedNative || E2.UsedNative;

    std::vector<DiffItem> Diffs;
    std::set<unsigned> Slots;
    for (const auto &[Slot, V] : S1.Globals)
      Slots.insert(Slot);
    for (const auto &[Slot, V] : S2.Globals)
      Slots.insert(Slot);
    for (unsigned Slot : Slots) {
      Sym A = E1.globalValue(S1, Slot);
      Sym V2 = E2.globalValue(S2, Slot);
      if (!eqSym(A, V2))
        Diffs.push_back(
            {"global '" + M.Globals[Slot].Name + "'", A, V2});
    }
    auto diffRet = [&](const char *Who, const Sym &A, const Sym &B2) {
      if (A && B2 && !eqSym(A, B2))
        Diffs.push_back({std::string("return of '") + Who + "'", A, B2});
    };
    diffRet(First->Name.c_str(), RetFirst1, RetFirst2);
    diffRet(Second->Name.c_str(), RetSecond1, RetSecond2);

    if (Diffs.empty()) {
      P.Verdict = ProveVerdict::Proven;
      P.Detail = "both operation orders produce identical normalized "
                 "global state and return values";
      return P;
    }

    std::string SymDetail = "symbolic outcomes differ on " + Diffs[0].What;
    if (!AllowRefute) {
      P.Verdict = ProveVerdict::Unknown;
      P.Detail = SymDetail + "; the set is predicated, so an unconditional "
                             "witness cannot refute the conditional claim";
      return P;
    }
    if (UsedNative) {
      P.Verdict = ProveVerdict::Unknown;
      P.Detail = SymDetail + ", but the bodies call natives the prover "
                             "cannot evaluate concretely";
      return P;
    }

    // Witness enumeration over the diff's atoms, gated by real replay.
    std::map<AtomKey, RtValue> Atoms;
    for (const DiffItem &D : Diffs) {
      collectAtoms(D.A, Atoms);
      collectAtoms(D.B, Atoms);
    }
    for (unsigned Try = 0; Try < Opts.WitnessTries; ++Try) {
      assignCandidate(Atoms, Try);
      bool CandidateDiffers = false;
      for (const DiffItem &D : Diffs) {
        if (evalConcrete(M, D.A, Atoms).Bits !=
            evalConcrete(M, D.B, Atoms).Bits) {
          CandidateDiffers = true;
          break;
        }
      }
      if (!CandidateDiffers)
        continue;

      std::vector<std::pair<unsigned, RtValue>> InitGlobals;
      std::vector<RtValue> CFirst(First->NumParams),
          CSecond(Second->NumParams);
      for (const auto &[Key, Val] : Atoms) {
        if (!Key.IsArg)
          InitGlobals.emplace_back(Key.A, Val);
        else if (Key.A == 0)
          CFirst[Key.B] = Val;
        else
          CSecond[Key.B] = Val;
      }
      std::string Divergence;
      if (!validateOnInterpreter(C, First, Second, InitGlobals, CFirst,
                                 CSecond, Divergence))
        continue;

      ProveWitness W;
      for (const auto &[Slot, V] : InitGlobals)
        W.Globals.emplace_back(
            Slot, M.Globals[Slot].Type == IRType::F64
                      ? ProveValue::ofDouble(V.D)
                      : ProveValue::ofInt(V.I));
      for (unsigned I = 0; I < First->NumParams; ++I)
        W.FirstArgs.push_back(First->Locals[I].Type == IRType::F64
                                  ? ProveValue::ofDouble(CFirst[I].D)
                                  : ProveValue::ofInt(CFirst[I].I));
      for (unsigned I = 0; I < Second->NumParams; ++I)
        W.SecondArgs.push_back(Second->Locals[I].Type == IRType::F64
                                   ? ProveValue::ofDouble(CSecond[I].D)
                                   : ProveValue::ofInt(CSecond[I].I));
      W.Divergence = Divergence;
      P.Verdict = ProveVerdict::Refuted;
      P.Detail = SymDetail;
      P.Witness = std::move(W);
      return P;
    }
    P.Verdict = ProveVerdict::Unknown;
    P.Detail = SymDetail + ", but no concrete divergence was found within " +
               std::to_string(Opts.WitnessTries) + " candidate assignments";
    return P;
  } catch (const OutOfBudget &E) {
    P.Verdict = ProveVerdict::Unknown;
    P.Detail = "budget exhausted (" + E.What + "); raise --prove-budget";
    return P;
  } catch (const Unmodeled &E) {
    P.Verdict = ProveVerdict::Unknown;
    P.Detail = "unmodeled construct: " + E.What;
    return P;
  }
}

std::string pairDesc(const Compilation &C, const PairProof &P) {
  std::string SetName;
  if (P.SetId != ~0u && P.SetId < C.registry().sets().size())
    SetName = C.registry().set(P.SetId).Name;
  if (P.First == P.Second) {
    if (SetName.empty())
      return formatString("instances of '%s'", P.First.c_str());
    return formatString("member '%s' of self COMMSET '%s'", P.First.c_str(),
                        SetName.c_str());
  }
  if (SetName.empty())
    return formatString("calls to '%s' and '%s'", P.First.c_str(),
                        P.Second.c_str());
  return formatString("members '%s' and '%s' of COMMSET '%s'",
                      P.First.c_str(), P.Second.c_str(), SetName.c_str());
}

} // namespace

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

const char *commset::proveVerdictName(ProveVerdict V) {
  switch (V) {
  case ProveVerdict::Proven:
    return "proven-commutative";
  case ProveVerdict::Refuted:
    return "proven-non-commutative";
  case ProveVerdict::Unknown:
    return "unknown";
  }
  return "unknown";
}

std::string ProveValue::str() const {
  if (Ty == IRType::F64) {
    std::ostringstream Os;
    Os << D;
    return Os.str();
  }
  return std::to_string(I);
}

std::string commset::proveWitnessStr(const Module &M, const PairProof &P) {
  if (!P.Witness)
    return {};
  const ProveWitness &W = *P.Witness;
  std::string Out;
  for (const auto &[Slot, V] : W.Globals) {
    if (!Out.empty())
      Out += ", ";
    Out += (Slot < M.Globals.size() ? M.Globals[Slot].Name
                                    : "<global #" + std::to_string(Slot) +
                                          ">") +
           "=" + V.str();
  }
  auto renderCall = [](const std::string &Name,
                       const std::vector<ProveValue> &Args) {
    std::string S = Name + "(";
    for (size_t I = 0; I < Args.size(); ++I) {
      if (I)
        S += ", ";
      S += Args[I].str();
    }
    return S + ")";
  };
  if (!Out.empty())
    Out += "; ";
  Out += "first " + renderCall(P.First, W.FirstArgs) + "; second " +
         renderCall(P.Second, W.SecondArgs);
  return Out;
}

PairProof commset::proveFunctionPair(const Compilation &C,
                                     const Function &First,
                                     const Function &Second,
                                     const ProveOptions &Opts) {
  return provePairImpl(C, &First, &Second, /*AllowRefute=*/true, Opts);
}

ProveResult commset::runCommProve(const Compilation &C,
                                  const Compilation::LoopTarget *T,
                                  const ProveOptions &Opts) {
  ProveResult R;
  const CommSetRegistry &Reg = C.registry();
  const Module &M = C.module();

  // Proofs are per function pair; one pair annotated through several sets
  // (or hit by several PDG edges) proves once.
  std::map<std::pair<std::string, std::string>, PairProof> Cache;
  auto proveCached = [&](const Function *F, const Function *G) {
    std::pair<std::string, std::string> Key = std::minmax(F->Name, G->Name);
    auto It = Cache.find(Key);
    if (It != Cache.end())
      return It->second;
    PairProof P = provePairImpl(C, F, G, /*AllowRefute=*/true, Opts);
    Cache.emplace(Key, P);
    return P;
  };

  for (const CommSetRegistry::SetInfo &S : Reg.sets()) {
    std::vector<const Function *> Members;
    for (const std::string &Callee : Reg.memberCallees()) {
      for (const auto &Mem : Reg.membershipsOf(Callee)) {
        if (Mem.SetId != S.Id)
          continue;
        if (const Function *F = M.findFunction(Callee))
          Members.push_back(F);
        // Native members carry no bodies; their interface commutativity
        // stays a trusted claim (same stance as the CL002 race split).
      }
    }
    std::sort(Members.begin(), Members.end(),
              [](const Function *A, const Function *B) {
                return A->Name < B->Name;
              });
    Members.erase(std::unique(Members.begin(), Members.end()),
                  Members.end());

    std::vector<std::pair<const Function *, const Function *>> PairsToProve;
    if (S.Kind == CommSetKind::Self) {
      for (const Function *F : Members)
        PairsToProve.emplace_back(F, F);
    } else {
      for (size_t I = 0; I < Members.size(); ++I)
        for (size_t J = I + 1; J < Members.size(); ++J)
          PairsToProve.emplace_back(Members[I], Members[J]);
    }

    for (auto [F, G] : PairsToProve) {
      PairProof P = proveCached(F, G);
      P.SetId = S.Id;
      // A predicated set claims commutativity only when the predicate
      // holds; an unconditional witness may violate it, so refutations
      // demote to Unknown (proofs stay: unconditional implies conditional).
      if (S.Pred && P.Verdict == ProveVerdict::Refuted) {
        P.Verdict = ProveVerdict::Unknown;
        P.Detail += "; the set is predicated, so the unconditional "
                    "counterexample does not refute the conditional claim";
        P.Witness.reset();
      }
      switch (P.Verdict) {
      case ProveVerdict::Proven:
        ++R.Proven;
        break;
      case ProveVerdict::Refuted:
        ++R.Refuted;
        break;
      case ProveVerdict::Unknown:
        ++R.Unknown;
        break;
      }
      R.Pairs.push_back(std::move(P));
    }
  }

  // CL063: unannotated call pairs whose carried Memory dependence blocks
  // relaxation — when the prover certifies them, suggest the pragma.
  if (Opts.Suggest && T) {
    std::set<std::pair<std::string, std::string>> Seen;
    for (const PDGEdge &E : T->G.Edges) {
      if (E.Kind != DepKind::Memory || !E.LoopCarried ||
          E.Comm != CommAnnotation::None)
        continue;
      const Instruction *N1 = T->G.Nodes[E.Src];
      const Instruction *N2 = T->G.Nodes[E.Dst];
      if (N1->op() != Opcode::Call || N2->op() != Opcode::Call)
        continue;
      const Function *F = N1->Callee;
      const Function *G = N2->Callee;
      if (!F || !G || F->IsRegion || G->IsRegion)
        continue;
      if (!Reg.commutingSets(F->Name, G->Name).empty())
        continue; // Annotated already; handled above.
      std::pair<std::string, std::string> Key =
          std::minmax(F->Name, G->Name);
      if (!Seen.insert(Key).second)
        continue;
      PairProof P = proveCached(F, G);
      if (P.Verdict != ProveVerdict::Proven)
        continue; // Suggestions only for certainties; no noise otherwise.
      P.SetId = ~0u;
      P.Loc = N1->Loc.isValid() ? N1->Loc : F->Loc;
      ++R.Suggested;
      R.Pairs.push_back(std::move(P));
    }
  }
  return R;
}

std::vector<LintDiagnostic> commset::proveDiagnostics(const Compilation &C,
                                                      const ProveResult &PR) {
  std::vector<LintDiagnostic> Out;
  const Module &M = C.module();
  for (const PairProof &P : PR.Pairs) {
    LintDiagnostic D;
    D.Loc = P.Loc;
    D.Subject = P.First;
    D.Subject2 = P.Second;
    std::string Desc = pairDesc(C, P);
    if (P.SetId == ~0u) {
      // Suggestion: only Proven pairs reach here.
      D.Code = "CL063";
      D.Severity = LintSeverity::Note;
      std::string Pragma =
          P.First == P.Second
              ? "`#pragma commset member(SELF)` above '" + P.First + "'"
              : "`#pragma commset decl(CS_" + P.First + "_" + P.Second +
                    ")` plus `member(...)` on '" + P.First + "' and '" +
                    P.Second + "'";
      D.Message = formatString(
          "unannotated %s are provably commutative; adding %s would let "
          "Algorithm 1 relax this loop-carried dependence",
          Desc.c_str(), Pragma.c_str());
      Out.push_back(std::move(D));
      continue;
    }
    switch (P.Verdict) {
    case ProveVerdict::Refuted:
      D.Code = "CL060";
      D.Severity = LintSeverity::Error;
      D.Message = formatString(
          "%s proven non-commutative: %s; witness: %s",
          Desc.c_str(), P.Witness->Divergence.c_str(),
          proveWitnessStr(M, P).c_str());
      break;
    case ProveVerdict::Proven:
      D.Code = "CL061";
      D.Severity = LintSeverity::Note;
      D.Message = formatString("%s proven commutative: %s", Desc.c_str(),
                               P.Detail.c_str());
      break;
    case ProveVerdict::Unknown:
      D.Code = "CL062";
      D.Severity = LintSeverity::Note;
      D.Message = formatString(
          "commutativity of %s is undecided (%s); effect-summary auditing "
          "(CL02x) remains in force",
          Desc.c_str(), P.Detail.c_str());
      break;
    }
    Out.push_back(std::move(D));
  }
  return Out;
}

unsigned commset::applyProveDowngrades(const ProveResult &PR,
                                       std::vector<LintDiagnostic> &Diags) {
  std::set<std::pair<std::string, std::string>> Proven;
  for (const PairProof &P : PR.Pairs)
    if (P.SetId != ~0u && P.Verdict == ProveVerdict::Proven)
      Proven.insert(std::minmax(P.First, P.Second));

  unsigned N = 0;
  for (LintDiagnostic &D : Diags) {
    if (D.Code != "CL020" && D.Code != "CL021" && D.Code != "CL023")
      continue;
    if (D.Severity == LintSeverity::Note)
      continue; // Already downgraded (cross-plan reruns).
    if (D.Subject.empty())
      continue;
    std::pair<std::string, std::string> Key = std::minmax(
        D.Subject, D.Subject2.empty() ? D.Subject : D.Subject2);
    if (!Proven.count(Key))
      continue;
    D.Severity = LintSeverity::Note;
    D.Message += " [downgraded: CommProve verified the pair commutes "
                 "(CL061)]";
    ++N;
  }
  return N;
}

unsigned commset::annotateProofTokens(PDG &G, const ProveResult &PR) {
  std::set<std::pair<std::string, std::string>> Proven;
  for (const PairProof &P : PR.Pairs)
    if (P.Verdict == ProveVerdict::Proven)
      Proven.insert(std::minmax(P.First, P.Second));

  unsigned N = 0;
  for (PDGEdge &E : G.Edges) {
    if (E.Comm == CommAnnotation::None || E.Kind != DepKind::Memory)
      continue;
    const Instruction *N1 = G.Nodes[E.Src];
    const Instruction *N2 = G.Nodes[E.Dst];
    if (N1->op() != Opcode::Call || N2->op() != Opcode::Call)
      continue;
    if (!N1->Callee || !N2->Callee)
      continue;
    if (!Proven.count(std::minmax(N1->Callee->Name, N2->Callee->Name)))
      continue;
    if (!E.ProvenCommutative) {
      E.ProvenCommutative = true;
      ++N;
    }
  }
  return N;
}
