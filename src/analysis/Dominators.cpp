//===- Dominators.cpp -----------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Analysis/Dominators.h"

#include <algorithm>
#include <cassert>

using namespace commset;

bool DomTree::dominates(unsigned A, unsigned B) const {
  // Walk up the dominator tree from B.
  int Cur = static_cast<int>(B);
  while (Cur != -1) {
    if (static_cast<unsigned>(Cur) == A)
      return true;
    if (Cur == IDom[Cur])
      return false; // Entry (self-idom convention not used, but be safe).
    Cur = IDom[Cur];
  }
  return false;
}

bool DomTree::dominates(const Instruction *A, const Instruction *B) const {
  unsigned BlockA = A->Parent->Id;
  unsigned BlockB = B->Parent->Id;
  if (BlockA == BlockB)
    return A->Id <= B->Id;
  return dominates(BlockA, BlockB);
}

bool PostDomTree::postDominates(unsigned A, unsigned B) const {
  int Cur = static_cast<int>(B);
  while (Cur != -1) {
    if (static_cast<unsigned>(Cur) == A)
      return true;
    Cur = IPDom[Cur];
  }
  return false;
}

namespace {

/// Generic iterative idom computation over an arbitrary graph given in
/// predecessor form, with nodes pre-sorted in reverse order of a DFS from
/// the root (reverse post-order).
std::vector<int> computeIDoms(unsigned NumNodes, unsigned Root,
                              const std::vector<std::vector<unsigned>> &Preds,
                              const std::vector<unsigned> &RPO) {
  std::vector<int> IDom(NumNodes, -1);
  std::vector<int> RPONumber(NumNodes, -1);
  for (unsigned I = 0; I < RPO.size(); ++I)
    RPONumber[RPO[I]] = static_cast<int>(I);

  auto intersect = [&](int A, int B) {
    while (A != B) {
      while (RPONumber[A] > RPONumber[B])
        A = IDom[A];
      while (RPONumber[B] > RPONumber[A])
        B = IDom[B];
    }
    return A;
  };

  IDom[Root] = static_cast<int>(Root);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned Node : RPO) {
      if (Node == Root)
        continue;
      int NewIDom = -1;
      for (unsigned Pred : Preds[Node]) {
        if (IDom[Pred] == -1)
          continue;
        NewIDom = NewIDom == -1
                      ? static_cast<int>(Pred)
                      : intersect(NewIDom, static_cast<int>(Pred));
      }
      if (NewIDom != -1 && IDom[Node] != NewIDom) {
        IDom[Node] = NewIDom;
        Changed = true;
      }
    }
  }
  IDom[Root] = -1; // Root has no immediate dominator.
  return IDom;
}

std::vector<unsigned>
reversePostOrder(unsigned NumNodes, unsigned Root,
                 const std::vector<std::vector<unsigned>> &Succs) {
  std::vector<unsigned> PostOrder;
  std::vector<char> Visited(NumNodes, 0);
  // Iterative DFS with an explicit stack of (node, next-successor-index).
  std::vector<std::pair<unsigned, size_t>> Stack;
  Stack.push_back({Root, 0});
  Visited[Root] = 1;
  while (!Stack.empty()) {
    auto &[Node, Next] = Stack.back();
    if (Next < Succs[Node].size()) {
      unsigned Succ = Succs[Node][Next++];
      if (!Visited[Succ]) {
        Visited[Succ] = 1;
        Stack.push_back({Succ, 0});
      }
      continue;
    }
    PostOrder.push_back(Node);
    Stack.pop_back();
  }
  std::reverse(PostOrder.begin(), PostOrder.end());
  return PostOrder;
}

} // namespace

DomTree commset::computeDominators(const Function &F) {
  unsigned N = static_cast<unsigned>(F.Blocks.size());
  std::vector<std::vector<unsigned>> Succs(N), Preds(N);
  for (const auto &BB : F.Blocks)
    for (BasicBlock *Succ : BB->successors()) {
      Succs[BB->Id].push_back(Succ->Id);
      Preds[Succ->Id].push_back(BB->Id);
    }
  std::vector<unsigned> RPO = reversePostOrder(N, F.entry()->Id, Succs);
  DomTree DT;
  DT.IDom = computeIDoms(N, F.entry()->Id, Preds, RPO);
  return DT;
}

PostDomTree commset::computePostDominators(const Function &F) {
  unsigned N = static_cast<unsigned>(F.Blocks.size());
  unsigned Exit = N; // Virtual exit.
  std::vector<std::vector<unsigned>> Succs(N + 1), Preds(N + 1);
  for (const auto &BB : F.Blocks) {
    auto BlockSuccs = BB->successors();
    if (BlockSuccs.empty()) {
      // Ret block (or unterminated, which the verifier rejects): edge to
      // the virtual exit.
      Succs[BB->Id].push_back(Exit);
      Preds[Exit].push_back(BB->Id);
      continue;
    }
    for (BasicBlock *Succ : BlockSuccs) {
      Succs[BB->Id].push_back(Succ->Id);
      Preds[Succ->Id].push_back(BB->Id);
    }
  }
  // Reverse graph rooted at the virtual exit.
  std::vector<unsigned> RPO = reversePostOrder(N + 1, Exit, Preds);
  PostDomTree PDT;
  PDT.VirtualExit = Exit;
  PDT.IPDom = computeIDoms(N + 1, Exit, Succs, RPO);
  return PDT;
}

std::vector<std::vector<unsigned>>
commset::computeControlDeps(const Function &F, const PostDomTree &PDT) {
  unsigned N = static_cast<unsigned>(F.Blocks.size());
  std::vector<std::vector<unsigned>> Deps(N);
  // Ferrante-Ottenstein-Warren: for each CFG edge (B -> S) where S does not
  // post-dominate B, every block on the post-dominator tree path from S up
  // to (exclusive) ipdom(B) is control dependent on B.
  for (const auto &BB : F.Blocks) {
    for (BasicBlock *Succ : BB->successors()) {
      if (PDT.postDominates(Succ->Id, BB->Id))
        continue;
      int Stop = PDT.IPDom[BB->Id];
      int Cur = static_cast<int>(Succ->Id);
      while (Cur != -1 && Cur != Stop) {
        if (static_cast<unsigned>(Cur) < N)
          Deps[Cur].push_back(BB->Id);
        Cur = PDT.IPDom[Cur];
      }
    }
  }
  return Deps;
}
