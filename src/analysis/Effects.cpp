//===- Effects.cpp --------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Analysis/Effects.h"

#include <cassert>

using namespace commset;

const EffectSummary EffectAnalysis::EmptySummary;

void EffectSummary::mergeClasses(const EffectSummary &Other) {
  World |= Other.World;
  ReadClasses.insert(Other.ReadClasses.begin(), Other.ReadClasses.end());
  WriteClasses.insert(Other.WriteClasses.begin(), Other.WriteClasses.end());
  ReadGlobals.insert(Other.ReadGlobals.begin(), Other.ReadGlobals.end());
  WriteGlobals.insert(Other.WriteGlobals.begin(), Other.WriteGlobals.end());
}

EffectSummary EffectAnalysis::summaryFor(const NativeDecl *N) {
  EffectSummary S;
  const MemoryEffects &E = N->Effects;
  if (E.World) {
    S.World = true;
    S.ArgMemRead = S.ArgMemWrite = true;
    return S;
  }
  S.Malloc = E.Malloc;
  S.ArgMemRead = E.ArgMemRead;
  S.ArgMemWrite = E.ArgMemWrite;
  S.ReadClasses = E.ReadClasses;
  S.WriteClasses = E.WriteClasses;
  return S;
}

namespace {
/// Checks that a value is provably a fresh allocation: directly a
/// malloc-like call, null, or a load of a local whose every store is one
/// (flow-insensitive; cycles between locals resolve to fresh).
class FreshnessChecker {
public:
  FreshnessChecker(const Function &F,
                   const std::map<const Function *, EffectSummary> &Summaries)
      : F(F), Summaries(Summaries) {}

  bool freshOperand(const Operand &Op) {
    if (Op.K == Operand::Kind::ConstNull)
      return true; // Null (incl. unreachable default returns) is harmless.
    if (!Op.isInstr())
      return false;
    const Instruction *Def = Op.Def;
    switch (Def->op()) {
    case Opcode::CallNative:
      return Def->Native->Effects.Malloc && !Def->Native->Effects.World;
    case Opcode::Call: {
      auto It = Summaries.find(Def->Callee);
      return It != Summaries.end() && It->second.Malloc;
    }
    case Opcode::LoadLocal:
      return freshLocal(Def->SlotId);
    default:
      return false;
    }
  }

private:
  bool freshLocal(unsigned Local) {
    if (Local < F.NumParams)
      return false; // Caller-provided.
    if (Visited.count(Local))
      return true; // Cycle: optimistic, resolved by the other stores.
    Visited.insert(Local);
    bool AnyStore = false;
    for (const auto &BB : F.Blocks) {
      for (const auto &Instr : BB->Instrs) {
        if (Instr->op() != Opcode::StoreLocal || Instr->SlotId != Local)
          continue;
        AnyStore = true;
        if (!freshOperand(Instr->Operands[0]))
          return false;
      }
    }
    return AnyStore;
  }

  const Function &F;
  const std::map<const Function *, EffectSummary> &Summaries;
  std::set<unsigned> Visited;
};
} // namespace

/// \returns true when every value returned traces to a malloc-like call,
/// making the function itself allocator-like.
static bool returnsFreshPointer(const Function &F,
                                const std::map<const Function *,
                                               EffectSummary> &Summaries) {
  if (F.ReturnType != IRType::Ptr)
    return false;
  bool AnyRet = false;
  for (const auto &BB : F.Blocks) {
    for (const auto &Instr : BB->Instrs) {
      if (Instr->op() != Opcode::Ret || Instr->Operands.empty())
        continue;
      AnyRet = true;
      FreshnessChecker Checker(F, Summaries);
      if (!Checker.freshOperand(Instr->Operands[0]))
        return false;
    }
  }
  return AnyRet;
}

EffectAnalysis EffectAnalysis::compute(const Module &M) {
  EffectAnalysis EA;
  for (const auto &F : M.Functions)
    EA.Summaries[F.get()] = EffectSummary();

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &F : M.Functions) {
      EffectSummary S = EA.Summaries[F.get()];
      for (const auto &BB : F->Blocks) {
        for (const auto &Instr : BB->Instrs) {
          switch (Instr->op()) {
          case Opcode::LoadGlobal:
            S.ReadGlobals.insert(Instr->SlotId);
            break;
          case Opcode::StoreGlobal:
            S.WriteGlobals.insert(Instr->SlotId);
            break;
          case Opcode::CallNative: {
            EffectSummary N = summaryFor(Instr->Native);
            S.mergeClasses(N);
            S.ArgMemRead |= N.ArgMemRead;
            S.ArgMemWrite |= N.ArgMemWrite;
            break;
          }
          case Opcode::Call: {
            const EffectSummary &Callee = EA.Summaries[Instr->Callee];
            S.mergeClasses(Callee);
            S.ArgMemRead |= Callee.ArgMemRead;
            S.ArgMemWrite |= Callee.ArgMemWrite;
            break;
          }
          default:
            break;
          }
        }
      }
      S.Malloc = returnsFreshPointer(*F, EA.Summaries);

      EffectSummary &Old = EA.Summaries[F.get()];
      if (Old.World != S.World || Old.Malloc != S.Malloc ||
          Old.ArgMemRead != S.ArgMemRead ||
          Old.ArgMemWrite != S.ArgMemWrite ||
          Old.ReadClasses != S.ReadClasses ||
          Old.WriteClasses != S.WriteClasses ||
          Old.ReadGlobals != S.ReadGlobals ||
          Old.WriteGlobals != S.WriteGlobals) {
        Old = S;
        Changed = true;
      }
    }
  }
  return EA;
}

const EffectSummary &EffectAnalysis::summaryFor(const Function *F) const {
  auto It = Summaries.find(F);
  return It == Summaries.end() ? EmptySummary : It->second;
}

EffectSummary
EffectAnalysis::instructionEffects(const Instruction *Instr) const {
  EffectSummary S;
  switch (Instr->op()) {
  case Opcode::LoadGlobal:
    S.ReadGlobals.insert(Instr->SlotId);
    return S;
  case Opcode::StoreGlobal:
    S.WriteGlobals.insert(Instr->SlotId);
    return S;
  case Opcode::CallNative:
    return summaryFor(Instr->Native);
  case Opcode::Call:
    return summaryFor(Instr->Callee);
  default:
    return S;
  }
}

//===----------------------------------------------------------------------===//
// PtrOrigins
//===----------------------------------------------------------------------===//

unsigned PtrOrigins::find(unsigned Local) const {
  while (UnionParent[Local] != Local) {
    UnionParent[Local] = UnionParent[UnionParent[Local]];
    Local = UnionParent[Local];
  }
  return Local;
}

void PtrOrigins::unite(unsigned A, unsigned B) {
  A = find(A);
  B = find(B);
  if (A == B)
    return;
  UnionParent[B] = A;
  UnknownFlag[A] |= UnknownFlag[B];
  RootSets[A].insert(RootSets[B].begin(), RootSets[B].end());
}

/// \returns true when a call instruction returns a fresh object.
static bool isMallocCall(const Instruction *Instr, const EffectAnalysis &EA) {
  if (Instr->op() == Opcode::CallNative)
    return Instr->Native->Effects.Malloc && !Instr->Native->Effects.World;
  if (Instr->op() == Opcode::Call)
    return EA.summaryFor(Instr->Callee).Malloc;
  return false;
}

PtrOrigins PtrOrigins::compute(const Function &F, const EffectAnalysis &EA) {
  PtrOrigins PO;
  unsigned N = static_cast<unsigned>(F.Locals.size());
  PO.UnionParent.resize(N);
  for (unsigned I = 0; I < N; ++I)
    PO.UnionParent[I] = I;
  PO.UnknownFlag.assign(N, 0);
  PO.RootSets.assign(N, {});

  // Ptr parameters come from the caller: unknown.
  for (unsigned I = 0; I < F.NumParams; ++I)
    if (F.Locals[I].Type == IRType::Ptr)
      PO.UnknownFlag[I] = 1;

  for (const auto &BB : F.Blocks) {
    for (const auto &Instr : BB->Instrs) {
      if (Instr->op() != Opcode::StoreLocal)
        continue;
      if (F.Locals[Instr->SlotId].Type != IRType::Ptr)
        continue;
      unsigned Dest = Instr->SlotId;
      const Operand &Value = Instr->Operands[0];
      if (!Value.isInstr())
        continue; // null / string constants carry no aliasable memory.
      const Instruction *Def = Value.Def;
      switch (Def->op()) {
      case Opcode::LoadLocal:
        PO.unite(Dest, Def->SlotId);
        break;
      case Opcode::Call:
      case Opcode::CallNative:
        if (isMallocCall(Def, EA))
          PO.RootSets[PO.find(Dest)].insert(Def);
        else
          PO.UnknownFlag[PO.find(Dest)] = 1;
        break;
      case Opcode::LoadGlobal:
        PO.UnknownFlag[PO.find(Dest)] = 1;
        break;
      default:
        PO.UnknownFlag[PO.find(Dest)] = 1;
        break;
      }
    }
  }
  return PO;
}

PtrOrigins::AliasClass PtrOrigins::classOfLocal(unsigned Local) const {
  unsigned Rep = find(Local);
  AliasClass C;
  C.Unknown = UnknownFlag[Rep] != 0;
  C.Roots = RootSets[Rep];
  return C;
}

PtrOrigins::AliasClass PtrOrigins::classOf(const Operand &Op) const {
  AliasClass C;
  if (!Op.isInstr())
    return C; // Constants: empty (benign) class.
  const Instruction *Def = Op.Def;
  switch (Def->op()) {
  case Opcode::LoadLocal:
    return classOfLocal(Def->SlotId);
  case Opcode::Call:
  case Opcode::CallNative:
    // Direct use of a call result as an argument.
    if (Def->op() == Opcode::CallNative
            ? (Def->Native->Effects.Malloc && !Def->Native->Effects.World)
            : false) {
      C.Roots.insert(Def);
      return C;
    }
    C.Unknown = true;
    return C;
  case Opcode::LoadGlobal:
    C.Unknown = true;
    return C;
  default:
    C.Unknown = true;
    return C;
  }
}

bool PtrOrigins::mayAlias(const AliasClass &A, const AliasClass &B) {
  if (A.empty() || B.empty())
    return false;
  if (A.Unknown || B.Unknown)
    return true;
  for (const Instruction *Root : A.Roots)
    if (B.Roots.count(Root))
      return true;
  return false;
}
