//===- Effects.cpp --------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Analysis/Effects.h"

#include <cassert>

using namespace commset;

const EffectSummary EffectAnalysis::EmptySummary;

void EffectSummary::mergeClasses(const EffectSummary &Other) {
  World |= Other.World;
  ReadClasses.insert(Other.ReadClasses.begin(), Other.ReadClasses.end());
  WriteClasses.insert(Other.WriteClasses.begin(), Other.WriteClasses.end());
  ReadGlobals.insert(Other.ReadGlobals.begin(), Other.ReadGlobals.end());
  WriteGlobals.insert(Other.WriteGlobals.begin(), Other.WriteGlobals.end());
  for (const auto &[Slot, Kind] : Other.GlobalWriteKinds)
    noteGlobalWrite(Slot, Kind);
  BareReadGlobals.insert(Other.BareReadGlobals.begin(),
                         Other.BareReadGlobals.end());
}

void EffectSummary::noteGlobalWrite(unsigned Slot, GlobalWriteKind Kind) {
  auto [It, Inserted] = GlobalWriteKinds.try_emplace(Slot, Kind);
  if (!Inserted && Kind == GlobalWriteKind::Ordered)
    It->second = GlobalWriteKind::Ordered;
}

EffectSummary EffectAnalysis::summaryFor(const NativeDecl *N) {
  EffectSummary S;
  const MemoryEffects &E = N->Effects;
  // Argmem at parameter granularity: a native declared argmem may touch the
  // pointee of any ptr parameter.
  auto ptrParams = [&N](std::set<unsigned> &Out) {
    for (unsigned I = 0; I < N->ParamTypes.size(); ++I)
      if (N->ParamTypes[I] == IRType::Ptr)
        Out.insert(I);
  };
  if (E.World) {
    S.World = true;
    S.ArgMemRead = S.ArgMemWrite = true;
    ptrParams(S.ArgReadParams);
    ptrParams(S.ArgWriteParams);
    return S;
  }
  S.Malloc = E.Malloc;
  S.ArgMemRead = E.ArgMemRead;
  S.ArgMemWrite = E.ArgMemWrite;
  if (E.ArgMemRead)
    ptrParams(S.ArgReadParams);
  if (E.ArgMemWrite)
    ptrParams(S.ArgWriteParams);
  S.ReadClasses = E.ReadClasses;
  S.WriteClasses = E.WriteClasses;
  return S;
}

namespace {
/// Checks that a value is provably a fresh allocation: directly a
/// malloc-like call, null, or a load of a local whose every store is one
/// (flow-insensitive; cycles between locals resolve to fresh).
class FreshnessChecker {
public:
  FreshnessChecker(const Function &F,
                   const std::map<const Function *, EffectSummary> &Summaries)
      : F(F), Summaries(Summaries) {}

  bool freshOperand(const Operand &Op) {
    if (Op.K == Operand::Kind::ConstNull)
      return true; // Null (incl. unreachable default returns) is harmless.
    if (!Op.isInstr())
      return false;
    const Instruction *Def = Op.Def;
    switch (Def->op()) {
    case Opcode::CallNative:
      return Def->Native->Effects.Malloc && !Def->Native->Effects.World;
    case Opcode::Call: {
      auto It = Summaries.find(Def->Callee);
      return It != Summaries.end() && It->second.Malloc;
    }
    case Opcode::LoadLocal:
      return freshLocal(Def->SlotId);
    default:
      return false;
    }
  }

private:
  bool freshLocal(unsigned Local) {
    if (Local < F.NumParams)
      return false; // Caller-provided.
    if (Visited.count(Local))
      return true; // Cycle: optimistic, resolved by the other stores.
    Visited.insert(Local);
    bool AnyStore = false;
    for (const auto &BB : F.Blocks) {
      for (const auto &Instr : BB->Instrs) {
        if (Instr->op() != Opcode::StoreLocal || Instr->SlotId != Local)
          continue;
        AnyStore = true;
        if (!freshOperand(Instr->Operands[0]))
          return false;
      }
    }
    return AnyStore;
  }

  const Function &F;
  const std::map<const Function *, EffectSummary> &Summaries;
  std::set<unsigned> Visited;
};
} // namespace

namespace {

/// Collects the leaves of the addition tree rooted at \p Op: recursing
/// through Add instructions only, so `g + v + 3` yields {load g, v, 3}.
void addTreeLeaves(const Operand &Op, std::vector<const Operand *> &Leaves,
                   unsigned Depth = 0) {
  if (Depth <= 16 && Op.isInstr() && Op.Def->op() == Opcode::Add) {
    addTreeLeaves(Op.Def->Operands[0], Leaves, Depth + 1);
    addTreeLeaves(Op.Def->Operands[1], Leaves, Depth + 1);
    return;
  }
  Leaves.push_back(&Op);
}

} // namespace

GlobalWriteKind
commset::classifyGlobalStore(const Instruction &Store,
                             const Instruction **ReductionLoad) {
  if (ReductionLoad)
    *ReductionLoad = nullptr;
  std::vector<const Operand *> Leaves;
  addTreeLeaves(Store.Operands[0], Leaves);
  const Instruction *SelfLoad = nullptr;
  unsigned SelfLoads = 0;
  for (const Operand *Leaf : Leaves) {
    if (!Leaf->isInstr())
      continue;
    const Instruction *Def = Leaf->Def;
    if (Def->op() == Opcode::LoadGlobal && Def->SlotId == Store.SlotId) {
      SelfLoad = Def;
      ++SelfLoads;
    }
  }
  if (SelfLoads != 1)
    return GlobalWriteKind::Ordered; // Overwrite (0) or g-dependent E (>1).
  if (ReductionLoad)
    *ReductionLoad = SelfLoad;
  return GlobalWriteKind::AddReduction;
}

namespace {

/// Traces a ptr value to the caller parameters it may carry. Unknown stays
/// conservative: the value may point into any parameter-reachable region.
struct ParamOrigin {
  bool Fresh = false;   ///< Provably a fresh in-function allocation (or null).
  bool Unknown = false; ///< Could be anything (globals, unanalyzed defs).
  std::set<unsigned> Params;
};

class ParamTracer {
public:
  ParamTracer(const Function &F,
              const std::map<const Function *, EffectSummary> &Summaries)
      : F(F), Summaries(Summaries) {}

  ParamOrigin traceOperand(const Operand &Op) {
    ParamOrigin O;
    if (Op.K == Operand::Kind::ConstNull) {
      O.Fresh = true;
      return O;
    }
    if (!Op.isInstr()) {
      O.Fresh = true; // String-table constants carry no argument memory.
      return O;
    }
    const Instruction *Def = Op.Def;
    switch (Def->op()) {
    case Opcode::LoadLocal:
      return traceLocal(Def->SlotId);
    case Opcode::Call: {
      auto It = Summaries.find(Def->Callee);
      O.Fresh = It != Summaries.end() && It->second.Malloc;
      O.Unknown = !O.Fresh;
      return O;
    }
    case Opcode::CallNative:
      O.Fresh = Def->Native->Effects.Malloc && !Def->Native->Effects.World;
      O.Unknown = !O.Fresh;
      return O;
    default:
      O.Unknown = true;
      return O;
    }
  }

private:
  ParamOrigin traceLocal(unsigned Local) {
    ParamOrigin O;
    if (Local < F.NumParams) {
      O.Params.insert(Local);
      return O;
    }
    if (!Visited.insert(Local).second)
      return O; // Cycle: neutral; the other stores decide.
    bool AnyStore = false;
    for (const auto &BB : F.Blocks) {
      for (const auto &Instr : BB->Instrs) {
        if (Instr->op() != Opcode::StoreLocal || Instr->SlotId != Local)
          continue;
        AnyStore = true;
        ParamOrigin Sub = traceOperand(Instr->Operands[0]);
        O.Unknown |= Sub.Unknown;
        O.Fresh |= Sub.Fresh;
        O.Params.insert(Sub.Params.begin(), Sub.Params.end());
      }
    }
    if (!AnyStore)
      O.Unknown = true; // Never-stored ptr local: treat as opaque.
    return O;
  }

  const Function &F;
  const std::map<const Function *, EffectSummary> &Summaries;
  std::set<unsigned> Visited;
};

/// Maps a callee's per-parameter argmem effects through one call site into
/// the caller's parameter space. Unknown origins widen to every ptr
/// parameter of the caller (sound); fresh origins contribute nothing.
void mapCalleeArgParams(const Instruction &CallInstr,
                        const std::set<unsigned> &CalleeParams,
                        const Function &Caller,
                        const std::map<const Function *, EffectSummary>
                            &Summaries,
                        std::set<unsigned> &Out) {
  for (unsigned P : CalleeParams) {
    if (P >= CallInstr.Operands.size())
      continue;
    ParamTracer Tracer(Caller, Summaries);
    ParamOrigin O = Tracer.traceOperand(CallInstr.Operands[P]);
    Out.insert(O.Params.begin(), O.Params.end());
    if (O.Unknown)
      for (unsigned I = 0; I < Caller.NumParams; ++I)
        if (Caller.Locals[I].Type == IRType::Ptr)
          Out.insert(I);
  }
}

} // namespace

/// \returns true when every value returned traces to a malloc-like call,
/// making the function itself allocator-like.
static bool returnsFreshPointer(const Function &F,
                                const std::map<const Function *,
                                               EffectSummary> &Summaries) {
  if (F.ReturnType != IRType::Ptr)
    return false;
  bool AnyRet = false;
  for (const auto &BB : F.Blocks) {
    for (const auto &Instr : BB->Instrs) {
      if (Instr->op() != Opcode::Ret || Instr->Operands.empty())
        continue;
      AnyRet = true;
      FreshnessChecker Checker(F, Summaries);
      if (!Checker.freshOperand(Instr->Operands[0]))
        return false;
    }
  }
  return AnyRet;
}

EffectAnalysis EffectAnalysis::compute(const Module &M) {
  EffectAnalysis EA;
  for (const auto &F : M.Functions)
    EA.Summaries[F.get()] = EffectSummary();

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &F : M.Functions) {
      EffectSummary S = EA.Summaries[F.get()];

      // Pre-pass: classify every direct StoreGlobal and remember the loads
      // consumed by add-reduction patterns, so the main pass can tell bare
      // reads apart from reduction reads.
      std::set<const Instruction *> ReductionLoads;
      for (const auto &BB : F->Blocks) {
        for (const auto &Instr : BB->Instrs) {
          if (Instr->op() != Opcode::StoreGlobal)
            continue;
          const Instruction *Load = nullptr;
          S.noteGlobalWrite(Instr->SlotId,
                            classifyGlobalStore(*Instr, &Load));
          if (Load)
            ReductionLoads.insert(Load);
        }
      }

      for (const auto &BB : F->Blocks) {
        for (const auto &Instr : BB->Instrs) {
          switch (Instr->op()) {
          case Opcode::LoadGlobal:
            S.ReadGlobals.insert(Instr->SlotId);
            if (!ReductionLoads.count(Instr.get()))
              S.BareReadGlobals.insert(Instr->SlotId);
            break;
          case Opcode::StoreGlobal:
            S.WriteGlobals.insert(Instr->SlotId);
            break;
          case Opcode::CallNative: {
            EffectSummary N = summaryFor(Instr->Native);
            S.mergeClasses(N);
            S.ArgMemRead |= N.ArgMemRead;
            S.ArgMemWrite |= N.ArgMemWrite;
            mapCalleeArgParams(*Instr, N.ArgReadParams, *F, EA.Summaries,
                               S.ArgReadParams);
            mapCalleeArgParams(*Instr, N.ArgWriteParams, *F, EA.Summaries,
                               S.ArgWriteParams);
            break;
          }
          case Opcode::Call: {
            const EffectSummary &Callee = EA.Summaries[Instr->Callee];
            S.mergeClasses(Callee);
            S.ArgMemRead |= Callee.ArgMemRead;
            S.ArgMemWrite |= Callee.ArgMemWrite;
            mapCalleeArgParams(*Instr, Callee.ArgReadParams, *F,
                               EA.Summaries, S.ArgReadParams);
            mapCalleeArgParams(*Instr, Callee.ArgWriteParams, *F,
                               EA.Summaries, S.ArgWriteParams);
            break;
          }
          default:
            break;
          }
        }
      }
      S.Malloc = returnsFreshPointer(*F, EA.Summaries);

      EffectSummary &Old = EA.Summaries[F.get()];
      if (Old.World != S.World || Old.Malloc != S.Malloc ||
          Old.ArgMemRead != S.ArgMemRead ||
          Old.ArgMemWrite != S.ArgMemWrite ||
          Old.ReadClasses != S.ReadClasses ||
          Old.WriteClasses != S.WriteClasses ||
          Old.ReadGlobals != S.ReadGlobals ||
          Old.WriteGlobals != S.WriteGlobals ||
          Old.GlobalWriteKinds != S.GlobalWriteKinds ||
          Old.BareReadGlobals != S.BareReadGlobals ||
          Old.ArgReadParams != S.ArgReadParams ||
          Old.ArgWriteParams != S.ArgWriteParams) {
        Old = S;
        Changed = true;
      }
    }
  }
  return EA;
}

const EffectSummary &EffectAnalysis::summaryFor(const Function *F) const {
  auto It = Summaries.find(F);
  return It == Summaries.end() ? EmptySummary : It->second;
}

EffectSummary
EffectAnalysis::instructionEffects(const Instruction *Instr) const {
  EffectSummary S;
  switch (Instr->op()) {
  case Opcode::LoadGlobal:
    S.ReadGlobals.insert(Instr->SlotId);
    return S;
  case Opcode::StoreGlobal:
    S.WriteGlobals.insert(Instr->SlotId);
    return S;
  case Opcode::CallNative:
    return summaryFor(Instr->Native);
  case Opcode::Call:
    return summaryFor(Instr->Callee);
  default:
    return S;
  }
}

//===----------------------------------------------------------------------===//
// PtrOrigins
//===----------------------------------------------------------------------===//

unsigned PtrOrigins::find(unsigned Local) const {
  while (UnionParent[Local] != Local) {
    UnionParent[Local] = UnionParent[UnionParent[Local]];
    Local = UnionParent[Local];
  }
  return Local;
}

void PtrOrigins::unite(unsigned A, unsigned B) {
  A = find(A);
  B = find(B);
  if (A == B)
    return;
  UnionParent[B] = A;
  UnknownFlag[A] |= UnknownFlag[B];
  RootSets[A].insert(RootSets[B].begin(), RootSets[B].end());
}

/// \returns true when a call instruction returns a fresh object.
static bool isMallocCall(const Instruction *Instr, const EffectAnalysis &EA) {
  if (Instr->op() == Opcode::CallNative)
    return Instr->Native->Effects.Malloc && !Instr->Native->Effects.World;
  if (Instr->op() == Opcode::Call)
    return EA.summaryFor(Instr->Callee).Malloc;
  return false;
}

PtrOrigins PtrOrigins::compute(const Function &F, const EffectAnalysis &EA) {
  PtrOrigins PO;
  unsigned N = static_cast<unsigned>(F.Locals.size());
  PO.UnionParent.resize(N);
  for (unsigned I = 0; I < N; ++I)
    PO.UnionParent[I] = I;
  PO.UnknownFlag.assign(N, 0);
  PO.RootSets.assign(N, {});

  // Ptr parameters come from the caller: unknown.
  for (unsigned I = 0; I < F.NumParams; ++I)
    if (F.Locals[I].Type == IRType::Ptr)
      PO.UnknownFlag[I] = 1;

  for (const auto &BB : F.Blocks) {
    for (const auto &Instr : BB->Instrs) {
      if (Instr->op() != Opcode::StoreLocal)
        continue;
      if (F.Locals[Instr->SlotId].Type != IRType::Ptr)
        continue;
      unsigned Dest = Instr->SlotId;
      const Operand &Value = Instr->Operands[0];
      if (!Value.isInstr())
        continue; // null / string constants carry no aliasable memory.
      const Instruction *Def = Value.Def;
      switch (Def->op()) {
      case Opcode::LoadLocal:
        PO.unite(Dest, Def->SlotId);
        break;
      case Opcode::Call:
      case Opcode::CallNative:
        if (isMallocCall(Def, EA))
          PO.RootSets[PO.find(Dest)].insert(Def);
        else
          PO.UnknownFlag[PO.find(Dest)] = 1;
        break;
      case Opcode::LoadGlobal:
        PO.UnknownFlag[PO.find(Dest)] = 1;
        break;
      default:
        PO.UnknownFlag[PO.find(Dest)] = 1;
        break;
      }
    }
  }
  return PO;
}

PtrOrigins::AliasClass PtrOrigins::classOfLocal(unsigned Local) const {
  unsigned Rep = find(Local);
  AliasClass C;
  C.Unknown = UnknownFlag[Rep] != 0;
  C.Roots = RootSets[Rep];
  return C;
}

PtrOrigins::AliasClass PtrOrigins::classOf(const Operand &Op) const {
  AliasClass C;
  if (!Op.isInstr())
    return C; // Constants: empty (benign) class.
  const Instruction *Def = Op.Def;
  switch (Def->op()) {
  case Opcode::LoadLocal:
    return classOfLocal(Def->SlotId);
  case Opcode::Call:
  case Opcode::CallNative:
    // Direct use of a call result as an argument.
    if (Def->op() == Opcode::CallNative
            ? (Def->Native->Effects.Malloc && !Def->Native->Effects.World)
            : false) {
      C.Roots.insert(Def);
      return C;
    }
    C.Unknown = true;
    return C;
  case Opcode::LoadGlobal:
    C.Unknown = true;
    return C;
  default:
    C.Unknown = true;
    return C;
  }
}

bool PtrOrigins::mayAlias(const AliasClass &A, const AliasClass &B) {
  if (A.empty() || B.empty())
    return false;
  if (A.Unknown || B.Unknown)
    return true;
  for (const Instruction *Root : A.Roots)
    if (B.Roots.count(Root))
      return true;
  return false;
}
