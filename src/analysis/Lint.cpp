//===- Lint.cpp - CommLint driver and plan-consistency checker ------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Analysis/Lint.h"

#include "LintInternal.h"
#include "commset/Support/StringUtils.h"

#include <algorithm>

using namespace commset;
using namespace commset::lint;

const char *commset::lintSeverityName(LintSeverity S) {
  switch (S) {
  case LintSeverity::Note:
    return "note";
  case LintSeverity::Warning:
    return "warning";
  case LintSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string LintDiagnostic::str() const {
  return formatString("%s: [%s] %s: %s", lintSeverityName(Severity),
                      Code.c_str(), Loc.str().c_str(), Message.c_str());
}

unsigned LintResult::errors() const {
  unsigned N = 0;
  for (const LintDiagnostic &D : Diags)
    N += D.Severity == LintSeverity::Error;
  return N;
}

unsigned LintResult::warnings() const {
  unsigned N = 0;
  for (const LintDiagnostic &D : Diags)
    N += D.Severity == LintSeverity::Warning;
  return N;
}

bool LintResult::hasCode(const std::string &Code) const {
  for (const LintDiagnostic &D : Diags)
    if (D.Code == Code)
      return true;
  return false;
}

int LintResult::exitCode() const {
  if (errors())
    return 2;
  if (warnings())
    return 1;
  return 0;
}

std::string LintResult::str() const {
  std::string Out;
  for (const LintDiagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}

const char *commset::lintCodeDescription(const std::string &Code) {
  if (Code == "CL001")
    return "unprotected concurrent accesses to interpreter globals (race)";
  if (Code == "CL002")
    return "unprotected concurrent accesses to declared library state";
  if (Code == "CL010")
    return "commutativity predicate calls a side-effecting function";
  if (Code == "CL011")
    return "commutativity predicate reads mutable global state";
  if (Code == "CL012")
    return "sync-mode request contradicts COMMSETNOSYNC";
  if (Code == "CL013")
    return "duplicate membership of one function in a set";
  if (Code == "CL014")
    return "two group sets with identical member lists";
  if (Code == "CL020")
    return "self-set member performs an order-sensitive global write";
  if (Code == "CL021")
    return "group-set member pair writes a shared global order-sensitively";
  if (Code == "CL023")
    return "member observes a concurrently-written global outside a "
           "reduction";
  if (Code == "CL030")
    return "annotation opportunity: carried dependence is a commutative "
           "reduction";
  if (Code == "CL040")
    return "relaxed dependence lacks a justifying COMMSET declaration";
  if (Code == "CL041")
    return "member lock acquisition violates the global rank order";
  if (Code == "CL050")
    return "privatized member lacks the add-reduction proof";
  if (Code == "CL060")
    return "member pair proven non-commutative (concrete replayable "
           "witness)";
  if (Code == "CL061")
    return "member pair proven commutative (symbolic equivalence of both "
           "orders)";
  if (Code == "CL062")
    return "commutativity undecided (budget/unmodeled); effect summaries "
           "remain authoritative";
  if (Code == "CL063")
    return "annotation suggestion: unannotated call pair proven "
           "commutative";
  return "";
}

std::string lint::dedupKey(const LintDiagnostic &D) {
  std::string Key = D.Code;
  Key += '|';
  Key += lintSeverityName(D.Severity);
  Key += '|';
  Key += D.Loc.str();
  Key += '|';
  Key += D.Message;
  Key += '|';
  Key += D.Subject;
  Key += '|';
  Key += D.Subject2;
  return Key;
}

//===----------------------------------------------------------------------===//
// Plan/sync consistency checker
//===----------------------------------------------------------------------===//

namespace {

/// True when \p Callee holds a membership in set \p SetId.
bool memberOfSet(const CommSetRegistry &Reg, const std::string &Callee,
                 unsigned SetId) {
  for (const auto &M : Reg.membershipsOf(Callee))
    if (M.SetId == SetId)
      return true;
  return false;
}

std::string ranksToString(const std::vector<unsigned> &Ranks) {
  std::string Out = "[";
  for (size_t I = 0; I < Ranks.size(); ++I) {
    if (I)
      Out += ", ";
    Out += std::to_string(Ranks[I]);
  }
  return Out + "]";
}

} // namespace

void lint::checkPlanConsistency(const Compilation &C,
                                const Compilation::LoopTarget &T,
                                const ParallelPlan &Plan, LintResult &R) {
  const CommSetRegistry &Reg = C.registry();

  // Every uco/ico edge Algorithm 1 removed or demoted must point back at an
  // in-scope COMMSET declaration covering both endpoint callees; a relaxed
  // edge with no justification means a transform dropped an ordering the
  // program never licensed.
  for (const PDGEdge &E : T.G.Edges) {
    if (E.Kind != DepKind::Memory || E.Comm == CommAnnotation::None)
      continue;
    const Instruction *N1 = T.G.Nodes[E.Src];
    const Instruction *N2 = T.G.Nodes[E.Dst];
    const char *What = E.Comm == CommAnnotation::Uco ? "uco" : "ico";
    if (!N1->isCall() || !N2->isCall()) {
      addDiag(R, "CL040", LintSeverity::Error, N1->Loc,
              formatString("%s dependence relaxed between non-call "
                           "instructions %u and %u",
                           What, N1->Id, N2->Id));
      continue;
    }
    const std::string &F = calleeName(N1);
    const std::string &G = calleeName(N2);
    if (E.JustifyingSet == ~0u || E.JustifyingSet >= Reg.sets().size()) {
      addDiag(R, "CL040", LintSeverity::Error, N1->Loc,
              formatString("%s dependence between '%s' (%s) and '%s' (%s) "
                           "is not justified by any in-scope COMMSET "
                           "declaration",
                           What, F.c_str(), N1->Loc.str().c_str(), G.c_str(),
                           N2->Loc.str().c_str()));
      continue;
    }
    const CommSetRegistry::SetInfo &S = Reg.set(E.JustifyingSet);
    if (!memberOfSet(Reg, F, S.Id) || !memberOfSet(Reg, G, S.Id))
      addDiag(R, "CL040", LintSeverity::Error, N1->Loc,
              formatString("%s dependence between '%s' and '%s' cites "
                           "COMMSET '%s', which does not contain both "
                           "callees",
                           What, F.c_str(), G.c_str(), S.Name.c_str()));
  }

  // Rank-ordered locking is deadlock free only if every member acquires its
  // locks in strictly ascending global rank order (paper §4.6). A repeated
  // or descending rank in one member's sequence breaks the global order and
  // admits an acquisition cycle across members.
  for (const auto &[Name, Info] : Plan.MemberSync) {
    bool Ascending = true;
    for (size_t I = 0; I + 1 < Info.LockRanks.size(); ++I)
      if (Info.LockRanks[I] >= Info.LockRanks[I + 1])
        Ascending = false;
    if (!Ascending)
      addDiag(R, "CL041", LintSeverity::Error, T.F->Loc,
              formatString("member '%s' acquires COMMSET locks out of rank "
                           "order %s; the global acquisition order is no "
                           "longer cycle-free",
                           Name.c_str(),
                           ranksToString(Info.LockRanks).c_str()));
  }

  // A privatized member runs lock free on per-worker replicas; that is only
  // sound under the add-reduction proof, and only for slots the plan
  // actually privatized. An unprovable or uncovered privatization would
  // merge replicas into a value the sequential program never computes.
  const EffectAnalysis &EA = C.effects();
  for (const auto &[Name, Info] : Plan.MemberSync) {
    if (!Info.Privatized)
      continue;
    Function *F = C.module().findFunction(Name);
    if (!F || !privEligibleSummary(EA.summaryFor(F))) {
      addDiag(R, "CL050", LintSeverity::Error, F ? F->Loc : T.F->Loc,
              formatString("member '%s' is privatized but is not a provable "
                           "add-reduction; per-worker replicas would not "
                           "merge to the sequential result",
                           Name.c_str()));
      continue;
    }
    for (unsigned Slot : EA.summaryFor(F).WriteGlobals)
      if (!Plan.PrivGlobals.count(Slot))
        addDiag(R, "CL050", LintSeverity::Error, F->Loc,
                formatString("privatized member '%s' writes global '%s' "
                             "outside the plan's privatized slot set",
                             Name.c_str(),
                             globalName(C.module(), Slot).c_str()));
  }
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

LintResult commset::runLint(const Compilation &C,
                            const Compilation::LoopTarget &T,
                            const ParallelPlan &Plan) {
  LintResult R;
  lint::checkPlanConsistency(C, T, Plan, R);
  lint::checkAnnotations(C, T, Plan, R);
  lint::checkRaces(C, T, Plan, R);

  const std::vector<std::string> &Suppressed = C.program().LintSuppressions;
  if (!Suppressed.empty())
    R.Diags.erase(std::remove_if(R.Diags.begin(), R.Diags.end(),
                                 [&](const LintDiagnostic &D) {
                                   return std::find(Suppressed.begin(),
                                                    Suppressed.end(),
                                                    D.Code) !=
                                          Suppressed.end();
                                 }),
                  R.Diags.end());

  std::stable_sort(R.Diags.begin(), R.Diags.end(),
                   [](const LintDiagnostic &A, const LintDiagnostic &B) {
                     if (A.Severity != B.Severity)
                       return static_cast<int>(A.Severity) >
                              static_cast<int>(B.Severity);
                     if (A.Loc.Line != B.Loc.Line)
                       return A.Loc.Line < B.Loc.Line;
                     return A.Code < B.Code;
                   });
  return R;
}
