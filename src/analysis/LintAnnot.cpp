//===- LintAnnot.cpp - CommLint annotation-soundness auditor --------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
//
// A COMMSET annotation is a claim the compiler cannot check in general —
// that is the paper's point. This auditor flags the claims it can refute
// from transitive effect summaries:
//
//  * CL020: a self-set member whose summarized writes to some global are
//    order-sensitive (an overwrite or scaled update, not `g = g + E`).
//    Reordered dynamic instances then produce different final state, so the
//    self-commutativity claim is provably wrong.
//  * CL021: two group-set members write a shared global and at least one
//    side is order-sensitive: the pair cannot commute.
//  * CL023 (warning): a member reads a global its co-members write outside
//    the reduction pattern; the read observes intermediate state, making
//    the set's behavior schedule-dependent even when every write commutes.
//
// Natives have no bodies; their claims are trusted (see the CL002 split in
// the race detector). Conversely the auditor suggests annotations (CL030,
// note) where a loop-carried dependence blocks parallelization but the
// effects form a commutative add-reduction: the paper's flagship use case.
//
//===----------------------------------------------------------------------===//

#include "LintInternal.h"
#include "commset/Lang/CommSetAttrs.h"
#include "commset/Support/StringUtils.h"

#include <algorithm>
#include <map>
#include <set>

using namespace commset;
using namespace commset::lint;

namespace {

bool isOrdered(const EffectSummary &S, unsigned Slot) {
  auto It = S.GlobalWriteKinds.find(Slot);
  return It != S.GlobalWriteKinds.end() &&
         It->second == GlobalWriteKind::Ordered;
}

/// Members of each set that are user functions (natives carry no bodies to
/// audit).
std::map<unsigned, std::vector<const Function *>>
userMembersBySet(const Compilation &C) {
  std::map<unsigned, std::vector<const Function *>> Out;
  const CommSetRegistry &Reg = C.registry();
  for (const std::string &Callee : Reg.memberCallees()) {
    const Function *F = C.module().findFunction(Callee);
    if (!F)
      continue;
    for (const auto &M : Reg.membershipsOf(Callee))
      Out[M.SetId].push_back(F);
  }
  for (auto &[SetId, Members] : Out) {
    std::sort(Members.begin(), Members.end(),
              [](const Function *A, const Function *B) {
                return A->Name < B->Name;
              });
    Members.erase(std::unique(Members.begin(), Members.end()),
                  Members.end());
  }
  return Out;
}

void auditSelfSet(const Compilation &C, const CommSetRegistry::SetInfo &S,
                  const std::vector<const Function *> &Members,
                  LintResult &R) {
  const Module &M = C.module();
  for (const Function *F : Members) {
    const EffectSummary &Sum = C.effects().summaryFor(F);
    for (const auto &[Slot, Kind] : Sum.GlobalWriteKinds) {
      if (Kind != GlobalWriteKind::Ordered)
        continue;
      addDiag(R, "CL020", LintSeverity::Error, F->Loc,
              formatString("member '%s' of self COMMSET '%s' performs an "
                           "order-sensitive write to global '%s'; reordered "
                           "instances do not commute",
                           F->Name.c_str(), S.Name.c_str(),
                           globalName(M, Slot).c_str()),
              F->Name, F->Name);
    }
    for (unsigned Slot : Sum.BareReadGlobals) {
      if (!Sum.WriteGlobals.count(Slot))
        continue;
      addDiag(R, "CL023", LintSeverity::Warning, F->Loc,
              formatString("member '%s' of self COMMSET '%s' reads global "
                           "'%s' outside the reduction pattern; concurrent "
                           "instances observe intermediate state",
                           F->Name.c_str(), S.Name.c_str(),
                           globalName(M, Slot).c_str()),
              F->Name, F->Name);
    }
  }
}

void auditGroupSet(const Compilation &C, const CommSetRegistry::SetInfo &S,
                   const std::vector<const Function *> &Members,
                   LintResult &R) {
  const Module &M = C.module();
  for (size_t I = 0; I < Members.size(); ++I) {
    for (size_t J = I + 1; J < Members.size(); ++J) {
      const Function *F1 = Members[I];
      const Function *F2 = Members[J];
      const EffectSummary &S1 = C.effects().summaryFor(F1);
      const EffectSummary &S2 = C.effects().summaryFor(F2);
      std::set<unsigned> Shared;
      std::set_intersection(S1.WriteGlobals.begin(), S1.WriteGlobals.end(),
                            S2.WriteGlobals.begin(), S2.WriteGlobals.end(),
                            std::inserter(Shared, Shared.end()));
      for (unsigned Slot : Shared) {
        if (!isOrdered(S1, Slot) && !isOrdered(S2, Slot))
          continue; // Both sides sum: the pair commutes on this global.
        addDiag(R, "CL021", LintSeverity::Error, F1->Loc,
                formatString("members '%s' and '%s' of COMMSET '%s' both "
                             "write global '%s' and at least one write is "
                             "order-sensitive; the pair cannot commute",
                             F1->Name.c_str(), F2->Name.c_str(),
                             S.Name.c_str(), globalName(M, Slot).c_str()),
                F1->Name, F2->Name);
      }
      const std::pair<const Function *, const Function *> Directions[] = {
          {F1, F2}, {F2, F1}};
      for (const auto &[Reader, Writer] : Directions) {
        const EffectSummary &SR = C.effects().summaryFor(Reader);
        const EffectSummary &SW = C.effects().summaryFor(Writer);
        for (unsigned Slot : SR.BareReadGlobals) {
          if (!SW.WriteGlobals.count(Slot))
            continue;
          addDiag(R, "CL023", LintSeverity::Warning, Reader->Loc,
                  formatString("member '%s' of COMMSET '%s' reads global "
                               "'%s' written by co-member '%s' outside the "
                               "reduction pattern",
                               Reader->Name.c_str(), S.Name.c_str(),
                               globalName(M, Slot).c_str(),
                               Writer->Name.c_str()),
                  Reader->Name, Writer->Name);
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// CL030: annotation-opportunity suggestions
//===----------------------------------------------------------------------===//

/// Direct `g = g + E` updates in the loop body: a carried dependence on the
/// global blocks DOALL, yet the update is a commutative reduction. Suggest
/// moving it into a commutative region or member (paper §3.1).
void suggestDirectReductions(const Compilation &C,
                             const Compilation::LoopTarget &T,
                             LintResult &R) {
  const Module &M = C.module();
  std::set<unsigned> Candidates;
  for (const PDGEdge &E : T.G.Edges) {
    if (E.Kind != DepKind::Memory || !E.LoopCarried ||
        E.Comm != CommAnnotation::None)
      continue;
    const Instruction *N1 = T.G.Nodes[E.Src];
    const Instruction *N2 = T.G.Nodes[E.Dst];
    const Instruction *Store = nullptr;
    if (N1->op() == Opcode::StoreGlobal)
      Store = N1;
    else if (N2->op() == Opcode::StoreGlobal)
      Store = N2;
    if (!Store)
      continue;
    const Instruction *Other = Store == N1 ? N2 : N1;
    if (Other->op() != Opcode::LoadGlobal &&
        Other->op() != Opcode::StoreGlobal)
      continue;
    if (Other->SlotId != Store->SlotId)
      continue;
    Candidates.insert(Store->SlotId);
  }

  for (unsigned Slot : Candidates) {
    // Every store in the loop must be a reduction and every load its
    // consumed reduction load; one stray access makes the rewrite unsafe.
    bool AllReductions = true;
    std::set<const Instruction *> ReductionLoads;
    SourceLoc Anchor;
    for (const Instruction *Node : T.G.Nodes) {
      if (Node->op() != Opcode::StoreGlobal || Node->SlotId != Slot)
        continue;
      const Instruction *Load = nullptr;
      if (classifyGlobalStore(*Node, &Load) != GlobalWriteKind::AddReduction) {
        AllReductions = false;
        break;
      }
      ReductionLoads.insert(Load);
      Anchor = Node->Loc;
    }
    if (AllReductions)
      for (const Instruction *Node : T.G.Nodes)
        if (Node->op() == Opcode::LoadGlobal && Node->SlotId == Slot &&
            !ReductionLoads.count(Node))
          AllReductions = false;
    if (!AllReductions)
      continue;
    addDiag(R, "CL030", LintSeverity::Note, Anchor,
            formatString("loop-carried reduction on global '%s' blocks "
                         "parallelization; wrapping the update in a "
                         "commutative member or region (COMMSET self set) "
                         "would relax this dependence",
                         globalName(M, Slot).c_str()));
  }
}

/// Call pairs whose only conflicts are add-reductions into shared globals:
/// a COMMSET annotation would dissolve the carried dependence.
void suggestCallAnnotations(const Compilation &C,
                            const Compilation::LoopTarget &T,
                            LintResult &R) {
  const Module &M = C.module();
  const EffectAnalysis &EA = C.effects();
  std::set<std::pair<std::string, std::string>> Suggested;

  for (const PDGEdge &E : T.G.Edges) {
    if (E.Kind != DepKind::Memory || !E.LoopCarried ||
        E.Comm != CommAnnotation::None)
      continue;
    const Instruction *N1 = T.G.Nodes[E.Src];
    const Instruction *N2 = T.G.Nodes[E.Dst];
    if (!N1->isCall() || !N2->isCall())
      continue;
    const std::string &F = calleeName(N1);
    const std::string &G = calleeName(N2);
    if (!C.registry().commutingSets(F, G).empty())
      continue; // Already annotated; the predicate just was not provable.

    EffectSummary SA = EA.instructionEffects(N1);
    EffectSummary SB = EA.instructionEffects(N2);
    if (SA.World || SB.World || SA.ArgMemWrite || SB.ArgMemWrite)
      continue;
    std::set<unsigned> SharedClasses;
    std::set_intersection(SA.WriteClasses.begin(), SA.WriteClasses.end(),
                          SB.WriteClasses.begin(), SB.WriteClasses.end(),
                          std::inserter(SharedClasses, SharedClasses.end()));
    if (!SharedClasses.empty())
      continue; // Opaque library state: cannot prove commutativity.

    std::set<unsigned> Conflicts;
    auto addConflicts = [&Conflicts](const std::set<unsigned> &A,
                                     const std::set<unsigned> &B) {
      std::set_intersection(A.begin(), A.end(), B.begin(), B.end(),
                            std::inserter(Conflicts, Conflicts.end()));
    };
    addConflicts(SA.WriteGlobals, SB.WriteGlobals);
    addConflicts(SA.WriteGlobals, SB.ReadGlobals);
    addConflicts(SA.ReadGlobals, SB.WriteGlobals);
    if (Conflicts.empty())
      continue;
    bool AllReductions = true;
    for (unsigned Slot : Conflicts) {
      bool WA = SA.WriteGlobals.count(Slot) != 0;
      bool WB = SB.WriteGlobals.count(Slot) != 0;
      if ((WA && isOrdered(SA, Slot)) || (WB && isOrdered(SB, Slot)) ||
          SA.BareReadGlobals.count(Slot) || SB.BareReadGlobals.count(Slot)) {
        AllReductions = false;
        break;
      }
    }
    if (!AllReductions)
      continue;

    auto Key = std::minmax(F, G);
    if (!Suggested.insert(Key).second)
      continue;
    std::string Names;
    for (unsigned Slot : Conflicts) {
      if (!Names.empty())
        Names += ", ";
      Names += "'" + globalName(M, Slot) + "'";
    }
    addDiag(R, "CL030", LintSeverity::Note, N1->Loc,
            formatString("calls to '%s' and '%s' conflict only through "
                         "add-reductions into global(s) %s; a COMMSET "
                         "annotation (%s) would relax this loop-carried "
                         "dependence",
                         F.c_str(), G.c_str(), Names.c_str(),
                         F == G ? "self set" : "group set"));
  }
}

} // namespace

void lint::checkAnnotations(const Compilation &C,
                            const Compilation::LoopTarget &T,
                            const ParallelPlan &Plan, LintResult &R) {
  (void)Plan; // Annotation claims are plan-independent.
  auto Members = userMembersBySet(C);
  for (const CommSetRegistry::SetInfo &S : C.registry().sets()) {
    auto It = Members.find(S.Id);
    if (It == Members.end())
      continue;
    if (S.Kind == CommSetKind::Self)
      auditSelfSet(C, S, It->second, R);
    else
      auditGroupSet(C, S, It->second, R);
  }
  suggestDirectReductions(C, T, R);
  suggestCallAnnotations(C, T, R);
}
