//===- LintInternal.h - Helpers shared by the CommLint checkers -*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#ifndef COMMSET_SRC_ANALYSIS_LINTINTERNAL_H
#define COMMSET_SRC_ANALYSIS_LINTINTERNAL_H

#include "commset/Analysis/Lint.h"
#include "commset/IR/IR.h"

#include <string>

namespace commset {
namespace lint {

inline const std::string &calleeName(const Instruction *Call) {
  static const std::string Empty;
  if (Call->op() == Opcode::Call)
    return Call->Callee->Name;
  if (Call->op() == Opcode::CallNative)
    return Call->Native->Name;
  return Empty;
}

inline std::string globalName(const Module &M, unsigned Slot) {
  if (Slot < M.Globals.size())
    return M.Globals[Slot].Name;
  return "<global #" + std::to_string(Slot) + ">";
}

inline std::string effectClassName(const Module &M, unsigned Id) {
  if (Id < M.EffectClasses.size())
    return M.EffectClasses[Id];
  return "<class #" + std::to_string(Id) + ">";
}

inline void addDiag(LintResult &R, const char *Code, LintSeverity Severity,
                    SourceLoc Loc, std::string Message,
                    std::string Subject = {}, std::string Subject2 = {}) {
  R.Diags.push_back({Code, Severity, Loc, std::move(Message),
                     std::move(Subject), std::move(Subject2)});
}

} // namespace lint
} // namespace commset

#endif // COMMSET_SRC_ANALYSIS_LINTINTERNAL_H
