//===- LintRace.cpp - CommLint lockset race detector ----------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
//
// Every Memory dependence Algorithm 1 relaxed (uco/ico) is an ordering the
// sequential program had and the plan may now violate: that is precisely the
// set of access pairs the synchronization engine promised to protect. The
// race detector replays that promise statically. For each relaxed edge whose
// endpoints can execute concurrently under the plan's strategy, it demands a
// protection witness:
//
//  * Mutex/Spin: a common rank-ordered lock (LockRanks intersection);
//  * Tm: both members inside STM, or both outside under a common lock — a
//    mixed pair is unprotected because the STM side bypasses the locks;
//  * None (COMMSETNOSYNC / thread-safe library): nothing is inserted, so
//    nothing protects the pair.
//
// Unprotected pairs conflicting on interpreter globals are errors (CL001):
// the interpreter really does race on those words. Pairs conflicting only on
// declared native effect classes or argument memory are warnings (CL002): we
// trust the author's thread-safety declaration but surface the reliance.
//
//===----------------------------------------------------------------------===//

#include "LintInternal.h"
#include "commset/Support/StringUtils.h"

#include <algorithm>
#include <set>

using namespace commset;
using namespace commset::lint;

namespace {

/// Shared locations two summaries conflict on, rendered for the report.
struct ConflictBasis {
  /// Human-readable conflicting locations ("global 'g1'", "class 'fs'").
  std::vector<std::string> Parts;
  /// Conflict involves interpreter globals or undeclared (world) effects.
  bool OnGlobals = false;

  bool any() const { return !Parts.empty(); }
};

void intersectInto(const std::set<unsigned> &A, const std::set<unsigned> &B,
                   std::set<unsigned> &Out) {
  std::set_intersection(A.begin(), A.end(), B.begin(), B.end(),
                        std::inserter(Out, Out.end()));
}

ConflictBasis conflictBasis(const Module &M, const EffectSummary &A,
                            const EffectSummary &B) {
  ConflictBasis C;
  std::set<unsigned> Globals;
  intersectInto(A.WriteGlobals, B.WriteGlobals, Globals);
  intersectInto(A.WriteGlobals, B.ReadGlobals, Globals);
  intersectInto(A.ReadGlobals, B.WriteGlobals, Globals);
  for (unsigned Slot : Globals) {
    C.Parts.push_back("global '" + globalName(M, Slot) + "'");
    C.OnGlobals = true;
  }
  std::set<unsigned> Classes;
  intersectInto(A.WriteClasses, B.WriteClasses, Classes);
  intersectInto(A.WriteClasses, B.ReadClasses, Classes);
  intersectInto(A.ReadClasses, B.WriteClasses, Classes);
  for (unsigned Id : Classes)
    C.Parts.push_back("class '" + effectClassName(M, Id) + "'");
  if ((A.ArgMemWrite && (B.ArgMemRead || B.ArgMemWrite)) ||
      (B.ArgMemWrite && (A.ArgMemRead || A.ArgMemWrite)))
    C.Parts.push_back("argument memory");
  if (A.World || B.World) {
    C.Parts.push_back("undeclared (world) effects");
    C.OnGlobals = true; // Cannot rule out interpreter state: treat as hard.
  }
  return C;
}

std::string joinParts(const std::vector<std::string> &Parts) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Parts[I];
  }
  return Out;
}

/// What one endpoint of the pair touches, for the access-path report.
std::string accessPath(const Module &M, const std::string &Name,
                       const Instruction *Call, const EffectSummary &S) {
  std::vector<std::string> Touches;
  for (unsigned Slot : S.WriteGlobals)
    Touches.push_back("writes global '" + globalName(M, Slot) + "'");
  for (unsigned Slot : S.ReadGlobals)
    if (!S.WriteGlobals.count(Slot))
      Touches.push_back("reads global '" + globalName(M, Slot) + "'");
  for (unsigned Id : S.WriteClasses)
    Touches.push_back("writes class '" + effectClassName(M, Id) + "'");
  for (unsigned Id : S.ReadClasses)
    if (!S.WriteClasses.count(Id))
      Touches.push_back("reads class '" + effectClassName(M, Id) + "'");
  if (S.ArgMemWrite)
    Touches.push_back("writes argument memory");
  else if (S.ArgMemRead)
    Touches.push_back("reads argument memory");
  if (S.World)
    Touches.push_back("has undeclared effects");
  return formatString("'%s' at %s {%s}", Name.c_str(),
                      Call->Loc.str().c_str(), joinParts(Touches).c_str());
}

const MemberSyncInfo *syncInfoFor(const ParallelPlan &Plan,
                                  const std::string &Name) {
  auto It = Plan.MemberSync.find(Name);
  return It == Plan.MemberSync.end() ? nullptr : &It->second;
}

bool haveCommonRank(const MemberSyncInfo *A, const MemberSyncInfo *B) {
  if (!A || !B)
    return false;
  std::vector<unsigned> Common;
  std::set_intersection(A->LockRanks.begin(), A->LockRanks.end(),
                        B->LockRanks.begin(), B->LockRanks.end(),
                        std::back_inserter(Common));
  return !Common.empty();
}

/// The protection witness for a concurrent pair, or a description of why
/// none exists (returned through \p Why).
bool pairProtected(const ParallelPlan &Plan, const std::string &NameA,
                   const std::string &NameB, std::string &Why) {
  const MemberSyncInfo *A = syncInfoFor(Plan, NameA);
  const MemberSyncInfo *B = syncInfoFor(Plan, NameB);
  // Privatization discharges the pair outright: both calls route every
  // global they write to per-worker replicas, so no shared word is touched
  // until the single-threaded merge at region exit.
  bool PrivA = A && A->Privatized;
  bool PrivB = B && B->Privatized;
  if (PrivA && PrivB)
    return true;
  if (PrivA || PrivB) {
    // Cannot happen for a real conflict (the planner's fixpoint disqualifies
    // slots a non-candidate touches), but if a plan is hand-built: the
    // replica side holds no lock, so nothing covers the pair.
    Why = "one call runs on private replicas while the other touches the "
          "shared location; the replica side holds no lock";
    return false;
  }
  switch (Plan.Sync) {
  case SyncMode::None:
    Why = "sync mode 'none' inserts no synchronization";
    return false;
  case SyncMode::Mutex:
  case SyncMode::Spin:
    if (haveCommonRank(A, B))
      return true;
    Why = "no common rank-ordered lock covers both calls";
    return false;
  case SyncMode::Tm: {
    bool TmA = A && A->TmEligible;
    bool TmB = B && B->TmEligible;
    if (TmA && TmB)
      return true; // Both run as transactions; STM orders the conflict.
    if (!TmA && !TmB) {
      if (haveCommonRank(A, B))
        return true;
      Why = "no common rank-ordered lock covers both calls (neither is "
            "STM-eligible)";
      return false;
    }
    Why = "one call runs inside STM while the other holds locks; the "
          "transaction bypasses the lock";
    return false;
  }
  case SyncMode::Priv:
    // Non-privatized members under a Priv plan fall back to ranked mutexes.
    if (haveCommonRank(A, B))
      return true;
    Why = "no common rank-ordered lock covers both calls (neither member "
          "was privatized)";
    return false;
  }
  Why = "unknown sync mode";
  return false;
}

/// Pipeline stage owning a node, or -1 when replicated/unowned.
int stageOf(const ParallelPlan &Plan, unsigned Node) {
  for (size_t I = 0; I < Plan.Stages.size(); ++I)
    if (Plan.Stages[I].OwnedNodes.count(Node))
      return static_cast<int>(I);
  return -1;
}

/// May the two endpoint instances of \p E overlap in time under \p Plan?
bool concurrentUnderPlan(const ParallelPlan &Plan, const PDGEdge &E) {
  switch (Plan.Kind) {
  case Strategy::Sequential:
    return false;
  case Strategy::Doall:
    // One thread runs whole iterations in program order; only the carried
    // instances of the pair land on different threads.
    return E.LoopCarried;
  case Strategy::Dswp:
  case Strategy::PsDswp: {
    int SA = stageOf(Plan, E.Src);
    int SB = stageOf(Plan, E.Dst);
    if (SA >= 0 && SA == SB) {
      if (!Plan.Stages[SA].Parallel)
        return false; // One sequential stage thread: iteration order holds.
      return E.LoopCarried; // Replicas split iterations.
    }
    // Distinct stages (or replicated nodes) run decoupled: with the edge
    // relaxed no queue token orders them, and different iterations overlap
    // freely.
    return true;
  }
  }
  return true;
}

} // namespace

void lint::checkRaces(const Compilation &C, const Compilation::LoopTarget &T,
                      const ParallelPlan &Plan, LintResult &R) {
  if (Plan.Kind == Strategy::Sequential)
    return;
  const Module &M = C.module();
  const EffectAnalysis &EA = C.effects();

  // One report per unordered node pair: carried conflicts appear as edge
  // pairs in both directions.
  std::set<std::pair<unsigned, unsigned>> Reported;

  for (const PDGEdge &E : T.G.Edges) {
    if (E.Kind != DepKind::Memory || E.Comm == CommAnnotation::None)
      continue;
    const Instruction *N1 = T.G.Nodes[E.Src];
    const Instruction *N2 = T.G.Nodes[E.Dst];
    if (!N1->isCall() || !N2->isCall())
      continue;
    if (!concurrentUnderPlan(Plan, E))
      continue;

    auto Key = std::minmax(E.Src, E.Dst);
    if (!Reported.insert({Key.first, Key.second}).second)
      continue;

    const std::string &F = calleeName(N1);
    const std::string &G = calleeName(N2);
    std::string Why;
    if (pairProtected(Plan, F, G, Why))
      continue;

    EffectSummary SA = EA.instructionEffects(N1);
    EffectSummary SB = EA.instructionEffects(N2);
    ConflictBasis Basis = conflictBasis(M, SA, SB);
    if (!Basis.any())
      continue; // Alias-class-only conflict with no shared named location.

    const char *Code = Basis.OnGlobals ? "CL001" : "CL002";
    LintSeverity Sev =
        Basis.OnGlobals ? LintSeverity::Error : LintSeverity::Warning;
    std::string Set = E.JustifyingSet < C.registry().sets().size()
                          ? C.registry().set(E.JustifyingSet).Name
                          : "?";
    addDiag(R, Code, Sev, N1->Loc,
            formatString(
                "possible race on %s: ordering between '%s' and '%s' was "
                "relaxed by COMMSET '%s' but the pair runs concurrently "
                "under %s/%s and %s; access paths: %s; %s",
                joinParts(Basis.Parts).c_str(), F.c_str(), G.c_str(),
                Set.c_str(), strategyName(Plan.Kind),
                syncModeName(Plan.Sync), Why.c_str(),
                accessPath(M, F, N1, SA).c_str(),
                accessPath(M, G, N2, SB).c_str()));
  }
}
