//===- LoopInfo.cpp -------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Analysis/LoopInfo.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace commset;

LoopInfo LoopInfo::compute(const Function &F, const DomTree &DT) {
  LoopInfo LI;
  auto Preds = F.predecessors();

  // Find back edges (B -> H where H dominates B) and group them by header.
  std::map<BasicBlock *, std::vector<BasicBlock *>> HeaderLatches;
  for (const auto &BB : F.Blocks)
    for (BasicBlock *Succ : BB->successors())
      if (DT.dominates(Succ->Id, BB->Id))
        HeaderLatches[Succ].push_back(BB.get());

  for (auto &[Header, Latches] : HeaderLatches) {
    auto L = std::make_unique<Loop>();
    L->Header = Header;
    L->Latches = Latches;
    L->BlockIds.insert(Header->Id);
    // Natural loop body: blocks that reach a latch without passing the
    // header (reverse reachability from latches).
    std::vector<BasicBlock *> Worklist(Latches.begin(), Latches.end());
    while (!Worklist.empty()) {
      BasicBlock *BB = Worklist.back();
      Worklist.pop_back();
      if (!L->BlockIds.insert(BB->Id).second)
        continue;
      for (BasicBlock *Pred : Preds[BB->Id])
        if (!L->BlockIds.count(Pred->Id))
          Worklist.push_back(Pred);
    }
    LI.Loops.push_back(std::move(L));
  }

  // Nesting: parent = smallest strictly-containing loop.
  for (auto &L : LI.Loops) {
    Loop *Best = nullptr;
    for (auto &Other : LI.Loops) {
      if (Other.get() == L.get())
        continue;
      if (!Other->BlockIds.count(L->Header->Id))
        continue;
      bool Contains = std::includes(Other->BlockIds.begin(),
                                    Other->BlockIds.end(),
                                    L->BlockIds.begin(), L->BlockIds.end());
      if (!Contains)
        continue;
      if (!Best || Other->BlockIds.size() < Best->BlockIds.size())
        Best = Other.get();
    }
    L->Parent = Best;
    if (Best)
      Best->SubLoops.push_back(L.get());
    else
      LI.TopLevel.push_back(L.get());
  }
  for (auto &L : LI.Loops) {
    unsigned Depth = 1;
    for (Loop *P = L->Parent; P; P = P->Parent)
      ++Depth;
    L->Depth = Depth;
  }
  return LI;
}

Loop *LoopInfo::loopFor(const BasicBlock *BB) const {
  Loop *Best = nullptr;
  for (const auto &L : Loops) {
    if (!L->BlockIds.count(BB->Id))
      continue;
    if (!Best || L->BlockIds.size() < Best->BlockIds.size())
      Best = L.get();
  }
  return Best;
}

bool commset::localStoredInLoop(const Loop &L, unsigned Local) {
  for (unsigned BlockId : L.BlockIds) {
    // Block ids are dense and equal to position (numberInstructions()).
    const BasicBlock *BB = L.Header->Parent->Blocks[BlockId].get();
    for (const auto &Instr : BB->Instrs)
      if (Instr->op() == Opcode::StoreLocal && Instr->SlotId == Local)
        return true;
  }
  return false;
}

/// \returns the operand's defining instruction if it is a register, else
/// null.
static Instruction *defOf(const Operand &Op) {
  return Op.isInstr() ? Op.Def : nullptr;
}

bool commset::analyzeInduction(const Function &F, Loop &L) {
  // Exit shape: the only edges leaving the loop originate at the header.
  L.SingleHeaderExit = true;
  for (unsigned BlockId : L.BlockIds) {
    const BasicBlock *BB = F.Blocks[BlockId].get();
    for (BasicBlock *Succ : BB->successors())
      if (!L.BlockIds.count(Succ->Id) && BB != L.Header)
        L.SingleHeaderExit = false;
  }

  // Find locals with exactly one StoreLocal inside the loop whose value is
  // `load(local) +/- const`.
  std::map<unsigned, std::vector<Instruction *>> StoresByLocal;
  for (unsigned BlockId : L.BlockIds) {
    const BasicBlock *BB = F.Blocks[BlockId].get();
    for (const auto &Instr : BB->Instrs)
      if (Instr->op() == Opcode::StoreLocal)
        StoresByLocal[Instr->SlotId].push_back(Instr.get());
  }

  for (auto &[Local, Stores] : StoresByLocal) {
    if (Stores.size() != 1)
      continue;
    Instruction *Store = Stores.front();
    Instruction *Value = defOf(Store->Operands[0]);
    if (!Value || Value->type() != IRType::I64)
      continue;
    if (Value->op() != Opcode::Add && Value->op() != Opcode::Sub)
      continue;

    Instruction *Load = nullptr;
    int64_t Step = 0;
    Instruction *LHS = defOf(Value->Operands[0]);
    Instruction *RHS = defOf(Value->Operands[1]);
    if (LHS && LHS->op() == Opcode::LoadLocal && LHS->SlotId == Local &&
        Value->Operands[1].K == Operand::Kind::ConstInt) {
      Load = LHS;
      Step = Value->Operands[1].IntVal;
      if (Value->op() == Opcode::Sub)
        Step = -Step;
    } else if (Value->op() == Opcode::Add && RHS &&
               RHS->op() == Opcode::LoadLocal && RHS->SlotId == Local &&
               Value->Operands[0].K == Operand::Kind::ConstInt) {
      Load = RHS;
      Step = Value->Operands[0].IntVal;
    }
    if (!Load || Step == 0)
      continue;

    // The update must run exactly once per iteration: its block must be a
    // latch or dominate every latch. We use the simple structural check
    // that the store's block is one of the latches or the header.
    bool OnEveryIteration = Store->Parent == L.Header;
    for (BasicBlock *Latch : L.Latches)
      OnEveryIteration |= Store->Parent == Latch;
    if (!OnEveryIteration)
      continue;

    L.Induction.Local = Local;
    L.Induction.Step = Step;
    L.Induction.Update = Store;

    // Exit compare in the header: condbr whose condition is a compare with
    // one side loading the induction local.
    Instruction *Term = L.Header->terminator();
    if (Term && Term->op() == Opcode::CondBr) {
      Instruction *Cond = defOf(Term->Operands[0]);
      if (Cond && (Cond->op() == Opcode::Lt || Cond->op() == Opcode::Le ||
                   Cond->op() == Opcode::Gt || Cond->op() == Opcode::Ge ||
                   Cond->op() == Opcode::Ne || Cond->op() == Opcode::Eq)) {
        for (const Operand &Op : Cond->Operands) {
          Instruction *Side = defOf(Op);
          if (Side && Side->op() == Opcode::LoadLocal &&
              Side->SlotId == Local)
            L.Induction.ExitCompare = Cond;
        }
      }
    }
    return true;
  }
  return false;
}
