//===- PDG.cpp ------------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Analysis/PDG.h"

#include "commset/Analysis/Dominators.h"
#include "commset/IR/Printer.h"
#include "commset/Support/StringUtils.h"

#include <cassert>
#include <map>

using namespace commset;

namespace {

using DefSet = std::set<Instruction *>;
using LocalDefs = std::map<unsigned, DefSet>;

/// Reaching definitions of locals at block granularity over an arbitrary
/// edge set.
class ReachingDefs {
public:
  /// \p Preds lists predecessor block ids per block; \p Seed, when
  /// non-null, injects extra definitions into \p SeedBlock's IN set (used
  /// for the around-the-back-edge dataflow). With \p GenDefs false the
  /// dataflow only *kills* at definitions without generating them: exactly
  /// what the carried analysis needs, where only previous-iteration defs
  /// may flow and any redefinition cuts them off.
  void compute(const Function &F,
               const std::vector<std::vector<unsigned>> &Preds,
               const std::vector<char> &InGraph, int SeedBlock = -1,
               const LocalDefs *Seed = nullptr, bool GenDefs = true) {
    unsigned N = static_cast<unsigned>(F.Blocks.size());
    In.assign(N, {});
    Out.assign(N, {});

    // Per-block gen (last def per local) and kill (any def).
    std::vector<std::map<unsigned, Instruction *>> Gen(N);
    for (const auto &BB : F.Blocks)
      for (const auto &Instr : BB->Instrs)
        if (Instr->op() == Opcode::StoreLocal)
          Gen[BB->Id][Instr->SlotId] = Instr.get();

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const auto &BB : F.Blocks) {
        unsigned Id = BB->Id;
        if (!InGraph[Id])
          continue;
        LocalDefs NewIn;
        if (SeedBlock == static_cast<int>(Id) && Seed)
          NewIn = *Seed;
        for (unsigned Pred : Preds[Id]) {
          if (!InGraph[Pred])
            continue;
          for (const auto &[Local, Defs] : Out[Pred])
            NewIn[Local].insert(Defs.begin(), Defs.end());
        }
        LocalDefs NewOut = NewIn;
        for (const auto &[Local, Def] : Gen[Id]) {
          if (GenDefs)
            NewOut[Local] = {Def};
          else
            NewOut.erase(Local);
        }
        if (NewIn != In[Id] || NewOut != Out[Id]) {
          In[Id] = std::move(NewIn);
          Out[Id] = std::move(NewOut);
          Changed = true;
        }
      }
    }
  }

  /// Definitions of \p Local reaching instruction \p Use: the nearest
  /// preceding def in its block, else the block IN set.
  DefSet reachingAt(const Instruction *Use, unsigned Local) const {
    const BasicBlock *BB = Use->Parent;
    Instruction *Nearest = nullptr;
    for (const auto &Instr : BB->Instrs) {
      if (Instr.get() == Use)
        break;
      if (Instr->op() == Opcode::StoreLocal && Instr->SlotId == Local)
        Nearest = Instr.get();
    }
    if (Nearest)
      return {Nearest};
    auto It = In[BB->Id].find(Local);
    return It == In[BB->Id].end() ? DefSet() : It->second;
  }

  /// Carried variant: a preceding same-block definition kills all
  /// around-the-back-edge defs instead of becoming the reaching def.
  DefSet reachingAtCarried(const Instruction *Use, unsigned Local) const {
    const BasicBlock *BB = Use->Parent;
    for (const auto &Instr : BB->Instrs) {
      if (Instr.get() == Use)
        break;
      if (Instr->op() == Opcode::StoreLocal && Instr->SlotId == Local)
        return {};
    }
    auto It = In[BB->Id].find(Local);
    return It == In[BB->Id].end() ? DefSet() : It->second;
  }

  std::vector<LocalDefs> In, Out;
};

/// Memory access description of one PDG node.
struct MemAccess {
  bool Participates = false;
  EffectSummary S;
  std::vector<PtrOrigins::AliasClass> ReadPtrs;
  std::vector<PtrOrigins::AliasClass> WritePtrs;
};

struct ConflictResult {
  bool Conflict = false;
  bool Carried = false;
};

} // namespace

static MemAccess buildAccess(const Instruction *Instr,
                             const EffectAnalysis &EA, const PtrOrigins &PO) {
  MemAccess A;
  A.S = EA.instructionEffects(Instr);
  if (!A.S.touchesMemory())
    return A;
  A.Participates = true;
  if (Instr->isCall() && (A.S.ArgMemRead || A.S.ArgMemWrite || A.S.World)) {
    for (const Operand &Op : Instr->Operands) {
      // Only pointer-typed operands carry memory.
      bool IsPtr = false;
      if (Op.isInstr())
        IsPtr = Op.Def->type() == IRType::Ptr;
      else
        IsPtr = Op.K == Operand::Kind::ConstStr ||
                Op.K == Operand::Kind::ConstNull;
      if (!IsPtr)
        continue;
      auto Class = PO.classOf(Op);
      if (A.S.ArgMemRead || A.S.World)
        A.ReadPtrs.push_back(Class);
      if (A.S.ArgMemWrite || A.S.World)
        A.WritePtrs.push_back(Class);
    }
  }
  return A;
}

/// True when an argmem alias between \p A and \p B can persist across loop
/// iterations: any shared basis other than an allocation inside the loop.
static bool argMemCarried(const PtrOrigins::AliasClass &A,
                          const PtrOrigins::AliasClass &B, const Loop &L) {
  if (A.Unknown || B.Unknown)
    return true;
  for (const Instruction *Root : A.Roots)
    if (B.Roots.count(Root) && !L.contains(Root))
      return true;
  return false;
}

static void mergeConflict(ConflictResult &R, bool Carried) {
  R.Conflict = true;
  R.Carried |= Carried;
}

static ConflictResult conflict(const MemAccess &A, const MemAccess &B,
                               const Loop &L) {
  ConflictResult R;
  if (!A.Participates || !B.Participates)
    return R;
  if (A.S.World || B.S.World) {
    // World conflicts with anything that touches memory.
    mergeConflict(R, true);
    return R;
  }

  auto intersects = [](const std::set<unsigned> &X,
                       const std::set<unsigned> &Y) {
    for (unsigned V : X)
      if (Y.count(V))
        return true;
    return false;
  };

  // Named classes and globals: write-read, read-write, write-write.
  bool ClassConflict =
      intersects(A.S.WriteClasses, B.S.ReadClasses) ||
      intersects(A.S.WriteClasses, B.S.WriteClasses) ||
      intersects(A.S.ReadClasses, B.S.WriteClasses) ||
      intersects(A.S.WriteGlobals, B.S.ReadGlobals) ||
      intersects(A.S.WriteGlobals, B.S.WriteGlobals) ||
      intersects(A.S.ReadGlobals, B.S.WriteGlobals);
  if (ClassConflict)
    mergeConflict(R, true);

  // Argument memory.
  auto checkPtrs = [&](const std::vector<PtrOrigins::AliasClass> &Xs,
                       const std::vector<PtrOrigins::AliasClass> &Ys) {
    for (const auto &X : Xs)
      for (const auto &Y : Ys)
        if (PtrOrigins::mayAlias(X, Y))
          mergeConflict(R, argMemCarried(X, Y, L));
  };
  checkPtrs(A.WritePtrs, B.ReadPtrs);
  checkPtrs(A.WritePtrs, B.WritePtrs);
  checkPtrs(A.ReadPtrs, B.WritePtrs);
  return R;
}

PDG PDG::build(Function &F, const Loop &L, const Module &M,
               const EffectAnalysis &EA, const PtrOrigins &PO) {
  PDG G;
  G.F = &F;
  G.L = &L;

  unsigned NumInstrs = F.numberInstructions();
  G.NodeIndex.assign(NumInstrs, -1);
  for (const auto &BB : F.Blocks) {
    if (!L.BlockIds.count(BB->Id))
      continue;
    for (const auto &Instr : BB->Instrs) {
      G.NodeIndex[Instr->Id] = static_cast<int>(G.Nodes.size());
      G.Nodes.push_back(Instr.get());
    }
  }

  auto addEdge = [&](const Instruction *Src, const Instruction *Dst,
                     DepKind Kind, bool Carried, unsigned LocalId = ~0u) {
    int SrcIdx = G.NodeIndex[Src->Id];
    int DstIdx = G.NodeIndex[Dst->Id];
    if (SrcIdx < 0 || DstIdx < 0)
      return;
    PDGEdge E;
    E.Src = static_cast<unsigned>(SrcIdx);
    E.Dst = static_cast<unsigned>(DstIdx);
    E.Kind = Kind;
    E.LoopCarried = Carried;
    E.LocalId = LocalId;
    G.Edges.push_back(E);
  };

  // --- Register def/use edges (same block, never carried).
  for (Instruction *Instr : G.Nodes)
    for (const Operand &Op : Instr->Operands)
      if (Op.isInstr())
        addEdge(Op.Def, Instr, DepKind::Register, false);

  // --- Local flow edges via reaching definitions.
  auto PredBlocks = F.predecessors();
  unsigned NumBlocks = static_cast<unsigned>(F.Blocks.size());
  std::vector<std::vector<unsigned>> PredIds(NumBlocks);
  std::vector<std::vector<unsigned>> PredIdsCut(NumBlocks);
  for (unsigned B = 0; B < NumBlocks; ++B) {
    for (BasicBlock *Pred : PredBlocks[B]) {
      PredIds[B].push_back(Pred->Id);
      if (!L.isBackEdge(Pred, F.Blocks[B].get()))
        PredIdsCut[B].push_back(Pred->Id);
    }
  }
  std::vector<char> AllBlocks(NumBlocks, 1);
  std::vector<char> LoopBlocks(NumBlocks, 0);
  for (unsigned Id : L.BlockIds)
    LoopBlocks[Id] = 1;

  ReachingDefs Full;
  Full.compute(F, PredIds, AllBlocks);
  ReachingDefs Intra;
  Intra.compute(F, PredIdsCut, AllBlocks);

  // Around-the-back-edge dataflow: seed the header with the defs live at
  // the latches, propagate only within the loop with back edges cut.
  LocalDefs HeaderSeed;
  for (BasicBlock *Latch : L.Latches)
    for (const auto &[Local, Defs] : Full.Out[Latch->Id])
      HeaderSeed[Local].insert(Defs.begin(), Defs.end());
  ReachingDefs Carried;
  Carried.compute(F, PredIdsCut, LoopBlocks,
                  static_cast<int>(L.Header->Id), &HeaderSeed,
                  /*GenDefs=*/false);

  for (Instruction *Use : G.Nodes) {
    if (Use->op() != Opcode::LoadLocal)
      continue;
    unsigned Local = Use->SlotId;
    for (Instruction *Def : Intra.reachingAt(Use, Local))
      addEdge(Def, Use, DepKind::LocalFlow, false, Local);
    for (Instruction *Def : Carried.reachingAtCarried(Use, Local))
      addEdge(Def, Use, DepKind::LocalFlow, true, Local);
  }

  // --- Memory dependence edges.
  std::vector<MemAccess> Accesses(G.Nodes.size());
  for (size_t I = 0; I < G.Nodes.size(); ++I)
    Accesses[I] = buildAccess(G.Nodes[I], EA, PO);

  // Intra-iteration block reachability (back edges cut), loop blocks only.
  std::vector<std::vector<char>> BlockReach(
      NumBlocks, std::vector<char>(NumBlocks, 0));
  for (unsigned Start : L.BlockIds) {
    std::vector<unsigned> Worklist = {Start};
    while (!Worklist.empty()) {
      unsigned B = Worklist.back();
      Worklist.pop_back();
      for (BasicBlock *Succ : F.Blocks[B]->successors()) {
        if (!LoopBlocks[Succ->Id])
          continue;
        if (L.isBackEdge(F.Blocks[B].get(), Succ))
          continue;
        if (BlockReach[Start][Succ->Id])
          continue;
        BlockReach[Start][Succ->Id] = 1;
        Worklist.push_back(Succ->Id);
      }
    }
  }
  auto reachesIntra = [&](const Instruction *A, const Instruction *B) {
    if (A->Parent == B->Parent)
      return A->Id < B->Id;
    return BlockReach[A->Parent->Id][B->Parent->Id] != 0;
  };

  for (size_t I = 0; I < G.Nodes.size(); ++I) {
    if (!Accesses[I].Participates)
      continue;
    // Carried self dependence (e.g. a call updating a shared RNG seed).
    ConflictResult Self = conflict(Accesses[I], Accesses[I], L);
    if (Self.Conflict && Self.Carried)
      addEdge(G.Nodes[I], G.Nodes[I], DepKind::Memory, true);

    for (size_t J = I + 1; J < G.Nodes.size(); ++J) {
      if (!Accesses[J].Participates)
        continue;
      ConflictResult C = conflict(Accesses[I], Accesses[J], L);
      if (!C.Conflict)
        continue;
      Instruction *A = G.Nodes[I];
      Instruction *B = G.Nodes[J];
      if (reachesIntra(A, B))
        addEdge(A, B, DepKind::Memory, false);
      else if (reachesIntra(B, A))
        addEdge(B, A, DepKind::Memory, false);
      if (C.Carried) {
        addEdge(A, B, DepKind::Memory, true);
        addEdge(B, A, DepKind::Memory, true);
      }
    }
  }

  // --- Control dependence edges.
  PostDomTree PDT = computePostDominators(F);
  auto CD = computeControlDeps(F, PDT);
  for (const auto &BB : F.Blocks) {
    if (!LoopBlocks[BB->Id])
      continue;
    for (unsigned CtrlBlock : CD[BB->Id]) {
      if (!LoopBlocks[CtrlBlock])
        continue;
      Instruction *Branch = F.Blocks[CtrlBlock]->terminator();
      assert(Branch && "control dependence on unterminated block");
      for (const auto &Instr : BB->Instrs)
        addEdge(Branch, Instr.get(), DepKind::Control, false);
    }
  }

  return G;
}

std::vector<std::vector<unsigned>> PDG::activeAdjacency() const {
  std::vector<std::vector<unsigned>> Adj(Nodes.size());
  for (const PDGEdge &E : Edges)
    if (edgeActive(E))
      Adj[E.Src].push_back(E.Dst);
  return Adj;
}

std::string PDG::dump() const {
  std::string Out = formatString("PDG for loop at block '%s' (%zu nodes, "
                                 "%zu edges)\n",
                                 L->Header->Name.c_str(), Nodes.size(),
                                 Edges.size());
  for (size_t I = 0; I < Nodes.size(); ++I)
    Out += formatString("  n%zu: %s\n", I,
                        printInstruction(*Nodes[I]).c_str());
  for (const PDGEdge &E : Edges) {
    const char *Kind = E.Kind == DepKind::Register    ? "reg"
                       : E.Kind == DepKind::LocalFlow ? "loc"
                       : E.Kind == DepKind::Memory    ? "mem"
                                                      : "ctl";
    const char *Comm = E.Comm == CommAnnotation::Uco   ? " uco"
                       : E.Comm == CommAnnotation::Ico ? " ico"
                                                       : "";
    Out += formatString("  n%u -> n%u [%s%s%s]\n", E.Src, E.Dst, Kind,
                        E.LoopCarried ? " carried" : "", Comm);
  }
  return Out;
}
