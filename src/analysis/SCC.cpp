//===- SCC.cpp ------------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Analysis/SCC.h"

#include <algorithm>
#include <cassert>

using namespace commset;

namespace {

/// Iterative Tarjan SCC.
class TarjanSCC {
public:
  TarjanSCC(unsigned N, const std::vector<std::vector<unsigned>> &Adj)
      : Component(N, ~0u), Adj(Adj), Index(N, ~0u), LowLink(N, 0),
        OnStack(N, 0) {}

  void run() {
    for (unsigned V = 0; V < Index.size(); ++V)
      if (Index[V] == ~0u)
        strongConnect(V);
  }

  std::vector<unsigned> Component;
  unsigned NumComponents = 0;

private:
  void strongConnect(unsigned Root) {
    // Iterative DFS: frame = (node, next adjacency position).
    std::vector<std::pair<unsigned, size_t>> Frames;
    Frames.push_back({Root, 0});
    while (!Frames.empty()) {
      auto &[V, Next] = Frames.back();
      if (Next == 0) {
        Index[V] = LowLink[V] = NextIndex++;
        Stack.push_back(V);
        OnStack[V] = 1;
      }
      bool Descended = false;
      while (Next < Adj[V].size()) {
        unsigned W = Adj[V][Next++];
        if (Index[W] == ~0u) {
          Frames.push_back({W, 0});
          Descended = true;
          break;
        }
        if (OnStack[W])
          LowLink[V] = std::min(LowLink[V], Index[W]);
      }
      if (Descended)
        continue;
      if (LowLink[V] == Index[V]) {
        while (true) {
          unsigned W = Stack.back();
          Stack.pop_back();
          OnStack[W] = 0;
          Component[W] = NumComponents;
          if (W == V)
            break;
        }
        ++NumComponents;
      }
      unsigned Finished = V;
      Frames.pop_back();
      if (!Frames.empty()) {
        unsigned Parent = Frames.back().first;
        LowLink[Parent] = std::min(LowLink[Parent], LowLink[Finished]);
      }
    }
  }

  const std::vector<std::vector<unsigned>> &Adj;
  std::vector<unsigned> Index, LowLink;
  std::vector<char> OnStack;
  std::vector<unsigned> Stack;
  unsigned NextIndex = 0;
};

} // namespace

SCCResult commset::computeSCCs(const PDG &G) {
  unsigned N = static_cast<unsigned>(G.Nodes.size());
  auto Adj = G.activeAdjacency();
  TarjanSCC Tarjan(N, Adj);
  Tarjan.run();

  SCCResult R;
  R.ComponentOf = Tarjan.Component;
  R.Components.resize(Tarjan.NumComponents);
  for (unsigned V = 0; V < N; ++V)
    R.Components[Tarjan.Component[V]].push_back(V);

  R.DagSuccs.resize(Tarjan.NumComponents);
  R.HasCarried.assign(Tarjan.NumComponents, 0);
  for (const PDGEdge &E : G.Edges) {
    if (!G.edgeActive(E))
      continue;
    unsigned SrcC = R.ComponentOf[E.Src];
    unsigned DstC = R.ComponentOf[E.Dst];
    if (SrcC != DstC)
      R.DagSuccs[SrcC].insert(DstC);
    else if (G.edgeCarried(E))
      R.HasCarried[SrcC] = 1;
  }

  // Tarjan numbers components in reverse topological order of the DAG.
  R.TopoOrder.resize(Tarjan.NumComponents);
  for (unsigned C = 0; C < Tarjan.NumComponents; ++C)
    R.TopoOrder[C] = Tarjan.NumComponents - 1 - C;
  return R;
}
