//===- CheckRuntime.cpp ---------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Check/CheckRuntime.h"

#include <algorithm>
#include <sstream>

using namespace commset;
using namespace commset::check;

void check::registerCheckNatives(NativeRegistry &Natives, CheckState &S) {
  Natives.add(
      "work",
      [](const RtValue *Args, unsigned) {
        uint64_t X = static_cast<uint64_t>(Args[0].I);
        return RtValue::ofInt(
            static_cast<int64_t>(((X * 2654435761ULL) >> 7) & 0xffff));
      },
      4000);
  Natives.add(
      "mix2",
      [](const RtValue *Args, unsigned) {
        return RtValue::ofInt((Args[0].I * 31 + Args[1].I * 17) & 0xffff);
      },
      1500);
  Natives.add(
      "cell_add",
      [&S](const RtValue *Args, unsigned) {
        std::lock_guard<std::mutex> Guard(S.M);
        size_t K = static_cast<size_t>(Args[0].I < 0 ? -Args[0].I
                                                     : Args[0].I) %
                   CheckState::NumCells;
        S.Cells[K] += Args[1].I;
        return RtValue();
      },
      300, "cells");
  Natives.add(
      "cell_get",
      [&S](const RtValue *Args, unsigned) {
        std::lock_guard<std::mutex> Guard(S.M);
        size_t K = static_cast<size_t>(Args[0].I < 0 ? -Args[0].I
                                                     : Args[0].I) %
                   CheckState::NumCells;
        return RtValue::ofInt(S.Cells[K]);
      },
      200, "cells");
  Natives.add(
      "stat_note",
      [&S](const RtValue *Args, unsigned) {
        std::lock_guard<std::mutex> Guard(S.M);
        ++S.StatCount;
        S.StatSum += Args[0].I;
        S.StatMin = std::min(S.StatMin, Args[0].I);
        S.StatMax = std::max(S.StatMax, Args[0].I);
        return RtValue();
      },
      250, "stats");
  Natives.add(
      "emit",
      [&S](const RtValue *Args, unsigned) {
        std::lock_guard<std::mutex> Guard(S.M);
        S.Output.push_back({Args[0].I, Args[1].I});
        return RtValue();
      },
      400, "out");
  Natives.add(
      "source_next",
      [&S](const RtValue *, unsigned) {
        std::lock_guard<std::mutex> Guard(S.M);
        int64_t V = (S.SourceCursor * 97 + 13) & 0xff;
        ++S.SourceCursor;
        return RtValue::ofInt(V);
      },
      350, "src");
}

std::map<std::string, double> check::checkCostHints() {
  return {{"work", 4000.0},      {"mix2", 1500.0}, {"cell_add", 300.0},
          {"cell_get", 200.0},   {"stat_note", 250.0}, {"emit", 400.0},
          {"source_next", 350.0}};
}

Snapshot check::takeSnapshot(const CheckState &State,
                             const std::vector<int64_t> &GlobalInts,
                             int64_t Result, uint64_t Iterations) {
  Snapshot S;
  S.GlobalInts = GlobalInts;
  S.Cells = State.Cells;
  S.StatCount = State.StatCount;
  S.StatSum = State.StatSum;
  S.StatMin = State.StatMin;
  S.StatMax = State.StatMax;
  S.SourceCursor = State.SourceCursor;
  S.Output = State.Output;
  S.Result = Result;
  S.Iterations = Iterations;
  return S;
}

namespace {

template <typename T>
void dumpSeq(std::ostringstream &Os, const std::vector<T> &V, size_t Cap) {
  Os << "[";
  for (size_t I = 0; I < V.size() && I < Cap; ++I)
    Os << (I ? " " : "") << V[I];
  if (V.size() > Cap)
    Os << " ...";
  Os << "]";
}

void dumpPairs(std::ostringstream &Os,
               const std::vector<std::pair<int64_t, int64_t>> &V,
               size_t Cap) {
  Os << "[";
  for (size_t I = 0; I < V.size() && I < Cap; ++I)
    Os << (I ? " " : "") << "(" << V[I].first << "," << V[I].second << ")";
  if (V.size() > Cap)
    Os << " ...";
  Os << "]";
}

bool outputEquivalent(const Snapshot &Ref, const Snapshot &Got,
                      OutputOrder Order, std::string &Why) {
  if (Ref.Output.size() != Got.Output.size()) {
    Why = "output length differs";
    return false;
  }
  switch (Order) {
  case OutputOrder::Exact:
    if (Ref.Output != Got.Output) {
      Why = "output sequence differs (exact order required)";
      return false;
    }
    return true;
  case OutputOrder::PerKeyOrdered: {
    // Same multiset overall and same subsequence per key.
    std::map<int64_t, std::vector<int64_t>> RefKeyed, GotKeyed;
    for (auto &[K, V] : Ref.Output)
      RefKeyed[K].push_back(V);
    for (auto &[K, V] : Got.Output)
      GotKeyed[K].push_back(V);
    if (RefKeyed != GotKeyed) {
      Why = "per-key output subsequences differ";
      return false;
    }
    return true;
  }
  case OutputOrder::Multiset: {
    auto A = Ref.Output, B = Got.Output;
    std::sort(A.begin(), A.end());
    std::sort(B.begin(), B.end());
    if (A != B) {
      Why = "output multisets differ";
      return false;
    }
    return true;
  }
  }
  return true;
}

} // namespace

std::optional<std::string> check::compareSnapshots(const Snapshot &Ref,
                                                   const Snapshot &Got,
                                                   OutputOrder Order) {
  std::ostringstream Os;
  bool Diverged = false;
  auto mismatch = [&](const char *What, int64_t A, int64_t B) {
    Os << "  " << What << ": expected " << A << ", got " << B << "\n";
    Diverged = true;
  };

  if (Ref.GlobalInts != Got.GlobalInts) {
    Os << "  globals: expected ";
    dumpSeq(Os, Ref.GlobalInts, 16);
    Os << ", got ";
    dumpSeq(Os, Got.GlobalInts, 16);
    Os << "\n";
    Diverged = true;
  }
  if (Ref.Cells != Got.Cells) {
    Os << "  cells: expected ";
    dumpSeq(Os, Ref.Cells, 16);
    Os << ", got ";
    dumpSeq(Os, Got.Cells, 16);
    Os << "\n";
    Diverged = true;
  }
  if (Ref.StatCount != Got.StatCount)
    mismatch("stat count", Ref.StatCount, Got.StatCount);
  if (Ref.StatSum != Got.StatSum)
    mismatch("stat sum", Ref.StatSum, Got.StatSum);
  if (Ref.StatMin != Got.StatMin)
    mismatch("stat min", Ref.StatMin, Got.StatMin);
  if (Ref.StatMax != Got.StatMax)
    mismatch("stat max", Ref.StatMax, Got.StatMax);
  if (Ref.SourceCursor != Got.SourceCursor)
    mismatch("source cursor", Ref.SourceCursor, Got.SourceCursor);
  if (Ref.Result != Got.Result)
    mismatch("return value", Ref.Result, Got.Result);
  // Iterations is informational only: the sequential interpreter does not
  // count loop trips, so it is not comparable across schemes.

  std::string Why;
  if (!outputEquivalent(Ref, Got, Order, Why)) {
    Os << "  " << Why << ": expected ";
    dumpPairs(Os, Ref.Output, 24);
    Os << ", got ";
    dumpPairs(Os, Got.Output, 24);
    Os << "\n";
    Diverged = true;
  }

  if (!Diverged)
    return std::nullopt;
  return Os.str();
}
