//===- CommCheck.cpp ------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Check/CommCheck.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace commset;
using namespace commset::check;

std::string check::renderArtifact(const GeneratedProgram &P,
                                  const TrialResult &Trial) {
  std::ostringstream Os;
  Os << "CommCheck failure artifact\n"
     << "==========================\n"
     << "seed: " << P.Seed << "\n"
     << "replay: commcheck --seed " << P.Seed << " --iters 1\n"
     << "shape: " << P.Shape << "\n"
     << "trip count: " << P.TripCount << "\n"
     << "lib-safe: " << (P.LibSafe ? "yes" : "no") << "\n"
     << "\n--- report ---\n"
     << Trial.Report;
  if (!Trial.TracePaths.empty()) {
    Os << "\n--- traces ---\n";
    for (const std::string &Path : Trial.TracePaths)
      Os << Path << "\n";
  }
  Os << "\n--- generated program ---\n" << P.Source;
  return Os.str();
}

CommCheckSummary check::runCommCheck(const CommCheckOptions &Opts) {
  CommCheckSummary Sum;
  for (unsigned K = 0; K < Opts.Iterations; ++K) {
    uint64_t IterSeed = Opts.Seed + K;
    GeneratedProgram P = generateProgram(IterSeed, Opts.Gen);
    TrialResult Trial = runTrials(P, Opts.Oracle, IterSeed);

    ++Sum.Iterations;
    Sum.PlansRun += Trial.PlansRun;
    Sum.SchedulesRun += Trial.SchedulesRun;
    Sum.RacesReported += Trial.RacesReported;
    Sum.FaultRuns += Trial.FaultRuns;
    Sum.DegradedRuns += Trial.DegradedRuns;
    Sum.FaultsInjected += Trial.FaultsInjected;
    for (const std::string &Path : Trial.TracePaths)
      Sum.ArtifactPaths.push_back(Path);

    if (!Trial.PlanStats.empty())
      std::printf("commcheck: seed %llu plan stats:\n%s",
                  static_cast<unsigned long long>(IterSeed),
                  Trial.PlanStats.c_str());

    if (Opts.Verbose) {
      if (Trial.FaultRuns)
        std::printf("commcheck: seed %llu %s (%u plans, %u schedules, "
                    "%u fault runs, %u degraded, %llu faults) %s\n",
                    static_cast<unsigned long long>(IterSeed),
                    Trial.Ok ? "ok" : "FAIL", Trial.PlansRun,
                    Trial.SchedulesRun, Trial.FaultRuns, Trial.DegradedRuns,
                    static_cast<unsigned long long>(Trial.FaultsInjected),
                    P.Shape.c_str());
      else
        std::printf("commcheck: seed %llu %s (%u plans, %u schedules) %s\n",
                    static_cast<unsigned long long>(IterSeed),
                    Trial.Ok ? "ok" : "FAIL", Trial.PlansRun,
                    Trial.SchedulesRun, P.Shape.c_str());
    }

    if (Trial.Ok)
      continue;

    ++Sum.Failures;
    if (Sum.FirstFailure.empty())
      Sum.FirstFailure = Trial.Report;
    if (!Opts.DumpDir.empty()) {
      std::string Path = Opts.DumpDir + "/commcheck-" +
                         std::to_string(IterSeed) + ".txt";
      std::ofstream Out(Path);
      if (Out) {
        Out << renderArtifact(P, Trial);
        Sum.ArtifactPaths.push_back(Path);
      }
    }
  }
  return Sum;
}
