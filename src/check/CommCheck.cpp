//===- CommCheck.cpp ------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Check/CommCheck.h"

#include "commset/Analysis/CommProve.h"
#include "commset/Analysis/Lint.h"
#include "commset/Check/CheckRuntime.h"
#include "commset/Check/ProveReplay.h"
#include "commset/Driver/Runner.h"
#include "commset/Support/Diagnostics.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace commset;
using namespace commset::check;

std::string check::renderArtifact(const GeneratedProgram &P,
                                  const TrialResult &Trial) {
  std::ostringstream Os;
  Os << "CommCheck failure artifact\n"
     << "==========================\n"
     << "seed: " << P.Seed << "\n"
     << "replay: commcheck --seed " << P.Seed << " --iters 1";
  // A single active policy is replayable exactly; pin it in the command.
  if (Trial.SchedPolicies.size() == 1)
    Os << " --sched " << schedPolicyName(Trial.SchedPolicies[0]);
  Os << "\n"
     << "sched policies:";
  if (Trial.SchedPolicies.empty())
    Os << " guided (default)";
  for (SchedPolicy Sched : Trial.SchedPolicies)
    Os << " " << schedPolicyName(Sched);
  Os << "\n"
     << "shape: " << P.Shape << "\n"
     << "trip count: " << P.TripCount << "\n"
     << "lib-safe: " << (P.LibSafe ? "yes" : "no") << "\n";
  if (Trial.PrivPlansRun)
    Os << "priv plans: " << Trial.PrivPlansRun << " run, "
       << Trial.PrivatizedPlans << " privatized\n";
  Os << "\n--- report ---\n"
     << Trial.Report;
  if (!Trial.TracePaths.empty()) {
    Os << "\n--- traces ---\n";
    for (const std::string &Path : Trial.TracePaths)
      Os << Path << "\n";
  }
  Os << "\n--- generated program ---\n" << P.Source;
  return Os.str();
}

namespace {

/// `--lint` negative control: lints every applicable parallel plan of a
/// seeded-unsound program and reports whether any plan's result carries the
/// code the generator planted. On a miss, \p Report describes what CommLint
/// said instead.
bool lintFlagsUnsound(const GeneratedProgram &P, const OracleOptions &Oracle,
                      std::string &Report, unsigned &LintedPlans) {
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(P.Source, Diags);
  if (!C) {
    Report = "seeded-unsound program failed to compile (generator bug):\n" +
             Diags.str();
    return false;
  }
  auto T = C->analyzeLoop("main_loop", Diags);
  if (!T) {
    Report = "analyzeLoop(main_loop) failed on seeded-unsound program:\n" +
             Diags.str();
    return false;
  }
  PlanOptions PO;
  PO.NumThreads = 4;
  PO.Sync = SyncMode::Mutex;
  PO.Sched = Oracle.SchedPolicies.empty() ? SchedPolicy::Guided
                                          : Oracle.SchedPolicies.front();
  PO.NativeCostHints = checkCostHints();
  auto Schemes = buildAllSchemes(*C, *T, PO);
  unsigned ParallelPlans = 0;
  std::string Findings;
  for (const SchemeReport &R : Schemes) {
    if (!R.Applicable || !R.Plan || R.Plan->Kind == Strategy::Sequential)
      continue;
    ++ParallelPlans;
    ++LintedPlans;
    LintResult LR = runLint(*C, *T, *R.Plan);
    if (LR.hasCode(P.ExpectedLintCode))
      return true;
    Findings += "  plan: " + R.Plan->describe() + "\n" + LR.str();
  }
  std::ostringstream Os;
  Os << "CommLint failed to flag seeded-unsound annotation\n"
     << "  planted: " << P.UnsoundKind << " (expected " << P.ExpectedLintCode
     << ")\n";
  if (!ParallelPlans)
    Os << "  no parallel plan was applicable — the unsound template must "
          "stay DOALL-able for the lint sweep to audit it\n";
  else
    Os << "  findings across " << ParallelPlans << " parallel plan(s):\n"
       << Findings;
  Report = Os.str();
  return false;
}

/// `--prove` positive control: the prover must not refute any annotated
/// pair of a SOUND program — its shared effects are commutative by
/// construction, so a witness against one is a prover unsoundness, the
/// worst failure mode CommProve can have. Unknown verdicts are expected
/// (members call natives); only Refuted fails.
bool proveSoundProgram(const GeneratedProgram &P, const ProveOptions &PO,
                       std::string &Report, CommCheckSummary &Sum) {
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(P.Source, Diags);
  if (!C) {
    Report = "sound program failed to compile for the prove control:\n" +
             Diags.str();
    return false;
  }
  ProveResult PR = runCommProve(*C, nullptr, PO);
  Sum.ProvenPairs += PR.Proven;
  Sum.RefutedPairs += PR.Refuted;
  Sum.UnknownPairs += PR.Unknown;
  if (!PR.Refuted)
    return true;
  std::ostringstream Os;
  Os << "CommProve REFUTED a pair of a sound program (prover unsoundness)\n";
  for (const PairProof &Proof : PR.Pairs)
    if (Proof.Verdict == ProveVerdict::Refuted)
      Os << "  pair " << Proof.First << "/" << Proof.Second << ": "
         << Proof.Detail << "\n  witness: "
         << proveWitnessStr(C->module(), Proof) << "\n";
  Report = Os.str();
  return false;
}

/// `--prove` negative control: the seeded non-commutative twin must be
/// refuted with a concrete witness, and the witness must reproduce a real
/// divergence under the controlled-schedule explorer. \p ArtifactText
/// receives the full refutation artifact (also used on success for the
/// verbose trail).
bool proveRefutesNoncommTwin(const GeneratedProgram &P,
                             const ProveOptions &PO, std::string &Report,
                             CommCheckSummary &Sum,
                             std::string &ArtifactText) {
  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(P.Source, Diags);
  if (!C) {
    Report = "seeded non-commutative twin failed to compile (generator "
             "bug):\n" +
             Diags.str();
    return false;
  }
  ProveResult PR = runCommProve(*C, nullptr, PO);
  Sum.ProvenPairs += PR.Proven;
  Sum.RefutedPairs += PR.Refuted;
  Sum.UnknownPairs += PR.Unknown;
  const PairProof *Refuted = nullptr;
  for (const PairProof &Proof : PR.Pairs)
    if (Proof.Verdict == ProveVerdict::Refuted) {
      Refuted = &Proof;
      break;
    }
  if (!Refuted) {
    std::ostringstream Os;
    Os << "CommProve failed to refute seeded non-commutative twin\n"
       << "  planted: " << P.UnsoundKind << " (expected "
       << P.ExpectedLintCode << ")\n  verdicts:\n";
    for (const PairProof &Proof : PR.Pairs)
      Os << "    " << Proof.First << "/" << Proof.Second << ": "
         << proveVerdictName(Proof.Verdict) << " (" << Proof.Detail
         << ")\n";
    Report = Os.str();
    return false;
  }
  ProveReplayResult RR = replayProveWitness(*C, *Refuted);
  ArtifactText = renderProveArtifact(*C, *Refuted, RR);
  if (!RR.Diverged) {
    Report = "CommProve witness did not reproduce under the controlled "
             "scheduler\n" +
             ArtifactText;
    return false;
  }
  return true;
}

} // namespace

CommCheckSummary check::runCommCheck(const CommCheckOptions &Opts) {
  CommCheckSummary Sum;
  OracleOptions Oracle = Opts.Oracle;
  if (Opts.Lint)
    Oracle.Lint = true; // --lint always validates the positive side too.
  for (unsigned K = 0; K < Opts.Iterations; ++K) {
    uint64_t IterSeed = Opts.Seed + K;
    GeneratedProgram P = generateProgram(IterSeed, Opts.Gen);
    TrialResult Trial = runTrials(P, Oracle, IterSeed);

    ++Sum.Iterations;
    Sum.PlansRun += Trial.PlansRun;
    Sum.SchedulesRun += Trial.SchedulesRun;
    Sum.RacesReported += Trial.RacesReported;
    Sum.FaultRuns += Trial.FaultRuns;
    Sum.DegradedRuns += Trial.DegradedRuns;
    Sum.FaultsInjected += Trial.FaultsInjected;
    Sum.LintedPlans += Trial.LintedPlans;
    Sum.PrivPlansRun += Trial.PrivPlansRun;
    Sum.PrivatizedPlans += Trial.PrivatizedPlans;
    for (const std::string &Path : Trial.TracePaths)
      Sum.ArtifactPaths.push_back(Path);

    // Negative control: the unsound twin for this seed must be flagged.
    if (Opts.Lint) {
      GenOptions UnsoundGen = Opts.Gen;
      UnsoundGen.SeedUnsound = true;
      GeneratedProgram UP = generateProgram(IterSeed, UnsoundGen);
      ++Sum.UnsoundSeeded;
      std::string UnsoundReport;
      if (lintFlagsUnsound(UP, Oracle, UnsoundReport, Sum.LintedPlans)) {
        ++Sum.UnsoundFlagged;
        if (Opts.Verbose)
          std::printf("commcheck: seed %llu lint flagged unsound twin "
                      "(%s -> %s)\n",
                      static_cast<unsigned long long>(IterSeed),
                      UP.UnsoundKind.c_str(), UP.ExpectedLintCode.c_str());
      } else {
        ++Sum.Failures;
        if (Sum.FirstFailure.empty())
          Sum.FirstFailure = UnsoundReport;
        if (Opts.Verbose)
          std::printf("commcheck: seed %llu FAIL (unsound twin missed)\n",
                      static_cast<unsigned long long>(IterSeed));
        if (!Opts.DumpDir.empty()) {
          TrialResult Missed;
          Missed.Ok = false;
          Missed.Report = UnsoundReport;
          Missed.SchedPolicies = Oracle.SchedPolicies;
          std::string Path = Opts.DumpDir + "/commcheck-" +
                             std::to_string(IterSeed) + "-unsound.txt";
          std::ofstream Out(Path);
          if (Out) {
            Out << renderArtifact(UP, Missed);
            Sum.ArtifactPaths.push_back(Path);
          }
        }
      }
    }

    // CommProve cross-validation: prover must stay silent on the sound
    // program (positive) and refute the non-commutative twin with a
    // witness that replays (negative).
    if (Opts.Prove) {
      ProveOptions PO;
      PO.StepBudget = Opts.ProveBudget;
      PO.NodeBudget = Opts.ProveBudget * 50u;
      PO.Suggest = false; // No loop target here; suggestions are lint-side.
      std::string ProveReport;
      if (!proveSoundProgram(P, PO, ProveReport, Sum)) {
        ++Sum.Failures;
        if (Sum.FirstFailure.empty())
          Sum.FirstFailure = ProveReport;
        if (Opts.Verbose)
          std::printf("commcheck: seed %llu FAIL (prove positive control)\n",
                      static_cast<unsigned long long>(IterSeed));
        if (!Opts.DumpDir.empty()) {
          TrialResult Bad;
          Bad.Ok = false;
          Bad.Report = ProveReport;
          std::string Path = Opts.DumpDir + "/commcheck-" +
                             std::to_string(IterSeed) + "-prove.txt";
          std::ofstream Out(Path);
          if (Out) {
            Out << renderArtifact(P, Bad);
            Sum.ArtifactPaths.push_back(Path);
          }
        }
      }

      GenOptions NoncommGen = Opts.Gen;
      NoncommGen.SeedNoncommutative = true;
      GeneratedProgram NP = generateProgram(IterSeed, NoncommGen);
      ++Sum.NoncommSeeded;
      std::string NoncommReport, ProveArtifact;
      if (proveRefutesNoncommTwin(NP, PO, NoncommReport, Sum,
                                  ProveArtifact)) {
        ++Sum.NoncommRefuted;
        if (Opts.Verbose)
          std::printf("commcheck: seed %llu prove refuted twin (%s) with "
                      "replaying witness\n",
                      static_cast<unsigned long long>(IterSeed),
                      NP.UnsoundKind.c_str());
      } else {
        ++Sum.Failures;
        if (Sum.FirstFailure.empty())
          Sum.FirstFailure = NoncommReport;
        if (Opts.Verbose)
          std::printf("commcheck: seed %llu FAIL (noncommutative twin not "
                      "refuted)\n",
                      static_cast<unsigned long long>(IterSeed));
        if (!Opts.DumpDir.empty()) {
          TrialResult Missed;
          Missed.Ok = false;
          Missed.Report = NoncommReport;
          std::string Path = Opts.DumpDir + "/commcheck-" +
                             std::to_string(IterSeed) + "-prove.txt";
          std::ofstream Out(Path);
          if (Out) {
            Out << renderArtifact(NP, Missed);
            Sum.ArtifactPaths.push_back(Path);
          }
        }
      }
    }

    if (!Trial.PlanStats.empty())
      std::printf("commcheck: seed %llu plan stats:\n%s",
                  static_cast<unsigned long long>(IterSeed),
                  Trial.PlanStats.c_str());

    if (Opts.Verbose) {
      if (Trial.FaultRuns)
        std::printf("commcheck: seed %llu %s (%u plans, %u schedules, "
                    "%u fault runs, %u degraded, %llu faults) %s\n",
                    static_cast<unsigned long long>(IterSeed),
                    Trial.Ok ? "ok" : "FAIL", Trial.PlansRun,
                    Trial.SchedulesRun, Trial.FaultRuns, Trial.DegradedRuns,
                    static_cast<unsigned long long>(Trial.FaultsInjected),
                    P.Shape.c_str());
      else
        std::printf("commcheck: seed %llu %s (%u plans, %u schedules) %s\n",
                    static_cast<unsigned long long>(IterSeed),
                    Trial.Ok ? "ok" : "FAIL", Trial.PlansRun,
                    Trial.SchedulesRun, P.Shape.c_str());
    }

    if (Trial.Ok)
      continue;

    ++Sum.Failures;
    if (Sum.FirstFailure.empty())
      Sum.FirstFailure = Trial.Report;
    if (!Opts.DumpDir.empty()) {
      std::string Path = Opts.DumpDir + "/commcheck-" +
                         std::to_string(IterSeed) + ".txt";
      std::ofstream Out(Path);
      if (Out) {
        Out << renderArtifact(P, Trial);
        Sum.ArtifactPaths.push_back(Path);
      }
    }
  }
  return Sum;
}
