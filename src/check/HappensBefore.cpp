//===- HappensBefore.cpp --------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Check/HappensBefore.h"

#include "commset/IR/IR.h"

#include <sstream>

using namespace commset;
using namespace commset::check;

std::string RaceReport::describe() const {
  std::ostringstream Os;
  Os << "race on global '" << Global << "' (slot " << Slot << "): thread "
     << ThreadA << " " << (WriteA ? "write" : "read") << " vs thread "
     << ThreadB << " " << (WriteB ? "write" : "read")
     << ", unordered by happens-before and not covered by a COMMSET";
  return Os.str();
}

HbChecker::HbChecker(unsigned NumThreads, const Module &M) : N(NumThreads) {
  for (const GlobalVar &G : M.Globals)
    GlobalNames.push_back(G.Name);
  Clocks.assign(N, VC(N, 0));
  // Distinct initial epochs per thread so "has T joined U's release?"
  // starts false everywhere except the thread's own component.
  for (unsigned T = 0; T < N; ++T)
    Clocks[T][T] = 1;
  SlotState Empty;
  Empty.LastWrite.assign(N, 0);
  Empty.LastRead.assign(N, 0);
  Empty.WriteProt.assign(N, 0);
  Empty.ReadProt.assign(N, 0);
  Slots.assign(M.Globals.size(), Empty);
  TmClock.assign(N, 0);
  InTx.assign(N, 0);
  SafeDepth.assign(N, 0);
  MemberStack.assign(N, {});
}

void HbChecker::report(unsigned Slot, unsigned TA, bool WA, unsigned TB,
                       bool WB) {
  auto Key = std::make_tuple(Slot, WA, WB);
  if (!Seen.insert(Key).second || Races.size() >= 64)
    return;
  RaceReport R;
  R.Slot = Slot;
  R.Global = Slot < GlobalNames.size() ? GlobalNames[Slot] : "?";
  R.ThreadA = TA;
  R.WriteA = WA;
  R.ThreadB = TB;
  R.WriteB = WB;
  Races.push_back(std::move(R));
}

void HbChecker::access(unsigned T, unsigned Slot, bool IsWrite) {
  if (T >= N || Slot >= Slots.size())
    return;
  SlotState &S = Slots[Slot];
  const VC &Mine = Clocks[T];
  bool Prot = protectedAccess(T);
  for (unsigned U = 0; U < N; ++U) {
    if (U == T)
      continue;
    // A prior access by U races with this one when T has not joined U's
    // clock past it (unordered) — unless a COMMSET covers both sides
    // (both in declared-safe members or transactions).
    if (S.LastWrite[U] > Mine[U] && !(Prot && S.WriteProt[U]))
      report(Slot, U, true, T, IsWrite);
    if (IsWrite && S.LastRead[U] > Mine[U] && !(Prot && S.ReadProt[U]))
      report(Slot, U, false, T, true);
  }
  if (IsWrite) {
    S.LastWrite[T] = Mine[T];
    S.WriteProt[T] = Prot;
  } else {
    S.LastRead[T] = Mine[T];
    S.ReadProt[T] = Prot;
  }
}

void HbChecker::onSend(unsigned From, unsigned To) {
  ChannelClocks[{From, To}].push_back(Clocks[From]);
  ++Clocks[From][From];
}

void HbChecker::onRecv(unsigned From, unsigned To) {
  auto &Q = ChannelClocks[{From, To}];
  if (Q.empty())
    return; // Platform guarantees a matching send; be defensive anyway.
  join(Clocks[To], Q.front());
  Q.pop_front();
}

void HbChecker::onLockAcquire(unsigned T,
                              const std::vector<unsigned> &Ranks) {
  for (unsigned R : Ranks) {
    auto It = RankClocks.find(R);
    if (It != RankClocks.end())
      join(Clocks[T], It->second);
  }
}

void HbChecker::onLockRelease(unsigned T,
                              const std::vector<unsigned> &Ranks) {
  for (unsigned R : Ranks)
    RankClocks[R] = Clocks[T];
  ++Clocks[T][T];
}

void HbChecker::onResourceAcquire(unsigned T, const std::string &Name) {
  auto It = ResourceClocks.find(Name);
  if (It != ResourceClocks.end())
    join(Clocks[T], It->second);
}

void HbChecker::onResourceRelease(unsigned T, const std::string &Name) {
  ResourceClocks[Name] = Clocks[T];
  ++Clocks[T][T];
}

void HbChecker::onTxBegin(unsigned T) {
  InTx[T] = 1;
  join(Clocks[T], TmClock);
}

void HbChecker::onTxCommit(unsigned T) {
  join(TmClock, Clocks[T]);
  ++Clocks[T][T];
  InTx[T] = 0;
}

void HbChecker::onMemberEnter(unsigned T, bool DeclaredSafe) {
  MemberStack[T].push_back(DeclaredSafe ? 1 : 0);
  if (DeclaredSafe)
    ++SafeDepth[T];
}

void HbChecker::onMemberExit(unsigned T) {
  if (MemberStack[T].empty())
    return;
  if (MemberStack[T].back())
    --SafeDepth[T];
  MemberStack[T].pop_back();
}

void HbChecker::onRegionBegin(unsigned Master) {
  for (unsigned W = 0; W < N; ++W)
    if (W != Master)
      join(Clocks[W], Clocks[Master]);
  ++Clocks[Master][Master];
}

void HbChecker::onRegionEnd(unsigned Master) {
  for (unsigned W = 0; W < N; ++W)
    if (W != Master)
      join(Clocks[Master], Clocks[W]);
}
