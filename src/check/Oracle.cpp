//===- Oracle.cpp ---------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Check/Oracle.h"

#include "commset/Analysis/Lint.h"
#include "commset/Check/CheckRuntime.h"
#include "commset/Check/SchedulePlatform.h"
#include "commset/Driver/Runner.h"
#include "commset/Exec/JitBackend.h"
#include "commset/IR/Verifier.h"
#include "commset/Exec/ThreadedPlatform.h"
#include "commset/Trace/Export.h"
#include "commset/Trace/Metrics.h"
#include "commset/Trace/Trace.h"

#include <sstream>

using namespace commset;
using namespace commset::check;

namespace {

/// One execution of \p F under \p Plan with fresh harness state and a
/// fresh global image, snapshotted afterwards.
Snapshot runOnce(const Module &M, const Function *F, const ParallelPlan &Plan,
                 int TripCount, ExecPlatform &Platform,
                 const ExecBackend *Backend = nullptr) {
  CheckState State;
  NativeRegistry Natives;
  registerCheckNatives(Natives, State);
  std::vector<RtValue> Globals = makeGlobalImage(M);
  LoopRunStats Stats;
  RtValue Result =
      runFunctionWithPlan(M, Natives, Globals.data(), Plan, F,
                          {RtValue::ofInt(TripCount)}, Platform, &Stats,
                          /*Resilience=*/nullptr, Backend);
  std::vector<int64_t> GlobalInts;
  GlobalInts.reserve(Globals.size());
  for (const RtValue &V : Globals)
    GlobalInts.push_back(V.I);
  return takeSnapshot(State, GlobalInts, Result.I, Stats.Iterations);
}

std::string planContext(const ParallelPlan &Plan, unsigned Threads,
                        SyncMode Sync) {
  std::ostringstream Os;
  Os << "plan: " << Plan.describe() << "\n  requested threads: " << Threads
     << ", sync mode: " << syncModeName(Sync) << "\n";
  return Os.str();
}

void fail(TrialResult &Res, const std::string &What) {
  Res.Ok = false;
  if (!Res.Report.empty())
    return; // Keep the first failure; it is the one to replay.
  Res.Report = What;
}

/// Arms the CommTrace session for one sweep run (one ring per worker plus
/// a spare for out-of-range tids).
void armTrace(unsigned Threads) {
  trace::session().enable(size_t(1) << 14, std::max(2u, Threads + 1));
}

/// Stops the session and returns the run's events (sorted).
std::vector<trace::TraceEvent> drainTrace() {
  trace::TraceSession &S = trace::session();
  S.disable();
  return S.collect();
}

/// One "plan ... : stm-aborts=... lock-contentions=..." stats line for the
/// sweep output.
std::string planStatsLine(const ParallelPlan &Plan, unsigned Threads,
                          SyncMode Sync,
                          const std::vector<trace::TraceEvent> &Events) {
  trace::TraceMetrics Met =
      trace::aggregateMetrics(Events, trace::session());
  std::ostringstream Os;
  Os << "  " << strategyName(Plan.Kind) << " sync=" << syncModeName(Sync)
     << " sched=" << schedPolicyName(Plan.Sched) << " threads=" << Threads
     << ": events=" << Met.Events
     << " stm-aborts=" << Met.StmAborts << "/" << Met.StmBegins
     << " stm-retries=" << Met.StmRetries
     << " lock-contentions=" << Met.totalLockContentions()
     << " lock-wait=" << Met.LockWaitNs.sum() << "ns"
     << " queue-block=" << Met.QueueBlockNs << "ns\n";
  return Os.str();
}

/// Sanitizes a plan into a file-name fragment for divergence trace dumps.
std::string traceFileStem(uint64_t Seed, const ParallelPlan &Plan,
                          unsigned Threads, SyncMode Sync) {
  std::ostringstream Os;
  Os << "commcheck-trace-" << Seed << "-" << strategyName(Plan.Kind) << "-"
     << syncModeName(Sync) << "-t" << Threads;
  std::string S = Os.str();
  for (char &C : S)
    if (C == ' ' || C == '/')
      C = '_';
  return S;
}

} // namespace

TrialResult check::runTrials(const GeneratedProgram &P,
                             const OracleOptions &Opts,
                             uint64_t ScheduleSeed) {
  TrialResult Res;
  Res.SchedPolicies = Opts.SchedPolicies;

  DiagnosticEngine Diags;
  auto C = Compilation::fromSource(P.Source, Diags);
  if (!C) {
    fail(Res, "generated program failed to compile (generator bug):\n" +
                  Diags.str());
    return Res;
  }
  auto T = C->analyzeLoop("main_loop", Diags);
  if (!T) {
    fail(Res, "analyzeLoop(main_loop) failed:\n" + Diags.str());
    return Res;
  }

  // Typed-IR gate: the interpreter's untagged register file would execute
  // an ill-typed module "successfully" while reinterpreting bits, turning a
  // lowering bug into a phantom divergence (or worse, hiding one). The same
  // verifier guards JitBackend::create.
  {
    std::string VErr;
    if (!verifyModuleIR(C->module(), &VErr)) {
      fail(Res, "lowered module failed typed-IR verification (lowering "
                "bug):\n  " +
                    VErr);
      return Res;
    }
  }

  const Module &M = C->module();

  // Sequential reference.
  ParallelPlan SeqPlan;
  SeqPlan.Kind = Strategy::Sequential;
  SeqPlan.F = T->F;
  SeqPlan.L = T->L;
  SeqPlan.NumThreads = 1;
  Snapshot Ref;
  {
    ThreadedPlatform Platform(1);
    Ref = runOnce(M, T->F, SeqPlan, P.TripCount, Platform);
  }

  // Native backend: compile once per trial. The interpreted reference above
  // stays interpreted regardless, so a jit trial is a true cross-backend
  // differential — first sequentially (the code generator alone is under
  // test), then through the parallel sweeps below.
  std::unique_ptr<JitBackend> Jit;
  const ExecBackend *Backend = nullptr;
  if (Opts.Backend == ExecBackendKind::Jit) {
    if (!JitBackend::supported()) {
      fail(Res, "backend 'jit' is not supported on this host/build "
                "(x86-64 + COMMSET_JIT=ON required)");
      return Res;
    }
    Jit = JitBackend::create(M);
    if (!Jit) {
      fail(Res, "jit backend failed to compile the generated module");
      return Res;
    }
    Backend = Jit.get();
    Snapshot Got;
    {
      ThreadedPlatform Platform(1);
      Got = runOnce(M, T->F, SeqPlan, P.TripCount, Platform, Backend);
    }
    ++Res.PlansRun;
    if (auto Diff = compareSnapshots(Ref, Got, P.Output))
      fail(Res, "native-sequential divergence vs interpreted reference "
                "(code generator bug)\n  " +
                    planContext(SeqPlan, 1, SyncMode::Mutex) + *Diff);
    if (!Res.Ok)
      return Res;
  }

  // Iteration-scheduling rotation: index I picks the I-th policy from the
  // option list (guided when the list is empty, matching PlanOptions).
  auto schedAt = [&Opts](size_t I) {
    if (Opts.SchedPolicies.empty())
      return SchedPolicy::Guided;
    return Opts.SchedPolicies[I % Opts.SchedPolicies.size()];
  };

  // Free-running differential sweep: every applicable scheme under every
  // sync mode and thread count; the sched policy rotates with the
  // thread-count axis so every policy sees real concurrency.
  std::vector<SyncMode> Syncs = {SyncMode::Mutex, SyncMode::Spin};
  if (Opts.IncludeTm)
    Syncs.push_back(SyncMode::Tm);
  if (Opts.IncludePriv)
    Syncs.push_back(SyncMode::Priv);
  if (P.LibSafe)
    Syncs.push_back(SyncMode::None);
  if (!Opts.SyncModes.empty())
    Syncs = Opts.SyncModes;

  for (size_t TIdx = 0; TIdx < Opts.Threads.size(); ++TIdx) {
    unsigned Threads = Opts.Threads[TIdx];
    for (SyncMode Sync : Syncs) {
      PlanOptions PO;
      PO.NumThreads = Threads;
      PO.Sync = Sync;
      PO.Sched = schedAt(TIdx);
      PO.NativeCostHints = checkCostHints();
      auto Schemes = buildAllSchemes(*C, *T, PO);
      for (const SchemeReport &R : Schemes) {
        if (!R.Applicable || !R.Plan ||
            R.Plan->Kind == Strategy::Sequential)
          continue;
        // Static verdict first: the sweep then validates it both ways.
        bool LintRaceFree = true;
        std::string LintFindings;
        if (Opts.Lint) {
          LintResult LR = runLint(*C, *T, *R.Plan);
          ++Res.LintedPlans;
          LintRaceFree = LR.raceFree();
          LintFindings = LR.str();
          if (!LintRaceFree)
            fail(Res,
                 "CommLint false positive: error-severity findings on a "
                 "generator-sound program\n  " +
                     planContext(*R.Plan, Threads, Sync) + LintFindings);
        }
        const bool Stats = Opts.PlanStats && trace::compiledIn();
        if (Stats)
          armTrace(R.Plan->NumThreads);
        Snapshot Got;
        {
          ThreadedPlatform Platform(std::max(1u, R.Plan->NumThreads));
          Got = runOnce(M, T->F, *R.Plan, P.TripCount, Platform, Backend);
        }
        if (Stats)
          Res.PlanStats += planStatsLine(*R.Plan, Threads, Sync,
                                         drainTrace());
        ++Res.PlansRun;
        if (Sync == SyncMode::Priv) {
          ++Res.PrivPlansRun;
          if (!R.Plan->PrivGlobals.empty())
            ++Res.PrivatizedPlans;
        }
        if (auto Diff = compareSnapshots(Ref, Got, P.Output)) {
          std::string Extra;
          // Re-run the diverging plan traced and dump a Chrome trace so the
          // interleaving that produced the wrong answer can be inspected.
          // A re-run is not guaranteed to diverge again, but its trace still
          // shows the plan's task/lock/queue structure.
          if (!Opts.TraceOnDivergenceDir.empty() && trace::compiledIn()) {
            armTrace(R.Plan->NumThreads);
            {
              ThreadedPlatform Platform(std::max(1u, R.Plan->NumThreads));
              runOnce(M, T->F, *R.Plan, P.TripCount, Platform, Backend);
            }
            std::vector<trace::TraceEvent> Events = drainTrace();
            std::string Path =
                Opts.TraceOnDivergenceDir + "/" +
                traceFileStem(P.Seed, *R.Plan, Threads, Sync) + ".json";
            std::string Err;
            if (trace::writeChromeTraceFile(Events, trace::session(), Path,
                                            &Err)) {
              Res.TracePaths.push_back(Path);
              Extra = "  trace: " + Path + "\n";
            } else {
              Extra = "  trace dump failed: " + Err + "\n";
            }
          }
          if (Opts.Lint && LintRaceFree)
            Extra += "  commlint: verdict was race-free — the static "
                     "analysis is UNSOUND for this plan\n";
          fail(Res, "differential mismatch vs sequential reference\n  " +
                        planContext(*R.Plan, Threads, Sync) + Extra + *Diff);
        }
      }
      if (!Res.Ok)
        return Res;
    }
  }

  // Fault sweep: every injected-fault run must still match the sequential
  // reference — either the retries absorb the faults or the engine
  // degrades to a logged sequential fallback. Tight retry/timeout bounds
  // make the escalation paths actually fire at test time scales.
  if (Opts.FaultSweep) {
    std::vector<SyncMode> FaultSyncs = {SyncMode::Mutex, SyncMode::Spin};
    if (Opts.IncludeTm)
      FaultSyncs.push_back(SyncMode::Tm);
    if (Opts.IncludePriv)
      FaultSyncs.push_back(SyncMode::Priv);
    if (!Opts.SyncModes.empty())
      FaultSyncs = Opts.SyncModes;
    for (size_t SIdx = 0; SIdx < FaultSyncs.size(); ++SIdx) {
      SyncMode Sync = FaultSyncs[SIdx];
      PlanOptions PO;
      PO.NumThreads = 4;
      PO.Sync = Sync;
      PO.Sched = schedAt(SIdx);
      PO.NativeCostHints = checkCostHints();
      auto Schemes = buildAllSchemes(*C, *T, PO);
      unsigned Swept = 0;
      for (const SchemeReport &R : Schemes) {
        if (!R.Applicable || !R.Plan ||
            R.Plan->Kind == Strategy::Sequential)
          continue;
        if (Swept++ >= Opts.MaxFaultPlansPerSync)
          break;
        for (unsigned PolicyIdx = 0; PolicyIdx < Opts.FaultPoliciesPerPlan;
             ++PolicyIdx) {
          // Rotate the preset window per plan so the whole sweep covers
          // all four presets (including task-failure, which forces the
          // sequential fallback) even at two policies per plan.
          unsigned PresetIdx = PolicyIdx + 2 * ((Swept - 1) % 2);
          FaultPolicy Policy = FaultPolicy::preset(
              PresetIdx, ScheduleSeed * 0x9E3779B9ULL + PresetIdx + 1 +
                             static_cast<uint64_t>(Swept) * 131 +
                             static_cast<unsigned>(Sync) * 1009);
          FaultInjector FI(Policy);
          ResilienceConfig RC;
          RC.StmMaxAttempts = 8;
          RC.StmBackoffBaseUs = 1;
          RC.StmBackoffCapUs = 32;
          RC.LockTimeoutMs = 200;
          RC.WatchdogStallMs = 250;
          RC.JoinGraceMs = 5000;
          RC.Faults = &FI;

          CheckState State;
          NativeRegistry Natives;
          registerCheckNatives(Natives, State);
          std::vector<RtValue> Globals = makeGlobalImage(M);
          ++Res.FaultRuns;
          try {
            ResilientOutcome Out = runFunctionResilient(
                M, Natives, Globals, *R.Plan, T->F,
                {RtValue::ofInt(P.TripCount)},
                [&FI](unsigned Th) {
                  return std::unique_ptr<ExecPlatform>(
                      new ThreadedPlatform(std::max(1u, Th), &FI));
                },
                &RC, [&State] { State.reset(); }, /*OnRunDone=*/{}, Backend);
            if (Out.Degraded)
              ++Res.DegradedRuns;
            std::vector<int64_t> GlobalInts;
            GlobalInts.reserve(Globals.size());
            for (const RtValue &V : Globals)
              GlobalInts.push_back(V.I);
            Snapshot Got = takeSnapshot(State, GlobalInts, Out.Result.I,
                                        Out.Stats.Iterations);
            if (auto Diff = compareSnapshots(Ref, Got, P.Output))
              fail(Res,
                   "divergence under fault injection\n  " +
                       planContext(*R.Plan, PO.NumThreads, Sync) + "  " +
                       Policy.describe() +
                       (Out.Degraded
                            ? "\n  degraded: " + Out.Diagnostic + "\n"
                            : "\n") +
                       *Diff);
          } catch (const std::exception &E) {
            fail(Res, "unrecoverable error under fault injection\n  " +
                          planContext(*R.Plan, PO.NumThreads, Sync) + "  " +
                          Policy.describe() + "\n  " + E.what());
          }
          Res.FaultsInjected += FI.totalInjected();
          if (!Res.Ok)
            return Res;
        }
      }
    }
  }

  if (!Opts.ExploreSchedules)
    return Res;

  // Schedule exploration + happens-before checking at two threads, where
  // interleavings are densest relative to runtime. Runs once under ranked
  // mutexes and once privatized: replica accesses bypass the HB checker's
  // global instrumentation by design, so a priv pass both exercises the
  // merge under adversarial interleavings and asserts no *shared* access
  // escaped privatization unprotected.
  std::vector<SchedulePolicy> Policies;
  for (unsigned K = 0; K < Opts.RandomSchedules; ++K)
    Policies.push_back(
        SchedulePolicy::random(ScheduleSeed * 1000003ULL + K + 1));
  for (unsigned Interval : Opts.RoundRobinIntervals)
    Policies.push_back(SchedulePolicy::roundRobin(Interval));

  std::vector<SyncMode> ExploreSyncs = {SyncMode::Mutex};
  if (Opts.IncludePriv)
    ExploreSyncs.push_back(SyncMode::Priv);
  if (!Opts.SyncModes.empty())
    ExploreSyncs = Opts.SyncModes;

  for (SyncMode Sync : ExploreSyncs) {
    if (Sync == SyncMode::None)
      continue; // Nosync plans have no protection promise to replay.
    PlanOptions PO;
    PO.NumThreads = 2;
    PO.Sync = Sync;
    PO.NativeCostHints = checkCostHints();
    auto Schemes = buildAllSchemes(*C, *T, PO);

    unsigned Explored = 0;
    for (const SchemeReport &R : Schemes) {
      if (!R.Applicable || !R.Plan || R.Plan->Kind == Strategy::Sequential)
        continue;
      if (Explored >= Opts.MaxPlansToExplore)
        break;
      // The sched policy only parameterizes execution (iteration->thread
      // assignment), not plan structure, so rotating it on a copy is sound.
      ParallelPlan Plan = *R.Plan;
      Plan.Sched = schedAt(Explored);
      ++Explored;
      for (const SchedulePolicy &Policy : Policies) {
        SchedulePlatform Platform(std::max(1u, Plan.NumThreads), Policy, &M);
        Snapshot Got = runOnce(M, T->F, Plan, P.TripCount, Platform);
        ++Res.SchedulesRun;
        const auto &Races = Platform.checker()->races();
        Res.RacesReported += static_cast<unsigned>(Races.size());
        if (!Races.empty()) {
          std::ostringstream Os;
          Os << "happens-before violation under sync-enabled plan\n  "
             << planContext(Plan, 2, Sync)
             << "  schedule policy: " << Policy.describe() << "\n";
          for (const RaceReport &Race : Races)
            Os << "  " << Race.describe() << "\n";
          fail(Res, Os.str());
        }
        if (auto Diff = compareSnapshots(Ref, Got, P.Output))
          fail(Res, "divergence under controlled schedule\n  " +
                        planContext(Plan, 2, Sync) +
                        "  schedule policy: " + Policy.describe() + "\n" +
                        *Diff);
        if (!Res.Ok)
          return Res;
      }
    }
  }
  return Res;
}
