//===- ProgramGen.cpp -----------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
//
// Every shared effect a generated program performs is exactly commutative
// (integer sums into globals or cells, count/sum/min/max statistics, keyed
// output appends), so any schedule the planner derives must reproduce the
// sequential final state bit-for-bit — except the output stream, whose
// legal reordering is captured by GeneratedProgram::Output. That invariant
// is what lets the differential oracle treat *any* divergence as a bug.
//
//===----------------------------------------------------------------------===//

#include "commset/Check/ProgramGen.h"

#include <sstream>
#include <vector>

using namespace commset;
using namespace commset::check;

namespace {

struct Gen {
  CheckRng Rng;
  const GenOptions &Opts;
  GeneratedProgram P;

  // Structure choices, drawn once in a fixed order (determinism).
  int NumGlobals = 1;
  int NumBump = 0;
  bool UsePred = false;
  bool UseNosync = false;
  bool CellAddSelf = false;
  bool UseNamed = false;
  bool UseSource = false;
  bool UseEmit = false;
  bool UseDirectAcc = false;
  bool UseSubloop = false;
  bool UseCellGet = false;
  int NumEdge = 0;
  std::vector<int> EdgeKinds;

  std::vector<std::string> Locals; // int-valued locals usable as operands.
  std::ostringstream Body;

  Gen(uint64_t Seed, const GenOptions &Opts) : Rng(Seed), Opts(Opts) {
    P.Seed = Seed;
  }

  std::string pickVal() {
    // An operand for an effect call: a local or the induction variable.
    if (Locals.empty() || Rng.chance(25))
      return "i";
    return Locals[Rng.range(Locals.size())];
  }

  std::string pickKey() {
    switch (Rng.range(3)) {
    case 0:
      return "i";
    case 1:
      return "i % 4";
    default:
      return "(i + 3) % 8";
    }
  }

  void stmt(const std::string &S) { Body << "    " << S << "\n"; }

  /// Wraps one call statement in an anonymous commutative block.
  void block(const std::string &Sets, const std::string &Call) {
    Body << "    #pragma commset member(" << Sets << ")\n"
         << "    {\n      " << Call << "\n    }\n";
  }

  /// Some effect statements hide behind a data-dependent branch so the
  /// generated CFGs are not all straight-line.
  void maybeIf(const std::string &Call) {
    if (!Locals.empty() && Rng.chance(30)) {
      const std::string &C = Locals[Rng.range(Locals.size())];
      Body << "    if (" << C << " % 3 != 1) {\n      " << Call
           << "\n    }\n";
    } else {
      stmt(Call);
    }
  }

  void drawShape() {
    P.TripCount = Opts.MinTrip +
                  static_cast<int>(Rng.range(
                      static_cast<uint64_t>(Opts.MaxTrip - Opts.MinTrip + 1)));
    NumGlobals = 1 + static_cast<int>(Rng.range(3));
    NumBump = Rng.chance(55) ? 1 + static_cast<int>(Rng.range(2)) : 0;
    if (NumBump > NumGlobals)
      NumBump = NumGlobals;
    UsePred = Rng.chance(65);
    UseNosync = Opts.AllowNosync && Rng.chance(40);
    CellAddSelf = Rng.chance(35);
    // The named-block helper wraps cell_add; skip it when cell_add is
    // already an interface member (members must not call members).
    UseNamed = Opts.AllowNamedBlocks && UsePred && !CellAddSelf &&
               Rng.chance(45);
    UseSource = Opts.AllowSequentialSource && Rng.chance(35);
    UseEmit = Rng.chance(70);
    if (UseEmit) {
      switch (Rng.range(3)) {
      case 0:
        P.Output = OutputOrder::Exact;
        break;
      case 1:
        P.Output = OutputOrder::Multiset;
        break;
      default:
        P.Output = UsePred ? OutputOrder::PerKeyOrdered
                           : OutputOrder::Multiset;
        break;
      }
    }
    UseDirectAcc = Rng.chance(30);
    UseSubloop = Rng.chance(25);
    UseCellGet = Rng.chance(15);
    // Reduction-heavy bias (applied after the draws so the Rng stream —
    // and therefore every other structure choice for a seed — is identical
    // with and without the flag).
    if (Opts.ReductionHeavy) {
      if (NumBump == 0)
        NumBump = 1;
      if (NumBump > NumGlobals)
        NumBump = NumGlobals;
      UseDirectAcc = false;
    }
    // User-defined members mutate interpreter globals, so disabling
    // compiler synchronization (Lib mode) is only legal without them.
    P.LibSafe = NumBump == 0;

    // Edge-operand draws come last and run unconditionally, so every
    // pre-existing structure choice for a seed is independent of the
    // EdgeOps flag and --no-edge-ops reproduces the same program minus
    // the edge statements.
    NumEdge = 1 + static_cast<int>(Rng.range(3));
    for (int K = 0; K < NumEdge; ++K)
      EdgeKinds.push_back(static_cast<int>(Rng.range(6)));

    std::ostringstream Shape;
    Shape << "globals=" << NumGlobals << " bump=" << NumBump
          << (UsePred ? " pred" : "") << (UseNosync ? " nosync" : "")
          << (CellAddSelf ? " cell-self" : "") << (UseNamed ? " named" : "")
          << (UseSource ? " source" : "") << (UseDirectAcc ? " acc" : "")
          << (UseSubloop ? " subloop" : "") << (UseCellGet ? " get" : "");
    if (Opts.EdgeOps)
      Shape << " edge=" << NumEdge;
    if (UseEmit)
      Shape << " emit="
            << (P.Output == OutputOrder::Exact
                    ? "exact"
                    : P.Output == OutputOrder::PerKeyOrdered ? "perkey"
                                                             : "multiset");
    P.Shape = Shape.str();
  }

  void emitPrologue(std::ostringstream &Src) {
    Src << "// commcheck seed " << P.Seed << ": " << P.Shape << "\n";
    for (int G = 0; G < NumGlobals; ++G)
      Src << "int g" << G << " = " << Rng.range(7) << ";\n";

    // Harness natives (CheckRuntime.cpp). work/mix2 are pure; everything
    // else lives in internally synchronized harness state.
    Src << "extern int work(int x);\n"
        << "extern int mix2(int a, int b);\n";
    if (CellAddSelf)
      Src << "#pragma commset member(SELF)\n";
    Src << "extern void cell_add(int k, int v);\n"
        << "extern int cell_get(int k);\n";
    if (UseNosync)
      Src << "#pragma commset member(LOG)\n";
    Src << "extern void stat_note(int v);\n"
        << "extern void emit(int k, int v);\n"
        << "extern int source_next();\n"
        << "#pragma commset effects(work, pure)\n"
        << "#pragma commset effects(mix2, pure)\n"
        << "#pragma commset effects(cell_add, reads(cells), writes(cells))\n"
        << "#pragma commset effects(cell_get, reads(cells))\n"
        << "#pragma commset effects(stat_note, reads(stats), writes(stats))\n"
        << "#pragma commset effects(emit, reads(out), writes(out))\n"
        << "#pragma commset effects(source_next, reads(src), writes(src))\n";

    if (UsePred)
      Src << "#pragma commset decl(KSET)\n"
          << "#pragma commset predicate(KSET, (int a), (int b), a != b)\n";
    if (UseNosync)
      Src << "#pragma commset decl(LOG, self)\n"
          << "#pragma commset nosync(LOG)\n";

    for (int B = 0; B < NumBump; ++B) {
      // A user-defined self-commuting member: pure integer accumulation,
      // TM-eligible (no native calls inside).
      Src << "#pragma commset member(SELF)\n"
          << "void bump" << B << "(int v) { g" << B << " = g" << B
          << " + v";
      if (Rng.chance(40))
        Src << " + " << (1 + Rng.range(3));
      Src << "; }\n";
    }

    if (UseNamed)
      Src << "#pragma commset namedarg(RB)\n"
          << "void step(int k, int v) {\n"
          << "  #pragma commset namedblock(RB)\n"
          << "  {\n    cell_add(k, v);\n  }\n"
          << "}\n";
  }

  void emitValueOps() {
    unsigned N = 2 + static_cast<unsigned>(Rng.range(3));
    if (UseSource) {
      std::string T = "t" + std::to_string(Locals.size());
      stmt("int " + T + " = source_next();");
      Locals.push_back(T);
    }
    for (unsigned K = 0; K < N; ++K) {
      std::string T = "t" + std::to_string(Locals.size());
      switch (Rng.range(4)) {
      case 0:
        stmt("int " + T + " = work(" + pickVal() + " + " +
             std::to_string(Rng.range(9)) + ");");
        break;
      case 1:
        stmt("int " + T + " = mix2(" + pickVal() + ", " + pickVal() + ");");
        break;
      case 2:
        stmt("int " + T + " = " + pickVal() + " * " +
             std::to_string(1 + Rng.range(4)) + " + i;");
        break;
      default:
        if (UseCellGet) {
          stmt("int " + T + " = cell_get(" + pickKey() + ");");
        } else {
          stmt("int " + T + " = work(" + pickVal() + ");");
        }
        break;
      }
      Locals.push_back(T);
    }
    if (UseSubloop) {
      std::string T = "t" + std::to_string(Locals.size());
      stmt("int " + T + " = 0;");
      Body << "    for (int j = 0; j < 3; j = j + 1) {\n"
           << "      " << T << " = " << T << " + work(" << pickVal()
           << " + j);\n    }\n";
      Locals.push_back(T);
    }
  }

  /// Overflow/edge-operand statements (the arithmetic semantics pinned in
  /// DESIGN.md §8): raw INT64_MIN / INT64_MAX / -1 / 0 operands flow
  /// through Div / Rem / Add / Sub / Mul, then a tamed remainder joins the
  /// effect operand pool so edge-derived values reach members and the
  /// output stream without overflowing the harness's own accumulators.
  /// The divisor expressions sweep {-1, 0, 1} with the induction variable,
  /// hitting INT64_MIN/-1 and x/0 on every trip through the loop.
  void emitEdgeOps() {
    if (!Opts.EdgeOps)
      return;
    // The lexer reads literals with strtoll, so INT64_MIN must be spelled
    // as an expression.
    const std::string Imin = "(-9223372036854775807 - 1)";
    const std::string Imax = "9223372036854775807";
    for (int K = 0; K < NumEdge; ++K) {
      std::string E = "e" + std::to_string(K);
      std::string Expr;
      switch (EdgeKinds[static_cast<size_t>(K)]) {
      case 0:
        Expr = Imin + " / (i % 3 - 1)";
        break;
      case 1:
        Expr = Imin + " % (i % 3 - 1)";
        break;
      case 2:
        Expr = Imax + " + i + 1";
        break;
      case 3:
        Expr = Imin + " - i - 1";
        break;
      case 4:
        Expr = "(" + Imax + " / 3 + i) * (i % 5 - 2)";
        break;
      default:
        Expr = "(i - i) - " + Imin;
        break;
      }
      stmt("int " + E + " = " + Expr + ";");
      std::string T = "t" + std::to_string(Locals.size());
      stmt("int " + T + " = " + E + " % 97;");
      Locals.push_back(T);
    }
  }

  void emitCellOp() {
    std::string Call = "cell_add(" + pickKey() + ", " + pickVal() + ");";
    if (CellAddSelf) {
      // The native itself is an interface member of an implicit self set;
      // wrapping it again would nest members of different sets.
      maybeIf(Call);
      return;
    }
    if (UseNamed && Rng.chance(40)) {
      std::string Args = pickVal();
      if (Rng.chance(70)) {
        Body << "    #pragma commset enable(RB: KSET(i))\n";
        stmt("step(i, " + Args + ");");
      } else {
        // Disabled named block: plain (sequentialized) semantics.
        stmt("step(i, " + Args + ");");
      }
      return;
    }
    switch (Rng.range(3)) {
    case 0:
      maybeIf(Call); // Un-annotated: loop-carried, biases pipelines.
      break;
    case 1:
      block("SELF", Call);
      break;
    default:
      if (UsePred)
        block(Rng.chance(50) ? "SELF, KSET(i)" : "KSET(i)", Call);
      else
        block("SELF", Call);
      break;
    }
  }

  void emitBody() {
    emitValueOps();
    emitEdgeOps();

    for (int B = 0; B < NumBump; ++B) {
      bool Do = Rng.chance(80);
      if (Opts.ReductionHeavy)
        Do = true;
      if (Do)
        maybeIf("bump" + std::to_string(B) + "(" + pickVal() + ");");
    }

    unsigned Cells = 1 + static_cast<unsigned>(Rng.range(2));
    for (unsigned K = 0; K < Cells; ++K)
      emitCellOp();

    if (Rng.chance(60)) {
      std::string Call = "stat_note(" + pickVal() + ");";
      if (UseNosync)
        maybeIf(Call); // Interface member of the NOSYNC set.
      else if (Rng.chance(50))
        block("SELF", Call);
      else
        stmt(Call);
    }

    if (UseEmit) {
      switch (P.Output) {
      case OutputOrder::Exact:
        stmt("emit(" + pickKey() + ", " + pickVal() + ");");
        break;
      case OutputOrder::PerKeyOrdered:
        // Keyed by the predicate argument: cross-key reordering is legal,
        // same-key order must hold (trivially, keys are distinct here).
        block("KSET(i)", "emit(i, " + pickVal() + ");");
        break;
      case OutputOrder::Multiset:
        block("SELF", "emit(" + pickKey() + ", " + pickVal() + ");");
        break;
      }
    }

    if (UseDirectAcc) {
      // Direct un-annotated accumulation: loop-carried scalar the planner
      // must keep in one sequential stage.
      int G = NumGlobals - 1;
      stmt("g" + std::to_string(G) + " = g" + std::to_string(G) + " + " +
           pickVal() + ";");
    }
  }

  GeneratedProgram run() {
    drawShape();
    Locals.clear();
    emitBody(); // Fills Body; drawn before prologue only uses Rng order.
    std::ostringstream Src;
    emitPrologue(Src);
    Src << "int main_loop(int n) {\n"
        << "  for (int i = 0; i < n; i = i + 1) {\n";
    Src << Body.str();
    Src << "  }\n  return";
    for (int G = 0; G < NumGlobals; ++G)
      Src << (G ? " + g" : " g") << G;
    Src << ";\n}\n";
    P.Source = Src.str();
    return P;
  }
};

/// Emits a small program with one deliberately wrong annotation. Each kind
/// is kept minimal and fully annotated so every carried dependence relaxes
/// and a parallel plan (DOALL) is always applicable — the lint sweep needs
/// a plan to audit. Kind rotates with the seed; names and constants vary so
/// the sweep does not lint one literal program 200 times.
GeneratedProgram generateUnsoundProgram(uint64_t Seed) {
  CheckRng Rng(Seed * 0x51ed2701db1f7c25ULL + 11);
  GeneratedProgram P;
  P.Seed = Seed;
  P.LibSafe = false;
  P.TripCount = 8 + static_cast<int>(Rng.range(8));
  std::string G = "gu" + std::to_string(Rng.range(4));
  int C1 = 1 + static_cast<int>(Rng.range(5));
  int C2 = static_cast<int>(Rng.range(7));

  std::ostringstream Src;
  switch (Seed % 3) {
  case 0: {
    // A self-set member that OVERWRITES a global: instances do not
    // commute (last writer wins), refutable from the effect summary.
    P.UnsoundKind = "ordered-self-write";
    P.ExpectedLintCode = "CL020";
    Src << "// commcheck unsound seed " << Seed << ": " << P.UnsoundKind
        << "\n"
        << "int " << G << " = " << C2 << ";\n"
        << "extern int work(int x);\n"
        << "#pragma commset effects(work, pure)\n"
        << "#pragma commset member(SELF)\n"
        << "void clobber(int v) { " << G << " = v + " << C1 << "; }\n"
        << "int main_loop(int n) {\n"
        << "  for (int i = 0; i < n; i = i + 1) {\n"
        << "    int t = work(i + " << C2 << ");\n"
        << "    clobber(t);\n"
        << "  }\n"
        << "  return " << G << ";\n}\n";
    break;
  }
  case 1: {
    // A NOSYNC self set whose member mutates an interpreter global: the
    // thread-safety claim is false, so the relaxed pair races (no lock
    // rank protects it under any sync mode).
    P.UnsoundKind = "nosync-shared-write";
    P.ExpectedLintCode = "CL001";
    Src << "// commcheck unsound seed " << Seed << ": " << P.UnsoundKind
        << "\n"
        << "int " << G << " = " << C2 << ";\n"
        << "extern int work(int x);\n"
        << "#pragma commset effects(work, pure)\n"
        << "#pragma commset decl(NS, self)\n"
        << "#pragma commset nosync(NS)\n"
        << "#pragma commset member(NS)\n"
        << "void tally(int v) { " << G << " = " << G << " + v; }\n"
        << "int main_loop(int n) {\n"
        << "  for (int i = 0; i < n; i = i + 1) {\n"
        << "    int t = work(i);\n"
        << "    tally(t + " << C1 << ");\n"
        << "  }\n"
        << "  return " << G << ";\n}\n";
    break;
  }
  default: {
    // A group pair where one member overwrites the shared global: the
    // pair cannot commute. Both members also claim SELF so every carried
    // dependence relaxes and DOALL stays applicable.
    P.UnsoundKind = "ordered-group-write";
    P.ExpectedLintCode = "CL021";
    Src << "// commcheck unsound seed " << Seed << ": " << P.UnsoundKind
        << "\n"
        << "int " << G << " = " << C2 << ";\n"
        << "extern int work(int x);\n"
        << "#pragma commset effects(work, pure)\n"
        << "#pragma commset decl(GRP)\n"
        << "#pragma commset member(SELF, GRP)\n"
        << "void acc(int v) { " << G << " = " << G << " + v; }\n"
        << "#pragma commset member(SELF, GRP)\n"
        << "void set_last(int v) { " << G << " = v; }\n"
        << "int main_loop(int n) {\n"
        << "  for (int i = 0; i < n; i = i + 1) {\n"
        << "    int t = work(i);\n"
        << "    acc(t);\n"
        << "    set_last(t + " << C1 << ");\n"
        << "  }\n"
        << "  return " << G << ";\n}\n";
    break;
  }
  }
  P.Source = Src.str();
  P.Shape = "unsound:" + P.UnsoundKind;
  return P;
}

/// Emits a small program whose annotated pair is provably non-commutative
/// at the VALUE level — not just order-sensitive per the effect summary,
/// but with two operation orders computing different results on almost any
/// input. CommProve must refute each kind with a concrete witness (CL060)
/// whose replay diverges. Members stay native-free with integer parameters
/// only, so the prover's concrete evaluation can always reach a witness;
/// names and constants vary with the seed so a 200-iteration sweep proves
/// 200 distinct programs.
GeneratedProgram generateNoncommutativeTwin(uint64_t Seed) {
  CheckRng Rng(Seed * 0x2545f4914f6cdd1dULL + 29);
  GeneratedProgram P;
  P.Seed = Seed;
  P.LibSafe = false;
  P.TripCount = 8 + static_cast<int>(Rng.range(8));
  P.ExpectedLintCode = "CL060";
  std::string G = "gq" + std::to_string(Rng.range(4));
  int K = 2 + static_cast<int>(Rng.range(4));
  int C1 = 1 + static_cast<int>(Rng.range(5));
  int C2 = static_cast<int>(Rng.range(7));

  std::ostringstream Src;
  switch (Seed % 3) {
  case 0: {
    // Multiply-then-add: f(a);f(b) leaves g*K^2 + a*K + b, the reverse
    // leaves g*K^2 + b*K + a — distinct whenever a != b. The polynomial
    // normal form exposes exactly this asymmetry.
    P.UnsoundKind = "noncomm-scale-acc";
    Src << "// commcheck noncommutative seed " << Seed << ": "
        << P.UnsoundKind << "\n"
        << "int " << G << " = " << C2 << ";\n"
        << "#pragma commset member(SELF)\n"
        << "void scale_acc(int v) { " << G << " = " << G << " * " << K
        << " + v; }\n"
        << "int main_loop(int n) {\n"
        << "  for (int i = 0; i < n; i = i + 1) {\n"
        << "    scale_acc(i + " << C1 << ");\n"
        << "  }\n"
        << "  return " << G << ";\n}\n";
    break;
  }
  case 1: {
    // Pure overwrite: the final value is whichever call ran last.
    P.UnsoundKind = "noncomm-overwrite";
    Src << "// commcheck noncommutative seed " << Seed << ": "
        << P.UnsoundKind << "\n"
        << "int " << G << " = " << C2 << ";\n"
        << "#pragma commset member(SELF)\n"
        << "void put_last(int v) { " << G << " = v * " << C1 << " + " << C2
        << "; }\n"
        << "int main_loop(int n) {\n"
        << "  for (int i = 0; i < n; i = i + 1) {\n"
        << "    put_last(i);\n"
        << "  }\n"
        << "  return " << G << ";\n}\n";
    break;
  }
  default: {
    // Group pair where one member reads what the other writes: running
    // the reader before vs after the writer changes what it snapshots.
    P.UnsoundKind = "noncomm-read-write";
    std::string G2 = "gr" + std::to_string(Rng.range(4));
    Src << "// commcheck noncommutative seed " << Seed << ": "
        << P.UnsoundKind << "\n"
        << "int " << G << " = " << C2 << ";\n"
        << "int " << G2 << " = 0;\n"
        << "#pragma commset decl(NCG)\n"
        << "#pragma commset member(NCG)\n"
        << "void bump_x(int v) { " << G << " = " << G << " + v; }\n"
        << "#pragma commset member(NCG)\n"
        << "void mirror_y(int v) { " << G2 << " = " << G << " + v; }\n"
        << "int main_loop(int n) {\n"
        << "  for (int i = 0; i < n; i = i + 1) {\n"
        << "    bump_x(i + " << C1 << ");\n"
        << "    mirror_y(i);\n"
        << "  }\n"
        << "  return " << G << " + " << G2 << ";\n}\n";
    break;
  }
  }
  P.Source = Src.str();
  P.Shape = "noncomm:" + P.UnsoundKind;
  return P;
}

} // namespace

GeneratedProgram check::generateProgram(uint64_t Seed,
                                        const GenOptions &Opts) {
  if (Opts.SeedNoncommutative)
    return generateNoncommutativeTwin(Seed);
  if (Opts.SeedUnsound)
    return generateUnsoundProgram(Seed);
  Gen G(Seed, Opts);
  return G.run();
}
