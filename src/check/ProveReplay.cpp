//===- ProveReplay.cpp ----------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Check/ProveReplay.h"

#include "commset/Check/SchedulePlatform.h"
#include "commset/Exec/Interpreter.h"
#include "commset/Exec/LoopExecutors.h"
#include "commset/Exec/NativeRegistry.h"
#include "commset/Support/StringUtils.h"

#include <sstream>
#include <thread>

using namespace commset;
using namespace commset::check;

namespace {

struct ScheduleOutcome {
  std::vector<RtValue> Globals;
  RtValue Ret0, Ret1; // By *function* (First, Second), not by thread.
  std::string Label;
};

std::string renderGlobal(const Module &M, unsigned Slot, RtValue V) {
  if (M.Globals[Slot].Type == IRType::F64) {
    std::ostringstream Os;
    Os << V.D;
    return Os.str();
  }
  return std::to_string(V.I);
}

/// Runs one controlled schedule: two real threads, one resource
/// serializing the member bodies, the calling thread doubling as worker 0
/// (the same choreography LoopExecutors uses for its master thread).
ScheduleOutcome runOneSchedule(const Compilation &C, const Function *FnT0,
                               const Function *FnT1,
                               const std::vector<RtValue> &ArgsT0,
                               const std::vector<RtValue> &ArgsT1,
                               const std::vector<RtValue> &InitGlobals,
                               bool FirstIsT0, const SchedulePolicy &Policy) {
  const Module &M = C.module();
  static const NativeRegistry NoNatives; // Bodies are native-free.

  ScheduleOutcome O;
  O.Globals = InitGlobals;
  RtValue RetT0, RetT1;

  SchedulePlatform Plat(2, Policy);
  auto body = [&](unsigned Tid, const Function *Fn,
                  const std::vector<RtValue> &Args, RtValue &RetOut) {
    Plat.charge(Tid, 1);
    Plat.resourceEnter(Tid, "prove-pair");
    Interpreter I(M, NoNatives, O.Globals.data(), {}, &Plat, Tid);
    RetOut = I.call(Fn, Args);
    Plat.resourceExit(Tid, "prove-pair");
    Plat.threadDone(Tid);
  };

  Plat.regionBegin(0);
  std::thread Worker(body, 1u, FnT1, std::cref(ArgsT1), std::ref(RetT1));
  body(0, FnT0, ArgsT0, RetT0);
  Worker.join();
  Plat.regionEnd(0);

  O.Ret0 = FirstIsT0 ? RetT0 : RetT1;
  O.Ret1 = FirstIsT0 ? RetT1 : RetT0;
  O.Label = formatString("%s as T0, %s as T1, %s", FnT0->Name.c_str(),
                         FnT1->Name.c_str(), Policy.describe().c_str());
  return O;
}

bool outcomesDiffer(const Module &M, const Function *First,
                    const Function *Second, const ScheduleOutcome &A,
                    const ScheduleOutcome &B, std::string &Why) {
  for (unsigned Slot = 0; Slot < M.Globals.size(); ++Slot)
    if (A.Globals[Slot].Bits != B.Globals[Slot].Bits) {
      Why = formatString("global '%s': %s vs %s",
                         M.Globals[Slot].Name.c_str(),
                         renderGlobal(M, Slot, A.Globals[Slot]).c_str(),
                         renderGlobal(M, Slot, B.Globals[Slot]).c_str());
      return true;
    }
  if (First->ReturnType != IRType::Void && A.Ret0.Bits != B.Ret0.Bits) {
    Why = formatString("return of '%s' differs across schedules",
                       First->Name.c_str());
    return true;
  }
  if (Second->ReturnType != IRType::Void && A.Ret1.Bits != B.Ret1.Bits) {
    Why = formatString("return of '%s' differs across schedules",
                       Second->Name.c_str());
    return true;
  }
  return false;
}

} // namespace

ProveReplayResult check::replayProveWitness(const Compilation &C,
                                            const PairProof &P) {
  ProveReplayResult R;
  if (P.Verdict != ProveVerdict::Refuted || !P.Witness) {
    R.Report = "no witness to replay (pair is not Refuted)";
    return R;
  }
  const Module &M = C.module();
  const Function *First = M.findFunction(P.First);
  const Function *Second = M.findFunction(P.Second);
  if (!First || !Second) {
    R.Report = "witness names a function the module no longer defines";
    return R;
  }
  const ProveWitness &W = *P.Witness;

  std::vector<RtValue> Init = makeGlobalImage(M);
  for (const auto &[Slot, V] : W.Globals)
    if (Slot < Init.size())
      Init[Slot] = V.Ty == IRType::F64 ? RtValue::ofDouble(V.D)
                                       : RtValue::ofInt(V.I);
  auto toRt = [](const std::vector<ProveValue> &Vs) {
    std::vector<RtValue> Out;
    for (const ProveValue &V : Vs)
      Out.push_back(V.Ty == IRType::F64 ? RtValue::ofDouble(V.D)
                                        : RtValue::ofInt(V.I));
    return Out;
  };
  std::vector<RtValue> FirstArgs = toRt(W.FirstArgs);
  std::vector<RtValue> SecondArgs = toRt(W.SecondArgs);

  // Under rr(1) thread 0 always wins the race into the serializing
  // resource, so one assignment realizes one order deterministically;
  // sweeping both assignments (and randomized policies for good measure)
  // guarantees both serialized orders appear in the outcome set.
  const SchedulePolicy Policies[] = {
      SchedulePolicy::roundRobin(1), SchedulePolicy::roundRobin(2),
      SchedulePolicy::roundRobin(3), SchedulePolicy::random(P.Loc.Line + 7),
      SchedulePolicy::random(41)};

  std::vector<ScheduleOutcome> Outcomes;
  std::ostringstream Log;
  for (bool FirstIsT0 : {true, false}) {
    const Function *T0 = FirstIsT0 ? First : Second;
    const Function *T1 = FirstIsT0 ? Second : First;
    const std::vector<RtValue> &A0 = FirstIsT0 ? FirstArgs : SecondArgs;
    const std::vector<RtValue> &A1 = FirstIsT0 ? SecondArgs : FirstArgs;
    for (const SchedulePolicy &Policy : Policies) {
      ScheduleOutcome O =
          runOneSchedule(C, T0, T1, A0, A1, Init, FirstIsT0, Policy);
      ++R.SchedulesRun;
      Log << "  schedule " << R.SchedulesRun << " (" << O.Label << ")";
      for (const auto &[Slot, V] : W.Globals)
        if (Slot < M.Globals.size())
          Log << " " << M.Globals[Slot].Name << "="
              << renderGlobal(M, Slot, O.Globals[Slot]);
      Log << "\n";
      Outcomes.push_back(std::move(O));
    }
  }

  std::string Why;
  for (size_t I = 0; I < Outcomes.size() && !R.Diverged; ++I)
    for (size_t J = I + 1; J < Outcomes.size() && !R.Diverged; ++J)
      if (outcomesDiffer(M, First, Second, Outcomes[I], Outcomes[J], Why))
        R.Diverged = true;

  std::ostringstream Os;
  Os << "replayed witness across " << R.SchedulesRun
     << " controlled schedules (2 thread assignments x "
     << R.SchedulesRun / 2 << " policies)\n"
     << Log.str();
  if (R.Diverged)
    Os << "  VERDICT: schedules diverge (" << Why
       << ") — the pair is order-sensitive under a real scheduler\n";
  else
    Os << "  VERDICT: no divergence reproduced (witness did not confirm)\n";
  R.Report = Os.str();
  return R;
}

std::string check::renderProveArtifact(const Compilation &C,
                                       const PairProof &P,
                                       const ProveReplayResult &R) {
  std::ostringstream Os;
  Os << "CommProve refutation\n"
     << "====================\n"
     << "pair: " << P.First << " / " << P.Second << "\n"
     << "verdict: " << proveVerdictName(P.Verdict) << "\n"
     << "symbolic diff: " << P.Detail << "\n";
  if (P.Witness)
    Os << "witness: " << proveWitnessStr(C.module(), P) << "\n"
       << "divergence: " << P.Witness->Divergence << "\n";
  Os << "\n--- controlled-schedule replay ---\n" << R.Report;
  return Os.str();
}
