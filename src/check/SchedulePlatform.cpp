//===- SchedulePlatform.cpp -----------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
//
// Token discipline: exactly one thread owns the run token (Cur). Every
// platform entry point first parks until the caller owns it, so all
// interpreter work between two platform events is exclusive — which both
// serializes the schedule deterministically and lets the happens-before
// checker run lock-free. Blocking conditions (empty queue, held rank,
// busy resource) are re-checked by the blocked thread itself after each
// handback; the scheduler only hands the token to threads whose condition
// currently holds, so there are no lost wakeups.
//
//===----------------------------------------------------------------------===//

#include "commset/Check/SchedulePlatform.h"

#include "commset/IR/IR.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace commset;
using namespace commset::check;

std::string SchedulePolicy::describe() const {
  std::ostringstream Os;
  if (K == Kind::Random)
    Os << "random(seed=" << Seed << ")";
  else
    Os << "round-robin(interval=" << Interval << ")";
  return Os.str();
}

SchedulePlatform::SchedulePlatform(unsigned NumThreads,
                                   const SchedulePolicy &Policy,
                                   const Module *M)
    : N(NumThreads ? NumThreads : 1), Policy(Policy), Rng(Policy.Seed) {
  Done.assign(N, 0);
  TS.assign(N, {});
  if (M)
    Hb = std::make_unique<HbChecker>(N, *M);
}

SchedulePlatform::~SchedulePlatform() = default;

void SchedulePlatform::waitTurn(Guard &Lk, unsigned T) {
  Cv.wait(Lk, [&] { return Cur == T; });
}

bool SchedulePlatform::blockSatisfied(unsigned T) const {
  const ThreadState &St = TS[T];
  switch (St.B) {
  case Block::None:
    return true;
  case Block::Recv: {
    auto It = Queues.find({St.RecvFrom, T});
    return It != Queues.end() && !It->second.empty();
  }
  case Block::Lock:
    for (unsigned R : St.WantRanks) {
      auto It = RankOwner.find(R);
      if (It != RankOwner.end() && It->second != T)
        return false;
    }
    return true;
  case Block::Resource: {
    auto It = ResourceOwner.find(St.WantResource);
    return It == ResourceOwner.end() || It->second == T;
  }
  }
  return true;
}

bool SchedulePlatform::canRun(unsigned T) const {
  bool Active = InRegion ? T < N : T == 0;
  return Active && !Done[T] && blockSatisfied(T);
}

unsigned SchedulePlatform::pickNext(unsigned T, bool AllowSelf) {
  if (Policy.K == SchedulePolicy::Kind::RoundRobin) {
    for (unsigned D = 1; D <= N; ++D) {
      unsigned U = (T + D) % N;
      if (U == T && !AllowSelf)
        continue;
      if (canRun(U))
        return U;
    }
    return N;
  }
  std::vector<unsigned> Cand;
  for (unsigned U = 0; U < N; ++U) {
    if (U == T && !AllowSelf)
      continue;
    if (canRun(U))
      Cand.push_back(U);
  }
  if (Cand.empty())
    return N;
  return Cand[Rng.range(Cand.size())];
}

void SchedulePlatform::handoff(Guard &Lk, unsigned T, unsigned Next,
                               bool Wait) {
  Cur = Next;
  if (Log.size() < 8192)
    Log.push_back(Next);
  Cv.notify_all();
  if (Wait)
    Cv.wait(Lk, [&] { return Cur == T; });
}

void SchedulePlatform::switchAway(Guard &Lk, unsigned T, bool Wait) {
  unsigned Next = pickNext(T, /*AllowSelf=*/false);
  if (Next == N) {
    if (Wait)
      reportDeadlock(T);
    // threadDone path: fine if everyone else already exited, but a live
    // thread that is not runnable is blocked forever — a real deadlock.
    for (unsigned U = 0; U < N; ++U)
      if (U != T && !Done[U])
        reportDeadlock(T);
    // Last finisher: return the token to the master for region teardown.
    Cur = 0;
    Cv.notify_all();
    return;
  }
  handoff(Lk, T, Next, Wait);
}

void SchedulePlatform::schedulePoint(Guard &Lk, unsigned T) {
  ++Points;
  if (Policy.K == SchedulePolicy::Kind::Random) {
    if (Rng.next() & 1)
      return;
    unsigned Next = pickNext(T, /*AllowSelf=*/true);
    if (Next != N && Next != T)
      handoff(Lk, T, Next, /*Wait=*/true);
    return;
  }
  if (++PointsSinceSwitch < Policy.Interval)
    return;
  PointsSinceSwitch = 0;
  unsigned Next = pickNext(T, /*AllowSelf=*/false);
  if (Next != N && Next != T)
    handoff(Lk, T, Next, /*Wait=*/true);
}

void SchedulePlatform::reportDeadlock(unsigned T) {
  std::ostringstream Os;
  Os << "commcheck controlled scheduler: no runnable thread (deadlock)\n"
     << "  reported by thread " << T << ", " << Points
     << " schedule points, policy " << Policy.describe() << "\n";
  for (unsigned U = 0; U < N; ++U) {
    Os << "  thread " << U << ": " << (Done[U] ? "done" : "live");
    switch (TS[U].B) {
    case Block::None:
      break;
    case Block::Recv:
      Os << ", blocked on recv from thread " << TS[U].RecvFrom;
      break;
    case Block::Lock: {
      Os << ", blocked on ranks";
      for (unsigned R : TS[U].WantRanks)
        Os << " " << R;
      break;
    }
    case Block::Resource:
      Os << ", blocked on resource '" << TS[U].WantResource << "'";
      break;
    }
    Os << "\n";
  }
  std::fputs(Os.str().c_str(), stderr);
  std::abort();
}

//===----------------------------------------------------------------------===//
// ExecPlatform interface
//===----------------------------------------------------------------------===//

void SchedulePlatform::send(unsigned From, unsigned To, RtValue Value) {
  Guard Lk(Mu);
  waitTurn(Lk, From);
  Queues[{From, To}].push_back(Value);
  if (Hb)
    Hb->onSend(From, To);
  schedulePoint(Lk, From);
}

RtValue SchedulePlatform::recv(unsigned From, unsigned To) {
  Guard Lk(Mu);
  waitTurn(Lk, To);
  auto *Q = &Queues[{From, To}];
  while (Q->empty()) {
    TS[To].B = Block::Recv;
    TS[To].RecvFrom = From;
    switchAway(Lk, To, /*Wait=*/true);
    TS[To].B = Block::None;
    Q = &Queues[{From, To}];
  }
  RtValue V = Q->front();
  Q->pop_front();
  if (Hb)
    Hb->onRecv(From, To);
  schedulePoint(Lk, To);
  return V;
}

void SchedulePlatform::charge(unsigned Thread, uint64_t) {
  Guard Lk(Mu);
  waitTurn(Lk, Thread);
  schedulePoint(Lk, Thread);
}

void SchedulePlatform::lockEnter(unsigned Thread,
                                 const std::vector<unsigned> &Ranks) {
  Guard Lk(Mu);
  waitTurn(Lk, Thread);
  auto heldElsewhere = [&] {
    for (unsigned R : Ranks) {
      auto It = RankOwner.find(R);
      if (It != RankOwner.end() && It->second != Thread)
        return true;
    }
    return false;
  };
  while (heldElsewhere()) {
    TS[Thread].B = Block::Lock;
    TS[Thread].WantRanks = Ranks;
    switchAway(Lk, Thread, /*Wait=*/true);
    TS[Thread].B = Block::None;
  }
  // Grant cooperatively; the interpreter's real acquire that follows is
  // guaranteed uncontended, so serialization cannot wedge on it.
  for (unsigned R : Ranks)
    RankOwner[R] = Thread;
  if (Hb)
    Hb->onLockAcquire(Thread, Ranks);
  schedulePoint(Lk, Thread);
}

void SchedulePlatform::lockExit(unsigned Thread,
                                const std::vector<unsigned> &Ranks) {
  Guard Lk(Mu);
  waitTurn(Lk, Thread);
  for (unsigned R : Ranks) {
    auto It = RankOwner.find(R);
    if (It != RankOwner.end() && It->second == Thread)
      RankOwner.erase(It);
  }
  if (Hb)
    Hb->onLockRelease(Thread, Ranks);
  schedulePoint(Lk, Thread);
}

void SchedulePlatform::txBegin(unsigned Thread) {
  Guard Lk(Mu);
  waitTurn(Lk, Thread);
  if (Hb)
    Hb->onTxBegin(Thread);
  schedulePoint(Lk, Thread);
}

bool SchedulePlatform::txCommit(unsigned Thread,
                                const std::vector<unsigned> &,
                                uint64_t) {
  Guard Lk(Mu);
  waitTurn(Lk, Thread);
  if (Hb)
    Hb->onTxCommit(Thread);
  schedulePoint(Lk, Thread);
  return true; // Real STM validation decides retry.
}

void SchedulePlatform::resourceEnter(unsigned Thread,
                                     const std::string &Name) {
  Guard Lk(Mu);
  waitTurn(Lk, Thread);
  while (true) {
    auto It = ResourceOwner.find(Name);
    if (It == ResourceOwner.end() || It->second == Thread)
      break;
    TS[Thread].B = Block::Resource;
    TS[Thread].WantResource = Name;
    switchAway(Lk, Thread, /*Wait=*/true);
    TS[Thread].B = Block::None;
  }
  ResourceOwner[Name] = Thread;
  if (Hb)
    Hb->onResourceAcquire(Thread, Name);
}

void SchedulePlatform::resourceExit(unsigned Thread,
                                    const std::string &Name) {
  Guard Lk(Mu);
  waitTurn(Lk, Thread);
  auto It = ResourceOwner.find(Name);
  if (It != ResourceOwner.end() && It->second == Thread)
    ResourceOwner.erase(It);
  if (Hb)
    Hb->onResourceRelease(Thread, Name);
  schedulePoint(Lk, Thread);
}

void SchedulePlatform::threadDone(unsigned Thread) {
  Guard Lk(Mu);
  waitTurn(Lk, Thread);
  Done[Thread] = 1;
  // Must not park: the caller's OS thread is about to exit (workers) or
  // wait in the fork-join barrier (master).
  switchAway(Lk, Thread, /*Wait=*/false);
}

void SchedulePlatform::regionBegin(unsigned MasterThread) {
  Guard Lk(Mu);
  waitTurn(Lk, MasterThread);
  InRegion = true;
  Done.assign(N, 0);
  TS.assign(N, {});
  PointsSinceSwitch = 0;
  if (Hb)
    Hb->onRegionBegin(MasterThread);
}

void SchedulePlatform::regionEnd(unsigned MasterThread) {
  Guard Lk(Mu);
  waitTurn(Lk, MasterThread);
  InRegion = false;
  Done[MasterThread] = 0;
  if (Hb)
    Hb->onRegionEnd(MasterThread);
  Cv.notify_all();
}

void SchedulePlatform::onGlobalLoad(unsigned Thread, unsigned Slot) {
  if (!Hb)
    return;
  Guard Lk(Mu);
  waitTurn(Lk, Thread);
  Hb->onLoad(Thread, Slot);
}

void SchedulePlatform::onGlobalStore(unsigned Thread, unsigned Slot) {
  if (!Hb)
    return;
  Guard Lk(Mu);
  waitTurn(Lk, Thread);
  Hb->onStore(Thread, Slot);
}

void SchedulePlatform::memberEnter(unsigned Thread, const std::string &,
                                   bool DeclaredSafe) {
  if (!Hb)
    return;
  Guard Lk(Mu);
  waitTurn(Lk, Thread);
  Hb->onMemberEnter(Thread, DeclaredSafe);
}

void SchedulePlatform::memberExit(unsigned Thread) {
  if (!Hb)
    return;
  Guard Lk(Mu);
  waitTurn(Lk, Thread);
  Hb->onMemberExit(Thread);
}
