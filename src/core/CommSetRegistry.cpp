//===- CommSetRegistry.cpp ------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Core/CommSetRegistry.h"

#include "commset/Support/StringUtils.h"

#include <algorithm>

using namespace commset;

const std::vector<CommSetRegistry::Membership>
    CommSetRegistry::NoMemberships;

unsigned CommSetRegistry::getOrCreateSet(const std::string &Name,
                                         CommSetKind Kind) {
  auto It = SetIdByName.find(Name);
  if (It != SetIdByName.end())
    return It->second;
  SetInfo Info;
  Info.Id = static_cast<unsigned>(Sets.size());
  Info.Name = Name;
  Info.Kind = Kind;
  Info.Rank = Info.Id;
  Sets.push_back(std::move(Info));
  SetIdByName[Name] = Sets.back().Id;
  return Sets.back().Id;
}

CommSetRegistry CommSetRegistry::build(const Program &P, const Module &M,
                                       DiagnosticEngine &Diags) {
  CommSetRegistry R;

  // Declared sets first: their declaration order defines the lock ranks.
  for (const SetDecl &D : P.SetDecls)
    R.getOrCreateSet(D.Name, D.Kind);
  for (const PredicateDecl &D : P.Predicates) {
    int Id = R.findSet(D.SetName);
    if (Id >= 0)
      R.Sets[Id].Pred = &D;
  }
  for (const NoSyncDecl &D : P.NoSyncs) {
    int Id = R.findSet(D.SetName);
    if (Id >= 0)
      R.Sets[Id].NoSync = true;
  }
  for (const SyncReqDecl &D : P.SyncReqs) {
    if (D.Mode != "priv")
      continue;
    int Id = R.findSet(D.SetName);
    if (Id >= 0)
      R.Sets[Id].ForcePriv = true;
  }

  // Memberships from module metadata; implicit SELF expands to a singleton
  // self set unique to the member.
  auto addMemberships = [&](const std::string &Callee,
                            const std::vector<MemberInstance> &Members) {
    for (const MemberInstance &MI : Members) {
      Membership Entry;
      if (MI.SetName == SelfSetKeyword) {
        Entry.SetId = R.getOrCreateSet("SELF$" + Callee, CommSetKind::Self);
      } else {
        int Id = R.findSet(MI.SetName);
        if (Id < 0) {
          Diags.error(MI.Loc, formatString("membership in undeclared "
                                           "COMMSET '%s'",
                                           MI.SetName.c_str()));
          continue;
        }
        Entry.SetId = static_cast<unsigned>(Id);
      }
      Entry.ArgParams = MI.ArgParams;
      R.Memberships[Callee].push_back(std::move(Entry));
    }
  };

  for (const auto &F : M.Functions)
    addMemberships(F->Name, F->Members);
  for (const auto &N : M.Natives)
    addMemberships(N->Name, N->Members);

  return R;
}

int CommSetRegistry::findSet(const std::string &Name) const {
  auto It = SetIdByName.find(Name);
  return It == SetIdByName.end() ? -1 : static_cast<int>(It->second);
}

const std::vector<CommSetRegistry::Membership> &
CommSetRegistry::membershipsOf(const std::string &Callee) const {
  auto It = Memberships.find(Callee);
  return It == Memberships.end() ? NoMemberships : It->second;
}

std::vector<unsigned>
CommSetRegistry::commutingSets(const std::string &F,
                               const std::string &G) const {
  std::vector<unsigned> Result;
  bool SameCallee = F == G;
  for (const Membership &MF : membershipsOf(F)) {
    for (const Membership &MG : membershipsOf(G)) {
      if (MF.SetId != MG.SetId)
        continue;
      const SetInfo &S = Sets[MF.SetId];
      bool Commutes = SameCallee ? S.Kind == CommSetKind::Self
                                 : S.Kind == CommSetKind::Group;
      if (Commutes &&
          std::find(Result.begin(), Result.end(), S.Id) == Result.end())
        Result.push_back(S.Id);
    }
  }
  return Result;
}

std::vector<std::string> CommSetRegistry::memberCallees() const {
  std::vector<std::string> Names;
  for (const auto &[Name, Members] : Memberships)
    Names.push_back(Name);
  return Names;
}
