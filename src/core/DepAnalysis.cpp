//===- DepAnalysis.cpp ----------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Core/DepAnalysis.h"

#include "commset/Core/PredicateInterp.h"

#include <cassert>

using namespace commset;

namespace {

/// Symbolic variable ids: the induction variable in each execution context,
/// then opaque locals (one id per (local, context) pair, offset past the
/// induction ids).
constexpr unsigned IndVarCtx1 = 1;
constexpr unsigned IndVarCtx2 = 2;
constexpr unsigned LocalVarBase = 16;

unsigned localVarId(unsigned Local, unsigned Ctx) {
  return LocalVarBase + Local * 2 + (Ctx - 1);
}

/// Resolves, for LoadLocal nodes, the unique intra-iteration reaching
/// definition (null when several defs or any loop-carried def reaches the
/// load): lets the symbolic binder trace copy chains like the hidden
/// parameters introduced by named-block inlining back to the induction
/// variable.
class CopyChains {
public:
  explicit CopyChains(const PDG &G) {
    std::map<unsigned, const Instruction *> IntraDef;
    std::set<unsigned> Spoiled;
    for (const PDGEdge &E : G.Edges) {
      if (E.Kind != DepKind::LocalFlow)
        continue;
      if (E.LoopCarried) {
        Spoiled.insert(E.Dst);
        continue;
      }
      auto [It, Inserted] = IntraDef.try_emplace(E.Dst, G.Nodes[E.Src]);
      if (!Inserted)
        Spoiled.insert(E.Dst); // Multiple reaching defs.
    }
    for (auto &[Node, Def] : IntraDef)
      if (!Spoiled.count(Node))
        UniqueDef[G.Nodes[Node]] = Def;
  }

  /// The single StoreLocal reaching \p Load intra-iteration, or null.
  const Instruction *defOf(const Instruction *Load) const {
    auto It = UniqueDef.find(Load);
    return It == UniqueDef.end() ? nullptr : It->second;
  }

private:
  std::map<const Instruction *, const Instruction *> UniqueDef;
};

/// Symbolic value of a call actual in execution context \p Ctx (1 = source
/// member, 2 = destination member). Traces affine chains and single-def
/// local copies rooted at the induction variable.
SymValue symbolicArg(const Operand &Op, unsigned Ctx, int InductionLocal,
                     const CopyChains &Chains, unsigned Depth = 0) {
  if (Depth > 16)
    return SymValue::opaque();
  switch (Op.K) {
  case Operand::Kind::ConstInt:
    return SymValue::constInt(Op.IntVal);
  case Operand::Kind::ConstFloat:
    return SymValue::constFloat(Op.FloatVal);
  case Operand::Kind::Instr:
    break;
  default:
    return SymValue::opaque();
  }

  const Instruction *Def = Op.Def;
  switch (Def->op()) {
  case Opcode::LoadLocal: {
    if (InductionLocal >= 0 &&
        Def->SlotId == static_cast<unsigned>(InductionLocal))
      return SymValue::affine(Ctx == 1 ? IndVarCtx1 : IndVarCtx2);
    // Chase the unique intra-iteration reaching definition (copy chains
    // from named-block inlining, `x = i + 1` style rebindings, ...).
    if (const Instruction *Store = Chains.defOf(Def)) {
      SymValue V = symbolicArg(Store->Operands[0], Ctx, InductionLocal,
                               Chains, Depth + 1);
      if (V.K != SymValue::Kind::Opaque)
        return V;
    }
    // Otherwise: same symbolic variable within one context. The analyzer
    // only proves *equality within one context* through identical VarIds,
    // which is sound for read-only bindings at a single call site.
    return SymValue::affine(localVarId(Def->SlotId, Ctx));
  }
  case Opcode::Add: {
    SymValue L =
        symbolicArg(Def->Operands[0], Ctx, InductionLocal, Chains, Depth + 1);
    SymValue R =
        symbolicArg(Def->Operands[1], Ctx, InductionLocal, Chains, Depth + 1);
    if (L.K == SymValue::Kind::Affine && R.K == SymValue::Kind::ConstInt)
      return SymValue::affine(L.VarId, L.Offset + R.Offset);
    if (L.K == SymValue::Kind::ConstInt && R.K == SymValue::Kind::Affine)
      return SymValue::affine(R.VarId, R.Offset + L.Offset);
    if (L.K == SymValue::Kind::ConstInt && R.K == SymValue::Kind::ConstInt)
      return SymValue::constInt(L.Offset + R.Offset);
    return SymValue::opaque();
  }
  case Opcode::Sub: {
    SymValue L =
        symbolicArg(Def->Operands[0], Ctx, InductionLocal, Chains, Depth + 1);
    SymValue R =
        symbolicArg(Def->Operands[1], Ctx, InductionLocal, Chains, Depth + 1);
    if (L.K == SymValue::Kind::Affine && R.K == SymValue::Kind::ConstInt)
      return SymValue::affine(L.VarId, L.Offset - R.Offset);
    if (L.K == SymValue::Kind::ConstInt && R.K == SymValue::Kind::ConstInt)
      return SymValue::constInt(L.Offset - R.Offset);
    return SymValue::opaque();
  }
  default:
    return SymValue::opaque();
  }
}

const std::string &calleeNameOf(const Instruction *Call) {
  assert(Call->isCall() && "not a call");
  static const std::string Empty;
  if (Call->op() == Opcode::Call)
    return Call->Callee->Name;
  return Call->Native->Name;
}

/// Finds the membership of \p Callee in \p SetId (first one).
const CommSetRegistry::Membership *
membershipIn(const CommSetRegistry &Registry, const std::string &Callee,
             unsigned SetId) {
  for (const auto &M : Registry.membershipsOf(Callee))
    if (M.SetId == SetId)
      return &M;
  return nullptr;
}

} // namespace

DepAnalysisStats
commset::annotateCommutativity(PDG &G, const DomTree &DT,
                               const CommSetRegistry &Registry) {
  DepAnalysisStats Stats;
  int InductionLocal = G.L->Induction.Local == ~0u
                           ? -1
                           : static_cast<int>(G.L->Induction.Local);
  CopyChains Chains(G);

  for (PDGEdge &E : G.Edges) {
    if (E.Kind != DepKind::Memory)
      continue;
    Instruction *N1 = G.Nodes[E.Src];
    Instruction *N2 = G.Nodes[E.Dst];
    // Algorithm 1, line 3: only call-call edges are candidates.
    if (!N1->isCall() || !N2->isCall())
      continue;
    ++Stats.Examined;

    const std::string &F = calleeNameOf(N1);
    const std::string &Gn = calleeNameOf(N2);
    bool AnyUco = false, AnyIco = false;
    unsigned UcoSet = ~0u, IcoSet = ~0u;

    for (unsigned SetId : Registry.commutingSets(F, Gn)) {
      const CommSetRegistry::SetInfo &S = Registry.set(SetId);
      if (!S.Pred) {
        AnyUco = true; // Lines 9-11.
        UcoSet = SetId;
        break;
      }

      const auto *MF = membershipIn(Registry, F, SetId);
      const auto *MG = membershipIn(Registry, Gn, SetId);
      assert(MF && MG && "commutingSets implies membership");
      if (MF->ArgParams.size() != S.Pred->Params1.size() ||
          MG->ArgParams.size() != S.Pred->Params2.size())
        continue; // Malformed binding; leave the dependence in place.

      // Bind actuals (lines 13-20).
      std::map<std::string, SymValue> Env;
      bool BindOk = true;
      for (size_t I = 0; I < MF->ArgParams.size() && BindOk; ++I) {
        unsigned Param = MF->ArgParams[I];
        if (Param >= N1->Operands.size()) {
          BindOk = false;
          break;
        }
        Env[S.Pred->Params1[I].Name] =
            symbolicArg(N1->Operands[Param], 1, InductionLocal, Chains);
      }
      for (size_t I = 0; I < MG->ArgParams.size() && BindOk; ++I) {
        unsigned Param = MG->ArgParams[I];
        if (Param >= N2->Operands.size()) {
          BindOk = false;
          break;
        }
        // Intra-iteration edges evaluate both members in the same context
        // (the induction variable has one value); loop-carried edges give
        // the destination a second context with the distinctness fact.
        unsigned Ctx = E.LoopCarried ? 2 : 1;
        Env[S.Pred->Params2[I].Name] =
            symbolicArg(N2->Operands[Param], Ctx, InductionLocal, Chains);
      }
      if (!BindOk)
        continue;

      SymFacts Facts;
      if (E.LoopCarried)
        Facts.Distinct.push_back({IndVarCtx1, IndVarCtx2}); // Line 22-23.

      TriBool R = evalPredicate(S.Pred->Predicate.get(), Env, Facts);
      if (R != TriBool::True)
        continue;
      if (E.LoopCarried) {
        if (DT.dominates(N2, N1)) { // Lines 25-27.
          AnyUco = true;
          UcoSet = SetId;
        } else { // Lines 28-30.
          AnyIco = true;
          if (IcoSet == ~0u)
            IcoSet = SetId;
        }
      } else { // Lines 32-36.
        AnyUco = true;
        UcoSet = SetId;
      }
      if (AnyUco)
        break;
    }

    if (AnyUco) {
      E.Comm = CommAnnotation::Uco;
      E.JustifyingSet = UcoSet;
      ++Stats.UcoEdges;
    } else if (AnyIco) {
      E.Comm = CommAnnotation::Ico;
      E.JustifyingSet = IcoSet;
      ++Stats.IcoEdges;
    }
  }

  // Symmetric upgrade: a loop-carried conflict appears as a pair of
  // opposite edges (either order of iterations). When both directions are
  // proven commutative, no cross-iteration ordering constraint remains in
  // either direction, so both relax to uco. (Algorithm 1's dominance test
  // handles the common cases; this covers conditional members whose blocks
  // do not dominate each other, where the paper's rule leaves a spurious
  // ico 2-cycle.)
  for (PDGEdge &E : G.Edges) {
    if (E.Kind != DepKind::Memory || !E.LoopCarried ||
        E.Comm != CommAnnotation::Ico)
      continue;
    for (PDGEdge &Rev : G.Edges) {
      if (Rev.Kind != DepKind::Memory || !Rev.LoopCarried)
        continue;
      if (Rev.Src != E.Dst || Rev.Dst != E.Src)
        continue;
      if (Rev.Comm == CommAnnotation::None)
        continue;
      E.Comm = CommAnnotation::Uco;
      if (Rev.Comm == CommAnnotation::Ico)
        Rev.Comm = CommAnnotation::Uco;
      ++Stats.UcoEdges;
      break;
    }
  }
  return Stats;
}
