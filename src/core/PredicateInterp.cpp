//===- PredicateInterp.cpp ------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Core/PredicateInterp.h"

#include "commset/Support/Casting.h"

#include <cstdint>

using namespace commset;

namespace {

TriBool triNot(TriBool V) {
  switch (V) {
  case TriBool::True:
    return TriBool::False;
  case TriBool::False:
    return TriBool::True;
  case TriBool::Unknown:
    return TriBool::Unknown;
  }
  return TriBool::Unknown;
}

TriBool triAnd(TriBool A, TriBool B) {
  if (A == TriBool::False || B == TriBool::False)
    return TriBool::False;
  if (A == TriBool::True && B == TriBool::True)
    return TriBool::True;
  return TriBool::Unknown;
}

TriBool triOr(TriBool A, TriBool B) {
  if (A == TriBool::True || B == TriBool::True)
    return TriBool::True;
  if (A == TriBool::False && B == TriBool::False)
    return TriBool::False;
  return TriBool::Unknown;
}

TriBool fromBool(bool V) { return V ? TriBool::True : TriBool::False; }

/// Symbolic evaluation of a (sub)expression to a value.
SymValue evalValue(const Expr *E, const std::map<std::string, SymValue> &Env,
                   const SymFacts &Facts);

/// Comparison of two symbolic values under the known facts.
TriBool compare(BinaryOp Op, const SymValue &L, const SymValue &R,
                const SymFacts &Facts) {
  using K = SymValue::Kind;

  // Exact constants: decide numerically.
  if (L.K == K::ConstInt && R.K == K::ConstInt) {
    int64_t A = L.Offset, B = R.Offset;
    switch (Op) {
    case BinaryOp::Eq:
      return fromBool(A == B);
    case BinaryOp::Ne:
      return fromBool(A != B);
    case BinaryOp::Lt:
      return fromBool(A < B);
    case BinaryOp::Le:
      return fromBool(A <= B);
    case BinaryOp::Gt:
      return fromBool(A > B);
    case BinaryOp::Ge:
      return fromBool(A >= B);
    default:
      return TriBool::Unknown;
    }
  }
  if (L.K == K::ConstFloat && R.K == K::ConstFloat) {
    double A = L.FloatVal, B = R.FloatVal;
    switch (Op) {
    case BinaryOp::Eq:
      return fromBool(A == B);
    case BinaryOp::Ne:
      return fromBool(A != B);
    case BinaryOp::Lt:
      return fromBool(A < B);
    case BinaryOp::Le:
      return fromBool(A <= B);
    case BinaryOp::Gt:
      return fromBool(A > B);
    case BinaryOp::Ge:
      return fromBool(A >= B);
    default:
      return TriBool::Unknown;
    }
  }

  if (L.K != K::Affine || R.K != K::Affine)
    return TriBool::Unknown;

  if (L.VarId == R.VarId) {
    // v + c1 <op> v + c2 decides exactly on the offsets.
    int64_t A = L.Offset, B = R.Offset;
    switch (Op) {
    case BinaryOp::Eq:
      return fromBool(A == B);
    case BinaryOp::Ne:
      return fromBool(A != B);
    case BinaryOp::Lt:
      return fromBool(A < B);
    case BinaryOp::Le:
      return fromBool(A <= B);
    case BinaryOp::Gt:
      return fromBool(A > B);
    case BinaryOp::Ge:
      return fromBool(A >= B);
    default:
      return TriBool::Unknown;
    }
  }

  if (Facts.knownDistinct(L.VarId, R.VarId)) {
    // v1 != v2 implies v1 + c != v2 + c (equal offsets only).
    if (L.Offset == R.Offset) {
      if (Op == BinaryOp::Ne)
        return TriBool::True;
      if (Op == BinaryOp::Eq)
        return TriBool::False;
    }
  }
  return TriBool::Unknown;
}

/// Evaluation of an expression as a boolean.
TriBool evalBool(const Expr *E, const std::map<std::string, SymValue> &Env,
                 const SymFacts &Facts) {
  switch (E->kind()) {
  case ExprKind::IntLit:
    return fromBool(cast<IntLitExpr>(E)->Value != 0);
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->Op == UnaryOp::LNot)
      return triNot(evalBool(U->Sub.get(), Env, Facts));
    return TriBool::Unknown;
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    switch (B->Op) {
    case BinaryOp::LAnd:
      return triAnd(evalBool(B->LHS.get(), Env, Facts),
                    evalBool(B->RHS.get(), Env, Facts));
    case BinaryOp::LOr:
      return triOr(evalBool(B->LHS.get(), Env, Facts),
                   evalBool(B->RHS.get(), Env, Facts));
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      return compare(B->Op, evalValue(B->LHS.get(), Env, Facts),
                     evalValue(B->RHS.get(), Env, Facts), Facts);
    default: {
      // Arithmetic used in boolean position: nonzero test on the value.
      SymValue V = evalValue(E, Env, Facts);
      if (V.K == SymValue::Kind::ConstInt)
        return fromBool(V.Offset != 0);
      return TriBool::Unknown;
    }
    }
  }
  case ExprKind::VarRef: {
    SymValue V = evalValue(E, Env, Facts);
    if (V.K == SymValue::Kind::ConstInt)
      return fromBool(V.Offset != 0);
    return TriBool::Unknown;
  }
  default:
    return TriBool::Unknown;
  }
}

SymValue evalValue(const Expr *E, const std::map<std::string, SymValue> &Env,
                   const SymFacts &Facts) {
  switch (E->kind()) {
  case ExprKind::IntLit:
    return SymValue::constInt(cast<IntLitExpr>(E)->Value);
  case ExprKind::FloatLit:
    return SymValue::constFloat(cast<FloatLitExpr>(E)->Value);
  case ExprKind::VarRef: {
    auto It = Env.find(cast<VarRefExpr>(E)->Name);
    return It == Env.end() ? SymValue::opaque() : It->second;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    SymValue Sub = evalValue(U->Sub.get(), Env, Facts);
    if (U->Op == UnaryOp::Neg && Sub.K == SymValue::Kind::ConstInt)
      return SymValue::constInt(-Sub.Offset);
    if (U->Op == UnaryOp::Neg && Sub.K == SymValue::Kind::ConstFloat)
      return SymValue::constFloat(-Sub.FloatVal);
    if (U->Op == UnaryOp::LNot) {
      TriBool B = evalBool(U->Sub.get(), Env, Facts);
      if (B != TriBool::Unknown)
        return SymValue::constInt(B == TriBool::False ? 1 : 0);
    }
    return SymValue::opaque();
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    // Comparisons / logic in value position: fold a decided TriBool.
    switch (B->Op) {
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
    case BinaryOp::LAnd:
    case BinaryOp::LOr: {
      TriBool R = evalBool(E, Env, Facts);
      if (R != TriBool::Unknown)
        return SymValue::constInt(R == TriBool::True ? 1 : 0);
      return SymValue::opaque();
    }
    default:
      break;
    }
    SymValue L = evalValue(B->LHS.get(), Env, Facts);
    SymValue R = evalValue(B->RHS.get(), Env, Facts);
    using K = SymValue::Kind;
    if (L.K == K::ConstInt && R.K == K::ConstInt) {
      // Fold with wrap semantics (unsigned arithmetic — signed overflow is
      // UB in the folder itself), mirroring the runtime's defined I64
      // wrap-around. Division at its two trap points (x/0, INT64_MIN/-1)
      // stays opaque: conservative, and never contradicts the runtime.
      switch (B->Op) {
      case BinaryOp::Add:
        return SymValue::constInt(static_cast<int64_t>(
            static_cast<uint64_t>(L.Offset) + static_cast<uint64_t>(R.Offset)));
      case BinaryOp::Sub:
        return SymValue::constInt(static_cast<int64_t>(
            static_cast<uint64_t>(L.Offset) - static_cast<uint64_t>(R.Offset)));
      case BinaryOp::Mul:
        return SymValue::constInt(static_cast<int64_t>(
            static_cast<uint64_t>(L.Offset) * static_cast<uint64_t>(R.Offset)));
      case BinaryOp::Div:
        return R.Offset && !(L.Offset == INT64_MIN && R.Offset == -1)
                   ? SymValue::constInt(L.Offset / R.Offset)
                   : SymValue::opaque();
      case BinaryOp::Rem:
        return R.Offset && !(L.Offset == INT64_MIN && R.Offset == -1)
                   ? SymValue::constInt(L.Offset % R.Offset)
                   : SymValue::opaque();
      default:
        return SymValue::opaque();
      }
    }
    // Affine +/- constant stays affine.
    if (B->Op == BinaryOp::Add) {
      if (L.K == K::Affine && R.K == K::ConstInt)
        return SymValue::affine(L.VarId, L.Offset + R.Offset);
      if (L.K == K::ConstInt && R.K == K::Affine)
        return SymValue::affine(R.VarId, R.Offset + L.Offset);
    }
    if (B->Op == BinaryOp::Sub && L.K == K::Affine && R.K == K::ConstInt)
      return SymValue::affine(L.VarId, L.Offset - R.Offset);
    return SymValue::opaque();
  }
  default:
    return SymValue::opaque();
  }
}

} // namespace

TriBool commset::evalPredicate(const Expr *Pred,
                               const std::map<std::string, SymValue> &Env,
                               const SymFacts &Facts) {
  if (!Pred)
    return TriBool::Unknown;
  return evalBool(Pred, Env, Facts);
}
