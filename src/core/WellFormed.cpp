//===- WellFormed.cpp -----------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Core/WellFormed.h"

#include "commset/Support/StringUtils.h"

#include <map>

using namespace commset;

namespace {

/// Resolves a callee name to the user function if it has one (natives have
/// no outgoing calls, so reachability questions about them are trivial).
Function *functionOf(const Module &M, const std::string &Name) {
  return M.findFunction(Name);
}

/// Callee names (functions and natives) transitively reachable from a
/// member, including direct native calls of reachable functions.
std::set<std::string> reachableCallees(const Module &M, const CallGraph &CG,
                                       const std::string &From) {
  std::set<std::string> Result;
  Function *F = functionOf(M, From);
  if (!F)
    return Result; // Native members call nothing.
  std::set<Function *> Fns = CG.reachableFrom(F);
  Fns.insert(F); // Include the member itself for native-call scanning,
                 // but do not count it as "reaching itself".
  for (Function *Reached : Fns) {
    if (Reached != F)
      Result.insert(Reached->Name);
    for (const auto &BB : Reached->Blocks)
      for (const auto &Instr : BB->Instrs)
        if (Instr->op() == Opcode::CallNative)
          Result.insert(Instr->Native->Name);
  }
  return Result;
}

} // namespace

std::vector<std::set<unsigned>>
commset::buildCommSetGraph(const Module &M, const CommSetRegistry &Registry,
                           const CallGraph &CG) {
  std::vector<std::set<unsigned>> Graph(Registry.sets().size());
  for (const std::string &Caller : Registry.memberCallees()) {
    std::set<std::string> Reached = reachableCallees(M, CG, Caller);
    for (const auto &CallerMembership : Registry.membershipsOf(Caller)) {
      for (const std::string &Callee : Reached) {
        for (const auto &CalleeMembership : Registry.membershipsOf(Callee)) {
          Graph[CallerMembership.SetId].insert(CalleeMembership.SetId);
        }
      }
    }
  }
  return Graph;
}

bool commset::checkWellFormed(const Module &M,
                              const CommSetRegistry &Registry,
                              const CallGraph &CG, DiagnosticEngine &Diags) {
  bool Ok = true;

  // Condition (b) of well-defined members: no transitive call between
  // members of the same COMMSET.
  std::map<unsigned, std::vector<std::string>> MembersBySet;
  for (const std::string &Callee : Registry.memberCallees())
    for (const auto &Membership : Registry.membershipsOf(Callee))
      MembersBySet[Membership.SetId].push_back(Callee);

  for (const std::string &Caller : Registry.memberCallees()) {
    std::set<std::string> Reached = reachableCallees(M, CG, Caller);
    for (const auto &CallerMembership : Registry.membershipsOf(Caller)) {
      for (const std::string &Other :
           MembersBySet[CallerMembership.SetId]) {
        if (Reached.count(Other)) {
          Diags.error(SourceLoc(),
                      formatString("COMMSET '%s' is ill-defined: member "
                                   "'%s' transitively calls member '%s'",
                                   Registry.set(CallerMembership.SetId)
                                       .Name.c_str(),
                                   Caller.c_str(), Other.c_str()));
          Ok = false;
        }
      }
    }
  }

  // Well-formedness: the COMMSET graph must be acyclic.
  auto Graph = buildCommSetGraph(M, Registry, CG);
  unsigned N = static_cast<unsigned>(Graph.size());
  // Colors: 0 = unvisited, 1 = on stack, 2 = done.
  std::vector<char> Color(N, 0);
  std::vector<unsigned> Stack;
  for (unsigned Start = 0; Start < N && Ok; ++Start) {
    if (Color[Start])
      continue;
    // Iterative DFS cycle detection.
    std::vector<std::pair<unsigned, std::set<unsigned>::iterator>> Frames;
    Frames.push_back({Start, Graph[Start].begin()});
    Color[Start] = 1;
    while (!Frames.empty() && Ok) {
      auto &[Node, It] = Frames.back();
      if (It == Graph[Node].end()) {
        Color[Node] = 2;
        Frames.pop_back();
        continue;
      }
      unsigned Next = *It++;
      if (Color[Next] == 1) {
        Diags.error(SourceLoc(),
                    formatString("COMMSET graph has a cycle through '%s' "
                                 "and '%s'; the set collection is not "
                                 "well-formed",
                                 Registry.set(Node).Name.c_str(),
                                 Registry.set(Next).Name.c_str()));
        Ok = false;
      } else if (Color[Next] == 0) {
        Color[Next] = 1;
        Frames.push_back({Next, Graph[Next].begin()});
      }
    }
  }
  return Ok;
}
