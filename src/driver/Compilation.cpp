//===- Compilation.cpp ----------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Driver/Compilation.h"

#include "commset/Core/WellFormed.h"
#include "commset/IR/Verifier.h"
#include "commset/Lang/Parser.h"
#include "commset/Lang/Sema.h"
#include "commset/Lower/Lower.h"
#include "commset/Lower/Specialize.h"
#include "commset/Support/StringUtils.h"

using namespace commset;

std::unique_ptr<Compilation>
Compilation::fromSource(const std::string &Source, DiagnosticEngine &Diags) {
  auto C = std::unique_ptr<Compilation>(new Compilation());
  C->Prog = Parser::parse(Source, Diags);
  if (Diags.hasErrors())
    return nullptr;

  {
    Sema S(*C->Prog, Diags);
    if (!S.run())
      return nullptr;
  }
  if (!specializeNamedBlocks(*C->Prog, Diags))
    return nullptr;
  {
    // Re-run Sema: inlined named-block expansions introduce new
    // declarations whose types must be resolved before lowering.
    Sema S(*C->Prog, Diags);
    if (!S.run())
      return nullptr;
  }

  C->Mod = lowerProgram(*C->Prog, Diags);
  if (!C->Mod)
    return nullptr;
  std::set<std::string> DeclaredSets;
  for (const SetDecl &D : C->Prog->SetDecls)
    DeclaredSets.insert(D.Name);
  if (!verifyModule(*C->Mod, Diags, &DeclaredSets))
    return nullptr;

  C->Registry = CommSetRegistry::build(*C->Prog, *C->Mod, Diags);
  C->CG = CallGraph::compute(*C->Mod);
  if (!checkWellFormed(*C->Mod, C->Registry, C->CG, Diags))
    return nullptr;
  C->Effects = EffectAnalysis::compute(*C->Mod);

  // `sync(S, priv)` is a demand, not a hint: every member of a ForcePriv
  // set must satisfy the privatization proof (all written globals provably
  // add-reductions, no other effects), or the program is rejected here —
  // the planner must never be forced into an unsound replica plan.
  for (const CommSetRegistry::SetInfo &S : C->Registry.sets()) {
    if (!S.ForcePriv)
      continue;
    for (const std::string &Callee : C->Registry.memberCallees()) {
      bool InSet = false;
      for (const auto &MI : C->Registry.membershipsOf(Callee))
        InSet |= MI.SetId == S.Id;
      if (!InSet)
        continue;
      Function *F = C->Mod->findFunction(Callee);
      if (F && privEligibleSummary(C->Effects.summaryFor(F)))
        continue;
      Diags.error(F ? F->Loc : SourceLoc(),
                  formatString("COMMSET '%s' requests 'priv' "
                               "synchronization but member '%s' is not a "
                               "provable add-reduction; privatized replicas "
                               "would not merge to the sequential result "
                               "[CL050]",
                               S.Name.c_str(), Callee.c_str()));
    }
  }
  if (Diags.hasErrors())
    return nullptr;
  return C;
}

std::unique_ptr<Compilation::LoopTarget>
Compilation::analyzeLoop(const std::string &FuncName,
                         DiagnosticEngine &Diags) {
  Function *F = Mod->findFunction(FuncName);
  if (!F) {
    Diags.error(SourceLoc(), formatString("no function named '%s'",
                                          FuncName.c_str()));
    return nullptr;
  }
  auto T = std::make_unique<LoopTarget>();
  T->F = F;
  F->numberInstructions();
  T->DT = computeDominators(*F);
  T->LI = LoopInfo::compute(*F, T->DT);
  if (T->LI.topLevel().empty()) {
    Diags.error(F->Loc, formatString("function '%s' has no loop to "
                                     "parallelize",
                                     FuncName.c_str()));
    return nullptr;
  }
  T->L = T->LI.topLevel().front();
  analyzeInduction(*F, *T->L);

  T->PO = PtrOrigins::compute(*F, Effects);
  T->G = PDG::build(*F, *T->L, *Mod, Effects, T->PO);
  T->Stats = annotateCommutativity(T->G, T->DT, Registry);
  T->Sccs = computeSCCs(T->G);
  return T;
}
