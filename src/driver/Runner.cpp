//===- Runner.cpp ---------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Driver/Runner.h"

#include "commset/Exec/ThreadedPlatform.h"

#include <chrono>

using namespace commset;

std::vector<SchemeReport>
commset::buildAllSchemes(Compilation &C, Compilation::LoopTarget &T,
                         const PlanOptions &Opts) {
  std::vector<SchemeReport> Schemes;

  SchemeReport Seq;
  Seq.Kind = Strategy::Sequential;
  Seq.Applicable = true;
  ParallelPlan SeqPlan;
  SeqPlan.Kind = Strategy::Sequential;
  SeqPlan.F = T.F;
  SeqPlan.L = T.L;
  Seq.Plan = std::move(SeqPlan);
  Schemes.push_back(std::move(Seq));

  auto addScheme = [&](Strategy Kind,
                       std::optional<ParallelPlan> Plan,
                       std::string WhyNot) {
    SchemeReport R;
    R.Kind = Kind;
    R.Applicable = Plan.has_value();
    R.WhyNot = std::move(WhyNot);
    R.Plan = std::move(Plan);
    Schemes.push_back(std::move(R));
  };

  std::string WhyNot;
  auto Doall = buildDoallPlan(T.G, T.Sccs, C.module(), C.registry(),
                              C.effects(), Opts, &WhyNot);
  addScheme(Strategy::Doall, std::move(Doall), WhyNot);

  WhyNot.clear();
  auto Dswp = buildPipelinePlan(T.G, T.Sccs, C.module(), C.registry(),
                                C.effects(), Opts,
                                /*AllowParallelStage=*/false, &WhyNot);
  addScheme(Strategy::Dswp, std::move(Dswp), WhyNot);

  WhyNot.clear();
  auto PsDswp = buildPipelinePlan(T.G, T.Sccs, C.module(), C.registry(),
                                  C.effects(), Opts,
                                  /*AllowParallelStage=*/true, &WhyNot);
  addScheme(Strategy::PsDswp, std::move(PsDswp), WhyNot);
  return Schemes;
}

const SchemeReport *
commset::bestScheme(const std::vector<SchemeReport> &Schemes) {
  const SchemeReport *Best = nullptr;
  for (const SchemeReport &R : Schemes) {
    if (!R.Applicable || !R.Plan)
      continue;
    if (!Best || R.Plan->EstimatedSpeedup > Best->Plan->EstimatedSpeedup)
      Best = &R;
  }
  return Best;
}

RunOutcome commset::runScheme(Compilation &C, const Function *F,
                              const std::vector<RtValue> &Args,
                              const NativeRegistry &Natives,
                              const RunConfig &Config) {
  const Module &M = C.module();
  std::vector<RtValue> Globals = makeGlobalImage(M);

  ParallelPlan SeqPlan;
  SeqPlan.Kind = Strategy::Sequential;
  const ParallelPlan &Plan = Config.Plan ? *Config.Plan : SeqPlan;
  unsigned Threads = std::max(1u, Plan.NumThreads);

  RunOutcome Out;
  LoopRunStats Stats;
  auto Start = std::chrono::steady_clock::now();
  if (Config.Simulate) {
    SimPlatform Platform(Threads, Plan.Sync, Config.Sim);
    Out.Result = runFunctionWithPlan(M, Natives, Globals.data(), Plan, F,
                                     Args, Platform, &Stats);
    Out.VirtualNs = Platform.elapsedNs();
    Out.TmAborts = Platform.tmAborts();
    Out.LockContentions = Platform.lockContentions();
  } else {
    ThreadedPlatform Platform(Threads);
    Out.Result = runFunctionWithPlan(M, Natives, Globals.data(), Plan, F,
                                     Args, Platform, &Stats);
  }
  auto End = std::chrono::steady_clock::now();
  Out.WallNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
          .count());
  Out.Iterations = Stats.Iterations;
  return Out;
}
