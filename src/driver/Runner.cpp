//===- Runner.cpp ---------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Driver/Runner.h"

#include "commset/Exec/ThreadedPlatform.h"
#include "commset/Trace/Export.h"
#include "commset/Trace/Metrics.h"
#include "commset/Trace/Trace.h"

#include <algorithm>
#include <chrono>
#include <iostream>

using namespace commset;

std::vector<SchemeReport>
commset::buildAllSchemes(Compilation &C, Compilation::LoopTarget &T,
                         const PlanOptions &Opts) {
  std::vector<SchemeReport> Schemes;

  SchemeReport Seq;
  Seq.Kind = Strategy::Sequential;
  Seq.Applicable = true;
  ParallelPlan SeqPlan;
  SeqPlan.Kind = Strategy::Sequential;
  SeqPlan.F = T.F;
  SeqPlan.L = T.L;
  Seq.Plan = std::move(SeqPlan);
  Schemes.push_back(std::move(Seq));

  auto addScheme = [&](Strategy Kind,
                       std::optional<ParallelPlan> Plan,
                       std::string WhyNot) {
    SchemeReport R;
    R.Kind = Kind;
    R.Applicable = Plan.has_value();
    R.WhyNot = std::move(WhyNot);
    R.Plan = std::move(Plan);
    Schemes.push_back(std::move(R));
  };

  std::string WhyNot;
  auto Doall = buildDoallPlan(T.G, T.Sccs, C.module(), C.registry(),
                              C.effects(), Opts, &WhyNot);
  addScheme(Strategy::Doall, std::move(Doall), WhyNot);

  WhyNot.clear();
  auto Dswp = buildPipelinePlan(T.G, T.Sccs, C.module(), C.registry(),
                                C.effects(), Opts,
                                /*AllowParallelStage=*/false, &WhyNot);
  addScheme(Strategy::Dswp, std::move(Dswp), WhyNot);

  WhyNot.clear();
  auto PsDswp = buildPipelinePlan(T.G, T.Sccs, C.module(), C.registry(),
                                  C.effects(), Opts,
                                  /*AllowParallelStage=*/true, &WhyNot);
  addScheme(Strategy::PsDswp, std::move(PsDswp), WhyNot);
  return Schemes;
}

const SchemeReport *
commset::bestScheme(const std::vector<SchemeReport> &Schemes) {
  const SchemeReport *Best = nullptr;
  for (const SchemeReport &R : Schemes) {
    if (!R.Applicable || !R.Plan)
      continue;
    if (!Best || R.Plan->EstimatedSpeedup > Best->Plan->EstimatedSpeedup)
      Best = &R;
  }
  return Best;
}

const char *commset::runStatusName(RunStatus Status) {
  switch (Status) {
  case RunStatus::Ok:
    return "ok";
  case RunStatus::DegradedSequential:
    return "degraded-to-sequential";
  case RunStatus::InternalError:
    return "internal-error";
  case RunStatus::DeadlineExceeded:
    return "deadline-exceeded";
  }
  return "unknown";
}

int commset::exitCodeFor(RunStatus Status) {
  switch (Status) {
  case RunStatus::Ok:
    return 0;
  case RunStatus::DegradedSequential:
    return 10;
  case RunStatus::InternalError:
    return 70;
  case RunStatus::DeadlineExceeded:
    return 75;
  }
  return 70;
}

RunOutcome commset::runScheme(Compilation &C, const Function *F,
                              const std::vector<RtValue> &Args,
                              const NativeRegistry &Natives,
                              const RunConfig &Config) {
  const Module &M = C.module();
  std::vector<RtValue> Globals = makeGlobalImage(M);

  ParallelPlan SeqPlan;
  SeqPlan.Kind = Strategy::Sequential;
  const ParallelPlan &Plan = Config.Plan ? *Config.Plan : SeqPlan;

  // Native code charges no virtual time, so it would corrupt the
  // simulator's clocks; reject the combination instead of silently
  // ignoring either flag.
  if (Config.Backend && Config.Simulate) {
    RunOutcome Out;
    Out.Status = RunStatus::InternalError;
    Out.Diagnostic = "backend '" + std::string(Config.Backend->name()) +
                     "' requires real threads (--simulate is interpreter-only)";
    return Out;
  }

  // Deadline budgets layer on whatever resilience config the caller chose:
  // copy it (or the defaults) and stamp the absolute cutoff instant.
  const ResilienceConfig *Resilience = Config.Resilience;
  ResilienceConfig DeadlineRes;
  if (Config.DeadlineMs) {
    DeadlineRes = Resilience ? *Resilience : defaultResilience();
    DeadlineRes.DeadlineAtMonoNs =
        steadyNowNs() + Config.DeadlineMs * 1000000ull;
    Resilience = &DeadlineRes;
  }

  FaultInjector *Faults = Resilience ? Resilience->Faults : nullptr;
  PlatformFactory MakePlatform;
  if (Config.Simulate) {
    SyncMode Sync = Plan.Sync;
    SimParams Sim = Config.Sim;
    MakePlatform = [Sync, Sim](unsigned Threads) {
      return std::unique_ptr<ExecPlatform>(
          new SimPlatform(std::max(1u, Threads), Sync, Sim));
    };
  } else {
    MakePlatform = [Faults](unsigned Threads) {
      return std::unique_ptr<ExecPlatform>(
          new ThreadedPlatform(std::max(1u, Threads), Faults));
    };
  }

  // CommTrace: arm the tracer around the whole resilient run so a degraded
  // execution's fault, cancellation and sequential re-run all land in one
  // trace. One ring per worker plus one spare for out-of-range tids.
  const bool WantTrace =
      trace::compiledIn() && (Config.Trace || !Config.TraceOutPath.empty() ||
                              Config.TraceProfileStderr);
  if (WantTrace)
    trace::session().enable(Config.TraceCapacity,
                            std::max(2u, Plan.NumThreads + 1));

  RunOutcome Out;
  auto Start = std::chrono::steady_clock::now();
  try {
    ResilientOutcome R = runFunctionResilient(
        M, Natives, Globals, Plan, F, Args, MakePlatform, Resilience,
        Config.ResetState,
        [&](ExecPlatform &Platform, bool Degraded) {
          if (auto *Sim = dynamic_cast<SimPlatform *>(&Platform)) {
            Out.VirtualNs = Sim->elapsedNs();
            Out.TmAborts = Sim->tmAborts();
            Out.LockContentions = Sim->lockContentions();
          }
        },
        Config.Backend);
    Out.Result = R.Result;
    Out.Iterations = R.Stats.Iterations;
    if (R.Degraded && R.Why == FaultKind::DeadlineExceeded) {
      Out.Status = RunStatus::DeadlineExceeded;
      Out.DegradedWhy = R.Why;
      Out.Diagnostic = "plan '" + Plan.describe() +
                       "' cancelled: " + R.Diagnostic;
    } else if (R.Degraded) {
      Out.Status = RunStatus::DegradedSequential;
      Out.DegradedWhy = R.Why;
      Out.Diagnostic = "plan '" + Plan.describe() + "' degraded: " +
                       R.Diagnostic;
    }
  } catch (const std::exception &E) {
    Out.Status = RunStatus::InternalError;
    Out.Diagnostic = E.what();
  }
  auto End = std::chrono::steady_clock::now();
  Out.WallNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
          .count());

  if (WantTrace) {
    trace::TraceSession &S = trace::session();
    S.disable();
    std::vector<trace::TraceEvent> Events = S.collect();
    trace::TraceMetrics Met = trace::aggregateMetrics(Events, S);
    Out.TraceEvents = Met.Events;
    Out.TraceDropped = Met.Dropped;
    // Threaded runs have no simulator to count conflicts; the trace is the
    // source of truth for them.
    if (!Config.Simulate) {
      Out.TmAborts = Met.StmAborts;
      Out.LockContentions = Met.totalLockContentions();
    }
    if (!Config.TraceOutPath.empty()) {
      std::string Err;
      if (!trace::writeChromeTraceFile(Events, S, Config.TraceOutPath, &Err))
        Out.TraceError = Err;
    }
    if (Config.TraceProfileStderr)
      trace::writeProfileReport(Met, std::cerr);
  }
  return Out;
}
