//===- Interpreter.cpp ----------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Exec/Interpreter.h"

#include "commset/Runtime/Privatization.h"
#include "commset/Trace/Trace.h"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <exception>

using namespace commset;

const char *commset::execBackendName(ExecBackendKind K) {
  return K == ExecBackendKind::Jit ? "jit" : "interp";
}

bool commset::execBackendFromString(const char *S, ExecBackendKind &Out) {
  if (std::strcmp(S, "interp") == 0 || std::strcmp(S, "interpreter") == 0) {
    Out = ExecBackendKind::Interp;
    return true;
  }
  if (std::strcmp(S, "jit") == 0) {
    Out = ExecBackendKind::Jit;
    return true;
  }
  return false;
}

namespace {

/// Closes a MemberEnter span on every exit path, including the exceptions
/// thrown for lock timeouts and STM retry exhaustion, so exported traces
/// keep balanced member spans.
struct MemberTraceScope {
  unsigned Tid;
  uint64_t Name;
  bool Armed;
  MemberTraceScope(unsigned Tid, uint64_t Name, bool Armed)
      : Tid(Tid), Name(Name), Armed(Armed) {
    if (Armed)
      trace::emit(trace::EventKind::MemberEnter, Tid, Name);
  }
  ~MemberTraceScope() {
    if (Armed)
      trace::emit(trace::EventKind::MemberExit, Tid, Name);
  }
};

} // namespace

uint64_t Interpreter::traceMemberId(const MemberSyncInfo &Info,
                                    const std::string &Name) {
  auto It = TraceMemberIds.find(&Info);
  if (It != TraceMemberIds.end())
    return It->second;
  uint64_t Id = trace::session().internName(Name);
  TraceMemberIds.emplace(&Info, Id);
  return Id;
}

uint64_t Interpreter::opCost(const Instruction *Instr) {
  switch (Instr->op()) {
  case Opcode::LoadGlobal:
  case Opcode::StoreGlobal:
    return 3;
  case Opcode::Call:
    return 10; // Call overhead; the body charges itself.
  case Opcode::Div:
  case Opcode::Rem:
    return 8;
  default:
    return 1;
  }
}

Frame Interpreter::makeFrame(const Function *F,
                             const std::vector<RtValue> &Args) const {
  assert(Args.size() == F->NumParams && "argument count mismatch");
  Frame Fr;
  Fr.Locals.resize(F->Locals.size());
  for (unsigned I = 0; I < F->NumParams; ++I)
    Fr.Locals[I] = Args[I];
  Fr.Regs.resize(F->NumInstrs);
  return Fr;
}

RtValue Interpreter::evalOperand(const Frame &Fr, const Operand &Op) const {
  switch (Op.K) {
  case Operand::Kind::Instr:
    return Fr.Regs[Op.Def->Id];
  case Operand::Kind::ConstInt:
    return RtValue::ofInt(Op.IntVal);
  case Operand::Kind::ConstFloat:
    return RtValue::ofDouble(Op.FloatVal);
  case Operand::Kind::ConstStr:
    return RtValue::ofPtr(
        const_cast<char *>(M.StringTable[Op.StrId].c_str()));
  case Operand::Kind::ConstNull:
    return RtValue::ofPtr(nullptr);
  case Operand::Kind::None:
    break;
  }
  assert(false && "invalid operand");
  return RtValue();
}

RtValue Interpreter::call(const Function *F,
                          const std::vector<RtValue> &Args) {
  Frame Fr = makeFrame(F, Args);
  return runBody(F, Fr);
}

RtValue Interpreter::runBody(const Function *F, Frame &Fr) {
  // Native code has no STM redirection and no abort polling, so a body
  // reached inside an active transaction always interprets; the backend
  // returning null for F is the per-function fallback.
  if (Backend && !CurrentTx)
    if (ExecBackend::NativeEntry Entry = Backend->entryFor(F))
      return runNative(Entry, Fr);
  return execBody(F, Fr);
}

RtValue Interpreter::runNative(ExecBackend::NativeEntry Entry, Frame &Fr) {
  std::exception_ptr Exc;
  ExecBackendCtx Ctx{this, &Fr, Fr.Regs.data(), Fr.Locals.data(), &Exc};
  uint64_t Bits = Entry(&Ctx);
  // Escape helpers stash exceptions (lock timeouts, cancellation, native
  // failures) instead of unwinding through frames with no unwind tables;
  // resurface them here, after native code has returned normally.
  if (Exc)
    std::rethrow_exception(Exc);
  RtValue R;
  R.Bits = Bits;
  return R;
}

RtValue Interpreter::execBody(const Function *F, Frame &Fr) {
  const BasicBlock *BB = F->entry();
  size_t Idx = 0;
  while (true) {
    const Instruction *Instr = BB->Instrs[Idx].get();
    switch (Instr->op()) {
    case Opcode::Br:
      if (Platform)
        Platform->charge(ThreadId, opCost(Instr));
      BB = Instr->Succ0;
      Idx = 0;
      continue;
    case Opcode::CondBr: {
      if (Platform)
        Platform->charge(ThreadId, opCost(Instr));
      bool Taken = evalOperand(Fr, Instr->Operands[0]).I != 0;
      BB = Taken ? Instr->Succ0 : Instr->Succ1;
      Idx = 0;
      continue;
    }
    case Opcode::Ret:
      if (Platform)
        Platform->charge(ThreadId, opCost(Instr));
      if (!Instr->Operands.empty())
        return evalOperand(Fr, Instr->Operands[0]);
      return RtValue();
    default:
      execInstr(Fr, Instr);
      ++Idx;
      // A TM abort unwinds to the member-call retry loop.
      if (CurrentTx && CurrentTx->aborted())
        return RtValue();
      continue;
    }
  }
}

void Interpreter::execInstr(Frame &Fr, const Instruction *Instr) {
  RtValue &Dest = Fr.Regs[Instr->Id];
  switch (Instr->op()) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem: {
    if (Platform)
      Platform->charge(ThreadId, opCost(Instr));
    RtValue L = evalOperand(Fr, Instr->Operands[0]);
    RtValue R = evalOperand(Fr, Instr->Operands[1]);
    if (Instr->type() == IRType::F64) {
      switch (Instr->op()) {
      case Opcode::Add:
        Dest.D = L.D + R.D;
        break;
      case Opcode::Sub:
        Dest.D = L.D - R.D;
        break;
      case Opcode::Mul:
        Dest.D = L.D * R.D;
        break;
      case Opcode::Div:
        // IEEE-754 semantics (DESIGN.md §8): x/0 is ±inf, 0/0 is NaN —
        // exactly what divsd produces in the JIT backend.
        Dest.D = L.D / R.D;
        break;
      default:
        // IEEE fmod: fmod(x, 0) is NaN, matching the JIT's libm call.
        Dest.D = std::fmod(L.D, R.D);
        break;
      }
    } else {
      // I64 arithmetic is defined to wrap (two's complement); compute in
      // uint64_t because signed overflow is UB in C++. Matches the JIT's
      // add/sub/imul, which wrap natively.
      uint64_t UL = static_cast<uint64_t>(L.I);
      uint64_t UR = static_cast<uint64_t>(R.I);
      switch (Instr->op()) {
      case Opcode::Add:
        Dest.I = static_cast<int64_t>(UL + UR);
        break;
      case Opcode::Sub:
        Dest.I = static_cast<int64_t>(UL - UR);
        break;
      case Opcode::Mul:
        Dest.I = static_cast<int64_t>(UL * UR);
        break;
      case Opcode::Div:
        // Defined at the two idiv trap points: x/0 == 0 and
        // INT64_MIN / -1 wraps to INT64_MIN. The JIT guards its idiv
        // stencil identically.
        if (R.I == 0)
          Dest.I = 0;
        else if (L.I == INT64_MIN && R.I == -1)
          Dest.I = INT64_MIN;
        else
          Dest.I = L.I / R.I;
        break;
      default:
        // x%0 == 0 and INT64_MIN % -1 == 0 (consistent with the wrapped
        // quotient: INT64_MIN - (INT64_MIN * -1) would be 0).
        if (R.I == 0 || (L.I == INT64_MIN && R.I == -1))
          Dest.I = 0;
        else
          Dest.I = L.I % R.I;
        break;
      }
    }
    return;
  }
  case Opcode::Eq:
  case Opcode::Ne:
  case Opcode::Lt:
  case Opcode::Le:
  case Opcode::Gt:
  case Opcode::Ge: {
    if (Platform)
      Platform->charge(ThreadId, opCost(Instr));
    RtValue L = evalOperand(Fr, Instr->Operands[0]);
    RtValue R = evalOperand(Fr, Instr->Operands[1]);
    // Operand type: both sides were promoted identically during lowering;
    // use the defining instruction's type when available.
    bool IsFloat = false;
    bool IsPtr = false;
    if (Instr->Operands[0].isInstr()) {
      IsFloat = Instr->Operands[0].Def->type() == IRType::F64;
      IsPtr = Instr->Operands[0].Def->type() == IRType::Ptr;
    } else {
      IsFloat = Instr->Operands[0].K == Operand::Kind::ConstFloat;
      IsPtr = Instr->Operands[0].K == Operand::Kind::ConstNull ||
              Instr->Operands[0].K == Operand::Kind::ConstStr;
    }
    bool Result;
    if (IsFloat) {
      switch (Instr->op()) {
      case Opcode::Eq:
        Result = L.D == R.D;
        break;
      case Opcode::Ne:
        Result = L.D != R.D;
        break;
      case Opcode::Lt:
        Result = L.D < R.D;
        break;
      case Opcode::Le:
        Result = L.D <= R.D;
        break;
      case Opcode::Gt:
        Result = L.D > R.D;
        break;
      default:
        Result = L.D >= R.D;
        break;
      }
    } else if (IsPtr) {
      Result = Instr->op() == Opcode::Eq ? L.P == R.P : L.P != R.P;
    } else {
      switch (Instr->op()) {
      case Opcode::Eq:
        Result = L.I == R.I;
        break;
      case Opcode::Ne:
        Result = L.I != R.I;
        break;
      case Opcode::Lt:
        Result = L.I < R.I;
        break;
      case Opcode::Le:
        Result = L.I <= R.I;
        break;
      case Opcode::Gt:
        Result = L.I > R.I;
        break;
      default:
        Result = L.I >= R.I;
        break;
      }
    }
    Dest.I = Result ? 1 : 0;
    return;
  }
  case Opcode::Neg: {
    if (Platform)
      Platform->charge(ThreadId, opCost(Instr));
    RtValue V = evalOperand(Fr, Instr->Operands[0]);
    if (Instr->type() == IRType::F64)
      Dest.D = -V.D;
    else
      // Wraps: -INT64_MIN stays INT64_MIN (matches the JIT's neg).
      Dest.I = static_cast<int64_t>(0 - static_cast<uint64_t>(V.I));
    return;
  }
  case Opcode::Not: {
    if (Platform)
      Platform->charge(ThreadId, opCost(Instr));
    Dest.I = evalOperand(Fr, Instr->Operands[0]).I == 0 ? 1 : 0;
    return;
  }
  case Opcode::IntToFp:
    if (Platform)
      Platform->charge(ThreadId, opCost(Instr));
    Dest.D = static_cast<double>(evalOperand(Fr, Instr->Operands[0]).I);
    return;
  case Opcode::FpToInt: {
    if (Platform)
      Platform->charge(ThreadId, opCost(Instr));
    // Out-of-range and NaN conversions are UB in C++ but produce the
    // 0x8000...0 "integer indefinite" under cvttsd2si; define the opcode to
    // that value so both backends agree. [-2^63, 2^63) is the exactly
    // representable in-range window.
    double D = evalOperand(Fr, Instr->Operands[0]).D;
    if (D >= -9223372036854775808.0 && D < 9223372036854775808.0)
      Dest.I = static_cast<int64_t>(D);
    else
      Dest.I = INT64_MIN;
    return;
  }
  case Opcode::LoadLocal:
    if (Platform)
      Platform->charge(ThreadId, opCost(Instr));
    Dest = Fr.Locals[Instr->SlotId];
    return;
  case Opcode::StoreLocal:
    if (Platform)
      Platform->charge(ThreadId, opCost(Instr));
    Fr.Locals[Instr->SlotId] = evalOperand(Fr, Instr->Operands[0]);
    return;
  case Opcode::LoadGlobal:
    // Privatized slot: serve from this worker's replica. Fires the priv
    // hooks *instead of* onGlobalLoad — the shared global is untouched, so
    // the happens-before checker must not see the access.
    if (Sync.Priv && Sync.Priv->isPrivatized(Instr->SlotId)) {
      if (Platform) {
        Platform->charge(ThreadId, opCost(Instr));
        Platform->onPrivLoad(ThreadId, Instr->SlotId);
      }
      trace::emit(trace::EventKind::PrivTouch, ThreadId, Instr->SlotId, 0);
      Dest = Sync.Priv->replica(ThreadId, Instr->SlotId);
      return;
    }
    if (Platform) {
      Platform->charge(ThreadId, opCost(Instr));
      Platform->onGlobalLoad(ThreadId, Instr->SlotId);
    }
    if (CurrentTx) {
      Dest.Bits = CurrentTx->read(&Globals[Instr->SlotId].Bits);
      return;
    }
    Dest = Globals[Instr->SlotId];
    return;
  case Opcode::StoreGlobal: {
    if (Sync.Priv && Sync.Priv->isPrivatized(Instr->SlotId)) {
      if (Platform) {
        Platform->charge(ThreadId, opCost(Instr));
        Platform->onPrivStore(ThreadId, Instr->SlotId);
      }
      trace::emit(trace::EventKind::PrivTouch, ThreadId, Instr->SlotId, 1);
      Sync.Priv->replica(ThreadId, Instr->SlotId) =
          evalOperand(Fr, Instr->Operands[0]);
      return;
    }
    if (Platform) {
      Platform->charge(ThreadId, opCost(Instr));
      Platform->onGlobalStore(ThreadId, Instr->SlotId);
    }
    RtValue V = evalOperand(Fr, Instr->Operands[0]);
    if (CurrentTx) {
      CurrentTx->write(&Globals[Instr->SlotId].Bits, V.Bits);
      return;
    }
    Globals[Instr->SlotId] = V;
    return;
  }
  case Opcode::Call:
    Dest = execCall(Fr, Instr);
    return;
  case Opcode::CallNative:
    Dest = execCallNative(Fr, Instr);
    return;
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Ret:
    assert(false && "terminators are handled by the driving loop");
    return;
  }
}

RtValue Interpreter::invokeDirect(const Instruction *Instr,
                                  const std::vector<RtValue> &Args) {
  if (Instr->op() == Opcode::Call) {
    Frame Callee = makeFrame(Instr->Callee, Args);
    return runBody(Instr->Callee, Callee);
  }
  const NativeDecl *N = Instr->Native;
  const std::string Resource =
      Platform ? Natives.serialResourceOf(N->Name) : std::string();
  if (Platform && !Resource.empty())
    Platform->resourceEnter(ThreadId, Resource);
  if (Platform)
    Platform->charge(ThreadId, Natives.costOf(N->Name, Args.data(),
                                              static_cast<unsigned>(
                                                  Args.size())));
  RtValue Result = Natives.invoke(N->Name, Args.data(),
                                  static_cast<unsigned>(Args.size()));
  if (Platform && !Resource.empty())
    Platform->resourceExit(ThreadId, Resource);
  return Result;
}

RtValue Interpreter::invokeMember(const Instruction *Instr,
                                  const std::vector<RtValue> &Args,
                                  const MemberSyncInfo &Info) {
  const std::string &MemberName = Instr->op() == Opcode::Call
                                      ? Instr->Callee->Name
                                      : Instr->Native->Name;
  // DeclaredSafe: the sync engine assigned no locks because the member was
  // declared thread safe (NOSYNC / Lib). Running lock-free merely because
  // Sync.Mode == None disables synchronization is *not* declared safe —
  // the race checker must still flag those accesses.
  const bool DeclaredSafe = Info.LockRanks.empty();

  const bool Traced = trace::enabled();
  const uint64_t TraceName = Traced ? traceMemberId(Info, MemberName) : 0;
  MemberTraceScope TraceScope(ThreadId, TraceName, Traced);

  // Privatized member: every global it writes is served by this worker's
  // replica (execInstr reroutes the accesses), so the call needs neither
  // locks nor a transaction. DeclaredSafe — the compiler proved the
  // add-reduction and the merge restores sequential semantics.
  if (Info.Privatized && Sync.Priv && Instr->op() == Opcode::Call) {
    if (!Platform)
      return invokeDirect(Instr, Args);
    Platform->memberEnter(ThreadId, MemberName, /*DeclaredSafe=*/true);
    RtValue Result = invokeDirect(Instr, Args);
    Platform->memberExit(ThreadId);
    return Result;
  }

  // TM mode: optimistic execution for eligible members; everything else
  // falls back to the pessimistic ranked locks (paper §4.6).
  if (Sync.Mode == SyncMode::Tm && Info.TmEligible &&
      Instr->op() == Opcode::Call && Sync.StmState) {
    const ResilienceConfig &RC =
        Sync.Resilience ? *Sync.Resilience : defaultResilience();
    if (Platform)
      Platform->memberEnter(ThreadId, MemberName, DeclaredSafe);
    uint64_t Before = Platform ? Platform->elapsedNs() : 0;
    Stm Tx(*Sync.StmState, RC.Faults, ThreadId);
    Tx.setTraceSet(TraceName);
    StmRetryGovernor Governor(
        RC.StmMaxAttempts, RC.StmBackoffBaseUs, RC.StmBackoffCapUs,
        (RC.Faults ? RC.Faults->policy().Seed : 0) ^
            (static_cast<uint64_t>(ThreadId) * 0x9E3779B9ULL));
    RtValue Result;
    while (true) {
      if (Platform)
        Platform->txBegin(ThreadId);
      Tx.begin();
      CurrentTx = &Tx;
      Frame Callee = makeFrame(Instr->Callee, Args);
      Result = execBody(Instr->Callee, Callee);
      CurrentTx = nullptr;
      bool Committed = !Tx.aborted() && Tx.commit();
      uint64_t MemberCost =
          Platform ? Platform->elapsedNs() - Before : 0;
      if (Platform && !Platform->txCommit(ThreadId, Info.LockRanks,
                                          MemberCost))
        Committed = false;
      if (Committed) {
        if (Platform)
          Platform->memberExit(ThreadId);
        return Result;
      }
      if (Governor.onFailedAttempt() == StmOutcome::Exhausted) {
        if (Platform)
          Platform->memberExit(ThreadId);
        trace::emit(trace::EventKind::StmExhaust, ThreadId, TraceName,
                    Tx.attempts());
        throw RegionFault(FaultKind::StmExhausted, ThreadId,
                          "STM retries exhausted after " +
                              std::to_string(Tx.attempts()) +
                              " attempts in member '" + MemberName + "'");
      }
      trace::emit(trace::EventKind::StmRetry, ThreadId, TraceName,
                  Governor.failures());
    }
  }

  if (Info.LockRanks.empty() || Sync.Mode == SyncMode::None ||
      !Sync.Locks) {
    // Lib mode / nosync: the member is already thread safe.
    if (!Platform)
      return invokeDirect(Instr, Args);
    Platform->memberEnter(ThreadId, MemberName, DeclaredSafe);
    RtValue Result = invokeDirect(Instr, Args);
    Platform->memberExit(ThreadId);
    return Result;
  }

  if (Platform) {
    Platform->memberEnter(ThreadId, MemberName, DeclaredSafe);
    Platform->lockEnter(ThreadId, Info.LockRanks);
  }
  const ResilienceConfig &RC =
      Sync.Resilience ? *Sync.Resilience : defaultResilience();
  Sync.Locks->acquireOrTimeout(Info.LockRanks, ThreadId, RC.LockTimeoutMs,
                               RC.Faults);
  RtValue Result;
  try {
    Result = invokeDirect(Instr, Args);
  } catch (...) {
    Sync.Locks->release(Info.LockRanks);
    throw;
  }
  Sync.Locks->release(Info.LockRanks);
  if (Platform) {
    Platform->lockExit(ThreadId, Info.LockRanks);
    Platform->memberExit(ThreadId);
  }
  return Result;
}

RtValue Interpreter::execCall(Frame &Fr, const Instruction *Instr) {
  if (Platform)
    Platform->charge(ThreadId, opCost(Instr));
  std::vector<RtValue> Args;
  Args.reserve(Instr->Operands.size());
  for (const Operand &Op : Instr->Operands)
    Args.push_back(evalOperand(Fr, Op));

  if (Sync.Members) {
    auto It = Sync.Members->find(Instr->Callee->Name);
    if (It != Sync.Members->end())
      return invokeMember(Instr, Args, It->second);
  }
  return invokeDirect(Instr, Args);
}

RtValue Interpreter::execCallNative(Frame &Fr, const Instruction *Instr) {
  std::vector<RtValue> Args;
  Args.reserve(Instr->Operands.size());
  for (const Operand &Op : Instr->Operands)
    Args.push_back(evalOperand(Fr, Op));

  if (Sync.Members) {
    auto It = Sync.Members->find(Instr->Native->Name);
    if (It != Sync.Members->end())
      return invokeMember(Instr, Args, It->second);
  }
  return invokeDirect(Instr, Args);
}
