//===- LoopExecutors.cpp --------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Exec/LoopExecutors.h"

#include "commset/Runtime/Privatization.h"
#include "commset/Runtime/Sched.h"
#include "commset/Runtime/StealDeque.h"
#include "commset/Runtime/ThreadPool.h"
#include "commset/Trace/Trace.h"

#include <atomic>
#include <cassert>
#include <memory>

using namespace commset;

std::vector<RtValue> commset::makeGlobalImage(const Module &M) {
  std::vector<RtValue> Globals(M.Globals.size());
  for (size_t I = 0; I < M.Globals.size(); ++I) {
    if (M.Globals[I].Type == IRType::F64)
      Globals[I] = RtValue::ofDouble(M.Globals[I].FloatInit);
    else if (M.Globals[I].Type == IRType::Ptr)
      Globals[I] = RtValue::ofPtr(nullptr);
    else
      Globals[I] = RtValue::ofInt(M.Globals[I].IntInit);
  }
  return Globals;
}

namespace {

//===----------------------------------------------------------------------===//
// Shared helpers
//===----------------------------------------------------------------------===//

/// Virtual-time cost of one queue operation (charged by the simulator's
/// send/recv themselves; this is only the iteration token payload).
const RtValue TokenValue = RtValue::ofInt(0x70CEA);

struct ParallelRegion {
  const Module &M;
  const NativeRegistry &Natives;
  RtValue *Globals;
  const ParallelPlan &Plan;
  ExecPlatform &Platform;
  const ResilienceConfig &Resilience;
  CommSetLockManager Locks;
  StmSpace StmState;
  RegionControl Control;
  /// Replica manager for privatized globals; recreated (= replicas zeroed)
  /// at every region entry, so a re-entered loop and a post-fault retry
  /// both start from the additive identity.
  std::unique_ptr<PrivatizationManager> Priv;

  /// Native-code backend shared by every worker's interpreter (null =
  /// interpret everything).
  const ExecBackend *Backend;

  ParallelRegion(const Module &M, const NativeRegistry &Natives,
                 RtValue *Globals, const ParallelPlan &Plan,
                 ExecPlatform &Platform, const ResilienceConfig *Res,
                 const ExecBackend *Backend = nullptr)
      : M(M), Natives(Natives), Globals(Globals), Plan(Plan),
        Platform(Platform),
        Resilience(Res ? *Res : defaultResilience()),
        Locks(lockCount(Plan), realLockMode(Plan)), Backend(Backend) {}

  SyncContext syncFor() {
    SyncContext Sync;
    Sync.Mode = Plan.Sync;
    Sync.Members = &Plan.MemberSync;
    Sync.Locks = &Locks;
    Sync.StmState = &StmState;
    Sync.Resilience = &Resilience;
    return Sync;
  }

  /// Sync context for region workers: like syncFor(), plus replica routing
  /// for privatized globals. The main thread keeps syncFor() — its pre- and
  /// post-loop member calls run outside the region and use the locks.
  SyncContext workerSyncFor() {
    SyncContext Sync = syncFor();
    Sync.Priv = Priv.get();
    return Sync;
  }

  /// Leases and zeroes the replica rows for one region attempt. Called
  /// before the workers are constructed (they capture Priv via
  /// workerSyncFor()).
  void beginPrivRegion() {
    if (Plan.PrivGlobals.empty())
      return;
    std::vector<bool> FloatSlot(M.Globals.size());
    for (size_t I = 0; I < M.Globals.size(); ++I)
      FloatSlot[I] = M.Globals[I].Type == IRType::F64;
    Priv = std::make_unique<PrivatizationManager>(Plan.PrivGlobals,
                                                  Plan.NumThreads, FloatSlot);
  }

  /// Merges the replicas into the shared globals after a clean join. A
  /// faulted region unwinds past this, discarding the partial sums.
  void mergePriv() {
    if (!Priv)
      return;
    Priv->merge(Globals, /*MasterTid=*/0);
    Platform.onPrivMerge(0, Priv->slotCount(), Priv->numWorkers());
  }

  /// Worker progress checkpoint at iteration boundaries: heartbeats the
  /// watchdog, observes cancellation, and hosts the worker-level fault
  /// injection points. Two relaxed atomic ops when nothing fires.
  void checkpoint(unsigned Tid) {
    if (!Resilience.Supervise)
      return;
    Control.heartbeat(Tid);
    if (Control.cancelled())
      throw RegionFault(FaultKind::Cancelled, Tid, "region cancelled");
    if (Resilience.DeadlineAtMonoNs &&
        steadyNowNs() >= Resilience.DeadlineAtMonoNs)
      throw RegionFault(FaultKind::DeadlineExceeded, Tid,
                        "wall-clock deadline budget exhausted mid-region");
    if (FaultInjector *FI = Resilience.Faults) {
      FI->maybeDelay(FaultKind::WorkerDelay, Tid);
      FI->maybeDelay(FaultKind::WorkerStall, Tid);
      if (FI->fires(FaultKind::TaskFailure, Tid))
        throw RegionFault(FaultKind::TaskFailure, Tid,
                          "injected spurious task failure");
    }
  }

  /// Fork-join for \p Tasks under this region's supervision settings;
  /// throws RegionFault on any worker fault, watchdog trip, or abandoned
  /// worker so the caller can degrade to sequential execution.
  void runRegion(std::vector<std::function<void()>> &Tasks) {
    if (!Resilience.Supervise) {
      runParallel(Tasks);
      return;
    }
    SupervisedReport Rep = runParallelSupervised(
        Tasks, Control, Resilience.WatchdogStallMs, Resilience.JoinGraceMs,
        [this] { Platform.cancel(); });
    if (!Rep.AllJoined)
      // An abandoned worker may still touch region state; reusing the
      // process for a fallback run would race with it. Escalate as
      // unrecoverable (plain runtime_error, deliberately not RegionFault).
      throw std::runtime_error("unrecoverable region failure: " +
                               Rep.Detail);
    if (Rep.Faulted)
      throw RegionFault(Rep.Kind, Rep.FaultThread, Rep.Detail);
  }

  static unsigned lockCount(const ParallelPlan &Plan) {
    unsigned Max = 0;
    for (const auto &[Name, Info] : Plan.MemberSync)
      for (unsigned Rank : Info.LockRanks)
        Max = std::max(Max, Rank + 1);
    return Max;
  }

  static LockMode realLockMode(const ParallelPlan &Plan) {
    switch (Plan.Sync) {
    case SyncMode::Mutex:
      return LockMode::Mutex;
    case SyncMode::Spin:
      return LockMode::Spin;
    case SyncMode::Tm:
      // Ineligible members fall back to mutexes in TM mode.
      return LockMode::Mutex;
    case SyncMode::Priv:
      // Members that failed the add-reduction proof fall back to mutexes.
      return LockMode::Mutex;
    case SyncMode::None:
      return LockMode::None;
    }
    return LockMode::Mutex;
  }
};

/// CommTrace bracket for one parallel region, emitted on the main thread.
/// RAII so the end event still fires when a fault unwinds the region and
/// the exported trace keeps its B/E pairs balanced.
struct RegionTraceScope {
  RegionTraceScope(Strategy Kind, size_t Tasks) {
    trace::emit(trace::EventKind::RegionBegin, 0,
                static_cast<uint64_t>(Kind), Tasks);
  }
  ~RegionTraceScope() { trace::emit(trace::EventKind::RegionEnd, 0); }
};

/// \returns the unique loop-exit successor of the header (DOALL loops).
const BasicBlock *headerExitBlock(const Loop &L) {
  for (BasicBlock *Succ : L.Header->successors())
    if (!L.BlockIds.count(Succ->Id))
      return Succ;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// DOALL
//===----------------------------------------------------------------------===//

/// Iteration ranges [Begin, End) packed for the steal deque.
inline uint64_t packRange(uint64_t Begin, uint64_t End) {
  return (Begin << 32) | End;
}
inline uint64_t rangeBegin(uint64_t R) { return R >> 32; }
inline uint64_t rangeEnd(uint64_t R) { return R & 0xffffffffu; }

class DoallWorker {
public:
  DoallWorker(ParallelRegion &Region, const Frame &EntryFrame,
              unsigned ThreadId)
      : Region(Region), Plan(Region.Plan), L(*Plan.L),
        Interp(Region.M, Region.Natives, Region.Globals,
               Region.workerSyncFor(), &Region.Platform, ThreadId,
               Region.Backend),
        Fr(EntryFrame), ThreadId(ThreadId) {}

  /// Static round-robin assignment: thread t runs iterations t, t+T,
  /// t+2T, ... with a privatized induction variable. No scheduling
  /// traffic at all; the historical (paper) executor.
  uint64_t run() {
    int64_t Start = Fr.Locals[Plan.InductionLocal].I;
    Fr.Locals[Plan.InductionLocal].I =
        Start + static_cast<int64_t>(ThreadId) * Plan.InductionStep;

    uint64_t Iterations = 0;
    const BasicBlock *BB = L.Header;
    size_t Idx = 0;
    Region.checkpoint(ThreadId);
    while (true) {
      const Instruction *Instr = BB->Instrs[Idx].get();
      switch (Instr->op()) {
      case Opcode::Br:
        Region.Platform.charge(ThreadId, Interpreter::opCost(Instr));
        BB = Instr->Succ0;
        Idx = 0;
        if (BB == L.Header) {
          ++Iterations;
          Region.checkpoint(ThreadId);
        }
        continue;
      case Opcode::CondBr: {
        Region.Platform.charge(ThreadId, Interpreter::opCost(Instr));
        bool Taken = Interp.evalOperand(Fr, Instr->Operands[0]).I != 0;
        const BasicBlock *Next = Taken ? Instr->Succ0 : Instr->Succ1;
        if (!L.BlockIds.count(Next->Id)) {
          Region.Platform.threadDone(ThreadId);
          return Iterations;
        }
        if (Next == L.Header) {
          ++Iterations;
          Region.checkpoint(ThreadId);
        }
        BB = Next;
        Idx = 0;
        continue;
      }
      case Opcode::Ret:
        assert(false && "DOALL loop cannot contain a return");
        return Iterations;
      default:
        Interp.execInstr(Fr, Instr);
        // Privatized induction: the update store jumps by NumThreads
        // steps (this thread's next assigned iteration).
        if (Instr == L.Induction.Update)
          Fr.Locals[Plan.InductionLocal].I +=
              static_cast<int64_t>(Plan.NumThreads - 1) * Plan.InductionStep;
        ++Idx;
        continue;
      }
    }
  }

  /// Dynamic self-scheduling (Dynamic/Guided policies): chunks of
  /// iterations are claimed from the platform's shared counter; nothing is
  /// pre-assigned, so a thread stuck on one expensive iteration simply
  /// stops claiming while the others drain the rest of the space. When
  /// \p Deques is non-null (threaded platform), claimed chunks are lazily
  /// split — work the lower half, publish the upper half — and workers
  /// that run out of iterations steal published halves before retiring.
  ///
  /// Relies on the same monotone-exit property as the static executor: a
  /// header that evaluates false at iteration k evaluates false at every
  /// iteration >= k, so claims past the (statically unknown) trip count
  /// terminate after a single header evaluation.
  uint64_t runDynamic(std::vector<StealDeque> *Deques) {
    int64_t Start = Fr.Locals[Plan.InductionLocal].I;
    StealDeque *Mine = Deques ? &(*Deques)[ThreadId] : nullptr;
    uint64_t Iterations = 0;

    bool SawExit = false;
    while (!SawExit) {
      uint64_t Count = 0;
      uint64_t Begin = Region.Platform.claimIterations(
          ThreadId, Plan.Sched, Plan.NumThreads, Count);
      trace::emit(trace::EventKind::ChunkClaim, ThreadId, Begin, Count);
      uint64_t End = Begin + Count;
      while (true) {
        // Lazy splitting: keep the lower half private, publish the rest
        // for thieves. A full deque (cannot happen at 64 slots, but the
        // API is honest) just means we run the range ourselves.
        while (Mine && End - Begin > 1 &&
               Mine->push(packRange(Begin + (End - Begin) / 2, End)))
          End = Begin + (End - Begin) / 2;
        if (!runRange(Start, Begin, End, Iterations)) {
          SawExit = true;
          // Everything still in our deque begins past the exit index
          // (splits are published in increasing order); discard it so
          // thieves stop finding dead ranges.
          uint64_t Dead;
          while (Mine && Mine->pop(Dead)) {
          }
          break;
        }
        // Reclaim our most recent split if no thief got to it.
        uint64_t Next;
        if (!Mine || !Mine->pop(Next))
          break;
        Begin = rangeBegin(Next);
        End = rangeEnd(Next);
      }
    }

    if (Deques) {
      // Steal phase: help finish ranges other workers split off. One
      // clean sweep finding every deque empty ends it — a victim still
      // claiming fresh chunks is making progress on them itself.
      bool Found = true;
      while (Found) {
        Found = false;
        for (unsigned V = 0; V < Plan.NumThreads; ++V) {
          if (V == ThreadId)
            continue;
          uint64_t R;
          while ((*Deques)[V].steal(R)) {
            Found = true;
            trace::emit(trace::EventKind::Steal, ThreadId, V,
                        rangeEnd(R) - rangeBegin(R));
            // A stolen range past the exit dies on its first header
            // evaluation; ignore the exit signal and keep sweeping.
            runRange(Start, rangeBegin(R), rangeEnd(R), Iterations);
          }
        }
      }
    }

    Region.Platform.threadDone(ThreadId);
    return Iterations;
  }

private:
  /// Executes iterations [Begin, End) (global indices), repositioning the
  /// privatized induction variable to Begin. \returns true when the range
  /// completed, false when the header observed the loop exit (every
  /// iteration >= the exit index is dead).
  bool runRange(int64_t Start, uint64_t Begin, uint64_t End,
                uint64_t &Iterations) {
    if (Begin >= End)
      return true;
    Fr.Locals[Plan.InductionLocal].I =
        Start + static_cast<int64_t>(Begin) * Plan.InductionStep;
    uint64_t Done = Begin; // Iteration the header is about to test.
    const BasicBlock *BB = L.Header;
    size_t Idx = 0;
    Region.checkpoint(ThreadId);
    while (true) {
      const Instruction *Instr = BB->Instrs[Idx].get();
      switch (Instr->op()) {
      case Opcode::Br:
        Region.Platform.charge(ThreadId, Interpreter::opCost(Instr));
        BB = Instr->Succ0;
        Idx = 0;
        if (BB == L.Header) {
          ++Iterations;
          if (++Done == End)
            return true;
          Region.checkpoint(ThreadId);
        }
        continue;
      case Opcode::CondBr: {
        Region.Platform.charge(ThreadId, Interpreter::opCost(Instr));
        bool Taken = Interp.evalOperand(Fr, Instr->Operands[0]).I != 0;
        const BasicBlock *Next = Taken ? Instr->Succ0 : Instr->Succ1;
        if (!L.BlockIds.count(Next->Id))
          return false;
        if (Next == L.Header) {
          ++Iterations;
          if (++Done == End)
            return true;
          Region.checkpoint(ThreadId);
        }
        BB = Next;
        Idx = 0;
        continue;
      }
      case Opcode::Ret:
        assert(false && "DOALL loop cannot contain a return");
        return true;
      default:
        // Within a chunk consecutive iterations are adjacent, so the
        // loop's own induction update already lands on the next assigned
        // iteration — no privatization jump (contrast run()).
        Interp.execInstr(Fr, Instr);
        ++Idx;
        continue;
      }
    }
  }

  ParallelRegion &Region;
  const ParallelPlan &Plan;
  const Loop &L;
  Interpreter Interp;
  Frame Fr;
  unsigned ThreadId;
};

const BasicBlock *runDoall(ParallelRegion &Region, Frame &MainFrame,
                           LoopRunStats *Stats) {
  const ParallelPlan &Plan = Region.Plan;
  unsigned T = Plan.NumThreads;
  int64_t Start = MainFrame.Locals[Plan.InductionLocal].I;

  // Dynamic policies claim from the platform's shared counter; stealing
  // on top of that only where victim selection cannot perturb determinism
  // (the threaded platform). Static keeps the zero-traffic legacy path.
  bool Dynamic = Plan.Sched != SchedPolicy::Static;
  Region.Platform.resetClaims();
  std::unique_ptr<std::vector<StealDeque>> Deques;
  if (Dynamic && Region.Platform.supportsWorkStealing())
    Deques = std::make_unique<std::vector<StealDeque>>(T);

  Region.beginPrivRegion();
  std::vector<uint64_t> Iterations(T, 0);
  std::vector<std::function<void()>> Tasks;
  for (unsigned Tid = 0; Tid < T; ++Tid)
    Tasks.push_back([&Region, &MainFrame, &Iterations, Tid, Dynamic,
                     DequePtr = Deques.get()] {
      DoallWorker Worker(Region, MainFrame, Tid);
      Iterations[Tid] =
          Dynamic ? Worker.runDynamic(DequePtr) : Worker.run();
    });
  RegionTraceScope TraceScope(Plan.Kind, Tasks.size());
  Region.Platform.regionBegin(0);
  Region.runRegion(Tasks);
  Region.Platform.regionEnd(0);
  Region.mergePriv();

  uint64_t Total = 0;
  for (uint64_t N : Iterations)
    Total += N;
  // Sequential semantics: the induction variable's final value.
  MainFrame.Locals[Plan.InductionLocal].I =
      Start + static_cast<int64_t>(Total) * Plan.InductionStep;
  if (Stats)
    Stats->Iterations = Total;
  return headerExitBlock(*Plan.L);
}

//===----------------------------------------------------------------------===//
// Pipeline (DSWP / PS-DSWP)
//===----------------------------------------------------------------------===//

/// Static routing tables shared by all pipeline workers.
struct PipelineTables {
  static constexpr int Replicated = -1;
  static constexpr int Outside = -2;

  unsigned NumStages = 0;
  unsigned NumThreads = 0;
  /// Iteration->replica policy for parallel stages. Routing (who sends to
  /// whom at which iteration) hangs off this, so it must be a pure
  /// function every stage thread evaluates identically — true dynamic
  /// claiming is impossible here; schedReplicaOf mirrors each policy's
  /// chunking shape deterministically instead (see Runtime/Sched.h).
  SchedPolicy Sched = SchedPolicy::Static;
  std::vector<unsigned> StageFirstThread; // Stage -> first thread id.
  std::vector<unsigned> StageReplicas;
  std::vector<unsigned> ThreadStage; // Thread -> stage.
  std::vector<unsigned> ThreadReplica;
  unsigned MergeThread = 0;
  bool HasSequentialStage = false;

  // Indexed by instruction id within the loop function.
  std::vector<int> Owner; // Stage, Replicated, or Outside.
  std::vector<uint64_t> ConsumerStages;    // Bitmask of consuming stages.
  std::vector<char> ReplConsumerInHeader;  // Consumed by a replicated
                                           // instruction in the header.
  std::vector<char> ReplConsumerElsewhere; // ... elsewhere in the loop.
  std::vector<uint64_t> StoreReceivers;    // StoreLocal: referencing stages.
  std::vector<uint64_t> MemTokenStages;    // Memory-dependent stages.

  /// Sub-loop skipping: a stage that owns and consumes nothing inside a
  /// sub-loop jumps from its header straight to its unique exit instead of
  /// tracing it (otherwise the inner branch-condition traffic would couple
  /// its clock to the owning stage once per *inner* iteration).
  struct SubloopInfo {
    unsigned ExitBlock = 0;
    uint64_t SkipStageMask = 0;
  };
  std::map<unsigned, SubloopInfo> Subloops; // Keyed by header block id.
  /// Instruction id -> header block id of its (outermost strict) sub-loop,
  /// or -1 when directly in the target loop.
  std::vector<int> SubloopOfInstr;

  unsigned threadOf(unsigned Stage, uint64_t Iter) const {
    if (StageReplicas[Stage] <= 1)
      return StageFirstThread[Stage];
    return StageFirstThread[Stage] +
           schedReplicaOf(Sched, Iter, StageReplicas[Stage]);
  }

  bool stageParallel(unsigned Stage) const {
    return StageReplicas[Stage] > 1;
  }
};

PipelineTables buildTables(const ParallelPlan &Plan) {
  PipelineTables T;
  const Function &F = *Plan.F;
  const Loop &L = *Plan.L;

  T.NumStages = static_cast<unsigned>(Plan.Stages.size());
  T.Sched = Plan.Sched;
  unsigned NextThread = 0;
  int FirstSeqStage = -1;
  for (unsigned S = 0; S < T.NumStages; ++S) {
    T.StageFirstThread.push_back(NextThread);
    T.StageReplicas.push_back(Plan.Stages[S].Replicas);
    for (unsigned R = 0; R < Plan.Stages[S].Replicas; ++R) {
      T.ThreadStage.push_back(S);
      T.ThreadReplica.push_back(R);
      ++NextThread;
    }
    if (!Plan.Stages[S].Parallel && FirstSeqStage < 0)
      FirstSeqStage = static_cast<int>(S);
  }
  T.NumThreads = NextThread;
  T.HasSequentialStage = FirstSeqStage >= 0;
  T.MergeThread = FirstSeqStage >= 0
                      ? T.StageFirstThread[FirstSeqStage]
                      : 0;

  unsigned NumInstrs = F.NumInstrs;
  T.Owner.assign(NumInstrs, PipelineTables::Outside);
  T.ConsumerStages.assign(NumInstrs, 0);
  T.ReplConsumerInHeader.assign(NumInstrs, 0);
  T.ReplConsumerElsewhere.assign(NumInstrs, 0);
  T.StoreReceivers.assign(NumInstrs, 0);
  T.MemTokenStages.assign(NumInstrs, 0);

  // Node index -> instruction mapping comes from the plan's PDG indices:
  // rebuild the loop's instruction list in program order (same order the
  // PDG used).
  std::vector<const Instruction *> LoopInstrs;
  for (const auto &BB : F.Blocks) {
    if (!L.BlockIds.count(BB->Id))
      continue;
    for (const auto &Instr : BB->Instrs)
      LoopInstrs.push_back(Instr.get());
  }

  for (unsigned Node = 0; Node < LoopInstrs.size(); ++Node) {
    const Instruction *Instr = LoopInstrs[Node];
    if (Node < Plan.MemTokenStages.size())
      T.MemTokenStages[Instr->Id] = Plan.MemTokenStages[Node];
    if (Node < Plan.StoreReceiverStages.size())
      T.StoreReceivers[Instr->Id] = Plan.StoreReceiverStages[Node];
    if (Plan.ReplicatedNodes.count(Node)) {
      T.Owner[Instr->Id] = PipelineTables::Replicated;
      continue;
    }
    for (unsigned S = 0; S < T.NumStages; ++S)
      if (Plan.Stages[S].OwnedNodes.count(Node))
        T.Owner[Instr->Id] = static_cast<int>(S);
  }

  // Consumers: register operands.
  for (const Instruction *Instr : LoopInstrs) {
    int ConsumerOwner = T.Owner[Instr->Id];
    bool InHeader = Instr->Parent == L.Header;
    for (const Operand &Op : Instr->Operands) {
      if (!Op.isInstr())
        continue;
      unsigned DefId = Op.Def->Id;
      if (DefId >= NumInstrs || T.Owner[DefId] == PipelineTables::Outside)
        continue;
      if (ConsumerOwner == PipelineTables::Replicated) {
        if (InHeader)
          T.ReplConsumerInHeader[DefId] = 1;
        else
          T.ReplConsumerElsewhere[DefId] = 1;
      } else if (ConsumerOwner >= 0) {
        T.ConsumerStages[DefId] |= uint64_t(1) << ConsumerOwner;
      }
    }
  }

  // Store receivers came from the plan (PDG reaching-definition edges).

  // Sub-loop skip analysis.
  T.SubloopOfInstr.assign(NumInstrs, -1);
  {
    DomTree DT = computeDominators(F);
    LoopInfo LI = LoopInfo::compute(F, DT);
    for (const auto &Sub : LI.loops()) {
      // Direct children of the target loop only (the LoopInfo here is a
      // fresh computation, so compare loops by header block).
      if (!Sub->Parent || Sub->Parent->Header->Id != L.Header->Id)
        continue;
      PipelineTables::SubloopInfo Info;
      // Unique exit block required for skipping.
      std::set<unsigned> Exits;
      for (unsigned BlockId : Sub->BlockIds)
        for (BasicBlock *Succ : F.Blocks[BlockId]->successors())
          if (!Sub->BlockIds.count(Succ->Id))
            Exits.insert(Succ->Id);
      bool Skippable = Exits.size() == 1;
      if (Skippable)
        Info.ExitBlock = *Exits.begin();

      uint64_t NeedMask = 0; // Stages that own or consume inside.
      for (unsigned BlockId : Sub->BlockIds) {
        for (const auto &Instr : F.Blocks[BlockId]->Instrs) {
          unsigned Id = Instr->Id;
          T.SubloopOfInstr[Id] = static_cast<int>(Sub->Header->Id);
          if (T.Owner[Id] >= 0)
            NeedMask |= uint64_t(1) << T.Owner[Id];
          NeedMask |= T.ConsumerStages[Id] | T.MemTokenStages[Id];
          if (Instr->op() == Opcode::StoreLocal)
            NeedMask |= T.StoreReceivers[Id];
          if (T.ReplConsumerInHeader[Id])
            NeedMask = ~uint64_t(0); // Everyone traces it.
        }
      }
      if (Skippable) {
        Info.SkipStageMask = ~NeedMask;
        T.Subloops[Sub->Header->Id] = Info;
      }
    }
  }

  if (getenv("COMMSET_DEBUG_TABLES")) {
    for (const Instruction *Instr : LoopInstrs) {
      unsigned Id = Instr->Id;
      uint64_t Mask = T.ConsumerStages[Id] | T.MemTokenStages[Id];
      if (Instr->op() == Opcode::StoreLocal)
        Mask |= T.StoreReceivers[Id];
      bool Cross = false;
      for (unsigned S = 0; S < T.NumStages; ++S)
        if ((Mask >> S) & 1 && static_cast<int>(S) != T.Owner[Id])
          Cross = true;
      if (Cross || T.ReplConsumerElsewhere[Id] ||
          T.ReplConsumerInHeader[Id])
        fprintf(stderr,
                "node i%u owner=%d consumers=%llx store=%llx tok=%llx "
                "replH=%d replE=%d sub=%d\n",
                Id, T.Owner[Id],
                (unsigned long long)T.ConsumerStages[Id],
                (unsigned long long)T.StoreReceivers[Id],
                (unsigned long long)T.MemTokenStages[Id],
                (int)T.ReplConsumerInHeader[Id],
                (int)T.ReplConsumerElsewhere[Id], T.SubloopOfInstr[Id]);
    }
  }
  return T;
}

class PipelineWorker {
public:
  PipelineWorker(ParallelRegion &Region, const PipelineTables &T,
                 const Frame &EntryFrame, unsigned ThreadId)
      : Region(Region), Plan(Region.Plan), L(*Plan.L), T(T),
        Interp(Region.M, Region.Natives, Region.Globals,
               Region.workerSyncFor(), &Region.Platform, ThreadId,
               Region.Backend),
        Fr(EntryFrame), ThreadId(ThreadId),
        MyStage(T.ThreadStage[ThreadId]),
        MyReplica(T.ThreadReplica[ThreadId]),
        MyReplicas(T.StageReplicas[MyStage]) {}

  /// Runs the whole loop; returns the block where control left it.
  const BasicBlock *run() {
    const Function &F = *Plan.F;
    const BasicBlock *BB = L.Header;
    while (true) {
      // Sub-loops this stage neither owns nor consumes from are skipped
      // wholesale (no tracing, no pops).
      auto SkipIt = T.Subloops.find(BB->Id);
      if (SkipIt != T.Subloops.end() &&
          (SkipIt->second.SkipStageMask >> MyStage) & 1) {
        BB = F.Blocks[SkipIt->second.ExitBlock].get();
        continue;
      }

      bool InHeader = BB == L.Header;
      if (InHeader)
        Region.checkpoint(ThreadId);
      processBlockBody(BB, InHeader);

      const Instruction *Term = BB->terminator();
      const BasicBlock *Next;
      Region.Platform.charge(ThreadId, Interpreter::opCost(Term));
      if (Term->op() == Opcode::Br) {
        Next = Term->Succ0;
      } else {
        assert(Term->op() == Opcode::CondBr &&
               "loops with return exits are rejected by the planner");
        bool Taken = Interp.evalOperand(Fr, Term->Operands[0]).I != 0;
        Next = Taken ? Term->Succ0 : Term->Succ1;
      }

      if (!L.BlockIds.count(Next->Id)) {
        finishAtExit();
        Iterations = IterIdx;
        return Next;
      }

      if (InHeader && isParallelStage() && !assigned(IterIdx)) {
        // Fast-forward a non-assigned iteration.
        if (Plan.ReplicatedControl && Plan.InductionLocal != ~0u)
          Fr.Locals[Plan.InductionLocal].I += Plan.InductionStep;
        ++IterIdx;
        BB = L.Header;
        continue;
      }

      if (Next == L.Header)
        ++IterIdx; // Completed iteration IterIdx.
      BB = Next;
    }
  }

  uint64_t iterations() const { return Iterations; }
  Frame &frame() { return Fr; }

private:
  bool isParallelStage() const { return MyReplicas > 1; }
  /// Must agree with PipelineTables::threadOf — both sides of every queue
  /// derive routing from the same schedReplicaOf mapping.
  bool assigned(uint64_t Iter) const {
    return !isParallelStage() ||
           schedReplicaOf(T.Sched, Iter, MyReplicas) == MyReplica;
  }

  void finishAtExit() { Region.Platform.threadDone(ThreadId); }

  void processBlockBody(const BasicBlock *BB, bool InHeader) {
    for (const auto &InstrPtr : BB->Instrs) {
      const Instruction *Instr = InstrPtr.get();
      if (Instr->isTerminator())
        break;
      processInstr(Instr, InHeader);
    }
  }

  void sendTo(unsigned Thread, RtValue Value) {
    if (Thread != ThreadId)
      Region.Platform.send(ThreadId, Thread, Value);
  }

  /// Send targets for a value I produced (owned node) at IterIdx.
  void broadcast(const Instruction *Instr, RtValue Value, bool InHeader) {
    unsigned Id = Instr->Id;
    std::vector<char> Sent(T.NumThreads, 0);
    auto markAndSend = [&](unsigned Thread) {
      if (Thread != ThreadId && !Sent[Thread]) {
        Sent[Thread] = 1;
        Region.Platform.send(ThreadId, Thread, Value);
      }
    };

    uint64_t Mask = T.ConsumerStages[Id] | T.MemTokenStages[Id];
    if (Instr->op() == Opcode::StoreLocal)
      Mask |= T.StoreReceivers[Id];
    for (unsigned S = 0; S < T.NumStages; ++S)
      if (Mask & (uint64_t(1) << S))
        markAndSend(T.threadOf(S, IterIdx));

    if (T.ReplConsumerInHeader[Id]) {
      for (unsigned Thread = 0; Thread < T.NumThreads; ++Thread)
        markAndSend(Thread);
    } else if (T.ReplConsumerElsewhere[Id]) {
      // Replicated consumers (inner terminators) run in every *tracing*
      // stage; stages skipping this node's sub-loop never see it.
      int Sub = T.SubloopOfInstr[Id];
      uint64_t SkipMask =
          Sub >= 0 ? T.Subloops.count(Sub)
                         ? T.Subloops.at(static_cast<unsigned>(Sub))
                               .SkipStageMask
                         : 0
                   : 0;
      for (unsigned S = 0; S < T.NumStages; ++S)
        if (!((SkipMask >> S) & 1))
          markAndSend(T.threadOf(S, IterIdx));
    }
  }

  /// Do I consume this foreign node here?
  bool needs(const Instruction *Instr, bool InHeader) const {
    unsigned Id = Instr->Id;
    if (T.ReplConsumerInHeader[Id] || T.ReplConsumerElsewhere[Id])
      return true;
    uint64_t Mask = T.ConsumerStages[Id] | T.MemTokenStages[Id];
    if (Instr->op() == Opcode::StoreLocal)
      Mask |= T.StoreReceivers[Id];
    return (Mask & (uint64_t(1) << MyStage)) != 0;
  }

  void processInstr(const Instruction *Instr, bool InHeader) {
    int Owner = T.Owner[Instr->Id];
    if (Owner == PipelineTables::Replicated) {
      Interp.execInstr(Fr, Instr);
      return;
    }
    assert(Owner >= 0 && "loop instruction without an owner");

    if (static_cast<unsigned>(Owner) == MyStage) {
      Interp.execInstr(Fr, Instr);
      RtValue Value = TokenValue;
      if (Instr->op() == Opcode::StoreLocal)
        Value = Fr.Locals[Instr->SlotId];
      else if (Instr->producesValue())
        Value = Fr.Regs[Instr->Id];
      broadcast(Instr, Value, InHeader);
      return;
    }

    // Foreign node: pop it if I consume it.
    if (!needs(Instr, InHeader))
      return;
    unsigned OwnerThread = T.threadOf(static_cast<unsigned>(Owner), IterIdx);
    RtValue Value = Region.Platform.recv(OwnerThread, ThreadId);
    if (Instr->op() == Opcode::StoreLocal)
      Fr.Locals[Instr->SlotId] = Value;
    else if (Instr->producesValue())
      Fr.Regs[Instr->Id] = Value;
    // Pure memory tokens are dropped after the ordering they provide.
  }

  ParallelRegion &Region;
  const ParallelPlan &Plan;
  const Loop &L;
  const PipelineTables &T;
  Interpreter Interp;
  Frame Fr;
  unsigned ThreadId;
  unsigned MyStage;
  unsigned MyReplica;
  unsigned MyReplicas;
  uint64_t IterIdx = 0;
  uint64_t Iterations = 0;
};

const BasicBlock *runPipeline(ParallelRegion &Region, Frame &MainFrame,
                              LoopRunStats *Stats) {
  PipelineTables T = buildTables(Region.Plan);

  Region.beginPrivRegion();
  std::vector<std::unique_ptr<PipelineWorker>> Workers(T.NumThreads);
  for (unsigned Tid = 0; Tid < T.NumThreads; ++Tid)
    Workers[Tid] =
        std::make_unique<PipelineWorker>(Region, T, MainFrame, Tid);

  std::vector<const BasicBlock *> ExitBlocks(T.NumThreads, nullptr);
  std::vector<std::function<void()>> Tasks;
  for (unsigned Tid = 0; Tid < T.NumThreads; ++Tid)
    Tasks.push_back(
        [&Workers, &ExitBlocks, Tid] { ExitBlocks[Tid] = Workers[Tid]->run(); });
  RegionTraceScope TraceScope(Region.Plan.Kind, Tasks.size());
  Region.Platform.regionBegin(0);
  Region.runRegion(Tasks);
  Region.Platform.regionEnd(0);
  Region.mergePriv();

  // All threads observed the same control flow.
  for (unsigned Tid = 1; Tid < T.NumThreads; ++Tid)
    assert(ExitBlocks[Tid] == ExitBlocks[0] && "divergent pipeline traces");

  // The planner rejects pipelines with live-out locals, and the induction
  // variable is replicated (fast-forwarded on skipped iterations), so
  // every worker's frame agrees on everything the code after the loop may
  // read.
  MainFrame.Locals = Workers[0]->frame().Locals;
  if (Stats)
    Stats->Iterations = Workers[0]->iterations();
  return ExitBlocks[0];
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

RtValue commset::runFunctionWithPlan(const Module &M,
                                     const NativeRegistry &Natives,
                                     RtValue *Globals,
                                     const ParallelPlan &Plan,
                                     const Function *F,
                                     const std::vector<RtValue> &Args,
                                     ExecPlatform &Platform,
                                     LoopRunStats *Stats,
                                     const ResilienceConfig *Resilience,
                                     const ExecBackend *Backend) {
  ParallelRegion Region(M, Natives, Globals, Plan, Platform, Resilience,
                        Backend);
  Interpreter Main(M, Natives, Globals,
                   Plan.Kind == Strategy::Sequential ? SyncContext()
                                                     : Region.syncFor(),
                   &Platform, /*ThreadId=*/0, Backend);

  // Sequential plan + native entry for the whole function: run it native
  // end to end instead of stepping the driver loop below (the per-
  // instruction walk exists to intercept the parallel loop's header, which
  // a sequential plan never needs).
  if (Backend && Plan.Kind == Strategy::Sequential && Backend->entryFor(F)) {
    RtValue R = Main.call(F, Args);
    Platform.threadDone(0);
    return R;
  }

  Frame Fr = Main.makeFrame(F, Args);
  const BasicBlock *BB = F->entry();
  size_t Idx = 0;
  while (true) {
    if (Plan.Kind != Strategy::Sequential && Plan.F == F &&
        BB == Plan.L->Header && Idx == 0) {
      const BasicBlock *ExitBlock =
          Plan.Kind == Strategy::Doall ? runDoall(Region, Fr, Stats)
                                       : runPipeline(Region, Fr, Stats);
      assert(ExitBlock && "parallel loop must have an exit");
      BB = ExitBlock;
      Idx = 0;
      continue;
    }

    const Instruction *Instr = BB->Instrs[Idx].get();
    switch (Instr->op()) {
    case Opcode::Br:
      Platform.charge(0, Interpreter::opCost(Instr));
      BB = Instr->Succ0;
      Idx = 0;
      continue;
    case Opcode::CondBr: {
      Platform.charge(0, Interpreter::opCost(Instr));
      bool Taken = Main.evalOperand(Fr, Instr->Operands[0]).I != 0;
      BB = Taken ? Instr->Succ0 : Instr->Succ1;
      Idx = 0;
      continue;
    }
    case Opcode::Ret:
      Platform.charge(0, Interpreter::opCost(Instr));
      Platform.threadDone(0);
      if (!Instr->Operands.empty())
        return Main.evalOperand(Fr, Instr->Operands[0]);
      return RtValue();
    default:
      Main.execInstr(Fr, Instr);
      ++Idx;
      continue;
    }
  }
}

ResilientOutcome commset::runFunctionResilient(
    const Module &M, const NativeRegistry &Natives,
    std::vector<RtValue> &Globals, const ParallelPlan &Plan,
    const Function *F, const std::vector<RtValue> &Args,
    const PlatformFactory &MakePlatform, const ResilienceConfig *Resilience,
    const std::function<void()> &ResetState,
    const std::function<void(ExecPlatform &, bool Degraded)> &OnRunDone,
    const ExecBackend *Backend) {
  ResilientOutcome Out;
  try {
    std::unique_ptr<ExecPlatform> Platform = MakePlatform(Plan.NumThreads);
    Out.Result = runFunctionWithPlan(M, Natives, Globals.data(), Plan, F,
                                     Args, *Platform, &Out.Stats, Resilience,
                                     Backend);
    if (OnRunDone)
      OnRunDone(*Platform, /*Degraded=*/false);
    return Out;
  } catch (const RegionFault &Fault) {
    Out.Degraded = true;
    Out.Why = Fault.Kind;
    Out.FaultThread = Fault.Thread;
    Out.Diagnostic = Fault.what();
    trace::emit(trace::EventKind::Degrade, Fault.Thread,
                static_cast<uint64_t>(Fault.Kind));
  }

  // Deadline faults skip the sequential re-execution: the wall-clock
  // budget is already spent, so re-running would only double the damage
  // under overload. Partial state is still discarded (fresh globals,
  // caller reset) so the process stays clean; the result slot is the
  // default RtValue and callers must treat it as untrustworthy.
  if (Out.Why == FaultKind::DeadlineExceeded) {
    if (ResetState)
      ResetState();
    Globals = makeGlobalImage(M);
    Out.Stats = {};
    Out.Result = RtValue();
    return Out;
  }

  // Guaranteed fallback: every scrap of partial parallel state is
  // discarded — fresh global image, caller-reset native state, a brand-new
  // single-thread platform — and the whole function re-executes
  // sequentially, which reproduces the sequential reference exactly.
  if (ResetState)
    ResetState();
  Globals = makeGlobalImage(M);
  ParallelPlan Seq;
  Seq.Kind = Strategy::Sequential;
  Seq.F = Plan.F;
  Seq.L = Plan.L;
  Seq.NumThreads = 1;
  Out.Stats = {};
  std::unique_ptr<ExecPlatform> Platform = MakePlatform(1);
  // The fallback stays on the backend: native sequential execution is
  // semantically identical to interpretation (that is the differential
  // oracle's invariant), just faster.
  Out.Result = runFunctionWithPlan(M, Natives, Globals.data(), Seq, F, Args,
                                   *Platform, &Out.Stats,
                                   /*Resilience=*/nullptr, Backend);
  if (OnRunDone)
    OnRunDone(*Platform, /*Degraded=*/true);
  return Out;
}
