//===- ThreadedPlatform.cpp -----------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Exec/ThreadedPlatform.h"

#include <cassert>

using namespace commset;

ThreadedPlatform::ThreadedPlatform(unsigned NumThreads, FaultInjector *Faults)
    : NumThreads(NumThreads), Faults(Faults) {
  Queues.resize(static_cast<size_t>(NumThreads) * NumThreads);
  for (unsigned From = 0; From < NumThreads; ++From) {
    for (unsigned To = 0; To < NumThreads; ++To) {
      auto &Q = Queues[static_cast<size_t>(From) * NumThreads + To];
      Q = std::make_unique<SpscQueue<RtValue>>(4096);
      // CommTrace queue identity: (from<<16)|to mirrors the index layout.
      Q->setTraceIds((From << 16) | To, From, To);
    }
  }
}

void ThreadedPlatform::send(unsigned From, unsigned To, RtValue Value) {
  assert(From < NumThreads && To < NumThreads && "thread id out of range");
  if (!Queues[static_cast<size_t>(From) * NumThreads + To]->pushWait(Value))
    throw RegionFault(FaultKind::Cancelled, From, "send on cancelled region");
}

RtValue ThreadedPlatform::recv(unsigned From, unsigned To) {
  assert(From < NumThreads && To < NumThreads && "thread id out of range");
  if (Faults)
    Faults->maybeDelay(FaultKind::QueueStall, To);
  RtValue Value;
  if (!Queues[static_cast<size_t>(From) * NumThreads + To]->popWait(Value))
    throw RegionFault(FaultKind::Cancelled, To, "recv on cancelled region");
  return Value;
}

void ThreadedPlatform::cancel() {
  for (auto &Q : Queues)
    Q->poison();
}

void ThreadedPlatform::resourceEnter(unsigned Thread,
                                     const std::string &Name) {
  std::mutex *Resource;
  {
    std::lock_guard<std::mutex> Guard(ResourceMapLock);
    auto &Slot = Resources[Name];
    if (!Slot)
      Slot = std::make_unique<std::mutex>();
    Resource = Slot.get();
  }
  Resource->lock();
}

void ThreadedPlatform::resourceExit(unsigned Thread,
                                    const std::string &Name) {
  std::lock_guard<std::mutex> Guard(ResourceMapLock);
  Resources[Name]->unlock();
}