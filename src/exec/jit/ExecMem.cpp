//===- ExecMem.cpp --------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "ExecMem.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define COMMSET_JIT_HAVE_MMAP 1
#else
#define COMMSET_JIT_HAVE_MMAP 0
#endif

using namespace commset;
using namespace commset::jit;

std::unique_ptr<ExecMem> ExecMem::seal(const std::vector<uint8_t> &Code) {
#if COMMSET_JIT_HAVE_MMAP
  if (Code.empty())
    return nullptr;
  long Page = sysconf(_SC_PAGESIZE);
  if (Page <= 0)
    Page = 4096;
  size_t Len = (Code.size() + static_cast<size_t>(Page) - 1) &
               ~(static_cast<size_t>(Page) - 1);
  void *P = mmap(nullptr, Len, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return nullptr;
  std::memcpy(P, Code.data(), Code.size());
  if (mprotect(P, Len, PROT_READ | PROT_EXEC) != 0) {
    munmap(P, Len);
    return nullptr;
  }
  return std::unique_ptr<ExecMem>(new ExecMem(P, Len));
#else
  (void)Code;
  return nullptr;
#endif
}

ExecMem::~ExecMem() {
#if COMMSET_JIT_HAVE_MMAP
  munmap(Base, Size);
#endif
}
