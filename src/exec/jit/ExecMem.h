//===- ExecMem.h - W^X executable code region --------------------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One mmap'd code region per JitBackend. The lifecycle never holds a
/// writable+executable mapping: the region is mapped RW, the finished code
/// buffer is copied in, and the whole region is flipped to RX before any
/// entry pointer escapes. Destruction munmaps, so backends can be created
/// and destroyed in a loop without leaking mappings (the page-lifecycle
/// test pins this).
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_EXEC_JIT_EXECMEM_H
#define COMMSET_EXEC_JIT_EXECMEM_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace commset {
namespace jit {

class ExecMem {
public:
  /// Maps a fresh region, copies \p Code into it and seals it RX.
  /// Returns null on mmap/mprotect failure or empty input.
  static std::unique_ptr<ExecMem> seal(const std::vector<uint8_t> &Code);

  ~ExecMem();
  ExecMem(const ExecMem &) = delete;
  ExecMem &operator=(const ExecMem &) = delete;

  const uint8_t *base() const { return static_cast<const uint8_t *>(Base); }
  size_t size() const { return Size; }

private:
  ExecMem(void *Base, size_t Size) : Base(Base), Size(Size) {}
  void *Base;
  size_t Size; // Page-rounded mapping length.
};

} // namespace jit
} // namespace commset

#endif // COMMSET_EXEC_JIT_EXECMEM_H
