//===- JitBackend.cpp - Baseline x86-64 template JIT ----------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
//
// Code generation model (DESIGN.md §8):
//
//   * Registers: r12 = &Frame.Regs[0], r13 = &Frame.Locals[0],
//     r14 = ExecBackendCtx*. rax/rcx/rdx and xmm0/xmm1 are stencil
//     scratch. Every instruction result is stored to Regs[id] (byte offset
//     8*id) — a memory-to-memory baseline, no register allocation.
//   * Escape opcodes (Call, CallNative, LoadGlobal, StoreGlobal) trampoline
//     into Interpreter::execInstr, which keeps member synchronization,
//     privatization replicas, STM, platform hooks, tracing and fault
//     injection byte-identical to interpreted execution. The helper
//     catches C++ exceptions (native frames carry no unwind tables),
//     parks them in the context and returns a flag; the stencil tests the
//     flag and jumps to the epilogue.
//   * I64 division is guarded at both idiv trap points: divisor 0 -> 0,
//     INT64_MIN / -1 -> INT64_MIN (rem 0), matching the interpreter's
//     defined wrap semantics. F64 follows IEEE-754 (divsd / libm fmod).
//
//===----------------------------------------------------------------------===//

#include "commset/Exec/JitBackend.h"

#include "commset/Exec/Interpreter.h"
#include "commset/IR/IR.h"
#include "commset/IR/Verifier.h"

#include "ExecMem.h"

#ifndef COMMSET_JIT
#if defined(__x86_64__) || defined(_M_X64)
#define COMMSET_JIT 1
#else
#define COMMSET_JIT 0
#endif
#endif

#if COMMSET_JIT
#include "X64Emitter.h"
#endif

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <exception>

using namespace commset;

static_assert(sizeof(RtValue) == 8,
              "JIT addresses Frame.Regs as an array of 8-byte cells");
static_assert(offsetof(ExecBackendCtx, Regs) == 16 &&
                  offsetof(ExecBackendCtx, Locals) == 24,
              "prologue bakes in ExecBackendCtx field offsets");

#if COMMSET_JIT

namespace {

/// Trampoline for escape opcodes. Returns nonzero when the interpreted
/// instruction threw; the exception is parked in Ctx->Exc and rethrown by
/// Interpreter::runNative after native code unwinds its own frame.
extern "C" uint64_t commsetJitExecInstr(ExecBackendCtx *Ctx,
                                        const Instruction *Instr) {
  try {
    Ctx->Interp->execInstr(*Ctx->Fr, Instr);
    return 0;
  } catch (...) {
    *static_cast<std::exception_ptr *>(Ctx->Exc) = std::current_exception();
    return 1;
  }
}

/// F64 Rem: IEEE remainder via libm, through a fixed-ABI shim so the
/// stencil can movabs its address.
extern "C" double commsetJitFmod(double A, double B) {
  return std::fmod(A, B);
}

} // namespace

using namespace commset::jit;

namespace {

/// Compiles one function into \p Code. Returns false (and the caller
/// truncates) when the body uses something the baseline declines.
class FnCompiler {
public:
  FnCompiler(const Function &F, const Module &M, std::vector<uint8_t> &Code,
             const JitOptions &Opts)
      : F(F), M(M), Start(Code.size()), E(Code), Opts(Opts) {}

  bool run() {
    for (const auto &BB : F.Blocks)
      Labels[BB.get()];
    prologue();
    // entry() is Blocks.front(), so control falls from the prologue into
    // the entry block.
    for (const auto &BB : F.Blocks) {
      E.bind(Labels[BB.get()]);
      for (const auto &Instr : BB->Instrs) {
        emitInstr(Instr.get());
        if (!OK)
          return false;
        if (E.here() - Start > Opts.MaxFunctionBytes)
          return false;
      }
      // An unterminated block would fall through into an unrelated block;
      // the verifier forbids it, but decline rather than trust.
      if (!BB->terminator())
        return false;
    }
    epilogue();
    // All labels must have bound (every Succ points at a block of F).
    return OK;
  }

private:
  void prologue() {
    E.push(RBP);
    E.movRR(RBP, RSP);
    E.push(RBX);
    E.push(R12);
    E.push(R13);
    E.push(R14);
    // 5 pushes: entry rsp was 8 mod 16, so rsp is now 16-byte aligned for
    // the helper calls below.
    E.movRR(R14, RDI);
    E.load(R12, RDI, 16); // Ctx->Regs
    E.load(R13, RDI, 24); // Ctx->Locals
  }

  void epilogue() {
    E.bind(Epilogue);
    E.pop(R14);
    E.pop(R13);
    E.pop(R12);
    E.pop(RBX);
    E.pop(RBP);
    E.ret();
  }

  int32_t regOff(const Instruction *Instr) {
    if (Instr->Id == ~0u || Instr->Id > (1u << 24)) {
      OK = false;
      return 0;
    }
    return static_cast<int32_t>(8 * Instr->Id);
  }

  int32_t slotOff(unsigned Slot) {
    if (Slot > (1u << 24)) {
      OK = false;
      return 0;
    }
    return static_cast<int32_t>(8 * Slot);
  }

  /// Loads an operand's 8-byte bit pattern into a GPR (doubles travel as
  /// bits; movq moves them into xmm where needed).
  void loadOp(unsigned Dst, const Operand &Op) {
    switch (Op.K) {
    case Operand::Kind::Instr:
      E.load(Dst, R12, regOff(Op.Def));
      return;
    case Operand::Kind::ConstInt:
      E.movImm64(Dst, static_cast<uint64_t>(Op.IntVal));
      return;
    case Operand::Kind::ConstFloat: {
      uint64_t Bits;
      std::memcpy(&Bits, &Op.FloatVal, sizeof(Bits));
      E.movImm64(Dst, Bits);
      return;
    }
    case Operand::Kind::ConstStr:
      // The module outlives the backend; the table entry's buffer is
      // stable, so bake the pointer (same value evalOperand produces).
      E.movImm64(Dst, reinterpret_cast<uint64_t>(
                          M.StringTable[Op.StrId].c_str()));
      return;
    case Operand::Kind::ConstNull:
      E.movImm64(Dst, 0);
      return;
    case Operand::Kind::None:
      break;
    }
    OK = false;
  }

  void storeResult(const Instruction *Instr) {
    E.store(RAX, R12, regOff(Instr));
  }

  /// rdi = ctx, rsi = instr, call the trampoline, bail to the epilogue on
  /// a parked exception.
  void emitEscape(const Instruction *Instr) {
    E.movRR(RDI, R14);
    E.movImm64(RSI, reinterpret_cast<uint64_t>(Instr));
    E.movImm64(RAX, reinterpret_cast<uint64_t>(&commsetJitExecInstr));
    E.callR(RAX);
    E.testRR(RAX, RAX);
    E.jcc(CcNe, Epilogue);
  }

  void emitIntDivRem(const Instruction *Instr, bool IsRem) {
    Emitter::Label Zero, DoDiv, Done;
    loadOp(RAX, Instr->Operands[0]);
    loadOp(RCX, Instr->Operands[1]);
    E.testRR(RCX, RCX);
    E.jcc(CcE, Zero);
    E.cmpImm8(RCX, -1);
    E.jcc(CcNe, DoDiv);
    E.movImm64(RDX, static_cast<uint64_t>(INT64_MIN));
    E.cmpRR(RAX, RDX);
    E.jcc(CcNe, DoDiv);
    // INT64_MIN / -1: quotient wraps to INT64_MIN (already in rax),
    // remainder is 0.
    if (IsRem)
      E.zeroR(RAX);
    E.jmp(Done);
    E.bind(DoDiv);
    E.cqo();
    E.idivR(RCX);
    if (IsRem)
      E.movRR(RAX, RDX);
    E.jmp(Done);
    E.bind(Zero);
    E.zeroR(RAX);
    E.bind(Done);
    storeResult(Instr);
  }

  void emitBinArith(const Instruction *Instr) {
    if (Instr->type() == IRType::F64) {
      loadOp(RAX, Instr->Operands[0]);
      E.movqXG(XMM0, RAX);
      loadOp(RCX, Instr->Operands[1]);
      E.movqXG(XMM1, RCX);
      switch (Instr->op()) {
      case Opcode::Add:
        E.addsd(XMM0, XMM1);
        break;
      case Opcode::Sub:
        E.subsd(XMM0, XMM1);
        break;
      case Opcode::Mul:
        E.mulsd(XMM0, XMM1);
        break;
      case Opcode::Div:
        E.divsd(XMM0, XMM1);
        break;
      default: // Rem: args already in xmm0/xmm1, SysV-ready.
        E.movImm64(RAX, reinterpret_cast<uint64_t>(&commsetJitFmod));
        E.callR(RAX);
        break;
      }
      E.movqGX(RAX, XMM0);
      storeResult(Instr);
      return;
    }
    if (Instr->op() == Opcode::Div || Instr->op() == Opcode::Rem) {
      emitIntDivRem(Instr, Instr->op() == Opcode::Rem);
      return;
    }
    loadOp(RAX, Instr->Operands[0]);
    loadOp(RCX, Instr->Operands[1]);
    switch (Instr->op()) {
    case Opcode::Add:
      E.addRR(RAX, RCX);
      break;
    case Opcode::Sub:
      E.subRR(RAX, RCX);
      break;
    default:
      E.imulRR(RAX, RCX);
      break;
    }
    storeResult(Instr);
  }

  void emitCompare(const Instruction *Instr) {
    // Operand type detection mirrors Interpreter::execInstr exactly.
    const Operand &Op0 = Instr->Operands[0];
    bool IsFloat, IsPtr;
    if (Op0.isInstr()) {
      IsFloat = Op0.Def->type() == IRType::F64;
      IsPtr = Op0.Def->type() == IRType::Ptr;
    } else {
      IsFloat = Op0.K == Operand::Kind::ConstFloat;
      IsPtr = Op0.K == Operand::Kind::ConstNull ||
              Op0.K == Operand::Kind::ConstStr;
    }
    loadOp(RAX, Instr->Operands[0]);
    loadOp(RCX, Instr->Operands[1]);
    if (IsFloat) {
      E.movqXG(XMM0, RAX);
      E.movqXG(XMM1, RCX);
      // NaN-correct scalar compares: ucomisd sets ZF/PF/CF; unordered sets
      // all three. Eq must also check !PF, Ne must or in PF, and the
      // ordered relations use the unsigned-style conditions (CF-based)
      // with operands swapped for Lt/Le so unordered falls out false.
      switch (Instr->op()) {
      case Opcode::Eq:
        E.ucomisd(XMM0, XMM1);
        E.setcc(CcE, RAX);
        E.setcc(CcNp, RCX);
        E.andB(RAX, RCX);
        break;
      case Opcode::Ne:
        E.ucomisd(XMM0, XMM1);
        E.setcc(CcNe, RAX);
        E.setcc(CcP, RCX);
        E.orB(RAX, RCX);
        break;
      case Opcode::Lt:
        E.ucomisd(XMM1, XMM0);
        E.setcc(CcA, RAX);
        break;
      case Opcode::Le:
        E.ucomisd(XMM1, XMM0);
        E.setcc(CcAe, RAX);
        break;
      case Opcode::Gt:
        E.ucomisd(XMM0, XMM1);
        E.setcc(CcA, RAX);
        break;
      default: // Ge
        E.ucomisd(XMM0, XMM1);
        E.setcc(CcAe, RAX);
        break;
      }
    } else if (IsPtr) {
      // Interpreter semantics: pointers only distinguish Eq; every other
      // comparison opcode behaves as Ne.
      E.cmpRR(RAX, RCX);
      E.setcc(Instr->op() == Opcode::Eq ? CcE : CcNe, RAX);
    } else {
      E.cmpRR(RAX, RCX);
      Cc C;
      switch (Instr->op()) {
      case Opcode::Eq:
        C = CcE;
        break;
      case Opcode::Ne:
        C = CcNe;
        break;
      case Opcode::Lt:
        C = CcL;
        break;
      case Opcode::Le:
        C = CcLe;
        break;
      case Opcode::Gt:
        C = CcG;
        break;
      default:
        C = CcGe;
        break;
      }
      E.setcc(C, RAX);
    }
    E.movzxB(RAX, RAX);
    storeResult(Instr);
  }

  void emitInstr(const Instruction *Instr) {
    switch (Instr->op()) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
      emitBinArith(Instr);
      return;
    case Opcode::Eq:
    case Opcode::Ne:
    case Opcode::Lt:
    case Opcode::Le:
    case Opcode::Gt:
    case Opcode::Ge:
      emitCompare(Instr);
      return;
    case Opcode::Neg:
      loadOp(RAX, Instr->Operands[0]);
      if (Instr->type() == IRType::F64) {
        E.movImm64(RCX, 0x8000000000000000ULL); // flip the sign bit
        E.xorRR(RAX, RCX);
      } else {
        E.negR(RAX); // wraps: -INT64_MIN == INT64_MIN
      }
      storeResult(Instr);
      return;
    case Opcode::Not:
      loadOp(RAX, Instr->Operands[0]);
      E.testRR(RAX, RAX);
      E.setcc(CcE, RAX);
      E.movzxB(RAX, RAX);
      storeResult(Instr);
      return;
    case Opcode::IntToFp:
      loadOp(RAX, Instr->Operands[0]);
      E.cvtsi2sd(XMM0, RAX);
      E.movqGX(RAX, XMM0);
      storeResult(Instr);
      return;
    case Opcode::FpToInt:
      // cvttsd2si's out-of-range/NaN result (0x8000...0) is the opcode's
      // defined value; the interpreter range-checks to the same answer.
      loadOp(RAX, Instr->Operands[0]);
      E.movqXG(XMM0, RAX);
      E.cvttsd2si(RAX, XMM0);
      storeResult(Instr);
      return;
    case Opcode::LoadLocal:
      E.load(RAX, R13, slotOff(Instr->SlotId));
      storeResult(Instr);
      return;
    case Opcode::StoreLocal:
      loadOp(RAX, Instr->Operands[0]);
      E.store(RAX, R13, slotOff(Instr->SlotId));
      return;
    case Opcode::LoadGlobal:
    case Opcode::StoreGlobal:
    case Opcode::Call:
    case Opcode::CallNative:
      // Full-effects path (sync, priv replicas, STM, hooks, tracing,
      // faults): trampoline into the interpreter.
      emitEscape(Instr);
      return;
    case Opcode::Br:
      E.jmp(labelOf(Instr->Succ0));
      return;
    case Opcode::CondBr:
      loadOp(RAX, Instr->Operands[0]);
      E.testRR(RAX, RAX);
      E.jcc(CcNe, labelOf(Instr->Succ0));
      E.jmp(labelOf(Instr->Succ1));
      return;
    case Opcode::Ret:
      if (!Instr->Operands.empty())
        loadOp(RAX, Instr->Operands[0]);
      else
        E.zeroR(RAX);
      E.jmp(Epilogue);
      return;
    }
    OK = false;
  }

  Emitter::Label &labelOf(const BasicBlock *BB) {
    auto It = Labels.find(BB);
    if (It == Labels.end()) {
      OK = false;
      return Epilogue;
    }
    return It->second;
  }

  const Function &F;
  const Module &M;
  size_t Start;
  Emitter E;
  const JitOptions &Opts;
  std::unordered_map<const BasicBlock *, Emitter::Label> Labels;
  Emitter::Label Epilogue;
  bool OK = true;
};

} // namespace

#endif // COMMSET_JIT

JitBackend::JitBackend() = default;
JitBackend::~JitBackend() = default;

bool JitBackend::supported() {
#if COMMSET_JIT
  return true;
#else
  return false;
#endif
}

size_t JitBackend::codeBytes() const { return Mem ? Mem->size() : 0; }

ExecBackend::NativeEntry JitBackend::entryFor(const Function *F) const {
  auto It = Entries.find(F);
  return It == Entries.end() ? nullptr : It->second;
}

std::unique_ptr<JitBackend> JitBackend::create(const Module &M,
                                               const JitOptions &Opts) {
#if COMMSET_JIT
  std::unique_ptr<JitBackend> B(new JitBackend());
  std::vector<uint8_t> Code;
  std::vector<std::pair<const Function *, size_t>> Offsets;
  for (const auto &FPtr : M.Functions) {
    const Function *F = FPtr.get();
    if (F->Blocks.empty() || F->NumInstrs == 0 ||
        std::find(Opts.DenyFunctions.begin(), Opts.DenyFunctions.end(),
                  F->Name) != Opts.DenyFunctions.end()) {
      ++B->Fallbacks;
      continue;
    }
    // Malformed IR (bad types, dangling slots) runs "successfully" on the
    // interpreter's untagged registers but compiles to diverging or
    // crashing native code — never hand it to the emitter.
    if (!verifyFunctionIR(*F, M, nullptr)) {
      ++B->Fallbacks;
      continue;
    }
    // 16-byte entry alignment; int3 padding so a stray fall-through traps.
    while (Code.size() % 16 != 0)
      Code.push_back(0xCC);
    size_t Start = Code.size();
    FnCompiler C(*F, M, Code, Opts);
    if (!C.run()) {
      Code.resize(Start);
      ++B->Fallbacks;
      continue;
    }
    Offsets.emplace_back(F, Start);
    ++B->Compiled;
  }
  if (Offsets.empty())
    return nullptr; // nothing compiled; run interpreted, no empty page
  B->Mem = jit::ExecMem::seal(Code);
  if (!B->Mem)
    return nullptr; // mmap/mprotect refused; caller reports, not UB
  for (const auto &[F, Off] : Offsets)
    B->Entries[F] = reinterpret_cast<NativeEntry>(
        const_cast<uint8_t *>(B->Mem->base() + Off));
  return B;
#else
  (void)M;
  (void)Opts;
  return nullptr;
#endif
}
