//===- X64Emitter.h - Minimal x86-64 instruction emitter --------*- C++ -*-===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Just enough of an x86-64 encoder for the template JIT: 64-bit ALU ops,
/// scalar-double SSE2, movabs, setcc, and rel32 branches with back-patched
/// labels. Memory operands are always [base + disp32] (mod=10), which
/// sidesteps the RBP/R13 zero-displacement and keeps every stencil one
/// shape. Emits into a caller-owned byte buffer; the buffer is copied into
/// an ExecMem region once a module is fully compiled, so everything emitted
/// here must be position-independent except movabs absolutes (which are).
///
//===----------------------------------------------------------------------===//

#ifndef COMMSET_EXEC_JIT_X64EMITTER_H
#define COMMSET_EXEC_JIT_X64EMITTER_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace commset {
namespace jit {

enum Gpr : unsigned {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R12 = 12,
  R13 = 13,
  R14 = 14,
};

enum XmmReg : unsigned { XMM0 = 0, XMM1 = 1 };

/// Condition codes (low nibble of the 0F 8x / 0F 9x opcodes).
enum Cc : uint8_t {
  CcB = 0x2,  // below (CF)
  CcAe = 0x3, // above-or-equal (!CF)
  CcE = 0x4,  // equal (ZF)
  CcNe = 0x5, // not equal (!ZF)
  CcA = 0x7,  // above (!CF && !ZF)
  CcP = 0xA,  // parity (unordered after ucomisd)
  CcNp = 0xB, // no parity
  CcL = 0xC,  // less (signed)
  CcGe = 0xD,
  CcLe = 0xE,
  CcG = 0xF,
};

class Emitter {
public:
  explicit Emitter(std::vector<uint8_t> &Buf) : Buf(Buf) {}

  /// Branch target; lives with the caller. Forward references are recorded
  /// and patched when the label binds.
  struct Label {
    ptrdiff_t Pos = -1;
    std::vector<size_t> Refs; // Offsets of unpatched rel32 fields.
  };

  size_t here() const { return Buf.size(); }

  void bind(Label &L) {
    L.Pos = static_cast<ptrdiff_t>(Buf.size());
    for (size_t At : L.Refs)
      patchRel32(At, L.Pos);
    L.Refs.clear();
  }

  void jmp(Label &L) {
    u8(0xE9);
    rel32(L);
  }

  void jcc(Cc C, Label &L) {
    u8(0x0F);
    u8(0x80 + C);
    rel32(L);
  }

  /// movabs reg, imm64.
  void movImm64(unsigned R, uint64_t V) {
    u8(0x48 | (R >> 3));
    u8(0xB8 + (R & 7));
    u64(V);
  }

  /// mov dst, [base + disp] (64-bit load).
  void load(unsigned Dst, unsigned Base, int32_t Disp) {
    memOp(0x8B, Dst, Base, Disp);
  }

  /// mov [base + disp], src (64-bit store).
  void store(unsigned Src, unsigned Base, int32_t Disp) {
    memOp(0x89, Src, Base, Disp);
  }

  void movRR(unsigned Dst, unsigned Src) { aluRR(0x89, Dst, Src); }
  void addRR(unsigned Dst, unsigned Src) { aluRR(0x01, Dst, Src); }
  void subRR(unsigned Dst, unsigned Src) { aluRR(0x29, Dst, Src); }
  void xorRR(unsigned Dst, unsigned Src) { aluRR(0x31, Dst, Src); }
  void cmpRR(unsigned Dst, unsigned Src) { aluRR(0x39, Dst, Src); }
  void testRR(unsigned Dst, unsigned Src) { aluRR(0x85, Dst, Src); }

  void imulRR(unsigned Dst, unsigned Src) {
    u8(0x48 | ((Dst >> 3) << 2) | (Src >> 3));
    u8(0x0F);
    u8(0xAF);
    u8(0xC0 | ((Dst & 7) << 3) | (Src & 7));
  }

  void negR(unsigned R) {
    u8(0x48 | (R >> 3));
    u8(0xF7);
    u8(0xD8 | (R & 7));
  }

  /// cmp reg, imm8 (sign-extended).
  void cmpImm8(unsigned R, int8_t Imm) {
    u8(0x48 | (R >> 3));
    u8(0x83);
    u8(0xF8 | (R & 7));
    u8(static_cast<uint8_t>(Imm));
  }

  void cqo() {
    u8(0x48);
    u8(0x99);
  }

  void idivR(unsigned R) {
    u8(0x48 | (R >> 3));
    u8(0xF7);
    u8(0xF8 | (R & 7));
  }

  /// xor r32, r32 — canonical 64-bit zeroing (low GPRs only).
  void zeroR(unsigned R) {
    u8(0x31);
    u8(0xC0 | ((R & 7) << 3) | (R & 7));
  }

  /// setcc on a low byte register (AL/CL/DL/BL only — no REX emitted).
  void setcc(Cc C, unsigned R8) {
    u8(0x0F);
    u8(0x90 + C);
    u8(0xC0 | (R8 & 7));
  }

  /// movzx dst64, src8 (low byte regs).
  void movzxB(unsigned Dst, unsigned Src8) {
    u8(0x48 | ((Dst >> 3) << 2));
    u8(0x0F);
    u8(0xB6);
    u8(0xC0 | ((Dst & 7) << 3) | (Src8 & 7));
  }

  void andB(unsigned Dst8, unsigned Src8) {
    u8(0x20);
    u8(0xC0 | ((Src8 & 7) << 3) | (Dst8 & 7));
  }

  void orB(unsigned Dst8, unsigned Src8) {
    u8(0x08);
    u8(0xC0 | ((Src8 & 7) << 3) | (Dst8 & 7));
  }

  /// movq xmm, gpr.
  void movqXG(unsigned X, unsigned R) {
    u8(0x66);
    u8(0x48 | ((X >> 3) << 2) | (R >> 3));
    u8(0x0F);
    u8(0x6E);
    u8(0xC0 | ((X & 7) << 3) | (R & 7));
  }

  /// movq gpr, xmm.
  void movqGX(unsigned R, unsigned X) {
    u8(0x66);
    u8(0x48 | ((X >> 3) << 2) | (R >> 3));
    u8(0x0F);
    u8(0x7E);
    u8(0xC0 | ((X & 7) << 3) | (R & 7));
  }

  void addsd(unsigned Dst, unsigned Src) { sse(0x58, Dst, Src); }
  void subsd(unsigned Dst, unsigned Src) { sse(0x5C, Dst, Src); }
  void mulsd(unsigned Dst, unsigned Src) { sse(0x59, Dst, Src); }
  void divsd(unsigned Dst, unsigned Src) { sse(0x5E, Dst, Src); }

  void ucomisd(unsigned A, unsigned B) {
    u8(0x66);
    u8(0x0F);
    u8(0x2E);
    u8(0xC0 | ((A & 7) << 3) | (B & 7));
  }

  void cvtsi2sd(unsigned X, unsigned R) {
    u8(0xF2);
    u8(0x48 | ((X >> 3) << 2) | (R >> 3));
    u8(0x0F);
    u8(0x2A);
    u8(0xC0 | ((X & 7) << 3) | (R & 7));
  }

  void cvttsd2si(unsigned R, unsigned X) {
    u8(0xF2);
    u8(0x48 | ((R >> 3) << 2) | (X >> 3));
    u8(0x0F);
    u8(0x2C);
    u8(0xC0 | ((R & 7) << 3) | (X & 7));
  }

  void callR(unsigned R) {
    if (R >> 3)
      u8(0x41);
    u8(0xFF);
    u8(0xD0 | (R & 7));
  }

  void push(unsigned R) {
    if (R >> 3)
      u8(0x41);
    u8(0x50 + (R & 7));
  }

  void pop(unsigned R) {
    if (R >> 3)
      u8(0x41);
    u8(0x58 + (R & 7));
  }

  void ret() { u8(0xC3); }

  void int3() { u8(0xCC); }

private:
  void u8(uint8_t V) { Buf.push_back(V); }

  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  /// Two-operand 64-bit ALU form "op r/m64, r64": Dst in r/m, Src in reg.
  void aluRR(uint8_t Op, unsigned Dst, unsigned Src) {
    u8(0x48 | ((Src >> 3) << 2) | (Dst >> 3));
    u8(Op);
    u8(0xC0 | ((Src & 7) << 3) | (Dst & 7));
  }

  /// [base + disp32] memory form; SIB byte when base is RSP/R12-encoded.
  void memOp(uint8_t Op, unsigned Reg, unsigned Base, int32_t Disp) {
    u8(0x48 | ((Reg >> 3) << 2) | (Base >> 3));
    u8(Op);
    if ((Base & 7) == 4) {
      u8(0x84 | ((Reg & 7) << 3));
      u8(0x24);
    } else {
      u8(0x80 | ((Reg & 7) << 3) | (Base & 7));
    }
    u32(static_cast<uint32_t>(Disp));
  }

  /// Scalar-double SSE op (xmm0/xmm1 only — no REX emitted).
  void sse(uint8_t Op, unsigned Dst, unsigned Src) {
    u8(0xF2);
    u8(0x0F);
    u8(Op);
    u8(0xC0 | ((Dst & 7) << 3) | (Src & 7));
  }

  void rel32(Label &L) {
    if (L.Pos >= 0) {
      u32(static_cast<uint32_t>(L.Pos -
                                static_cast<ptrdiff_t>(Buf.size() + 4)));
    } else {
      L.Refs.push_back(Buf.size());
      u32(0);
    }
  }

  void patchRel32(size_t At, ptrdiff_t Target) {
    int32_t Rel = static_cast<int32_t>(Target -
                                       static_cast<ptrdiff_t>(At + 4));
    std::memcpy(&Buf[At], &Rel, sizeof(Rel));
  }

  std::vector<uint8_t> &Buf;
};

} // namespace jit
} // namespace commset

#endif // COMMSET_EXEC_JIT_X64EMITTER_H
