//===- IR.cpp -------------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/IR/IR.h"

using namespace commset;

const char *commset::irTypeName(IRType Type) {
  switch (Type) {
  case IRType::Void:
    return "void";
  case IRType::I64:
    return "i64";
  case IRType::F64:
    return "f64";
  case IRType::Ptr:
    return "ptr";
  }
  return "?";
}

const char *commset::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::Eq:
    return "eq";
  case Opcode::Ne:
    return "ne";
  case Opcode::Lt:
    return "lt";
  case Opcode::Le:
    return "le";
  case Opcode::Gt:
    return "gt";
  case Opcode::Ge:
    return "ge";
  case Opcode::Neg:
    return "neg";
  case Opcode::Not:
    return "not";
  case Opcode::IntToFp:
    return "inttofp";
  case Opcode::FpToInt:
    return "fptoint";
  case Opcode::LoadLocal:
    return "ldloc";
  case Opcode::StoreLocal:
    return "stloc";
  case Opcode::LoadGlobal:
    return "ldglob";
  case Opcode::StoreGlobal:
    return "stglob";
  case Opcode::Call:
    return "call";
  case Opcode::CallNative:
    return "callnative";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Ret:
    return "ret";
  }
  return "?";
}

bool commset::isTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
}

bool commset::isCall(Opcode Op) {
  return Op == Opcode::Call || Op == Opcode::CallNative;
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  Instruction *Term = terminator();
  if (!Term)
    return {};
  switch (Term->op()) {
  case Opcode::Br:
    return {Term->Succ0};
  case Opcode::CondBr:
    return {Term->Succ0, Term->Succ1};
  default:
    return {};
  }
}

BasicBlock *Function::makeBlock(std::string BlockName) {
  Blocks.push_back(std::make_unique<BasicBlock>(this, std::move(BlockName)));
  return Blocks.back().get();
}

unsigned Function::numberInstructions() {
  unsigned NextInstr = 0;
  unsigned NextBlock = 0;
  for (auto &BB : Blocks) {
    BB->Id = NextBlock++;
    for (auto &Instr : BB->Instrs)
      Instr->Id = NextInstr++;
  }
  NumInstrs = NextInstr;
  return NextInstr;
}

std::vector<Instruction *> Function::instructions() const {
  std::vector<Instruction *> Result;
  for (const auto &BB : Blocks)
    for (const auto &Instr : BB->Instrs)
      Result.push_back(Instr.get());
  return Result;
}

std::vector<std::vector<BasicBlock *>> Function::predecessors() const {
  std::vector<std::vector<BasicBlock *>> Preds(Blocks.size());
  for (const auto &BB : Blocks)
    for (BasicBlock *Succ : BB->successors())
      Preds[Succ->Id].push_back(BB.get());
  return Preds;
}

Function *Module::findFunction(const std::string &Name) const {
  for (const auto &F : Functions)
    if (F->Name == Name)
      return F.get();
  return nullptr;
}

NativeDecl *Module::findNative(const std::string &Name) const {
  for (const auto &N : Natives)
    if (N->Name == Name)
      return N.get();
  return nullptr;
}

int Module::findGlobal(const std::string &Name) const {
  for (size_t I = 0; I < Globals.size(); ++I)
    if (Globals[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

unsigned Module::internString(const std::string &Text) {
  for (size_t I = 0; I < StringTable.size(); ++I)
    if (StringTable[I] == Text)
      return static_cast<unsigned>(I);
  StringTable.push_back(Text);
  return static_cast<unsigned>(StringTable.size() - 1);
}

unsigned Module::internEffectClass(const std::string &Name) {
  for (size_t I = 0; I < EffectClasses.size(); ++I)
    if (EffectClasses[I] == Name)
      return static_cast<unsigned>(I);
  EffectClasses.push_back(Name);
  return static_cast<unsigned>(EffectClasses.size() - 1);
}

Function *Module::makeFunction(std::string Name, IRType ReturnType) {
  Functions.push_back(
      std::make_unique<Function>(std::move(Name), ReturnType));
  return Functions.back().get();
}

NativeDecl *Module::makeNative(std::string Name, IRType ReturnType,
                               std::vector<IRType> ParamTypes) {
  auto N = std::make_unique<NativeDecl>();
  N->Name = std::move(Name);
  N->ReturnType = ReturnType;
  N->ParamTypes = std::move(ParamTypes);
  Natives.push_back(std::move(N));
  return Natives.back().get();
}
