//===- IRBuilder.cpp ------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/IR/IRBuilder.h"

#include <cassert>

using namespace commset;

Instruction *IRBuilder::insert(std::unique_ptr<Instruction> Instr,
                               SourceLoc Loc) {
  assert(Block && "no insertion block set");
  assert(!blockTerminated() && "inserting after a terminator");
  Instr->Loc = Loc;
  return Block->append(std::move(Instr));
}

Instruction *IRBuilder::createBinary(Opcode Op, IRType Type, Operand LHS,
                                     Operand RHS, SourceLoc Loc) {
  auto Instr = std::make_unique<Instruction>(Op, Type);
  Instr->Operands = {LHS, RHS};
  return insert(std::move(Instr), Loc);
}

Instruction *IRBuilder::createCompare(Opcode Op, Operand LHS, Operand RHS,
                                      SourceLoc Loc) {
  auto Instr = std::make_unique<Instruction>(Op, IRType::I64);
  Instr->Operands = {LHS, RHS};
  return insert(std::move(Instr), Loc);
}

Instruction *IRBuilder::createNeg(IRType Type, Operand Value, SourceLoc Loc) {
  auto Instr = std::make_unique<Instruction>(Opcode::Neg, Type);
  Instr->Operands = {Value};
  return insert(std::move(Instr), Loc);
}

Instruction *IRBuilder::createNot(Operand Value, SourceLoc Loc) {
  auto Instr = std::make_unique<Instruction>(Opcode::Not, IRType::I64);
  Instr->Operands = {Value};
  return insert(std::move(Instr), Loc);
}

Instruction *IRBuilder::createIntToFp(Operand Value, SourceLoc Loc) {
  auto Instr = std::make_unique<Instruction>(Opcode::IntToFp, IRType::F64);
  Instr->Operands = {Value};
  return insert(std::move(Instr), Loc);
}

Instruction *IRBuilder::createFpToInt(Operand Value, SourceLoc Loc) {
  auto Instr = std::make_unique<Instruction>(Opcode::FpToInt, IRType::I64);
  Instr->Operands = {Value};
  return insert(std::move(Instr), Loc);
}

Instruction *IRBuilder::createLoadLocal(unsigned LocalId, IRType Type,
                                        SourceLoc Loc) {
  auto Instr = std::make_unique<Instruction>(Opcode::LoadLocal, Type);
  Instr->SlotId = LocalId;
  return insert(std::move(Instr), Loc);
}

Instruction *IRBuilder::createStoreLocal(unsigned LocalId, Operand Value,
                                         SourceLoc Loc) {
  auto Instr = std::make_unique<Instruction>(Opcode::StoreLocal, IRType::Void);
  Instr->SlotId = LocalId;
  Instr->Operands = {Value};
  return insert(std::move(Instr), Loc);
}

Instruction *IRBuilder::createLoadGlobal(unsigned GlobalId, IRType Type,
                                         SourceLoc Loc) {
  auto Instr = std::make_unique<Instruction>(Opcode::LoadGlobal, Type);
  Instr->SlotId = GlobalId;
  return insert(std::move(Instr), Loc);
}

Instruction *IRBuilder::createStoreGlobal(unsigned GlobalId, Operand Value,
                                          SourceLoc Loc) {
  auto Instr =
      std::make_unique<Instruction>(Opcode::StoreGlobal, IRType::Void);
  Instr->SlotId = GlobalId;
  Instr->Operands = {Value};
  return insert(std::move(Instr), Loc);
}

Instruction *IRBuilder::createCall(Function *Callee,
                                   std::vector<Operand> Args, SourceLoc Loc) {
  assert(Callee && "call requires a callee");
  auto Instr = std::make_unique<Instruction>(Opcode::Call,
                                             Callee->ReturnType);
  Instr->Callee = Callee;
  Instr->Operands = std::move(Args);
  return insert(std::move(Instr), Loc);
}

Instruction *IRBuilder::createCallNative(NativeDecl *Native,
                                         std::vector<Operand> Args,
                                         SourceLoc Loc) {
  assert(Native && "native call requires a declaration");
  auto Instr =
      std::make_unique<Instruction>(Opcode::CallNative, Native->ReturnType);
  Instr->Native = Native;
  Instr->Operands = std::move(Args);
  return insert(std::move(Instr), Loc);
}

Instruction *IRBuilder::createBr(BasicBlock *Target, SourceLoc Loc) {
  auto Instr = std::make_unique<Instruction>(Opcode::Br, IRType::Void);
  Instr->Succ0 = Target;
  return insert(std::move(Instr), Loc);
}

Instruction *IRBuilder::createCondBr(Operand Cond, BasicBlock *TrueBB,
                                     BasicBlock *FalseBB, SourceLoc Loc) {
  auto Instr = std::make_unique<Instruction>(Opcode::CondBr, IRType::Void);
  Instr->Operands = {Cond};
  Instr->Succ0 = TrueBB;
  Instr->Succ1 = FalseBB;
  return insert(std::move(Instr), Loc);
}

Instruction *IRBuilder::createRet(Operand Value, SourceLoc Loc) {
  auto Instr = std::make_unique<Instruction>(Opcode::Ret, IRType::Void);
  Instr->Operands = {Value};
  return insert(std::move(Instr), Loc);
}

Instruction *IRBuilder::createRetVoid(SourceLoc Loc) {
  auto Instr = std::make_unique<Instruction>(Opcode::Ret, IRType::Void);
  return insert(std::move(Instr), Loc);
}
