//===- Printer.cpp --------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/IR/Printer.h"

#include "commset/Support/StringUtils.h"

using namespace commset;

static std::string printOperand(const Operand &Op) {
  switch (Op.K) {
  case Operand::Kind::None:
    return "<none>";
  case Operand::Kind::Instr:
    return formatString("%%%u", Op.Def->Id);
  case Operand::Kind::ConstInt:
    return formatString("%lld", static_cast<long long>(Op.IntVal));
  case Operand::Kind::ConstFloat:
    return formatString("%g", Op.FloatVal);
  case Operand::Kind::ConstStr:
    return formatString("str.%u", Op.StrId);
  case Operand::Kind::ConstNull:
    return "null";
  }
  return "?";
}

std::string commset::printInstruction(const Instruction &Instr) {
  std::string Out;
  if (Instr.producesValue())
    Out += formatString("%%%u = ", Instr.Id);
  Out += opcodeName(Instr.op());
  Out += ' ';
  Out += irTypeName(Instr.type());

  switch (Instr.op()) {
  case Opcode::LoadLocal:
  case Opcode::StoreLocal:
    Out += formatString(" $%s",
                        Instr.Parent->Parent->Locals[Instr.SlotId].Name
                            .c_str());
    break;
  case Opcode::LoadGlobal:
  case Opcode::StoreGlobal:
    Out += formatString(" @%u", Instr.SlotId);
    break;
  case Opcode::Call:
    Out += formatString(" %s", Instr.Callee->Name.c_str());
    break;
  case Opcode::CallNative:
    Out += formatString(" !%s", Instr.Native->Name.c_str());
    break;
  case Opcode::Br:
    Out += formatString(" %s", Instr.Succ0->Name.c_str());
    break;
  case Opcode::CondBr:
    Out += formatString(" ? %s : %s", Instr.Succ0->Name.c_str(),
                        Instr.Succ1->Name.c_str());
    break;
  default:
    break;
  }

  bool First = true;
  for (const Operand &Op : Instr.Operands) {
    Out += First ? " " : ", ";
    First = false;
    Out += printOperand(Op);
  }
  return Out;
}

std::string commset::printFunction(const Function &F) {
  std::string Out = formatString("func %s %s(", irTypeName(F.ReturnType),
                                 F.Name.c_str());
  for (unsigned I = 0; I < F.NumParams; ++I) {
    if (I)
      Out += ", ";
    Out += formatString("%s $%s", irTypeName(F.Locals[I].Type),
                        F.Locals[I].Name.c_str());
  }
  Out += ")";
  for (const MemberInstance &MI : F.Members) {
    Out += formatString(" commset(%s", MI.SetName.c_str());
    for (unsigned Param : MI.ArgParams)
      Out += formatString(", $%s", F.Locals[Param].Name.c_str());
    Out += ")";
  }
  Out += " {\n";
  for (const auto &BB : F.Blocks) {
    Out += formatString("%s:\n", BB->Name.c_str());
    for (const auto &Instr : BB->Instrs) {
      Out += "  ";
      Out += printInstruction(*Instr);
      Out += '\n';
    }
  }
  Out += "}\n";
  return Out;
}

std::string commset::printModule(const Module &M) {
  std::string Out;
  for (size_t I = 0; I < M.Globals.size(); ++I)
    Out += formatString("global %s @%zu ; %s\n",
                        irTypeName(M.Globals[I].Type), I,
                        M.Globals[I].Name.c_str());
  for (const auto &N : M.Natives)
    Out += formatString("native %s !%s/%zu\n", irTypeName(N->ReturnType),
                        N->Name.c_str(), N->ParamTypes.size());
  for (const auto &F : M.Functions) {
    Out += printFunction(*F);
    Out += '\n';
  }
  return Out;
}
