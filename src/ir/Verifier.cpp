//===- Verifier.cpp -------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/IR/Verifier.h"

#include "commset/Lang/CommSetAttrs.h"
#include "commset/Support/StringUtils.h"

#include <set>

using namespace commset;

namespace {

/// True when \p MI names a declared set ("SELF" is implicit).
bool memberSetDeclared(const MemberInstance &MI,
                       const std::set<std::string> &DeclaredSets) {
  return MI.SetName == SelfSetKeyword || DeclaredSets.count(MI.SetName) != 0;
}

class FunctionVerifier {
public:
  FunctionVerifier(const Function &F, DiagnosticEngine &Diags,
                   const std::set<std::string> *DeclaredSets)
      : F(F), Diags(Diags), DeclaredSets(DeclaredSets) {}

  bool run() {
    if (F.Blocks.empty()) {
      error("function has no blocks");
      return Ok;
    }
    if (F.NumParams > F.Locals.size())
      error("parameter count exceeds local count");
    std::set<const BasicBlock *> Owned;
    for (const auto &BB : F.Blocks)
      Owned.insert(BB.get());
    for (const auto &BB : F.Blocks)
      verifyBlock(*BB, Owned);
    for (const MemberInstance &MI : F.Members) {
      for (unsigned Param : MI.ArgParams)
        if (Param >= F.NumParams)
          error(formatString("member of '%s' binds out-of-range parameter %u",
                             MI.SetName.c_str(), Param));
      if (DeclaredSets && !memberSetDeclared(MI, *DeclaredSets))
        error(formatString("%s references COMMSET '%s' which is not "
                           "declared in any set",
                           F.IsRegion ? "commutative region" : "member",
                           MI.SetName.c_str()));
    }
    return Ok;
  }

private:
  void error(std::string Message) {
    Diags.error(F.Loc, "verifier: " + F.Name + ": " + std::move(Message));
    Ok = false;
  }

  void verifyBlock(const BasicBlock &BB,
                   const std::set<const BasicBlock *> &Owned) {
    if (BB.Instrs.empty() || !BB.Instrs.back()->isTerminator()) {
      error(formatString("block '%s' does not end in a terminator",
                         BB.Name.c_str()));
      return;
    }
    std::set<const Instruction *> Defined;
    for (size_t I = 0; I < BB.Instrs.size(); ++I) {
      const Instruction &Instr = *BB.Instrs[I];
      if (Instr.isTerminator() && I + 1 != BB.Instrs.size())
        error(formatString("terminator in the middle of block '%s'",
                           BB.Name.c_str()));
      verifyInstr(Instr, Defined, Owned);
      Defined.insert(&Instr);
    }
  }

  void verifyInstr(const Instruction &Instr,
                   const std::set<const Instruction *> &Defined,
                   const std::set<const BasicBlock *> &Owned) {
    for (const Operand &Op : Instr.Operands) {
      if (Op.K == Operand::Kind::None)
        error("operand of kind None");
      if (Op.isInstr()) {
        if (!Op.Def)
          error("register operand with null definition");
        else if (!Defined.count(Op.Def))
          error(formatString("instruction %u uses a register not defined "
                             "earlier in its block",
                             Instr.Id));
        else if (!Op.Def->producesValue())
          error("register operand refers to a void instruction");
      }
    }

    switch (Instr.op()) {
    case Opcode::LoadLocal:
    case Opcode::StoreLocal:
      if (Instr.SlotId >= F.Locals.size())
        error(formatString("local slot %u out of range", Instr.SlotId));
      if (Instr.op() == Opcode::StoreLocal && Instr.Operands.size() != 1)
        error("stloc requires exactly one operand");
      break;
    case Opcode::Call:
      if (!Instr.Callee)
        error("call with null callee");
      else if (Instr.Operands.size() != Instr.Callee->NumParams)
        error(formatString("call to '%s' passes %zu args, expected %u",
                           Instr.Callee->Name.c_str(), Instr.Operands.size(),
                           Instr.Callee->NumParams));
      break;
    case Opcode::CallNative:
      if (!Instr.Native)
        error("native call with null declaration");
      else if (Instr.Operands.size() != Instr.Native->ParamTypes.size())
        error(formatString("native call to '%s' passes %zu args, expected "
                           "%zu",
                           Instr.Native->Name.c_str(), Instr.Operands.size(),
                           Instr.Native->ParamTypes.size()));
      break;
    case Opcode::Br:
      if (!Instr.Succ0 || !Owned.count(Instr.Succ0))
        error("br target not owned by this function");
      break;
    case Opcode::CondBr:
      if (!Instr.Succ0 || !Owned.count(Instr.Succ0) || !Instr.Succ1 ||
          !Owned.count(Instr.Succ1))
        error("condbr target not owned by this function");
      if (Instr.Operands.size() != 1)
        error("condbr requires exactly one condition operand");
      break;
    case Opcode::Ret:
      if (F.ReturnType == IRType::Void && !Instr.Operands.empty())
        error("void function returns a value");
      if (F.ReturnType != IRType::Void && Instr.Operands.size() != 1)
        error("non-void function must return exactly one value");
      break;
    default:
      break;
    }
  }

  const Function &F;
  DiagnosticEngine &Diags;
  const std::set<std::string> *DeclaredSets;
  bool Ok = true;
};
} // namespace

bool commset::verifyFunction(const Function &F, DiagnosticEngine &Diags,
                             const std::set<std::string> *DeclaredSets) {
  return FunctionVerifier(F, Diags, DeclaredSets).run();
}

bool commset::verifyModule(const Module &M, DiagnosticEngine &Diags,
                           const std::set<std::string> *DeclaredSets) {
  bool Ok = true;
  for (const auto &F : M.Functions)
    Ok &= verifyFunction(*F, Diags, DeclaredSets);
  if (DeclaredSets) {
    for (const auto &N : M.Natives)
      for (const MemberInstance &MI : N->Members)
        if (!memberSetDeclared(MI, *DeclaredSets)) {
          Diags.error(N->Loc,
                      formatString("verifier: %s: member references COMMSET "
                                   "'%s' which is not declared in any set",
                                   N->Name.c_str(), MI.SetName.c_str()));
          Ok = false;
        }
  }
  return Ok;
}
