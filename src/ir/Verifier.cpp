//===- Verifier.cpp -------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/IR/Verifier.h"

#include "commset/Lang/CommSetAttrs.h"
#include "commset/Support/StringUtils.h"

#include <set>

using namespace commset;

namespace {

/// True when \p MI names a declared set ("SELF" is implicit).
bool memberSetDeclared(const MemberInstance &MI,
                       const std::set<std::string> &DeclaredSets) {
  return MI.SetName == SelfSetKeyword || DeclaredSets.count(MI.SetName) != 0;
}

class FunctionVerifier {
public:
  FunctionVerifier(const Function &F, DiagnosticEngine &Diags,
                   const std::set<std::string> *DeclaredSets,
                   const Module *M = nullptr)
      : F(F), Diags(Diags), DeclaredSets(DeclaredSets), M(M) {}

  bool run() {
    if (F.Blocks.empty()) {
      error("function has no blocks");
      return Ok;
    }
    if (F.NumParams > F.Locals.size())
      error("parameter count exceeds local count");
    std::set<const BasicBlock *> Owned;
    for (const auto &BB : F.Blocks)
      Owned.insert(BB.get());
    for (const auto &BB : F.Blocks)
      verifyBlock(*BB, Owned);
    for (const MemberInstance &MI : F.Members) {
      for (unsigned Param : MI.ArgParams)
        if (Param >= F.NumParams)
          error(formatString("member of '%s' binds out-of-range parameter %u",
                             MI.SetName.c_str(), Param));
      if (DeclaredSets && !memberSetDeclared(MI, *DeclaredSets))
        error(formatString("%s references COMMSET '%s' which is not "
                           "declared in any set",
                           F.IsRegion ? "commutative region" : "member",
                           MI.SetName.c_str()));
    }
    return Ok;
  }

private:
  void error(std::string Message) {
    Diags.error(F.Loc, "verifier: " + F.Name + ": " + std::move(Message));
    Ok = false;
  }

  void verifyBlock(const BasicBlock &BB,
                   const std::set<const BasicBlock *> &Owned) {
    if (BB.Instrs.empty() || !BB.Instrs.back()->isTerminator()) {
      error(formatString("block '%s' does not end in a terminator",
                         BB.Name.c_str()));
      return;
    }
    std::set<const Instruction *> Defined;
    for (size_t I = 0; I < BB.Instrs.size(); ++I) {
      const Instruction &Instr = *BB.Instrs[I];
      if (Instr.isTerminator() && I + 1 != BB.Instrs.size())
        error(formatString("terminator in the middle of block '%s'",
                           BB.Name.c_str()));
      verifyInstr(Instr, Defined, Owned);
      Defined.insert(&Instr);
    }
  }

  void verifyInstr(const Instruction &Instr,
                   const std::set<const Instruction *> &Defined,
                   const std::set<const BasicBlock *> &Owned) {
    for (const Operand &Op : Instr.Operands) {
      if (Op.K == Operand::Kind::None)
        error("operand of kind None");
      if (Op.isInstr()) {
        if (!Op.Def)
          error("register operand with null definition");
        else if (!Defined.count(Op.Def))
          error(formatString("instruction %u uses a register not defined "
                             "earlier in its block",
                             Instr.Id));
        else if (!Op.Def->producesValue())
          error("register operand refers to a void instruction");
      }
    }

    switch (Instr.op()) {
    case Opcode::LoadLocal:
    case Opcode::StoreLocal:
      if (Instr.SlotId >= F.Locals.size())
        error(formatString("local slot %u out of range", Instr.SlotId));
      if (Instr.op() == Opcode::StoreLocal && Instr.Operands.size() != 1)
        error("stloc requires exactly one operand");
      break;
    case Opcode::Call:
      if (!Instr.Callee)
        error("call with null callee");
      else if (Instr.Operands.size() != Instr.Callee->NumParams)
        error(formatString("call to '%s' passes %zu args, expected %u",
                           Instr.Callee->Name.c_str(), Instr.Operands.size(),
                           Instr.Callee->NumParams));
      break;
    case Opcode::CallNative:
      if (!Instr.Native)
        error("native call with null declaration");
      else if (Instr.Operands.size() != Instr.Native->ParamTypes.size())
        error(formatString("native call to '%s' passes %zu args, expected "
                           "%zu",
                           Instr.Native->Name.c_str(), Instr.Operands.size(),
                           Instr.Native->ParamTypes.size()));
      break;
    case Opcode::Br:
      if (!Instr.Succ0 || !Owned.count(Instr.Succ0))
        error("br target not owned by this function");
      break;
    case Opcode::CondBr:
      if (!Instr.Succ0 || !Owned.count(Instr.Succ0) || !Instr.Succ1 ||
          !Owned.count(Instr.Succ1))
        error("condbr target not owned by this function");
      if (Instr.Operands.size() != 1)
        error("condbr requires exactly one condition operand");
      break;
    case Opcode::Ret:
      if (F.ReturnType == IRType::Void && !Instr.Operands.empty())
        error("void function returns a value");
      if (F.ReturnType != IRType::Void && Instr.Operands.size() != 1)
        error("non-void function must return exactly one value");
      break;
    default:
      break;
    }

    if (M)
      verifyTypes(Instr);
  }

  /// Static type of an operand as the interpreter/JIT will treat it.
  static IRType operandType(const Operand &Op) {
    switch (Op.K) {
    case Operand::Kind::Instr:
      return Op.Def ? Op.Def->type() : IRType::Void;
    case Operand::Kind::ConstInt:
      return IRType::I64;
    case Operand::Kind::ConstFloat:
      return IRType::F64;
    case Operand::Kind::ConstStr:
    case Operand::Kind::ConstNull:
      return IRType::Ptr;
    default:
      return IRType::Void;
    }
  }

  bool checkArity(const Instruction &Instr, size_t N) {
    if (Instr.Operands.size() == N)
      return true;
    error(formatString("%s expects %zu operand(s), has %zu",
                       opcodeName(Instr.op()), N, Instr.Operands.size()));
    return false;
  }

  void checkOperand(const Instruction &Instr, unsigned Idx, IRType Want) {
    IRType Got = operandType(Instr.Operands[Idx]);
    if (Got != Want)
      error(formatString("%s operand %u has type %s, expected %s",
                         opcodeName(Instr.op()), Idx, irTypeName(Got),
                         irTypeName(Want)));
  }

  /// Operand/result type consistency. The interpreter's register file is an
  /// untagged union, so these mismatches run "successfully" there while
  /// reinterpreting bits; compiled code diverges or crashes. Rules mirror
  /// Interpreter.cpp exactly (comparisons infer their width from operand 0).
  void verifyTypes(const Instruction &Instr) {
    switch (Instr.op()) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
      if (Instr.type() != IRType::I64 && Instr.type() != IRType::F64) {
        error(formatString("%s must have type i64 or f64, has %s",
                           opcodeName(Instr.op()),
                           irTypeName(Instr.type())));
        break;
      }
      if (checkArity(Instr, 2)) {
        checkOperand(Instr, 0, Instr.type());
        checkOperand(Instr, 1, Instr.type());
      }
      break;
    case Opcode::Eq:
    case Opcode::Ne:
    case Opcode::Lt:
    case Opcode::Le:
    case Opcode::Gt:
    case Opcode::Ge: {
      if (Instr.type() != IRType::I64)
        error("comparison must produce i64");
      if (!checkArity(Instr, 2))
        break;
      IRType L = operandType(Instr.Operands[0]);
      IRType R = operandType(Instr.Operands[1]);
      if (L != R)
        error(formatString("comparison mixes %s and %s operands",
                           irTypeName(L), irTypeName(R)));
      else if (L == IRType::Void)
        error("comparison of void operands");
      break;
    }
    case Opcode::Neg:
      if (Instr.type() != IRType::I64 && Instr.type() != IRType::F64)
        error("neg must have type i64 or f64");
      else if (checkArity(Instr, 1))
        checkOperand(Instr, 0, Instr.type());
      break;
    case Opcode::Not:
      if (Instr.type() != IRType::I64)
        error("not must produce i64");
      else if (checkArity(Instr, 1))
        checkOperand(Instr, 0, IRType::I64);
      break;
    case Opcode::IntToFp:
      if (Instr.type() != IRType::F64)
        error("inttofp must produce f64");
      else if (checkArity(Instr, 1))
        checkOperand(Instr, 0, IRType::I64);
      break;
    case Opcode::FpToInt:
      if (Instr.type() != IRType::I64)
        error("fptoint must produce i64");
      else if (checkArity(Instr, 1))
        checkOperand(Instr, 0, IRType::F64);
      break;
    case Opcode::LoadLocal:
      if (Instr.SlotId < F.Locals.size() &&
          Instr.type() != F.Locals[Instr.SlotId].Type)
        error(formatString("ldloc of '%s' has type %s, slot is %s",
                           F.Locals[Instr.SlotId].Name.c_str(),
                           irTypeName(Instr.type()),
                           irTypeName(F.Locals[Instr.SlotId].Type)));
      break;
    case Opcode::StoreLocal:
      if (Instr.SlotId < F.Locals.size() && !Instr.Operands.empty())
        checkOperand(Instr, 0, F.Locals[Instr.SlotId].Type);
      break;
    case Opcode::LoadGlobal:
    case Opcode::StoreGlobal: {
      if (Instr.SlotId >= M->Globals.size()) {
        error(formatString("global slot %u out of range", Instr.SlotId));
        break;
      }
      IRType Slot = M->Globals[Instr.SlotId].Type;
      if (Instr.op() == Opcode::LoadGlobal) {
        if (Instr.type() != Slot)
          error(formatString("ldg of '%s' has type %s, global is %s",
                             M->Globals[Instr.SlotId].Name.c_str(),
                             irTypeName(Instr.type()), irTypeName(Slot)));
      } else if (checkArity(Instr, 1)) {
        checkOperand(Instr, 0, Slot);
      }
      break;
    }
    case Opcode::Call:
      if (Instr.Callee &&
          Instr.Operands.size() == Instr.Callee->NumParams) {
        if (Instr.type() != Instr.Callee->ReturnType)
          error(formatString("call to '%s' has type %s, callee returns %s",
                             Instr.Callee->Name.c_str(),
                             irTypeName(Instr.type()),
                             irTypeName(Instr.Callee->ReturnType)));
        for (unsigned I = 0; I < Instr.Callee->NumParams; ++I)
          checkOperand(Instr, I, Instr.Callee->Locals[I].Type);
      }
      break;
    case Opcode::CallNative:
      if (Instr.Native &&
          Instr.Operands.size() == Instr.Native->ParamTypes.size()) {
        if (Instr.type() != Instr.Native->ReturnType)
          error(formatString("native call to '%s' has type %s, native "
                             "returns %s",
                             Instr.Native->Name.c_str(),
                             irTypeName(Instr.type()),
                             irTypeName(Instr.Native->ReturnType)));
        for (unsigned I = 0; I < Instr.Native->ParamTypes.size(); ++I)
          checkOperand(Instr, I, Instr.Native->ParamTypes[I]);
      }
      break;
    case Opcode::CondBr:
      if (Instr.Operands.size() == 1)
        checkOperand(Instr, 0, IRType::I64);
      break;
    case Opcode::Ret:
      if (F.ReturnType != IRType::Void && Instr.Operands.size() == 1)
        checkOperand(Instr, 0, F.ReturnType);
      break;
    default:
      break;
    }
  }

  const Function &F;
  DiagnosticEngine &Diags;
  const std::set<std::string> *DeclaredSets;
  const Module *M;
  bool Ok = true;
};
} // namespace

bool commset::verifyFunction(const Function &F, DiagnosticEngine &Diags,
                             const std::set<std::string> *DeclaredSets) {
  return FunctionVerifier(F, Diags, DeclaredSets).run();
}

bool commset::verifyFunctionIR(const Function &F, const Module &M,
                               std::string *Err) {
  DiagnosticEngine Diags;
  bool Ok = FunctionVerifier(F, Diags, /*DeclaredSets=*/nullptr, &M).run();
  if (!Ok && Err && !Diags.diagnostics().empty())
    *Err = Diags.diagnostics().front().Message;
  return Ok;
}

bool commset::verifyModuleIR(const Module &M, std::string *Err) {
  for (const auto &F : M.Functions)
    if (!verifyFunctionIR(*F, M, Err))
      return false;
  return true;
}

bool commset::verifyModule(const Module &M, DiagnosticEngine &Diags,
                           const std::set<std::string> *DeclaredSets) {
  bool Ok = true;
  for (const auto &F : M.Functions)
    Ok &= verifyFunction(*F, Diags, DeclaredSets);
  if (DeclaredSets) {
    for (const auto &N : M.Natives)
      for (const MemberInstance &MI : N->Members)
        if (!memberSetDeclared(MI, *DeclaredSets)) {
          Diags.error(N->Loc,
                      formatString("verifier: %s: member references COMMSET "
                                   "'%s' which is not declared in any set",
                                   N->Name.c_str(), MI.SetName.c_str()));
          Ok = false;
        }
  }
  return Ok;
}
