//===- AST.cpp ------------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Lang/AST.h"

using namespace commset;

Expr::~Expr() = default;
Stmt::~Stmt() = default;

const char *commset::typeKindName(TypeKind Kind) {
  switch (Kind) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Int:
    return "int";
  case TypeKind::Double:
    return "double";
  case TypeKind::Ptr:
    return "ptr";
  case TypeKind::Str:
    return "str";
  }
  return "unknown";
}

const char *commset::binaryOpName(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::LAnd:
    return "&&";
  case BinaryOp::LOr:
    return "||";
  }
  return "?";
}

FunctionDecl *Program::findFunction(const std::string &Name) const {
  for (const auto &F : Functions)
    if (F->Name == Name)
      return F.get();
  return nullptr;
}
