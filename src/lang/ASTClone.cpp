//===- ASTClone.cpp -------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Lang/ASTClone.h"

#include "commset/Support/Casting.h"

#include <cassert>

using namespace commset;

ExprPtr commset::cloneExpr(const Expr *E) {
  if (!E)
    return nullptr;
  ExprPtr Clone;
  switch (E->kind()) {
  case ExprKind::IntLit: {
    const auto *Lit = cast<IntLitExpr>(E);
    Clone = std::make_unique<IntLitExpr>(Lit->Value, Lit->loc());
    break;
  }
  case ExprKind::FloatLit: {
    const auto *Lit = cast<FloatLitExpr>(E);
    Clone = std::make_unique<FloatLitExpr>(Lit->Value, Lit->loc());
    break;
  }
  case ExprKind::StrLit: {
    const auto *Lit = cast<StrLitExpr>(E);
    Clone = std::make_unique<StrLitExpr>(Lit->Value, Lit->loc());
    break;
  }
  case ExprKind::VarRef: {
    const auto *Ref = cast<VarRefExpr>(E);
    auto NewRef = std::make_unique<VarRefExpr>(Ref->Name, Ref->loc());
    NewRef->IsGlobal = Ref->IsGlobal;
    Clone = std::move(NewRef);
    break;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    Clone = std::make_unique<UnaryExpr>(U->Op, cloneExpr(U->Sub.get()),
                                        U->loc());
    break;
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    Clone = std::make_unique<BinaryExpr>(B->Op, cloneExpr(B->LHS.get()),
                                         cloneExpr(B->RHS.get()), B->loc());
    break;
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(E);
    std::vector<ExprPtr> Args;
    Args.reserve(C->Args.size());
    for (const ExprPtr &Arg : C->Args)
      Args.push_back(cloneExpr(Arg.get()));
    auto NewCall =
        std::make_unique<CallExpr>(C->Callee, std::move(Args), C->loc());
    NewCall->IsNative = C->IsNative;
    Clone = std::move(NewCall);
    break;
  }
  }
  assert(Clone && "unhandled expression kind");
  Clone->Type = E->Type;
  return Clone;
}

StmtPtr commset::cloneStmt(const Stmt *S) {
  if (!S)
    return nullptr;
  switch (S->kind()) {
  case StmtKind::Block: {
    const auto *B = cast<BlockStmt>(S);
    std::vector<StmtPtr> Body;
    Body.reserve(B->Body.size());
    for (const StmtPtr &Sub : B->Body)
      Body.push_back(cloneStmt(Sub.get()));
    auto Clone = std::make_unique<BlockStmt>(std::move(Body), B->loc());
    Clone->Members = B->Members;
    Clone->NamedBlock = B->NamedBlock;
    return Clone;
  }
  case StmtKind::Decl: {
    const auto *D = cast<DeclStmt>(S);
    return std::make_unique<DeclStmt>(D->Type, D->Name,
                                      cloneExpr(D->Init.get()), D->loc());
  }
  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    auto Clone = std::make_unique<AssignStmt>(
        A->Name, cloneExpr(A->Value.get()), A->loc());
    Clone->IsGlobal = A->IsGlobal;
    return Clone;
  }
  case StmtKind::ExprStmt: {
    const auto *E = cast<ExprStmt>(S);
    auto Clone = std::make_unique<ExprStmt>(cloneExpr(E->E.get()), E->loc());
    Clone->Enables = E->Enables;
    return Clone;
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(S);
    return std::make_unique<IfStmt>(cloneExpr(I->Cond.get()),
                                    cloneStmt(I->Then.get()),
                                    cloneStmt(I->Else.get()), I->loc());
  }
  case StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    return std::make_unique<WhileStmt>(cloneExpr(W->Cond.get()),
                                       cloneStmt(W->Body.get()), W->loc());
  }
  case StmtKind::For: {
    const auto *F = cast<ForStmt>(S);
    return std::make_unique<ForStmt>(
        cloneStmt(F->Init.get()), cloneExpr(F->Cond.get()),
        cloneStmt(F->Step.get()), cloneStmt(F->Body.get()), F->loc());
  }
  case StmtKind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    return std::make_unique<ReturnStmt>(cloneExpr(R->Value.get()), R->loc());
  }
  case StmtKind::Break:
    return std::make_unique<BreakStmt>(S->loc());
  case StmtKind::Continue:
    return std::make_unique<ContinueStmt>(S->loc());
  }
  assert(false && "unhandled statement kind");
  return nullptr;
}

std::unique_ptr<FunctionDecl> commset::cloneFunction(const FunctionDecl &F) {
  auto Clone = std::make_unique<FunctionDecl>();
  Clone->ReturnType = F.ReturnType;
  Clone->Name = F.Name;
  Clone->Params = F.Params;
  Clone->IsExtern = F.IsExtern;
  Clone->Loc = F.Loc;
  Clone->Members = F.Members;
  Clone->NamedArgs = F.NamedArgs;
  if (F.Body) {
    StmtPtr Body = cloneStmt(F.Body.get());
    Clone->Body.reset(cast<BlockStmt>(Body.release()));
  }
  return Clone;
}
