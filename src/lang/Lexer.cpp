//===- Lexer.cpp ----------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Lang/Lexer.h"

#include "commset/Support/StringUtils.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace commset;

const char *commset::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Eof:
    return "end of file";
  case TokKind::Identifier:
    return "identifier";
  case TokKind::IntLiteral:
    return "integer literal";
  case TokKind::FloatLiteral:
    return "float literal";
  case TokKind::StringLiteral:
    return "string literal";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwDouble:
    return "'double'";
  case TokKind::KwVoid:
    return "'void'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::KwExtern:
    return "'extern'";
  case TokKind::PragmaCommset:
    return "'#pragma commset'";
  case TokKind::PragmaEnd:
    return "end of pragma";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::Colon:
    return "':'";
  case TokKind::Assign:
    return "'='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Less:
    return "'<'";
  case TokKind::LessEq:
    return "'<='";
  case TokKind::Greater:
    return "'>'";
  case TokKind::GreaterEq:
    return "'>='";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  case TokKind::Not:
    return "'!'";
  case TokKind::PlusPlus:
    return "'++'";
  case TokKind::MinusMinus:
    return "'--'";
  case TokKind::PlusAssign:
    return "'+='";
  case TokKind::MinusAssign:
    return "'-='";
  }
  return "unknown token";
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  if (Pos + Ahead >= Source.size())
    return '\0';
  return Source[Pos + Ahead];
}

char Lexer::advance() {
  assert(!atEnd() && "advance past end of buffer");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (C == '\n' && InPragma)
      return; // PragmaEnd is produced by next().
    if (isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = loc();
      advance();
      advance();
      while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (atEnd()) {
        Diags.error(Start, "unterminated block comment");
        return;
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokKind Kind, SourceLoc Loc, std::string Text) {
  Token Tok;
  Tok.Kind = Kind;
  Tok.Loc = Loc;
  Tok.Text = std::move(Text);
  return Tok;
}

Token Lexer::lexNumber(SourceLoc Loc) {
  size_t Start = Pos;
  while (isdigit(static_cast<unsigned char>(peek())))
    advance();
  bool IsFloat = false;
  if (peek() == '.' && isdigit(static_cast<unsigned char>(peek(1)))) {
    IsFloat = true;
    advance();
    while (isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t Save = Pos;
    advance();
    if (peek() == '+' || peek() == '-')
      advance();
    if (isdigit(static_cast<unsigned char>(peek()))) {
      IsFloat = true;
      while (isdigit(static_cast<unsigned char>(peek())))
        advance();
    } else {
      Pos = Save; // Not an exponent; leave 'e' for identifier lexing.
    }
  }
  std::string Text = Source.substr(Start - 1, Pos - Start + 1);
  Token Tok = makeToken(IsFloat ? TokKind::FloatLiteral : TokKind::IntLiteral,
                        Loc, Text);
  if (IsFloat)
    Tok.FloatValue = strtod(Text.c_str(), nullptr);
  else
    Tok.IntValue = strtoll(Text.c_str(), nullptr, 10);
  return Tok;
}

Token Lexer::lexIdentifier(SourceLoc Loc) {
  size_t Start = Pos - 1;
  while (isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string Text = Source.substr(Start, Pos - Start);

  static const std::unordered_map<std::string, TokKind> Keywords = {
      {"int", TokKind::KwInt},         {"double", TokKind::KwDouble},
      {"void", TokKind::KwVoid},       {"return", TokKind::KwReturn},
      {"if", TokKind::KwIf},           {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},     {"for", TokKind::KwFor},
      {"break", TokKind::KwBreak},     {"continue", TokKind::KwContinue},
      {"extern", TokKind::KwExtern},
  };
  auto It = Keywords.find(Text);
  if (It != Keywords.end())
    return makeToken(It->second, Loc, Text);
  return makeToken(TokKind::Identifier, Loc, Text);
}

Token Lexer::lexString(SourceLoc Loc) {
  std::string Value;
  while (!atEnd() && peek() != '"') {
    char C = advance();
    if (C == '\\' && !atEnd()) {
      char Esc = advance();
      switch (Esc) {
      case 'n':
        Value += '\n';
        break;
      case 't':
        Value += '\t';
        break;
      case '\\':
        Value += '\\';
        break;
      case '"':
        Value += '"';
        break;
      case '0':
        Value += '\0';
        break;
      default:
        Diags.error(loc(), formatString("unknown escape sequence '\\%c'", Esc));
        break;
      }
      continue;
    }
    if (C == '\n') {
      Diags.error(Loc, "unterminated string literal");
      return makeToken(TokKind::StringLiteral, Loc, Value);
    }
    Value += C;
  }
  if (atEnd()) {
    Diags.error(Loc, "unterminated string literal");
    return makeToken(TokKind::StringLiteral, Loc, Value);
  }
  advance(); // Closing quote.
  return makeToken(TokKind::StringLiteral, Loc, Value);
}

Token Lexer::lexPragma(SourceLoc Loc) {
  // '#' already consumed. Expect "pragma" then "commset".
  skipTrivia();
  size_t Start = Pos;
  while (isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string Word = Source.substr(Start, Pos - Start);
  if (Word != "pragma") {
    Diags.error(Loc, "only '#pragma commset' directives are supported");
    // Skip the rest of the line.
    while (!atEnd() && peek() != '\n')
      advance();
    return next();
  }
  skipTrivia();
  Start = Pos;
  while (isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  Word = Source.substr(Start, Pos - Start);
  if (Word != "commset") {
    // Unknown pragmas are ignored (standard compilers must be able to
    // compile annotated programs unchanged; symmetrically we skip theirs).
    while (!atEnd() && peek() != '\n')
      advance();
    return next();
  }
  InPragma = true;
  return makeToken(TokKind::PragmaCommset, Loc, "#pragma commset");
}

Token Lexer::next() {
  skipTrivia();
  SourceLoc Loc = loc();
  if (atEnd()) {
    if (InPragma) {
      InPragma = false;
      return makeToken(TokKind::PragmaEnd, Loc);
    }
    return makeToken(TokKind::Eof, Loc);
  }

  char C = advance();
  if (C == '\n') {
    assert(InPragma && "newline is trivia outside pragma lines");
    InPragma = false;
    return makeToken(TokKind::PragmaEnd, Loc);
  }

  if (isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Loc);
  if (isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifier(Loc);

  switch (C) {
  case '#':
    if (InPragma)
      break;
    return lexPragma(Loc);
  case '"':
    return lexString(Loc);
  case '(':
    return makeToken(TokKind::LParen, Loc);
  case ')':
    return makeToken(TokKind::RParen, Loc);
  case '{':
    return makeToken(TokKind::LBrace, Loc);
  case '}':
    return makeToken(TokKind::RBrace, Loc);
  case ',':
    return makeToken(TokKind::Comma, Loc);
  case ';':
    return makeToken(TokKind::Semi, Loc);
  case ':':
    return makeToken(TokKind::Colon, Loc);
  case '=':
    return makeToken(match('=') ? TokKind::EqEq : TokKind::Assign, Loc);
  case '+':
    if (match('+'))
      return makeToken(TokKind::PlusPlus, Loc);
    if (match('='))
      return makeToken(TokKind::PlusAssign, Loc);
    return makeToken(TokKind::Plus, Loc);
  case '-':
    if (match('-'))
      return makeToken(TokKind::MinusMinus, Loc);
    if (match('='))
      return makeToken(TokKind::MinusAssign, Loc);
    return makeToken(TokKind::Minus, Loc);
  case '*':
    return makeToken(TokKind::Star, Loc);
  case '/':
    return makeToken(TokKind::Slash, Loc);
  case '%':
    return makeToken(TokKind::Percent, Loc);
  case '!':
    return makeToken(match('=') ? TokKind::NotEq : TokKind::Not, Loc);
  case '<':
    return makeToken(match('=') ? TokKind::LessEq : TokKind::Less, Loc);
  case '>':
    return makeToken(match('=') ? TokKind::GreaterEq : TokKind::Greater, Loc);
  case '&':
    if (match('&'))
      return makeToken(TokKind::AmpAmp, Loc);
    break;
  case '|':
    if (match('|'))
      return makeToken(TokKind::PipePipe, Loc);
    break;
  default:
    break;
  }
  Diags.error(Loc, formatString("unexpected character '%c'", C));
  return next();
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Token Tok = next();
    bool IsEof = Tok.is(TokKind::Eof);
    Tokens.push_back(std::move(Tok));
    if (IsEof)
      return Tokens;
  }
}
