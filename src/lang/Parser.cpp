//===- Parser.cpp ---------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Lang/Parser.h"

#include "commset/Support/Casting.h"
#include "commset/Support/StringUtils.h"

#include <cassert>

using namespace commset;

Parser::Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
    : Tokens(std::move(Tokens)), Diags(Diags) {
  assert(!this->Tokens.empty() && this->Tokens.back().is(TokKind::Eof) &&
         "token stream must end with Eof");
}

std::unique_ptr<Program> Parser::parse(const std::string &Source,
                                       DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Diags);
  return P.parseProgram();
}

//===----------------------------------------------------------------------===//
// Token helpers
//===----------------------------------------------------------------------===//

const Token &Parser::peek(unsigned Ahead) const {
  size_t I = Index + Ahead;
  if (I >= Tokens.size())
    I = Tokens.size() - 1; // Eof.
  return Tokens[I];
}

Token Parser::consume() {
  Token Tok = Tokens[Index];
  if (Index + 1 < Tokens.size())
    ++Index;
  return Tok;
}

bool Parser::accept(TokKind Kind) {
  if (!check(Kind))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokKind Kind, const char *Context) {
  if (accept(Kind))
    return true;
  Diags.error(current().Loc,
              formatString("expected %s %s, found %s", tokKindName(Kind),
                           Context, tokKindName(current().Kind)));
  return false;
}

void Parser::synchronizeTopLevel() {
  while (!check(TokKind::Eof)) {
    if (accept(TokKind::Semi))
      return;
    if (check(TokKind::RBrace)) {
      consume();
      return;
    }
    consume();
  }
}

void Parser::synchronizeStmt() {
  while (!check(TokKind::Eof) && !check(TokKind::RBrace)) {
    if (accept(TokKind::Semi))
      return;
    consume();
  }
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> Parser::parseProgram() {
  auto P = std::make_unique<Program>();
  while (!check(TokKind::Eof))
    parseTopLevel(*P);
  if (Pending.anyDeclAttrs())
    Diags.error(Pending.Loc, "dangling COMMSET pragma not attached to any "
                             "declaration or statement");
  return P;
}

std::optional<TypeKind> Parser::parseType() {
  if (accept(TokKind::KwInt))
    return TypeKind::Int;
  if (accept(TokKind::KwDouble))
    return TypeKind::Double;
  if (accept(TokKind::KwVoid))
    return TypeKind::Void;
  if (check(TokKind::Identifier) && current().Text == "ptr") {
    consume();
    return TypeKind::Ptr;
  }
  return std::nullopt;
}

void Parser::parseTopLevel(Program &P) {
  if (check(TokKind::PragmaCommset)) {
    parsePragma(P);
    return;
  }
  bool IsExtern = accept(TokKind::KwExtern);
  if (!parseType()) {
    Diags.error(current().Loc,
                formatString("expected declaration at top level, found %s",
                             tokKindName(current().Kind)));
    synchronizeTopLevel();
    return;
  }
  --Index; // Re-read the type inside parseFunctionOrGlobal.
  parseFunctionOrGlobal(P, IsExtern);
}

void Parser::parseFunctionOrGlobal(Program &P, bool IsExtern) {
  SourceLoc Loc = current().Loc;
  TypeKind Type = *parseType();
  if (!check(TokKind::Identifier)) {
    Diags.error(current().Loc, "expected identifier in declaration");
    synchronizeTopLevel();
    return;
  }
  std::string Name = consume().Text;

  if (check(TokKind::LParen)) {
    // Function.
    consume();
    auto F = std::make_unique<FunctionDecl>();
    F->ReturnType = Type;
    F->Name = std::move(Name);
    F->Params = parseParamList();
    F->IsExtern = IsExtern;
    F->Loc = Loc;
    F->Members = std::move(Pending.Members);
    F->NamedArgs = std::move(Pending.NamedArgs);
    if (!Pending.NamedBlock.empty())
      Diags.error(Pending.Loc, "namedblock pragma cannot apply to a function "
                               "interface; use namedarg");
    if (!Pending.Enables.empty())
      Diags.error(Pending.Loc,
                  "enable pragma must precede a call statement");
    Pending.clear();

    if (accept(TokKind::Semi)) {
      F->IsExtern = true;
      P.Functions.push_back(std::move(F));
      return;
    }
    if (IsExtern)
      Diags.error(Loc, "extern function cannot have a body");
    StmtPtr Body = parseBlock();
    if (Body)
      F->Body.reset(cast<BlockStmt>(Body.release()));
    P.Functions.push_back(std::move(F));
    return;
  }

  // Global variable.
  if (Pending.anyDeclAttrs()) {
    Diags.error(Pending.Loc, "COMMSET pragmas apply to code, not data; "
                             "cannot annotate a global variable");
    Pending.clear();
  }
  if (Type == TypeKind::Void) {
    Diags.error(Loc, "global variable cannot have void type");
    synchronizeTopLevel();
    return;
  }
  GlobalVarDecl G;
  G.Type = Type;
  G.Name = std::move(Name);
  G.Loc = Loc;
  if (accept(TokKind::Assign))
    G.Init = parseExpr();
  expect(TokKind::Semi, "after global variable declaration");
  P.Globals.push_back(std::move(G));
}

std::vector<ParamDecl> Parser::parseParamList() {
  std::vector<ParamDecl> Params;
  if (accept(TokKind::RParen))
    return Params;
  if (check(TokKind::KwVoid) && peek(1).is(TokKind::RParen)) {
    consume();
    consume();
    return Params;
  }
  while (true) {
    SourceLoc Loc = current().Loc;
    auto Type = parseType();
    if (!Type) {
      Diags.error(Loc, "expected parameter type");
      break;
    }
    std::string Name;
    if (check(TokKind::Identifier))
      Name = consume().Text;
    else
      Diags.error(current().Loc, "expected parameter name");
    Params.push_back({*Type, std::move(Name), Loc});
    if (!accept(TokKind::Comma))
      break;
  }
  expect(TokKind::RParen, "after parameter list");
  return Params;
}

//===----------------------------------------------------------------------===//
// Pragmas
//===----------------------------------------------------------------------===//

bool Parser::finishPragmaLine() {
  if (accept(TokKind::PragmaEnd))
    return true;
  Diags.error(current().Loc, "unexpected tokens at end of COMMSET pragma");
  while (!check(TokKind::PragmaEnd) && !check(TokKind::Eof))
    consume();
  accept(TokKind::PragmaEnd);
  return false;
}

void Parser::parsePragma(Program &P) {
  SourceLoc Loc = consume().Loc; // PragmaCommset.
  Pending.Loc = Loc;
  if (!check(TokKind::Identifier)) {
    Diags.error(current().Loc, "expected COMMSET directive name");
    finishPragmaLine();
    return;
  }
  std::string Directive = consume().Text;
  if (Directive == "decl") {
    parseSetDecl(P);
  } else if (Directive == "predicate") {
    parsePredicateDecl(P);
  } else if (Directive == "nosync") {
    parseNoSyncDecl(P);
  } else if (Directive == "sync") {
    parseSyncDecl(P);
  } else if (Directive == "lint_suppress") {
    parseLintSuppress(P);
  } else if (Directive == "effects") {
    parseEffectsDecl(P);
  } else if (Directive == "member") {
    parseMemberPragma();
  } else if (Directive == "namedarg") {
    parseNamedArgPragma();
  } else if (Directive == "namedblock") {
    parseNamedBlockPragma();
  } else if (Directive == "enable") {
    parseEnablePragma();
  } else {
    Diags.error(Loc, formatString("unknown COMMSET directive '%s'",
                                  Directive.c_str()));
  }
  finishPragmaLine();
}

void Parser::parseSetDecl(Program &P) {
  SetDecl D;
  D.Loc = current().Loc;
  if (!expect(TokKind::LParen, "after 'decl'"))
    return;
  if (check(TokKind::Identifier))
    D.Name = consume().Text;
  else
    Diags.error(current().Loc, "expected COMMSET name");
  if (accept(TokKind::Comma)) {
    std::string Kind = check(TokKind::Identifier) ? consume().Text : "";
    if (Kind == "self")
      D.Kind = CommSetKind::Self;
    else if (Kind == "group")
      D.Kind = CommSetKind::Group;
    else
      Diags.error(current().Loc, "COMMSET kind must be 'self' or 'group'");
  }
  expect(TokKind::RParen, "after COMMSET declaration");
  P.SetDecls.push_back(std::move(D));
}

void Parser::parsePredicateDecl(Program &P) {
  PredicateDecl D;
  D.Loc = current().Loc;
  if (!expect(TokKind::LParen, "after 'predicate'"))
    return;
  if (check(TokKind::Identifier))
    D.SetName = consume().Text;
  else
    Diags.error(current().Loc, "expected COMMSET name in predicate");
  expect(TokKind::Comma, "after COMMSET name");
  expect(TokKind::LParen, "before first predicate parameter list");
  D.Params1 = parseParamList();
  expect(TokKind::Comma, "between predicate parameter lists");
  expect(TokKind::LParen, "before second predicate parameter list");
  D.Params2 = parseParamList();
  expect(TokKind::Comma, "before predicate expression");
  D.Predicate = parseExpr();
  expect(TokKind::RParen, "after predicate expression");
  P.Predicates.push_back(std::move(D));
}

void Parser::parseNoSyncDecl(Program &P) {
  NoSyncDecl D;
  D.Loc = current().Loc;
  if (!expect(TokKind::LParen, "after 'nosync'"))
    return;
  if (check(TokKind::Identifier))
    D.SetName = consume().Text;
  else
    Diags.error(current().Loc, "expected COMMSET name");
  expect(TokKind::RParen, "after nosync declaration");
  P.NoSyncs.push_back(std::move(D));
}

void Parser::parseSyncDecl(Program &P) {
  SyncReqDecl D;
  D.Loc = current().Loc;
  if (!expect(TokKind::LParen, "after 'sync'"))
    return;
  if (check(TokKind::Identifier))
    D.SetName = consume().Text;
  else
    Diags.error(current().Loc, "expected COMMSET name");
  expect(TokKind::Comma, "after COMMSET name");
  if (check(TokKind::Identifier))
    D.Mode = consume().Text;
  else
    Diags.error(current().Loc, "expected sync mode (mutex, spin, or tm)");
  expect(TokKind::RParen, "after sync declaration");
  P.SyncReqs.push_back(std::move(D));
}

void Parser::parseLintSuppress(Program &P) {
  if (!expect(TokKind::LParen, "after 'lint_suppress'"))
    return;
  if (check(TokKind::Identifier))
    P.LintSuppressions.push_back(consume().Text);
  else
    Diags.error(current().Loc, "expected CommLint diagnostic code");
  expect(TokKind::RParen, "after lint_suppress");
}

void Parser::parseEffectsDecl(Program &P) {
  EffectDecl D;
  D.Loc = current().Loc;
  if (!expect(TokKind::LParen, "after 'effects'"))
    return;
  if (check(TokKind::Identifier))
    D.FunctionName = consume().Text;
  else
    Diags.error(current().Loc, "expected function name in effects");
  while (accept(TokKind::Comma)) {
    if (!check(TokKind::Identifier)) {
      Diags.error(current().Loc, "expected effect item");
      break;
    }
    std::string Item = consume().Text;
    if (Item == "pure") {
      D.Pure = true;
    } else if (Item == "malloc") {
      D.Malloc = true;
    } else if (Item == "argmem") {
      D.ArgMem = true;
    } else if (Item == "reads" || Item == "writes") {
      auto &List = Item == "reads" ? D.Reads : D.Writes;
      expect(TokKind::LParen, "after effect class list keyword");
      while (true) {
        if (check(TokKind::Identifier))
          List.push_back(consume().Text);
        else
          Diags.error(current().Loc, "expected effect class name");
        if (!accept(TokKind::Comma))
          break;
      }
      expect(TokKind::RParen, "after effect class list");
    } else {
      Diags.error(current().Loc,
                  formatString("unknown effect item '%s'", Item.c_str()));
    }
  }
  expect(TokKind::RParen, "after effects declaration");
  P.Effects.push_back(std::move(D));
}

MemberSpec Parser::parseMemberSpec() {
  MemberSpec Spec;
  Spec.Loc = current().Loc;
  if (check(TokKind::Identifier))
    Spec.SetName = consume().Text;
  else
    Diags.error(current().Loc, "expected COMMSET name in member list");
  if (accept(TokKind::LParen)) {
    if (!check(TokKind::RParen)) {
      while (true) {
        if (check(TokKind::Identifier))
          Spec.Args.push_back(consume().Text);
        else
          Diags.error(current().Loc,
                      "expected variable name as COMMSET predicate argument");
        if (!accept(TokKind::Comma))
          break;
      }
    }
    expect(TokKind::RParen, "after COMMSET predicate arguments");
  }
  return Spec;
}

void Parser::parseMemberPragma() {
  if (!expect(TokKind::LParen, "after 'member'"))
    return;
  while (true) {
    Pending.Members.push_back(parseMemberSpec());
    if (!accept(TokKind::Comma))
      break;
  }
  expect(TokKind::RParen, "after member list");
}

void Parser::parseNamedArgPragma() {
  if (!expect(TokKind::LParen, "after 'namedarg'"))
    return;
  while (true) {
    if (check(TokKind::Identifier))
      Pending.NamedArgs.push_back(consume().Text);
    else
      Diags.error(current().Loc, "expected named block argument name");
    if (!accept(TokKind::Comma))
      break;
  }
  expect(TokKind::RParen, "after namedarg list");
}

void Parser::parseNamedBlockPragma() {
  if (!expect(TokKind::LParen, "after 'namedblock'"))
    return;
  if (check(TokKind::Identifier))
    Pending.NamedBlock = consume().Text;
  else
    Diags.error(current().Loc, "expected named block name");
  expect(TokKind::RParen, "after namedblock name");
}

void Parser::parseEnablePragma() {
  EnableSpec Spec;
  Spec.Loc = current().Loc;
  if (!expect(TokKind::LParen, "after 'enable'"))
    return;
  if (check(TokKind::Identifier))
    Spec.BlockName = consume().Text;
  else
    Diags.error(current().Loc, "expected named block to enable");
  expect(TokKind::Colon, "after enabled block name");
  while (true) {
    Spec.Sets.push_back(parseMemberSpec());
    if (!accept(TokKind::Comma))
      break;
  }
  expect(TokKind::RParen, "after enable specification");
  Pending.Enables.push_back(std::move(Spec));
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

StmtPtr Parser::parseBlock() {
  SourceLoc Loc = current().Loc;
  if (!expect(TokKind::LBrace, "to open block"))
    return nullptr;
  auto Block = std::make_unique<BlockStmt>(std::vector<StmtPtr>(), Loc);
  Block->Members = std::move(Pending.Members);
  Block->NamedBlock = std::move(Pending.NamedBlock);
  Pending.Members.clear();
  Pending.NamedBlock.clear();
  while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
    StmtPtr S = parseStmt();
    if (S)
      Block->Body.push_back(std::move(S));
  }
  expect(TokKind::RBrace, "to close block");
  return Block;
}

StmtPtr Parser::parseStmt() {
  while (check(TokKind::PragmaCommset)) {
    // Statement-level pragmas: member/namedblock before a block, enable
    // before a call statement.
    SourceLoc Loc = consume().Loc;
    Pending.Loc = Loc;
    std::string Directive =
        check(TokKind::Identifier) ? consume().Text : std::string();
    if (Directive == "member")
      parseMemberPragma();
    else if (Directive == "namedblock")
      parseNamedBlockPragma();
    else if (Directive == "enable")
      parseEnablePragma();
    else
      Diags.error(Loc, formatString(
                           "COMMSET directive '%s' is not valid inside a "
                           "function body",
                           Directive.c_str()));
    finishPragmaLine();
  }

  if (check(TokKind::LBrace))
    return parseBlock();

  // Any pending block-only attributes must precede a block.
  if (!Pending.Members.empty() || !Pending.NamedBlock.empty()) {
    Diags.error(Pending.Loc,
                "COMMSET member/namedblock pragma must precede a compound "
                "statement '{...}'");
    Pending.Members.clear();
    Pending.NamedBlock.clear();
  }

  if (auto Type = parseType())
    return parseDeclStmt(*Type);
  if (check(TokKind::KwIf))
    return parseIf();
  if (check(TokKind::KwWhile))
    return parseWhile();
  if (check(TokKind::KwFor))
    return parseFor();
  if (check(TokKind::KwReturn))
    return parseReturn();
  if (check(TokKind::KwBreak)) {
    SourceLoc Loc = consume().Loc;
    expect(TokKind::Semi, "after 'break'");
    return std::make_unique<BreakStmt>(Loc);
  }
  if (check(TokKind::KwContinue)) {
    SourceLoc Loc = consume().Loc;
    expect(TokKind::Semi, "after 'continue'");
    return std::make_unique<ContinueStmt>(Loc);
  }
  return parseExprOrAssignStmt();
}

StmtPtr Parser::parseDeclStmt(TypeKind Type) {
  SourceLoc Loc = current().Loc;
  if (Type == TypeKind::Void) {
    Diags.error(Loc, "variable cannot have void type");
    synchronizeStmt();
    return nullptr;
  }
  if (!check(TokKind::Identifier)) {
    Diags.error(current().Loc, "expected variable name");
    synchronizeStmt();
    return nullptr;
  }
  std::string Name = consume().Text;
  ExprPtr Init;
  if (accept(TokKind::Assign))
    Init = parseExpr();
  expect(TokKind::Semi, "after variable declaration");
  return std::make_unique<DeclStmt>(Type, std::move(Name), std::move(Init),
                                    Loc);
}

StmtPtr Parser::parseIf() {
  SourceLoc Loc = consume().Loc;
  expect(TokKind::LParen, "after 'if'");
  ExprPtr Cond = parseExpr();
  expect(TokKind::RParen, "after if condition");
  StmtPtr Then = parseStmt();
  StmtPtr Else;
  if (accept(TokKind::KwElse))
    Else = parseStmt();
  return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                  std::move(Else), Loc);
}

StmtPtr Parser::parseWhile() {
  SourceLoc Loc = consume().Loc;
  expect(TokKind::LParen, "after 'while'");
  ExprPtr Cond = parseExpr();
  expect(TokKind::RParen, "after while condition");
  StmtPtr Body = parseStmt();
  return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body), Loc);
}

StmtPtr Parser::parseFor() {
  SourceLoc Loc = consume().Loc;
  expect(TokKind::LParen, "after 'for'");

  StmtPtr Init;
  if (!accept(TokKind::Semi)) {
    if (auto Type = parseType()) {
      Init = parseDeclStmt(*Type); // Consumes ';'.
    } else {
      Init = parseSimpleAssign();
      if (!Init)
        Diags.error(current().Loc, "expected assignment in for initializer");
      expect(TokKind::Semi, "after for initializer");
    }
  }

  ExprPtr Cond;
  if (!check(TokKind::Semi))
    Cond = parseExpr();
  expect(TokKind::Semi, "after for condition");

  StmtPtr Step;
  if (!check(TokKind::RParen)) {
    Step = parseSimpleAssign();
    if (!Step)
      Diags.error(current().Loc, "expected assignment in for step");
  }
  expect(TokKind::RParen, "after for clauses");
  StmtPtr Body = parseStmt();
  return std::make_unique<ForStmt>(std::move(Init), std::move(Cond),
                                   std::move(Step), std::move(Body), Loc);
}

StmtPtr Parser::parseReturn() {
  SourceLoc Loc = consume().Loc;
  ExprPtr Value;
  if (!check(TokKind::Semi))
    Value = parseExpr();
  expect(TokKind::Semi, "after return statement");
  return std::make_unique<ReturnStmt>(std::move(Value), Loc);
}

StmtPtr Parser::parseSimpleAssign() {
  if (!check(TokKind::Identifier))
    return nullptr;
  TokKind Next = peek(1).Kind;
  if (Next != TokKind::Assign && Next != TokKind::PlusAssign &&
      Next != TokKind::MinusAssign && Next != TokKind::PlusPlus &&
      Next != TokKind::MinusMinus)
    return nullptr;

  SourceLoc Loc = current().Loc;
  std::string Name = consume().Text;
  TokKind Op = consume().Kind;

  auto makeVar = [&]() { return std::make_unique<VarRefExpr>(Name, Loc); };
  ExprPtr Value;
  switch (Op) {
  case TokKind::Assign:
    Value = parseExpr();
    break;
  case TokKind::PlusAssign:
    Value = std::make_unique<BinaryExpr>(BinaryOp::Add, makeVar(), parseExpr(),
                                         Loc);
    break;
  case TokKind::MinusAssign:
    Value = std::make_unique<BinaryExpr>(BinaryOp::Sub, makeVar(), parseExpr(),
                                         Loc);
    break;
  case TokKind::PlusPlus:
    Value = std::make_unique<BinaryExpr>(
        BinaryOp::Add, makeVar(), std::make_unique<IntLitExpr>(1, Loc), Loc);
    break;
  case TokKind::MinusMinus:
    Value = std::make_unique<BinaryExpr>(
        BinaryOp::Sub, makeVar(), std::make_unique<IntLitExpr>(1, Loc), Loc);
    break;
  default:
    assert(false && "not an assignment operator");
  }
  return std::make_unique<AssignStmt>(std::move(Name), std::move(Value), Loc);
}

StmtPtr Parser::parseExprOrAssignStmt() {
  SourceLoc Loc = current().Loc;
  if (StmtPtr Assign = parseSimpleAssign()) {
    if (!Pending.Enables.empty()) {
      Diags.error(Pending.Loc, "enable pragma must precede a call statement");
      Pending.Enables.clear();
    }
    expect(TokKind::Semi, "after assignment");
    return Assign;
  }

  ExprPtr E = parseExpr();
  if (!E) {
    synchronizeStmt();
    return nullptr;
  }
  expect(TokKind::Semi, "after expression statement");
  auto S = std::make_unique<ExprStmt>(std::move(E), Loc);
  S->Enables = std::move(Pending.Enables);
  Pending.Enables.clear();
  return S;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

namespace {
struct BinOpInfo {
  BinaryOp Op;
  int Prec;
};
} // namespace

static std::optional<BinOpInfo> binOpFor(TokKind Kind) {
  switch (Kind) {
  case TokKind::PipePipe:
    return BinOpInfo{BinaryOp::LOr, 1};
  case TokKind::AmpAmp:
    return BinOpInfo{BinaryOp::LAnd, 2};
  case TokKind::EqEq:
    return BinOpInfo{BinaryOp::Eq, 3};
  case TokKind::NotEq:
    return BinOpInfo{BinaryOp::Ne, 3};
  case TokKind::Less:
    return BinOpInfo{BinaryOp::Lt, 4};
  case TokKind::LessEq:
    return BinOpInfo{BinaryOp::Le, 4};
  case TokKind::Greater:
    return BinOpInfo{BinaryOp::Gt, 4};
  case TokKind::GreaterEq:
    return BinOpInfo{BinaryOp::Ge, 4};
  case TokKind::Plus:
    return BinOpInfo{BinaryOp::Add, 5};
  case TokKind::Minus:
    return BinOpInfo{BinaryOp::Sub, 5};
  case TokKind::Star:
    return BinOpInfo{BinaryOp::Mul, 6};
  case TokKind::Slash:
    return BinOpInfo{BinaryOp::Div, 6};
  case TokKind::Percent:
    return BinOpInfo{BinaryOp::Rem, 6};
  default:
    return std::nullopt;
  }
}

ExprPtr Parser::parseExpr() {
  ExprPtr LHS = parseUnary();
  if (!LHS)
    return nullptr;
  return parseBinaryRHS(1, std::move(LHS));
}

ExprPtr Parser::parseBinaryRHS(int MinPrec, ExprPtr LHS) {
  while (true) {
    auto Info = binOpFor(current().Kind);
    if (!Info || Info->Prec < MinPrec)
      return LHS;
    SourceLoc Loc = consume().Loc;
    ExprPtr RHS = parseUnary();
    if (!RHS)
      return LHS;
    auto NextInfo = binOpFor(current().Kind);
    if (NextInfo && NextInfo->Prec > Info->Prec)
      RHS = parseBinaryRHS(Info->Prec + 1, std::move(RHS));
    LHS = std::make_unique<BinaryExpr>(Info->Op, std::move(LHS),
                                       std::move(RHS), Loc);
  }
}

ExprPtr Parser::parseUnary() {
  if (check(TokKind::Minus)) {
    SourceLoc Loc = consume().Loc;
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp::Neg, std::move(Sub), Loc);
  }
  if (check(TokKind::Not)) {
    SourceLoc Loc = consume().Loc;
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp::LNot, std::move(Sub), Loc);
  }
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = current().Loc;
  if (check(TokKind::IntLiteral)) {
    Token Tok = consume();
    return std::make_unique<IntLitExpr>(Tok.IntValue, Loc);
  }
  if (check(TokKind::FloatLiteral)) {
    Token Tok = consume();
    return std::make_unique<FloatLitExpr>(Tok.FloatValue, Loc);
  }
  if (check(TokKind::StringLiteral)) {
    Token Tok = consume();
    return std::make_unique<StrLitExpr>(std::move(Tok.Text), Loc);
  }
  if (accept(TokKind::LParen)) {
    ExprPtr E = parseExpr();
    expect(TokKind::RParen, "after parenthesized expression");
    return E;
  }
  if (check(TokKind::Identifier)) {
    std::string Name = consume().Text;
    if (accept(TokKind::LParen)) {
      std::vector<ExprPtr> Args;
      if (!check(TokKind::RParen)) {
        while (true) {
          ExprPtr Arg = parseExpr();
          if (!Arg)
            break;
          Args.push_back(std::move(Arg));
          if (!accept(TokKind::Comma))
            break;
        }
      }
      expect(TokKind::RParen, "after call arguments");
      return std::make_unique<CallExpr>(std::move(Name), std::move(Args),
                                        Loc);
    }
    return std::make_unique<VarRefExpr>(std::move(Name), Loc);
  }
  Diags.error(Loc, formatString("expected expression, found %s",
                                tokKindName(current().Kind)));
  consume();
  return nullptr;
}
