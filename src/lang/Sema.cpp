//===- Sema.cpp -----------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Lang/Sema.h"

#include "commset/Support/Casting.h"
#include "commset/Support/StringUtils.h"

#include <cassert>

using namespace commset;

bool Sema::run() {
  collectGlobals();
  checkSetDecls();
  checkPredicates();
  checkNoSyncs();
  for (auto &F : P.Functions)
    checkFunction(*F);
  checkSetOverlap();
  return !Diags.hasErrors();
}

/// Two group sets with identical member lists grant the same commuting
/// pairs twice under different lock ranks: calls then take both locks where
/// one suffices. Redundant, not unsound, hence a warning (CL014).
void Sema::checkSetOverlap() {
  std::map<std::string, std::set<std::string>> MembersOf;
  for (const auto &F : P.Functions)
    for (const MemberSpec &Spec : F->Members)
      if (Spec.SetName != SelfSetKeyword)
        MembersOf[Spec.SetName].insert(F->Name);
  for (auto It1 = MembersOf.begin(); It1 != MembersOf.end(); ++It1) {
    auto SetIt = Sets.find(It1->first);
    if (SetIt == Sets.end() || SetIt->second->Kind != CommSetKind::Group)
      continue;
    if (It1->second.size() < 2)
      continue;
    for (auto It2 = std::next(It1); It2 != MembersOf.end(); ++It2) {
      auto Set2It = Sets.find(It2->first);
      if (Set2It == Sets.end() ||
          Set2It->second->Kind != CommSetKind::Group)
        continue;
      if (It1->second != It2->second)
        continue;
      Diags.warning(Set2It->second->Loc,
                    formatString("group COMMSETs '%s' and '%s' have "
                                 "identical member lists; members acquire "
                                 "both locks where one set suffices "
                                 "[CL014]",
                                 It1->first.c_str(), It2->first.c_str()));
    }
  }
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

void Sema::collectGlobals() {
  for (GlobalVarDecl &G : P.Globals) {
    if (GlobalVars.count(G.Name)) {
      Diags.error(G.Loc,
                  formatString("redefinition of global '%s'", G.Name.c_str()));
      continue;
    }
    if (G.Init) {
      TypeKind InitType = checkExpr(G.Init.get());
      requireConvertible(InitType, G.Type, G.Loc, "global initializer");
    }
    GlobalVars[G.Name] = {G.Type, /*IsGlobal=*/true};
  }

  std::map<std::string, SourceLoc> SeenFunctions;
  for (auto &F : P.Functions) {
    auto [It, Inserted] = SeenFunctions.try_emplace(F->Name, F->Loc);
    if (!Inserted)
      Diags.error(F->Loc, formatString("redefinition of function '%s'",
                                       F->Name.c_str()));
  }
}

void Sema::checkSetDecls() {
  for (const SetDecl &D : P.SetDecls) {
    auto [It, Inserted] = Sets.try_emplace(D.Name, &D);
    if (!Inserted)
      Diags.error(D.Loc, formatString("redeclaration of COMMSET '%s'",
                                      D.Name.c_str()));
    if (D.Name == SelfSetKeyword)
      Diags.error(D.Loc, "'SELF' is reserved for implicit self sets");
  }
}

void Sema::checkPredicates() {
  for (PredicateDecl &D : P.Predicates) {
    if (!Sets.count(D.SetName)) {
      Diags.error(D.Loc, formatString("COMMSETPREDICATE references undeclared "
                                      "COMMSET '%s'",
                                      D.SetName.c_str()));
      continue;
    }
    auto [It, Inserted] = SetPredicates.try_emplace(D.SetName, &D);
    if (!Inserted) {
      Diags.error(D.Loc, formatString("COMMSET '%s' already has a predicate",
                                      D.SetName.c_str()));
      continue;
    }
    if (D.Params1.size() != D.Params2.size()) {
      Diags.error(D.Loc, "COMMSETPREDICATE parameter lists must have the "
                         "same length");
      continue;
    }
    for (size_t I = 0; I < D.Params1.size(); ++I) {
      if (D.Params1[I].Type != D.Params2[I].Type)
        Diags.error(D.Loc,
                    formatString("type mismatch between predicate parameters "
                                 "'%s' and '%s'",
                                 D.Params1[I].Name.c_str(),
                                 D.Params2[I].Name.c_str()));
    }

    // Type check the predicate expression in a scope holding both parameter
    // lists; the result must convert to int (a C boolean).
    pushScope();
    for (const ParamDecl &Param : D.Params1)
      declare(Param.Name, Param.Type, Param.Loc);
    for (const ParamDecl &Param : D.Params2)
      declare(Param.Name, Param.Type, Param.Loc);
    if (D.Predicate) {
      TypeKind Type = checkExpr(D.Predicate.get());
      requireConvertible(Type, TypeKind::Int, D.Loc, "predicate expression");
      checkPredicatePurity(D.Predicate.get(), D.Loc);
    } else {
      Diags.error(D.Loc, "missing predicate expression");
    }
    popScope();
  }
}

void Sema::checkNoSyncs() {
  for (const NoSyncDecl &D : P.NoSyncs)
    if (!Sets.count(D.SetName))
      Diags.error(D.Loc, formatString("COMMSETNOSYNC references undeclared "
                                      "COMMSET '%s'",
                                      D.SetName.c_str()));

  for (const SyncReqDecl &D : P.SyncReqs) {
    if (!Sets.count(D.SetName)) {
      Diags.error(D.Loc, formatString("sync request references undeclared "
                                      "COMMSET '%s'",
                                      D.SetName.c_str()));
      continue;
    }
    if (D.Mode != "mutex" && D.Mode != "spin" && D.Mode != "tm" &&
        D.Mode != "priv") {
      Diags.error(D.Loc, formatString("unknown sync mode '%s' (expected "
                                      "mutex, spin, tm, or priv)",
                                      D.Mode.c_str()));
      continue;
    }
    bool NoSync = false;
    for (const NoSyncDecl &N : P.NoSyncs)
      NoSync |= N.SetName == D.SetName;
    if (NoSync)
      Diags.error(D.Loc,
                  formatString("COMMSET '%s' is declared NOSYNC but requests "
                               "'%s' synchronization; the declarations make "
                               "contradictory thread-safety claims [CL012]",
                               D.SetName.c_str(), D.Mode.c_str()));
  }

  for (const EffectDecl &D : P.Effects) {
    FunctionDecl *F = P.findFunction(D.FunctionName);
    if (!F) {
      Diags.error(D.Loc, formatString("effects declaration for unknown "
                                      "function '%s'",
                                      D.FunctionName.c_str()));
      continue;
    }
    if (!F->IsExtern)
      Diags.error(D.Loc, formatString("effects can only be declared for "
                                      "extern (native) functions; '%s' has a "
                                      "body",
                                      D.FunctionName.c_str()));
  }
}

void Sema::checkPredicatePurity(const Expr *E, SourceLoc Loc) {
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::FloatLit:
  case ExprKind::StrLit:
    return;
  case ExprKind::VarRef: {
    // Predicate parameters are declared in the innermost scope while this
    // check runs; a reference that only resolves to a module global makes
    // the predicate impure.
    const auto *Var = cast<VarRefExpr>(E);
    bool IsParam = false;
    for (const auto &Scope : Scopes)
      IsParam |= Scope.count(Var->Name) != 0;
    if (!IsParam && GlobalVars.count(Var->Name))
      Diags.error(Loc, formatString("COMMSETPREDICATE must be pure: cannot "
                                    "read global '%s'",
                                    Var->Name.c_str()));
    return;
  }
  case ExprKind::Unary:
    checkPredicatePurity(cast<UnaryExpr>(E)->Sub.get(), Loc);
    return;
  case ExprKind::Binary: {
    const auto *Bin = cast<BinaryExpr>(E);
    checkPredicatePurity(Bin->LHS.get(), Loc);
    checkPredicatePurity(Bin->RHS.get(), Loc);
    return;
  }
  case ExprKind::Call: {
    // No call is evaluable by the symbolic analyzer, but a side-effecting
    // call additionally makes the predicate itself unsound to test at run
    // time (CommCheck's predicate exerciser would perturb the state it
    // observes), so it gets the dedicated CommLint code.
    const auto *Call = cast<CallExpr>(E);
    bool DeclaredPure = false;
    for (const EffectDecl &D : P.Effects)
      if (D.FunctionName == Call->Callee && D.Pure)
        DeclaredPure = true;
    if (DeclaredPure)
      Diags.error(Loc, "COMMSETPREDICATE must be pure: calls are not allowed");
    else
      Diags.error(Loc, formatString("COMMSETPREDICATE must be pure: call to "
                                    "'%s' has side effects [CL010]",
                                    Call->Callee.c_str()));
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// Scopes
//===----------------------------------------------------------------------===//

void Sema::pushScope() { Scopes.emplace_back(); }

void Sema::popScope() {
  assert(!Scopes.empty() && "scope underflow");
  Scopes.pop_back();
}

bool Sema::declare(const std::string &Name, TypeKind Type, SourceLoc Loc) {
  assert(!Scopes.empty() && "no active scope");
  auto [It, Inserted] = Scopes.back().try_emplace(Name, VarInfo{Type, false});
  if (!Inserted) {
    Diags.error(Loc, formatString("redefinition of '%s'", Name.c_str()));
    return false;
  }
  return true;
}

const Sema::VarInfo *Sema::lookup(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return &Found->second;
  }
  auto Found = GlobalVars.find(Name);
  if (Found != GlobalVars.end())
    return &Found->second;
  return nullptr;
}

void Sema::requireConvertible(TypeKind From, TypeKind To, SourceLoc Loc,
                              const char *Context) {
  if (From == To)
    return;
  // Numeric types interconvert (C semantics); everything else is strict.
  bool FromNum = From == TypeKind::Int || From == TypeKind::Double;
  bool ToNum = To == TypeKind::Int || To == TypeKind::Double;
  if (FromNum && ToNum)
    return;
  Diags.error(Loc, formatString("cannot convert %s to %s in %s",
                                typeKindName(From), typeKindName(To),
                                Context));
}

//===----------------------------------------------------------------------===//
// Functions and statements
//===----------------------------------------------------------------------===//

void Sema::checkFunction(FunctionDecl &F) {
  CurrentFunction = &F;
  checkMemberSpecs(F.Members, /*AtInterface=*/true, &F);

  if (!F.Body) {
    if (!F.NamedArgs.empty())
      Diags.error(F.Loc, "extern function cannot export named blocks");
    CurrentFunction = nullptr;
    return;
  }

  pushScope();
  for (const ParamDecl &Param : F.Params) {
    if (Param.Type == TypeKind::Void)
      Diags.error(Param.Loc, "parameter cannot have void type");
    declare(Param.Name, Param.Type, Param.Loc);
  }
  LoopDepth = 0;
  CommBlockDepth = 0;
  checkBlock(F.Body.get());
  popScope();

  // Every exported named arg must correspond to a named block in the body.
  for (const std::string &Exported : F.NamedArgs) {
    if (!FoundNamedBlocks.count(Exported))
      Diags.error(F.Loc, formatString("COMMSETNAMEDARG '%s' does not match "
                                      "any named block in '%s'",
                                      Exported.c_str(), F.Name.c_str()));
  }
  FoundNamedBlocks.clear();
  CurrentFunction = nullptr;
}

void Sema::checkBlock(BlockStmt *B) {
  bool IsCommRegion = B->isCommutative() || !B->NamedBlock.empty();

  if (!B->NamedBlock.empty()) {
    FoundNamedBlocks.insert(B->NamedBlock);
    bool Exported = false;
    for (const std::string &Name : CurrentFunction->NamedArgs)
      Exported |= (Name == B->NamedBlock);
    if (!Exported)
      Diags.error(B->loc(),
                  formatString("named block '%s' is not exported via "
                               "COMMSETNAMEDARG on '%s'",
                               B->NamedBlock.c_str(),
                               CurrentFunction->Name.c_str()));
  }
  checkMemberSpecs(B->Members, /*AtInterface=*/false, CurrentFunction);

  int SavedLoopDepth = LoopDepth;
  if (IsCommRegion) {
    ++CommBlockDepth;
    LoopDepth = 0; // break/continue may not escape the region.
  }
  pushScope();
  for (StmtPtr &S : B->Body)
    checkStmt(S.get());
  popScope();
  if (IsCommRegion) {
    --CommBlockDepth;
    LoopDepth = SavedLoopDepth;
  }
}

void Sema::checkStmt(Stmt *S) {
  if (!S)
    return;
  switch (S->kind()) {
  case StmtKind::Block:
    checkBlock(cast<BlockStmt>(S));
    return;
  case StmtKind::Decl: {
    auto *D = cast<DeclStmt>(S);
    if (D->Init) {
      TypeKind InitType = checkExpr(D->Init.get());
      requireConvertible(InitType, D->Type, D->loc(), "initialization");
    }
    declare(D->Name, D->Type, D->loc());
    return;
  }
  case StmtKind::Assign: {
    auto *A = cast<AssignStmt>(S);
    const VarInfo *Var = lookup(A->Name);
    if (!Var) {
      Diags.error(A->loc(), formatString("assignment to undeclared variable "
                                         "'%s'",
                                         A->Name.c_str()));
      checkExpr(A->Value.get());
      return;
    }
    A->IsGlobal = Var->IsGlobal;
    TypeKind ValueType = checkExpr(A->Value.get());
    requireConvertible(ValueType, Var->Type, A->loc(), "assignment");
    return;
  }
  case StmtKind::ExprStmt: {
    auto *E = cast<ExprStmt>(S);
    checkExpr(E->E.get());
    checkEnables(E);
    return;
  }
  case StmtKind::If: {
    auto *I = cast<IfStmt>(S);
    TypeKind CondType = checkExpr(I->Cond.get());
    requireConvertible(CondType, TypeKind::Int, I->loc(), "if condition");
    checkStmt(I->Then.get());
    checkStmt(I->Else.get());
    return;
  }
  case StmtKind::While: {
    auto *W = cast<WhileStmt>(S);
    TypeKind CondType = checkExpr(W->Cond.get());
    requireConvertible(CondType, TypeKind::Int, W->loc(), "while condition");
    ++LoopDepth;
    checkStmt(W->Body.get());
    --LoopDepth;
    return;
  }
  case StmtKind::For: {
    auto *F = cast<ForStmt>(S);
    pushScope(); // The for-init declaration scopes over the loop.
    checkStmt(F->Init.get());
    if (F->Cond) {
      TypeKind CondType = checkExpr(F->Cond.get());
      requireConvertible(CondType, TypeKind::Int, F->loc(), "for condition");
    }
    checkStmt(F->Step.get());
    ++LoopDepth;
    checkStmt(F->Body.get());
    --LoopDepth;
    popScope();
    return;
  }
  case StmtKind::Return: {
    auto *R = cast<ReturnStmt>(S);
    if (CommBlockDepth > 0) {
      Diags.error(R->loc(), "return cannot appear inside a commutative "
                            "block (non-local control flow; paper section "
                            "3.1)");
    }
    TypeKind Expected = CurrentFunction->ReturnType;
    if (R->Value) {
      TypeKind Actual = checkExpr(R->Value.get());
      if (Expected == TypeKind::Void)
        Diags.error(R->loc(), "void function cannot return a value");
      else
        requireConvertible(Actual, Expected, R->loc(), "return");
    } else if (Expected != TypeKind::Void) {
      Diags.error(R->loc(), "non-void function must return a value");
    }
    return;
  }
  case StmtKind::Break:
  case StmtKind::Continue:
    if (LoopDepth == 0) {
      if (CommBlockDepth > 0)
        Diags.error(S->loc(),
                    "break/continue cannot escape a commutative block; its "
                    "parent loop must be inside the block (paper section "
                    "3.1)");
      else
        Diags.error(S->loc(), "break/continue outside of a loop");
    }
    return;
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

TypeKind Sema::checkExpr(Expr *E) {
  if (!E)
    return TypeKind::Void;
  switch (E->kind()) {
  case ExprKind::IntLit:
    return E->Type = TypeKind::Int;
  case ExprKind::FloatLit:
    return E->Type = TypeKind::Double;
  case ExprKind::StrLit:
    return E->Type = TypeKind::Str;
  case ExprKind::VarRef: {
    auto *Var = cast<VarRefExpr>(E);
    const VarInfo *Info = lookup(Var->Name);
    if (!Info) {
      Diags.error(Var->loc(), formatString("use of undeclared variable '%s'",
                                           Var->Name.c_str()));
      return E->Type = TypeKind::Int;
    }
    Var->IsGlobal = Info->IsGlobal;
    return E->Type = Info->Type;
  }
  case ExprKind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    TypeKind SubType = checkExpr(U->Sub.get());
    if (U->Op == UnaryOp::LNot) {
      requireConvertible(SubType, TypeKind::Int, U->loc(), "logical not");
      return E->Type = TypeKind::Int;
    }
    if (SubType != TypeKind::Int && SubType != TypeKind::Double)
      Diags.error(U->loc(), "negation requires a numeric operand");
    return E->Type = SubType;
  }
  case ExprKind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    TypeKind L = checkExpr(B->LHS.get());
    TypeKind R = checkExpr(B->RHS.get());
    switch (B->Op) {
    case BinaryOp::LAnd:
    case BinaryOp::LOr:
      requireConvertible(L, TypeKind::Int, B->loc(), "logical operand");
      requireConvertible(R, TypeKind::Int, B->loc(), "logical operand");
      return E->Type = TypeKind::Int;
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge: {
      bool Numeric = (L == TypeKind::Int || L == TypeKind::Double) &&
                     (R == TypeKind::Int || R == TypeKind::Double);
      bool PtrCompare = L == TypeKind::Ptr && R == TypeKind::Ptr &&
                        (B->Op == BinaryOp::Eq || B->Op == BinaryOp::Ne);
      if (!Numeric && !PtrCompare)
        Diags.error(B->loc(), "invalid operand types for comparison");
      return E->Type = TypeKind::Int;
    }
    // Rem promotes like the other arithmetic ops: % on doubles is IEEE
    // fmod (DESIGN.md §8). The lowering already promoted the Rem
    // instruction to F64 for double operands; typing the expression Int
    // here would make later conversions reinterpret the F64 bits.
    default: {
      bool LNum = L == TypeKind::Int || L == TypeKind::Double;
      bool RNum = R == TypeKind::Int || R == TypeKind::Double;
      if (!LNum || !RNum) {
        Diags.error(B->loc(), "arithmetic requires numeric operands");
        return E->Type = TypeKind::Int;
      }
      return E->Type = (L == TypeKind::Double || R == TypeKind::Double)
                           ? TypeKind::Double
                           : TypeKind::Int;
    }
    }
  }
  case ExprKind::Call:
    return checkCall(cast<CallExpr>(E));
  }
  return TypeKind::Void;
}

TypeKind Sema::checkCall(CallExpr *Call) {
  FunctionDecl *Callee = P.findFunction(Call->Callee);
  if (!Callee) {
    Diags.error(Call->loc(), formatString("call to undeclared function '%s'",
                                          Call->Callee.c_str()));
    for (ExprPtr &Arg : Call->Args)
      checkExpr(Arg.get());
    return Call->Type = TypeKind::Int;
  }
  Call->IsNative = Callee->IsExtern;
  if (Call->Args.size() != Callee->Params.size())
    Diags.error(Call->loc(),
                formatString("'%s' expects %zu arguments, got %zu",
                             Call->Callee.c_str(), Callee->Params.size(),
                             Call->Args.size()));
  size_t N = std::min(Call->Args.size(), Callee->Params.size());
  for (size_t I = 0; I < N; ++I) {
    TypeKind ArgType = checkExpr(Call->Args[I].get());
    // String literals may be passed to native kernels as ptr arguments.
    if (ArgType == TypeKind::Str && Callee->Params[I].Type == TypeKind::Ptr &&
        Callee->IsExtern)
      continue;
    requireConvertible(ArgType, Callee->Params[I].Type,
                       Call->Args[I]->loc(), "call argument");
  }
  for (size_t I = N; I < Call->Args.size(); ++I)
    checkExpr(Call->Args[I].get());
  return Call->Type = Callee->ReturnType;
}

//===----------------------------------------------------------------------===//
// COMMSET member specs and enables
//===----------------------------------------------------------------------===//

void Sema::checkMemberSpecs(std::vector<MemberSpec> &Members, bool AtInterface,
                            const FunctionDecl *F) {
  std::map<std::string, unsigned> SeenSets;
  for (const MemberSpec &Spec : Members)
    if (++SeenSets[Spec.SetName] == 2)
      Diags.error(Spec.Loc,
                  formatString("duplicate membership of '%s' in COMMSET "
                               "'%s' [CL013]",
                               F ? F->Name.c_str() : "<block>",
                               Spec.SetName.c_str()));
  for (MemberSpec &Spec : Members) {
    if (Spec.SetName == SelfSetKeyword) {
      if (!Spec.Args.empty())
        Diags.error(Spec.Loc, "implicit SELF set cannot take predicate "
                              "arguments; declare a predicated self set with "
                              "'#pragma commset decl(NAME, self)'");
      continue;
    }
    if (!Sets.count(Spec.SetName)) {
      Diags.error(Spec.Loc, formatString("reference to undeclared COMMSET "
                                         "'%s'",
                                         Spec.SetName.c_str()));
      continue;
    }
    auto PredIt = SetPredicates.find(Spec.SetName);
    const PredicateDecl *Pred =
        PredIt == SetPredicates.end() ? nullptr : PredIt->second;
    if (!Pred) {
      if (!Spec.Args.empty())
        Diags.error(Spec.Loc,
                    formatString("COMMSET '%s' has no predicate but member "
                                 "supplies arguments",
                                 Spec.SetName.c_str()));
      continue;
    }
    if (Spec.Args.size() != Pred->Params1.size()) {
      Diags.error(Spec.Loc,
                  formatString("COMMSET '%s' predicate expects %zu arguments, "
                               "member supplies %zu",
                               Spec.SetName.c_str(), Pred->Params1.size(),
                               Spec.Args.size()));
      continue;
    }
    // Bind each actual to the predicate formal and check the types agree.
    for (size_t I = 0; I < Spec.Args.size(); ++I) {
      const std::string &ArgName = Spec.Args[I];
      TypeKind ArgType = TypeKind::Void;
      bool Found = false;
      if (AtInterface) {
        for (const ParamDecl &Param : F->Params) {
          if (Param.Name == ArgName) {
            ArgType = Param.Type;
            Found = true;
            break;
          }
        }
        if (!Found) {
          Diags.error(Spec.Loc,
                      formatString("interface COMMSET argument '%s' must "
                                   "name a parameter of '%s'",
                                   ArgName.c_str(), F->Name.c_str()));
          continue;
        }
      } else {
        const VarInfo *Var = lookup(ArgName);
        if (!Var) {
          Diags.error(Spec.Loc,
                      formatString("COMMSET block argument '%s' is not a "
                                   "variable live at the block entry",
                                   ArgName.c_str()));
          continue;
        }
        ArgType = Var->Type;
      }
      if (ArgType != Pred->Params1[I].Type)
        Diags.error(Spec.Loc,
                    formatString("COMMSET argument '%s' has type %s but "
                                 "predicate parameter '%s' has type %s",
                                 ArgName.c_str(), typeKindName(ArgType),
                                 Pred->Params1[I].Name.c_str(),
                                 typeKindName(Pred->Params1[I].Type)));
    }
  }
}

void Sema::checkEnables(ExprStmt *S) {
  if (S->Enables.empty())
    return;
  auto *Call = dyn_cast<CallExpr>(S->E.get());
  if (!Call) {
    Diags.error(S->loc(), "enable pragma must precede a call statement");
    return;
  }
  FunctionDecl *Callee = P.findFunction(Call->Callee);
  if (!Callee)
    return; // Already diagnosed by checkCall.
  for (EnableSpec &Spec : S->Enables) {
    bool Exported = false;
    for (const std::string &Name : Callee->NamedArgs)
      Exported |= (Name == Spec.BlockName);
    if (!Exported) {
      Diags.error(Spec.Loc,
                  formatString("'%s' does not export a named block '%s'",
                               Call->Callee.c_str(), Spec.BlockName.c_str()));
      continue;
    }
    // The set list binds client variables, checked like block member specs.
    checkMemberSpecs(Spec.Sets, /*AtInterface=*/false, CurrentFunction);
  }
}
