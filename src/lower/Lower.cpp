//===- Lower.cpp ----------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Lower/Lower.h"

#include "commset/IR/IRBuilder.h"
#include "commset/Support/Casting.h"
#include "commset/Support/StringUtils.h"

#include <cassert>
#include <map>
#include <set>

using namespace commset;

IRType commset::irTypeOf(TypeKind Kind) {
  switch (Kind) {
  case TypeKind::Void:
    return IRType::Void;
  case TypeKind::Int:
    return IRType::I64;
  case TypeKind::Double:
    return IRType::F64;
  case TypeKind::Ptr:
  case TypeKind::Str:
    return IRType::Ptr;
  }
  return IRType::Void;
}

namespace {

//===----------------------------------------------------------------------===//
// Outer-variable use collection for region extraction
//===----------------------------------------------------------------------===//

/// Collects, for a commutative block, which *outer* variables (visible in
/// the enclosing function scope) are referenced and which are assigned.
/// Names declared inside the block shadow outer ones from the declaration
/// point on.
class OuterVarCollector {
public:
  OuterVarCollector(const std::set<std::string> &OuterNames)
      : OuterNames(OuterNames) {}

  /// Ordered first-use list of outer names referenced (reads and member
  /// args); assignment targets are recorded in Written.
  std::vector<std::string> Used;
  std::set<std::string> Written;

  void collectBlockContents(const BlockStmt *B) {
    pushScope();
    for (const StmtPtr &S : B->Body)
      visitStmt(S.get());
    popScope();
  }

  void noteUse(const std::string &Name) {
    if (isShadowed(Name) || !OuterNames.count(Name))
      return;
    if (!UsedSet.count(Name)) {
      UsedSet.insert(Name);
      Used.push_back(Name);
    }
  }

private:
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  bool isShadowed(const std::string &Name) const {
    for (const auto &Scope : Scopes)
      if (Scope.count(Name))
        return true;
    return false;
  }

  void noteWrite(const std::string &Name) {
    if (isShadowed(Name) || !OuterNames.count(Name))
      return;
    Written.insert(Name);
  }

  void visitExpr(const Expr *E) {
    if (!E)
      return;
    switch (E->kind()) {
    case ExprKind::VarRef:
      noteUse(cast<VarRefExpr>(E)->Name);
      return;
    case ExprKind::Unary:
      visitExpr(cast<UnaryExpr>(E)->Sub.get());
      return;
    case ExprKind::Binary:
      visitExpr(cast<BinaryExpr>(E)->LHS.get());
      visitExpr(cast<BinaryExpr>(E)->RHS.get());
      return;
    case ExprKind::Call:
      for (const ExprPtr &Arg : cast<CallExpr>(E)->Args)
        visitExpr(Arg.get());
      return;
    default:
      return;
    }
  }

  void visitStmt(const Stmt *S) {
    if (!S)
      return;
    switch (S->kind()) {
    case StmtKind::Block: {
      const auto *B = cast<BlockStmt>(S);
      for (const MemberSpec &Member : B->Members)
        for (const std::string &Arg : Member.Args)
          noteUse(Arg);
      pushScope();
      for (const StmtPtr &Sub : B->Body)
        visitStmt(Sub.get());
      popScope();
      return;
    }
    case StmtKind::Decl: {
      const auto *D = cast<DeclStmt>(S);
      visitExpr(D->Init.get());
      Scopes.back().insert(D->Name);
      return;
    }
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      visitExpr(A->Value.get());
      if (!A->IsGlobal)
        noteWrite(A->Name);
      return;
    }
    case StmtKind::ExprStmt:
      visitExpr(cast<ExprStmt>(S)->E.get());
      return;
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      visitExpr(I->Cond.get());
      visitStmt(I->Then.get());
      visitStmt(I->Else.get());
      return;
    }
    case StmtKind::While: {
      const auto *W = cast<WhileStmt>(S);
      visitExpr(W->Cond.get());
      visitStmt(W->Body.get());
      return;
    }
    case StmtKind::For: {
      const auto *F = cast<ForStmt>(S);
      pushScope();
      visitStmt(F->Init.get());
      visitExpr(F->Cond.get());
      visitStmt(F->Step.get());
      visitStmt(F->Body.get());
      popScope();
      return;
    }
    case StmtKind::Return:
      visitExpr(cast<ReturnStmt>(S)->Value.get());
      return;
    default:
      return;
    }
  }

  const std::set<std::string> &OuterNames;
  std::vector<std::set<std::string>> Scopes;
  std::set<std::string> UsedSet;
};

//===----------------------------------------------------------------------===//
// Program lowering
//===----------------------------------------------------------------------===//

class ProgramLowerer {
public:
  ProgramLowerer(const Program &P, DiagnosticEngine &Diags)
      : P(P), Diags(Diags), M(std::make_unique<Module>()) {}

  std::unique_ptr<Module> run();

  Module &module() { return *M; }
  DiagnosticEngine &diags() { return Diags; }
  const Program &program() const { return P; }

  Function *functionFor(const std::string &Name) const {
    auto It = FnMap.find(Name);
    return It == FnMap.end() ? nullptr : It->second;
  }
  NativeDecl *nativeFor(const std::string &Name) const {
    auto It = NativeMap.find(Name);
    return It == NativeMap.end() ? nullptr : It->second;
  }
  const FunctionDecl *declFor(const std::string &Name) const {
    return P.findFunction(Name);
  }

private:
  void lowerGlobals();
  void lowerNatives();
  void makeShells();

  const Program &P;
  DiagnosticEngine &Diags;
  std::unique_ptr<Module> M;
  std::map<std::string, Function *> FnMap;
  std::map<std::string, NativeDecl *> NativeMap;
};

/// Lowers one function body. Also used recursively for extracted region
/// functions.
class FunctionLowerer {
public:
  FunctionLowerer(ProgramLowerer &PL, Function *F)
      : PL(PL), F(F), B(PL.module()) {}

  /// Lowers a user function declaration.
  void lowerFunctionBody(const FunctionDecl &FD);

  /// Lowers a commutative block's contents as the body of region function
  /// \p F. \p ParamNames maps region parameters to outer names;
  /// \p ParamTypes their frontend types; \p LiveOut names the single
  /// live-out variable ("" if none) of frontend type \p LiveOutType.
  void lowerRegionBody(const BlockStmt &Block,
                       const std::vector<std::string> &ParamNames,
                       const std::vector<TypeKind> &ParamTypes,
                       const std::string &LiveOut, TypeKind LiveOutType);

private:
  struct LocalInfo {
    unsigned Slot;
    TypeKind Type;
  };

  // Scope handling.
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  unsigned declareLocal(const std::string &Name, TypeKind Type) {
    unsigned Slot = F->addLocal(Name, irTypeOf(Type));
    Scopes.back()[Name] = {Slot, Type};
    return Slot;
  }
  const LocalInfo *lookupLocal(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }
  /// Set of all currently visible local names (for region extraction).
  std::set<std::string> visibleNames() const {
    std::set<std::string> Names;
    for (const auto &Scope : Scopes)
      for (const auto &[Name, Info] : Scope)
        Names.insert(Name);
    return Names;
  }

  // Statement lowering.
  void lowerStmt(const Stmt *S);
  void lowerBlock(const BlockStmt *Block);
  void lowerBlockContents(const BlockStmt *Block);
  void lowerIf(const IfStmt *S);
  void lowerWhile(const WhileStmt *S);
  void lowerFor(const ForStmt *S);
  void lowerReturn(const ReturnStmt *S);
  void lowerAssign(const AssignStmt *S);
  void extractRegion(const BlockStmt *Block);

  // Expression lowering.
  Operand lowerExpr(const Expr *E);
  Operand lowerShortCircuit(const BinaryExpr *E);
  Operand lowerCall(const CallExpr *E);
  Operand convert(Operand Value, TypeKind From, TypeKind To, SourceLoc Loc);

  void finishWithDefaultReturn(SourceLoc Loc);
  BasicBlock *newBlock(const char *Hint) {
    return F->makeBlock(formatString("%s.%u", Hint, NextBlockId++));
  }

  ProgramLowerer &PL;
  Function *F;
  IRBuilder B;
  std::vector<std::map<std::string, LocalInfo>> Scopes;
  /// (continue target, break target) stack.
  std::vector<std::pair<BasicBlock *, BasicBlock *>> LoopTargets;
  unsigned NextBlockId = 0;
  unsigned NextRegionId = 0;
  unsigned NextTempId = 0;
};

//===----------------------------------------------------------------------===//
// ProgramLowerer
//===----------------------------------------------------------------------===//

std::unique_ptr<Module> ProgramLowerer::run() {
  lowerGlobals();
  lowerNatives();
  makeShells();
  for (const auto &FD : P.Functions) {
    if (FD->IsExtern)
      continue;
    FunctionLowerer FL(*this, FnMap.at(FD->Name));
    FL.lowerFunctionBody(*FD);
  }
  if (Diags.hasErrors())
    return nullptr;
  for (auto &F : M->Functions)
    F->numberInstructions();
  return std::move(M);
}

void ProgramLowerer::lowerGlobals() {
  for (const GlobalVarDecl &G : P.Globals) {
    GlobalVar Var;
    Var.Name = G.Name;
    Var.Type = irTypeOf(G.Type);
    if (G.Init) {
      const Expr *Init = G.Init.get();
      bool Negate = false;
      if (const auto *U = dyn_cast<UnaryExpr>(Init)) {
        if (U->Op == UnaryOp::Neg) {
          Negate = true;
          Init = U->Sub.get();
        }
      }
      if (const auto *Lit = dyn_cast<IntLitExpr>(Init)) {
        Var.IntInit = Negate ? -Lit->Value : Lit->Value;
        Var.FloatInit = static_cast<double>(Var.IntInit);
      } else if (const auto *Lit = dyn_cast<FloatLitExpr>(Init)) {
        Var.FloatInit = Negate ? -Lit->Value : Lit->Value;
        Var.IntInit = static_cast<int64_t>(Var.FloatInit);
      } else {
        Diags.error(G.Loc, formatString("global '%s' initializer must be a "
                                        "constant literal",
                                        G.Name.c_str()));
      }
    }
    M->Globals.push_back(std::move(Var));
  }
}

void ProgramLowerer::lowerNatives() {
  std::map<std::string, const EffectDecl *> Effects;
  for (const EffectDecl &D : P.Effects)
    Effects[D.FunctionName] = &D;

  for (const auto &FD : P.Functions) {
    if (!FD->IsExtern)
      continue;
    std::vector<IRType> ParamTypes;
    for (const ParamDecl &Param : FD->Params)
      ParamTypes.push_back(irTypeOf(Param.Type));
    NativeDecl *N = M->makeNative(FD->Name, irTypeOf(FD->ReturnType),
                                  std::move(ParamTypes));
    N->Loc = FD->Loc;
    for (const MemberSpec &Spec : FD->Members) {
      MemberInstance MI;
      MI.SetName = Spec.SetName;
      MI.Loc = Spec.Loc;
      for (const std::string &ArgName : Spec.Args) {
        for (unsigned I = 0; I < FD->Params.size(); ++I)
          if (FD->Params[I].Name == ArgName)
            MI.ArgParams.push_back(I);
      }
      if (MI.ArgParams.size() != Spec.Args.size())
        Diags.error(Spec.Loc, "interface COMMSET argument does not name a "
                              "parameter");
      N->Members.push_back(std::move(MI));
    }
    auto It = Effects.find(FD->Name);
    if (It != Effects.end()) {
      const EffectDecl &D = *It->second;
      N->Effects.World = false;
      N->Effects.Pure = D.Pure;
      N->Effects.Malloc = D.Malloc;
      N->Effects.ArgMemRead = D.ArgMem;
      N->Effects.ArgMemWrite = D.ArgMem;
      for (const std::string &Class : D.Reads)
        N->Effects.ReadClasses.insert(M->internEffectClass(Class));
      for (const std::string &Class : D.Writes)
        N->Effects.WriteClasses.insert(M->internEffectClass(Class));
    }
    NativeMap[FD->Name] = N;
  }
}

void ProgramLowerer::makeShells() {
  for (const auto &FD : P.Functions) {
    if (FD->IsExtern)
      continue;
    Function *F = M->makeFunction(FD->Name, irTypeOf(FD->ReturnType));
    F->Loc = FD->Loc;
    F->NumParams = static_cast<unsigned>(FD->Params.size());
    for (const ParamDecl &Param : FD->Params)
      F->addLocal(Param.Name, irTypeOf(Param.Type));
    // Interface COMMSET membership: bind predicate arguments to parameters.
    for (const MemberSpec &Spec : FD->Members) {
      MemberInstance MI;
      MI.SetName = Spec.SetName;
      MI.Loc = Spec.Loc;
      for (const std::string &ArgName : Spec.Args) {
        for (unsigned I = 0; I < FD->Params.size(); ++I)
          if (FD->Params[I].Name == ArgName)
            MI.ArgParams.push_back(I);
      }
      if (MI.ArgParams.size() != Spec.Args.size())
        Diags.error(Spec.Loc, "interface COMMSET argument does not name a "
                              "parameter");
      F->Members.push_back(std::move(MI));
    }
    FnMap[FD->Name] = F;
  }
}

//===----------------------------------------------------------------------===//
// FunctionLowerer
//===----------------------------------------------------------------------===//

void FunctionLowerer::lowerFunctionBody(const FunctionDecl &FD) {
  BasicBlock *Entry = F->makeBlock("entry");
  B.setInsertBlock(Entry);
  pushScope();
  for (unsigned I = 0; I < FD.Params.size(); ++I)
    Scopes.back()[FD.Params[I].Name] = {I, FD.Params[I].Type};
  lowerBlockContents(FD.Body.get());
  popScope();
  finishWithDefaultReturn(FD.Loc);
}

void FunctionLowerer::lowerRegionBody(
    const BlockStmt &Block, const std::vector<std::string> &ParamNames,
    const std::vector<TypeKind> &ParamTypes, const std::string &LiveOut,
    TypeKind LiveOutType) {
  BasicBlock *Entry = F->makeBlock("entry");
  B.setInsertBlock(Entry);
  pushScope();
  for (unsigned I = 0; I < ParamNames.size(); ++I)
    Scopes.back()[ParamNames[I]] = {I, ParamTypes[I]};
  // A write-only live-out becomes a zero-initialized region local.
  if (!LiveOut.empty() && !lookupLocal(LiveOut)) {
    unsigned Slot = declareLocal(LiveOut, LiveOutType);
    B.createStoreLocal(Slot, irTypeOf(LiveOutType) == IRType::F64
                                 ? Operand::constFloat(0.0)
                                 : (irTypeOf(LiveOutType) == IRType::Ptr
                                        ? Operand::constNull()
                                        : Operand::constInt(0)),
                       Block.loc());
  }
  lowerBlockContents(&Block);
  if (!B.blockTerminated()) {
    if (LiveOut.empty()) {
      B.createRetVoid(Block.loc());
    } else {
      const LocalInfo *Info = lookupLocal(LiveOut);
      assert(Info && "live-out local vanished");
      Instruction *Value =
          B.createLoadLocal(Info->Slot, irTypeOf(Info->Type), Block.loc());
      B.createRet(Operand::instr(Value), Block.loc());
    }
  }
  popScope();
}

void FunctionLowerer::finishWithDefaultReturn(SourceLoc Loc) {
  if (B.blockTerminated())
    return;
  switch (F->ReturnType) {
  case IRType::Void:
    B.createRetVoid(Loc);
    return;
  case IRType::I64:
    B.createRet(Operand::constInt(0), Loc);
    return;
  case IRType::F64:
    B.createRet(Operand::constFloat(0.0), Loc);
    return;
  case IRType::Ptr:
    B.createRet(Operand::constNull(), Loc);
    return;
  }
}

void FunctionLowerer::lowerBlockContents(const BlockStmt *Block) {
  for (const StmtPtr &S : Block->Body)
    lowerStmt(S.get());
}

void FunctionLowerer::lowerStmt(const Stmt *S) {
  if (!S)
    return;
  switch (S->kind()) {
  case StmtKind::Block:
    lowerBlock(cast<BlockStmt>(S));
    return;
  case StmtKind::Decl: {
    const auto *D = cast<DeclStmt>(S);
    Operand Init;
    if (D->Init) {
      Init = lowerExpr(D->Init.get());
      Init = convert(Init, D->Init->Type, D->Type, D->loc());
    } else {
      Init = irTypeOf(D->Type) == IRType::F64 ? Operand::constFloat(0.0)
             : irTypeOf(D->Type) == IRType::Ptr
                 ? Operand::constNull()
                 : Operand::constInt(0);
    }
    unsigned Slot = declareLocal(D->Name, D->Type);
    B.createStoreLocal(Slot, Init, D->loc());
    return;
  }
  case StmtKind::Assign:
    lowerAssign(cast<AssignStmt>(S));
    return;
  case StmtKind::ExprStmt:
    lowerExpr(cast<ExprStmt>(S)->E.get());
    return;
  case StmtKind::If:
    lowerIf(cast<IfStmt>(S));
    return;
  case StmtKind::While:
    lowerWhile(cast<WhileStmt>(S));
    return;
  case StmtKind::For:
    lowerFor(cast<ForStmt>(S));
    return;
  case StmtKind::Return:
    lowerReturn(cast<ReturnStmt>(S));
    return;
  case StmtKind::Break: {
    assert(!LoopTargets.empty() && "break outside loop survived Sema");
    B.createBr(LoopTargets.back().second, S->loc());
    B.setInsertBlock(newBlock("dead"));
    return;
  }
  case StmtKind::Continue: {
    assert(!LoopTargets.empty() && "continue outside loop survived Sema");
    B.createBr(LoopTargets.back().first, S->loc());
    B.setInsertBlock(newBlock("dead"));
    return;
  }
  }
}

void FunctionLowerer::lowerBlock(const BlockStmt *Block) {
  if (Block->isCommutative()) {
    extractRegion(Block);
    return;
  }
  pushScope();
  lowerBlockContents(Block);
  popScope();
}

void FunctionLowerer::lowerAssign(const AssignStmt *S) {
  Operand Value = lowerExpr(S->Value.get());
  if (S->IsGlobal) {
    Module &M = PL.module();
    int GlobalId = M.findGlobal(S->Name);
    assert(GlobalId >= 0 && "global vanished after Sema");
    TypeKind GlobalType =
        M.Globals[GlobalId].Type == IRType::F64   ? TypeKind::Double
        : M.Globals[GlobalId].Type == IRType::Ptr ? TypeKind::Ptr
                                                  : TypeKind::Int;
    Value = convert(Value, S->Value->Type, GlobalType, S->loc());
    B.createStoreGlobal(static_cast<unsigned>(GlobalId), Value, S->loc());
    return;
  }
  const LocalInfo *Info = lookupLocal(S->Name);
  assert(Info && "local vanished after Sema");
  Value = convert(Value, S->Value->Type, Info->Type, S->loc());
  B.createStoreLocal(Info->Slot, Value, S->loc());
}

void FunctionLowerer::lowerIf(const IfStmt *S) {
  Operand Cond = lowerExpr(S->Cond.get());
  BasicBlock *ThenBB = newBlock("if.then");
  BasicBlock *JoinBB = newBlock("if.join");
  BasicBlock *ElseBB = S->Else ? newBlock("if.else") : JoinBB;
  B.createCondBr(Cond, ThenBB, ElseBB, S->loc());

  B.setInsertBlock(ThenBB);
  pushScope();
  lowerStmt(S->Then.get());
  popScope();
  if (!B.blockTerminated())
    B.createBr(JoinBB, S->loc());

  if (S->Else) {
    B.setInsertBlock(ElseBB);
    pushScope();
    lowerStmt(S->Else.get());
    popScope();
    if (!B.blockTerminated())
      B.createBr(JoinBB, S->loc());
  }
  B.setInsertBlock(JoinBB);
}

void FunctionLowerer::lowerWhile(const WhileStmt *S) {
  BasicBlock *HeaderBB = newBlock("while.head");
  BasicBlock *BodyBB = newBlock("while.body");
  BasicBlock *ExitBB = newBlock("while.exit");
  B.createBr(HeaderBB, S->loc());

  B.setInsertBlock(HeaderBB);
  Operand Cond = lowerExpr(S->Cond.get());
  B.createCondBr(Cond, BodyBB, ExitBB, S->loc());

  B.setInsertBlock(BodyBB);
  LoopTargets.push_back({HeaderBB, ExitBB});
  pushScope();
  lowerStmt(S->Body.get());
  popScope();
  LoopTargets.pop_back();
  if (!B.blockTerminated())
    B.createBr(HeaderBB, S->loc());

  B.setInsertBlock(ExitBB);
}

void FunctionLowerer::lowerFor(const ForStmt *S) {
  pushScope(); // for-init declaration scope.
  lowerStmt(S->Init.get());

  BasicBlock *HeaderBB = newBlock("for.head");
  BasicBlock *BodyBB = newBlock("for.body");
  BasicBlock *StepBB = newBlock("for.step");
  BasicBlock *ExitBB = newBlock("for.exit");
  B.createBr(HeaderBB, S->loc());

  B.setInsertBlock(HeaderBB);
  if (S->Cond) {
    Operand Cond = lowerExpr(S->Cond.get());
    B.createCondBr(Cond, BodyBB, ExitBB, S->loc());
  } else {
    B.createBr(BodyBB, S->loc());
  }

  B.setInsertBlock(BodyBB);
  LoopTargets.push_back({StepBB, ExitBB});
  pushScope();
  lowerStmt(S->Body.get());
  popScope();
  LoopTargets.pop_back();
  if (!B.blockTerminated())
    B.createBr(StepBB, S->loc());

  B.setInsertBlock(StepBB);
  lowerStmt(S->Step.get());
  B.createBr(HeaderBB, S->loc());

  B.setInsertBlock(ExitBB);
  popScope();
}

void FunctionLowerer::lowerReturn(const ReturnStmt *S) {
  if (S->Value) {
    Operand Value = lowerExpr(S->Value.get());
    TypeKind RetType = F->ReturnType == IRType::F64   ? TypeKind::Double
                       : F->ReturnType == IRType::Ptr ? TypeKind::Ptr
                                                      : TypeKind::Int;
    Value = convert(Value, S->Value->Type, RetType, S->loc());
    B.createRet(Value, S->loc());
  } else {
    B.createRetVoid(S->loc());
  }
  B.setInsertBlock(newBlock("dead"));
}

//===----------------------------------------------------------------------===//
// Region extraction
//===----------------------------------------------------------------------===//

void FunctionLowerer::extractRegion(const BlockStmt *Block) {
  DiagnosticEngine &Diags = PL.diags();

  std::set<std::string> Outer = visibleNames();
  OuterVarCollector Collector(Outer);
  // Member arguments must become region parameters even when unused inside.
  for (const MemberSpec &Member : Block->Members)
    for (const std::string &Arg : Member.Args)
      Collector.noteUse(Arg);
  Collector.collectBlockContents(Block);

  // At most one live-out scalar (becomes the region's return value).
  if (Collector.Written.size() > 1) {
    std::string Names;
    for (const std::string &Name : Collector.Written)
      Names += " " + Name;
    Diags.error(Block->loc(),
                formatString("commutative block assigns %zu enclosing "
                             "variables (%s); at most one live-out value is "
                             "supported",
                             Collector.Written.size(), Names.c_str()));
    return;
  }
  std::string LiveOut =
      Collector.Written.empty() ? std::string() : *Collector.Written.begin();

  // Parameters: every outer variable read inside, in first-use order.
  std::vector<std::string> ParamNames = Collector.Used;
  std::vector<TypeKind> ParamTypes;
  for (const std::string &Name : ParamNames) {
    const LocalInfo *Info = lookupLocal(Name);
    assert(Info && "outer variable not in scope");
    ParamTypes.push_back(Info->Type);
  }

  TypeKind LiveOutType = TypeKind::Void;
  if (!LiveOut.empty()) {
    const LocalInfo *Info = lookupLocal(LiveOut);
    assert(Info && "live-out not in scope");
    LiveOutType = Info->Type;
  }

  // Create the region function.
  Module &M = PL.module();
  Function *Region = M.makeFunction(
      formatString("%s.__cs.region.%u", F->Name.c_str(), NextRegionId++),
      irTypeOf(LiveOutType));
  Region->Loc = Block->loc();
  Region->IsRegion = true;
  Region->NumParams = static_cast<unsigned>(ParamNames.size());
  for (unsigned I = 0; I < ParamNames.size(); ++I)
    Region->addLocal(ParamNames[I], irTypeOf(ParamTypes[I]));

  // Membership metadata: bind member arguments to region parameters.
  for (const MemberSpec &Member : Block->Members) {
    MemberInstance MI;
    MI.SetName = Member.SetName;
    MI.Loc = Member.Loc;
    for (const std::string &Arg : Member.Args) {
      bool Found = false;
      for (unsigned I = 0; I < ParamNames.size(); ++I) {
        if (ParamNames[I] == Arg) {
          MI.ArgParams.push_back(I);
          Found = true;
          break;
        }
      }
      if (!Found)
        Diags.error(Member.Loc,
                    formatString("COMMSET argument '%s' must be a local "
                                 "variable of the enclosing function",
                                 Arg.c_str()));
    }
    Region->Members.push_back(std::move(MI));
  }

  // Lower the block body into the region function.
  FunctionLowerer RegionLowerer(PL, Region);
  RegionLowerer.lowerRegionBody(*Block, ParamNames, ParamTypes, LiveOut,
                                LiveOutType);

  // Call the region at the extraction site.
  std::vector<Operand> Args;
  for (unsigned I = 0; I < ParamNames.size(); ++I) {
    const LocalInfo *Info = lookupLocal(ParamNames[I]);
    Instruction *Load =
        B.createLoadLocal(Info->Slot, irTypeOf(Info->Type), Block->loc());
    Args.push_back(Operand::instr(Load));
  }
  Instruction *Call = B.createCall(Region, std::move(Args), Block->loc());
  if (!LiveOut.empty()) {
    const LocalInfo *Info = lookupLocal(LiveOut);
    B.createStoreLocal(Info->Slot, Operand::instr(Call), Block->loc());
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Operand FunctionLowerer::convert(Operand Value, TypeKind From, TypeKind To,
                                 SourceLoc Loc) {
  IRType FromIR = irTypeOf(From);
  IRType ToIR = irTypeOf(To);
  if (FromIR == ToIR)
    return Value;
  if (FromIR == IRType::I64 && ToIR == IRType::F64) {
    if (Value.K == Operand::Kind::ConstInt)
      return Operand::constFloat(static_cast<double>(Value.IntVal));
    return Operand::instr(B.createIntToFp(Value, Loc));
  }
  if (FromIR == IRType::F64 && ToIR == IRType::I64) {
    if (Value.K == Operand::Kind::ConstFloat)
      return Operand::constInt(static_cast<int64_t>(Value.FloatVal));
    return Operand::instr(B.createFpToInt(Value, Loc));
  }
  assert(false && "invalid conversion survived Sema");
  return Value;
}

Operand FunctionLowerer::lowerExpr(const Expr *E) {
  if (!E)
    return Operand::constInt(0);
  switch (E->kind()) {
  case ExprKind::IntLit:
    return Operand::constInt(cast<IntLitExpr>(E)->Value);
  case ExprKind::FloatLit:
    return Operand::constFloat(cast<FloatLitExpr>(E)->Value);
  case ExprKind::StrLit:
    return Operand::constStr(
        PL.module().internString(cast<StrLitExpr>(E)->Value));
  case ExprKind::VarRef: {
    const auto *Ref = cast<VarRefExpr>(E);
    if (Ref->IsGlobal) {
      int GlobalId = PL.module().findGlobal(Ref->Name);
      assert(GlobalId >= 0 && "global vanished after Sema");
      return Operand::instr(
          B.createLoadGlobal(static_cast<unsigned>(GlobalId),
                             PL.module().Globals[GlobalId].Type, E->loc()));
    }
    const LocalInfo *Info = lookupLocal(Ref->Name);
    assert(Info && "local vanished after Sema");
    return Operand::instr(
        B.createLoadLocal(Info->Slot, irTypeOf(Info->Type), E->loc()));
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    Operand Sub = lowerExpr(U->Sub.get());
    if (U->Op == UnaryOp::LNot) {
      Sub = convert(Sub, U->Sub->Type, TypeKind::Int, E->loc());
      return Operand::instr(B.createNot(Sub, E->loc()));
    }
    return Operand::instr(
        B.createNeg(irTypeOf(U->Sub->Type), Sub, E->loc()));
  }
  case ExprKind::Binary: {
    const auto *Bin = cast<BinaryExpr>(E);
    if (Bin->Op == BinaryOp::LAnd || Bin->Op == BinaryOp::LOr)
      return lowerShortCircuit(Bin);

    // Promote operands to a common numeric type.
    TypeKind LType = Bin->LHS->Type;
    TypeKind RType = Bin->RHS->Type;
    TypeKind Common =
        (LType == TypeKind::Double || RType == TypeKind::Double)
            ? TypeKind::Double
            : (LType == TypeKind::Ptr ? TypeKind::Ptr : TypeKind::Int);
    Operand LHS = lowerExpr(Bin->LHS.get());
    Operand RHS = lowerExpr(Bin->RHS.get());
    if (Common != TypeKind::Ptr) {
      LHS = convert(LHS, LType, Common, E->loc());
      RHS = convert(RHS, RType, Common, E->loc());
    }

    Opcode Op;
    bool IsCompare = false;
    switch (Bin->Op) {
    case BinaryOp::Add:
      Op = Opcode::Add;
      break;
    case BinaryOp::Sub:
      Op = Opcode::Sub;
      break;
    case BinaryOp::Mul:
      Op = Opcode::Mul;
      break;
    case BinaryOp::Div:
      Op = Opcode::Div;
      break;
    case BinaryOp::Rem:
      Op = Opcode::Rem;
      break;
    case BinaryOp::Eq:
      Op = Opcode::Eq;
      IsCompare = true;
      break;
    case BinaryOp::Ne:
      Op = Opcode::Ne;
      IsCompare = true;
      break;
    case BinaryOp::Lt:
      Op = Opcode::Lt;
      IsCompare = true;
      break;
    case BinaryOp::Le:
      Op = Opcode::Le;
      IsCompare = true;
      break;
    case BinaryOp::Gt:
      Op = Opcode::Gt;
      IsCompare = true;
      break;
    case BinaryOp::Ge:
      Op = Opcode::Ge;
      IsCompare = true;
      break;
    default:
      assert(false && "logical op handled above");
      return Operand::constInt(0);
    }
    if (IsCompare)
      return Operand::instr(B.createCompare(Op, LHS, RHS, E->loc()));
    return Operand::instr(
        B.createBinary(Op, irTypeOf(Common), LHS, RHS, E->loc()));
  }
  case ExprKind::Call:
    return lowerCall(cast<CallExpr>(E));
  }
  return Operand::constInt(0);
}

Operand FunctionLowerer::lowerShortCircuit(const BinaryExpr *E) {
  bool IsAnd = E->Op == BinaryOp::LAnd;
  unsigned Temp = F->addLocal(formatString("$sc%u", NextTempId++),
                              IRType::I64);

  Operand LHS = lowerExpr(E->LHS.get());
  LHS = convert(LHS, E->LHS->Type, TypeKind::Int, E->loc());
  BasicBlock *RhsBB = newBlock("sc.rhs");
  BasicBlock *ShortBB = newBlock("sc.short");
  BasicBlock *JoinBB = newBlock("sc.join");
  Instruction *LNonZero =
      B.createCompare(Opcode::Ne, LHS, Operand::constInt(0), E->loc());
  if (IsAnd)
    B.createCondBr(Operand::instr(LNonZero), RhsBB, ShortBB, E->loc());
  else
    B.createCondBr(Operand::instr(LNonZero), ShortBB, RhsBB, E->loc());

  B.setInsertBlock(RhsBB);
  Operand RHS = lowerExpr(E->RHS.get());
  RHS = convert(RHS, E->RHS->Type, TypeKind::Int, E->loc());
  Instruction *RNonZero =
      B.createCompare(Opcode::Ne, RHS, Operand::constInt(0), E->loc());
  B.createStoreLocal(Temp, Operand::instr(RNonZero), E->loc());
  B.createBr(JoinBB, E->loc());

  B.setInsertBlock(ShortBB);
  B.createStoreLocal(Temp, Operand::constInt(IsAnd ? 0 : 1), E->loc());
  B.createBr(JoinBB, E->loc());

  B.setInsertBlock(JoinBB);
  return Operand::instr(B.createLoadLocal(Temp, IRType::I64, E->loc()));
}

Operand FunctionLowerer::lowerCall(const CallExpr *E) {
  const FunctionDecl *CalleeDecl = PL.declFor(E->Callee);
  assert(CalleeDecl && "callee vanished after Sema");

  std::vector<Operand> Args;
  size_t N = std::min(E->Args.size(), CalleeDecl->Params.size());
  for (size_t I = 0; I < N; ++I) {
    Operand Arg = lowerExpr(E->Args[I].get());
    TypeKind From = E->Args[I]->Type;
    TypeKind To = CalleeDecl->Params[I].Type;
    if (From == TypeKind::Str && To == TypeKind::Ptr) {
      Args.push_back(Arg); // String literal passed as ptr.
      continue;
    }
    Args.push_back(convert(Arg, From, To, E->loc()));
  }

  Instruction *Call;
  if (CalleeDecl->IsExtern) {
    NativeDecl *Native = PL.nativeFor(E->Callee);
    assert(Native && "native declaration missing");
    Call = B.createCallNative(Native, std::move(Args), E->loc());
  } else {
    Function *Callee = PL.functionFor(E->Callee);
    assert(Callee && "function shell missing");
    Call = B.createCall(Callee, std::move(Args), E->loc());
  }
  if (Call->producesValue())
    return Operand::instr(Call);
  return Operand::constInt(0);
}

} // namespace

std::unique_ptr<Module> commset::lowerProgram(const Program &P,
                                              DiagnosticEngine &Diags) {
  ProgramLowerer PL(P, Diags);
  return PL.run();
}
