//===- Specialize.cpp -----------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//
//
// COMMSETNAMEDARGADD is implemented the way the paper's prototype does it
// (§4.2): the call path from the enabling call site to the named block is
// *inlined*, so the optionally-commuting block becomes a commutative block
// directly in the client, bound to the client's predicate arguments, and
// the client loop's PDG sees the callee's operations directly.
//
// The inline expansion at an enabled call `f(a0, a1)`:
//
//   { <t0> f$inlN.p0 = a0; <t1> f$inlN.p1 = a1;
//     <body of f with params and locals renamed with the $inlN suffix,
//      the enabled named block gaining the enable's member specs> }
//
// Functions exporting named blocks must not contain `return` (enforced
// here), which makes statement-level inlining sound.
//
//===----------------------------------------------------------------------===//

#include "commset/Lower/Specialize.h"

#include "commset/Lang/ASTClone.h"
#include "commset/Support/Casting.h"
#include "commset/Support/StringUtils.h"

#include <map>

using namespace commset;

namespace {

/// Renames every occurrence of the mapped variable names in a statement
/// tree (declarations, assignments, references, COMMSET member arguments).
class Renamer {
public:
  explicit Renamer(const std::map<std::string, std::string> &Map)
      : Map(Map) {}

  void rename(Stmt *S) {
    if (!S)
      return;
    switch (S->kind()) {
    case StmtKind::Block: {
      auto *B = cast<BlockStmt>(S);
      for (MemberSpec &Member : B->Members)
        for (std::string &Arg : Member.Args)
          renameName(Arg);
      for (StmtPtr &Sub : B->Body)
        rename(Sub.get());
      return;
    }
    case StmtKind::Decl: {
      auto *D = cast<DeclStmt>(S);
      rename(D->Init.get());
      renameName(D->Name);
      return;
    }
    case StmtKind::Assign: {
      auto *A = cast<AssignStmt>(S);
      rename(A->Value.get());
      if (!A->IsGlobal)
        renameName(A->Name);
      return;
    }
    case StmtKind::ExprStmt: {
      auto *E = cast<ExprStmt>(S);
      rename(E->E.get());
      for (EnableSpec &Spec : E->Enables)
        for (MemberSpec &Member : Spec.Sets)
          for (std::string &Arg : Member.Args)
            renameName(Arg);
      return;
    }
    case StmtKind::If: {
      auto *I = cast<IfStmt>(S);
      rename(I->Cond.get());
      rename(I->Then.get());
      rename(I->Else.get());
      return;
    }
    case StmtKind::While: {
      auto *W = cast<WhileStmt>(S);
      rename(W->Cond.get());
      rename(W->Body.get());
      return;
    }
    case StmtKind::For: {
      auto *F = cast<ForStmt>(S);
      rename(F->Init.get());
      rename(F->Cond.get());
      rename(F->Step.get());
      rename(F->Body.get());
      return;
    }
    case StmtKind::Return:
      rename(cast<ReturnStmt>(S)->Value.get());
      return;
    default:
      return;
    }
  }

  void rename(Expr *E) {
    if (!E)
      return;
    switch (E->kind()) {
    case ExprKind::VarRef: {
      auto *Ref = cast<VarRefExpr>(E);
      if (!Ref->IsGlobal)
        renameName(Ref->Name);
      return;
    }
    case ExprKind::Unary:
      rename(cast<UnaryExpr>(E)->Sub.get());
      return;
    case ExprKind::Binary:
      rename(cast<BinaryExpr>(E)->LHS.get());
      rename(cast<BinaryExpr>(E)->RHS.get());
      return;
    case ExprKind::Call:
      for (ExprPtr &Arg : cast<CallExpr>(E)->Args)
        rename(Arg.get());
      return;
    default:
      return;
    }
  }

private:
  void renameName(std::string &Name) {
    auto It = Map.find(Name);
    if (It != Map.end())
      Name = It->second;
  }

  const std::map<std::string, std::string> &Map;
};

/// Collects all names declared anywhere inside a statement tree.
void collectDeclaredNames(const Stmt *S, std::vector<std::string> &Names) {
  if (!S)
    return;
  switch (S->kind()) {
  case StmtKind::Block:
    for (const StmtPtr &Sub : cast<BlockStmt>(S)->Body)
      collectDeclaredNames(Sub.get(), Names);
    return;
  case StmtKind::Decl:
    Names.push_back(cast<DeclStmt>(S)->Name);
    return;
  case StmtKind::If:
    collectDeclaredNames(cast<IfStmt>(S)->Then.get(), Names);
    collectDeclaredNames(cast<IfStmt>(S)->Else.get(), Names);
    return;
  case StmtKind::While:
    collectDeclaredNames(cast<WhileStmt>(S)->Body.get(), Names);
    return;
  case StmtKind::For:
    collectDeclaredNames(cast<ForStmt>(S)->Init.get(), Names);
    collectDeclaredNames(cast<ForStmt>(S)->Body.get(), Names);
    return;
  default:
    return;
  }
}

bool containsReturn(const Stmt *S) {
  if (!S)
    return false;
  switch (S->kind()) {
  case StmtKind::Return:
    return true;
  case StmtKind::Block:
    for (const StmtPtr &Sub : cast<BlockStmt>(S)->Body)
      if (containsReturn(Sub.get()))
        return true;
    return false;
  case StmtKind::If:
    return containsReturn(cast<IfStmt>(S)->Then.get()) ||
           containsReturn(cast<IfStmt>(S)->Else.get());
  case StmtKind::While:
    return containsReturn(cast<WhileStmt>(S)->Body.get());
  case StmtKind::For:
    return containsReturn(cast<ForStmt>(S)->Body.get());
  default:
    return false;
  }
}

class Specializer {
public:
  Specializer(Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  bool run() {
    for (auto &F : P.Functions)
      if (F->Body)
        visitBlock(F->Body.get());
    return !Diags.hasErrors();
  }

private:
  void visitStmt(StmtPtr &Slot) {
    Stmt *S = Slot.get();
    if (!S)
      return;
    switch (S->kind()) {
    case StmtKind::Block:
      visitBlock(cast<BlockStmt>(S));
      return;
    case StmtKind::If:
      visitStmt(cast<IfStmt>(S)->Then);
      visitStmt(cast<IfStmt>(S)->Else);
      return;
    case StmtKind::While:
      visitStmt(cast<WhileStmt>(S)->Body);
      return;
    case StmtKind::For:
      visitStmt(cast<ForStmt>(S)->Body);
      return;
    case StmtKind::ExprStmt: {
      auto *E = cast<ExprStmt>(S);
      if (E->Enables.empty())
        return;
      if (StmtPtr Inlined = inlineEnabledCall(E)) {
        Slot = std::move(Inlined);
        // The inlined body may itself contain enabled calls.
        if (++InlineCount > Limit) {
          Diags.error(E->loc(), "named-block inlining exceeded its budget; "
                                "recursive enables?");
          return;
        }
        visitStmt(Slot);
      }
      return;
    }
    default:
      return;
    }
  }

  void visitBlock(BlockStmt *B) {
    for (StmtPtr &Sub : B->Body)
      visitStmt(Sub);
  }

  /// Builds the replacement block for an enabled call; null (after
  /// diagnostics) when the call cannot be inlined.
  StmtPtr inlineEnabledCall(ExprStmt *S) {
    auto *Call = dyn_cast<CallExpr>(S->E.get());
    if (!Call) {
      Diags.error(S->loc(), "enable pragma must precede a call statement");
      return nullptr;
    }
    FunctionDecl *Callee = P.findFunction(Call->Callee);
    if (!Callee || !Callee->Body)
      return nullptr; // Sema diagnoses unknown/extern callees.
    if (containsReturn(Callee->Body.get())) {
      Diags.error(S->loc(),
                  formatString("cannot enable named blocks of '%s': "
                               "functions exporting named blocks must not "
                               "contain return statements",
                               Callee->Name.c_str()));
      return nullptr;
    }
    if (Call->Args.size() != Callee->Params.size())
      return nullptr; // Sema diagnoses arity errors.

    unsigned Id = NextInlineId++;
    auto Suffix = [&](const std::string &Name) {
      return formatString("%s$inl%u", Name.c_str(), Id);
    };

    // Rename map: parameters and every local declared in the body.
    std::map<std::string, std::string> Rename;
    for (const ParamDecl &Param : Callee->Params)
      Rename[Param.Name] = Suffix(Param.Name);
    std::vector<std::string> Declared;
    collectDeclaredNames(Callee->Body.get(), Declared);
    for (const std::string &Name : Declared)
      Rename.try_emplace(Name, Suffix(Name));

    StmtPtr BodyClone = cloneStmt(Callee->Body.get());
    Renamer R(Rename);
    R.rename(BodyClone.get());
    auto *Body = cast<BlockStmt>(BodyClone.get());

    // Attach the enable's member specs to the named blocks. Arguments stay
    // client variables, which are in scope at the call site.
    for (EnableSpec &Spec : S->Enables) {
      BlockStmt *Named = findNamedBlock(Body, Spec.BlockName);
      if (!Named) {
        Diags.error(Spec.Loc,
                    formatString("named block '%s' not found in '%s'",
                                 Spec.BlockName.c_str(),
                                 Callee->Name.c_str()));
        return nullptr;
      }
      for (MemberSpec &Member : Spec.Sets)
        Named->Members.push_back(Member);
      Named->NamedBlock.clear();
    }

    // Wrapper: parameter initializers then the inlined body.
    std::vector<StmtPtr> Stmts;
    for (size_t I = 0; I < Callee->Params.size(); ++I) {
      Stmts.push_back(std::make_unique<DeclStmt>(
          Callee->Params[I].Type, Rename[Callee->Params[I].Name],
          std::move(Call->Args[I]), S->loc()));
    }
    Stmts.push_back(std::move(BodyClone));
    return std::make_unique<BlockStmt>(std::move(Stmts), S->loc());
  }

  static BlockStmt *findNamedBlock(Stmt *S, const std::string &Name) {
    if (!S)
      return nullptr;
    switch (S->kind()) {
    case StmtKind::Block: {
      auto *B = cast<BlockStmt>(S);
      // Renaming does not touch NamedBlock labels.
      if (B->NamedBlock == Name)
        return B;
      for (StmtPtr &Sub : B->Body)
        if (BlockStmt *Found = findNamedBlock(Sub.get(), Name))
          return Found;
      return nullptr;
    }
    case StmtKind::If: {
      auto *I = cast<IfStmt>(S);
      if (BlockStmt *Found = findNamedBlock(I->Then.get(), Name))
        return Found;
      return findNamedBlock(I->Else.get(), Name);
    }
    case StmtKind::While:
      return findNamedBlock(cast<WhileStmt>(S)->Body.get(), Name);
    case StmtKind::For:
      return findNamedBlock(cast<ForStmt>(S)->Body.get(), Name);
    default:
      return nullptr;
    }
  }

  Program &P;
  DiagnosticEngine &Diags;
  unsigned NextInlineId = 0;
  unsigned InlineCount = 0;
  static constexpr unsigned Limit = 4096;
};

} // namespace

bool commset::specializeNamedBlocks(Program &P, DiagnosticEngine &Diags) {
  return Specializer(P, Diags).run();
}
