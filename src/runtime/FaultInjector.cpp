//===- FaultInjector.cpp --------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Runtime/FaultInjector.h"

#include "commset/Trace/Trace.h"

#include <chrono>
#include <sstream>
#include <thread>

using namespace commset;

const char *commset::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::None:
    return "none";
  case FaultKind::WorkerDelay:
    return "worker-delay";
  case FaultKind::WorkerStall:
    return "worker-stall";
  case FaultKind::StmAbort:
    return "stm-abort";
  case FaultKind::LockDelay:
    return "lock-delay";
  case FaultKind::QueueStall:
    return "queue-stall";
  case FaultKind::TaskFailure:
    return "task-failure";
  case FaultKind::SlowClient:
    return "slow-client";
  case FaultKind::ClientDisconnect:
    return "client-disconnect";
  case FaultKind::CompileFail:
    return "compile-fail";
  case FaultKind::StmExhausted:
    return "stm-exhausted";
  case FaultKind::LockTimeout:
    return "lock-timeout";
  case FaultKind::WatchdogStall:
    return "watchdog-stall";
  case FaultKind::DeadlineExceeded:
    return "deadline-exceeded";
  case FaultKind::Cancelled:
    return "cancelled";
  case FaultKind::Internal:
    return "internal-error";
  }
  return "unknown";
}

uint64_t commset::steadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t commset::faultMix(uint64_t X) {
  X += 0x9E3779B97F4A7C15ULL;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
  return X ^ (X >> 31);
}

std::string FaultPolicy::describe() const {
  std::ostringstream Os;
  Os << "policy '" << Name << "' seed=" << Seed;
  auto rate = [&](const char *What, unsigned PerMille, uint64_t Us) {
    if (!PerMille)
      return;
    Os << " " << What << "=" << PerMille << "/1000";
    if (Us)
      Os << "@" << Us << "us";
  };
  rate("worker-delay", WorkerDelayPerMille, WorkerDelayUs);
  rate("worker-stall", WorkerStallPerMille, WorkerStallUs);
  rate("stm-abort", StmAbortPerMille, 0);
  rate("lock-delay", LockDelayPerMille, LockDelayUs);
  rate("queue-stall", QueueStallPerMille, QueueStallUs);
  rate("task-failure", TaskFailurePerMille, 0);
  rate("slow-client", SlowClientPerMille, SlowClientUs);
  rate("client-disconnect", ClientDisconnectPerMille, 0);
  rate("compile-fail", CompileFailPerMille, 0);
  return Os.str();
}

FaultPolicy FaultPolicy::preset(unsigned Index, uint64_t Seed) {
  FaultPolicy P;
  P.Seed = Seed;
  switch (Index % 4) {
  case 0: // STM abort storm + a little scheduling noise.
    P.Name = "abort-storm";
    P.StmAbortPerMille = 350;
    P.WorkerDelayPerMille = 80;
    P.WorkerDelayUs = 150;
    break;
  case 1: // Stalls: slow workers and slow queue consumers.
    P.Name = "stall";
    P.WorkerStallPerMille = 25;
    P.WorkerStallUs = 15000;
    P.QueueStallPerMille = 80;
    P.QueueStallUs = 200;
    break;
  case 2: // Spurious task failures force the sequential fallback.
    P.Name = "task-failure";
    P.TaskFailurePerMille = 12;
    P.WorkerDelayPerMille = 60;
    P.WorkerDelayUs = 100;
    break;
  default: // A bit of everything.
    P.Name = "mixed";
    P.StmAbortPerMille = 120;
    P.LockDelayPerMille = 150;
    P.LockDelayUs = 400;
    P.QueueStallPerMille = 40;
    P.QueueStallUs = 150;
    P.TaskFailurePerMille = 6;
    break;
  }
  return P;
}

FaultPolicy FaultPolicy::servePreset(unsigned Index, uint64_t Seed) {
  FaultPolicy P;
  P.Seed = Seed;
  switch (Index % 4) {
  case 0: // Clients that trickle bytes; the listener must stay responsive.
    P.Name = "slow-client";
    P.SlowClientPerMille = 200;
    P.SlowClientUs = 5000;
    break;
  case 1: // Connections dropping mid-request / mid-reply.
    P.Name = "disconnect";
    P.ClientDisconnectPerMille = 120;
    P.SlowClientPerMille = 60;
    P.SlowClientUs = 1500;
    break;
  case 2: // Forced compile failures; replies must say so, cache stays clean.
    P.Name = "compile-fail";
    P.CompileFailPerMille = 250;
    break;
  default: // Serving noise plus in-region worker faults, so degradation
           // and the circuit breaker fire under live traffic.
    P.Name = "server-mixed";
    P.SlowClientPerMille = 80;
    P.SlowClientUs = 2000;
    P.ClientDisconnectPerMille = 40;
    P.CompileFailPerMille = 40;
    P.TaskFailurePerMille = 20;
    P.StmAbortPerMille = 100;
    break;
  }
  return P;
}

unsigned FaultInjector::rateOf(FaultKind Kind) const {
  switch (Kind) {
  case FaultKind::WorkerDelay:
    return P.WorkerDelayPerMille;
  case FaultKind::WorkerStall:
    return P.WorkerStallPerMille;
  case FaultKind::StmAbort:
    return P.StmAbortPerMille;
  case FaultKind::LockDelay:
    return P.LockDelayPerMille;
  case FaultKind::QueueStall:
    return P.QueueStallPerMille;
  case FaultKind::TaskFailure:
    return P.TaskFailurePerMille;
  case FaultKind::SlowClient:
    return P.SlowClientPerMille;
  case FaultKind::ClientDisconnect:
    return P.ClientDisconnectPerMille;
  case FaultKind::CompileFail:
    return P.CompileFailPerMille;
  default:
    return 0;
  }
}

uint64_t FaultInjector::delayUsOf(FaultKind Kind) const {
  switch (Kind) {
  case FaultKind::WorkerDelay:
    return P.WorkerDelayUs;
  case FaultKind::WorkerStall:
    return P.WorkerStallUs;
  case FaultKind::LockDelay:
    return P.LockDelayUs;
  case FaultKind::QueueStall:
    return P.QueueStallUs;
  case FaultKind::SlowClient:
    return P.SlowClientUs;
  default:
    return 0;
  }
}

bool FaultInjector::fires(FaultKind Kind, unsigned Thread) {
  unsigned Rate = rateOf(Kind);
  unsigned K = static_cast<unsigned>(Kind) - 1; // WorkerDelay == index 0.
  if (K >= NumInjectableFaultKinds)
    return false;
  unsigned T = Thread % MaxThreads;
  // The per-stream counter advances even at rate 0 so that enabling one
  // fault kind never perturbs another kind's decision stream.
  uint64_t Idx = Calls[K][T].fetch_add(1, std::memory_order_relaxed);
  if (!Rate)
    return false;
  uint64_t H = faultMix(faultMix(faultMix(P.Seed ^ (K + 1)) ^ (T + 1)) ^ Idx);
  if (H % 1000 >= Rate)
    return false;
  Injected[K].fetch_add(1, std::memory_order_relaxed);
  trace::emit(trace::EventKind::FaultInject, Thread,
              static_cast<uint64_t>(Kind));
  return true;
}

bool FaultInjector::maybeDelay(FaultKind Kind, unsigned Thread) {
  if (!fires(Kind, Thread))
    return false;
  uint64_t Us = delayUsOf(Kind);
  if (Us)
    std::this_thread::sleep_for(std::chrono::microseconds(Us));
  return true;
}

uint64_t FaultInjector::injected(FaultKind Kind) const {
  unsigned K = static_cast<unsigned>(Kind) - 1;
  if (K >= NumInjectableFaultKinds)
    return 0;
  return Injected[K].load(std::memory_order_relaxed);
}

uint64_t FaultInjector::totalInjected() const {
  uint64_t Sum = 0;
  for (unsigned K = 0; K < NumInjectableFaultKinds; ++K)
    Sum += Injected[K].load(std::memory_order_relaxed);
  return Sum;
}

namespace {
std::string formatRegionFault(FaultKind Kind, unsigned Thread,
                              const std::string &Detail) {
  std::ostringstream Os;
  Os << "region fault [" << faultKindName(Kind) << "] on thread " << Thread
     << ": " << Detail;
  return Os.str();
}
} // namespace

RegionFault::RegionFault(FaultKind Kind, unsigned Thread,
                         const std::string &Detail)
    : std::runtime_error(formatRegionFault(Kind, Thread, Detail)),
      Kind(Kind), Thread(Thread), Detail(Detail) {}

const ResilienceConfig &commset::defaultResilience() {
  static const ResilienceConfig Config;
  return Config;
}
