//===- Privatization.cpp - Per-worker shadow replicas for Priv sync -------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Runtime/Privatization.h"

#include "commset/Trace/Trace.h"

#include <algorithm>

using namespace commset;

PrivatizationManager::PrivatizationManager(
    const std::set<unsigned> &PrivSlots, unsigned NumWorkers,
    const std::vector<bool> &FloatSlot, WorkerPool &Pool) {
  unsigned MaxSlot = 0;
  for (unsigned Slot : PrivSlots)
    MaxSlot = std::max(MaxSlot, Slot);
  DenseIdx.assign(PrivSlots.empty() ? 0 : MaxSlot + 1, -1);
  for (unsigned Slot : PrivSlots) {
    DenseIdx[Slot] = static_cast<int>(SlotList.size());
    SlotList.push_back(Slot);
    FloatSlots.push_back(Slot < FloatSlot.size() && FloatSlot[Slot]);
  }

  Rows.resize(NumWorkers);
  for (unsigned W = 0; W < NumWorkers; ++W) {
    Rows[W] = Pool.leaseReplicaRow(W, SlotList.size());
    // Reset to the additive identity: a leased row still holds the sums of
    // whatever region last used this worker slot (the reuse the PrivTest
    // reset case pins). All-zero bits are 0 for ints and 0.0 for doubles.
    for (size_t I = 0; I < SlotList.size(); ++I)
      Rows[W][I] = RtValue();
  }
}

void PrivatizationManager::merge(RtValue *Globals, unsigned MasterTid) {
  // Fixed worker-major, slot-minor order: the merged value (including
  // float rounding) depends only on the plan's iteration assignment, never
  // on which worker finished last.
  for (unsigned W = 0; W < Rows.size(); ++W) {
    for (size_t I = 0; I < SlotList.size(); ++I) {
      RtValue Part = Rows[W][I];
      RtValue &Shared = Globals[SlotList[I]];
      if (FloatSlots[I])
        Shared.D += Part.D;
      else
        Shared.I += Part.I;
      trace::emit(trace::EventKind::PrivMerge, MasterTid, SlotList[I], W);
    }
  }
  Merged = true;
}
