//===- Sched.cpp ----------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Runtime/Sched.h"

#include <cstring>

using namespace commset;

const char *commset::schedPolicyName(SchedPolicy P) {
  switch (P) {
  case SchedPolicy::Static:
    return "static";
  case SchedPolicy::Dynamic:
    return "dynamic";
  case SchedPolicy::Guided:
    return "guided";
  }
  return "?";
}

bool commset::schedPolicyFromString(const char *Name, SchedPolicy &Out) {
  if (std::strcmp(Name, "static") == 0)
    Out = SchedPolicy::Static;
  else if (std::strcmp(Name, "dynamic") == 0)
    Out = SchedPolicy::Dynamic;
  else if (std::strcmp(Name, "guided") == 0)
    Out = SchedPolicy::Guided;
  else
    return false;
  return true;
}
