//===- Stm.cpp ------------------------------------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Runtime/Stm.h"

#include "commset/Trace/Trace.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace commset;

namespace {
bool isLocked(uint64_t StripeValue) { return StripeValue & 1; }
} // namespace

void Stm::begin() {
  ReadVersion = Space.Clock.load(std::memory_order_acquire);
  Aborted = false;
  ReadSet.clear();
  WriteSet.clear();
  ++Attempts;
  trace::emit(trace::EventKind::StmBegin, ThreadId, TraceSet, Attempts);
}

uint64_t Stm::read(const uint64_t *Addr) {
  if (Aborted)
    return 0;
  // Read-own-writes.
  auto WriteIt = WriteSet.find(const_cast<uint64_t *>(Addr));
  if (WriteIt != WriteSet.end())
    return WriteIt->second;

  auto &Stripe = Space.stripeFor(Addr);
  uint64_t Pre = Stripe.load(std::memory_order_acquire);
  uint64_t Value = *Addr;
  uint64_t Post = Stripe.load(std::memory_order_acquire);
  if (isLocked(Pre) || Pre != Post || Pre > ReadVersion) {
    Aborted = true;
    return 0;
  }
  ReadSet.emplace(Addr, Pre);
  return Value;
}

void Stm::write(uint64_t *Addr, uint64_t Value) {
  if (Aborted)
    return;
  WriteSet[Addr] = Value;
}

bool Stm::lockWriteSet(std::vector<std::atomic<uint64_t> *> &Locked) {
  for (auto &[Addr, Value] : WriteSet) {
    auto &Stripe = Space.stripeFor(Addr);
    uint64_t Current = Stripe.load(std::memory_order_acquire);
    // A stripe may cover several addresses in the write set; locking twice
    // must not deadlock, so skip stripes we already own.
    bool AlreadyOwned = false;
    for (auto *Own : Locked)
      AlreadyOwned |= (Own == &Stripe);
    if (AlreadyOwned)
      continue;
    if (isLocked(Current) || Current > ReadVersion)
      return false;
    if (!Stripe.compare_exchange_strong(Current, Current | 1,
                                        std::memory_order_acq_rel))
      return false;
    Locked.push_back(&Stripe);
  }
  return true;
}

bool Stm::commit() {
  bool Ok = commitImpl();
  trace::emit(Ok ? trace::EventKind::StmCommit : trace::EventKind::StmAbort,
              ThreadId, TraceSet, Attempts);
  return Ok;
}

bool Stm::commitImpl() {
  if (Aborted)
    return false;
  // Injected abort storm: indistinguishable from a genuine conflict, so it
  // exercises exactly the retry/backoff/exhaustion path real contention hits.
  if (Faults && Faults->fires(FaultKind::StmAbort, ThreadId))
    return false;
  if (WriteSet.empty())
    return true; // Read-only transactions validated on the fly.

  std::vector<std::atomic<uint64_t> *> Locked;
  if (!lockWriteSet(Locked)) {
    for (auto *Stripe : Locked)
      Stripe->fetch_and(~uint64_t(1), std::memory_order_release);
    return false;
  }

  // Validate the read set (skip stripes we own).
  for (auto &[Addr, Version] : ReadSet) {
    auto &Stripe = Space.stripeFor(Addr);
    uint64_t Current = Stripe.load(std::memory_order_acquire);
    bool Owned = false;
    for (auto *Own : Locked)
      Owned |= (Own == &Stripe);
    uint64_t Effective = Owned ? (Current & ~uint64_t(1)) : Current;
    if ((!Owned && isLocked(Current)) || Effective > ReadVersion ||
        Effective != Version) {
      for (auto *Stripe2 : Locked)
        Stripe2->fetch_and(~uint64_t(1), std::memory_order_release);
      return false;
    }
  }

  uint64_t CommitVersion =
      Space.Clock.fetch_add(2, std::memory_order_acq_rel) + 2;

  // Publish.
  for (auto &[Addr, Value] : WriteSet)
    *Addr = Value;
  for (auto *Stripe : Locked)
    Stripe->store(CommitVersion, std::memory_order_release);
  return true;
}

StmOutcome StmRetryGovernor::onFailedAttempt() {
  ++Failures;
  if (Failures >= MaxAttempts)
    return StmOutcome::Exhausted;
  if (BaseUs) {
    uint64_t Shift = std::min<uint64_t>(Failures - 1, 63);
    uint64_t Envelope = BaseUs << Shift;
    if (!Envelope || Envelope > CapUs)
      Envelope = CapUs;
    if (Envelope) {
      uint64_t SleepUs = 1 + faultMix(JitterSeed ^ Failures) % Envelope;
      std::this_thread::sleep_for(std::chrono::microseconds(SleepUs));
    }
  }
  return StmOutcome::Retry;
}
