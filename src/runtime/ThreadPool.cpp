//===- ThreadPool.cpp - Supervised fork-join ------------------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Runtime/ThreadPool.h"

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <sstream>

#if defined(__linux__)
#include <pthread.h>
#endif

using namespace commset;

std::string commset::workerName(unsigned Worker) {
  return "commset-w" + std::to_string(Worker);
}

void commset::setCurrentWorkerThreadName(unsigned Worker) {
#if defined(__linux__)
  // pthread thread names are capped at 15 chars + NUL; "commset-w" leaves
  // room for six digits of worker id, far beyond MaxWorkers.
  pthread_setname_np(pthread_self(), workerName(Worker).c_str());
#else
  (void)Worker;
#endif
}

namespace {

/// Join bookkeeping shared between workers and the supervisor. Held by
/// shared_ptr so a detached (abandoned) worker's completion bookkeeping
/// stays valid even after runParallelSupervised returns.
struct JoinState {
  std::mutex M;
  std::condition_variable Cv;
  std::vector<char> Done;
  size_t DoneCount = 0;

  bool Faulted = false;
  FaultKind Kind = FaultKind::None;
  unsigned FaultThread = 0;
  std::string Detail;

  /// Records a worker fault. A real fault always displaces a Cancelled
  /// unwind: workers cancelled *because* of the first fault are collateral,
  /// not the cause.
  void recordFault(FaultKind K, unsigned T, std::string D) {
    std::lock_guard<std::mutex> G(M);
    bool Replace = !Faulted || (Kind == FaultKind::Cancelled &&
                                K != FaultKind::Cancelled);
    if (Replace) {
      Faulted = true;
      Kind = K;
      FaultThread = T;
      Detail = std::move(D);
    }
  }
};

} // namespace

SupervisedReport commset::runParallelSupervised(
    const std::vector<std::function<void()>> &Tasks, RegionControl &Control,
    uint64_t WatchdogStallMs, uint64_t JoinGraceMs,
    const std::function<void()> &CancelAll) {
  SupervisedReport Rep;
  if (Tasks.empty())
    return Rep;
  const size_t N = Tasks.size();

  auto S = std::make_shared<JoinState>();
  S->Done.assign(N, 0);

  std::vector<std::thread> Threads;
  Threads.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    // Tasks/Control/CancelAll are captured by reference: they outlive every
    // joined worker, and an abandoned worker is reported as unrecoverable
    // (AllJoined=false) precisely because it may still touch region state.
    Threads.emplace_back([&Tasks, &Control, &CancelAll, S, I] {
      setCurrentWorkerThreadName(static_cast<unsigned>(I));
      trace::emit(trace::EventKind::TaskDispatch, static_cast<uint32_t>(I));
      bool Clean = false;
      try {
        Tasks[I]();
        Clean = true;
      } catch (const RegionFault &F) {
        S->recordFault(F.Kind, F.Thread, F.Detail);
        Control.cancel();
        if (CancelAll)
          CancelAll();
      } catch (const std::exception &E) {
        S->recordFault(FaultKind::Internal, static_cast<unsigned>(I),
                       E.what());
        Control.cancel();
        if (CancelAll)
          CancelAll();
      }
      trace::emit(trace::EventKind::TaskComplete, static_cast<uint32_t>(I),
                  Clean ? 0 : 1);
      {
        std::lock_guard<std::mutex> G(S->M);
        S->Done[I] = 1;
        ++S->DoneCount;
      }
      S->Cv.notify_all();
    });
  }

  // Supervisor loop on the calling thread. "Progress" is any heartbeat or
  // task completion anywhere in the region; only a *global* stall trips the
  // watchdog, so one slow worker among busy peers never does.
  uint64_t TickSrc = WatchdogStallMs ? WatchdogStallMs : JoinGraceMs;
  uint64_t TickMs = TickSrc / 4;
  TickMs = TickMs < 2 ? 2 : (TickMs > 50 ? 50 : TickMs);
  auto Tick = std::chrono::milliseconds(TickMs);

  uint64_t LastBeats = Control.beats();
  size_t LastDone = 0;
  auto LastProgress = std::chrono::steady_clock::now();
  bool Abandoned = false;

  std::unique_lock<std::mutex> Lk(S->M);
  while (S->DoneCount < N) {
    S->Cv.wait_for(Lk, Tick);
    if (S->DoneCount == N)
      break;
    uint64_t Beats = Control.beats();
    size_t DoneC = S->DoneCount;
    auto Now = std::chrono::steady_clock::now();
    if (Beats != LastBeats || DoneC != LastDone) {
      LastBeats = Beats;
      LastDone = DoneC;
      LastProgress = Now;
      continue;
    }
    auto StalledMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                         Now - LastProgress)
                         .count();
    if (!Rep.WatchdogTripped) {
      if (WatchdogStallMs &&
          static_cast<uint64_t>(StalledMs) >= WatchdogStallMs) {
        Rep.WatchdogTripped = true;
        for (size_t I = 0; I < N; ++I)
          if (!S->Done[I])
            Rep.StalledWorkers.push_back(static_cast<unsigned>(I));
        Lk.unlock();
        Control.cancel();
        if (CancelAll)
          CancelAll();
        Lk.lock();
        // Fresh clock: the grace window measures post-cancel quiet time.
        LastProgress = std::chrono::steady_clock::now();
      }
    } else if (static_cast<uint64_t>(StalledMs) >= JoinGraceMs) {
      Abandoned = true;
      break;
    }
  }
  Lk.unlock();

  if (!Abandoned) {
    for (std::thread &T : Threads)
      T.join();
  } else {
    for (size_t I = 0; I < N; ++I) {
      bool IsDone;
      {
        std::lock_guard<std::mutex> G(S->M);
        IsDone = S->Done[I];
      }
      if (IsDone) {
        Threads[I].join();
      } else {
        Threads[I].detach();
        Rep.AllJoined = false;
      }
    }
  }

  {
    std::lock_guard<std::mutex> G(S->M);
    Rep.Faulted = S->Faulted;
    Rep.Kind = S->Kind;
    Rep.FaultThread = S->FaultThread;
    Rep.Detail = S->Detail;
  }

  // A watchdog trip is the primary fault unless a worker reported a real
  // (non-Cancelled) fault of its own before wedging the region.
  if (Rep.WatchdogTripped &&
      (!Rep.Faulted || Rep.Kind == FaultKind::Cancelled)) {
    std::ostringstream Os;
    Os << "watchdog: no region progress for " << WatchdogStallMs
       << "ms; stalled workers:";
    for (unsigned W : Rep.StalledWorkers)
      Os << " " << W;
    if (!Rep.StalledWorkers.empty()) {
      Os << " (";
      for (size_t I = 0; I < Rep.StalledWorkers.size(); ++I)
        Os << (I ? ", " : "") << workerName(Rep.StalledWorkers[I]);
      Os << ")";
    }
    Rep.Faulted = true;
    Rep.Kind = FaultKind::WatchdogStall;
    Rep.FaultThread =
        Rep.StalledWorkers.empty() ? 0 : Rep.StalledWorkers.front();
    Rep.Detail = Os.str();
  }
  if (!Rep.AllJoined)
    Rep.Detail += " [worker(s) abandoned after join grace expired]";
  return Rep;
}
