//===- ThreadPool.cpp - Persistent worker pool with supervision -----------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Runtime/ThreadPool.h"

#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <sstream>

#if defined(__linux__)
#include <pthread.h>
#endif

using namespace commset;

std::string commset::workerName(unsigned Worker) {
  return "commset-w" + std::to_string(Worker);
}

void commset::setCurrentWorkerThreadName(unsigned Worker) {
#if defined(__linux__)
  // pthread thread names are capped at 15 chars + NUL; "commset-w" leaves
  // room for six digits of worker id, far beyond MaxWorkers.
  pthread_setname_np(pthread_self(), workerName(Worker).c_str());
#else
  (void)Worker;
#endif
}

namespace {

/// Set while the current thread is executing a pool job. A parallel region
/// entered from inside one would self-deadlock on the pool mutex, so such
/// (unexpected, but cheap to tolerate) nestings fall back to
/// spawn-per-region threads.
thread_local bool InPoolWorker = false;

/// Join bookkeeping shared between workers and the supervisor. Held by
/// shared_ptr so an abandoned worker's completion bookkeeping stays valid
/// even after the supervised call returns.
struct JoinState {
  std::mutex M;
  std::condition_variable Cv;
  std::vector<char> Done;
  size_t DoneCount = 0;

  bool Faulted = false;
  FaultKind Kind = FaultKind::None;
  unsigned FaultThread = 0;
  std::string Detail;

  /// Cancellation plumbing for the region, valid only while the
  /// supervising call is alive. The supervisor nulls both (and sets
  /// RegionClosed) under M before returning, so an abandoned worker that
  /// faults *after* the region's frames are destroyed finds nothing
  /// dangling to poke. Abandonment is only reachable after the watchdog
  /// already cancelled the region, so the late cancel it skips is
  /// redundant by construction.
  RegionControl *Control = nullptr;
  std::function<void()> CancelAll;
  bool RegionClosed = false;

  /// Records a worker fault. A real fault always displaces a Cancelled
  /// unwind: workers cancelled *because* of the first fault are collateral,
  /// not the cause.
  void recordFault(FaultKind K, unsigned T, std::string D) {
    std::lock_guard<std::mutex> G(M);
    bool Replace = !Faulted || (Kind == FaultKind::Cancelled &&
                                K != FaultKind::Cancelled);
    if (Replace) {
      Faulted = true;
      Kind = K;
      FaultThread = T;
      Detail = std::move(D);
    }
  }

  /// Worker-side cancel-the-siblings. Runs the hooks while holding M so
  /// the supervisor's close (same lock) strictly orders with them: either
  /// the worker sees RegionClosed and does nothing, or the supervisor is
  /// still inside runSupervised and the region state is alive. The hooks
  /// never touch M themselves (RegionControl is lock-free; CancelAll only
  /// poisons platform queues), so holding it here cannot deadlock.
  void cancelRegion() {
    std::lock_guard<std::mutex> G(M);
    if (RegionClosed)
      return;
    if (Control)
      Control->cancel();
    if (CancelAll)
      CancelAll();
  }

  /// Supervisor-side: detach the region before returning. Also drops the
  /// CancelAll closure so any state it captured is released with the
  /// region instead of living as long as the last abandoned worker.
  void closeRegion() {
    std::lock_guard<std::mutex> G(M);
    RegionClosed = true;
    Control = nullptr;
    CancelAll = nullptr;
  }
};

/// Wraps one region task into a pool job: catch worker faults, cancel the
/// siblings, mark the task done. Everything the job touches after the
/// Task body is owned by (or routed through) the shared JoinState, so the
/// job stays safe to finish even if the region's frames are long gone by
/// the time an abandoned worker gets around to it. The *captured state
/// inside Task* is still the caller's problem, which is why an
/// abandonment is reported unrecoverable.
std::function<void()> makeSupervisedJob(std::function<void()> Task,
                                        std::shared_ptr<JoinState> S,
                                        size_t I) {
  return [Task = std::move(Task), S = std::move(S), I] {
    try {
      Task();
    } catch (const RegionFault &F) {
      S->recordFault(F.Kind, F.Thread, F.Detail);
      S->cancelRegion();
    } catch (const std::exception &E) {
      S->recordFault(FaultKind::Internal, static_cast<unsigned>(I), E.what());
      S->cancelRegion();
    }
    {
      std::lock_guard<std::mutex> G(S->M);
      S->Done[I] = 1;
      ++S->DoneCount;
    }
    S->Cv.notify_all();
  };
}

/// Legacy spawn-per-region fork-join, kept only for the nested-region
/// fallback (a region started from inside a pool worker).
void runParallelUnpooled(const std::vector<std::function<void()>> &Tasks) {
  std::vector<std::thread> Threads;
  Threads.reserve(Tasks.size());
  for (size_t I = 0; I < Tasks.size(); ++I)
    Threads.emplace_back([&Tasks, I] {
      setCurrentWorkerThreadName(static_cast<unsigned>(I));
      trace::emit(trace::EventKind::TaskDispatch, static_cast<uint32_t>(I));
      Tasks[I]();
      trace::emit(trace::EventKind::TaskComplete, static_cast<uint32_t>(I));
    });
  for (std::thread &T : Threads)
    T.join();
}

} // namespace

struct WorkerPool::WorkerShared {
  std::mutex M;
  std::condition_variable Cv;
  std::function<void()> Job; ///< Valid when HasJob.
  bool HasJob = false;
  bool Quit = false; ///< Exit after the current job (shutdown / retired).
};

WorkerPool &WorkerPool::global() {
  static WorkerPool Pool;
  return Pool;
}

WorkerPool::~WorkerPool() { shutdown(); }

void WorkerPool::shutdown() {
  std::lock_guard<std::mutex> G(PoolM);
  for (Slot &Sl : Slots) {
    if (!Sl.Sh)
      continue;
    {
      std::lock_guard<std::mutex> WG(Sl.Sh->M);
      Sl.Sh->Quit = true;
    }
    Sl.Sh->Cv.notify_one();
    if (Sl.Th.joinable())
      Sl.Th.join();
    Sl.Sh.reset();
  }
}

RtValue *WorkerPool::leaseReplicaRow(unsigned Worker, size_t NumSlots) {
  std::lock_guard<std::mutex> G(ReplicaM);
  if (ReplicaRows.size() <= Worker)
    ReplicaRows.resize(static_cast<size_t>(Worker) + 1);
  ReplicaRow &Row = ReplicaRows[Worker];
  // Round the row up to whole 64-byte cache lines so adjacent workers'
  // rows (separate allocations anyway) never share a line and reuse
  // across regions with slightly different slot counts skips the realloc.
  constexpr size_t CellsPerLine = 64 / sizeof(RtValue);
  size_t Want = (NumSlots + CellsPerLine - 1) / CellsPerLine * CellsPerLine;
  if (Row.Capacity < Want) {
    Row.Storage.assign(Want + CellsPerLine, RtValue());
    uintptr_t Base = reinterpret_cast<uintptr_t>(Row.Storage.data());
    uintptr_t Up = (Base + 63) & ~static_cast<uintptr_t>(63);
    Row.Aligned = reinterpret_cast<RtValue *>(Up);
    Row.Capacity = Want;
  }
  return Row.Aligned;
}

void WorkerPool::dispatch(unsigned I, std::function<void()> Job) {
  Slot &Sl = Slots[I];
  if (!Sl.Sh) {
    // First use of this slot (or the previous occupant was abandoned and
    // retired): spawn a fresh parked worker. TaskDispatch brackets the
    // whole pool lifetime of the thread; regions do not re-emit it.
    auto Sh = std::make_shared<WorkerShared>();
    Spawns.fetch_add(1, std::memory_order_relaxed);
    Sl.Sh = Sh;
    Sl.Th = std::thread([Sh, I] {
      setCurrentWorkerThreadName(I);
      InPoolWorker = true;
      trace::emit(trace::EventKind::TaskDispatch, I);
      for (;;) {
        std::function<void()> Job;
        {
          std::unique_lock<std::mutex> Lk(Sh->M);
          Sh->Cv.wait(Lk, [&Sh] { return Sh->HasJob || Sh->Quit; });
          if (!Sh->HasJob)
            break; // Quit while parked.
          Job = std::move(Sh->Job);
          Sh->HasJob = false;
        }
        Job();
        std::lock_guard<std::mutex> Lk(Sh->M);
        if (Sh->Quit)
          break; // Retired (abandoned) while running: never accept new work.
      }
      trace::emit(trace::EventKind::TaskComplete, I);
    });
  }
  {
    std::lock_guard<std::mutex> G(Sl.Sh->M);
    Sl.Sh->Job = std::move(Job);
    Sl.Sh->HasJob = true;
  }
  Sl.Sh->Cv.notify_one();
}

void WorkerPool::run(const std::vector<std::function<void()>> &Tasks) {
  if (Tasks.empty())
    return;
  if (InPoolWorker)
    return runParallelUnpooled(Tasks);

  struct Latch {
    std::mutex M;
    std::condition_variable Cv;
    size_t Remaining;
    std::exception_ptr Err;
  };
  auto L = std::make_shared<Latch>();
  L->Remaining = Tasks.size();

  {
    std::lock_guard<std::mutex> G(PoolM);
    if (Slots.size() < Tasks.size())
      Slots.resize(Tasks.size());
    for (size_t I = 0; I < Tasks.size(); ++I)
      dispatch(static_cast<unsigned>(I), [&Tasks, L, I] {
        // The pre-pool runParallel ran task 0 inline, so its exceptions
        // reached the caller; keep that contract for every task now that
        // all of them run on workers (first exception wins).
        try {
          Tasks[I]();
        } catch (...) {
          std::lock_guard<std::mutex> LG(L->M);
          if (!L->Err)
            L->Err = std::current_exception();
        }
        std::lock_guard<std::mutex> LG(L->M);
        if (--L->Remaining == 0)
          L->Cv.notify_all();
      });
    std::unique_lock<std::mutex> Lk(L->M);
    L->Cv.wait(Lk, [&L] { return L->Remaining == 0; });
  }
  if (L->Err)
    std::rethrow_exception(L->Err);
}

SupervisedReport WorkerPool::runSupervised(
    const std::vector<std::function<void()>> &Tasks, RegionControl &Control,
    uint64_t WatchdogStallMs, uint64_t JoinGraceMs,
    const std::function<void()> &CancelAll) {
  SupervisedReport Rep;
  if (Tasks.empty())
    return Rep;
  const size_t N = Tasks.size();

  auto S = std::make_shared<JoinState>();
  S->Done.assign(N, 0);
  S->Control = &Control;
  S->CancelAll = CancelAll;

  std::unique_lock<std::mutex> PoolLk(PoolM, std::defer_lock);
  const bool Pooled = !InPoolWorker;
  std::vector<std::thread> FallbackThreads;
  if (Pooled) {
    PoolLk.lock();
    if (Slots.size() < N)
      Slots.resize(N);
    for (size_t I = 0; I < N; ++I)
      dispatch(static_cast<unsigned>(I), makeSupervisedJob(Tasks[I], S, I));
  } else {
    // Nested-region fallback: dedicated threads, joined/detached below.
    FallbackThreads.reserve(N);
    for (size_t I = 0; I < N; ++I)
      FallbackThreads.emplace_back(
          [Job = makeSupervisedJob(Tasks[I], S, I), I] {
            setCurrentWorkerThreadName(static_cast<unsigned>(I));
            Job();
          });
  }

  // Supervisor loop on the calling thread. "Progress" is any heartbeat or
  // task completion anywhere in the region; only a *global* stall trips the
  // watchdog, so one slow worker among busy peers never does.
  uint64_t TickSrc = WatchdogStallMs ? WatchdogStallMs : JoinGraceMs;
  uint64_t TickMs = TickSrc / 4;
  TickMs = TickMs < 2 ? 2 : (TickMs > 50 ? 50 : TickMs);
  auto Tick = std::chrono::milliseconds(TickMs);

  uint64_t LastBeats = Control.beats();
  size_t LastDone = 0;
  auto LastProgress = std::chrono::steady_clock::now();
  bool Abandoned = false;

  std::unique_lock<std::mutex> Lk(S->M);
  while (S->DoneCount < N) {
    S->Cv.wait_for(Lk, Tick);
    if (S->DoneCount == N)
      break;
    uint64_t Beats = Control.beats();
    size_t DoneC = S->DoneCount;
    auto Now = std::chrono::steady_clock::now();
    if (Beats != LastBeats || DoneC != LastDone) {
      LastBeats = Beats;
      LastDone = DoneC;
      LastProgress = Now;
      continue;
    }
    auto StalledMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                         Now - LastProgress)
                         .count();
    if (!Rep.WatchdogTripped) {
      if (WatchdogStallMs &&
          static_cast<uint64_t>(StalledMs) >= WatchdogStallMs) {
        Rep.WatchdogTripped = true;
        for (size_t I = 0; I < N; ++I)
          if (!S->Done[I])
            Rep.StalledWorkers.push_back(static_cast<unsigned>(I));
        Lk.unlock();
        Control.cancel();
        if (CancelAll)
          CancelAll();
        Lk.lock();
        // Fresh clock: the grace window measures post-cancel quiet time.
        LastProgress = std::chrono::steady_clock::now();
      }
    } else if (JoinGraceMs != 0 &&
               static_cast<uint64_t>(StalledMs) >= JoinGraceMs) {
      // JoinGraceMs == 0 means "wait forever for the join" (matching
      // WatchdogStallMs == 0 = "never trip"), not "abandon instantly".
      Abandoned = true;
      break;
    }
  }
  Lk.unlock();

  if (Pooled) {
    if (Abandoned) {
      for (size_t I = 0; I < N; ++I) {
        bool IsDone;
        {
          std::lock_guard<std::mutex> G(S->M);
          IsDone = S->Done[I];
        }
        if (IsDone)
          continue; // Worker unwound in time; it is parked and reusable.
        // Permanently retire the slot: the wedged thread exits whenever its
        // job finally returns (Quit is checked after every job) and can
        // never be handed new work; the slot respawns on next use.
        Slot &Sl = Slots[I];
        {
          std::lock_guard<std::mutex> WG(Sl.Sh->M);
          Sl.Sh->Quit = true;
        }
        Sl.Sh->Cv.notify_one();
        Sl.Th.detach();
        Sl.Sh.reset();
        Rep.AllJoined = false;
      }
    }
    PoolLk.unlock();
  } else {
    if (!Abandoned) {
      for (std::thread &T : FallbackThreads)
        T.join();
    } else {
      for (size_t I = 0; I < N; ++I) {
        bool IsDone;
        {
          std::lock_guard<std::mutex> G(S->M);
          IsDone = S->Done[I];
        }
        if (IsDone) {
          FallbackThreads[I].join();
        } else {
          FallbackThreads[I].detach();
          Rep.AllJoined = false;
        }
      }
    }
  }

  // Detach the region from the join state before the caller can destroy
  // it: an abandoned worker that faults later must find nothing to cancel
  // rather than dangling references into this frame.
  S->closeRegion();

  {
    std::lock_guard<std::mutex> G(S->M);
    Rep.Faulted = S->Faulted;
    Rep.Kind = S->Kind;
    Rep.FaultThread = S->FaultThread;
    Rep.Detail = S->Detail;
  }

  // A watchdog trip is the primary fault unless a worker reported a real
  // (non-Cancelled) fault of its own before wedging the region.
  if (Rep.WatchdogTripped &&
      (!Rep.Faulted || Rep.Kind == FaultKind::Cancelled)) {
    std::ostringstream Os;
    Os << "watchdog: no region progress for " << WatchdogStallMs
       << "ms; stalled workers:";
    for (unsigned W : Rep.StalledWorkers)
      Os << " " << W;
    if (!Rep.StalledWorkers.empty()) {
      Os << " (";
      for (size_t I = 0; I < Rep.StalledWorkers.size(); ++I)
        Os << (I ? ", " : "") << workerName(Rep.StalledWorkers[I]);
      Os << ")";
    }
    Rep.Faulted = true;
    Rep.Kind = FaultKind::WatchdogStall;
    Rep.FaultThread =
        Rep.StalledWorkers.empty() ? 0 : Rep.StalledWorkers.front();
    Rep.Detail = Os.str();
  }
  if (!Rep.AllJoined)
    Rep.Detail += " [worker(s) abandoned after join grace expired]";
  return Rep;
}

void commset::runParallel(const std::vector<std::function<void()>> &Tasks) {
  WorkerPool::global().run(Tasks);
}

SupervisedReport commset::runParallelSupervised(
    const std::vector<std::function<void()>> &Tasks, RegionControl &Control,
    uint64_t WatchdogStallMs, uint64_t JoinGraceMs,
    const std::function<void()> &CancelAll) {
  return WorkerPool::global().runSupervised(Tasks, Control, WatchdogStallMs,
                                            JoinGraceMs, CancelAll);
}
