//===- Admission.cpp - commsetd overload admission control ----------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Serve/Admission.h"

#include "commset/Runtime/FaultInjector.h"
#include "commset/Trace/Trace.h"

using namespace commset;
using namespace commset::serve;

AdmissionController::AdmissionController(const AdmissionConfig &Config)
    : Config(Config), Tokens(Config.Burst), LastRefillNs(steadyNowNs()) {}

bool AdmissionController::admit(size_t QueueDepth) {
  bool Ok = true;
  bool QueueFull = false;
  if (QueueDepth >= Config.MaxQueueDepth) {
    Ok = false;
    QueueFull = true;
  } else if (Config.RatePerSec > 0.0) {
    std::lock_guard<std::mutex> G(M);
    uint64_t Now = steadyNowNs();
    // Refill lazily from elapsed wall time; cap at the burst size so idle
    // periods cannot bank unbounded credit.
    double Refill =
        static_cast<double>(Now - LastRefillNs) * Config.RatePerSec / 1e9;
    LastRefillNs = Now;
    Tokens = Tokens + Refill;
    if (Tokens > Config.Burst)
      Tokens = Config.Burst;
    if (Tokens >= 1.0)
      Tokens -= 1.0;
    else
      Ok = false;
  }
  if (Ok)
    Admitted.fetch_add(1, std::memory_order_relaxed);
  else {
    Shed.fetch_add(1, std::memory_order_relaxed);
    if (QueueFull)
      ShedQueue.fetch_add(1, std::memory_order_relaxed);
  }
  trace::emit(trace::EventKind::ServeAdmit, /*Tid=*/0, Ok ? 1 : 0,
              static_cast<uint64_t>(QueueDepth));
  return Ok;
}
