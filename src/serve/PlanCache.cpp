//===- PlanCache.cpp - Compiled-plan LRU with single-flight ---------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Serve/PlanCache.h"

#include "commset/Workloads/Workload.h"

using namespace commset;
using namespace commset::serve;

//===----------------------------------------------------------------------===//
// CircuitBreaker
//===----------------------------------------------------------------------===//

bool CircuitBreaker::allowParallel() {
  std::lock_guard<std::mutex> G(M);
  switch (St) {
  case State::Closed:
  case State::HalfOpen: // A probe is already out; keep probing until it
                        // resolves (single executor => no probe storm).
    return true;
  case State::Open:
    if (++SkipsSinceOpen >= ProbeAfterSkips) {
      St = State::HalfOpen;
      SkipsSinceOpen = 0;
      return true;
    }
    ++Skips;
    return false;
  }
  return true;
}

void CircuitBreaker::onParallelSuccess() {
  std::lock_guard<std::mutex> G(M);
  St = State::Closed;
  ConsecutiveFaults = 0;
  SkipsSinceOpen = 0;
}

void CircuitBreaker::onParallelFault() {
  std::lock_guard<std::mutex> G(M);
  if (St == State::HalfOpen) {
    // Failed probe: straight back to quarantine.
    St = State::Open;
    SkipsSinceOpen = 0;
    ++Trips;
    return;
  }
  if (++ConsecutiveFaults >= FailThreshold && St == State::Closed) {
    St = State::Open;
    SkipsSinceOpen = 0;
    ++Trips;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> G(M);
  return St;
}

uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> G(M);
  return Trips;
}

uint64_t CircuitBreaker::skips() const {
  std::lock_guard<std::mutex> G(M);
  return Skips;
}

//===----------------------------------------------------------------------===//
// PlanCache
//===----------------------------------------------------------------------===//

PlanCache::PlanCache(size_t Capacity, unsigned BreakerFailThreshold,
                     unsigned BreakerProbeAfterSkips)
    : Capacity(Capacity ? Capacity : 1),
      BreakerFailThreshold(BreakerFailThreshold),
      BreakerProbeAfterSkips(BreakerProbeAfterSkips) {}

PlanCache::Result PlanCache::compileJob(const RunRequest &R,
                                        FaultInjector *Faults,
                                        unsigned BreakerFailThreshold,
                                        unsigned BreakerProbeAfterSkips) {
  Result Out;
  // Injected transient compile failure (FaultPolicy::CompileFailPerMille):
  // must surface as COMPILE_ERROR and must NOT be cached.
  if (Faults && Faults->fires(FaultKind::CompileFail, /*Thread=*/0)) {
    Out.Error = "injected transient compile failure";
    return Out;
  }

  std::string Source = R.Source;
  std::string Entry = R.Entry;
  std::map<std::string, double> CostHints;
  if (!R.WorkloadName.empty()) {
    std::unique_ptr<Workload> W = makeWorkload(R.WorkloadName);
    if (!W) {
      Out.Error = "unknown workload '" + R.WorkloadName + "'";
      return Out;
    }
    Source = W->source(R.Variant);
    Entry = W->entry();
    CostHints = W->costHints();
  }

  auto Job = std::make_shared<CompiledJob>(BreakerFailThreshold,
                                           BreakerProbeAfterSkips);
  DiagnosticEngine Diags;
  Job->C = Compilation::fromSource(Source, Diags);
  if (!Job->C) {
    Out.Error = "compile failed: " + Diags.str();
    return Out;
  }
  Job->T = Job->C->analyzeLoop(Entry, Diags);
  if (!Job->T) {
    Out.Error = "loop analysis failed for entry '" + Entry +
                "': " + Diags.str();
    return Out;
  }

  PlanOptions Opts;
  Opts.NumThreads = R.Threads;
  Opts.Sync = R.Sync;
  Opts.Sched = R.Sched;
  for (auto &[K, Cost] : CostHints)
    Opts.NativeCostHints[K] = Cost;
  Job->Schemes = buildAllSchemes(*Job->C, *Job->T, Opts);

  for (const SchemeReport &S : Job->Schemes)
    if (S.Kind == Strategy::Sequential)
      Job->Sequential = &S;
  if (R.Scheme == "best") {
    Job->Chosen = bestScheme(Job->Schemes);
  } else {
    Strategy Want = Strategy::Sequential;
    if (R.Scheme == "doall")
      Want = Strategy::Doall;
    else if (R.Scheme == "dswp")
      Want = Strategy::Dswp;
    else if (R.Scheme == "psdswp")
      Want = Strategy::PsDswp;
    for (const SchemeReport &S : Job->Schemes)
      if (S.Kind == Want)
        Job->Chosen = &S;
  }
  if (!Job->Chosen || !Job->Chosen->Applicable || !Job->Chosen->Plan) {
    Out.Error = "scheme '" + R.Scheme + "' not applicable: " +
                (Job->Chosen ? Job->Chosen->WhyNot : "no scheme");
    return Out;
  }
  if (R.Backend == ExecBackendKind::Jit) {
    if (!JitBackend::supported()) {
      Out.Error = "backend 'jit' is not supported on this host/build";
      return Out;
    }
    Job->Jit = JitBackend::create(Job->C->module());
    if (!Job->Jit) {
      Out.Error = "jit backend failed to compile the module";
      return Out;
    }
  }
  Out.Job = std::move(Job);
  return Out;
}

PlanCache::Result PlanCache::getOrCompile(const RunRequest &R,
                                          FaultInjector *Faults) {
  const std::string Key = R.cacheKey();
  std::shared_ptr<Node> N;
  {
    std::unique_lock<std::mutex> Lk(M);
    auto It = Map.find(Key);
    if (It != Map.end()) {
      N = It->second;
      // Single-flight: wait out a concurrent compile of the same key.
      while (N->State == Node::St::Compiling)
        N->Cv.wait(Lk);
      if (N->State == Node::St::Ready) {
        ++Hits;
        if (N->InLru)
          Lru.splice(Lru.begin(), Lru, N->LruIt);
        Result Out;
        Out.Job = N->Job;
        Out.CacheHit = true;
        return Out;
      }
      // Failed flight we were waiting on: report its error; the node is
      // already gone from the map, so the next request recompiles.
      Result Out;
      Out.Error = N->Error;
      return Out;
    }
    N = std::make_shared<Node>();
    Map.emplace(Key, N);
    ++Misses;
  }

  Result Compiled =
      compileJob(R, Faults, BreakerFailThreshold, BreakerProbeAfterSkips);

  std::unique_lock<std::mutex> Lk(M);
  if (Compiled.Job) {
    N->State = Node::St::Ready;
    N->Job = Compiled.Job;
    Lru.push_front(Key);
    N->LruIt = Lru.begin();
    N->InLru = true;
    // Evict beyond capacity, oldest first. Compiling nodes are never in
    // the LRU list, so an in-flight compile cannot be evicted.
    while (Lru.size() > Capacity) {
      const std::string &Victim = Lru.back();
      auto VIt = Map.find(Victim);
      if (VIt != Map.end()) {
        VIt->second->InLru = false;
        Map.erase(VIt);
      }
      Lru.pop_back();
      ++Evictions;
    }
  } else {
    // Failures are not cached: drop the node so the key stays cold.
    N->State = Node::St::Failed;
    N->Error = Compiled.Error;
    ++CompileFailures;
    Map.erase(Key);
  }
  Lk.unlock();
  N->Cv.notify_all();
  return Compiled;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> G(M);
  Stats S;
  S.Hits = Hits;
  S.Misses = Misses;
  S.Compiles = Misses;
  S.CompileFailures = CompileFailures;
  S.Evictions = Evictions;
  S.Size = Lru.size();
  for (const auto &KV : Map) {
    if (KV.second->State != Node::St::Ready || !KV.second->Job)
      continue;
    S.BreakerTrips += KV.second->Job->Breaker.trips();
    S.BreakerSkips += KV.second->Job->Breaker.skips();
  }
  return S;
}
