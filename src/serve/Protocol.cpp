//===- Protocol.cpp - commsetd wire protocol (CSD1) -----------------------===//
//
// Part of the COMMSET reproduction of Prabhu et al., PLDI 2011.
//
//===----------------------------------------------------------------------===//

#include "commset/Serve/Protocol.h"

#include <cctype>
#include <sstream>

using namespace commset;
using namespace commset::serve;

const char *commset::serve::msgTypeName(MsgType T) {
  switch (T) {
  case MsgType::Run:
    return "RUN";
  case MsgType::Stats:
    return "STATS";
  case MsgType::Ping:
    return "PING";
  }
  return "UNKNOWN";
}

bool commset::serve::msgTypeFromName(const std::string &Name, MsgType &Out) {
  if (Name == "RUN")
    Out = MsgType::Run;
  else if (Name == "STATS")
    Out = MsgType::Stats;
  else if (Name == "PING")
    Out = MsgType::Ping;
  else
    return false;
  return true;
}

const char *commset::serve::respStatusName(RespStatus S) {
  switch (S) {
  case RespStatus::Ok:
    return "OK";
  case RespStatus::Degraded:
    return "DEGRADED";
  case RespStatus::RejectedOverload:
    return "REJECTED_OVERLOAD";
  case RespStatus::DeadlineExceeded:
    return "DEADLINE_EXCEEDED";
  case RespStatus::BadRequest:
    return "BAD_REQUEST";
  case RespStatus::CompileError:
    return "COMPILE_ERROR";
  case RespStatus::InternalError:
    return "INTERNAL_ERROR";
  }
  return "UNKNOWN";
}

bool commset::serve::respStatusFromName(const std::string &Name,
                                        RespStatus &Out) {
  for (unsigned I = 0; I < NumRespStatuses; ++I) {
    RespStatus S = static_cast<RespStatus>(I);
    if (Name == respStatusName(S)) {
      Out = S;
      return true;
    }
  }
  return false;
}

uint64_t commset::serve::fnv1a64(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string RunRequest::cacheKey() const {
  std::ostringstream Os;
  if (!WorkloadName.empty())
    Os << "wl=" << WorkloadName << "|var=" << Variant;
  else
    Os << "src=" << std::hex << fnv1a64(Source) << std::dec
       << "|len=" << Source.size() << "|entry=" << Entry;
  Os << "|scheme=" << Scheme << "|sync=" << syncModeName(Sync)
     << "|sched=" << schedPolicyName(Sched) << "|threads=" << Threads
     << "|backend=" << execBackendName(Backend);
  return Os.str();
}

bool commset::serve::parseFrameHeader(const std::string &Line,
                                      std::string &KindOut, size_t &LenOut,
                                      std::string *ErrOut) {
  auto fail = [&](const char *Why) {
    if (ErrOut)
      *ErrOut = Why;
    return false;
  };
  if (Line.size() > MaxHeaderBytes)
    return fail("header line too long");
  if (Line.rfind("CSD1 ", 0) != 0)
    return fail("bad magic (expected CSD1)");
  size_t KindEnd = Line.find(' ', 5);
  if (KindEnd == std::string::npos || KindEnd == 5)
    return fail("missing frame kind");
  KindOut = Line.substr(5, KindEnd - 5);
  for (char C : KindOut)
    if (!std::isupper(static_cast<unsigned char>(C)) && C != '_')
      return fail("frame kind must be upper-case tokens");
  std::string LenStr = Line.substr(KindEnd + 1);
  if (LenStr.empty() || LenStr.size() > 8)
    return fail("bad body length");
  size_t Len = 0;
  for (char C : LenStr) {
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return fail("body length is not a number");
    Len = Len * 10 + static_cast<size_t>(C - '0');
  }
  if (Len > MaxBodyBytes)
    return fail("body length exceeds 1MB cap");
  LenOut = Len;
  return true;
}

FrameReader::Status FrameReader::next(Frame &Out, std::string *ErrOut) {
  if (Poisoned) {
    if (ErrOut)
      *ErrOut = ErrText;
    return Status::Error;
  }
  size_t Eol = Buf.find('\n');
  if (Eol == std::string::npos) {
    // No header yet; a peer streaming garbage without a newline must not
    // buffer without bound.
    if (Buf.size() > MaxHeaderBytes) {
      Poisoned = true;
      ErrText = "header line too long";
      if (ErrOut)
        *ErrOut = ErrText;
      return Status::Error;
    }
    return Status::NeedMore;
  }
  std::string Kind;
  size_t Len = 0;
  std::string Err;
  if (!parseFrameHeader(Buf.substr(0, Eol), Kind, Len, &Err)) {
    Poisoned = true;
    ErrText = Err;
    if (ErrOut)
      *ErrOut = ErrText;
    return Status::Error;
  }
  if (Buf.size() - Eol - 1 < Len)
    return Status::NeedMore;
  Out.Kind = std::move(Kind);
  Out.Body = Buf.substr(Eol + 1, Len);
  Buf.erase(0, Eol + 1 + Len);
  return Status::Ready;
}

namespace {

/// Strips ASCII whitespace from both ends.
std::string trim(const std::string &S) {
  size_t B = 0, E = S.size();
  while (B < E && std::isspace(static_cast<unsigned char>(S[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return S.substr(B, E - B);
}

bool parseUnsigned(const std::string &S, uint64_t Max, uint64_t &Out) {
  if (S.empty() || S.size() > 12)
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  if (V > Max)
    return false;
  Out = V;
  return true;
}

} // namespace

bool commset::serve::parseRunRequest(const std::string &Body, RunRequest &Out,
                                     std::string *ErrOut) {
  auto fail = [&](const std::string &Why) {
    if (ErrOut)
      *ErrOut = Why;
    return false;
  };
  Out = RunRequest();
  size_t Pos = 0;
  while (Pos < Body.size()) {
    size_t Eol = Body.find('\n', Pos);
    std::string Line = Body.substr(
        Pos, Eol == std::string::npos ? std::string::npos : Eol - Pos);
    Pos = Eol == std::string::npos ? Body.size() : Eol + 1;
    if (trim(Line).empty())
      continue;
    size_t Colon = Line.find(':');
    if (Colon == std::string::npos)
      return fail("line without ':' separator: " + Line.substr(0, 40));
    std::string Key = trim(Line.substr(0, Colon));
    std::string Value = trim(Line.substr(Colon + 1));
    if (Key == "source") {
      // Everything after this line is the raw program text.
      Out.Source = Body.substr(Pos);
      if (trim(Out.Source).empty())
        return fail("source: marker with empty program");
      break;
    } else if (Key == "workload") {
      Out.WorkloadName = Value;
    } else if (Key == "variant") {
      Out.Variant = Value;
    } else if (Key == "entry") {
      if (Value.empty())
        return fail("entry: must name a function");
      Out.Entry = Value;
    } else if (Key == "scheme") {
      if (Value != "best" && Value != "doall" && Value != "dswp" &&
          Value != "psdswp" && Value != "seq")
        return fail("bad scheme: " + Value);
      Out.Scheme = Value;
    } else if (Key == "sync") {
      if (Value == "mutex")
        Out.Sync = SyncMode::Mutex;
      else if (Value == "spin")
        Out.Sync = SyncMode::Spin;
      else if (Value == "tm")
        Out.Sync = SyncMode::Tm;
      else if (Value == "none" || Value == "lib")
        Out.Sync = SyncMode::None;
      else if (Value == "priv")
        Out.Sync = SyncMode::Priv;
      else
        return fail("bad sync: " + Value);
    } else if (Key == "sched") {
      SchedPolicy P;
      if (!schedPolicyFromString(Value.c_str(), P))
        return fail("bad sched: " + Value);
      Out.Sched = P;
    } else if (Key == "threads") {
      uint64_t V;
      if (!parseUnsigned(Value, 64, V) || V == 0)
        return fail("threads must be in 1..64");
      Out.Threads = static_cast<unsigned>(V);
    } else if (Key == "scale") {
      uint64_t V;
      if (!parseUnsigned(Value, 1u << 26, V))
        return fail("bad scale");
      Out.Scale = static_cast<int>(V);
    } else if (Key == "deadline_ms") {
      uint64_t V;
      if (!parseUnsigned(Value, 3600000, V))
        return fail("bad deadline_ms");
      Out.DeadlineMs = V;
    } else if (Key == "backend") {
      ExecBackendKind Kind;
      if (!execBackendFromString(Value.c_str(), Kind))
        return fail("bad backend: " + Value);
      Out.Backend = Kind;
    } else {
      return fail("unknown key: " + Key.substr(0, 40));
    }
  }
  if (Out.WorkloadName.empty() == Out.Source.empty())
    return fail("exactly one of workload: / source: is required");
  return true;
}

std::string commset::serve::formatFrame(const std::string &Kind,
                                        const std::string &Body) {
  std::ostringstream Os;
  Os << "CSD1 " << Kind << " " << Body.size() << "\n" << Body;
  return Os.str();
}

std::string commset::serve::formatRunRequest(const RunRequest &R) {
  std::ostringstream Os;
  if (!R.WorkloadName.empty()) {
    Os << "workload:" << R.WorkloadName << "\n";
    if (!R.Variant.empty())
      Os << "variant:" << R.Variant << "\n";
  }
  Os << "scheme:" << R.Scheme << "\n";
  const char *Sync = "mutex";
  switch (R.Sync) {
  case SyncMode::Mutex:
    Sync = "mutex";
    break;
  case SyncMode::Spin:
    Sync = "spin";
    break;
  case SyncMode::Tm:
    Sync = "tm";
    break;
  case SyncMode::None:
    Sync = "none";
    break;
  case SyncMode::Priv:
    Sync = "priv";
    break;
  }
  Os << "sync:" << Sync << "\n";
  Os << "sched:" << schedPolicyName(R.Sched) << "\n";
  Os << "threads:" << R.Threads << "\n";
  if (R.Backend != ExecBackendKind::Interp)
    Os << "backend:" << execBackendName(R.Backend) << "\n";
  if (R.Scale)
    Os << "scale:" << R.Scale << "\n";
  if (R.DeadlineMs)
    Os << "deadline_ms:" << R.DeadlineMs << "\n";
  if (R.WorkloadName.empty()) {
    if (R.Entry != "run")
      Os << "entry:" << R.Entry << "\n";
    Os << "source:\n" << R.Source;
  }
  return Os.str();
}

std::string commset::serve::formatResponse(
    RespStatus S,
    const std::vector<std::pair<std::string, std::string>> &Kv) {
  std::ostringstream Body;
  for (const auto &[K, V] : Kv) {
    Body << K << ":";
    for (char C : V)
      Body << (C == '\n' ? ' ' : C);
    Body << "\n";
  }
  return formatFrame(respStatusName(S), Body.str());
}

std::vector<std::pair<std::string, std::string>>
commset::serve::parseKvBody(const std::string &Body) {
  std::vector<std::pair<std::string, std::string>> Out;
  size_t Pos = 0;
  while (Pos < Body.size()) {
    size_t Eol = Body.find('\n', Pos);
    std::string Line = Body.substr(
        Pos, Eol == std::string::npos ? std::string::npos : Eol - Pos);
    Pos = Eol == std::string::npos ? Body.size() : Eol + 1;
    size_t Colon = Line.find(':');
    if (Colon == std::string::npos)
      continue;
    Out.emplace_back(trim(Line.substr(0, Colon)),
                     trim(Line.substr(Colon + 1)));
  }
  return Out;
}
